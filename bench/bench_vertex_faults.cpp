// bench_vertex_faults — Experiment E13 (extension: the vertex-failure
// FT-BFS of ref. [14], and the dual edge+vertex structure).
//
// Sweep n on the adversarial family and dense random graphs; report the
// sizes of the edge-fault baseline, the vertex-fault baseline, and the
// dual union — all Θ(n^{3/2})-bounded, with the dual only marginally
// larger than the max of the two.
//
//   ./bench_vertex_faults [--ns=256,512,1024,2048]
#include "bench/bench_util.hpp"
#include "src/core/ftbfs.hpp"
#include "src/core/vertex_ftbfs.hpp"

using namespace ftb;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const std::vector<long long> ns =
      opt.get_int_list("ns", {256, 512, 1024, 2048});

  bench::header("E13", "extension: vertex-fault FT-BFS and the dual "
                       "edge+vertex structure (both Theta(n^{3/2}))",
                "Theorem 5.1 graph at eps=1/2 + dense random");

  for (const char* family_cstr : {"adversarial", "dense-random"}) {
    const std::string family = family_cstr;
    Table t("E13 structure sizes — " + family);
    t.columns({"n", "m", "edge_H", "vertex_H", "dual_H", "dual/n^1.5",
               "sec"});
    for (const long long n : ns) {
      Graph g;
      Vertex source = 0;
      if (family == "adversarial") {
        auto lbg = lb::build_single_source(static_cast<Vertex>(n), 0.5);
        g = std::move(lbg.graph);
        source = lbg.source;
      } else {
        g = bench::dense_random(static_cast<Vertex>(n), 29);
      }
      Timer timer;
      const FtBfsStructure eh = build_ftbfs(g, source);
      const FtBfsStructure vh = build_vertex_ftbfs(g, source);
      const FtBfsStructure dh = build_dual_ftbfs(g, source);
      const double sec = timer.seconds();
      t.row(n, g.num_edges(), eh.num_edges(), vh.num_edges(), dh.num_edges(),
            static_cast<double>(dh.num_edges()) /
                std::pow(static_cast<double>(n), 1.5),
            sec);
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "shape check: vertex_H tracks edge_H; the dual union costs "
               "at most their sum and\n  stays within the n^{3/2} "
               "envelope.\n";
  return 0;
}
