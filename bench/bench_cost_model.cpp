// bench_cost_model — Experiment E6 (the economic reading: minimum-cost ε
// tracks log(R/B)/log n).
//
// Sweep the price ratio R/B; for each ratio run the empirical design sweep
// over an ε grid and report the measured argmin against the analytic
// predictor ε* = log(R/B)/(2 ln n). The measured argmin must move
// monotonically from ε=high (cheap reinforcement irrelevant → pure backup)
// toward ε=0 (expensive backup → reinforce the tree)... i.e. the argmin
// *increases* with R/B.
//
//   ./bench_cost_model [--n=1024] [--ratios=1,10,100,1000,10000]
#include "bench/bench_util.hpp"
#include "src/core/cost_model.hpp"

using namespace ftb;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const Vertex n = static_cast<Vertex>(opt.get_int("n", 1024));
  const std::vector<long long> ratios =
      opt.get_int_list("ratios", {1, 10, 100, 1000, 10000, 100000});
  const std::vector<double> grid = opt.get_double_list(
      "grid", {0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 1.0 / 3.0, 0.5});

  bench::header("E6", "min-cost exponent: eps* ~ log(R/B)/log n",
                "deep Theorem 5.1 graph (eps_G=1/2), n=" + std::to_string(n));

  // The deep adversarial family is the one where reinforcement genuinely
  // competes with backup, so the cost curve has an interior optimum.
  const auto lb = lb::build_single_source(n, 0.5);

  Table t("E6 measured argmin vs analytic predictor");
  t.columns({"R/B", "predicted_eps", "measured_eps", "best_b", "best_r",
             "best_cost", "cost_eps0", "cost_eps05"});
  for (const long long ratio : ratios) {
    const CostParams prices{1.0, static_cast<double>(ratio)};
    const DesignSweep sweep =
        design_sweep(lb.graph, lb.source, prices, grid);
    double cost0 = 0, cost05 = 0;
    for (const auto& pt : sweep.points) {
      if (pt.eps == 0.0) cost0 = pt.cost;
      if (pt.eps == 0.5) cost05 = pt.cost;
    }
    t.row(ratio, predicted_optimal_eps(n, prices), sweep.best().eps,
          sweep.best().backup, sweep.best().reinforced, sweep.best().cost,
          cost0, cost05);
  }
  t.print(std::cout);
  std::cout << "\nshape check: measured_eps is non-decreasing in R/B and "
               "tracks the predictor;\n  the mixed optimum beats both pure "
               "designs (cost_eps0, cost_eps05) at mid ratios.\n";
  return 0;
}
