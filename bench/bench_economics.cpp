// bench_economics — Experiment E12 (Discussion: economy of scale).
//
// "The cost of an edge, Cost(e), is the number of backup edges required to
//  be added to the structure upon its failing. Since reinforcement is
//  expensive, it is beneficial to reinforce an edge that has many users."
//
// The bench quantifies that intuition: per-edge users vs Cost(e) deciles,
// the Pearson correlation, and the top-of-book reinforcement shortlist —
// on the adversarial family (strong economy-of-scale) and a random graph
// (weak: redundancy spreads cost thin).
//
//   ./bench_economics [--n=1500]
#include <algorithm>

#include "bench/bench_util.hpp"
#include "src/core/analysis.hpp"

using namespace ftb;

namespace {

void run_on(const std::string& label, const Graph& g, Vertex source) {
  const EdgeWeights w = EdgeWeights::uniform_random(g, 17);
  const BfsTree tree(g, w, source);
  const ReplacementPathEngine engine(tree);
  const EconomicsReport rep = analyze_economics(engine);

  // Decile table: sort edges by users; report average Cost per decile.
  std::vector<EdgeEconomics> rows = rep.edges;
  std::sort(rows.begin(), rows.end(),
            [](const EdgeEconomics& a, const EdgeEconomics& b) {
              return a.users < b.users;
            });
  Table t("E12 users→cost deciles — " + label + " (" + g.summary() + ")");
  t.columns({"decile", "avg_users", "avg_cost", "max_cost"});
  const std::size_t nrows = rows.size();
  for (int d = 0; d < 10 && nrows >= 10; ++d) {
    const std::size_t lo = nrows * static_cast<std::size_t>(d) / 10;
    const std::size_t hi = nrows * static_cast<std::size_t>(d + 1) / 10;
    double su = 0, sc = 0;
    std::int64_t mx = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      su += rows[i].users;
      sc += rows[i].cost;
      mx = std::max<std::int64_t>(mx, rows[i].cost);
    }
    const double cnt = static_cast<double>(hi - lo);
    t.row(d + 1, su / cnt, sc / cnt, mx);
  }
  t.print(std::cout);
  std::cout << "users-cost Pearson correlation: "
            << rep.users_cost_correlation << "\n";

  Table s("E12 reinforcement shortlist (top Cost(e)) — " + label);
  s.columns({"edge", "depth", "users", "cost"});
  const auto sorted = rep.by_cost_desc();
  for (std::size_t i = 0; i < std::min<std::size_t>(8, sorted.size()); ++i) {
    s.row(static_cast<long long>(sorted[i].e), sorted[i].depth,
          sorted[i].users, sorted[i].cost);
  }
  s.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const Vertex n = static_cast<Vertex>(opt.get_int("n", 1500));

  bench::header("E12", "Discussion: Cost(e) scales with users(e) — the "
                       "economy-of-scale argument for reinforcement",
                "deep adversarial + dense random, n=" + std::to_string(n));

  const auto lb = lb::build_single_source(n, 0.5);
  run_on("deep adversarial", lb.graph, lb.source);

  const Graph er = bench::dense_random(n, 23);
  run_on("dense random", er, 0);

  std::cout << "shape check: on the adversarial family the top deciles "
               "carry essentially all the cost\n  (reinforce those!); on "
               "random graphs redundancy flattens the curve.\n";
  return 0;
}
