// bench_util.hpp — shared helpers for the table-style benches.
//
// Every bench prints an experiment header (id, workload, parameters), one
// ftb::Table of paper-style rows, and a shape-check footer summarizing how
// the measurement compares with the theorem envelope. Defaults are sized
// so the whole harness (`for b in build/bench/*; do $b; done`) finishes in
// a few minutes on a laptop; --n/--eps/... scale everything up.
#pragma once

#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/graph/generators.hpp"
#include "src/graph/lower_bound.hpp"
#include "src/util/options.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

namespace ftb::bench {

inline void header(const std::string& id, const std::string& claim,
                   const std::string& workload) {
  std::cout << "\n##### " << id << " — " << claim << "\n"
            << "##### workload: " << workload << "\n\n";
}

/// Least-squares slope of log2(y) against log2(x): the measured exponent
/// of a power law y ≈ c·x^slope.
inline double fit_exponent(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  const std::size_t n = xs.size();
  if (n < 2) return 0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lx = std::log2(xs[i]);
    const double ly = std::log2(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  return denom == 0 ? 0 : (static_cast<double>(n) * sxy - sx * sy) / denom;
}

/// A dense random workload whose FT-BFS structures are nontrivial:
/// connected, m ≈ n^{1.35} edges.
inline Graph dense_random(Vertex n, std::uint64_t seed) {
  const auto m = static_cast<std::int64_t>(
      std::pow(static_cast<double>(n), 1.35));
  return gen::random_connected(n, m, seed);
}

/// Minimal ordered JSON builder so benches can emit machine-readable
/// reports (e.g. BENCH_construction.json) next to their stdout tables, and
/// the perf trajectory can be tracked across PRs. Values are insertion-
/// ordered; nested objects/arrays go in via set_raw.
class JsonObject {
 public:
  JsonObject& set(const std::string& key, double v) {
    if (!std::isfinite(v)) return set_raw(key, "null");  // keep valid JSON
    std::ostringstream os;
    os << v;
    return set_raw(key, os.str());
  }
  JsonObject& set(const std::string& key, std::int64_t v) {
    return set_raw(key, std::to_string(v));
  }
  JsonObject& set(const std::string& key, bool v) {
    return set_raw(key, v ? "true" : "false");
  }
  JsonObject& set(const std::string& key, const std::string& v) {
    return set_raw(key, "\"" + v + "\"");  // callers pass plain identifiers
  }
  JsonObject& set_raw(const std::string& key, const std::string& json) {
    kv_.emplace_back(key, json);
    return *this;
  }

  std::string str(int indent = 0) const {
    const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
    std::ostringstream os;
    os << "{\n";
    for (std::size_t i = 0; i < kv_.size(); ++i) {
      os << pad << "\"" << kv_[i].first << "\": " << kv_[i].second;
      if (i + 1 < kv_.size()) os << ",";
      os << "\n";
    }
    os << std::string(static_cast<std::size_t>(indent), ' ') << "}";
    return os.str();
  }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

/// Companion array builder (e.g. per-seed rows); nests via JsonObject::
/// set_raw(key, arr.str(indent)).
class JsonArray {
 public:
  JsonArray& push(const JsonObject& obj) {
    items_.push_back(obj.str(4));
    return *this;
  }
  JsonArray& push_raw(const std::string& json) {
    items_.push_back(json);
    return *this;
  }

  std::string str(int indent = 0) const {
    if (items_.empty()) return "[]";
    const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
    std::ostringstream os;
    os << "[\n";
    for (std::size_t i = 0; i < items_.size(); ++i) {
      os << pad << items_[i];
      if (i + 1 < items_.size()) os << ",";
      os << "\n";
    }
    os << std::string(static_cast<std::size_t>(indent), ' ') << "]";
    return os.str();
  }

 private:
  std::vector<std::string> items_;
};

inline void write_json_file(const std::string& path, const JsonObject& obj) {
  std::ofstream out(path);
  out << obj.str() << "\n";
}

}  // namespace ftb::bench
