// bench_util.hpp — shared helpers for the table-style benches.
//
// Every bench prints an experiment header (id, workload, parameters), one
// ftb::Table of paper-style rows, and a shape-check footer summarizing how
// the measurement compares with the theorem envelope. Defaults are sized
// so the whole harness (`for b in build/bench/*; do $b; done`) finishes in
// a few minutes on a laptop; --n/--eps/... scale everything up.
#pragma once

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "src/graph/generators.hpp"
#include "src/graph/lower_bound.hpp"
#include "src/util/json.hpp"
#include "src/util/options.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

namespace ftb::bench {

// The JSON builders every bench (and now the CLI) share live in
// src/util/json.hpp; the historical ftb::bench names remain valid.
using ftb::JsonArray;
using ftb::JsonObject;
using ftb::write_json_file;

inline void header(const std::string& id, const std::string& claim,
                   const std::string& workload) {
  std::cout << "\n##### " << id << " — " << claim << "\n"
            << "##### workload: " << workload << "\n\n";
}

/// Least-squares slope of log2(y) against log2(x): the measured exponent
/// of a power law y ≈ c·x^slope.
inline double fit_exponent(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  const std::size_t n = xs.size();
  if (n < 2) return 0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lx = std::log2(xs[i]);
    const double ly = std::log2(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  return denom == 0 ? 0 : (static_cast<double>(n) * sxy - sx * sy) / denom;
}

/// A dense random workload whose FT-BFS structures are nontrivial:
/// connected, m ≈ n^{1.35} edges.
inline Graph dense_random(Vertex n, std::uint64_t seed) {
  const auto m = static_cast<std::int64_t>(
      std::pow(static_cast<double>(n), 1.35));
  return gen::random_connected(n, m, seed);
}

}  // namespace ftb::bench
