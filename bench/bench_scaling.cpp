// bench_scaling — Experiment E2 (Theorem 3.1 growth exponents in n).
//
// Two fits, both on the Theorem 5.1 family:
//   (a) backup exponent: run the algorithm at ε_A = ε_G on G_{ε_G}; the
//       structure swallows the Θ(n^{1+ε}) bipartite core, so the fitted
//       exponent of b(n) must approach 1 + ε;
//   (b) reinforcement exponent: run a *small* ε_A on the deep ε_G = 1/2
//       family; the heavy costly-path edges get reinforced and r(n) grows
//       like the path length Θ(n^{1/2}) — inside the theorem's
//       Õ(n^{1-ε_A}) envelope.
//
//   ./bench_scaling [--ns=256,...,4096] [--eps=0.2,0.333] [--eps_r=0.15]
#include "bench/bench_util.hpp"
#include "src/core/epsilon_ftbfs.hpp"

using namespace ftb;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const std::vector<long long> ns =
      opt.get_int_list("ns", {256, 512, 1024, 2048, 4096});
  const std::vector<double> eps_grid =
      opt.get_double_list("eps", {0.2, 1.0 / 3.0});
  const double eps_r = opt.get_double("eps_r", 0.15);

  bench::header("E2", "Theorem 3.1 scaling: b ~ n^{1+eps}, r within "
                      "O(1/eps n^{1-eps} lg n)",
                "Theorem 5.1 graphs");

  // (a) backup exponent at ε_A = ε_G.
  for (const double eps : eps_grid) {
    Table t("E2a backup scaling at eps=" + std::to_string(eps));
    t.columns({"n", "m", "b(n)", "r(n)", "b_norm", "sec"});
    std::vector<double> xs, bs;
    for (const long long n : ns) {
      const auto lb = lb::build_single_source(static_cast<Vertex>(n), eps);
      EpsilonOptions opts;
      opts.eps = eps;
      const EpsilonResult res = build_epsilon_ftbfs(lb.graph, lb.source, opts);
      t.row(n, lb.graph.num_edges(), res.stats.backup, res.stats.reinforced,
            static_cast<double>(res.stats.backup) /
                theorem_backup_bound(n, eps),
            res.stats.seconds_total);
      xs.push_back(static_cast<double>(n));
      bs.push_back(
          static_cast<double>(std::max<std::int64_t>(1, res.stats.backup)));
    }
    t.print(std::cout);
    std::cout << "measured exponent of b(n): " << bench::fit_exponent(xs, bs)
              << "  (theorem: " << 1.0 + eps
              << "; small-n constants bite below n=1024)\n\n";
  }

  // (b) reinforcement growth: deep family, small ε_A.
  {
    Table t("E2b reinforcement scaling (eps_G=0.5, eps_A=" +
            std::to_string(eps_r) + ")");
    t.columns({"n", "m", "b(n)", "r(n)", "r_envelope", "sec"});
    std::vector<double> xs, rs;
    for (const long long n : ns) {
      const auto lb = lb::build_single_source(static_cast<Vertex>(n), 0.5);
      EpsilonOptions opts;
      opts.eps = eps_r;
      const EpsilonResult res = build_epsilon_ftbfs(lb.graph, lb.source, opts);
      t.row(n, lb.graph.num_edges(), res.stats.backup, res.stats.reinforced,
            theorem_reinforce_bound(n, eps_r), res.stats.seconds_total);
      xs.push_back(static_cast<double>(n));
      rs.push_back(static_cast<double>(
          std::max<std::int64_t>(1, res.stats.reinforced)));
    }
    t.print(std::cout);
    std::cout << "measured exponent of r(n): " << bench::fit_exponent(xs, rs)
              << "  (small counts — noisy; stays far inside the theorem "
                 "envelope r_envelope = 1/eps n^{1-eps} lg n, slope "
              << 1.0 - eps_r << " + lg-slack)\n";
  }
  return 0;
}
