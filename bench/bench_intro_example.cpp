// bench_intro_example — Experiment E7 (the paper's introductory figure).
//
// The graph: source s joined by a single edge to an (n−1)-clique. The
// paper's opening argument: reinforcing that one bridge collapses the
// survivability cost — the conservative "buy everything" design pays for
// Θ(n²) edges, the pure-backup FT-BFS still pays Θ(n), while the mixed
// design pays for a single reinforced edge plus a thin clique backup.
//
// The table prices four designs across R/B ratios:
//   all-edges      : every edge of G as backup (the conservative baseline)
//   pure-backup    : ε = 1/2 FT-BFS (r = 0)
//   reinforce-tree : ε = 0 (r = n−1)
//   mixed          : cheapest ε from the design sweep
//
//   ./bench_intro_example [--n=512] [--ratios=1,10,100,1000]
#include "bench/bench_util.hpp"
#include "src/core/cost_model.hpp"
#include "src/core/ftbfs.hpp"

using namespace ftb;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const Vertex n = static_cast<Vertex>(opt.get_int("n", 512));
  const std::vector<long long> ratios =
      opt.get_int_list("ratios", {1, 4, 16, 64, 256});

  bench::header("E7", "intro figure: one reinforced bridge vs pure backup",
                "s + single edge into K_{n-1}, n=" + std::to_string(n));

  const Graph g = gen::intro_example(n);
  const FtBfsStructure pure = build_ftbfs(g, 0);
  const std::vector<double> grid{0.0, 0.2, 1.0 / 3.0, 0.5};

  Table t("E7 design costs (units of B)");
  t.columns({"R/B", "all_edges", "pure_backup(b)", "reinforce_tree",
             "mixed_cost", "mixed_eps", "mixed_b", "mixed_r"});
  for (const long long ratio : ratios) {
    const CostParams prices{1.0, static_cast<double>(ratio)};
    const DesignSweep sweep = design_sweep(g, 0, prices, grid);
    t.row(ratio, g.num_edges(),
          pure.cost(prices.backup_price, prices.reinforce_price),
          static_cast<double>(ratio) * (n - 1), sweep.best().cost,
          sweep.best().eps, sweep.best().backup, sweep.best().reinforced);
  }
  t.print(std::cout);
  std::cout << "\nshape check: every engineered design beats all_edges = "
            << g.num_edges() << " = Theta(n^2);\n  pure_backup stays "
            << pure.num_edges() << " = Theta(n) edges; the bridge is the "
            << "only edge whose failure matters.\n";
  return 0;
}
