// bench_ablation — Experiment E9 (design-choice ablations).
//
// One workload, one ε, many variants of the construction:
//   paper            : defaults (K = ⌈1/ε⌉+2 rounds, full S2)
//   s1_rounds=1/2x   : fewer/more Phase-S1 rounds
//   no_light_flush   : skip the S2.2 light-segment flush
//   no_crossings     : skip the S2.3 tree-decomposition additions
//   thr_half/double  : scale the ⌈n^ε⌉ threshold
//   force_s1s2@.5    : run S1/S2 instead of the baseline at ε = 0.5
//
// Every variant is *correct by construction* (reinforcement is recomputed
// at the end); the ablation shows how each mechanism trades backup volume
// against reinforcement count.
//
//   ./bench_ablation [--n=1024] [--eps=0.333]
#include "bench/bench_util.hpp"
#include "src/core/epsilon_ftbfs.hpp"

using namespace ftb;

namespace {

void run_suite(const std::string& label, const Graph& g, Vertex source,
               const double eps) {
  struct Variant {
    std::string name;
    EpsilonOptions opts;
  };
  std::vector<Variant> variants;
  {
    EpsilonOptions base;
    base.eps = eps;
    variants.push_back({"paper", base});

    EpsilonOptions v = base;
    v.k_rounds_override = 1;
    variants.push_back({"s1_rounds=1", v});

    v = base;
    v.k_rounds_override =
        2 * (static_cast<std::int32_t>(std::ceil(1.0 / eps)) + 2);
    variants.push_back({"s1_rounds=2x", v});

    v = base;
    v.disable_s2_light_flush = true;
    variants.push_back({"no_light_flush", v});

    v = base;
    v.disable_s2_crossings = true;
    variants.push_back({"no_crossings", v});

    v = base;
    v.disable_s2_light_flush = true;
    v.disable_s2_crossings = true;
    variants.push_back({"s2_minimal", v});

    v = base;
    v.threshold_scale = 0.5;
    variants.push_back({"thr_half", v});

    v = base;
    v.threshold_scale = 2.0;
    variants.push_back({"thr_double", v});

    v = base;
    v.eps = 0.5;
    v.baseline_for_large_eps = false;
    variants.push_back({"force_s1s2@.5", v});
  }

  Table t("E9 ablations on " + label + " (" + g.summary() +
          ", eps=" + std::to_string(eps) + ")");
  t.columns({"variant", "|H|", "b(n)", "r(n)", "s1_added", "s2_added",
             "s1_leftover", "csets", "sec"});
  for (const auto& v : variants) {
    const EpsilonResult res = build_epsilon_ftbfs(g, source, v.opts);
    t.row(v.name, res.stats.structure_edges, res.stats.backup,
          res.stats.reinforced, res.stats.s1_added_edges,
          res.stats.s2_added_edges + res.stats.s2_glue_added,
          res.stats.s1_leftover_pairs, res.stats.num_csets,
          res.stats.seconds_total);
  }
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const Vertex n = static_cast<Vertex>(opt.get_int("n", 1024));
  const double eps = opt.get_double("eps", 1.0 / 3.0);

  bench::header("E9", "ablations: each phase buys a specific b/r tradeoff",
                "Theorem 5.1 graph + dense random, n=" + std::to_string(n));

  const auto lb = lb::build_single_source(n, eps);
  run_suite("lower-bound graph", lb.graph, lb.source, eps);

  const Graph er = bench::dense_random(n, 7);
  run_suite("dense random", er, 0, eps);

  std::cout << "shape check: disabling S2 machinery trades backup volume "
               "for extra reinforcement;\n  fewer S1 rounds push more pairs "
               "into (~)-sets; all variants stay correct.\n";
  return 0;
}
