// bench_optimizer — Experiment E11 (paper Discussion: the universal bound
// vs. instance-level optimization).
//
// "Although the universal upper bound is nearly tight, our upper bound
//  constructions might be far from optimal in some instances." — §Discussion.
//
// The greedy frontier answers both optimization problems the paper poses.
// This bench: (a) prints the greedy (r, b) frontier next to the universal
// ε sweep on the same graph; (b) reports, for each universal design, how
// much backup the greedy saves at the *same* reinforcement budget.
//
//   ./bench_optimizer [--n=1500]
#include "bench/bench_util.hpp"
#include "src/core/epsilon_ftbfs.hpp"
#include "src/core/optimizer.hpp"

using namespace ftb;

namespace {

void run_on(const std::string& label, const Graph& g, Vertex source) {
  const GreedyFrontier frontier(g, source);
  const std::vector<double> eps_grid{0.05, 0.1, 0.15, 0.2, 0.25, 1.0 / 3.0,
                                     0.5};

  Table t("E11 universal vs greedy at matched r — " + label + " (" +
          g.summary() + ")");
  t.columns({"eps", "universal_b", "universal_r", "greedy_b@same_r",
             "saving", "saving_pct"});
  for (const double eps : eps_grid) {
    EpsilonOptions opts;
    opts.eps = eps;
    const EpsilonResult uni = build_epsilon_ftbfs(g, source, opts);
    const std::int64_t r = uni.structure.num_reinforced();
    const std::int64_t gb = frontier.backup_at(
        std::min<std::int64_t>(r, static_cast<std::int64_t>(
                                      frontier.order().size())));
    const std::int64_t ub = uni.structure.num_backup();
    t.row(eps, ub, r, gb, ub - gb,
          ub > 0 ? 100.0 * static_cast<double>(ub - gb) /
                       static_cast<double>(ub)
                 : 0.0);
  }
  t.print(std::cout);

  // A slice of the frontier itself.
  Table f("E11 greedy frontier slice — " + label);
  f.columns({"r", "b", "b+r"});
  const auto& pts = frontier.points();
  const std::size_t step = std::max<std::size_t>(1, pts.size() / 12);
  for (std::size_t i = 0; i < pts.size(); i += step) {
    f.row(pts[i].reinforced, pts[i].backup,
          pts[i].reinforced + pts[i].backup);
  }
  f.row(pts.back().reinforced, pts.back().backup,
        pts.back().reinforced + pts.back().backup);
  f.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const Vertex n = static_cast<Vertex>(opt.get_int("n", 1500));

  bench::header("E11", "Discussion: instance-level optimization vs the "
                       "universal construction",
                "deep adversarial + dense random, n=" + std::to_string(n));

  const auto lb = lb::build_single_source(n, 0.5);
  run_on("deep adversarial", lb.graph, lb.source);

  const Graph er = bench::dense_random(n, 3);
  run_on("dense random", er, 0);

  std::cout << "shape check: greedy_b <= universal_b at every matched "
               "budget; the gap is the\n  instance-optimality slack the "
               "Discussion predicts.\n";
  return 0;
}
