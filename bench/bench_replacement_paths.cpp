// bench_replacement_paths — Experiment E10 (engine micro-throughput; the
// replacement-path machinery of refs [9]/[17] as realized here).
//
// Isolates the engine's sub-phases: per-tree-edge BFS (distance tables),
// per-vertex off-path detour BFS, oracle queries, and the interference
// index build.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/core/interference.hpp"
#include "src/core/oracle.hpp"
#include "src/graph/bfs_kernel.hpp"
#include "src/graph/lca.hpp"

using namespace ftb;

namespace {

void BM_DistTablesOnly(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = bench::dense_random(n, 11);
  const EdgeWeights w = EdgeWeights::uniform_random(g, 11);
  const BfsTree tree(g, w, 0);
  for (auto _ : state) {
    // collect_detours=false still builds tables + pairs; the tables
    // dominate. Report per-failure BFS throughput.
    ReplacementPathEngine::Config cfg;
    cfg.collect_detours = false;
    ReplacementPathEngine engine(tree, cfg);
    benchmark::DoNotOptimize(engine.stats().pairs_total);
  }
  state.counters["failures/s"] = benchmark::Counter(
      static_cast<double>(tree.tree_edges().size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_DistTablesOnly)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_DistTablesReferenceKernel(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = bench::dense_random(n, 11);
  const EdgeWeights w = EdgeWeights::uniform_random(g, 11);
  const BfsTree tree(g, w, 0);
  for (auto _ : state) {
    ReplacementPathEngine::Config cfg;
    cfg.collect_detours = false;
    cfg.reference_kernel = true;
    ReplacementPathEngine engine(tree, cfg);
    benchmark::DoNotOptimize(engine.stats().pairs_total);
  }
  state.counters["failures/s"] = benchmark::Counter(
      static_cast<double>(tree.tree_edges().size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_DistTablesReferenceKernel)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// Single-traversal micro throughput: the wrapper (materializing BfsResult),
// the raw kernel on a reused scratch, and the naive reference.
void BM_SingleBfsReference(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = bench::dense_random(n, 29);
  for (auto _ : state) {
    const BfsResult r = plain_bfs_reference(g, 0);
    benchmark::DoNotOptimize(r.order.size());
  }
}
BENCHMARK(BM_SingleBfsReference)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_SingleBfsKernel(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = bench::dense_random(n, 29);
  BfsScratch scratch;
  for (auto _ : state) {
    bfs_run(g, 0, {}, scratch);
    benchmark::DoNotOptimize(scratch.order().size());
  }
}
BENCHMARK(BM_SingleBfsKernel)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_CanonicalSpReference(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = bench::dense_random(n, 31);
  const EdgeWeights w = EdgeWeights::uniform_random(g, 31);
  for (auto _ : state) {
    const CanonicalSp sp = canonical_sp(g, w, 0);
    benchmark::DoNotOptimize(sp.order.size());
  }
}
BENCHMARK(BM_CanonicalSpReference)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_CanonicalSpKernel(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = bench::dense_random(n, 31);
  const EdgeWeights w = EdgeWeights::uniform_random(g, 31);
  CanonicalSpScratch scratch;
  for (auto _ : state) {
    canonical_sp_run(g, w, 0, {}, scratch);
    benchmark::DoNotOptimize(scratch.order().size());
  }
}
BENCHMARK(BM_CanonicalSpKernel)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_OracleQueries(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = bench::dense_random(n, 13);
  const EdgeWeights w = EdgeWeights::uniform_random(g, 13);
  const BfsTree tree(g, w, 0);
  const ReplacementPathEngine engine(tree);
  const ReplacementOracle oracle(engine);
  std::uint64_t x = 0;
  Rng rng(17);
  std::vector<std::pair<Vertex, EdgeId>> queries;
  for (int i = 0; i < 4096; ++i) {
    queries.emplace_back(
        static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n))),
        static_cast<EdgeId>(
            rng.next_below(static_cast<std::uint64_t>(g.num_edges()))));
  }
  for (auto _ : state) {
    for (const auto& [v, e] : queries) {
      x += static_cast<std::uint64_t>(oracle.distance(v, e));
    }
    benchmark::DoNotOptimize(x);
  }
  state.counters["queries/s"] = benchmark::Counter(
      static_cast<double>(queries.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_OracleQueries)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_InterferenceIndex(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const auto lbg = lb::build_single_source(n, 1.0 / 3.0);
  const EdgeWeights w = EdgeWeights::uniform_random(lbg.graph, 19);
  const BfsTree tree(lbg.graph, w, lbg.source);
  const ReplacementPathEngine engine(tree);
  const LcaIndex lca(tree);
  for (auto _ : state) {
    InterferenceIndex ifx(engine, lca);
    benchmark::DoNotOptimize(ifx.num_pairs());
  }
  state.counters["pairs"] =
      static_cast<double>(engine.stats().pairs_uncovered);
}
BENCHMARK(BM_InterferenceIndex)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void BM_PathReconstruction(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const auto lbg = lb::build_single_source(n, 0.4);
  const EdgeWeights w = EdgeWeights::uniform_random(lbg.graph, 23);
  const BfsTree tree(lbg.graph, w, lbg.source);
  const ReplacementPathEngine engine(tree);
  const auto& pairs = engine.uncovered_pairs();
  if (pairs.empty()) {
    state.SkipWithError("no uncovered pairs");
    return;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& p = pairs[i++ % pairs.size()];
    const auto path = engine.replacement_path(p.v, p.e);
    benchmark::DoNotOptimize(path.size());
  }
}
BENCHMARK(BM_PathReconstruction)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
