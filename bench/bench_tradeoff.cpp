// bench_tradeoff — Experiment E1 (Theorem 3.1, the headline tradeoff).
//
// Fixed n, sweep the algorithm's ε across [0,1] on
//   (a) the *deep* adversarial family (Theorem 5.1 graph built at
//       ε_G = 1/2: a single copy with Θ(√n)-length costly path and a full
//       bipartite core — the workload whose per-terminal last-edge counts
//       straddle the ⌈n^ε⌉ thresholds), and
//   (b) a dense random graph (benign contrast).
// Reported: measured b(n), r(n) plus the theorem normalizations
// b/(1/ε·n^{1+ε}·lg n), r/(1/ε·n^{1-ε}·lg n). Expected shape: b grows and
// r decays as ε rises; at ε ≥ 1/2 the n^{3/2} baseline takes over (r = 0);
// at ε = 0 the reinforced tree (b = 0).
//
//   ./bench_tradeoff [--n=2048] [--seed=1] [--eps=0,0.05,...]
#include "bench/bench_util.hpp"
#include "src/core/epsilon_ftbfs.hpp"

using namespace ftb;

namespace {

void run_on(const std::string& label, const Graph& g, Vertex source,
            const std::vector<double>& eps_grid) {
  Table t("E1 tradeoff on " + label + " (" + g.summary() + ")");
  t.columns({"eps", "thr", "|H|", "b(n)", "r(n)", "b_norm", "r_norm",
             "uncovered", "sec"});
  const std::int64_t n = g.num_vertices();
  for (const double eps : eps_grid) {
    EpsilonOptions opts;
    opts.eps = eps;
    const EpsilonResult res = build_epsilon_ftbfs(g, source, opts);
    const double b_bound = theorem_backup_bound(n, eps);
    const double r_bound = theorem_reinforce_bound(n, eps);
    t.row(eps, res.stats.threshold, res.stats.structure_edges,
          res.stats.backup, res.stats.reinforced,
          b_bound > 0 ? static_cast<double>(res.stats.backup) / b_bound : 0.0,
          r_bound > 0 ? static_cast<double>(res.stats.reinforced) / r_bound
                      : 0.0,
          res.stats.pairs_uncovered, res.stats.seconds_total);
  }
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const Vertex n = static_cast<Vertex>(opt.get_int("n", 2048));
  const std::uint64_t seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
  const std::vector<double> eps_grid = opt.get_double_list(
      "eps", {0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 1.0 / 3.0, 0.5, 1.0});

  bench::header("E1", "Theorem 3.1: b = O(min{1/eps n^{1+eps} lg n, n^1.5}), "
                      "r = O(1/eps n^{1-eps} lg n)",
                "deep adversarial graph (eps_G=1/2) + dense random, n=" +
                    std::to_string(n));

  const auto lb = lb::build_single_source(n, 0.5);
  run_on("deep adversarial", lb.graph, lb.source, eps_grid);

  const Graph er = bench::dense_random(n, seed);
  run_on("dense random", er, 0, eps_grid);

  std::cout
      << "shape check: on the adversarial family b(n) grows and r(n) decays\n"
         "  monotonically in eps (crossing to the pure-backup n^{3/2} branch\n"
         "  at eps >= 1/2); b_norm and r_norm stay O(1) throughout. Random\n"
         "  graphs are benign: everything is coverable, r = 0 for eps > 0.\n";
  return 0;
}
