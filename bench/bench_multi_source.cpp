// bench_multi_source — Experiment E5 (Theorem 5.4: multi-source lower
// bound Ω(K^{1-eps}·n^{1+eps}) under budget ⌊K·n^{1-eps}/6⌋).
//
// Sweep the source count K on the Theorem 5.4 graph; report the certified
// floor, the theorem normalization K^{1-eps}·n^{1+eps}, and the measured
// union FT-MBFS (b, r).
//
//   ./bench_multi_source [--n=2000] [--k=1,2,4,8] [--eps=0.3]
#include "bench/bench_util.hpp"
#include "src/core/multi_source.hpp"

using namespace ftb;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const Vertex n = static_cast<Vertex>(opt.get_int("n", 2000));
  const double eps = opt.get_double("eps", 0.3);
  const std::vector<long long> ks = opt.get_int_list("k", {1, 2, 4, 8});

  bench::header("E5", "Theorem 5.4: K sources force "
                      "b = Omega(K^{1-eps} n^{1+eps})",
                "Theorem 5.4 graph, n=" + std::to_string(n) +
                    ", eps=" + std::to_string(eps));

  Table t("E5 multi-source floor vs measured union FT-MBFS");
  t.columns({"K", "d", "k_cols", "|Pi|", "budget", "certified_b",
             "K^{1-e}n^{1+e}", "union_b", "union_r", "floor<=b", "sec"});
  for (const long long K : ks) {
    const auto lb =
        lb::build_multi_source(n, static_cast<std::int32_t>(K), eps);
    EpsilonOptions opts;
    opts.eps = eps;
    Timer timer;
    const MultiSourceResult ms =
        build_epsilon_ftmbfs(lb.graph, lb.sources, opts);
    const double sec = timer.seconds();
    const std::int64_t budget = lb.theorem_budget();
    const double norm = std::pow(static_cast<double>(K), 1.0 - eps) *
                        std::pow(static_cast<double>(n), 1.0 + eps);
    const bool floor_ok =
        ms.structure.num_backup() >=
        lb.certified_min_backup(ms.structure.num_reinforced());
    t.row(K, lb.d, lb.k, static_cast<long long>(lb.pi_edges.size()), budget,
          lb.certified_min_backup(budget), norm, ms.structure.num_backup(),
          ms.structure.num_reinforced(), floor_ok ? "yes" : "NO", sec);
  }
  t.print(std::cout);
  std::cout << "\nshape check: certified_b and union_b both grow with K "
               "below the K^{1-eps} n^{1+eps} envelope;\n  the union "
               "construction always clears its certified floor.\n";
  return 0;
}
