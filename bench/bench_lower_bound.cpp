// bench_lower_bound — Experiment E4 (Theorem 5.1: Ω(n^{1+eps}) backup edges
// under reinforcement budget ⌊n^{1-eps}/6⌋).
//
// For each ε: build the adversarial graph G_ε, compute the *certified*
// combinatorial lower bound (Claim 5.3 counting: every unreinforced costly
// edge forces its |X_i| bipartite edges), then run our ε FT-BFS and place
// its measured (b, r) against the bound — the construction must land above
// the certified floor and below the Theorem 3.1 ceiling.
//
//   ./bench_lower_bound [--n=2048] [--eps=0.2,0.25,0.333,0.4,0.5]
#include "bench/bench_util.hpp"
#include "src/core/epsilon_ftbfs.hpp"

using namespace ftb;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const Vertex n = static_cast<Vertex>(opt.get_int("n", 2048));
  const std::vector<double> eps_grid =
      opt.get_double_list("eps", {0.2, 0.25, 1.0 / 3.0, 0.4, 0.5});

  bench::header("E4", "Theorem 5.1: r <= n^{1-eps}/6 forces "
                      "b = Omega(n^{1+eps})",
                "adversarial G_eps, n=" + std::to_string(n));

  Table t("E4 certified floor vs measured structure");
  t.columns({"eps", "d", "k", "|Pi|", "|X_min|", "budget", "certified_b",
             "n^{1+eps}", "our_b", "our_r", "floor<=b", "ceil_norm"});
  for (const double eps : eps_grid) {
    const auto lb = lb::build_single_source(n, eps);
    EpsilonOptions opts;
    opts.eps = eps;
    const EpsilonResult res = build_epsilon_ftbfs(lb.graph, lb.source, opts);
    const std::int64_t budget = lb.theorem_budget();
    const std::int64_t certified = lb.certified_min_backup(budget);
    const double n_pow = std::pow(static_cast<double>(n), 1.0 + eps);
    // Our structure's own consistency: its b must exceed the floor implied
    // by its own reinforcement count.
    const bool floor_ok =
        res.stats.backup >=
        lb.certified_min_backup(res.stats.reinforced);
    t.row(eps, lb.d, lb.k, static_cast<long long>(lb.pi_edges.size()),
          lb.min_x_size(), budget, certified, n_pow, res.stats.backup,
          res.stats.reinforced, floor_ok ? "yes" : "NO",
          static_cast<double>(res.stats.backup) /
              theorem_backup_bound(n, eps));
  }
  t.print(std::cout);
  std::cout << "\nshape check: certified_b tracks n^{1+eps} (same exponent, "
               "constant-factor gap from\n  the d=n^eps/4 and budget/6 "
               "constants); our_b always sits above its own certified "
               "floor.\n";
  return 0;
}
