// bench_construction_time — Experiment E8 ("a polynomial time algorithm").
//
// google-benchmark wall times for the full constructions as n grows:
// engine (Phase S0), ESA'13 baseline, ε FT-BFS (S0+S1+S2) — on dense
// random and adversarial workloads. The empirical scaling should track the
// engine's O(n·m) core.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/core/epsilon_ftbfs.hpp"
#include "src/core/ftbfs.hpp"
#include "src/core/replacement.hpp"

using namespace ftb;

namespace {

void BM_EngineBuild(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = bench::dense_random(n, 3);
  const EdgeWeights w = EdgeWeights::uniform_random(g, 3);
  const BfsTree tree(g, w, 0);
  for (auto _ : state) {
    ReplacementPathEngine engine(tree);
    benchmark::DoNotOptimize(engine.stats().pairs_total);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n) * g.num_edges());
  state.counters["n"] = static_cast<double>(n);
  state.counters["m"] = static_cast<double>(g.num_edges());
}
BENCHMARK(BM_EngineBuild)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oN);

void BM_BaselineFtBfs(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = bench::dense_random(n, 5);
  for (auto _ : state) {
    const FtBfsStructure h = build_ftbfs(g, 0);
    benchmark::DoNotOptimize(h.num_edges());
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_BaselineFtBfs)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_EpsilonFtBfs(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = bench::dense_random(n, 7);
  EpsilonOptions opts;
  opts.eps = 1.0 / 3.0;
  for (auto _ : state) {
    const EpsilonResult res = build_epsilon_ftbfs(g, 0, opts);
    benchmark::DoNotOptimize(res.stats.structure_edges);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_EpsilonFtBfs)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_EpsilonFtBfsAdversarial(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const auto lb = lb::build_single_source(n, 1.0 / 3.0);
  EpsilonOptions opts;
  opts.eps = 1.0 / 3.0;
  for (auto _ : state) {
    const EpsilonResult res = build_epsilon_ftbfs(lb.graph, lb.source, opts);
    benchmark::DoNotOptimize(res.stats.structure_edges);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["m"] = static_cast<double>(lb.graph.num_edges());
}
BENCHMARK(BM_EpsilonFtBfsAdversarial)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
