// bench_construction_time — Experiment E8 ("a polynomial time algorithm").
//
// google-benchmark wall times for the full constructions as n grows:
// engine (Phase S0), ESA'13 baseline, ε FT-BFS (S0+S1+S2) — on dense
// random and adversarial workloads. The empirical scaling should track the
// engine's O(n·m) core.
//
// Before the registered benchmarks run, main() performs the kernel
// speedup measurement (reference queue-BFS engine vs direction-optimizing
// scratch-arena engine) for BOTH fault models of the unified S0 engine,
// asserts that reference and optimized kernels produce byte-identical
// FT-BFS edge sets on every bench seed (edge AND vertex structures), and
// writes the machine-readable BENCH_construction.json — including a
// per-seed vertex-fault row — for cross-PR perf tracking.
// FTBFS_N scales the measurement (default 2000); FTBFS_SKIP_SPEEDUP=1
// skips it.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <span>
#include <sstream>
#include <string_view>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/api/ftbfs_api.hpp"
#include "src/core/dual_fault.hpp"
#include "src/core/epsilon_ftbfs.hpp"
#include "src/core/ftbfs.hpp"
#include "src/core/replacement.hpp"
#include "src/core/structure_oracle.hpp"
#include "src/core/vertex_ftbfs.hpp"
#include "src/graph/bfs_kernel.hpp"
#include "src/graph/canonical_bfs.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/multi_source_bfs_kernel.hpp"
#include "src/io/binary_io.hpp"
#include "src/io/structure_io.hpp"
#include "src/util/rng.hpp"

using namespace ftb;

namespace {

void BM_EngineBuild(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = bench::dense_random(n, 3);
  const EdgeWeights w = EdgeWeights::uniform_random(g, 3);
  const BfsTree tree(g, w, 0);
  for (auto _ : state) {
    ReplacementPathEngine engine(tree);
    benchmark::DoNotOptimize(engine.stats().pairs_total);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n) * g.num_edges());
  state.counters["n"] = static_cast<double>(n);
  state.counters["m"] = static_cast<double>(g.num_edges());
}
BENCHMARK(BM_EngineBuild)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oN);

void BM_VertexEngineBuild(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = bench::dense_random(n, 3);
  const EdgeWeights w = EdgeWeights::uniform_random(g, 3);
  const BfsTree tree(g, w, 0);
  for (auto _ : state) {
    VertexReplacementEngine engine(tree);
    benchmark::DoNotOptimize(engine.stats().pairs_total);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n) * g.num_edges());
  state.counters["n"] = static_cast<double>(n);
  state.counters["m"] = static_cast<double>(g.num_edges());
}
BENCHMARK(BM_VertexEngineBuild)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oN);

void BM_EngineBuildReferenceKernel(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = bench::dense_random(n, 3);
  const EdgeWeights w = EdgeWeights::uniform_random(g, 3);
  const BfsTree tree(g, w, 0);
  ReplacementPathEngine::Config cfg;
  cfg.reference_kernel = true;
  for (auto _ : state) {
    ReplacementPathEngine engine(tree, cfg);
    benchmark::DoNotOptimize(engine.stats().pairs_total);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["m"] = static_cast<double>(g.num_edges());
}
BENCHMARK(BM_EngineBuildReferenceKernel)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_BaselineFtBfs(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = bench::dense_random(n, 5);
  for (auto _ : state) {
    const FtBfsStructure h = build_ftbfs(g, 0);
    benchmark::DoNotOptimize(h.num_edges());
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_BaselineFtBfs)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_EpsilonFtBfs(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = bench::dense_random(n, 7);
  EpsilonOptions opts;
  opts.eps = 1.0 / 3.0;
  for (auto _ : state) {
    const EpsilonResult res = build_epsilon_ftbfs(g, 0, opts);
    benchmark::DoNotOptimize(res.stats.structure_edges);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_EpsilonFtBfs)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_EpsilonFtBfsAdversarial(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const auto lb = lb::build_single_source(n, 1.0 / 3.0);
  EpsilonOptions opts;
  opts.eps = 1.0 / 3.0;
  for (auto _ : state) {
    const EpsilonResult res = build_epsilon_ftbfs(lb.graph, lb.source, opts);
    benchmark::DoNotOptimize(res.stats.structure_edges);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["m"] = static_cast<double>(lb.graph.num_edges());
}
BENCHMARK(BM_EpsilonFtBfsAdversarial)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

// ---- kernel speedup report + BENCH_construction.json -----------------------

/// Times one engine build and returns (seconds, stats).
double time_engine(const BfsTree& tree, bool reference,
                   ReplacementPathEngine::Stats* stats_out) {
  ReplacementPathEngine::Config cfg;
  cfg.collect_detours = true;
  cfg.reference_kernel = reference;
  Timer t;
  const ReplacementPathEngine engine(tree, cfg);
  const double sec = t.seconds();
  if (stats_out != nullptr) *stats_out = engine.stats();
  return sec;
}

// ---- batched query plane vs the serial oracle ------------------------------

/// Measures the api::Session batched query plane against the serial
/// single-scratch serving path (StructureOracle::query_unchecked plus the
/// same one-slot BFS cache for vertex what-ifs), on the structure the
/// speedup report just built. Two workloads:
///   * in-model sweep — every (tree edge, vertex) pair, fault-major: both
///     sides are O(1) lookups, so the ratio isolates batching overhead and
///     thread scaling;
///   * interleaved what-if storm — out-of-model faults arriving mixed (the
///     production shape): the serial path's one-slot cache misses almost
///     every query and pays a literal BFS each time, while the batched
///     plane groups the storm by fault and pays ONE traversal per distinct
///     failure, fanned out across the pool.
/// Returns false when the two paths disagree on any distance (CI trips).
bool run_query_plane_report(const Graph& g, const FtBfsStructure& h,
                            bench::JsonObject* out, double* headline) {
  const Vertex n = g.num_vertices();
  constexpr std::size_t kThreads = 8;

  // The legacy serial serving stack.
  const EdgeWeights w =
      EdgeWeights::uniform_random(g, EpsilonOptions{}.weight_seed);
  const BfsTree tree(g, w, 0);
  ReplacementPathEngine::Config ecfg;
  ecfg.collect_detours = false;
  const ReplacementPathEngine engine(tree, ecfg);
  const StructureOracle oracle(h, engine);

  // The batched plane on its own 8-worker pool (the acceptance target).
  ThreadPool pool(kThreads);
  api::BuildSpec spec;
  spec.sources = {0};
  spec.pool = &pool;
  const api::Session session = api::Session::deploy(
      g, api::BuildResult{spec, {0}, FtBfsStructure(h), {}, {}, {}, 0.0});

  bool agree = true;

  // Workload 1: in-model sweep, fault-major.
  std::vector<api::Query> sweep;
  for (const EdgeId e : h.tree_edges()) {
    if (h.is_reinforced(e)) continue;
    for (Vertex v = 0; v < n; v += 2) {
      api::Query q;
      q.v = v;
      q.kind = FaultClass::kEdge;
      q.fault = e;
      sweep.push_back(q);
    }
  }
  Timer t;
  std::int64_t serial_sum = 0;
  for (const api::Query& q : sweep) {
    serial_sum += oracle.query_unchecked(q.v, q.fault);
  }
  const double sweep_serial_s = t.seconds();
  t.restart();
  const api::QueryResponse sweep_resp = session.query(sweep);
  const double sweep_batched_s = t.seconds();
  std::int64_t batched_sum = 0;
  for (const api::QueryResult& r : sweep_resp.results) batched_sum += r.dist;
  if (batched_sum != serial_sum) {
    agree = false;
    std::cout << "!!! query plane: in-model sweep disagrees with the serial "
                 "oracle\n";
  }

  // Workload 2: interleaved what-if storm — all reinforced edges (if any)
  // plus a spread of router failures, arriving fault-interleaved.
  std::vector<std::pair<FaultClass, std::int32_t>> faults;
  for (const EdgeId e : h.reinforced()) {
    faults.emplace_back(FaultClass::kEdge, e);
  }
  const Vertex stride = std::max<Vertex>(1, n / 48);
  for (Vertex x = 1; x < n; x += stride) {
    faults.emplace_back(FaultClass::kVertex, x);
  }
  std::vector<api::Query> storm;
  for (Vertex v = 0; v < n; v += 8) {
    for (const auto& [kind, fault] : faults) {
      api::Query q;
      q.v = v;
      q.kind = kind;
      q.fault = fault;
      q.allow_what_if = true;
      storm.push_back(q);
    }
  }

  // Serial baseline: query_unchecked for edge faults (the oracle's own
  // one-slot cache) and the equivalent one-slot-cached literal BFS for
  // router faults — exactly what a serial server could do per query.
  t.restart();
  std::int64_t storm_serial_sum = 0;
  {
    BfsScratch scratch;
    std::vector<std::uint8_t> mask(static_cast<std::size_t>(n), 0);
    Vertex cached = kInvalidVertex;
    for (const api::Query& q : storm) {
      if (q.kind == FaultClass::kEdge) {
        storm_serial_sum += oracle.query_unchecked(q.v, q.fault);
        continue;
      }
      if (q.fault != cached) {
        if (cached != kInvalidVertex) {
          mask[static_cast<std::size_t>(cached)] = 0;
        }
        mask[static_cast<std::size_t>(q.fault)] = 1;
        BfsBans bans;
        bans.banned_vertex = &mask;
        bans.banned_edge_mask = &h.complement_mask();
        bfs_run(g, 0, bans, scratch);
        cached = q.fault;
      }
      storm_serial_sum += q.v == q.fault ? kInfHops : scratch.dist(q.v);
    }
  }
  const double storm_serial_s = t.seconds();
  t.restart();
  const api::QueryResponse storm_resp = session.query(storm);
  const double storm_batched_s = t.seconds();
  std::int64_t storm_batched_sum = 0;
  for (const api::QueryResult& r : storm_resp.results) {
    storm_batched_sum += r.dist;
  }
  if (storm_batched_sum != storm_serial_sum) {
    agree = false;
    std::cout << "!!! query plane: what-if storm disagrees with the serial "
                 "baseline\n";
  }

  const double sweep_speedup = sweep_serial_s / sweep_batched_s;
  const double storm_speedup = storm_serial_s / storm_batched_s;
  Table tb("query plane: batched Session vs serial oracle (threads=" +
           std::to_string(kThreads) + ")");
  tb.columns({"workload", "queries", "serial_s", "batched_s", "speedup"});
  tb.row("in_model_sweep", static_cast<long long>(sweep.size()),
         sweep_serial_s, sweep_batched_s, sweep_speedup);
  tb.row("what_if_storm", static_cast<long long>(storm.size()),
         storm_serial_s, storm_batched_s, storm_speedup);
  tb.print(std::cout);
  std::cout << "what-if storm: " << faults.size() << " distinct faults, "
            << storm_resp.what_if_traversals
            << " traversals paid by the batched plane\n";

  bench::JsonObject qp;
  qp.set("threads", static_cast<std::int64_t>(kThreads))
      .set("in_model_queries", static_cast<std::int64_t>(sweep.size()))
      .set("in_model_serial_s", sweep_serial_s)
      .set("in_model_batched_s", sweep_batched_s)
      .set("speedup_in_model", sweep_speedup)
      .set("what_if_queries", static_cast<std::int64_t>(storm.size()))
      .set("what_if_distinct_faults",
           static_cast<std::int64_t>(faults.size()))
      .set("what_if_traversals", storm_resp.what_if_traversals)
      .set("what_if_serial_s", storm_serial_s)
      .set("what_if_batched_s", storm_batched_s)
      .set("speedup_what_if_storm", storm_speedup)
      .set("answers_identical", agree);
  *out = qp;
  *headline = storm_speedup;
  return agree;
}

// ---- the serving plane: QPS, tail latency, and the cutover/oracle gates ---

/// Percentile (0..1) of per-batch service times, in microseconds.
double percentile_us(std::vector<double> lats, double p) {
  std::sort(lats.begin(), lats.end());
  const auto idx = std::min(
      lats.size() - 1, static_cast<std::size_t>(
                           p * static_cast<double>(lats.size())));
  return lats[idx] * 1e6;
}

/// The "millions of users" acceptance for the Session read path. Three
/// storms, each with its own regression gate:
///
///  1. closed-loop in-model singles through a dual session at batch sizes
///     {64, 512, 4096, 32768}, against a serial server looping query_one
///     over the same stream. GATE: speedup_in_model > 1 at EVERY batch
///     size — the adaptive cutover must keep batching a win whether it
///     serves inline or shards, and the answers must be bit-identical.
///  2. an open-loop mix on an edge-model session — independent 64-query
///     request batches, ~10% what-if traversals — for p50/p99 service
///     latency under traversal pressure (reported, not gated).
///  3. a dual-pair storm through a site_dist_oracle session. GATE: zero
///     pair traversals, site_oracle_hits > 0, and every answer identical
///     to the traversing (plain dual) session.
///
/// The ≥10M in-model QPS on 8 threads figure from docs/perf.md is a
/// server-hardware target and is reported for tracking, not gated — CI
/// containers are 1-core, where the cutover serves everything inline.
/// FTBFS_QPS_N resizes the workload (default 192; < 8 skips, gates pass
/// vacuously). Returns false when any gate trips (non-zero bench exit).
bool run_query_qps_report(bench::JsonObject* out) {
  const Vertex n = [] {
    const char* env = std::getenv("FTBFS_QPS_N");
    return env != nullptr ? static_cast<Vertex>(std::atoi(env))
                          : Vertex{192};
  }();
  if (n < 8) {
    std::cout << "query qps: skipped (FTBFS_QPS_N < 8)\n";
    out->set("skipped", true);
    return true;
  }
  constexpr std::size_t kThreads = 8;
  const Graph g = bench::dense_random(n, 3);
  ThreadPool pool(kThreads);

  api::BuildSpec dspec;
  dspec.fault_model = FaultClass::kDual;
  dspec.pool = &pool;
  const api::Session dual = api::Session::open(g, dspec);
  api::BuildSpec ospec = dspec;
  ospec.site_dist_oracle = true;
  const api::Session fast = api::Session::open(g, ospec);
  api::BuildSpec espec;
  espec.pool = &pool;
  const api::Session edge = api::Session::open(g, espec);

  bool identical = true;
  bool cutover_ok = true;

  // Storm 1: in-model singles (edge and router faults interleaved) on the
  // dual session, closed loop at each batch size. Best-of-3 on both sides
  // so the gate compares steady-state service rates, not scheduler noise.
  std::vector<api::Query> singles;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    for (Vertex v = 1; v < n; v += 11) {
      api::Query q;
      q.v = v;
      q.kind = FaultClass::kEdge;
      q.fault = e;
      singles.push_back(q);
      api::Query r = q;
      r.kind = FaultClass::kVertex;
      r.fault = std::max<Vertex>(1, v / 2);
      singles.push_back(r);
    }
  }
  const std::size_t kTarget = std::size_t{1} << 16;
  bench::JsonArray rows;
  Table tb("query qps: batched Session vs serial query_one loop (threads=" +
           std::to_string(kThreads) + ", n=" + std::to_string(n) + ")");
  tb.columns({"batch", "queries", "serial_qps", "batched_qps",
              "speedup_in_model", "p50_us", "p99_us"});
  double best_qps = 0;
  for (const std::size_t bsz :
       {std::size_t{64}, std::size_t{512}, std::size_t{4096},
        std::size_t{32768}}) {
    // Pre-cut the request stream so the timers see serving, not copying.
    std::vector<std::vector<api::Query>> slices;
    std::size_t total = 0, at = 0;
    while (total < kTarget) {
      std::vector<api::Query>& s = slices.emplace_back();
      s.reserve(bsz);
      for (std::size_t k = 0; k < bsz; ++k) {
        s.push_back(singles[at]);
        at = at + 1 == singles.size() ? 0 : at + 1;
      }
      total += bsz;
    }
    double serial_s = 1e300, batched_s = 1e300;
    std::int64_t serial_sum = 0, batched_sum = 0;
    // Best-of-N on both sides, extending past 3 reps (up to 8) until the
    // margin clears 1.05 — the gate asserts a steady-state property and
    // should not trip on a scheduler burst in a shared CI container. Each
    // timed region covers serve + drain of the WHOLE stream, with the
    // serial server materializing the same per-request response vector
    // the batched plane hands back: server-to-server, not
    // server-to-summing-loop.
    for (int rep = 0; rep < 8; ++rep) {
      std::int64_t sum = 0;
      Timer t;
      for (const std::vector<api::Query>& s : slices) {
        std::vector<api::QueryResult> o;
        o.reserve(s.size());
        for (const api::Query& q : s) o.push_back(dual.query_one(q));
        for (const api::QueryResult& r : o) sum += r.dist;
      }
      serial_s = std::min(serial_s, t.seconds());
      serial_sum = sum;

      sum = 0;
      t.restart();
      for (const std::vector<api::Query>& s : slices) {
        const api::QueryResponse resp = dual.query(s);
        for (const api::QueryResult& r : resp.results) sum += r.dist;
      }
      batched_s = std::min(batched_s, t.seconds());
      batched_sum = sum;
      if (rep >= 2 && serial_s / batched_s > 1.05) break;
    }
    // Per-request latency sampled in a separate pass so the gate's timer
    // never pays the per-slice clock reads.
    std::vector<double> lats;
    lats.reserve(slices.size());
    for (const std::vector<api::Query>& s : slices) {
      Timer bt;
      const api::QueryResponse resp = dual.query(s);
      benchmark::DoNotOptimize(resp.results.data());
      lats.push_back(bt.seconds());
    }
    if (batched_sum != serial_sum) {
      identical = false;
      std::cout << "!!! query qps: batched in-model answers diverge from "
                   "query_one at batch size "
                << bsz << "\n";
    }
    const double speedup = serial_s / batched_s;
    if (!(speedup > 1.0)) {
      cutover_ok = false;
      std::cout << "!!! query qps: speedup_in_model " << speedup
                << " <= 1 at batch size " << bsz
                << " — the adaptive cutover made batching a pessimization\n";
    }
    const double qps = static_cast<double>(total) / batched_s;
    best_qps = std::max(best_qps, qps);
    const double p50 = percentile_us(lats, 0.5);
    const double p99 = percentile_us(lats, 0.99);
    tb.row(static_cast<long long>(bsz), static_cast<long long>(total),
           static_cast<double>(total) / serial_s, qps, speedup, p50, p99);
    bench::JsonObject row;
    row.set("batch", static_cast<std::int64_t>(bsz))
        .set("queries", static_cast<std::int64_t>(total))
        .set("serial_qps", static_cast<double>(total) / serial_s)
        .set("batched_qps", qps)
        .set("speedup_in_model", speedup)
        .set("p50_us", p50)
        .set("p99_us", p99);
    rows.push(row);
  }
  tb.print(std::cout);

  // Storm 2: open-loop mix on the edge session — independent 64-query
  // request batches with ~10% what-if (router) traffic woven in.
  const FtBfsStructure& eh = edge.structure();
  std::vector<api::Query> mixed;
  {
    std::vector<api::Query> inm;
    for (const EdgeId e : eh.tree_edges()) {
      if (eh.is_reinforced(e)) continue;
      for (Vertex v = 1; v < n; v += 13) {
        api::Query q;
        q.v = v;
        q.fault = e;
        inm.push_back(q);
      }
    }
    std::vector<api::Query> wifs;
    const Vertex wstride = std::max<Vertex>(1, n / 24);
    for (Vertex x = 1; x < n; x += wstride) {
      for (Vertex v = 0; v < n; v += 16) {
        api::Query q;
        q.v = v;
        q.kind = FaultClass::kVertex;
        q.fault = x;
        q.allow_what_if = true;
        wifs.push_back(q);
      }
    }
    std::size_t wi = 0;
    for (std::size_t i = 0; i < inm.size(); ++i) {
      mixed.push_back(inm[i]);
      if (i % 9 == 8) {
        mixed.push_back(wifs[wi]);
        wi = wi + 1 == wifs.size() ? 0 : wi + 1;
      }
    }
  }
  constexpr std::size_t kRequest = 64;
  double mixed_s = 1e300;
  std::vector<double> mixed_lats;
  std::int64_t mixed_what_if = 0, mixed_in_model = 0;
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<double> l;
    std::int64_t wif = 0, inmod = 0;
    for (std::size_t lo = 0; lo < mixed.size(); lo += kRequest) {
      const std::size_t hi = std::min(mixed.size(), lo + kRequest);
      const api::QueryBatch req(mixed.data() + lo, hi - lo);
      Timer bt;
      const api::QueryResponse resp = edge.query(req);
      l.push_back(bt.seconds());
      wif += resp.what_if;
      inmod += resp.in_model;
    }
    double b = 0;
    for (const double x : l) b += x;
    if (b < mixed_s) {
      mixed_s = b;
      mixed_lats = std::move(l);
      mixed_what_if = wif;
      mixed_in_model = inmod;
    }
  }
  for (std::size_t i = 0; i < mixed.size(); i += 37) {
    // Spot referee: the open-loop batches must agree with query_one.
    const api::QueryResult one = edge.query_one(mixed[i]);
    const std::size_t lo = (i / kRequest) * kRequest;
    const std::size_t hi = std::min(mixed.size(), lo + kRequest);
    const api::QueryResponse resp =
        edge.query(api::QueryBatch(mixed.data() + lo, hi - lo));
    if (resp.results[i - lo].dist != one.dist) {
      identical = false;
      std::cout << "!!! query qps: open-loop mix diverges from query_one at "
                << i << "\n";
    }
  }
  const double mixed_qps = static_cast<double>(mixed.size()) / mixed_s;

  // Storm 3: the dual-pair plane — plain (traversing) session vs the
  // site-dist oracle session over the same storm, bit-identity enforced.
  std::vector<api::Query> pairs;
  const auto& te = dual.structure().tree_edges();
  for (std::size_t i = 0; i + 1 < te.size(); i += 2) {
    for (Vertex v = 0; v < n; v += 5) {
      api::Query q;
      q.v = v;
      q.kind = FaultClass::kEdge;
      q.fault = te[i];
      q.kind2 = FaultClass::kEdge;
      q.fault2 = te[i + 1];
      pairs.push_back(q);
      api::Query m = q;
      m.kind2 = FaultClass::kVertex;
      m.fault2 = std::max<Vertex>(1, v);
      pairs.push_back(m);
    }
  }
  Timer pt;
  const api::QueryResponse plain_resp = dual.query(pairs);
  const double pair_plain_s = pt.seconds();
  double pair_fast_s = 1e300;
  std::int64_t pair_traversals = 0, oracle_hits = 0;
  constexpr std::size_t kPairBatch = 4096;
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<api::QueryResponse> resps;
    double b = 0;
    std::int64_t trav = 0, hits = 0;
    for (std::size_t lo = 0; lo < pairs.size(); lo += kPairBatch) {
      const std::size_t hi = std::min(pairs.size(), lo + kPairBatch);
      Timer bt;
      resps.push_back(fast.query(api::QueryBatch(pairs.data() + lo, hi - lo)));
      b += bt.seconds();
      trav += resps.back().pair_traversals;
      hits += resps.back().site_oracle_hits;
    }
    pair_fast_s = std::min(pair_fast_s, b);
    pair_traversals = trav;
    oracle_hits = hits;
    if (rep == 0) {
      std::size_t at2 = 0;
      for (const api::QueryResponse& resp : resps) {
        for (const api::QueryResult& r : resp.results) {
          if (r.dist != plain_resp.results[at2].dist) {
            identical = false;
            std::cout << "!!! query qps: oracle pair storm diverges from the "
                         "traversing plane at "
                      << at2 << "\n";
          }
          ++at2;
        }
      }
    }
  }
  const bool oracle_ok = pair_traversals == 0 && oracle_hits > 0;
  if (!oracle_ok) {
    std::cout << "!!! query qps: oracle pair storm paid " << pair_traversals
              << " traversals (site_oracle_hits=" << oracle_hits
              << ") — expected a traversal-free plane\n";
  }
  const double pair_qps = static_cast<double>(pairs.size()) / pair_fast_s;
  std::cout << "open-loop mix: " << mixed_qps << " qps, p50 "
            << percentile_us(mixed_lats, 0.5) << "us, p99 "
            << percentile_us(mixed_lats, 0.99) << "us ("
            << mixed_what_if << " what-if / " << mixed_in_model
            << " in-model)\n"
            << "oracle pair storm: " << pair_qps << " qps ("
            << pair_plain_s / pair_fast_s << "x over the traversing plane, "
            << oracle_hits << " oracle hits, " << pair_traversals
            << " traversals)\n";

  bench::JsonObject qq;
  qq.set("threads", static_cast<std::int64_t>(kThreads))
      .set("n", static_cast<std::int64_t>(n))
      .set("m", static_cast<std::int64_t>(g.num_edges()))
      .set_raw("in_model_per_batch", rows.str(2))
      .set("in_model_best_qps", best_qps)
      .set("target_qps_8_threads", static_cast<std::int64_t>(10'000'000))
      .set("mixed_queries", static_cast<std::int64_t>(mixed.size()))
      .set("mixed_open_loop_qps", mixed_qps)
      .set("mixed_p50_us", percentile_us(mixed_lats, 0.5))
      .set("mixed_p99_us", percentile_us(mixed_lats, 0.99))
      .set("mixed_what_if", mixed_what_if)
      .set("mixed_in_model", mixed_in_model)
      .set("pair_storm_pairs", static_cast<std::int64_t>(pairs.size()))
      .set("pair_storm_qps", pair_qps)
      .set("pair_storm_traversing_qps",
           static_cast<double>(pairs.size()) / pair_plain_s)
      .set("pair_traversals", pair_traversals)
      .set("site_oracle_hits", oracle_hits)
      .set("answers_identical", identical)
      .set("cutover_speedup_ok", cutover_ok)
      .set("oracle_traversal_free", oracle_ok);
  *out = qq;
  return identical && cutover_ok && oracle_ok;
}

// ---- the dual-failure pipeline: build timing + brute-force identity -------

/// Pruned-vs-unpruned build timing at a size where the unpruned referee is
/// too slow to verify pair-by-pair: records the build times, the speedup
/// and both structure sizes (the acceptance trajectory for the Parter
/// pruning + prefix reuse). Gates: the pruned structure must stay strictly
/// below the unpruned size and the speedup at or above 3× — non-zero exit
/// otherwise. FTBFS_DUAL_SCALE_N resizes it (the CI smoke runs the gates
/// at 300; 0 skips entirely; the committed BENCH_construction.json
/// carries the full n=1000 measurement).
bool run_dual_scale_report(bench::JsonObject* out) {
  Vertex n = 1000;
  if (const char* env = std::getenv("FTBFS_DUAL_SCALE_N")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || parsed < 0) {
      // A typo'd override must not silently skip the acceptance gates.
      std::cout << "!!! FTBFS_DUAL_SCALE_N invalid (" << env << ")\n";
      out->set("invalid_env", true);
      return false;
    }
    n = static_cast<Vertex>(parsed);
  }
  if (n < 8) {  // 0 = explicit skip
    out->set("skipped", true);
    return true;
  }
  const Graph g = bench::dense_random(n, 3);
  api::BuildSpec spec;
  spec.fault_model = FaultClass::kDual;
  Timer t;
  const api::BuildResult pruned = api::build(g, spec);
  const double pruned_s = t.seconds();
  api::BuildSpec ref_spec = spec;
  ref_spec.unpruned_dual = true;
  t.restart();
  const api::BuildResult unpruned = api::build(g, ref_spec);
  const double unpruned_s = t.seconds();
  const double speedup = unpruned_s / pruned_s;
  const bool size_ok =
      pruned.structure.num_edges() < unpruned.structure.num_edges();
  const bool speed_ok = speedup >= 3.0;
  // The pruned structure still honors the dual contract on a seeded pair
  // sample at this size, under the unpruned size budget.
  const std::int64_t violations =
      verify_dual_structure(pruned.structure, /*max_pairs=*/200, /*seed=*/3,
                            nullptr, unpruned.structure.num_edges() - 1);
  out->set("n", static_cast<std::int64_t>(n))
      .set("m", static_cast<std::int64_t>(g.num_edges()))
      .set("edges_in_H_pruned", pruned.structure.num_edges())
      .set("edges_in_H_unpruned", unpruned.structure.num_edges())
      .set("build_s_pruned", pruned_s)
      .set("build_s_unpruned", unpruned_s)
      .set("speedup_build", speedup)
      .set("verify_violations", violations)
      .set("gates_ok", size_ok && speed_ok && violations == 0);
  std::cout << "dual scale (n=" << n << "): pruned "
            << pruned.structure.num_edges() << " edges in " << pruned_s
            << "s, unpruned " << unpruned.structure.num_edges()
            << " edges in " << unpruned_s << "s — " << speedup
            << "x build speedup\n";
  if (!size_ok) {
    std::cout << "!!! pruned dual structure is not smaller than the "
                 "unpruned referee at n=" << n << "\n";
  }
  if (!speed_ok) {
    std::cout << "!!! pruned dual build speedup below 3x at n=" << n << "\n";
  }
  if (violations != 0) {
    std::cout << "!!! pruned dual structure fails verification at n=" << n
              << "\n";
  }
  return size_ok && speed_ok && violations == 0;
}

/// DFS-order ancestor-sweep sharing (DualFtBfsOptions::dfs_schedule) vs
/// the independent-rebase referee. Three gates, non-zero exit on failure:
///   * bit-identity — structures, pair tables AND site-dist rows must be
///     byte-identical under both schedules on every identity seed (the
///     oracle is harvested so its rows are part of the referee);
///   * work — the rebase-seam counter (label writes + sweep visits) must
///     be strictly below the independent schedule's on every run: the DFS
///     schedule pays subtree-volume patches where the referee pays a full
///     O(n) label copy per site;
///   * wall-clock — best-of-repeats DFS build beats the independent build
///     at the large-n tier, where the removed copies dominate.
/// FTBFS_DUAL_DFS_SCALE_N resizes the timing tier (rounded down to a power
/// of two for the R-MAT workload; < 8 skips; the CI Release smoke runs the
/// gates at a reduced tier, the committed BENCH_construction.json carries
/// the full n=4096 measurement).
bool run_dual_dfs_schedule_report(bench::JsonObject* out) {
  Vertex n = 4096;
  if (const char* env = std::getenv("FTBFS_DUAL_DFS_SCALE_N")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || parsed < 0) {
      // A typo'd override must not silently skip the acceptance gates.
      std::cout << "!!! FTBFS_DUAL_DFS_SCALE_N invalid (" << env << ")\n";
      out->set("invalid_env", true);
      return false;
    }
    n = static_cast<Vertex>(parsed);
  }
  if (n < 8) {  // 0 = explicit skip
    out->set("skipped", true);
    return true;
  }

  // Identity tier: moderate n across three seeds, oracle on. Every derived
  // byte must agree between the schedules.
  bool identical = true;
  bool work_ok = true;
  bench::JsonArray rows;
  const Vertex id_n = std::min<Vertex>(n, 384);
  for (const std::uint64_t seed : {3ULL, 5ULL, 7ULL}) {
    const Graph g = bench::dense_random(id_n, seed);
    DualFtBfsOptions opts;
    opts.site_dist_oracle = true;
    opts.dfs_schedule = true;
    const DualBuildResult dfs =
        detail::build_dual_failure_ftbfs_impl(g, 0, opts);
    opts.dfs_schedule = false;
    const DualBuildResult ind =
        detail::build_dual_failure_ftbfs_impl(g, 0, opts);
    const bool same =
        dfs.structure.edges() == ind.structure.edges() &&
        dfs.structure.reinforced() == ind.structure.reinforced() &&
        dfs.tables.sites == ind.tables.sites &&
        dfs.tables.offsets == ind.tables.offsets &&
        dfs.tables.edge_pool == ind.tables.edge_pool &&
        dfs.site_dist.site_offsets == ind.site_dist.site_offsets &&
        dfs.site_dist.parent_edge == ind.site_dist.parent_edge &&
        dfs.site_dist.tf_depth == ind.site_dist.tf_depth &&
        dfs.site_dist.row_offsets == ind.site_dist.row_offsets &&
        dfs.site_dist.rows == ind.site_dist.rows;
    const bool lower = dfs.sweep_work.total() < ind.sweep_work.total();
    if (!same) {
      std::cout << "!!! dual dfs schedule diverges from the independent "
                   "referee at n=" << id_n << " seed=" << seed << "\n";
    }
    if (!lower) {
      std::cout << "!!! dual dfs schedule work not strictly below the "
                   "independent referee at n=" << id_n << " seed=" << seed
                << " (" << dfs.sweep_work.total() << " vs "
                << ind.sweep_work.total() << ")\n";
    }
    identical = identical && same;
    work_ok = work_ok && lower;
    bench::JsonObject row;
    row.set("seed", static_cast<std::int64_t>(seed))
        .set("n", static_cast<std::int64_t>(id_n))
        .set("identical", same)
        .set("work_dfs", dfs.sweep_work.total())
        .set("work_independent", ind.sweep_work.total());
    rows.push(row);
  }

  // Timing tier: R-MAT at the largest power of two ≤ n — the regime where
  // the independent schedule's per-site O(n) label copies and fresh-tree
  // allocations dominate the subtree-volume sweeps. Best-of-repeats per
  // leg de-noises the gate; the leg ORDER alternates per rep so neither
  // schedule systematically inherits the warmer allocator state.
  Vertex scale = 3;
  while ((Vertex{1} << (scale + 1)) <= n) ++scale;
  const Vertex tn = Vertex{1} << scale;
  const Graph big =
      gen::rmat_connected(scale, 3 * static_cast<std::int64_t>(tn), 1);
  double dfs_s = 1e300;
  double ind_s = 1e300;
  std::int64_t big_work_dfs = 0;
  std::int64_t big_work_ind = 0;
  bool big_identical = true;
  const auto timed_leg = [&](bool dfs_leg) {
    DualFtBfsOptions opts;
    opts.dfs_schedule = dfs_leg;
    Timer t;
    const DualBuildResult r =
        detail::build_dual_failure_ftbfs_impl(big, 0, opts);
    const double s = t.seconds();
    if (dfs_leg) {
      dfs_s = std::min(dfs_s, s);
      big_work_dfs = r.sweep_work.total();
    } else {
      ind_s = std::min(ind_s, s);
      big_work_ind = r.sweep_work.total();
    }
    return r;
  };
  for (int rep = 0; rep < 3; ++rep) {
    const bool dfs_first = rep % 2 == 0;
    const DualBuildResult a = timed_leg(dfs_first);
    const DualBuildResult b = timed_leg(!dfs_first);
    const DualBuildResult& dfs = dfs_first ? a : b;
    const DualBuildResult& ind = dfs_first ? b : a;
    big_identical = big_identical &&
                    dfs.structure.edges() == ind.structure.edges() &&
                    dfs.tables.edge_pool == ind.tables.edge_pool;
  }
  const double speedup = ind_s / dfs_s;
  const bool big_work_ok = big_work_dfs < big_work_ind;
  const bool speed_ok = speedup > 1.0;
  identical = identical && big_identical;
  work_ok = work_ok && big_work_ok;
  if (!big_identical) {
    std::cout << "!!! dual dfs schedule diverges from the independent "
                 "referee at the timing tier (n=" << tn << ")\n";
  }
  if (!big_work_ok) {
    std::cout << "!!! dual dfs schedule work not strictly below the "
                 "independent referee at n=" << tn << "\n";
  }
  if (!speed_ok) {
    std::cout << "!!! dual dfs schedule wall-clock speedup " << speedup
              << "x not above 1x at n=" << tn << "\n";
  }
  std::cout << "dual dfs schedule (n=" << tn << "): dfs " << dfs_s
            << "s, independent " << ind_s << "s — " << speedup
            << "x, work " << big_work_dfs << " vs " << big_work_ind << "\n";

  out->set_raw("identity_per_seed", rows.str(2))
      .set("timing_n", static_cast<std::int64_t>(tn))
      .set("timing_m", static_cast<std::int64_t>(big.num_edges()))
      .set("build_s_dfs", dfs_s)
      .set("build_s_independent", ind_s)
      .set("speedup_build", speedup)
      .set("work_dfs", big_work_dfs)
      .set("work_independent", big_work_ind)
      .set("bit_identical", identical)
      .set("work_strictly_lower", work_ok)
      .set("gates_ok", identical && work_ok && speed_ok);
  return identical && work_ok && speed_ok;
}

/// Builds the dual-failure structure per bench seed — pruned AND the
/// unpruned PR 4 referee — serves a pair storm through the batched Session
/// plane and checks every answer bit-identical against brute-force
/// two-failure BFS and the referee session (the acceptance gate: non-zero
/// exit on divergence). The per-seed rows carry the new
/// `edges_in_H_pruned` column next to the PR 4 `edges_in_H` baseline; a
/// pruned size at or above the baseline, or over the referee budget in
/// verify_dual_structure, also trips the gate. Also times the batched
/// plane against the naive serve-every-pair-with-a-full-G-BFS baseline.
bool run_dual_report(bench::JsonObject* out) {
  const Vertex n = [] {
    const char* env = std::getenv("FTBFS_DUAL_N");
    const int parsed = env != nullptr ? std::atoi(env) : 0;
    return parsed >= 8 ? static_cast<Vertex>(parsed) : Vertex{96};
  }();
  constexpr std::int64_t kPairsPerSeed = 400;

  bool identical = true;
  bench::JsonArray rows;
  double build_s_last = 0;
  for (const std::uint64_t seed : {3ULL, 5ULL, 7ULL}) {
    const Graph g = bench::dense_random(n, seed);
    api::BuildSpec spec;
    spec.fault_model = FaultClass::kDual;
    Timer t;
    const api::BuildResult res = api::build(g, spec);
    const double build_s = t.seconds();
    build_s_last = build_s;

    // The unpruned PR 4 recursion: the differential referee and the
    // per-seed size budget.
    api::BuildSpec ref_spec = spec;
    ref_spec.unpruned_dual = true;
    t.restart();
    const api::BuildResult ref = api::build(g, ref_spec);
    const double build_unpruned_s = t.seconds();
    const bool size_ok = res.structure.num_edges() < ref.structure.num_edges();
    if (!size_ok) {
      identical = false;
      std::cout << "!!! pruned dual structure not strictly below the PR 4 "
                   "baseline at seed " << seed << "\n";
    }
    // Size-regression referee: the pruned structure must verify under the
    // recorded per-seed bound (the unpruned size minus one — strictness).
    if (verify_dual_structure(res.structure, /*max_pairs=*/300,
                              /*seed=*/seed, nullptr,
                              ref.structure.num_edges() - 1) != 0) {
      identical = false;
      std::cout << "!!! pruned dual structure fails verification under the "
                   "per-seed budget at seed " << seed << "\n";
    }
    const api::Session ref_session = api::Session::deploy(g, ref);
    const api::Session session = api::Session::deploy(g, res);
    const Vertex src = spec.sources.front();

    // The pair storm: every query of every sampled pair, batched. Same
    // universe rule as verify_dual_structure: every edge, every
    // non-source vertex.
    std::vector<DualSite> universe;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      universe.push_back(DualSite{FaultClass::kEdge, e});
    }
    for (Vertex x = 0; x < g.num_vertices(); ++x) {
      if (x != src) universe.push_back(DualSite{FaultClass::kVertex, x});
    }
    Rng rng(seed);
    std::vector<std::pair<DualSite, DualSite>> pairs;
    for (std::int64_t i = 0; i < kPairsPerSeed; ++i) {
      pairs.emplace_back(universe[rng.next_below(universe.size())],
                         universe[rng.next_below(universe.size())]);
    }
    // Interleaved, vertex-major: consecutive queries name DIFFERENT
    // pairs (the production arrival shape), so any one-slot cache on the
    // serial side misses nearly every query while the batched plane
    // regroups the storm by pair.
    std::vector<api::Query> storm;
    for (Vertex v = 0; v < n; v += 2) {
      for (const auto& [a, b] : pairs) {
        api::Query q;
        q.v = v;
        q.kind = a.kind;
        q.fault = a.id;
        q.kind2 = b.kind;
        q.fault2 = b.id;
        storm.push_back(q);
      }
    }
    t.restart();
    const api::QueryResponse resp = session.query(storm);
    const double batched_s = t.seconds();

    // The unpruned referee must agree with the pruned session on every
    // answer — the `unpruned_dual` escape hatch is exactly this check.
    bool agree = resp.refused == 0;
    {
      const api::QueryResponse ref_resp = ref_session.query(storm);
      for (std::size_t i = 0; i < storm.size(); ++i) {
        if (resp.results[i].dist != ref_resp.results[i].dist) {
          agree = false;
          break;
        }
      }
      if (!agree) {
        std::cout << "!!! pruned dual answers diverge from the unpruned "
                     "referee at seed " << seed << "\n";
      }
    }

    // Naive baseline: one full-G brute-force BFS per query pair (one-slot
    // cached, like the serial single-fault path) — and simultaneously the
    // bit-identity referee for every batched answer.
    t.restart();
    {
      BfsScratch truth;
      std::size_t qi = 0;
      std::pair<DualSite, DualSite> cached{{FaultClass::kEdge, -1},
                                           {FaultClass::kEdge, -1}};
      for (Vertex v = 0; v < n; v += 2) {
        for (const auto& pr : pairs) {
          if (!(pr == cached)) {
            dual_bruteforce_bfs(g, 0, pr.first, pr.second, truth);
            cached = pr;
          }
          const bool destroyed =
              (pr.first.kind == FaultClass::kVertex && pr.first.id == v) ||
              (pr.second.kind == FaultClass::kVertex && pr.second.id == v);
          const std::int32_t want = destroyed ? kInfHops : truth.dist(v);
          if (resp.results[qi].dist != want) agree = false;
          ++qi;
        }
      }
    }
    const double serial_s = t.seconds();
    if (!agree) {
      identical = false;
      std::cout << "!!! dual answers diverge from brute-force two-failure "
                   "BFS at seed "
                << seed << "\n";
    }

    bench::JsonObject row;
    row.set("seed", static_cast<std::int64_t>(seed))
        .set("n", static_cast<std::int64_t>(n))
        .set("m", static_cast<std::int64_t>(g.num_edges()))
        .set("sites",
             static_cast<std::int64_t>(res.dual_tables.front().num_sites()))
        .set("edges_in_H", ref.structure.num_edges())  // the PR 4 baseline
        .set("edges_in_H_pruned", res.structure.num_edges())
        .set("size_strictly_below_baseline", size_ok)
        .set("build_s", build_s)
        .set("build_s_unpruned", build_unpruned_s)
        .set("speedup_build", build_unpruned_s / build_s)
        .set("pairs", kPairsPerSeed)
        .set("queries", static_cast<std::int64_t>(storm.size()))
        .set("pair_traversals", resp.pair_traversals)
        .set("batched_s", batched_s)
        .set("serial_bruteforce_s", serial_s)
        .set("speedup_vs_bruteforce", serial_s / batched_s)
        .set("answers_identical", agree);
    rows.push(row);
  }

  bench::JsonObject dual;
  dual.set("n", static_cast<std::int64_t>(n))
      .set("build_s", build_s_last)
      .set_raw("per_seed", rows.str(2))
      .set("answers_identical", identical);
  *out = dual;
  std::cout << "dual-failure pipeline (n=" << n << "): answers "
            << (identical ? "bit-identical to" : "DIVERGE from")
            << " brute-force two-failure BFS across seeds {3,5,7}\n";
  return identical;
}

/// Times the zero-trust artifact plane on a dual session: checksummed v5
/// save, strict reload (every section CRC-verified + per-line validation),
/// and Session::fsck() over the reloaded session. Gates are semantic plus
/// a generous wall-clock ceiling: the reload must serve bit-identical
/// answers on a pair sweep, fsck must come back clean (not degraded), and
/// the whole save+load+fsck round trip must stay under 30 s — artifact
/// integrity is supposed to be effectively free next to the build.
bool run_io_integrity_report(bench::JsonObject* out) {
  const Vertex n = 96;
  const Graph g = bench::dense_random(n, 3);
  api::BuildSpec spec;
  spec.fault_model = FaultClass::kDual;
  const api::Session session = api::Session::open(g, spec);

  const std::string path = "BENCH_io_scratch.ftbfs";
  Timer t;
  session.save_v5(path);
  const double save_s = t.seconds();
  std::int64_t artifact_bytes = 0;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    artifact_bytes = static_cast<std::int64_t>(in.tellg());
  }

  api::SessionConfig cfg;
  cfg.tolerate_corruption = false;  // strict: every checksum must hold
  t.restart();
  const api::Session reloaded = api::Session::load(g, path, cfg);
  const double load_s = t.seconds();

  t.restart();
  const api::FsckReport rep = reloaded.fsck();
  const double fsck_s = t.seconds();

  // Bit-identity sweep: a spread of in-model failure pairs through both
  // sessions.
  bool identical = true;
  std::vector<api::Query> sweep;
  for (Vertex v = 1; v < n; v += 5) {
    api::Query q;
    q.v = v;
    q.kind = FaultClass::kVertex;
    q.fault = (v + 7) % n != 0 ? (v + 7) % n : 1;
    q.kind2 = FaultClass::kEdge;
    q.fault2 = static_cast<std::int32_t>(v % g.num_edges());
    sweep.push_back(q);
  }
  const api::QueryResponse a = session.query(sweep);
  const api::QueryResponse b = reloaded.query(sweep);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (a.results[i].dist != b.results[i].dist ||
        a.results[i].outcome != b.results[i].outcome) {
      identical = false;
    }
  }
  std::remove(path.c_str());

  const double total_s = save_s + load_s + fsck_s;
  const bool ok =
      rep.ok && !rep.degraded && identical && total_s < 30.0;
  out->set("n", static_cast<std::int64_t>(n))
      .set("artifact_bytes", artifact_bytes)
      .set("save_v5_s", save_s)
      .set("load_strict_s", load_s)
      .set("fsck_s", fsck_s)
      .set("fsck_checks", rep.checks)
      .set("fsck_ok", rep.ok)
      .set("degraded", rep.degraded)
      .set("reload_answers_identical", identical)
      .set("gates_ok", ok);
  std::cout << "io integrity (n=" << n << "): v5 save " << save_s
            << "s, strict load " << load_s << "s, fsck " << fsck_s << "s ("
            << rep.checks << " checks) — "
            << (ok ? "ok" : "GATE FAILED") << "\n";
  if (!identical) {
    std::cout << "!!! reloaded v5 session diverges from the live session\n";
  }
  if (!rep.ok || rep.degraded) {
    std::cout << "!!! fsck on a clean v5 reload: " << rep.to_string() << "\n";
  }
  return ok;
}

// ---- the binary artifact plane at real-graph scale -------------------------

/// Builds ONE dual structure on an R-MAT workload (the real-graph tier:
/// skewed degrees, community structure), persists it in both the v5 text
/// framing and the v6 binary container, and measures the deployment path:
/// v5 text load vs v6 mmap attach (directory + per-section CRC audit,
/// zero-copy section views) vs v6 full decode — plus the first pair query
/// through a freshly loaded Session on each format. Gates (non-zero bench
/// exit when tripped):
///
///  * the v6 mmap attach must beat the v5 text load by >= 10x at
///    n >= 50000 (>= 2x under smaller overrides, where the constant-cost
///    floor compresses the ratio);
///  * a dual pair-query storm served by the v5-loaded and the v6-loaded
///    Sessions must be bit-identical, answer by answer;
///  * re-encoding the decoded v6 artifact must reproduce the on-disk
///    bytes exactly — the container's canonical-fixed-point contract,
///    checked at scale, not just on the unit-test toys.
///
/// FTBFS_ARTIFACT_SCALE_N sizes the workload (default 50000, rounded up
/// to the R-MAT power of two; < 8 skips; an invalid override trips the
/// gate). The dual build at the default size is ~10 minutes of
/// single-core work — the CI smoke turns the knob down and the committed
/// BENCH_construction.json carries the full-scale numbers.
bool run_artifact_plane_report(bench::JsonObject* out) {
  Vertex n = 50000;
  if (const char* env = std::getenv("FTBFS_ARTIFACT_SCALE_N")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || parsed < 0) {
      std::cout << "!!! FTBFS_ARTIFACT_SCALE_N invalid (" << env << ")\n";
      out->set("invalid_env", true);
      return false;
    }
    n = static_cast<Vertex>(parsed);
  }
  if (n < 8) {  // 0 = explicit skip
    std::cout << "artifact plane: skipped (FTBFS_ARTIFACT_SCALE_N < 8)\n";
    out->set("skipped", true);
    return true;
  }
  Vertex scale = 3;
  while ((Vertex{1} << scale) < n) ++scale;
  const Vertex n_rmat = Vertex{1} << scale;
  const Graph g = gen::rmat_connected(scale, 3 * std::int64_t{n_rmat}, 5);

  api::BuildSpec spec;
  spec.fault_model = FaultClass::kDual;
  Timer t;
  const api::BuildResult res = api::build(g, spec);
  const double build_s = t.seconds();

  const std::string v5_path = "BENCH_artifact_scratch.v5";
  const std::string v6_path = "BENCH_artifact_scratch.v6";
  t.restart();
  io::save_structure_v5(res.structure, res.sources, res.dual_tables,
                        res.dual_site_dist, v5_path);
  const double v5_save_s = t.seconds();
  t.restart();
  io::save_structure_v6(res.structure, res.sources, res.dual_tables,
                        res.dual_site_dist, v6_path);
  const double v6_save_s = t.seconds();
  const auto bytes_of = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary | std::ios::ate);
    return static_cast<std::int64_t>(in.tellg());
  };
  const std::int64_t v5_bytes = bytes_of(v5_path);
  const std::int64_t v6_bytes = bytes_of(v6_path);

  // The deployment race, best-of-3 per lane. The v5 lane is the full text
  // parse a pre-v6 host pays before serving; the v6 attach lane is what a
  // deployment host pays to audit + map the container (zero-copy views,
  // no decode); the v6 decode lane rebuilds the in-memory tables from the
  // mapped bytes — the ceiling a recompute-free cold start pays.
  double v5_load_s = 1e300, v6_attach_s = 1e300, v6_decode_s = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    t.restart();
    std::vector<Vertex> s;
    std::vector<DualSiteTable> tb;
    std::vector<DualSiteDistTable> sd;
    const FtBfsStructure h = io::load_structure(g, v5_path, &s, &tb, {},
                                                nullptr, &sd);
    v5_load_s = std::min(v5_load_s, t.seconds());
    benchmark::DoNotOptimize(h.num_edges());

    t.restart();
    const io::MappedArtifact art = io::MappedArtifact::map(v6_path);
    v6_attach_s = std::min(v6_attach_s, t.seconds());
    benchmark::DoNotOptimize(art.bytes().data());

    t.restart();
    std::vector<Vertex> s6;
    std::vector<DualSiteTable> tb6;
    std::vector<DualSiteDistTable> sd6;
    const FtBfsStructure h6 = io::load_structure_v6(g, v6_path, &s6, &tb6,
                                                    {}, nullptr, &sd6);
    v6_decode_s = std::min(v6_decode_s, t.seconds());
    benchmark::DoNotOptimize(h6.num_edges());
  }
  const double attach_speedup = v5_load_s / v6_attach_s;
  const double want_speedup = n_rmat >= 50000 ? 10.0 : 2.0;
  const bool speed_ok = attach_speedup >= want_speedup;
  if (!speed_ok) {
    std::cout << "!!! artifact plane: v6 mmap attach only " << attach_speedup
              << "x over the v5 text load (gate " << want_speedup
              << "x at n=" << n_rmat << ")\n";
  }

  // Canonical fixed point at scale: decode the on-disk container,
  // re-encode, compare byte-for-byte.
  bool resave_identical = false;
  {
    std::ifstream in(v6_path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string disk = buf.str();
    std::vector<Vertex> s6;
    std::vector<DualSiteTable> tb6;
    std::vector<DualSiteDistTable> sd6;
    const FtBfsStructure h6 = io::read_structure_v6(
        g, std::as_bytes(std::span<const char>(disk.data(), disk.size())),
        &s6, &tb6, {}, nullptr, &sd6);
    resave_identical =
        io::write_structure_v6_bytes(h6, s6, tb6, sd6) == disk;
    if (!resave_identical) {
      std::cout << "!!! artifact plane: v6 decode + re-encode is not "
                   "byte-identical to the on-disk artifact\n";
    }
  }

  // Serving bit-identity: cold Sessions from each artifact answer the
  // same dual pair storm; every (dist, outcome) must match. The first
  // query is timed separately per lane — the end-to-end "deploy to first
  // answer" latency a failover host cares about.
  api::SessionConfig cfg;
  cfg.tolerate_corruption = false;
  t.restart();
  const api::Session via_v5 = api::Session::load(g, v5_path, cfg);
  const double v5_session_s = t.seconds();
  t.restart();
  const api::Session via_v6 = api::Session::load(g, v6_path, cfg);
  const double v6_session_s = t.seconds();

  std::vector<api::Query> storm;
  const auto& te = via_v6.structure().tree_edges();
  Rng rng(5);
  for (int i = 0; i < 512; ++i) {
    api::Query q;
    q.v = static_cast<Vertex>(
        rng.next_below(static_cast<std::uint64_t>(n_rmat)));
    q.kind = FaultClass::kEdge;
    q.fault = te[rng.next_below(te.size())];
    q.kind2 = FaultClass::kVertex;
    q.fault2 = static_cast<std::int32_t>(
        1 + rng.next_below(static_cast<std::uint64_t>(n_rmat - 1)));
    storm.push_back(q);
  }
  t.restart();
  const api::QueryResult first_v6 = via_v6.query_one(storm.front());
  const double first_query_v6_us = t.seconds() * 1e6;
  t.restart();
  const api::QueryResult first_v5 = via_v5.query_one(storm.front());
  const double first_query_v5_us = t.seconds() * 1e6;
  bool identical = first_v5.dist == first_v6.dist &&
                   first_v5.outcome == first_v6.outcome;
  const api::QueryResponse a = via_v5.query(storm);
  const api::QueryResponse b = via_v6.query(storm);
  for (std::size_t i = 0; i < storm.size(); ++i) {
    if (a.results[i].dist != b.results[i].dist ||
        a.results[i].outcome != b.results[i].outcome) {
      identical = false;
    }
  }
  if (!identical) {
    std::cout << "!!! artifact plane: v5- and v6-loaded sessions diverge on "
                 "the pair storm\n";
  }
  std::remove(v5_path.c_str());
  std::remove(v6_path.c_str());

  const bool ok = speed_ok && identical && resave_identical;
  out->set("n", static_cast<std::int64_t>(n_rmat))
      .set("m", static_cast<std::int64_t>(g.num_edges()))
      .set("rmat_scale", static_cast<std::int64_t>(scale))
      .set("build_s", build_s)
      .set("v5_bytes", v5_bytes)
      .set("artifact_bytes", v6_bytes)
      .set("mmap", true)
      .set("v5_save_s", v5_save_s)
      .set("v6_save_s", v6_save_s)
      .set("v5_load_s", v5_load_s)
      .set("v6_attach_s", v6_attach_s)
      .set("v6_decode_s", v6_decode_s)
      .set("attach_speedup_vs_v5", attach_speedup)
      .set("attach_speedup_gate", want_speedup)
      .set("session_load_v5_s", v5_session_s)
      .set("session_load_v6_s", v6_session_s)
      .set("first_query_v5_us", first_query_v5_us)
      .set("first_query_v6_us", first_query_v6_us)
      .set("storm_queries", static_cast<std::int64_t>(storm.size()))
      .set("answers_identical", identical)
      .set("resave_identical", resave_identical)
      .set("gates_ok", ok);
  std::cout << "artifact plane (n=" << n_rmat << ", m=" << g.num_edges()
            << "): v5 load " << v5_load_s << "s, v6 mmap attach "
            << v6_attach_s << "s (" << attach_speedup
            << "x), v6 decode " << v6_decode_s << "s — "
            << (ok ? "ok" : "GATE FAILED") << "\n";
  return ok;
}

// ---- the bit-parallel multi-source kernel: fused vs σ scalar passes -------

/// Times the σ-lane fused kernel against σ independent scalar bfs_run
/// passes at σ ∈ {4, 16, 64}, then re-derives every lane's canonical tree
/// through the fused seam and checks it bit-identical to the scalar
/// canonical_sp. Gates: bit-identity at every σ AND fused speedup over
/// the σ scalar passes > 1 at σ = 64 — non-zero exit otherwise.
/// FTBFS_MSK_SCALE_N resizes it (the CI smoke runs the gates at 512;
/// 0 skips entirely; the committed BENCH_construction.json carries the
/// full n=2000 measurement).
bool run_multi_source_kernel_report(bench::JsonObject* out) {
  Vertex n = 2000;
  if (const char* env = std::getenv("FTBFS_MSK_SCALE_N")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || parsed < 0) {
      // A typo'd override must not silently skip the acceptance gates.
      std::cout << "!!! FTBFS_MSK_SCALE_N invalid (" << env << ")\n";
      out->set("invalid_env", true);
      return false;
    }
    n = static_cast<Vertex>(parsed);
  }
  if (n < 128) {  // 0 = explicit skip; the σ = 64 row needs the sources
    out->set("skipped", true);
    return true;
  }
  const Graph g = bench::dense_random(n, 3);
  const EdgeWeights w = EdgeWeights::uniform_random(g, 3);

  bool all_identical = true;
  double speedup_64 = 0;
  bench::JsonArray rows;
  for (const std::size_t sigma : {std::size_t{4}, std::size_t{16},
                                  std::size_t{64}}) {
    std::vector<BfsLane> lanes(sigma);
    for (std::size_t i = 0; i < sigma; ++i) {
      lanes[i].source = static_cast<Vertex>(i);
    }
    // Discarded warm-ups so neither leg is charged its scratch growth.
    MultiSourceBfsKernel kernel;
    kernel.run(g, lanes);
    BfsScratch scratch;
    bfs_run(g, lanes.front().source, {}, scratch);

    Timer t;
    for (const BfsLane& lane : lanes) {
      bfs_run(g, lane.source, {}, scratch);
    }
    const double scalar_s = t.seconds();
    t.restart();
    kernel.run(g, lanes);
    const double fused_s = t.seconds();
    const double speedup = scalar_s / fused_s;
    if (sigma == 64) speedup_64 = speedup;

    // Lane-by-lane canonical-tree bit-identity through the fused seam.
    const std::vector<CanonicalSp> fused =
        ms_canonical_sp(g, w, lanes, kernel);
    bool identical = true;
    for (std::size_t i = 0; i < sigma; ++i) {
      const CanonicalSp ref = canonical_sp(g, w, lanes[i].source);
      if (fused[i].hops != ref.hops || fused[i].wsum != ref.wsum ||
          fused[i].parent != ref.parent ||
          fused[i].parent_edge != ref.parent_edge ||
          fused[i].first_hop != ref.first_hop ||
          fused[i].order != ref.order) {
        identical = false;
      }
    }
    if (!identical) {
      all_identical = false;
      std::cout << "!!! fused canonical trees diverge from scalar at sigma="
                << sigma << "\n";
    }

    bench::JsonObject row;
    row.set("sigma", static_cast<std::int64_t>(sigma))
        .set("scalar_s", scalar_s)
        .set("fused_s", fused_s)
        .set("speedup_fused", speedup)
        .set("trees_identical", identical);
    rows.push(row);
    std::cout << "multi-source kernel (n=" << n << ", sigma=" << sigma
              << "): scalar " << scalar_s << "s, fused " << fused_s
              << "s — " << speedup << "x\n";
  }
  const bool speed_ok = speedup_64 > 1.0;
  if (!speed_ok) {
    std::cout << "!!! fused kernel not faster than 64 scalar passes at n="
              << n << "\n";
  }
  out->set("n", static_cast<std::int64_t>(n))
      .set("m", static_cast<std::int64_t>(g.num_edges()))
      .set_raw("per_sigma", rows.str(2))
      .set("speedup_sigma64", speedup_64)
      .set("gates_ok", all_identical && speed_ok);
  return all_identical && speed_ok;
}

/// Returns false when any reference-vs-optimized edge-set comparison
/// disagrees (CI fails on that).
bool run_speedup_report() {
  const Vertex n = [] {
    const char* env = std::getenv("FTBFS_N");
    const int parsed = env != nullptr ? std::atoi(env) : 2000;
    if (parsed < 2) {
      std::cout << "FTBFS_N invalid (" << (env ? env : "")
                << "), using 2000\n";
      return Vertex{2000};
    }
    return static_cast<Vertex>(parsed);
  }();
  const double eps = 1.0 / 3.0;

  bench::header("E8k", "direction-optimizing kernel vs reference",
                "dense_random n=" + std::to_string(n) + ", eps=1/3");

  // Byte-identical structure check on every seed the benches in this
  // harness use, at a size where the reference is still fast — for BOTH
  // fault models, so the unified engine's two instantiations are each
  // pinned to their reference kernels. Per-seed vertex rows feed the JSON
  // trajectory below.
  bool identical = true;
  bench::JsonArray vertex_rows;
  for (const std::uint64_t seed : {3ULL, 5ULL, 7ULL, 11ULL, 13ULL}) {
    const Graph g = bench::dense_random(512, seed);
    EpsilonOptions ref_opts, opt_opts;
    ref_opts.eps = opt_opts.eps = eps;
    ref_opts.reference_kernel = true;
    const EpsilonResult a = build_epsilon_ftbfs(g, 0, ref_opts);
    const EpsilonResult b = build_epsilon_ftbfs(g, 0, opt_opts);
    if (a.structure.edges() != b.structure.edges() ||
        a.structure.reinforced() != b.structure.reinforced()) {
      identical = false;
      std::cout << "!!! edge-set mismatch at seed " << seed << "\n";
    }
    VertexFtBfsOptions vref, vopt;
    vref.reference_kernel = true;
    Timer vt;
    const FtBfsStructure va = build_vertex_ftbfs(g, 0, vref);
    const double vsec_ref = vt.seconds();
    vt.restart();
    const FtBfsStructure vb = build_vertex_ftbfs(g, 0, vopt);
    const double vsec_opt = vt.seconds();
    const bool videntical = va.edges() == vb.edges();
    if (!videntical) {
      identical = false;
      std::cout << "!!! vertex edge-set mismatch at seed " << seed << "\n";
    }
    bench::JsonObject row;
    row.set("seed", static_cast<std::int64_t>(seed))
        .set("edges_in_H", vb.num_edges())
        .set("reference_s", vsec_ref)
        .set("optimized_s", vsec_opt)
        .set("edge_sets_identical", videntical);
    vertex_rows.push(row);
  }
  std::cout << "edge+vertex structures identical across seeds "
               "{3,5,7,11,13}: "
            << (identical ? "yes" : "NO") << "\n";

  // The headline measurement.
  const Graph g = bench::dense_random(n, 3);
  const EdgeWeights w = EdgeWeights::uniform_random(g, 3);
  const BfsTree tree(g, w, 0);

  // Discarded warm-up: pages in the graph/tree and grows the per-thread
  // arenas so the reference (timed first) isn't charged the cold-start.
  time_engine(tree, /*reference=*/false, nullptr);

  ReplacementPathEngine::Stats ref_stats, opt_stats;
  const double sec_ref = time_engine(tree, /*reference=*/true, &ref_stats);
  const double sec_opt = time_engine(tree, /*reference=*/false, &opt_stats);

  // The vertex-fault instantiation of the same engine, on the same tree.
  const auto time_vertex_engine = [&](bool reference) {
    VertexReplacementEngine::Config cfg;
    cfg.reference_kernel = reference;
    Timer vt;
    const VertexReplacementEngine engine(tree, cfg);
    const double sec = vt.seconds();
    benchmark::DoNotOptimize(engine.stats().pairs_total);
    return sec;
  };
  const double vsec_ref = time_vertex_engine(/*reference=*/true);
  const double vsec_opt = time_vertex_engine(/*reference=*/false);

  EpsilonOptions ref_opts, opt_opts;
  ref_opts.eps = opt_opts.eps = eps;
  ref_opts.reference_kernel = true;
  Timer t;
  const EpsilonResult full_ref = build_epsilon_ftbfs(g, 0, ref_opts);
  const double sec_full_ref = t.seconds();
  t.restart();
  const EpsilonResult full_opt = build_epsilon_ftbfs(g, 0, opt_opts);
  const double sec_full_opt = t.seconds();
  const bool full_identical =
      full_ref.structure.edges() == full_opt.structure.edges() &&
      full_ref.structure.reinforced() == full_opt.structure.reinforced();

  Table tb("E8k kernel speedup (n=" + std::to_string(n) +
           ", m=" + std::to_string(g.num_edges()) + ")");
  tb.columns({"phase", "ref_s", "opt_s", "speedup"});
  tb.row("engine_total", sec_ref, sec_opt, sec_ref / sec_opt);
  tb.row("dist_tables", ref_stats.seconds_dist_tables,
         opt_stats.seconds_dist_tables,
         ref_stats.seconds_dist_tables / opt_stats.seconds_dist_tables);
  tb.row("detours", ref_stats.seconds_detours, opt_stats.seconds_detours,
         ref_stats.seconds_detours / opt_stats.seconds_detours);
  tb.row("vertex_engine", vsec_ref, vsec_opt, vsec_ref / vsec_opt);
  tb.row("eps_construction", sec_full_ref, sec_full_opt,
         sec_full_ref / sec_full_opt);
  tb.print(std::cout);

  bench::JsonObject phases;
  phases.set("engine_reference_s", sec_ref)
      .set("engine_optimized_s", sec_opt)
      .set("dist_tables_reference_s", ref_stats.seconds_dist_tables)
      .set("dist_tables_optimized_s", opt_stats.seconds_dist_tables)
      .set("detours_reference_s", ref_stats.seconds_detours)
      .set("detours_optimized_s", opt_stats.seconds_detours)
      .set("vertex_engine_reference_s", vsec_ref)
      .set("vertex_engine_optimized_s", vsec_opt)
      .set("construction_reference_s", sec_full_ref)
      .set("construction_optimized_s", sec_full_opt)
      .set("s1_s", full_opt.stats.seconds_s1)
      .set("s2_s", full_opt.stats.seconds_s2)
      .set("interference_s", full_opt.stats.seconds_interference);

  // The serving-side measurement: batched Session vs the serial oracle.
  bench::JsonObject query_plane;
  double query_speedup = 0;
  const bool plane_agrees =
      run_query_plane_report(g, full_opt.structure, &query_plane,
                             &query_speedup);

  // The dual-failure pipeline: per-seed build + brute-force identity.
  bench::JsonObject dual_report;
  const bool dual_agrees = run_dual_report(&dual_report);

  // Pruned-vs-unpruned at scale (FTBFS_DUAL_SCALE_N, default 1000): the
  // build-speedup and size gates of the pruning.
  bench::JsonObject dual_scale;
  const bool dual_scale_ok = run_dual_scale_report(&dual_scale);

  // DFS-order ancestor-sweep sharing vs the independent-rebase referee
  // (FTBFS_DUAL_DFS_SCALE_N, default 4096): bit-identity, strict work
  // reduction and the wall-clock gate.
  bench::JsonObject dual_dfs;
  const bool dual_dfs_ok = run_dual_dfs_schedule_report(&dual_dfs);

  // The zero-trust artifact plane: v5 save + strict reload + fsck timing.
  bench::JsonObject io_integrity;
  const bool io_ok = run_io_integrity_report(&io_integrity);

  // The binary artifact plane at R-MAT scale: v6 mmap attach vs v5 text
  // load, serving bit-identity, canonical re-encode.
  bench::JsonObject artifact_plane;
  const bool artifact_ok = run_artifact_plane_report(&artifact_plane);

  // The serving-plane acceptance: QPS + tail latency per batch size, the
  // adaptive-cutover speedup gate, and the traversal-free pair oracle.
  bench::JsonObject query_qps;
  const bool qps_ok = run_query_qps_report(&query_qps);

  // The bit-parallel multi-source kernel: fused sweep vs σ scalar passes
  // (FTBFS_MSK_SCALE_N, default 2000) with lane-by-lane tree identity.
  bench::JsonObject msk_report;
  const bool msk_ok = run_multi_source_kernel_report(&msk_report);

  bench::JsonObject report;
  report.set("bench", std::string("construction_time"))
      .set("workload", std::string("dense_random"))
      .set("n", static_cast<std::int64_t>(n))
      .set("m", static_cast<std::int64_t>(g.num_edges()))
      .set("eps", eps)
      .set_raw("seconds", phases.str(2))
      .set("edges_in_H", full_opt.stats.structure_edges)
      .set("backup_edges", full_opt.stats.backup)
      .set("reinforced_edges", full_opt.stats.reinforced)
      .set("speedup_engine", sec_ref / sec_opt)
      .set("speedup_vertex_engine", vsec_ref / vsec_opt)
      .set("speedup_construction", sec_full_ref / sec_full_opt)
      .set_raw("vertex_per_seed", vertex_rows.str(2))
      .set_raw("query_plane", query_plane.str(2))
      .set_raw("dual", dual_report.str(2))
      .set_raw("dual_scale", dual_scale.str(2))
      .set_raw("dual_dfs_schedule", dual_dfs.str(2))
      .set_raw("io_integrity", io_integrity.str(2))
      .set_raw("artifact_plane", artifact_plane.str(2))
      .set_raw("query_qps", query_qps.str(2))
      .set_raw("multi_source_kernel", msk_report.str(2))
      .set("speedup_query_batched_vs_serial", query_speedup)
      .set("edge_sets_identical",
           identical && full_identical && dual_agrees && dual_scale_ok &&
               dual_dfs_ok && io_ok && artifact_ok && qps_ok && msk_ok);
  bench::write_json_file("BENCH_construction.json", report);
  std::cout << "engine speedup: " << sec_ref / sec_opt
            << "x (edge), " << vsec_ref / vsec_opt
            << "x (vertex), construction speedup: "
            << sec_full_ref / sec_full_opt
            << "x, batched query plane: " << query_speedup
            << "x vs serial  (BENCH_construction.json written)\n\n";
  return identical && full_identical && plane_agrees && dual_agrees &&
         dual_scale_ok && dual_dfs_ok && io_ok && artifact_ok && qps_ok &&
         msk_ok;
}

}  // namespace

int main(int argc, char** argv) {
  // The speedup report costs a full reference-engine build; skip it when
  // the user is only listing benchmarks, targeting specific ones, or opted
  // out via env. "--benchmark_filter=NONE" (the CI spelling for "report
  // only") keeps the report.
  bool skip_report = std::getenv("FTBFS_SKIP_SPEEDUP") != nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--benchmark_list_tests" ||
        arg == "--benchmark_list_tests=true") {
      skip_report = true;
    }
    if (arg.starts_with("--benchmark_filter=") &&
        arg != "--benchmark_filter=NONE") {
      skip_report = true;
    }
  }
  bool edge_sets_ok = true;
  if (!skip_report) edge_sets_ok = run_speedup_report();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Non-zero exit on a reference/optimized divergence so CI trips.
  return edge_sets_ok ? 0 : 1;
}
