// bench_baseline_ftbfs — Experiment E3 (ref. [14]: FT-BFS is Θ(n^{3/2})).
//
// Sweep n on (a) the ESA'13-style adversarial family (Theorem 5.1 graph at
// ε = 1/2, where the bipartite core forces ~n^{3/2} last edges) and (b)
// dense random graphs (far below the worst case). Report |H| / n^{3/2}:
// flat-ish on (a), decaying on (b).
//
//   ./bench_baseline_ftbfs [--ns=256,...] [--seed=1]
#include "bench/bench_util.hpp"
#include "src/core/ftbfs.hpp"

using namespace ftb;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const std::vector<long long> ns =
      opt.get_int_list("ns", {256, 512, 1024, 2048, 4096});
  const std::uint64_t seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));

  bench::header("E3", "[14] baseline: FT-BFS structures have Theta(n^{3/2}) "
                      "edges",
                "Theorem 5.1 graph at eps=1/2 (adversarial) vs dense random");

  Table t("E3 baseline FT-BFS size");
  t.columns({"family", "n", "m", "|H|", "|H|/n^1.5", "certified_min",
             "sec"});
  std::vector<double> xs, hs;
  for (const long long n : ns) {
    const auto lb = lb::build_single_source(static_cast<Vertex>(n), 0.5);
    Timer timer;
    const FtBfsStructure h = build_ftbfs(lb.graph, lb.source);
    const double sec = timer.seconds();
    t.row("adversarial", n, lb.graph.num_edges(), h.num_edges(),
          static_cast<double>(h.num_edges()) /
              std::pow(static_cast<double>(n), 1.5),
          lb.certified_min_backup(0), sec);
    xs.push_back(static_cast<double>(n));
    hs.push_back(static_cast<double>(h.num_edges()));
  }
  for (const long long n : ns) {
    const Graph g = bench::dense_random(static_cast<Vertex>(n), seed);
    Timer timer;
    const FtBfsStructure h = build_ftbfs(g, 0);
    const double sec = timer.seconds();
    t.row("dense-random", n, g.num_edges(), h.num_edges(),
          static_cast<double>(h.num_edges()) /
              std::pow(static_cast<double>(n), 1.5),
          0, sec);
  }
  t.print(std::cout);
  std::cout << "measured |H| exponent on the adversarial family: "
            << bench::fit_exponent(xs, hs) << "  (theorem: 1.5)\n"
            << "shape check: |H|/n^1.5 flat on the adversarial family, "
               "decaying on random graphs.\n";
  return 0;
}
