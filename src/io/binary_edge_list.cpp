#include "src/io/binary_edge_list.hpp"

#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "src/io/edge_list.hpp"
#include "src/util/crc32c.hpp"
#include "src/util/fault_inject.hpp"

namespace ftb::io {

namespace {

constexpr std::uint32_t kEdgeListVersion = 1;
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::uint64_t kHeaderBytes = 64;

std::string context_at(std::int64_t off, std::string_view section) {
  std::ostringstream os;
  os << " (at byte " << off << " in section '" << section << "')";
  return os.str();
}

[[noreturn]] void fail(const std::string& msg, std::int64_t off,
                       std::string_view section) {
  throw CheckError(msg + context_at(off, section));
}

std::uint32_t get_u32(const unsigned char* b) {
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* b) {
  return static_cast<std::uint64_t>(get_u32(b)) |
         (static_cast<std::uint64_t>(get_u32(b + 4)) << 32);
}

void put_u32(std::string& s, std::uint32_t v) {
  const char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                     static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  s.append(b, 4);
}

void put_u64(std::string& s, std::uint64_t v) {
  put_u32(s, static_cast<std::uint32_t>(v));
  put_u32(s, static_cast<std::uint32_t>(v >> 32));
}

}  // namespace

bool is_binary_edge_list_magic(std::string_view bytes) {
  return bytes.size() >= sizeof(kEdgeListMagic) &&
         std::memcmp(bytes.data(), kEdgeListMagic,
                     sizeof(kEdgeListMagic)) == 0;
}

bool is_binary_edge_list(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) return false;
  char head[sizeof(kEdgeListMagic)] = {};
  f.read(head, sizeof(head));
  if (f.gcount() != static_cast<std::streamsize>(sizeof(head))) return false;
  return is_binary_edge_list_magic(std::string_view(head, sizeof(head)));
}

std::string write_binary_edge_list_bytes(const Graph& g) {
  std::string edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()) * 8);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);  // canonical u < v, ascending by id
    put_u32(edges, static_cast<std::uint32_t>(u));
    put_u32(edges, static_cast<std::uint32_t>(v));
  }
  std::string out;
  out.reserve(kHeaderBytes + edges.size());
  out.append(reinterpret_cast<const char*>(kEdgeListMagic),
             sizeof(kEdgeListMagic));
  put_u32(out, kEdgeListVersion);
  put_u32(out, kEndianTag);
  put_u64(out, static_cast<std::uint64_t>(g.num_vertices()));
  put_u64(out, static_cast<std::uint64_t>(g.num_edges()));
  put_u32(out, crc32c(edges));
  put_u32(out, 0);
  out.append(24, '\0');
  out += edges;
  return out;
}

void write_binary_edge_list(const Graph& g, std::ostream& os) {
  const std::string bytes = write_binary_edge_list_bytes(g);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void save_binary_edge_list(const Graph& g, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  FTB_CHECK_MSG(f.good(), "cannot open " << path << " for writing");
  write_binary_edge_list(g, f);
  f.flush();
  FTB_CHECK_MSG(f.good(), "short write to " << path);
}

Graph read_binary_edge_list(std::span<const std::byte> bytes) {
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  if (bytes.size() < kHeaderBytes) {
    fail("binary edge list truncated: " + std::to_string(bytes.size()) +
             " bytes is shorter than the 64-byte header",
         0, "header");
  }
  if (std::memcmp(p, kEdgeListMagic, sizeof(kEdgeListMagic)) != 0) {
    fail("bad binary edge-list magic", 0, "header");
  }
  const std::uint32_t version = get_u32(p + 8);
  if (version != kEdgeListVersion) {
    fail("unsupported binary edge-list version " + std::to_string(version),
         8, "header");
  }
  const std::uint32_t endian = get_u32(p + 12);
  if (endian == 0x04030201u) {
    fail("byte-swapped endian tag: edge list written by a big-endian "
         "producer, this reader is little-endian only",
         12, "header");
  }
  if (endian != kEndianTag) {
    fail("bad endian tag " + std::to_string(endian), 12, "header");
  }
  const std::uint64_t n = get_u64(p + 16);
  if (n > static_cast<std::uint64_t>(std::numeric_limits<Vertex>::max())) {
    fail("vertex count " + std::to_string(n) + " overflows", 16, "header");
  }
  const std::uint64_t m = get_u64(p + 24);
  // Untrusted count: a canonical simple graph has at most nC2 edges, and
  // edge ids are int32 — reject count lies before they size anything.
  const std::uint64_t max_m =
      n < 2 ? 0 : n * (n - 1) / 2;  // fits u64 for n < 2^31
  if (m > max_m ||
      m > static_cast<std::uint64_t>(std::numeric_limits<EdgeId>::max())) {
    fail("edge count " + std::to_string(m) + " exceeds the " +
             std::to_string(max_m) + " possible canonical edges",
         24, "header");
  }
  const std::uint32_t want_crc = get_u32(p + 32);
  if (get_u32(p + 36) != 0) {
    fail("nonzero reserved header field", 36, "header");
  }
  for (std::size_t i = 40; i < kHeaderBytes; ++i) {
    if (p[i] != 0) {
      fail("nonzero reserved header byte",
           static_cast<std::int64_t>(i), "header");
    }
  }
  const std::uint64_t want_size = kHeaderBytes + m * 8;
  if (bytes.size() < want_size) {
    fail("edge array truncated: " + std::to_string(m) +
             " edges need " + std::to_string(want_size) +
             " bytes, file has " + std::to_string(bytes.size()),
         static_cast<std::int64_t>(bytes.size()), "edges");
  }
  if (bytes.size() > want_size) {
    fail("trailing data after the edge list: file has " +
             std::to_string(bytes.size()) + " bytes, edge list ends at " +
             std::to_string(want_size),
         static_cast<std::int64_t>(want_size), "trailer");
  }
  {
    const std::uint32_t got_crc =
        m == 0 ? crc32c(std::string_view{})
               : crc32c(std::string_view(
                     reinterpret_cast<const char*>(p + kHeaderBytes),
                     static_cast<std::size_t>(m * 8)));
    if (got_crc != want_crc) {
      fail("edge array checksum mismatch",
           static_cast<std::int64_t>(kHeaderBytes), "edges");
    }
  }

  GraphBuilder b(static_cast<Vertex>(n));
  fault::maybe_fail_alloc();
  std::int64_t prev_u = -1, prev_v = -1;
  for (std::uint64_t i = 0; i < m; ++i) {
    const std::int64_t at =
        static_cast<std::int64_t>(kHeaderBytes + i * 8);
    const auto u = static_cast<std::int32_t>(
        get_u32(p + kHeaderBytes + i * 8));
    const auto v = static_cast<std::int32_t>(
        get_u32(p + kHeaderBytes + i * 8 + 4));
    if (u < 0 || v < 0 || static_cast<std::uint64_t>(u) >= n ||
        static_cast<std::uint64_t>(v) >= n) {
      fail("edge (" + std::to_string(u) + "," + std::to_string(v) +
               ") out of range n=" + std::to_string(n),
           at, "edges");
    }
    if (u >= v) {
      fail("edge (" + std::to_string(u) + "," + std::to_string(v) +
               ") is not canonical (u < v)",
           at, "edges");
    }
    if (u < prev_u || (u == prev_u && v <= prev_v)) {
      fail("edge (" + std::to_string(u) + "," + std::to_string(v) +
               ") out of strictly ascending canonical order",
           at, "edges");
    }
    prev_u = u;
    prev_v = v;
    b.add_canonical_edge(u, v);  // streams straight into the CSR build
  }
  return b.build();
}

Graph load_binary_edge_list(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  FTB_CHECK_MSG(f.good(), "cannot open " << path);
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string bytes = buf.str();
  return read_binary_edge_list(std::as_bytes(
      std::span<const char>(bytes.data(), bytes.size())));
}

Graph load_edge_list_auto(const std::string& path) {
  if (is_binary_edge_list(path)) return load_binary_edge_list(path);
  return load_edge_list(path);
}

}  // namespace ftb::io
