#include "src/io/structure_io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/core/validate.hpp"

namespace ftb::io {

namespace {
std::string next_data_line(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    const auto pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '#') continue;
    return line;
  }
  return {};
}

/// Position of edge e in the (ascending) structure edge list — the index
/// space the pair tables are serialized in.
std::int64_t edge_index_in(const std::vector<EdgeId>& edges, EdgeId e) {
  const auto it = std::lower_bound(edges.begin(), edges.end(), e);
  FTB_CHECK_MSG(it != edges.end() && *it == e,
                "pair-table edge " << e << " is not a structure edge");
  return it - edges.begin();
}
}  // namespace

void write_structure(const FtBfsStructure& h, std::span<const Vertex> sources,
                     std::span<const DualSiteTable> pair_tables,
                     std::ostream& os) {
  const Graph& g = h.graph();
  const bool dual = h.fault_class() == FaultClass::kDual;
  const bool multi = sources.size() > 1;
  FTB_CHECK_MSG(sources.empty() || sources.front() == h.source(),
                "sources.front() must be the structure's anchor source");
  FTB_CHECK_MSG(pair_tables.empty() || dual,
                "pair tables belong to dual-failure artifacts only");
  FTB_CHECK_MSG(pair_tables.empty() || pair_tables.size() == sources.size(),
                "need one pair table per source (got "
                    << pair_tables.size() << " tables for " << sources.size()
                    << " sources)");
  const int version = dual ? 4 : (multi ? 3 : 2);
  os << "ftbfs-structure " << version << "\n";
  os << "fault-model " << to_string(h.fault_class()) << '\n';
  if (version >= 3) {
    // v3 reached this line only for multi-source artifacts; v4 always
    // writes it (the loader reads it unconditionally from v3 up).
    os << "sources " << sources.size();
    for (const Vertex s : sources) os << ' ' << s;
    os << '\n';
  }
  os << "# n |E(H)| source\n";
  os << g.num_vertices() << ' ' << h.num_edges() << ' ' << h.source() << '\n';
  os << "# u v flags (1=reinforced, 2=tree)\n";
  std::vector<std::uint8_t> is_tree(static_cast<std::size_t>(g.num_edges()),
                                    0);
  for (const EdgeId e : h.tree_edges()) {
    is_tree[static_cast<std::size_t>(e)] = 1;
  }
  for (const EdgeId e : h.edges()) {
    const auto [u, v] = g.edge(e);
    int flags = 0;
    if (h.is_reinforced(e)) flags |= 1;
    if (is_tree[static_cast<std::size_t>(e)]) flags |= 2;
    os << u << ' ' << v << ' ' << flags << '\n';
  }
  if (version >= 4) {
    // The dual pair tables: per source, per first-failure site, the edge
    // set of the punctured single-fault structure H_f as indices into the
    // edge section above (ascending EdgeId order, so indices ascend too).
    os << "# pair tables: site <e u v|v x> <count> <edge indices>\n";
    os << "pair-tables " << pair_tables.size() << '\n';
    for (std::size_t si = 0; si < pair_tables.size(); ++si) {
      const DualSiteTable& t = pair_tables[si];
      os << "source-tables " << sources[si] << ' ' << t.num_sites() << '\n';
      for (std::size_t i = 0; i < t.num_sites(); ++i) {
        const DualSite f = t.sites[i];
        if (f.kind == FaultClass::kEdge) {
          const auto [u, v] = g.edge(f.id);
          os << "site e " << u << ' ' << v;
        } else {
          os << "site v " << f.id;
        }
        const auto sub = t.subset(i);
        os << ' ' << sub.size();
        for (const EdgeId e : sub) os << ' ' << edge_index_in(h.edges(), e);
        os << '\n';
      }
    }
  }
}

void write_structure(const FtBfsStructure& h, std::span<const Vertex> sources,
                     std::ostream& os) {
  write_structure(h, sources, {}, os);
}

void write_structure(const FtBfsStructure& h, std::ostream& os) {
  const Vertex anchor[] = {h.source()};
  write_structure(h, anchor, {}, os);
}

void save_structure(const FtBfsStructure& h, std::span<const Vertex> sources,
                    std::span<const DualSiteTable> pair_tables,
                    const std::string& path) {
  std::ofstream f(path);
  FTB_CHECK_MSG(f.good(), "cannot open " << path << " for writing");
  write_structure(h, sources, pair_tables, f);
}

void save_structure(const FtBfsStructure& h, std::span<const Vertex> sources,
                    const std::string& path) {
  save_structure(h, sources, {}, path);
}

void save_structure(const FtBfsStructure& h, const std::string& path) {
  const Vertex anchor[] = {h.source()};
  save_structure(h, anchor, {}, path);
}

FtBfsStructure read_structure(const Graph& g, std::istream& is,
                              std::vector<Vertex>* sources_out,
                              std::vector<DualSiteTable>* tables_out) {
  const std::string magic = next_data_line(is);
  FTB_CHECK_MSG(magic.rfind("ftbfs-structure", 0) == 0,
                "bad magic line '" << magic << "'");
  int version = -1;
  {
    std::istringstream ms(magic);
    std::string word;
    ms >> word >> version;
    FTB_CHECK_MSG(version >= 1 && version <= 4,
                  "unsupported structure version " << version);
  }
  // Version 2 added the fault-model tag (version 1 is an edge-model
  // artifact by definition); version 3 added the multi-source line;
  // version 4 the dual-failure model and its pair tables.
  FaultClass fault_class = FaultClass::kEdge;
  if (version >= 2) {
    const std::string model_line = next_data_line(is);
    std::istringstream ms(model_line);
    std::string word, tag;
    ms >> word >> tag;
    FTB_CHECK_MSG(word == "fault-model",
                  "expected fault-model line, got '" << model_line << "'");
    fault_class = parse_fault_class(tag);
    if (version < 4 && fault_class == FaultClass::kDual) {
      // Pre-v4 artifacts used "dual" for the single-failure edge ∪ vertex
      // union — load them as what they are.
      fault_class = FaultClass::kEither;
    }
    FTB_CHECK_MSG(version >= 4 || fault_class != FaultClass::kDual,
                  "dual-failure artifacts require format version 4");
  }
  std::vector<Vertex> sources;
  if (version >= 3) {
    const std::string sources_line = next_data_line(is);
    std::istringstream ss(sources_line);
    std::string word;
    long long k = -1;
    ss >> word >> k;
    FTB_CHECK_MSG(word == "sources" && k >= 1,
                  "expected sources line, got '" << sources_line << "'");
    for (long long i = 0; i < k; ++i) {
      long long s = -1;
      ss >> s;
      FTB_CHECK_MSG(ss && s >= 0,
                    "bad sources line '" << sources_line << "'");
      sources.push_back(static_cast<Vertex>(s));
    }
    // Same invariants every build entry point enforces: in range, no
    // duplicates (a duplicated source would make Session::load build the
    // same tree and engines twice).
    detail::check_sources(g, sources);
  }
  const std::string header = next_data_line(is);
  FTB_CHECK_MSG(!header.empty(), "missing structure header");
  long long n = -1, mh = -1, source = -1;
  {
    std::istringstream hs(header);
    hs >> n >> mh >> source;
  }
  FTB_CHECK_MSG(n == g.num_vertices(),
                "structure built for n=" << n << ", graph has "
                                         << g.num_vertices());
  FTB_CHECK_MSG(mh >= 0 && source >= 0 && source < n, "bad header");
  if (sources.empty()) {
    sources.push_back(static_cast<Vertex>(source));
  }
  FTB_CHECK_MSG(sources.front() == static_cast<Vertex>(source),
                "sources line disagrees with the header's anchor source");

  std::vector<EdgeId> edges, reinforced, tree_edges;
  for (long long i = 0; i < mh; ++i) {
    const std::string line = next_data_line(is);
    FTB_CHECK_MSG(!line.empty(),
                  "expected " << mh << " structure edges, got " << i);
    std::istringstream es(line);
    long long u = -1, v = -1;
    int flags = -1;
    es >> u >> v >> flags;
    FTB_CHECK_MSG(u >= 0 && v >= 0 && flags >= 0,
                  "bad structure edge line '" << line << "'");
    const EdgeId e =
        g.find_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
    FTB_CHECK_MSG(e != kInvalidEdge,
                  "structure edge (" << u << "," << v
                                     << ") missing from the graph");
    edges.push_back(e);
    if (flags & 1) reinforced.push_back(e);
    if (flags & 2) tree_edges.push_back(e);
  }

  std::vector<DualSiteTable> tables;
  if (version >= 4) {
    // Index space of the tables: the edge section sorted ascending (which
    // is also how write_structure emits it — but a hand-edited file may
    // not be sorted, so map through an explicitly sorted copy).
    std::vector<EdgeId> sorted_edges = edges;
    std::sort(sorted_edges.begin(), sorted_edges.end());
    const std::string pt = next_data_line(is);
    std::istringstream ps(pt);
    std::string word;
    long long num_tables = -1;
    ps >> word >> num_tables;
    FTB_CHECK_MSG(word == "pair-tables" && num_tables >= 0,
                  "expected pair-tables line, got '" << pt << "'");
    FTB_CHECK_MSG(num_tables == 0 ||
                      num_tables == static_cast<long long>(sources.size()),
                  "pair-tables count " << num_tables << " does not match "
                                       << sources.size() << " sources");
    for (long long ti = 0; ti < num_tables; ++ti) {
      const std::string st = next_data_line(is);
      std::istringstream ss(st);
      std::string w;
      long long src = -1, num_sites = -1;
      ss >> w >> src >> num_sites;
      FTB_CHECK_MSG(w == "source-tables" && num_sites >= 0 &&
                        src == sources[static_cast<std::size_t>(ti)],
                    "expected source-tables line for source "
                        << sources[static_cast<std::size_t>(ti)] << ", got '"
                        << st << "'");
      DualSiteTable table;
      table.offsets.push_back(0);
      for (long long i = 0; i < num_sites; ++i) {
        const std::string line = next_data_line(is);
        FTB_CHECK_MSG(!line.empty(), "expected " << num_sites
                                                 << " site lines, got " << i);
        std::istringstream ls(line);
        std::string kw, kind;
        ls >> kw >> kind;
        FTB_CHECK_MSG(kw == "site" && (kind == "e" || kind == "v"),
                      "bad site line '" << line << "'");
        DualSite f;
        if (kind == "e") {
          long long u = -1, v = -1;
          ls >> u >> v;
          FTB_CHECK_MSG(ls && u >= 0 && v >= 0,
                        "bad site line '" << line << "'");
          f.kind = FaultClass::kEdge;
          f.id = g.find_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
          FTB_CHECK_MSG(f.id != kInvalidEdge,
                        "site edge (" << u << "," << v
                                      << ") missing from the graph");
        } else {
          long long x = -1;
          ls >> x;
          FTB_CHECK_MSG(ls && x >= 0 && x < n,
                        "bad site line '" << line << "'");
          f.kind = FaultClass::kVertex;
          f.id = static_cast<std::int32_t>(x);
        }
        long long cnt = -1;
        ls >> cnt;
        FTB_CHECK_MSG(ls && cnt >= 0, "bad site line '" << line << "'");
        std::vector<EdgeId> sub;
        sub.reserve(static_cast<std::size_t>(cnt));
        for (long long k = 0; k < cnt; ++k) {
          long long idx = -1;
          ls >> idx;
          FTB_CHECK_MSG(ls && idx >= 0 && idx < mh,
                        "pair-table edge index out of range in '" << line
                                                                  << "'");
          sub.push_back(sorted_edges[static_cast<std::size_t>(idx)]);
        }
        std::sort(sub.begin(), sub.end());
        table.sites.push_back(f);
        table.edge_pool.insert(table.edge_pool.end(), sub.begin(), sub.end());
        table.offsets.push_back(
            static_cast<std::int64_t>(table.edge_pool.size()));
      }
      tables.push_back(std::move(table));
    }
  }

  if (sources_out != nullptr) *sources_out = std::move(sources);
  if (tables_out != nullptr) *tables_out = std::move(tables);
  return FtBfsStructure(g, static_cast<Vertex>(source), std::move(edges),
                        std::move(reinforced), std::move(tree_edges),
                        fault_class);
}

FtBfsStructure load_structure(const Graph& g, const std::string& path,
                              std::vector<Vertex>* sources_out,
                              std::vector<DualSiteTable>* tables_out) {
  std::ifstream f(path);
  FTB_CHECK_MSG(f.good(), "cannot open " << path);
  return read_structure(g, f, sources_out, tables_out);
}

}  // namespace ftb::io
