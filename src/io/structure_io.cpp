#include "src/io/structure_io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/core/validate.hpp"
#include "src/io/binary_io.hpp"
#include "src/util/crc32c.hpp"
#include "src/util/fault_inject.hpp"

namespace ftb::io {

namespace {

/// Hard ceiling on any declared v5 section payload: a length lie in a
/// corrupt artifact can never size an allocation past this.
constexpr long long kMaxSectionBytes = 1LL << 30;

/// The one shared error-context helper of the io layer: a line reader
/// that tracks the byte offset of the line it most recently produced and
/// the name of the artifact section being parsed. Every CheckError
/// leaving read_structure is annotated with context() (via with_context
/// below), so a corrupt artifact reports *where* it is corrupt.
class LineReader {
 public:
  LineReader(std::istream& is, std::int64_t base_offset, std::string section)
      : is_(is),
        offset_(base_offset),
        line_offset_(base_offset),
        section_(std::move(section)) {}

  /// Next non-blank, non-comment line ('' at end of input). Records the
  /// byte offset of the returned line's first character.
  std::string next_data_line() {
    std::string line;
    while (std::getline(is_, line)) {
      line_offset_ = offset_;
      offset_ += static_cast<std::int64_t>(line.size());
      if (!is_.eof()) ++offset_;  // getline consumed the '\n'
      const auto pos = line.find_first_not_of(" \t\r");
      if (pos == std::string::npos || line[pos] == '#') continue;
      return line;
    }
    line_offset_ = offset_;
    return {};
  }

  /// Reads exactly out->size() raw payload bytes (v5 framed sections);
  /// returns how many were actually delivered — fewer means the artifact
  /// is truncated mid-payload. Debug builds may inject short reads and
  /// bit flips here (fault::Point::kIoShortRead / kIoBitFlip); both must
  /// surface as the same CheckErrors real corruption raises.
  std::size_t read_raw(std::string* out) {
    line_offset_ = offset_;
    is_.read(out->data(), static_cast<std::streamsize>(out->size()));
    std::size_t got = static_cast<std::size_t>(is_.gcount());
    FTB_INJECT_FAULT(fault::Point::kIoShortRead, got = got / 2);
    FTB_INJECT_FAULT(fault::Point::kIoBitFlip,
                     if (got > 0) (*out)[got / 2] ^= 0x04);
    offset_ += static_cast<std::int64_t>(got);
    return got;
  }

  std::int64_t offset() const { return offset_; }
  void set_section(std::string s) { section_ = std::move(s); }

  /// " (at byte N in section 'S')" — the context every io-layer
  /// CheckError carries.
  std::string context() const {
    std::ostringstream os;
    os << " (at byte " << line_offset_ << " in section '" << section_
       << "')";
    return os.str();
  }

 private:
  std::istream& is_;
  std::int64_t offset_;
  std::int64_t line_offset_;
  std::string section_;
};

std::string annotated(const CheckError& e, const LineReader& rd) {
  std::string what = e.what();
  if (what.find("(at byte ") == std::string::npos) what += rd.context();
  return what;
}

/// Runs fn, annotating any context-free CheckError it throws with the
/// reader's byte offset + section name.
template <class Fn>
auto with_context(const LineReader& rd, Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const CheckError& e) {
    throw CheckError(annotated(e, rd));
  }
}

/// Position of edge e in the (ascending) structure edge list — the index
/// space the pair tables are serialized in.
std::int64_t edge_index_in(const std::vector<EdgeId>& edges, EdgeId e) {
  const auto it = std::lower_bound(edges.begin(), edges.end(), e);
  FTB_CHECK_MSG(it != edges.end() && *it == e,
                "pair-table edge " << e << " is not a structure edge");
  return it - edges.begin();
}

std::string crc_hex8(std::uint32_t v) {
  static const char* const kDigits = "0123456789abcdef";
  std::string s(8, '0');
  for (int i = 7; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kDigits[v & 0xFu];
    v >>= 4;
  }
  return s;
}

bool parse_crc_hex(const std::string& s, std::uint32_t* out) {
  if (s.empty() || s.size() > 8) return false;
  std::uint32_t v = 0;
  for (const char c : s) {
    int d = -1;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else return false;
    v = (v << 4) | static_cast<std::uint32_t>(d);
  }
  *out = v;
  return true;
}

// ---------------------------------------------------------------------------
// Shared per-section parsers (v1–v4 read them from the raw stream, v5 from
// checksummed payloads — same grammar either way).

FaultClass parse_fault_model(LineReader& rd, int version) {
  const std::string model_line = rd.next_data_line();
  std::istringstream ms(model_line);
  std::string word, tag;
  ms >> word >> tag;
  FTB_CHECK_MSG(word == "fault-model",
                "expected fault-model line, got '" << model_line << "'");
  FaultClass fault_class = parse_fault_class(tag);
  if (version < 4 && fault_class == FaultClass::kDual) {
    // Pre-v4 artifacts used "dual" for the single-failure edge ∪ vertex
    // union — load them as what they are.
    fault_class = FaultClass::kEither;
  }
  return fault_class;
}

std::vector<Vertex> parse_sources(const Graph& g, LineReader& rd) {
  const std::string sources_line = rd.next_data_line();
  std::istringstream ss(sources_line);
  std::string word;
  long long k = -1;
  ss >> word >> k;
  FTB_CHECK_MSG(word == "sources" && k >= 1,
                "expected sources line, got '" << sources_line << "'");
  FTB_CHECK_MSG(k <= g.num_vertices(),
                "sources count " << k << " exceeds n=" << g.num_vertices());
  std::vector<Vertex> sources;
  fault::maybe_fail_alloc();
  sources.reserve(static_cast<std::size_t>(k));
  for (long long i = 0; i < k; ++i) {
    long long s = -1;
    ss >> s;
    FTB_CHECK_MSG(ss && s >= 0, "bad sources line '" << sources_line << "'");
    sources.push_back(static_cast<Vertex>(s));
  }
  // Same invariants every build entry point enforces: in range, no
  // duplicates (a duplicated source would make Session::load build the
  // same tree and engines twice).
  detail::check_sources(g, sources);
  return sources;
}

struct EdgeSection {
  Vertex source = 0;
  std::vector<EdgeId> edges, reinforced, tree_edges;
};

EdgeSection parse_edge_section(const Graph& g, LineReader& rd) {
  const std::string header = rd.next_data_line();
  FTB_CHECK_MSG(!header.empty(), "missing structure header");
  long long n = -1, mh = -1, source = -1;
  {
    std::istringstream hs(header);
    hs >> n >> mh >> source;
  }
  FTB_CHECK_MSG(n == g.num_vertices(),
                "structure built for n=" << n << ", graph has "
                                         << g.num_vertices());
  FTB_CHECK_MSG(mh >= 0 && source >= 0 && source < n, "bad header");
  // Untrusted count: H's edges are a subset of G's, so any larger claim
  // is a length lie — reject before it sizes the read loop.
  FTB_CHECK_MSG(mh <= g.num_edges(), "edge count " << mh
                                                   << " exceeds the graph's "
                                                   << g.num_edges()
                                                   << " edges");
  EdgeSection out;
  out.source = static_cast<Vertex>(source);
  fault::maybe_fail_alloc();
  out.edges.reserve(static_cast<std::size_t>(mh));
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(g.num_edges()), 0);
  for (long long i = 0; i < mh; ++i) {
    const std::string line = rd.next_data_line();
    FTB_CHECK_MSG(!line.empty(),
                  "expected " << mh << " structure edges, got " << i);
    std::istringstream es(line);
    long long u = -1, v = -1;
    int flags = -1;
    es >> u >> v >> flags;
    FTB_CHECK_MSG(u >= 0 && v >= 0 && flags >= 0 && flags <= 3,
                  "bad structure edge line '" << line << "'");
    const EdgeId e =
        g.find_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
    FTB_CHECK_MSG(e != kInvalidEdge,
                  "structure edge (" << u << "," << v
                                     << ") missing from the graph");
    FTB_CHECK_MSG(!seen[static_cast<std::size_t>(e)],
                  "duplicate structure edge (" << u << "," << v << ")");
    seen[static_cast<std::size_t>(e)] = 1;
    out.edges.push_back(e);
    if (flags & 1) out.reinforced.push_back(e);
    if (flags & 2) out.tree_edges.push_back(e);
  }
  return out;
}

std::vector<DualSiteTable> parse_pair_tables(
    const Graph& g, LineReader& rd, const std::vector<Vertex>& sources,
    const std::vector<EdgeId>& edges) {
  const long long n = g.num_vertices();
  const long long mh = static_cast<long long>(edges.size());
  // Index space of the tables: the edge section sorted ascending (which
  // is also how write_structure emits it — but a hand-edited file may
  // not be sorted, so map through an explicitly sorted copy).
  std::vector<EdgeId> sorted_edges = edges;
  std::sort(sorted_edges.begin(), sorted_edges.end());
  const std::string pt = rd.next_data_line();
  std::istringstream ps(pt);
  std::string word;
  long long num_tables = -1;
  ps >> word >> num_tables;
  FTB_CHECK_MSG(word == "pair-tables" && num_tables >= 0,
                "expected pair-tables line, got '" << pt << "'");
  FTB_CHECK_MSG(num_tables == 0 ||
                    num_tables == static_cast<long long>(sources.size()),
                "pair-tables count " << num_tables << " does not match "
                                     << sources.size() << " sources");
  std::vector<DualSiteTable> tables;
  for (long long ti = 0; ti < num_tables; ++ti) {
    const std::string st = rd.next_data_line();
    std::istringstream ss(st);
    std::string w;
    long long src = -1, num_sites = -1;
    ss >> w >> src >> num_sites;
    FTB_CHECK_MSG(w == "source-tables" && num_sites >= 0 &&
                      src == sources[static_cast<std::size_t>(ti)],
                  "expected source-tables line for source "
                      << sources[static_cast<std::size_t>(ti)] << ", got '"
                      << st << "'");
    // Untrusted count: each first-failure site is a distinct structure
    // edge or vertex, so mh + n bounds any honest table.
    FTB_CHECK_MSG(num_sites <= mh + n,
                  "site count " << num_sites << " exceeds the " << mh + n
                                << " possible first-failure sites");
    DualSiteTable table;
    fault::maybe_fail_alloc();
    table.sites.reserve(static_cast<std::size_t>(num_sites));
    table.offsets.push_back(0);
    for (long long i = 0; i < num_sites; ++i) {
      const std::string line = rd.next_data_line();
      FTB_CHECK_MSG(!line.empty(), "expected " << num_sites
                                               << " site lines, got " << i);
      std::istringstream ls(line);
      std::string kw, kind;
      ls >> kw >> kind;
      FTB_CHECK_MSG(kw == "site" && (kind == "e" || kind == "v"),
                    "bad site line '" << line << "'");
      DualSite f;
      if (kind == "e") {
        long long u = -1, v = -1;
        ls >> u >> v;
        FTB_CHECK_MSG(ls && u >= 0 && v >= 0,
                      "bad site line '" << line << "'");
        f.kind = FaultClass::kEdge;
        f.id = g.find_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
        FTB_CHECK_MSG(f.id != kInvalidEdge,
                      "site edge (" << u << "," << v
                                    << ") missing from the graph");
      } else {
        long long x = -1;
        ls >> x;
        FTB_CHECK_MSG(ls && x >= 0 && x < n,
                      "bad site line '" << line << "'");
        f.kind = FaultClass::kVertex;
        f.id = static_cast<std::int32_t>(x);
      }
      long long cnt = -1;
      ls >> cnt;
      FTB_CHECK_MSG(ls && cnt >= 0, "bad site line '" << line << "'");
      // Untrusted count: a site's punctured structure is a subset of H.
      FTB_CHECK_MSG(cnt <= mh, "site subset size "
                                   << cnt << " exceeds the structure's "
                                   << mh << " edges");
      std::vector<EdgeId> sub;
      fault::maybe_fail_alloc();
      sub.reserve(static_cast<std::size_t>(cnt));
      for (long long k = 0; k < cnt; ++k) {
        long long idx = -1;
        ls >> idx;
        FTB_CHECK_MSG(ls && idx >= 0 && idx < mh,
                      "pair-table edge index out of range in '" << line
                                                                << "'");
        sub.push_back(sorted_edges[static_cast<std::size_t>(idx)]);
      }
      std::sort(sub.begin(), sub.end());
      // Zero-trust: a site's subset is a SET of structure edges. Duplicate
      // indices would survive into the pool and break the canonical
      // strictly-ascending form the v6 binary container pins down.
      FTB_CHECK_MSG(std::adjacent_find(sub.begin(), sub.end()) == sub.end(),
                    "duplicate pair-table edge index in '" << line << "'");
      table.sites.push_back(f);
      table.edge_pool.insert(table.edge_pool.end(), sub.begin(), sub.end());
      table.offsets.push_back(
          static_cast<std::int64_t>(table.edge_pool.size()));
    }
    tables.push_back(std::move(table));
  }
  return tables;
}

std::vector<DualSiteDistTable> parse_site_dist(
    const Graph& g, LineReader& rd, const std::vector<Vertex>& sources,
    const std::vector<DualSiteTable>& tables) {
  const long long n = g.num_vertices();
  const std::string head = rd.next_data_line();
  std::istringstream hs(head);
  std::string word;
  long long num_tables = -1;
  hs >> word >> num_tables;
  FTB_CHECK_MSG(word == "site-dist" &&
                    num_tables == static_cast<long long>(sources.size()),
                "expected 'site-dist " << sources.size() << "', got '" << head
                                       << "'");
  std::vector<DualSiteDistTable> out;
  out.reserve(static_cast<std::size_t>(num_tables));
  for (long long ti = 0; ti < num_tables; ++ti) {
    const std::string st = rd.next_data_line();
    std::istringstream ss(st);
    std::string w;
    long long src = -1, num_sites = -1;
    ss >> w >> src >> num_sites;
    // The slot layout is defined by the pair tables' site order, so the
    // site count must agree exactly with the sibling section.
    const auto sites_expected = static_cast<long long>(
        tables[static_cast<std::size_t>(ti)].num_sites());
    FTB_CHECK_MSG(w == "source-dist" &&
                      src == sources[static_cast<std::size_t>(ti)] &&
                      num_sites == sites_expected,
                  "expected 'source-dist "
                      << sources[static_cast<std::size_t>(ti)] << ' '
                      << sites_expected << "', got '" << st << "'");
    DualSiteDistTable t;
    fault::maybe_fail_alloc();
    t.site_offsets.reserve(static_cast<std::size_t>(num_sites) + 1);
    t.site_offsets.push_back(0);
    t.row_offsets.push_back(0);
    for (long long i = 0; i < num_sites; ++i) {
      const std::string sl = rd.next_data_line();
      std::istringstream sls(sl);
      std::string kw;
      long long slots = -1;
      sls >> kw >> slots;
      // Untrusted count: a site's subtree holds at least its top and at
      // most every vertex.
      FTB_CHECK_MSG(kw == "dsite" && slots >= 1 && slots <= n,
                    "bad dsite line '" << sl << "'");
      for (long long k = 0; k < slots; ++k) {
        const std::string line = rd.next_data_line();
        FTB_CHECK_MSG(!line.empty(),
                      "expected " << slots << " dterm lines, got " << k);
        std::istringstream ls(line);
        std::string dw, first;
        ls >> dw >> first;
        FTB_CHECK_MSG(dw == "dterm" && !first.empty(),
                      "bad dterm line '" << line << "'");
        if (first == "x") {  // unreachable under the first failure alone
          t.parent_edge.push_back(kInvalidEdge);
          t.tf_depth.push_back(kInfHops);
          t.row_offsets.push_back(
              static_cast<std::int64_t>(t.rows.size()));
          continue;
        }
        long long pu = -1, pv = -1, d = -1;
        {
          std::istringstream fs(first);
          fs >> pu;
          FTB_CHECK_MSG(fs && pu >= 0, "bad dterm line '" << line << "'");
        }
        ls >> pv >> d;
        FTB_CHECK_MSG(ls && pv >= 0 && d >= 1 && d < n,
                      "bad dterm line '" << line << "'");
        const EdgeId pe =
            g.find_edge(static_cast<Vertex>(pu), static_cast<Vertex>(pv));
        FTB_CHECK_MSG(pe != kInvalidEdge,
                      "dterm parent edge (" << pu << "," << pv
                                            << ") missing from the graph");
        t.parent_edge.push_back(pe);
        t.tf_depth.push_back(static_cast<std::int32_t>(d));
        for (long long j = 0; j < 2 * d - 1; ++j) {
          long long r = -2;
          ls >> r;
          // Row values are two-failure distances: < n hops, or -1 for
          // "disconnected under that second failure".
          FTB_CHECK_MSG(ls && r >= -1 && r < n,
                        "bad dterm row in '" << line << "'");
          t.rows.push_back(r < 0 ? kInfHops
                                 : static_cast<std::int32_t>(r));
        }
        t.row_offsets.push_back(static_cast<std::int64_t>(t.rows.size()));
      }
      t.site_offsets.push_back(
          static_cast<std::int64_t>(t.parent_edge.size()));
    }
    out.push_back(std::move(t));
  }
  return out;
}

void note_drop(LoadReport* report, const std::string& why) {
  if (report == nullptr) return;
  report->complete = false;
  report->dropped.push_back(why);
}

// ---------------------------------------------------------------------------
// v1–v4: line-framed artifacts read straight off the stream.

FtBfsStructure read_legacy(const Graph& g, LineReader& rd, int version,
                           std::vector<Vertex>* sources_out,
                           std::vector<DualSiteTable>* tables_out,
                           const ReadOptions& opts, LoadReport* report) {
  // Version 2 added the fault-model tag (version 1 is an edge-model
  // artifact by definition); version 3 added the multi-source line;
  // version 4 the dual-failure model and its pair tables.
  rd.set_section("meta");
  FaultClass fault_class = FaultClass::kEdge;
  if (version >= 2) fault_class = parse_fault_model(rd, version);
  std::vector<Vertex> sources;
  if (version >= 3) sources = parse_sources(g, rd);

  rd.set_section("edges");
  EdgeSection es = parse_edge_section(g, rd);
  if (sources.empty()) sources.push_back(es.source);
  FTB_CHECK_MSG(sources.front() == es.source,
                "sources line disagrees with the header's anchor source");

  std::vector<DualSiteTable> tables;
  bool lost_sync = false;
  if (version >= 4) {
    rd.set_section("pair-tables");
    if (opts.tolerate_pair_tables) {
      try {
        tables = parse_pair_tables(g, rd, sources, es.edges);
      } catch (const CheckError& e) {
        // A line-framed stream cannot re-sync past a corrupt table, so
        // drop the tables and stop parsing; the caller rebuilds them.
        tables.clear();
        lost_sync = true;
        note_drop(report, "pair-tables: " + annotated(e, rd));
      }
    } else {
      tables = parse_pair_tables(g, rd, sources, es.edges);
    }
  }
  if (!lost_sync) {
    rd.set_section("trailer");
    const std::string extra = rd.next_data_line();
    FTB_CHECK_MSG(extra.empty(),
                  "trailing data after the artifact: '" << extra << "'");
  }

  if (sources_out != nullptr) *sources_out = std::move(sources);
  if (tables_out != nullptr) *tables_out = std::move(tables);
  return FtBfsStructure(g, es.source, std::move(es.edges),
                        std::move(es.reinforced), std::move(es.tree_edges),
                        fault_class);
}

// ---------------------------------------------------------------------------
// v5: checksummed framed sections.

struct SectionPayload {
  std::string bytes;
  std::int64_t offset = 0;  // byte offset of the payload's first byte
  bool present = false;
  bool dropped = false;  // integrity failure tolerated away
};

FtBfsStructure read_v5(const Graph& g, LineReader& rd,
                       std::vector<Vertex>* sources_out,
                       std::vector<DualSiteTable>* tables_out,
                       const ReadOptions& opts, LoadReport* report,
                       std::vector<DualSiteDistTable>* site_dist_out) {
  rd.set_section("frame");
  SectionPayload meta, edges, pair_tables, site_dist;
  std::vector<std::string> order;
  bool lost_sync = false;
  for (;;) {
    const std::string line = rd.next_data_line();
    if (line.empty()) break;
    std::istringstream hs(line);
    std::string word, name, crc_hex;
    long long len = -1;
    hs >> word >> name >> len >> crc_hex;
    FTB_CHECK_MSG(word == "section" && !name.empty() && !crc_hex.empty(),
                  "expected 'section <name> <bytes> <crc32c>', got '" << line
                                                                      << "'");
    SectionPayload* slot = name == "meta"          ? &meta
                           : name == "edges"       ? &edges
                           : name == "pair-tables" ? &pair_tables
                           : name == "site-dist"   ? &site_dist
                                                   : nullptr;
    FTB_CHECK_MSG(slot != nullptr, "unknown section '" << name << "'");
    FTB_CHECK_MSG(!slot->present, "duplicate section '" << name << "'");
    FTB_CHECK_MSG(len >= 0 && len <= kMaxSectionBytes,
                  "section '" << name << "' declares implausible length "
                              << len);
    std::uint32_t want_crc = 0;
    FTB_CHECK_MSG(parse_crc_hex(crc_hex, &want_crc),
                  "section '" << name << "' has a malformed checksum '"
                              << crc_hex << "'");
    slot->present = true;
    order.push_back(name);
    fault::maybe_fail_alloc();
    slot->bytes.assign(static_cast<std::size_t>(len), '\0');
    slot->offset = rd.offset();
    const std::size_t got = rd.read_raw(&slot->bytes);
    const bool droppable =
        (name == "pair-tables" && opts.tolerate_pair_tables) ||
        (name == "site-dist" && opts.tolerate_site_dist);
    if (got != static_cast<std::size_t>(len)) {
      FTB_CHECK_MSG(droppable, "section '" << name << "' truncated: declared "
                                           << len << " bytes, got " << got);
      // The payload ended early — framing past this point is unreliable.
      slot->dropped = true;
      lost_sync = true;
      note_drop(report, name + ": truncated section" + rd.context());
      break;
    }
    const std::uint32_t got_crc = crc32c(slot->bytes);
    if (got_crc != want_crc) {
      FTB_CHECK_MSG(droppable, "section '" << name
                                           << "' checksum mismatch: payload "
                                           << crc_hex8(got_crc)
                                           << " != declared " << crc_hex);
      slot->dropped = true;  // framing intact (length held) — keep going
      note_drop(report, name + ": checksum mismatch" + rd.context());
    }
  }
  (void)lost_sync;
  FTB_CHECK_MSG(meta.present, "missing section 'meta'");
  FTB_CHECK_MSG(edges.present, "missing section 'edges'");
  FTB_CHECK_MSG(
      order[0] == "meta" && order[1] == "edges" &&
          (order.size() == 2 ||
           (order[2] == "pair-tables" &&
            (order.size() == 3 ||
             (order.size() == 4 && order[3] == "site-dist")))),
      "sections out of order (expected meta, edges, pair-tables, site-dist)");

  FaultClass fault_class = FaultClass::kEdge;
  std::vector<Vertex> sources;
  {
    std::istringstream ms(meta.bytes);
    LineReader mrd(ms, meta.offset, "meta");
    with_context(mrd, [&] {
      fault_class = parse_fault_model(mrd, /*version=*/5);
      sources = parse_sources(g, mrd);
      const std::string extra = mrd.next_data_line();
      FTB_CHECK_MSG(extra.empty(),
                    "trailing data in section: '" << extra << "'");
      return 0;
    });
  }

  EdgeSection es;
  {
    std::istringstream esrc(edges.bytes);
    LineReader erd(esrc, edges.offset, "edges");
    with_context(erd, [&] {
      es = parse_edge_section(g, erd);
      FTB_CHECK_MSG(sources.front() == es.source,
                    "sources line disagrees with the header's anchor source");
      const std::string extra = erd.next_data_line();
      FTB_CHECK_MSG(extra.empty(),
                    "trailing data in section: '" << extra << "'");
      return 0;
    });
  }

  std::vector<DualSiteTable> tables;
  if (pair_tables.present && !pair_tables.dropped) {
    std::istringstream ps(pair_tables.bytes);
    LineReader ptrd(ps, pair_tables.offset, "pair-tables");
    auto parse_pt = [&] {
      FTB_CHECK_MSG(fault_class == FaultClass::kDual,
                    "pair-tables section on a non-dual artifact");
      std::vector<DualSiteTable> t =
          parse_pair_tables(g, ptrd, sources, es.edges);
      const std::string extra = ptrd.next_data_line();
      FTB_CHECK_MSG(extra.empty(),
                    "trailing data in section: '" << extra << "'");
      return t;
    };
    if (opts.tolerate_pair_tables) {
      try {
        tables = with_context(ptrd, parse_pt);
      } catch (const CheckError& e) {
        tables.clear();
        note_drop(report, std::string("pair-tables: ") + e.what());
      }
    } else {
      tables = with_context(ptrd, parse_pt);
    }
  }

  std::vector<DualSiteDistTable> sdist;
  if (site_dist.present && !site_dist.dropped) {
    std::istringstream ds(site_dist.bytes);
    LineReader drd(ds, site_dist.offset, "site-dist");
    auto parse_sd = [&] {
      FTB_CHECK_MSG(fault_class == FaultClass::kDual,
                    "site-dist section on a non-dual artifact");
      // The slot layout indexes the pair tables' site order, so the
      // section is unusable without them (missing or dropped alike).
      FTB_CHECK_MSG(!tables.empty(),
                    "site-dist section without usable pair tables");
      std::vector<DualSiteDistTable> t =
          parse_site_dist(g, drd, sources, tables);
      const std::string extra = drd.next_data_line();
      FTB_CHECK_MSG(extra.empty(),
                    "trailing data in section: '" << extra << "'");
      return t;
    };
    if (opts.tolerate_site_dist) {
      try {
        sdist = with_context(drd, parse_sd);
      } catch (const CheckError& e) {
        sdist.clear();
        note_drop(report, std::string("site-dist: ") + e.what());
      }
    } else {
      sdist = with_context(drd, parse_sd);
    }
  }

  if (sources_out != nullptr) *sources_out = std::move(sources);
  if (tables_out != nullptr) *tables_out = std::move(tables);
  if (site_dist_out != nullptr) *site_dist_out = std::move(sdist);
  return FtBfsStructure(g, es.source, std::move(es.edges),
                        std::move(es.reinforced), std::move(es.tree_edges),
                        fault_class);
}

}  // namespace

// ---------------------------------------------------------------------------
// Writers. v2–v4 stay byte-stable (files produced by earlier releases
// round-trip unchanged); v5 is explicit via write_structure_v5.

void write_structure(const FtBfsStructure& h, std::span<const Vertex> sources,
                     std::span<const DualSiteTable> pair_tables,
                     std::ostream& os) {
  const Graph& g = h.graph();
  const bool dual = h.fault_class() == FaultClass::kDual;
  const bool multi = sources.size() > 1;
  FTB_CHECK_MSG(sources.empty() || sources.front() == h.source(),
                "sources.front() must be the structure's anchor source");
  FTB_CHECK_MSG(pair_tables.empty() || dual,
                "pair tables belong to dual-failure artifacts only");
  FTB_CHECK_MSG(pair_tables.empty() || pair_tables.size() == sources.size(),
                "need one pair table per source (got "
                    << pair_tables.size() << " tables for " << sources.size()
                    << " sources)");
  const int version = dual ? 4 : (multi ? 3 : 2);
  os << "ftbfs-structure " << version << "\n";
  os << "fault-model " << to_string(h.fault_class()) << '\n';
  if (version >= 3) {
    // v3 reached this line only for multi-source artifacts; v4 always
    // writes it (the loader reads it unconditionally from v3 up).
    os << "sources " << sources.size();
    for (const Vertex s : sources) os << ' ' << s;
    os << '\n';
  }
  os << "# n |E(H)| source\n";
  os << g.num_vertices() << ' ' << h.num_edges() << ' ' << h.source() << '\n';
  os << "# u v flags (1=reinforced, 2=tree)\n";
  std::vector<std::uint8_t> is_tree(static_cast<std::size_t>(g.num_edges()),
                                    0);
  for (const EdgeId e : h.tree_edges()) {
    is_tree[static_cast<std::size_t>(e)] = 1;
  }
  for (const EdgeId e : h.edges()) {
    const auto [u, v] = g.edge(e);
    int flags = 0;
    if (h.is_reinforced(e)) flags |= 1;
    if (is_tree[static_cast<std::size_t>(e)]) flags |= 2;
    os << u << ' ' << v << ' ' << flags << '\n';
  }
  if (version >= 4) {
    // The dual pair tables: per source, per first-failure site, the edge
    // set of the punctured single-fault structure H_f as indices into the
    // edge section above (ascending EdgeId order, so indices ascend too).
    os << "# pair tables: site <e u v|v x> <count> <edge indices>\n";
    os << "pair-tables " << pair_tables.size() << '\n';
    for (std::size_t si = 0; si < pair_tables.size(); ++si) {
      const DualSiteTable& t = pair_tables[si];
      os << "source-tables " << sources[si] << ' ' << t.num_sites() << '\n';
      for (std::size_t i = 0; i < t.num_sites(); ++i) {
        const DualSite f = t.sites[i];
        if (f.kind == FaultClass::kEdge) {
          const auto [u, v] = g.edge(f.id);
          os << "site e " << u << ' ' << v;
        } else {
          os << "site v " << f.id;
        }
        const auto sub = t.subset(i);
        os << ' ' << sub.size();
        for (const EdgeId e : sub) os << ' ' << edge_index_in(h.edges(), e);
        os << '\n';
      }
    }
  }
}

void write_structure(const FtBfsStructure& h, std::span<const Vertex> sources,
                     std::ostream& os) {
  write_structure(h, sources, {}, os);
}

void write_structure(const FtBfsStructure& h, std::ostream& os) {
  const Vertex anchor[] = {h.source()};
  write_structure(h, anchor, {}, os);
}

void save_structure(const FtBfsStructure& h, std::span<const Vertex> sources,
                    std::span<const DualSiteTable> pair_tables,
                    const std::string& path) {
  std::ofstream f(path);
  FTB_CHECK_MSG(f.good(), "cannot open " << path << " for writing");
  write_structure(h, sources, pair_tables, f);
}

void save_structure(const FtBfsStructure& h, std::span<const Vertex> sources,
                    const std::string& path) {
  save_structure(h, sources, {}, path);
}

void save_structure(const FtBfsStructure& h, const std::string& path) {
  const Vertex anchor[] = {h.source()};
  save_structure(h, anchor, {}, path);
}

void write_structure_v5(const FtBfsStructure& h,
                        std::span<const Vertex> sources,
                        std::span<const DualSiteTable> pair_tables,
                        std::ostream& os) {
  write_structure_v5(h, sources, pair_tables, {}, os);
}

void write_structure_v5(const FtBfsStructure& h,
                        std::span<const Vertex> sources,
                        std::span<const DualSiteTable> pair_tables,
                        std::span<const DualSiteDistTable> site_dist,
                        std::ostream& os) {
  const Graph& g = h.graph();
  const bool dual = h.fault_class() == FaultClass::kDual;
  FTB_CHECK_MSG(!sources.empty(), "v5 artifacts always carry a sources line");
  FTB_CHECK_MSG(sources.front() == h.source(),
                "sources.front() must be the structure's anchor source");
  FTB_CHECK_MSG(pair_tables.empty() || dual,
                "pair tables belong to dual-failure artifacts only");
  FTB_CHECK_MSG(pair_tables.empty() || pair_tables.size() == sources.size(),
                "need one pair table per source (got "
                    << pair_tables.size() << " tables for " << sources.size()
                    << " sources)");
  FTB_CHECK_MSG(site_dist.empty() || (!pair_tables.empty() &&
                                      site_dist.size() == sources.size()),
                "site-dist tables require pair tables and one table per "
                "source (got "
                    << site_dist.size() << " tables for " << sources.size()
                    << " sources)");

  std::ostringstream meta;
  meta << "fault-model " << to_string(h.fault_class()) << '\n';
  meta << "sources " << sources.size();
  for (const Vertex s : sources) meta << ' ' << s;
  meta << '\n';

  std::ostringstream edges;
  edges << g.num_vertices() << ' ' << h.num_edges() << ' ' << h.source()
        << '\n';
  std::vector<std::uint8_t> is_tree(static_cast<std::size_t>(g.num_edges()),
                                    0);
  for (const EdgeId e : h.tree_edges()) {
    is_tree[static_cast<std::size_t>(e)] = 1;
  }
  for (const EdgeId e : h.edges()) {
    const auto [u, v] = g.edge(e);
    int flags = 0;
    if (h.is_reinforced(e)) flags |= 1;
    if (is_tree[static_cast<std::size_t>(e)]) flags |= 2;
    edges << u << ' ' << v << ' ' << flags << '\n';
  }

  os << "ftbfs-structure 5\n";
  const auto emit = [&os](const char* name, const std::string& payload) {
    os << "section " << name << ' ' << payload.size() << ' '
       << crc_hex8(crc32c(payload)) << '\n'
       << payload;
  };
  emit("meta", meta.str());
  emit("edges", edges.str());
  if (!pair_tables.empty()) {
    std::ostringstream pt;
    pt << "pair-tables " << pair_tables.size() << '\n';
    for (std::size_t si = 0; si < pair_tables.size(); ++si) {
      const DualSiteTable& t = pair_tables[si];
      pt << "source-tables " << sources[si] << ' ' << t.num_sites() << '\n';
      for (std::size_t i = 0; i < t.num_sites(); ++i) {
        const DualSite f = t.sites[i];
        if (f.kind == FaultClass::kEdge) {
          const auto [u, v] = g.edge(f.id);
          pt << "site e " << u << ' ' << v;
        } else {
          pt << "site v " << f.id;
        }
        const auto sub = t.subset(i);
        pt << ' ' << sub.size();
        for (const EdgeId e : sub) pt << ' ' << edge_index_in(h.edges(), e);
        pt << '\n';
      }
    }
    emit("pair-tables", pt.str());
  }
  if (!site_dist.empty()) {
    // One dterm line per slot, in the pair tables' site order and each
    // site's preorder slot order; 'x' marks an unreachable slot, -1 a
    // disconnected row. Deterministic like every other section.
    std::ostringstream sd;
    sd << "site-dist " << site_dist.size() << '\n';
    for (std::size_t si = 0; si < site_dist.size(); ++si) {
      const DualSiteDistTable& t = site_dist[si];
      sd << "source-dist " << sources[si] << ' '
         << (t.site_offsets.empty() ? 0 : t.site_offsets.size() - 1) << '\n';
      for (std::size_t i = 0; i + 1 < t.site_offsets.size(); ++i) {
        sd << "dsite " << t.site_offsets[i + 1] - t.site_offsets[i] << '\n';
        for (std::int64_t slot = t.site_offsets[i];
             slot < t.site_offsets[i + 1]; ++slot) {
          const auto s = static_cast<std::size_t>(slot);
          const std::int32_t d = t.tf_depth[s];
          if (d >= kInfHops) {
            sd << "dterm x\n";
            continue;
          }
          const auto [pu, pv] = g.edge(t.parent_edge[s]);
          sd << "dterm " << pu << ' ' << pv << ' ' << d;
          const std::int64_t roff = t.row_offsets[s];
          for (std::int64_t j = 0; j < 2 * d - 1; ++j) {
            const std::int32_t r =
                t.rows[static_cast<std::size_t>(roff + j)];
            sd << ' ' << (r >= kInfHops ? -1 : r);
          }
          sd << '\n';
        }
      }
    }
    emit("site-dist", sd.str());
  }
}

void save_structure_v5(const FtBfsStructure& h,
                       std::span<const Vertex> sources,
                       std::span<const DualSiteTable> pair_tables,
                       const std::string& path) {
  save_structure_v5(h, sources, pair_tables, {}, path);
}

void save_structure_v5(const FtBfsStructure& h,
                       std::span<const Vertex> sources,
                       std::span<const DualSiteTable> pair_tables,
                       std::span<const DualSiteDistTable> site_dist,
                       const std::string& path) {
  std::ofstream f(path);
  FTB_CHECK_MSG(f.good(), "cannot open " << path << " for writing");
  write_structure_v5(h, sources, pair_tables, site_dist, f);
}

// ---------------------------------------------------------------------------
// Readers.

FtBfsStructure read_structure(const Graph& g, std::istream& is,
                              std::vector<Vertex>* sources_out,
                              std::vector<DualSiteTable>* tables_out,
                              const ReadOptions& opts, LoadReport* report,
                              std::vector<DualSiteDistTable>* site_dist_out) {
  if (report != nullptr) *report = LoadReport{};
  if (site_dist_out != nullptr) site_dist_out->clear();
  LineReader rd(is, 0, "magic");
  return with_context(rd, [&] {
    const std::string magic = rd.next_data_line();
    FTB_CHECK_MSG(magic.rfind("ftbfs-structure", 0) == 0,
                  "bad magic line '" << magic << "'");
    int version = -1;
    {
      std::istringstream ms(magic);
      std::string word;
      ms >> word >> version;
    }
    FTB_CHECK_MSG(version >= 1 && version <= 5,
                  "unsupported structure version " << version);
    if (version == 5) {
      return read_v5(g, rd, sources_out, tables_out, opts, report,
                     site_dist_out);
    }
    return read_legacy(g, rd, version, sources_out, tables_out, opts,
                       report);
  });
}

FtBfsStructure read_structure(const Graph& g, std::istream& is,
                              std::vector<Vertex>* sources_out,
                              std::vector<DualSiteTable>* tables_out) {
  return read_structure(g, is, sources_out, tables_out, ReadOptions{},
                        nullptr);
}

FtBfsStructure load_structure(const Graph& g, const std::string& path,
                              std::vector<Vertex>* sources_out,
                              std::vector<DualSiteTable>* tables_out,
                              const ReadOptions& opts, LoadReport* report,
                              std::vector<DualSiteDistTable>* site_dist_out) {
  // Auto-detect the artifact generation by magic: binary v6 containers go
  // through the mmap loader (binary_io.cpp), text ones through the stream
  // reader below. Same outputs, options, and tolerant-drop semantics on
  // both paths, so callers never care which generation is on disk.
  if (is_v6_artifact(path)) {
    return load_structure_v6(g, path, sources_out, tables_out, opts, report,
                             site_dist_out);
  }
  std::ifstream f(path);
  FTB_CHECK_MSG(f.good(), "cannot open " << path);
  return read_structure(g, f, sources_out, tables_out, opts, report,
                        site_dist_out);
}

FtBfsStructure load_structure(const Graph& g, const std::string& path,
                              std::vector<Vertex>* sources_out,
                              std::vector<DualSiteTable>* tables_out) {
  return load_structure(g, path, sources_out, tables_out, ReadOptions{},
                        nullptr);
}

}  // namespace ftb::io
