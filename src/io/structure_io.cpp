#include "src/io/structure_io.hpp"

#include <fstream>
#include <sstream>

#include "src/core/validate.hpp"

namespace ftb::io {

namespace {
std::string next_data_line(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    const auto pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '#') continue;
    return line;
  }
  return {};
}
}  // namespace

void write_structure(const FtBfsStructure& h, std::span<const Vertex> sources,
                     std::ostream& os) {
  const Graph& g = h.graph();
  const bool multi = sources.size() > 1;
  FTB_CHECK_MSG(sources.empty() || sources.front() == h.source(),
                "sources.front() must be the structure's anchor source");
  os << "ftbfs-structure " << (multi ? 3 : 2) << "\n";
  os << "fault-model " << to_string(h.fault_class()) << '\n';
  if (multi) {
    os << "sources " << sources.size();
    for (const Vertex s : sources) os << ' ' << s;
    os << '\n';
  }
  os << "# n |E(H)| source\n";
  os << g.num_vertices() << ' ' << h.num_edges() << ' ' << h.source() << '\n';
  os << "# u v flags (1=reinforced, 2=tree)\n";
  std::vector<std::uint8_t> is_tree(static_cast<std::size_t>(g.num_edges()),
                                    0);
  for (const EdgeId e : h.tree_edges()) {
    is_tree[static_cast<std::size_t>(e)] = 1;
  }
  for (const EdgeId e : h.edges()) {
    const auto [u, v] = g.edge(e);
    int flags = 0;
    if (h.is_reinforced(e)) flags |= 1;
    if (is_tree[static_cast<std::size_t>(e)]) flags |= 2;
    os << u << ' ' << v << ' ' << flags << '\n';
  }
}

void write_structure(const FtBfsStructure& h, std::ostream& os) {
  const Vertex anchor[] = {h.source()};
  write_structure(h, anchor, os);
}

void save_structure(const FtBfsStructure& h, std::span<const Vertex> sources,
                    const std::string& path) {
  std::ofstream f(path);
  FTB_CHECK_MSG(f.good(), "cannot open " << path << " for writing");
  write_structure(h, sources, f);
}

void save_structure(const FtBfsStructure& h, const std::string& path) {
  const Vertex anchor[] = {h.source()};
  save_structure(h, anchor, path);
}

FtBfsStructure read_structure(const Graph& g, std::istream& is,
                              std::vector<Vertex>* sources_out) {
  const std::string magic = next_data_line(is);
  FTB_CHECK_MSG(magic.rfind("ftbfs-structure", 0) == 0,
                "bad magic line '" << magic << "'");
  int version = -1;
  {
    std::istringstream ms(magic);
    std::string word;
    ms >> word >> version;
    FTB_CHECK_MSG(version >= 1 && version <= 3,
                  "unsupported structure version " << version);
  }
  // Version 2 added the fault-model tag (version 1 is an edge-model
  // artifact by definition); version 3 added the multi-source line.
  FaultClass fault_class = FaultClass::kEdge;
  if (version >= 2) {
    const std::string model_line = next_data_line(is);
    std::istringstream ms(model_line);
    std::string word, tag;
    ms >> word >> tag;
    FTB_CHECK_MSG(word == "fault-model",
                  "expected fault-model line, got '" << model_line << "'");
    fault_class = parse_fault_class(tag);
  }
  std::vector<Vertex> sources;
  if (version >= 3) {
    const std::string sources_line = next_data_line(is);
    std::istringstream ss(sources_line);
    std::string word;
    long long k = -1;
    ss >> word >> k;
    FTB_CHECK_MSG(word == "sources" && k >= 1,
                  "expected sources line, got '" << sources_line << "'");
    for (long long i = 0; i < k; ++i) {
      long long s = -1;
      ss >> s;
      FTB_CHECK_MSG(ss && s >= 0,
                    "bad sources line '" << sources_line << "'");
      sources.push_back(static_cast<Vertex>(s));
    }
    // Same invariants every build entry point enforces: in range, no
    // duplicates (a duplicated source would make Session::load build the
    // same tree and engines twice).
    detail::check_sources(g, sources);
  }
  const std::string header = next_data_line(is);
  FTB_CHECK_MSG(!header.empty(), "missing structure header");
  long long n = -1, mh = -1, source = -1;
  {
    std::istringstream hs(header);
    hs >> n >> mh >> source;
  }
  FTB_CHECK_MSG(n == g.num_vertices(),
                "structure built for n=" << n << ", graph has "
                                         << g.num_vertices());
  FTB_CHECK_MSG(mh >= 0 && source >= 0 && source < n, "bad header");
  if (sources.empty()) {
    sources.push_back(static_cast<Vertex>(source));
  }
  FTB_CHECK_MSG(sources.front() == static_cast<Vertex>(source),
                "sources line disagrees with the header's anchor source");

  std::vector<EdgeId> edges, reinforced, tree_edges;
  for (long long i = 0; i < mh; ++i) {
    const std::string line = next_data_line(is);
    FTB_CHECK_MSG(!line.empty(),
                  "expected " << mh << " structure edges, got " << i);
    std::istringstream es(line);
    long long u = -1, v = -1;
    int flags = -1;
    es >> u >> v >> flags;
    FTB_CHECK_MSG(u >= 0 && v >= 0 && flags >= 0,
                  "bad structure edge line '" << line << "'");
    const EdgeId e =
        g.find_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
    FTB_CHECK_MSG(e != kInvalidEdge,
                  "structure edge (" << u << "," << v
                                     << ") missing from the graph");
    edges.push_back(e);
    if (flags & 1) reinforced.push_back(e);
    if (flags & 2) tree_edges.push_back(e);
  }
  if (sources_out != nullptr) *sources_out = std::move(sources);
  return FtBfsStructure(g, static_cast<Vertex>(source), std::move(edges),
                        std::move(reinforced), std::move(tree_edges),
                        fault_class);
}

FtBfsStructure load_structure(const Graph& g, const std::string& path,
                              std::vector<Vertex>* sources_out) {
  std::ifstream f(path);
  FTB_CHECK_MSG(f.good(), "cannot open " << path);
  return read_structure(g, f, sources_out);
}

}  // namespace ftb::io
