// binary_io.hpp — structure_io v6: the binary, mmap-able artifact plane.
//
// v5 (structure_io.hpp) made the text artifact zero-trust: framed sections,
// declared lengths, per-section CRC-32C. v6 keeps exactly that trust model
// and drops the tokenizer: the same logical sections (meta / edges /
// pair-tables / site-dist) travel as little-endian fixed-width arrays
// inside a sectioned binary container, so loading a prebuilt structure is
// a directory walk + checksum sweep over an mmap instead of a
// parse-every-decimal pass. The byte-level layout is specified normatively
// in docs/file_formats.md §v6; the shape at a glance:
//
//   [header, 64 bytes]   magic "\x89FTB6\r\n\x1a", version 6, endian tag,
//                        section count, directory CRC-32C, total file bytes
//   [directory]          per section: name[16], offset, bytes, CRC-32C
//   [payloads]           64-byte-aligned, in directory order, zero padding
//
// The container is CANONICAL: section order is fixed (meta, edges, then
// pair-tables / site-dist for dual artifacts), every offset is exactly the
// 64-byte-aligned end of the previous payload, padding bytes are zero, and
// the declared file size is the real one — so write → read → write is a
// byte-level fixed point (the same property io_fuzz pins for v1–v5), and
// any gap, overlap, length lie, or trailing tail is a load-time CheckError
// carrying "(at byte N in section 'S')" context, never a crash.
//
// Serving: MappedArtifact validates the header + directory with bounded
// reads (no untrusted length ever sizes an allocation), maps the file
// read-only (MAP_SHARED), checks every section checksum over the mapping,
// and serves section payloads as zero-copy std::span views — N processes
// serving one artifact share a single page-cache copy of the bytes.
//
// Writers emit v6 only on request (Session::save_v6, ftbfs_cli build
// --v6, convert); load_structure sniffs the magic and reads either
// generation, so every consumer of the text plane speaks v6 for free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/dual_fault.hpp"
#include "src/core/structure.hpp"
#include "src/io/structure_io.hpp"

namespace ftb::io {

/// The 8-byte v6 magic (PNG-style: a high bit to trip text channels, CRLF
/// and ^Z to trip line-ending and DOS-type mangling).
inline constexpr unsigned char kV6Magic[8] = {0x89, 'F', 'T', 'B',
                                              '6',  '\r', '\n', 0x1a};

/// True when `bytes` begins with the v6 magic (the auto-detection hook:
/// text artifacts begin "ftbfs-structure", binary ones with kV6Magic).
bool is_v6_magic(std::string_view bytes);
/// Sniffs the first bytes of `path` (false also when unreadable/short).
bool is_v6_artifact(const std::string& path);

/// One validated directory entry of a v6 container.
struct V6Section {
  std::string name;           // "meta" / "edges" / "pair-tables" / "site-dist"
  std::uint64_t offset = 0;   // absolute, 64-byte aligned
  std::uint64_t bytes = 0;    // payload length (checksummed extent)
  std::uint32_t crc32c = 0;   // CRC-32C of the payload bytes
};

/// A v6 artifact mapped read-only into this process: open → bounded
/// header/directory validation → mmap(PROT_READ, MAP_SHARED) → full
/// checksum sweep. Throws CheckError (with byte-offset context) on any
/// malformation; never partially maps. Move-only; unmaps on destruction.
/// All views returned by bytes()/section() are invalidated by destruction.
class MappedArtifact {
 public:
  /// Maps and fully validates `path` (directory shape, canonical layout,
  /// every section CRC). This is the strict audit fsck uses; tolerant
  /// structure loads go through load_structure_v6 instead.
  static MappedArtifact map(const std::string& path);

  MappedArtifact(MappedArtifact&& other) noexcept;
  MappedArtifact& operator=(MappedArtifact&& other) noexcept;
  MappedArtifact(const MappedArtifact&) = delete;
  MappedArtifact& operator=(const MappedArtifact&) = delete;
  ~MappedArtifact();

  /// The whole mapped file.
  std::span<const std::byte> bytes() const { return {data_, size_}; }
  std::uint64_t file_bytes() const { return size_; }
  const std::vector<V6Section>& directory() const { return directory_; }
  bool has_section(std::string_view name) const;
  /// Zero-copy payload view. Throws CheckError when absent.
  std::span<const std::byte> section(std::string_view name) const;

 private:
  MappedArtifact(const std::byte* data, std::size_t size,
                 std::vector<V6Section> directory)
      : data_(data), size_(size), directory_(std::move(directory)) {}

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::vector<V6Section> directory_;
};

/// Serializes the structure (+ sources, + dual pair tables, + optional
/// site-dist oracle) as a v6 container. Same content rules as the v5
/// writer: non-dual structures ignore `pair_tables`; a dual artifact
/// always carries a pair-tables section (t = 0 when `pair_tables` is
/// empty); `site_dist` requires non-empty `pair_tables`. Deterministic:
/// the same inputs always produce the same bytes.
std::string write_structure_v6_bytes(
    const FtBfsStructure& h, std::span<const Vertex> sources,
    std::span<const DualSiteTable> pair_tables,
    std::span<const DualSiteDistTable> site_dist);
void write_structure_v6(const FtBfsStructure& h,
                        std::span<const Vertex> sources,
                        std::span<const DualSiteTable> pair_tables,
                        std::span<const DualSiteDistTable> site_dist,
                        std::ostream& os);
void save_structure_v6(const FtBfsStructure& h,
                       std::span<const Vertex> sources,
                       std::span<const DualSiteTable> pair_tables,
                       std::span<const DualSiteDistTable> site_dist,
                       const std::string& path);

/// Parses a v6 container from memory against `g` — the in-memory twin of
/// load_structure_v6 (io_fuzz and the rejection tests feed it mutants).
/// Same outputs, options, tolerant-drop semantics and CheckError contract
/// as read_structure; every rejection carries "(at byte N in section
/// 'S')".
FtBfsStructure read_structure_v6(const Graph& g,
                                 std::span<const std::byte> bytes,
                                 std::vector<Vertex>* sources_out = nullptr,
                                 std::vector<DualSiteTable>* tables_out =
                                     nullptr,
                                 const ReadOptions& opts = {},
                                 LoadReport* report = nullptr,
                                 std::vector<DualSiteDistTable>*
                                     site_dist_out = nullptr);

/// Maps `path` read-only and parses it: the zero-copy attach path
/// Session::load takes for binary artifacts (the persisted pair tables
/// are validated straight off the page cache; the graph-recompute path
/// remains the fallback when they are absent or dropped). The mapping
/// lives only for the duration of the load — everything handed out is
/// owned — so the returned structure has no lifetime tie to the file.
FtBfsStructure load_structure_v6(const Graph& g, const std::string& path,
                                 std::vector<Vertex>* sources_out = nullptr,
                                 std::vector<DualSiteTable>* tables_out =
                                     nullptr,
                                 const ReadOptions& opts = {},
                                 LoadReport* report = nullptr,
                                 std::vector<DualSiteDistTable>*
                                     site_dist_out = nullptr);

}  // namespace ftb::io
