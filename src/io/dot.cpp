#include "src/io/dot.hpp"

#include <fstream>
#include <ostream>

#include "src/core/structure.hpp"

namespace ftb::io {

void write_dot(const Graph& g, std::ostream& os, const std::string& name) {
  os << "graph " << name << " {\n  node [shape=circle, fontsize=10];\n";
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    os << "  " << u << " -- " << v << ";\n";
  }
  os << "}\n";
}

void write_dot(const FtBfsStructure& h, std::ostream& os,
               const std::string& name) {
  const Graph& g = h.graph();
  os << "graph " << name << " {\n  node [shape=circle, fontsize=10];\n";
  os << "  " << h.source() << " [style=filled, fillcolor=gold];\n";
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    os << "  " << u << " -- " << v;
    if (!h.contains(e)) {
      os << " [style=dotted, color=gray]";
    } else if (h.is_reinforced(e)) {
      os << " [style=bold, color=red, penwidth=2.0]";
    } else {
      // backup edge; tree edges of T0 drawn solid, extra backups dashed
      bool is_tree = false;
      for (const EdgeId t : h.tree_edges()) {
        if (t == e) {
          is_tree = true;
          break;
        }
      }
      os << (is_tree ? " [style=solid]" : " [style=dashed, color=blue]");
    }
    os << ";\n";
  }
  os << "}\n";
}

void save_dot(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  FTB_CHECK_MSG(f.good(), "cannot open " << path << " for writing");
  write_dot(g, f);
}

void save_dot(const FtBfsStructure& h, const std::string& path) {
  std::ofstream f(path);
  FTB_CHECK_MSG(f.good(), "cannot open " << path << " for writing");
  write_dot(h, f);
}

}  // namespace ftb::io
