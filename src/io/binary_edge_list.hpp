// binary_edge_list.hpp — binary graph ingestion for the artifact plane.
//
// The scalable twin of the text edge list (edge_list.hpp): a fixed 64-byte
// little-endian header followed by the canonical edge array, so loading a
// real-sized graph is one bounds-checked streaming pass into the CSR
// instead of a tokenize-every-decimal parse. Layout (normative spec in
// docs/file_formats.md §binary edge list):
//
//   [header, 64 bytes]  magic "\x89FTBE\r\n\x1a", u32 version=1,
//                       u32 endian tag, u64 n, u64 m,
//                       u32 crc32c of the edge array, reserved zeros
//   [edges, 8·m bytes]  i32 (u,v) pairs, canonical u < v, strictly
//                       ascending lexicographic order, no duplicates
//
// The canonical-order requirement is load-bearing twice over: the reader
// streams straight into GraphBuilder::add_canonical_edge (no sort, no
// dedup pass), and a text load and a binary load of the same graph produce
// bit-identical Graph objects — duplicates in a text file dedup to exactly
// the order this format stores. Zero-trust contract as everywhere in io:
// every malformation (bad magic/version/endian tag, count lies, checksum
// mismatch, truncation, trailing bytes, non-canonical edges) throws
// CheckError carrying the byte offset and section of the offending input.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>

#include "src/graph/graph.hpp"

namespace ftb::io {

/// The 8-byte binary edge-list magic (PNG-style, 'E' for edge list; the
/// structure container uses '6' — see binary_io.hpp).
inline constexpr unsigned char kEdgeListMagic[8] = {0x89, 'F', 'T', 'B',
                                                    'E',  '\r', '\n', 0x1a};

/// True when `bytes` begins with the binary edge-list magic.
bool is_binary_edge_list_magic(std::string_view bytes);
/// Sniffs the first bytes of `path` (false also when unreadable/short).
bool is_binary_edge_list(const std::string& path);

/// Serializes `g` as a binary edge list. Deterministic: the same graph
/// always produces the same bytes (the Graph's edge array is already
/// canonical and sorted).
std::string write_binary_edge_list_bytes(const Graph& g);
void write_binary_edge_list(const Graph& g, std::ostream& os);
void save_binary_edge_list(const Graph& g, const std::string& path);

/// Parses a binary edge list from memory. Throws CheckError (with byte
/// offset + section context) on any malformation.
Graph read_binary_edge_list(std::span<const std::byte> bytes);
Graph load_binary_edge_list(const std::string& path);

/// Loads a graph from either format, auto-detected by magic: binary edge
/// lists via the streaming reader above, anything else via the text
/// reader. What ftbfs_cli's --graph-format=auto uses.
Graph load_edge_list_auto(const std::string& path);

}  // namespace ftb::io
