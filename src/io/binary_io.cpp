#include "src/io/binary_io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "src/core/validate.hpp"
#include "src/util/crc32c.hpp"
#include "src/util/fault_inject.hpp"

namespace ftb::io {

namespace {

constexpr std::uint32_t kV6Version = 6;
/// 0x01020304 serialized little-endian; a byte-swapped value on read means
/// the artifact was written by a big-endian producer.
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::uint64_t kHeaderBytes = 64;
constexpr std::uint64_t kDirEntryBytes = 40;
constexpr std::uint64_t kNameBytes = 16;
constexpr std::uint64_t kAlign = 64;
/// Same allocation ceiling as the v5 text reader: a length lie in a
/// corrupt directory can never size an allocation past this.
constexpr std::uint64_t kMaxSectionBytes = 1ULL << 30;

/// Canonical directory order. Entry i of the directory MUST be named
/// kSectionNames[i] — which also makes duplicates unrepresentable.
const char* const kSectionNames[4] = {"meta", "edges", "pair-tables",
                                      "site-dist"};

std::uint64_t align64(std::uint64_t x) {
  return (x + (kAlign - 1)) & ~(kAlign - 1);
}

std::uint32_t crc_of(std::span<const std::byte> bytes) {
  if (bytes.empty()) return crc32c(std::string_view{});
  return crc32c(std::string_view(reinterpret_cast<const char*>(bytes.data()),
                                 bytes.size()));
}

std::string crc_hex8(std::uint32_t v) {
  static const char* const kDigits = "0123456789abcdef";
  std::string s(8, '0');
  for (int i = 7; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kDigits[v & 0xFu];
    v >>= 4;
  }
  return s;
}

/// " (at byte N in section 'S')" — the same context every text-reader
/// CheckError carries (structure_io.cpp's LineReader::context()).
std::string context_at(std::int64_t off, std::string_view section) {
  std::ostringstream os;
  os << " (at byte " << off << " in section '" << section << "')";
  return os.str();
}

// ---------------------------------------------------------------------------
// Little-endian encode helpers (writer side).

void put_u8(std::string& s, std::uint8_t v) {
  s.push_back(static_cast<char>(v));
}

void put_u32(std::string& s, std::uint32_t v) {
  const char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                     static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  s.append(b, 4);
}

void put_u64(std::string& s, std::uint64_t v) {
  put_u32(s, static_cast<std::uint32_t>(v));
  put_u32(s, static_cast<std::uint32_t>(v >> 32));
}

void put_i32(std::string& s, std::int32_t v) {
  put_u32(s, static_cast<std::uint32_t>(v));
}

void put_i64(std::string& s, std::int64_t v) {
  put_u64(s, static_cast<std::uint64_t>(v));
}

// ---------------------------------------------------------------------------
// Bounded little-endian cursor (reader side). The binary twin of the text
// reader's LineReader: tracks the absolute byte offset of the most recently
// read field and the section being parsed, so every CheckError leaving the
// v6 reader is annotated with *where* the artifact is corrupt. All decoding
// goes byte-by-byte (no aliasing or alignment assumptions — fuzz feeds the
// parser arbitrary std::string buffers).

class Cursor {
 public:
  Cursor(std::span<const std::byte> bytes, std::int64_t base_offset,
         std::string section)
      : p_(reinterpret_cast<const unsigned char*>(bytes.data())),
        size_(bytes.size()),
        base_(base_offset),
        section_(std::move(section)) {}

  /// Fails (with truncation context) unless `nbytes` more payload bytes
  /// exist; records the field's start offset for context(). Also used as a
  /// pre-reservation guard: no untrusted count sizes an allocation before
  /// the bytes it claims to describe are known to be present.
  void need(std::uint64_t nbytes, const char* what) {
    mark_ = pos_;
    if (size_ - pos_ < nbytes) {
      std::ostringstream os;
      os << "section '" << section_ << "' truncated: need " << nbytes
         << " bytes for " << what << ", " << (size_ - pos_) << " left"
         << context();
      throw CheckError(os.str());
    }
  }

  std::span<const std::byte> raw(std::uint64_t nbytes, const char* what) {
    need(nbytes, what);
    const auto* at = reinterpret_cast<const std::byte*>(p_) + pos_;
    pos_ += nbytes;
    return {at, static_cast<std::size_t>(nbytes)};
  }

  std::uint8_t u8(const char* what) {
    need(1, what);
    return p_[pos_++];
  }

  std::uint32_t u32(const char* what) {
    need(4, what);
    const unsigned char* b = p_ + pos_;
    pos_ += 4;
    return static_cast<std::uint32_t>(b[0]) |
           (static_cast<std::uint32_t>(b[1]) << 8) |
           (static_cast<std::uint32_t>(b[2]) << 16) |
           (static_cast<std::uint32_t>(b[3]) << 24);
  }

  std::uint64_t u64(const char* what) {
    const std::uint64_t lo = u32(what);
    const std::uint64_t hi = u32(what);
    mark_ -= 4;  // context points at the field, not its high half
    return lo | (hi << 32);
  }

  std::int32_t i32(const char* what) {
    return static_cast<std::int32_t>(u32(what));
  }

  std::int64_t i64(const char* what) {
    return static_cast<std::int64_t>(u64(what));
  }

  bool done() const { return pos_ == size_; }
  void set_section(std::string s) { section_ = std::move(s); }

  std::string context() const {
    return context_at(base_ + static_cast<std::int64_t>(mark_), section_);
  }

 private:
  const unsigned char* p_;
  std::uint64_t size_;
  std::uint64_t pos_ = 0;
  std::uint64_t mark_ = 0;
  std::int64_t base_;
  std::string section_;
};

std::string annotated(const CheckError& e, const Cursor& rd) {
  std::string what = e.what();
  if (what.find("(at byte ") == std::string::npos) what += rd.context();
  return what;
}

/// Runs fn, annotating any context-free CheckError it throws with the
/// cursor's byte offset + section name (binary twin of structure_io.cpp's
/// with_context).
template <class Fn>
auto with_context(const Cursor& rd, Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const CheckError& e) {
    throw CheckError(annotated(e, rd));
  }
}

void note_drop(LoadReport* report, const std::string& why) {
  if (report == nullptr) return;
  report->complete = false;
  report->dropped.push_back(why);
}

/// Position of edge e in the (ascending) structure edge list — the index
/// space the pair-table pools are serialized in (same convention as the
/// text formats).
std::int64_t edge_index_in(const std::vector<EdgeId>& edges, EdgeId e) {
  const auto it = std::lower_bound(edges.begin(), edges.end(), e);
  FTB_CHECK_MSG(it != edges.end() && *it == e,
                "pair-table edge " << e << " is not a structure edge");
  return it - edges.begin();
}

// ---------------------------------------------------------------------------
// Container validation: header + directory + canonical layout + checksums.

struct SectionView {
  bool present = false;
  bool dropped = false;  // integrity failure tolerated away
  V6Section dir;
  std::span<const std::byte> payload;
};

struct Container {
  SectionView slot[4];  // canonical order: meta, edges, pair-tables, site-dist
  std::vector<V6Section> directory;
};

/// Validates the v6 container shape over `bytes` and returns the section
/// views. `tol == nullptr` is the strict audit (MappedArtifact::map, fsck);
/// otherwise pair-tables / site-dist integrity failures may be tolerated
/// into drops per the options, exactly like the v5 framed reader.
Container parse_container(std::span<const std::byte> bytes,
                          const ReadOptions* tol, LoadReport* report) {
  Container c;
  Cursor rd(bytes, 0, "header");
  return with_context(rd, [&] {
    const std::uint64_t actual = bytes.size();
    const auto magic = rd.raw(8, "the v6 magic");
    FTB_CHECK_MSG(std::memcmp(magic.data(), kV6Magic, 8) == 0,
                  "bad v6 magic");
    const std::uint32_t version = rd.u32("the version field");
    FTB_CHECK_MSG(version == kV6Version,
                  "unsupported structure version " << version);
    const std::uint32_t endian = rd.u32("the endian tag");
    if (endian != kEndianTag) {
      FTB_CHECK_MSG(endian != 0x04030201u,
                    "byte-swapped endian tag: artifact written by a "
                    "big-endian producer, this reader is little-endian only");
      FTB_CHECK_MSG(false, "bad endian tag " << endian);
    }
    const std::uint32_t count = rd.u32("the section count");
    FTB_CHECK_MSG(count >= 2 && count <= 4,
                  "section count " << count
                                   << " outside the canonical range 2..4");
    const std::uint32_t dir_crc = rd.u32("the directory checksum");
    const std::uint64_t declared = rd.u64("the file size field");
    const auto reserved = rd.raw(32, "the reserved header bytes");
    for (std::size_t i = 0; i < reserved.size(); ++i) {
      FTB_CHECK_MSG(reserved[i] == std::byte{0},
                    "nonzero reserved header byte at index " << i);
    }

    rd.set_section("directory");
    const std::uint64_t dir_end = kHeaderBytes + count * kDirEntryBytes;
    rd.need(count * kDirEntryBytes, "the section directory");
    {
      const std::uint32_t got =
          crc_of(bytes.subspan(kHeaderBytes, count * kDirEntryBytes));
      FTB_CHECK_MSG(got == dir_crc, "directory checksum mismatch: directory "
                                        << crc_hex8(got) << " != declared "
                                        << crc_hex8(dir_crc));
    }
    std::uint64_t expected_off = align64(dir_end);
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto name_raw = rd.raw(kNameBytes, "a section name");
      const char* nm = reinterpret_cast<const char*>(name_raw.data());
      const std::size_t nlen = ::strnlen(nm, kNameBytes);
      FTB_CHECK_MSG(nlen > 0 && nlen < kNameBytes,
                    "directory entry " << i << " has a malformed name");
      for (std::size_t j = nlen; j < kNameBytes; ++j) {
        FTB_CHECK_MSG(name_raw[j] == std::byte{0},
                      "directory entry " << i
                                         << " has nonzero name padding");
      }
      const std::string name(nm, nlen);
      FTB_CHECK_MSG(name == kSectionNames[i],
                    "directory entry " << i << " named '" << name
                                       << "', canonical order is meta, "
                                          "edges, pair-tables, site-dist");
      V6Section sec;
      sec.name = name;
      sec.offset = rd.u64("a section offset");
      sec.bytes = rd.u64("a section length");
      sec.crc32c = rd.u32("a section checksum");
      const std::uint32_t zero = rd.u32("a directory reserved field");
      FTB_CHECK_MSG(zero == 0, "section '" << name
                                           << "' has a nonzero reserved "
                                              "directory field");
      FTB_CHECK_MSG(sec.bytes <= kMaxSectionBytes,
                    "section '" << name << "' declares implausible length "
                                << sec.bytes);
      FTB_CHECK_MSG(sec.offset == expected_off,
                    "section '" << name << "' at offset " << sec.offset
                                << ", the canonical layout puts it at "
                                << expected_off);
      expected_off = align64(sec.offset + sec.bytes);
      c.slot[i].present = true;
      c.slot[i].dir = sec;
      c.directory.push_back(sec);
    }
    const std::uint64_t artifact_end =
        c.directory.back().offset + c.directory.back().bytes;
    FTB_CHECK_MSG(declared == artifact_end,
                  "header declares " << declared
                                     << " file bytes, the directory layout "
                                        "ends at "
                                     << artifact_end);
    if (actual > artifact_end) {
      throw CheckError("trailing data after the artifact: file has " +
                       std::to_string(actual) + " bytes, artifact ends at " +
                       std::to_string(artifact_end) +
                       context_at(static_cast<std::int64_t>(artifact_end),
                                  "trailer"));
    }

    // Truncation: the first section whose extent runs past the real end of
    // the file. Droppable trailing sections degrade (everything after a
    // truncated section is unreadable, mirroring the v5 lost-sync rule);
    // a truncated meta/edges section always throws.
    std::uint32_t first_truncated = count;
    for (std::uint32_t i = 0; i < count; ++i) {
      if (c.slot[i].dir.offset + c.slot[i].dir.bytes > actual) {
        first_truncated = i;
        break;
      }
    }
    if (first_truncated < count) {
      const V6Section& sec = c.slot[first_truncated].dir;
      const bool droppable =
          tol != nullptr &&
          ((first_truncated == 2 && tol->tolerate_pair_tables) ||
           (first_truncated == 3 && tol->tolerate_site_dist));
      const std::int64_t at = static_cast<std::int64_t>(
          std::min<std::uint64_t>(sec.offset, actual));
      if (!droppable) {
        throw CheckError("section '" + sec.name + "' truncated: declared " +
                         std::to_string(sec.bytes) +
                         " bytes, the file ends at byte " +
                         std::to_string(actual) + context_at(at, sec.name));
      }
      note_drop(report,
                sec.name + ": truncated section" + context_at(at, sec.name));
      for (std::uint32_t i = first_truncated; i < count; ++i) {
        c.slot[i].dropped = true;
      }
    }

    // Canonical padding (directory → first payload, and every alignment
    // gap) must be zero, so that every accepted byte is either meaningful
    // or pinned — an accepted artifact re-serializes byte-identically.
    std::uint64_t prev_end = dir_end;
    for (std::uint32_t i = 0; i < count && !c.slot[i].dropped; ++i) {
      for (std::uint64_t a = prev_end; a < c.slot[i].dir.offset; ++a) {
        FTB_CHECK_MSG(bytes[a] == std::byte{0},
                      "nonzero padding byte before section '"
                          << c.slot[i].dir.name << "'"
                          << context_at(static_cast<std::int64_t>(a),
                                        "padding"));
      }
      prev_end = c.slot[i].dir.offset + c.slot[i].dir.bytes;
    }

    // Checksum sweep. A mismatch in a droppable section degrades (the
    // framing is intact — lengths held — so later sections stay readable,
    // same as the v5 reader); meta/edges mismatches always throw.
    for (std::uint32_t i = 0; i < count; ++i) {
      SectionView& s = c.slot[i];
      if (s.dropped) continue;
      s.payload = bytes.subspan(s.dir.offset, s.dir.bytes);
      const std::uint32_t got = crc_of(s.payload);
      if (got == s.dir.crc32c) continue;
      const bool droppable = tol != nullptr &&
                             ((i == 2 && tol->tolerate_pair_tables) ||
                              (i == 3 && tol->tolerate_site_dist));
      const std::string where =
          context_at(static_cast<std::int64_t>(s.dir.offset), s.dir.name);
      if (!droppable) {
        throw CheckError("section '" + s.dir.name +
                         "' checksum mismatch: payload " + crc_hex8(got) +
                         " != declared " + crc_hex8(s.dir.crc32c) + where);
      }
      s.dropped = true;
      note_drop(report, s.dir.name + ": checksum mismatch" + where);
    }
    return c;
  });
}

// ---------------------------------------------------------------------------
// Section decoders. Same grammar as the text sections, as fixed-width
// little-endian arrays; all counts bounds-checked against the graph before
// they size an allocation or a loop, canonical (sorted / deduplicated)
// order enforced so accepted artifacts re-serialize byte-identically.

struct MetaSection {
  FaultClass fault_class = FaultClass::kEdge;
  std::vector<Vertex> sources;
};

MetaSection decode_meta(const Graph& g, const SectionView& s) {
  Cursor rd(s.payload, static_cast<std::int64_t>(s.dir.offset), "meta");
  return with_context(rd, [&] {
    MetaSection out;
    const std::uint32_t fc = rd.u32("the fault-class tag");
    FTB_CHECK_MSG(fc <= 3, "bad fault-class tag " << fc);
    out.fault_class = static_cast<FaultClass>(fc);
    const std::uint32_t k = rd.u32("the source count");
    FTB_CHECK_MSG(k >= 1, "artifact carries no sources");
    FTB_CHECK_MSG(k <= static_cast<std::uint32_t>(g.num_vertices()),
                  "sources count " << k << " exceeds n="
                                   << g.num_vertices());
    const std::uint64_t n = rd.u64("the vertex count");
    FTB_CHECK_MSG(n == static_cast<std::uint64_t>(g.num_vertices()),
                  "structure built for n=" << n << ", graph has "
                                           << g.num_vertices());
    const std::uint64_t m = rd.u64("the graph edge count");
    FTB_CHECK_MSG(m == static_cast<std::uint64_t>(g.num_edges()),
                  "structure built for a graph with m=" << m
                                                        << ", graph has "
                                                        << g.num_edges());
    fault::maybe_fail_alloc();
    out.sources.reserve(k);
    for (std::uint32_t i = 0; i < k; ++i) {
      out.sources.push_back(rd.i32("a source vertex"));
    }
    detail::check_sources(g, out.sources);
    FTB_CHECK_MSG(rd.done(), "trailing data in section");
    return out;
  });
}

struct EdgeSection {
  Vertex source = 0;
  std::vector<EdgeId> edges, reinforced, tree_edges;
};

EdgeSection decode_edges(const Graph& g, const SectionView& s,
                         std::span<const Vertex> sources) {
  Cursor rd(s.payload, static_cast<std::int64_t>(s.dir.offset), "edges");
  return with_context(rd, [&] {
    const long long n = g.num_vertices();
    const std::uint64_t he = rd.u64("the structure edge count");
    // Untrusted count: H's edges are a subset of G's, so any larger claim
    // is a length lie — reject before it sizes the read loop.
    FTB_CHECK_MSG(he <= static_cast<std::uint64_t>(g.num_edges()),
                  "edge count " << he << " exceeds the graph's "
                                << g.num_edges() << " edges");
    const std::int32_t source = rd.i32("the anchor source");
    FTB_CHECK_MSG(source >= 0 && source < n, "bad anchor source " << source);
    const std::uint32_t zero = rd.u32("the edges reserved field");
    FTB_CHECK_MSG(zero == 0, "nonzero reserved field in the edge section");
    FTB_CHECK_MSG(sources.front() == source,
                  "meta sources disagree with the edge section's anchor "
                  "source");
    rd.need(he * 9, "the edge and flag arrays");
    EdgeSection out;
    out.source = source;
    fault::maybe_fail_alloc();
    out.edges.reserve(static_cast<std::size_t>(he));
    EdgeId prev = kInvalidEdge;
    for (std::uint64_t i = 0; i < he; ++i) {
      const std::int32_t u = rd.i32("a structure edge endpoint");
      const std::int32_t v = rd.i32("a structure edge endpoint");
      FTB_CHECK_MSG(u >= 0 && u < n && v >= 0 && v < n,
                    "bad structure edge (" << u << "," << v << ")");
      const EdgeId e = g.find_edge(u, v);
      FTB_CHECK_MSG(e != kInvalidEdge,
                    "structure edge (" << u << "," << v
                                       << ") missing from the graph");
      // Strictly ascending EdgeId order is the canonical form (it is also
      // the pair-table pools' index space) — and rules out duplicates.
      FTB_CHECK_MSG(e > prev,
                    "structure edge (" << u << "," << v
                                       << ") out of canonical ascending "
                                          "order");
      prev = e;
      out.edges.push_back(e);
    }
    for (std::uint64_t i = 0; i < he; ++i) {
      const std::uint8_t flags = rd.u8("a structure edge flag");
      FTB_CHECK_MSG(flags <= 3, "bad structure edge flags "
                                    << static_cast<int>(flags));
      if (flags & 1) out.reinforced.push_back(out.edges[i]);
      if (flags & 2) out.tree_edges.push_back(out.edges[i]);
    }
    FTB_CHECK_MSG(rd.done(), "trailing data in section");
    return out;
  });
}

std::vector<DualSiteTable> decode_pair_tables(
    const Graph& g, Cursor& rd, const std::vector<Vertex>& sources,
    const std::vector<EdgeId>& edges) {
  const long long n = g.num_vertices();
  const long long mh = static_cast<long long>(edges.size());
  const std::uint64_t num_tables = rd.u64("the pair-table count");
  FTB_CHECK_MSG(num_tables == 0 || num_tables == sources.size(),
                "pair-tables count " << num_tables << " does not match "
                                     << sources.size() << " sources");
  std::vector<DualSiteTable> tables;
  for (std::uint64_t ti = 0; ti < num_tables; ++ti) {
    const std::int32_t src = rd.i32("a pair-table source");
    FTB_CHECK_MSG(src == sources[static_cast<std::size_t>(ti)],
                  "expected tables for source "
                      << sources[static_cast<std::size_t>(ti)] << ", got "
                      << src);
    const std::uint32_t zero = rd.u32("a pair-table reserved field");
    FTB_CHECK_MSG(zero == 0, "nonzero reserved field in a pair table");
    const std::uint64_t num_sites = rd.u64("a site count");
    // Untrusted count: each first-failure site is a distinct structure
    // edge or vertex, so mh + n bounds any honest table.
    FTB_CHECK_MSG(num_sites <= static_cast<std::uint64_t>(mh + n),
                  "site count " << num_sites << " exceeds the " << mh + n
                                << " possible first-failure sites");
    rd.need(num_sites * 12 + (num_sites + 1) * 8,
            "the site and offset arrays");
    DualSiteTable table;
    fault::maybe_fail_alloc();
    table.sites.reserve(static_cast<std::size_t>(num_sites));
    for (std::uint64_t i = 0; i < num_sites; ++i) {
      const std::int32_t kind = rd.i32("a site kind");
      const std::int32_t a = rd.i32("a site id");
      const std::int32_t b = rd.i32("a site id");
      DualSite f;
      if (kind == 0) {
        FTB_CHECK_MSG(a >= 0 && a < n && b >= 0 && b < n,
                      "bad site edge (" << a << "," << b << ")");
        f.kind = FaultClass::kEdge;
        f.id = g.find_edge(a, b);
        FTB_CHECK_MSG(f.id != kInvalidEdge,
                      "site edge (" << a << "," << b
                                    << ") missing from the graph");
      } else {
        FTB_CHECK_MSG(kind == 1, "bad site kind " << kind);
        FTB_CHECK_MSG(a >= 0 && a < n && b == -1,
                      "bad vertex site (" << a << "," << b << ")");
        f.kind = FaultClass::kVertex;
        f.id = a;
      }
      table.sites.push_back(f);
    }
    table.offsets.reserve(static_cast<std::size_t>(num_sites) + 1);
    std::int64_t prev_off = 0;
    for (std::uint64_t i = 0; i <= num_sites; ++i) {
      const std::int64_t off = rd.i64("a site offset");
      FTB_CHECK_MSG(i > 0 ? off >= prev_off : off == 0,
                    "pair-table offsets not nondecreasing from zero");
      FTB_CHECK_MSG(off - prev_off <= mh,
                    "site subset size " << off - prev_off
                                        << " exceeds the structure's " << mh
                                        << " edges");
      table.offsets.push_back(off);
      prev_off = off;
    }
    const std::uint64_t pool_size = rd.u64("the edge pool size");
    FTB_CHECK_MSG(pool_size == static_cast<std::uint64_t>(prev_off),
                  "edge pool size " << pool_size
                                    << " disagrees with the offsets table");
    // Re-apply the section length ceiling before the multiply below: the
    // offsets table could legally sum far past any plausible payload.
    FTB_CHECK_MSG(pool_size <= kMaxSectionBytes,
                  "edge pool declares implausible length " << pool_size);
    rd.need(pool_size * 4, "the edge pool");
    fault::maybe_fail_alloc();
    table.edge_pool.reserve(static_cast<std::size_t>(pool_size));
    for (std::uint64_t i = 0; i < num_sites; ++i) {
      std::int32_t prev_idx = -1;
      for (std::int64_t p = table.offsets[static_cast<std::size_t>(i)];
           p < table.offsets[static_cast<std::size_t>(i) + 1]; ++p) {
        const std::int32_t idx = rd.i32("a pair-table edge index");
        FTB_CHECK_MSG(idx >= 0 && idx < mh,
                      "pair-table edge index " << idx << " out of range");
        // Canonical: each site's pool ascends (ascending indices into an
        // ascending edge section, so the in-memory subsets come out
        // sorted, the invariant DualSiteTable::subset_contains needs).
        FTB_CHECK_MSG(idx > prev_idx,
                      "pair-table edge pool out of canonical ascending "
                      "order");
        prev_idx = idx;
        table.edge_pool.push_back(edges[static_cast<std::size_t>(idx)]);
      }
    }
    tables.push_back(std::move(table));
  }
  return tables;
}

std::vector<DualSiteDistTable> decode_site_dist(
    const Graph& g, Cursor& rd, const std::vector<Vertex>& sources,
    const std::vector<DualSiteTable>& tables) {
  const long long n = g.num_vertices();
  const std::uint64_t num_tables = rd.u64("the site-dist table count");
  FTB_CHECK_MSG(num_tables == sources.size(),
                "site-dist count " << num_tables << " does not match "
                                   << sources.size() << " sources");
  std::vector<DualSiteDistTable> out;
  out.reserve(static_cast<std::size_t>(num_tables));
  for (std::uint64_t ti = 0; ti < num_tables; ++ti) {
    const std::int32_t src = rd.i32("a site-dist source");
    FTB_CHECK_MSG(src == sources[static_cast<std::size_t>(ti)],
                  "expected site-dist for source "
                      << sources[static_cast<std::size_t>(ti)] << ", got "
                      << src);
    const std::uint32_t zero = rd.u32("a site-dist reserved field");
    FTB_CHECK_MSG(zero == 0, "nonzero reserved field in a site-dist table");
    // The slot layout is defined by the pair tables' site order, so the
    // site count must agree exactly with the sibling section.
    const std::uint64_t num_sites = rd.u64("a site-dist site count");
    FTB_CHECK_MSG(
        num_sites == tables[static_cast<std::size_t>(ti)].num_sites(),
        "site-dist site count "
            << num_sites << " disagrees with the pair table's "
            << tables[static_cast<std::size_t>(ti)].num_sites());
    rd.need((num_sites + 1) * 8, "the site offset array");
    DualSiteDistTable t;
    fault::maybe_fail_alloc();
    t.site_offsets.reserve(static_cast<std::size_t>(num_sites) + 1);
    std::int64_t prev = 0;
    for (std::uint64_t i = 0; i <= num_sites; ++i) {
      const std::int64_t off = rd.i64("a site-dist site offset");
      if (i == 0) {
        FTB_CHECK_MSG(off == 0, "site-dist site offsets must start at 0");
      } else {
        // Untrusted count: a site's subtree holds at least its top and at
        // most every vertex.
        FTB_CHECK_MSG(off - prev >= 1 && off - prev <= n,
                      "bad site-dist slot count " << off - prev);
      }
      t.site_offsets.push_back(off);
      prev = off;
    }
    const std::uint64_t num_slots = rd.u64("the site-dist slot count");
    FTB_CHECK_MSG(num_slots == static_cast<std::uint64_t>(prev),
                  "slot count " << num_slots
                                << " disagrees with the site offsets");
    // Ceiling before the multiplies below (the site offsets could legally
    // sum far past any plausible payload).
    FTB_CHECK_MSG(num_slots <= kMaxSectionBytes,
                  "slot table declares implausible length " << num_slots);
    rd.need(num_slots * 12 + (num_slots + 1) * 8, "the slot arrays");
    fault::maybe_fail_alloc();
    t.parent_edge.reserve(static_cast<std::size_t>(num_slots));
    t.tf_depth.reserve(static_cast<std::size_t>(num_slots));
    std::vector<std::int32_t> pe_u(static_cast<std::size_t>(num_slots));
    std::vector<std::int32_t> pe_v(static_cast<std::size_t>(num_slots));
    for (std::uint64_t s = 0; s < num_slots; ++s) {
      pe_u[static_cast<std::size_t>(s)] = rd.i32("a dterm parent endpoint");
      pe_v[static_cast<std::size_t>(s)] = rd.i32("a dterm parent endpoint");
    }
    for (std::uint64_t s = 0; s < num_slots; ++s) {
      const std::int32_t d = rd.i32("a dterm depth");
      const std::int32_t pu = pe_u[static_cast<std::size_t>(s)];
      const std::int32_t pv = pe_v[static_cast<std::size_t>(s)];
      if (d == -1) {  // unreachable under the first failure alone
        FTB_CHECK_MSG(pu == -1 && pv == -1,
                      "unreachable dterm slot with a parent edge ("
                          << pu << "," << pv << ")");
        t.parent_edge.push_back(kInvalidEdge);
        t.tf_depth.push_back(kInfHops);
        continue;
      }
      FTB_CHECK_MSG(d >= 1 && d < n, "bad dterm depth " << d);
      FTB_CHECK_MSG(pu >= 0 && pu < n && pv >= 0 && pv < n,
                    "bad dterm parent edge (" << pu << "," << pv << ")");
      const EdgeId pe = g.find_edge(pu, pv);
      FTB_CHECK_MSG(pe != kInvalidEdge,
                    "dterm parent edge (" << pu << "," << pv
                                          << ") missing from the graph");
      t.parent_edge.push_back(pe);
      t.tf_depth.push_back(d);
    }
    t.row_offsets.reserve(static_cast<std::size_t>(num_slots) + 1);
    std::int64_t prev_row = 0;
    for (std::uint64_t s = 0; s <= num_slots; ++s) {
      const std::int64_t off = rd.i64("a dterm row offset");
      if (s == 0) {
        FTB_CHECK_MSG(off == 0, "dterm row offsets must start at 0");
      } else {
        const std::int32_t d = t.tf_depth[static_cast<std::size_t>(s - 1)];
        const std::int64_t want = d >= kInfHops ? 0 : 2 * d - 1;
        FTB_CHECK_MSG(off - prev_row == want,
                      "dterm row count " << off - prev_row
                                         << " disagrees with depth (want "
                                         << want << ")");
      }
      t.row_offsets.push_back(off);
      prev_row = off;
    }
    const std::uint64_t num_rows = rd.u64("the dterm row count");
    FTB_CHECK_MSG(num_rows == static_cast<std::uint64_t>(prev_row),
                  "row count " << num_rows
                               << " disagrees with the row offsets");
    FTB_CHECK_MSG(num_rows <= kMaxSectionBytes,
                  "row table declares implausible length " << num_rows);
    rd.need(num_rows * 4, "the dterm rows");
    fault::maybe_fail_alloc();
    t.rows.reserve(static_cast<std::size_t>(num_rows));
    for (std::uint64_t r = 0; r < num_rows; ++r) {
      const std::int32_t v = rd.i32("a dterm row");
      // Row values are two-failure distances: < n hops, or -1 for
      // "disconnected under that second failure".
      FTB_CHECK_MSG(v >= -1 && v < n, "bad dterm row " << v);
      t.rows.push_back(v < 0 ? kInfHops : v);
    }
    out.push_back(std::move(t));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Payload encoders (writer side).

std::string encode_meta(const Graph& g, const FtBfsStructure& h,
                        std::span<const Vertex> sources) {
  std::string p;
  put_u32(p, static_cast<std::uint32_t>(h.fault_class()));
  put_u32(p, static_cast<std::uint32_t>(sources.size()));
  put_u64(p, static_cast<std::uint64_t>(g.num_vertices()));
  put_u64(p, static_cast<std::uint64_t>(g.num_edges()));
  for (const Vertex s : sources) put_i32(p, s);
  return p;
}

std::string encode_edges(const Graph& g, const FtBfsStructure& h) {
  std::string p;
  put_u64(p, static_cast<std::uint64_t>(h.num_edges()));
  put_i32(p, h.source());
  put_u32(p, 0);
  std::vector<std::uint8_t> is_tree(static_cast<std::size_t>(g.num_edges()),
                                    0);
  for (const EdgeId e : h.tree_edges()) {
    is_tree[static_cast<std::size_t>(e)] = 1;
  }
  for (const EdgeId e : h.edges()) {
    const auto [u, v] = g.edge(e);
    put_i32(p, u);
    put_i32(p, v);
  }
  for (const EdgeId e : h.edges()) {
    std::uint8_t flags = 0;
    if (h.is_reinforced(e)) flags |= 1;
    if (is_tree[static_cast<std::size_t>(e)]) flags |= 2;
    put_u8(p, flags);
  }
  return p;
}

std::string encode_pair_tables(const Graph& g, const FtBfsStructure& h,
                               std::span<const Vertex> sources,
                               std::span<const DualSiteTable> pair_tables) {
  std::string p;
  put_u64(p, static_cast<std::uint64_t>(pair_tables.size()));
  for (std::size_t si = 0; si < pair_tables.size(); ++si) {
    const DualSiteTable& t = pair_tables[si];
    put_i32(p, sources[si]);
    put_u32(p, 0);
    put_u64(p, static_cast<std::uint64_t>(t.num_sites()));
    for (const DualSite f : t.sites) {
      if (f.kind == FaultClass::kEdge) {
        const auto [u, v] = g.edge(f.id);
        put_i32(p, 0);
        put_i32(p, u);
        put_i32(p, v);
      } else {
        put_i32(p, 1);
        put_i32(p, f.id);
        put_i32(p, -1);
      }
    }
    for (const std::int64_t off : t.offsets) put_i64(p, off);
    put_u64(p, static_cast<std::uint64_t>(t.edge_pool.size()));
    for (const EdgeId e : t.edge_pool) {
      put_i32(p, static_cast<std::int32_t>(edge_index_in(h.edges(), e)));
    }
  }
  return p;
}

std::string encode_site_dist(const Graph& g,
                             std::span<const Vertex> sources,
                             std::span<const DualSiteDistTable> site_dist) {
  std::string p;
  put_u64(p, static_cast<std::uint64_t>(site_dist.size()));
  for (std::size_t si = 0; si < site_dist.size(); ++si) {
    const DualSiteDistTable& t = site_dist[si];
    const std::size_t num_slots = t.parent_edge.size();
    put_i32(p, sources[si]);
    put_u32(p, 0);
    put_u64(p, static_cast<std::uint64_t>(
                   t.site_offsets.empty() ? 0 : t.site_offsets.size() - 1));
    for (const std::int64_t off : t.site_offsets) put_i64(p, off);
    put_u64(p, static_cast<std::uint64_t>(num_slots));
    for (std::size_t s = 0; s < num_slots; ++s) {
      if (t.tf_depth[s] >= kInfHops) {
        put_i32(p, -1);
        put_i32(p, -1);
      } else {
        const auto [pu, pv] = g.edge(t.parent_edge[s]);
        put_i32(p, pu);
        put_i32(p, pv);
      }
    }
    for (std::size_t s = 0; s < num_slots; ++s) {
      put_i32(p, t.tf_depth[s] >= kInfHops ? -1 : t.tf_depth[s]);
    }
    for (const std::int64_t off : t.row_offsets) put_i64(p, off);
    put_u64(p, static_cast<std::uint64_t>(t.rows.size()));
    for (const std::int32_t r : t.rows) {
      put_i32(p, r >= kInfHops ? -1 : r);
    }
  }
  return p;
}

// ---------------------------------------------------------------------------
// Read-only file mapping (RAII). MappedArtifact::map releases it into the
// long-lived object; load_structure_v6 keeps it scoped to the parse.

class FileMapping {
 public:
  explicit FileMapping(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    FTB_CHECK_MSG(fd >= 0, "cannot open " << path);
    struct ::stat st {};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
      ::close(fd);
      FTB_CHECK_MSG(false, "cannot stat " << path
                                          << " (not a regular file?)");
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ > 0) {
      void* p = ::mmap(nullptr, size_, PROT_READ, MAP_SHARED, fd, 0);
      if (p == MAP_FAILED) {
        ::close(fd);
        FTB_CHECK_MSG(false, "cannot mmap " << path);
      }
      data_ = static_cast<const std::byte*>(p);
    }
    ::close(fd);  // the mapping outlives the descriptor
  }

  FileMapping(const FileMapping&) = delete;
  FileMapping& operator=(const FileMapping&) = delete;

  ~FileMapping() {
    if (data_ != nullptr) {
      ::munmap(const_cast<std::byte*>(data_), size_);
    }
  }

  std::span<const std::byte> bytes() const { return {data_, size_}; }

  /// Disowns the mapping (the caller now owns the munmap).
  std::pair<const std::byte*, std::size_t> release() {
    return {std::exchange(data_, nullptr), std::exchange(size_, 0)};
  }

 private:
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Magic sniffing.

bool is_v6_magic(std::string_view bytes) {
  return bytes.size() >= sizeof(kV6Magic) &&
         std::memcmp(bytes.data(), kV6Magic, sizeof(kV6Magic)) == 0;
}

bool is_v6_artifact(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) return false;
  char head[sizeof(kV6Magic)] = {};
  f.read(head, sizeof(head));
  if (f.gcount() != static_cast<std::streamsize>(sizeof(head))) return false;
  return is_v6_magic(std::string_view(head, sizeof(head)));
}

// ---------------------------------------------------------------------------
// MappedArtifact.

MappedArtifact MappedArtifact::map(const std::string& path) {
  // Bounded pre-read: reject non-v6 files on their first 8 bytes before
  // mapping anything.
  {
    std::ifstream f(path, std::ios::binary);
    FTB_CHECK_MSG(f.good(), "cannot open " << path);
    char head[sizeof(kV6Magic)] = {};
    f.read(head, sizeof(head));
    const auto got = static_cast<std::size_t>(f.gcount());
    if (got < sizeof(head) ||
        !is_v6_magic(std::string_view(head, sizeof(head)))) {
      throw CheckError("bad v6 magic" + context_at(0, "header"));
    }
  }
  FileMapping mapping(path);
  // Strict audit: directory shape, canonical layout, every section CRC.
  Container c = parse_container(mapping.bytes(), nullptr, nullptr);
  const auto [data, size] = mapping.release();
  return MappedArtifact(data, size, std::move(c.directory));
}

MappedArtifact::MappedArtifact(MappedArtifact&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      directory_(std::move(other.directory_)) {}

MappedArtifact& MappedArtifact::operator=(MappedArtifact&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(const_cast<std::byte*>(data_), size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    directory_ = std::move(other.directory_);
  }
  return *this;
}

MappedArtifact::~MappedArtifact() {
  if (data_ != nullptr) ::munmap(const_cast<std::byte*>(data_), size_);
}

bool MappedArtifact::has_section(std::string_view name) const {
  for (const V6Section& s : directory_) {
    if (s.name == name) return true;
  }
  return false;
}

std::span<const std::byte> MappedArtifact::section(
    std::string_view name) const {
  for (const V6Section& s : directory_) {
    if (s.name == name) {
      return bytes().subspan(s.offset, s.bytes);
    }
  }
  throw CheckError("artifact has no section '" + std::string(name) + "'");
}

// ---------------------------------------------------------------------------
// Writer.

std::string write_structure_v6_bytes(
    const FtBfsStructure& h, std::span<const Vertex> sources,
    std::span<const DualSiteTable> pair_tables,
    std::span<const DualSiteDistTable> site_dist) {
  const Graph& g = h.graph();
  const bool dual = h.fault_class() == FaultClass::kDual;
  FTB_CHECK_MSG(!sources.empty(), "v6 artifacts always carry a source set");
  FTB_CHECK_MSG(sources.front() == h.source(),
                "sources.front() must be the structure's anchor source");
  FTB_CHECK_MSG(pair_tables.empty() || dual,
                "pair tables belong to dual-failure artifacts only");
  FTB_CHECK_MSG(pair_tables.empty() || pair_tables.size() == sources.size(),
                "need one pair table per source (got "
                    << pair_tables.size() << " tables for " << sources.size()
                    << " sources)");
  FTB_CHECK_MSG(site_dist.empty() || (!pair_tables.empty() &&
                                      site_dist.size() == sources.size()),
                "site-dist tables require pair tables and one table per "
                "source (got "
                    << site_dist.size() << " tables for " << sources.size()
                    << " sources)");

  struct Sec {
    const char* name;
    std::string payload;
  };
  std::vector<Sec> secs;
  secs.push_back({"meta", encode_meta(g, h, sources)});
  secs.push_back({"edges", encode_edges(g, h)});
  // A dual artifact always carries its pair-tables section (count 0 when
  // the tables were not serialized), so the canonical shape is a function
  // of the fault class alone.
  if (dual) {
    secs.push_back({"pair-tables",
                    encode_pair_tables(g, h, sources, pair_tables)});
  }
  if (!site_dist.empty()) {
    secs.push_back({"site-dist", encode_site_dist(g, sources, site_dist)});
  }

  const std::uint64_t count = secs.size();
  const std::uint64_t dir_end = kHeaderBytes + count * kDirEntryBytes;
  std::string directory;
  std::uint64_t off = align64(dir_end);
  std::uint64_t artifact_end = dir_end;
  for (const Sec& s : secs) {
    std::string name(kNameBytes, '\0');
    name.replace(0, std::strlen(s.name), s.name);
    directory += name;
    put_u64(directory, off);
    put_u64(directory, s.payload.size());
    put_u32(directory, crc32c(s.payload));
    put_u32(directory, 0);
    artifact_end = off + s.payload.size();
    off = align64(artifact_end);
  }

  std::string out;
  out.reserve(artifact_end);
  out.append(reinterpret_cast<const char*>(kV6Magic), sizeof(kV6Magic));
  put_u32(out, kV6Version);
  put_u32(out, kEndianTag);
  put_u32(out, static_cast<std::uint32_t>(count));
  put_u32(out, crc32c(directory));
  put_u64(out, artifact_end);
  out.append(32, '\0');
  out += directory;
  for (const Sec& s : secs) {
    out.append(align64(out.size()) - out.size(), '\0');
    out += s.payload;
  }
  return out;
}

void write_structure_v6(const FtBfsStructure& h,
                        std::span<const Vertex> sources,
                        std::span<const DualSiteTable> pair_tables,
                        std::span<const DualSiteDistTable> site_dist,
                        std::ostream& os) {
  const std::string bytes =
      write_structure_v6_bytes(h, sources, pair_tables, site_dist);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void save_structure_v6(const FtBfsStructure& h,
                       std::span<const Vertex> sources,
                       std::span<const DualSiteTable> pair_tables,
                       std::span<const DualSiteDistTable> site_dist,
                       const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  FTB_CHECK_MSG(f.good(), "cannot open " << path << " for writing");
  write_structure_v6(h, sources, pair_tables, site_dist, f);
  f.flush();
  FTB_CHECK_MSG(f.good(), "short write to " << path);
}

// ---------------------------------------------------------------------------
// Readers.

FtBfsStructure read_structure_v6(const Graph& g,
                                 std::span<const std::byte> bytes,
                                 std::vector<Vertex>* sources_out,
                                 std::vector<DualSiteTable>* tables_out,
                                 const ReadOptions& opts, LoadReport* report,
                                 std::vector<DualSiteDistTable>*
                                     site_dist_out) {
  if (report != nullptr) *report = LoadReport{};
  if (site_dist_out != nullptr) site_dist_out->clear();
  Container c = parse_container(bytes, &opts, report);

  MetaSection meta = decode_meta(g, c.slot[0]);
  EdgeSection es = decode_edges(g, c.slot[1], meta.sources);
  const bool dual = meta.fault_class == FaultClass::kDual;
  if (dual && !c.slot[2].present) {
    throw CheckError(
        "dual artifact missing its pair-tables section" +
        context_at(static_cast<std::int64_t>(kHeaderBytes), "directory"));
  }

  std::vector<DualSiteTable> tables;
  if (c.slot[2].present && !c.slot[2].dropped) {
    Cursor rd(c.slot[2].payload,
              static_cast<std::int64_t>(c.slot[2].dir.offset),
              "pair-tables");
    auto parse_pt = [&] {
      FTB_CHECK_MSG(dual, "pair-tables section on a non-dual artifact");
      std::vector<DualSiteTable> t =
          decode_pair_tables(g, rd, meta.sources, es.edges);
      FTB_CHECK_MSG(rd.done(), "trailing data in section");
      return t;
    };
    if (opts.tolerate_pair_tables) {
      try {
        tables = with_context(rd, parse_pt);
      } catch (const CheckError& e) {
        tables.clear();
        note_drop(report, std::string("pair-tables: ") + e.what());
      }
    } else {
      tables = with_context(rd, parse_pt);
    }
  }

  std::vector<DualSiteDistTable> sdist;
  if (c.slot[3].present && !c.slot[3].dropped) {
    Cursor rd(c.slot[3].payload,
              static_cast<std::int64_t>(c.slot[3].dir.offset), "site-dist");
    auto parse_sd = [&] {
      FTB_CHECK_MSG(dual, "site-dist section on a non-dual artifact");
      // The slot layout indexes the pair tables' site order, so the
      // section is unusable without them (missing or dropped alike).
      FTB_CHECK_MSG(!tables.empty(),
                    "site-dist section without usable pair tables");
      std::vector<DualSiteDistTable> t =
          decode_site_dist(g, rd, meta.sources, tables);
      FTB_CHECK_MSG(rd.done(), "trailing data in section");
      return t;
    };
    if (opts.tolerate_site_dist) {
      try {
        sdist = with_context(rd, parse_sd);
      } catch (const CheckError& e) {
        sdist.clear();
        note_drop(report, std::string("site-dist: ") + e.what());
      }
    } else {
      sdist = with_context(rd, parse_sd);
    }
  }

  if (sources_out != nullptr) *sources_out = std::move(meta.sources);
  if (tables_out != nullptr) *tables_out = std::move(tables);
  if (site_dist_out != nullptr) *site_dist_out = std::move(sdist);
  return FtBfsStructure(g, es.source, std::move(es.edges),
                        std::move(es.reinforced), std::move(es.tree_edges),
                        meta.fault_class);
}

FtBfsStructure load_structure_v6(const Graph& g, const std::string& path,
                                 std::vector<Vertex>* sources_out,
                                 std::vector<DualSiteTable>* tables_out,
                                 const ReadOptions& opts, LoadReport* report,
                                 std::vector<DualSiteDistTable>*
                                     site_dist_out) {
  FileMapping mapping(path);
  return read_structure_v6(g, mapping.bytes(), sources_out, tables_out,
                           opts, report, site_dist_out);
}

}  // namespace ftb::io
