// edge_list.hpp — plain-text graph serialization.
//
// Format (whitespace-separated, '#' comments):
//   # optional comments
//   n m
//   u v        (one line per edge, 0-based vertex ids)
//
// This is the interchange format used by the examples, and it round-trips
// losslessly (edge ids are reassigned canonically on load).
#pragma once

#include <iosfwd>
#include <string>

#include "src/graph/graph.hpp"

namespace ftb::io {

/// Writes `g` in edge-list format.
void write_edge_list(const Graph& g, std::ostream& os);
void save_edge_list(const Graph& g, const std::string& path);

/// Parses an edge-list stream. Throws CheckError — with the byte offset
/// and section of the offending input, like the structure_io readers — on
/// malformed input: a bad header, a bad/out-of-range edge line, a self
/// loop, missing edges, or trailing data after the declared edge count.
/// Duplicate edges dedup canonically, so a text load and a binary load of
/// the same graph produce bit-identical Graph objects
/// (binary_edge_list.hpp).
Graph read_edge_list(std::istream& is);
Graph load_edge_list(const std::string& path);

}  // namespace ftb::io
