// edge_list.hpp — plain-text graph serialization.
//
// Format (whitespace-separated, '#' comments):
//   # optional comments
//   n m
//   u v        (one line per edge, 0-based vertex ids)
//
// This is the interchange format used by the examples, and it round-trips
// losslessly (edge ids are reassigned canonically on load).
#pragma once

#include <iosfwd>
#include <string>

#include "src/graph/graph.hpp"

namespace ftb::io {

/// Writes `g` in edge-list format.
void write_edge_list(const Graph& g, std::ostream& os);
void save_edge_list(const Graph& g, const std::string& path);

/// Parses an edge-list stream. Throws CheckError on malformed input.
Graph read_edge_list(std::istream& is);
Graph load_edge_list(const std::string& path);

}  // namespace ftb::io
