// dot.hpp — Graphviz export of graphs and FT-BFS structures.
//
// Intended for eyeballing small instances: tree edges solid, backup edges
// dashed, reinforced edges bold red. `dot -Tsvg out.dot > out.svg`.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/graph/graph.hpp"

namespace ftb {
class FtBfsStructure;  // fwd (core/structure.hpp)
}

namespace ftb::io {

/// Plain graph dump.
void write_dot(const Graph& g, std::ostream& os,
               const std::string& name = "G");

/// Structure-aware dump: edges of H drawn solid (backup) / bold red
/// (reinforced); edges of G missing from H drawn dotted gray.
void write_dot(const FtBfsStructure& h, std::ostream& os,
               const std::string& name = "H");

void save_dot(const Graph& g, const std::string& path);
void save_dot(const FtBfsStructure& h, const std::string& path);

}  // namespace ftb::io
