#include "src/io/edge_list.hpp"

#include <fstream>
#include <sstream>

namespace ftb::io {

void write_edge_list(const Graph& g, std::ostream& os) {
  os << "# ftbfs edge list\n";
  os << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    os << u << ' ' << v << '\n';
  }
}

void save_edge_list(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  FTB_CHECK_MSG(f.good(), "cannot open " << path << " for writing");
  write_edge_list(g, f);
}

Graph read_edge_list(std::istream& is) {
  std::string line;
  auto next_data_line = [&]() -> std::string {
    while (std::getline(is, line)) {
      const auto pos = line.find_first_not_of(" \t\r");
      if (pos == std::string::npos || line[pos] == '#') continue;
      return line;
    }
    return {};
  };

  const std::string header = next_data_line();
  FTB_CHECK_MSG(!header.empty(), "edge list: missing 'n m' header");
  std::istringstream hs(header);
  long long n = -1, m = -1;
  hs >> n >> m;
  FTB_CHECK_MSG(n >= 0 && m >= 0, "edge list: bad header '" << header << "'");

  GraphBuilder b(static_cast<Vertex>(n));
  for (long long i = 0; i < m; ++i) {
    const std::string el = next_data_line();
    FTB_CHECK_MSG(!el.empty(), "edge list: expected " << m << " edges, got " << i);
    std::istringstream es(el);
    long long u = -1, v = -1;
    es >> u >> v;
    FTB_CHECK_MSG(u >= 0 && v >= 0, "edge list: bad edge line '" << el << "'");
    b.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
  }
  return b.build();
}

Graph load_edge_list(const std::string& path) {
  std::ifstream f(path);
  FTB_CHECK_MSG(f.good(), "cannot open " << path);
  return read_edge_list(f);
}

}  // namespace ftb::io
