#include "src/io/edge_list.hpp"

#include <fstream>
#include <limits>
#include <sstream>

namespace ftb::io {

void write_edge_list(const Graph& g, std::ostream& os) {
  os << "# ftbfs edge list\n";
  os << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    os << u << ' ' << v << '\n';
  }
}

void save_edge_list(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  FTB_CHECK_MSG(f.good(), "cannot open " << path << " for writing");
  write_edge_list(g, f);
}

Graph read_edge_list(std::istream& is) {
  // Byte-offset tracking, same error-context contract as the structure_io
  // readers: every rejection says where the input is malformed. Semantics
  // match the binary ingestion path bit-for-bit — self loops are rejected,
  // duplicate edges dedup canonically (GraphBuilder coalesces at build(),
  // which is exactly the canonical order the binary writer emits).
  std::int64_t offset = 0, line_offset = 0;
  std::string section = "header";
  auto next_data_line = [&]() -> std::string {
    std::string line;
    while (std::getline(is, line)) {
      line_offset = offset;
      offset += static_cast<std::int64_t>(line.size());
      if (!is.eof()) ++offset;  // getline consumed the '\n'
      const auto pos = line.find_first_not_of(" \t\r");
      if (pos == std::string::npos || line[pos] == '#') continue;
      return line;
    }
    line_offset = offset;
    return {};
  };
  auto ctx = [&]() -> std::string {
    std::ostringstream os;
    os << " (at byte " << line_offset << " in section '" << section << "')";
    return os.str();
  };

  const std::string header = next_data_line();
  FTB_CHECK_MSG(!header.empty(), "edge list: missing 'n m' header" << ctx());
  std::istringstream hs(header);
  long long n = -1, m = -1;
  hs >> n >> m;
  FTB_CHECK_MSG(n >= 0 && m >= 0,
                "edge list: bad header '" << header << "'" << ctx());
  FTB_CHECK_MSG(n <= static_cast<long long>(
                         std::numeric_limits<Vertex>::max()),
                "edge list: vertex count " << n << " overflows" << ctx());

  GraphBuilder b(static_cast<Vertex>(n));
  section = "edges";
  for (long long i = 0; i < m; ++i) {
    const std::string el = next_data_line();
    FTB_CHECK_MSG(!el.empty(),
                  "edge list: expected " << m << " edges, got " << i << ctx());
    std::istringstream es(el);
    long long u = -1, v = -1;
    es >> u >> v;
    FTB_CHECK_MSG(es && u >= 0 && v >= 0,
                  "edge list: bad edge line '" << el << "'" << ctx());
    FTB_CHECK_MSG(u < n && v < n, "edge list: edge (" << u << "," << v
                                                      << ") out of range n="
                                                      << n << ctx());
    FTB_CHECK_MSG(u != v,
                  "edge list: self loop at vertex " << u << ctx());
    b.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
  }
  section = "trailer";
  const std::string extra = next_data_line();
  FTB_CHECK_MSG(extra.empty(), "edge list: trailing data after the " << m
                                   << " declared edges: '" << extra << "'"
                                   << ctx());
  return b.build();
}

Graph load_edge_list(const std::string& path) {
  std::ifstream f(path);
  FTB_CHECK_MSG(f.good(), "cannot open " << path);
  return read_edge_list(f);
}

}  // namespace ftb::io
