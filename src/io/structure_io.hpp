// structure_io.hpp — (de)serialization of FT-BFS structures.
//
// A deployment artifact: the operator builds H once, ships the purchase
// plan (which links to buy as backup, which to reinforce, and which
// failure model the plan insures against), and reloads it later against
// the same network. Format (text, '#' comments):
//
//   ftbfs-structure 3
//   fault-model <edge|vertex|dual>
//   sources <k> <s_0> ... <s_{k-1}>   # v3 only, multi-source artifacts
//   <n> <|E(H)|> <source>
//   <u> <v> <flags>        # one line per structure edge;
//                          # flags bit 0 = reinforced, bit 1 = tree edge
//
// Single-source artifacts are still written as version 2 (no sources
// line), so files produced before the ftb::api facade landed are byte-
// stable. Version 1 files (no fault-model line) load and default to the
// edge model. Loading validates against the given graph (endpoints must
// exist as edges) and reconstructs the exact edge partition + fault tag +
// source set.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "src/core/structure.hpp"

namespace ftb::io {

void write_structure(const FtBfsStructure& h, std::ostream& os);
void save_structure(const FtBfsStructure& h, const std::string& path);

/// Multi-source variant (what api::Session::save uses): `sources` is the
/// FT-MBFS source set, sources.front() == h.source(). A single-source set
/// writes the plain v2 artifact; several sources write v3 with a sources
/// line.
void write_structure(const FtBfsStructure& h, std::span<const Vertex> sources,
                     std::ostream& os);
void save_structure(const FtBfsStructure& h, std::span<const Vertex> sources,
                    const std::string& path);

/// Parses a structure against `g`. Throws CheckError on malformed input,
/// unknown edges, an unknown fault-model tag, or a vertex-count mismatch.
/// When `sources_out` is non-null it receives the artifact's source set
/// ({h.source()} for v1/v2 artifacts and single-source v3 ones).
FtBfsStructure read_structure(const Graph& g, std::istream& is,
                              std::vector<Vertex>* sources_out = nullptr);
FtBfsStructure load_structure(const Graph& g, const std::string& path,
                              std::vector<Vertex>* sources_out = nullptr);

}  // namespace ftb::io
