// structure_io.hpp — (de)serialization of FT-BFS structures.
//
// A deployment artifact: the operator builds H once, ships the purchase
// plan (which links to buy as backup, which to reinforce, and which
// failure model the plan insures against), and reloads it later against
// the same network. Format (text, '#' comments):
//
//   ftbfs-structure 2
//   fault-model <edge|vertex|dual>
//   <n> <|E(H)|> <source>
//   <u> <v> <flags>        # one line per structure edge;
//                          # flags bit 0 = reinforced, bit 1 = tree edge
//
// Version 1 files (no fault-model line) still load and default to the edge
// model. Loading validates against the given graph (endpoints must exist
// as edges) and reconstructs the exact edge partition + fault tag.
#pragma once

#include <iosfwd>
#include <string>

#include "src/core/structure.hpp"

namespace ftb::io {

void write_structure(const FtBfsStructure& h, std::ostream& os);
void save_structure(const FtBfsStructure& h, const std::string& path);

/// Parses a structure against `g`. Throws CheckError on malformed input,
/// unknown edges, an unknown fault-model tag, or a vertex-count mismatch.
FtBfsStructure read_structure(const Graph& g, std::istream& is);
FtBfsStructure load_structure(const Graph& g, const std::string& path);

}  // namespace ftb::io
