// structure_io.hpp — (de)serialization of FT-BFS structures.
//
// A deployment artifact: the operator builds H once, ships the purchase
// plan (which links to buy as backup, which to reinforce, and which
// failure model the plan insures against), and reloads it later against
// the same network. The byte-level grammar of every version (v1…v4) is
// specified normatively in docs/file_formats.md; the shape at a glance
// (text, '#' comments):
//
//   ftbfs-structure 4
//   fault-model <edge|vertex|either|dual>
//   sources <k> <s_0> ... <s_{k-1}>   # v3: multi-source only; v4: always
//   <n> <|E(H)|> <source>
//   <u> <v> <flags>        # one line per structure edge;
//                          # flags bit 0 = reinforced, bit 1 = tree edge
//   pair-tables <k>        # v4 only: per-source dual first-failure tables
//   source-tables <s> <num_sites>
//   site e <u> <v> <cnt> <edge-index...>   # indices into the edge section
//   site v <x> <cnt> <edge-index...>
//
// Version history: v1 has no fault-model line (edge model by definition);
// v2 added the fault-model tag; v3 added the sources line for FT-MBFS
// artifacts; v4 carries the dual-failure model and its pair tables. The
// tag "dual" in v2/v3 artifacts denotes what is now called the "either"
// union (one failure of either kind) and loads as FaultClass::kEither;
// only v4 artifacts mean two simultaneous failures by it. Single-source
// non-dual artifacts still write v2 byte-stably, multi-source ones v3, so
// files produced by earlier releases round-trip unchanged. Loading
// validates against the given graph (endpoints must exist as edges) and
// reconstructs the exact edge partition + fault tag + source set (+ pair
// tables for v4).
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "src/core/dual_fault.hpp"
#include "src/core/structure.hpp"

namespace ftb::io {

void write_structure(const FtBfsStructure& h, std::ostream& os);
void save_structure(const FtBfsStructure& h, const std::string& path);

/// Multi-source variant (what api::Session::save uses): `sources` is the
/// FT-MBFS source set, sources.front() == h.source(). A single-source set
/// writes the plain v2 artifact; several sources write v3 with a sources
/// line; a dual-failure structure always writes v4.
void write_structure(const FtBfsStructure& h, std::span<const Vertex> sources,
                     std::ostream& os);
void save_structure(const FtBfsStructure& h, std::span<const Vertex> sources,
                    const std::string& path);

/// Dual-failure variant: also serializes the per-source pair tables
/// (aligned with `sources`; pass empty to write a v4 artifact whose tables
/// the loader will have to rebuild). Non-dual structures ignore
/// `pair_tables` and fall back to the v2/v3 forms above.
void write_structure(const FtBfsStructure& h, std::span<const Vertex> sources,
                     std::span<const DualSiteTable> pair_tables,
                     std::ostream& os);
void save_structure(const FtBfsStructure& h, std::span<const Vertex> sources,
                    std::span<const DualSiteTable> pair_tables,
                    const std::string& path);

/// Parses a structure against `g`. Throws CheckError on malformed input:
/// a bad magic line, an unsupported version, an unknown fault-model tag, a
/// vertex-count mismatch, unknown edges, truncated edge or pair-table
/// sections, or a duplicated / out-of-range source set. When `sources_out`
/// is non-null it receives the artifact's source set ({h.source()} for
/// v1/v2 artifacts and single-source v3 ones); when `tables_out` is
/// non-null it receives the v4 pair tables (empty for v1–v3 artifacts and
/// v4 files written without tables).
FtBfsStructure read_structure(const Graph& g, std::istream& is,
                              std::vector<Vertex>* sources_out = nullptr,
                              std::vector<DualSiteTable>* tables_out = nullptr);
FtBfsStructure load_structure(const Graph& g, const std::string& path,
                              std::vector<Vertex>* sources_out = nullptr,
                              std::vector<DualSiteTable>* tables_out = nullptr);

}  // namespace ftb::io
