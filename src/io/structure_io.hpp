// structure_io.hpp — (de)serialization of FT-BFS structures.
//
// A deployment artifact: the operator builds H once, ships the purchase
// plan (which links to buy as backup, which to reinforce, and which
// failure model the plan insures against), and reloads it later against
// the same network. The byte-level grammar of every version (v1…v5) is
// specified normatively in docs/file_formats.md; the shape at a glance
// (text, '#' comments):
//
//   ftbfs-structure 4
//   fault-model <edge|vertex|either|dual>
//   sources <k> <s_0> ... <s_{k-1}>   # v3: multi-source only; v4: always
//   <n> <|E(H)|> <source>
//   <u> <v> <flags>        # one line per structure edge;
//                          # flags bit 0 = reinforced, bit 1 = tree edge
//   pair-tables <k>        # v4 only: per-source dual first-failure tables
//   source-tables <s> <num_sites>
//   site e <u> <v> <cnt> <edge-index...>   # indices into the edge section
//   site v <x> <cnt> <edge-index...>
//
// Version 5 wraps the same content in *framed sections* for zero-trust
// loading: each section declares its payload length in bytes and its
// CRC-32C, so truncation, bit flips, and length lies are caught before a
// single untrusted number reaches the parser:
//
//   ftbfs-structure 5
//   section meta <bytes> <crc32c-hex>
//   <payload: fault-model + sources lines>
//   section edges <bytes> <crc32c-hex>
//   <payload: header + edge lines>
//   section pair-tables <bytes> <crc32c-hex>    # dual artifacts only
//   <payload: the v4 pair-table block>
//   section site-dist <bytes> <crc32c-hex>      # optional accelerator
//   <payload: per-site replacement-distance rows; see file_formats.md>
//
// Version history: v1 has no fault-model line (edge model by definition);
// v2 added the fault-model tag; v3 added the sources line for FT-MBFS
// artifacts; v4 carries the dual-failure model and its pair tables; v5
// adds the checksummed framing. The tag "dual" in v2/v3 artifacts denotes
// what is now called the "either" union (one failure of either kind) and
// loads as FaultClass::kEither; only v4+ artifacts mean two simultaneous
// failures by it. Single-source non-dual artifacts still write v2
// byte-stably, multi-source ones v3, dual ones v4, so files produced by
// earlier releases round-trip unchanged; v5 is written explicitly via
// write_structure_v5 / save_structure_v5. Loading validates against the
// given graph (endpoints must exist as edges) and reconstructs the exact
// edge partition + fault tag + source set (+ pair tables for v4/v5).
//
// Zero-trust contract (all versions): every count and length field read
// from the artifact is bounds-checked against the graph before it sizes an
// allocation or a loop; malformed input — truncation, corruption, length
// lies, duplicate or unknown sections, trailing bytes after the artifact —
// throws CheckError whose message carries the byte offset and section
// name, never a crash, hang, or silent acceptance.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "src/core/dual_fault.hpp"
#include "src/core/structure.hpp"

namespace ftb::io {

void write_structure(const FtBfsStructure& h, std::ostream& os);
void save_structure(const FtBfsStructure& h, const std::string& path);

/// Multi-source variant (what api::Session::save uses): `sources` is the
/// FT-MBFS source set, sources.front() == h.source(). A single-source set
/// writes the plain v2 artifact; several sources write v3 with a sources
/// line; a dual-failure structure always writes v4.
void write_structure(const FtBfsStructure& h, std::span<const Vertex> sources,
                     std::ostream& os);
void save_structure(const FtBfsStructure& h, std::span<const Vertex> sources,
                    const std::string& path);

/// Dual-failure variant: also serializes the per-source pair tables
/// (aligned with `sources`; pass empty to write a v4 artifact whose tables
/// the loader will have to rebuild). Non-dual structures ignore
/// `pair_tables` and fall back to the v2/v3 forms above.
void write_structure(const FtBfsStructure& h, std::span<const Vertex> sources,
                     std::span<const DualSiteTable> pair_tables,
                     std::ostream& os);
void save_structure(const FtBfsStructure& h, std::span<const Vertex> sources,
                    std::span<const DualSiteTable> pair_tables,
                    const std::string& path);

/// The checksummed v5 framing: same content as the v2–v4 forms, wrapped in
/// `section <name> <bytes> <crc32c>` frames (meta + edges, plus
/// pair-tables for dual structures with non-empty tables). Deterministic:
/// the same structure always produces the same bytes.
void write_structure_v5(const FtBfsStructure& h,
                        std::span<const Vertex> sources,
                        std::span<const DualSiteTable> pair_tables,
                        std::ostream& os);
void save_structure_v5(const FtBfsStructure& h,
                       std::span<const Vertex> sources,
                       std::span<const DualSiteTable> pair_tables,
                       const std::string& path);

/// v5 with the optional site-local distance oracle (docs/file_formats.md
/// §site-dist): `site_dist` is aligned with `sources` and requires
/// non-empty `pair_tables` (the section indexes the pair tables' site
/// order). Pass empty to omit the section — loaders rebuild or serve
/// without it.
void write_structure_v5(const FtBfsStructure& h,
                        std::span<const Vertex> sources,
                        std::span<const DualSiteTable> pair_tables,
                        std::span<const DualSiteDistTable> site_dist,
                        std::ostream& os);
void save_structure_v5(const FtBfsStructure& h,
                       std::span<const Vertex> sources,
                       std::span<const DualSiteTable> pair_tables,
                       std::span<const DualSiteDistTable> site_dist,
                       const std::string& path);

/// Tolerant-load knobs for serving planes that prefer degraded service
/// over refusal (docs/robustness.md has the degradation matrix).
struct ReadOptions {
  /// When true, a corrupt, truncated, or checksum-failed pair-table
  /// section is *dropped* (tables_out left empty, the drop recorded in the
  /// LoadReport) instead of thrown. The structure sections themselves are
  /// never tolerated — a corrupt edge section always throws.
  bool tolerate_pair_tables = false;
  /// Same knob for the optional site-dist accelerator section: when true a
  /// corrupt section is dropped (site_dist_out left empty, drop recorded)
  /// instead of thrown. The section is a pure accelerator, so dropping it
  /// loses speed, never answers.
  bool tolerate_site_dist = false;
};

/// What a tolerant load had to give up. `complete` stays true on a clean
/// load; every dropped section appends a human-readable note.
struct LoadReport {
  bool complete = true;
  std::vector<std::string> dropped;
};

/// Parses a structure against `g`. Throws CheckError on malformed input:
/// a bad magic line, an unsupported version, an unknown fault-model tag, a
/// vertex-count mismatch, unknown edges, truncated or oversized sections,
/// checksum mismatches (v5), duplicated/unknown sections, trailing bytes
/// after the artifact, or a duplicated / out-of-range source set. Every
/// such error message carries the byte offset and section name of the
/// offending input. When `sources_out` is non-null it receives the
/// artifact's source set ({h.source()} for v1/v2 artifacts and
/// single-source v3 ones); when `tables_out` is non-null it receives the
/// v4/v5 pair tables (empty for v1–v3 artifacts and files written without
/// tables).
FtBfsStructure read_structure(const Graph& g, std::istream& is,
                              std::vector<Vertex>* sources_out = nullptr,
                              std::vector<DualSiteTable>* tables_out = nullptr);
/// Tolerant overload: `opts` selects which sections may be dropped instead
/// of thrown; `report` (may be null) receives what was dropped. When
/// `site_dist_out` is non-null it receives the optional v5 site-dist
/// accelerator tables (empty when the artifact has no such section or it
/// was dropped).
FtBfsStructure read_structure(const Graph& g, std::istream& is,
                              std::vector<Vertex>* sources_out,
                              std::vector<DualSiteTable>* tables_out,
                              const ReadOptions& opts, LoadReport* report,
                              std::vector<DualSiteDistTable>* site_dist_out =
                                  nullptr);
FtBfsStructure load_structure(const Graph& g, const std::string& path,
                              std::vector<Vertex>* sources_out = nullptr,
                              std::vector<DualSiteTable>* tables_out = nullptr);
FtBfsStructure load_structure(const Graph& g, const std::string& path,
                              std::vector<Vertex>* sources_out,
                              std::vector<DualSiteTable>* tables_out,
                              const ReadOptions& opts, LoadReport* report,
                              std::vector<DualSiteDistTable>* site_dist_out =
                                  nullptr);

}  // namespace ftb::io
