// rng.hpp — deterministic, fast pseudo-random number generation.
//
// All randomness in the library flows through SplitMix64 / Xoshiro256**,
// seeded explicitly: identical seeds give identical graphs, identical weight
// assignments W, and therefore bit-identical structures on every platform.
// (std::mt19937 + std::uniform_int_distribution are not cross-platform
// reproducible, which is why we roll our own.)
#pragma once

#include <cstdint>

#include "src/util/check.hpp"

namespace ftb {

/// SplitMix64: tiny, high-quality seeder / standalone generator.
/// Used to expand a single user seed into independent generator states.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — the library's workhorse generator.
/// Deterministic across platforms; not cryptographic (never needed here).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) {
    FTB_DCHECK(bound > 0);
    // 128-bit multiply-shift; rejection loop for exactness.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t threshold = (0ULL - bound) % bound;
      while (l < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    FTB_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p).
  bool next_bool(double p) { return next_double() < p; }

  /// Fisher–Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = next_below(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace ftb
