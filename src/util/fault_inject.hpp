// fault_inject.hpp — deterministic, seeded fault injection for robustness
// tests and chaos drills.
//
// Production code marks *injection points* — places where the outside
// world can fail (a short read from storage, a flipped bit, an allocation
// failure, a worker-task crash) — with FTB_INJECT_FAULT. In Release builds
// the macro compiles to nothing; in Debug and sanitizer builds (or with
// FTB_ENABLE_FAULT_INJECTION defined) each point consults the process-wide
// Injector, which decides *deterministically* from (seed, point, call
// ordinal) whether to fire. The same seed therefore replays the same fault
// schedule, so a failure found by the chaos drill is reproducible by
// rerunning with its seed.
//
// Configuration is programmatic (tests call Injector::configure) or via
// environment, read once on first use:
//
//   FTBFS_FAULT_POINTS   comma list of io_short_read, io_bit_flip, alloc,
//                        pool_task (unset/empty → injection disarmed)
//   FTBFS_FAULT_RATE     fire probability per check in [0,1] (default 1.0)
//   FTBFS_FAULT_SEED     u64 schedule seed (default 1)
//
// The documented contract for every point: a fired fault must surface as
// the layer's normal error shape (CheckError from the io layer,
// std::bad_alloc from allocation, the captured task exception from
// ThreadPool::parallel_for) — never a crash, hang, or silent corruption.
// tests/fault_inject_test.cpp pins this.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <string>

#if !defined(NDEBUG) || defined(FTB_ENABLE_FAULT_INJECTION)
#define FTB_FAULT_INJECTION_ENABLED 1
#else
#define FTB_FAULT_INJECTION_ENABLED 0
#endif

namespace ftb::fault {

enum class Point : unsigned {
  kIoShortRead = 0,  // storage returned fewer bytes than declared
  kIoBitFlip = 1,    // storage returned corrupted bytes
  kAlloc = 2,        // allocation failure on an untrusted-size reserve
  kPoolTask = 3,     // a ThreadPool task throws mid-parallel_for
};
inline constexpr unsigned kNumPoints = 4;

inline const char* point_name(Point p) {
  switch (p) {
    case Point::kIoShortRead:
      return "io_short_read";
    case Point::kIoBitFlip:
      return "io_bit_flip";
    case Point::kAlloc:
      return "alloc";
    case Point::kPoolTask:
      return "pool_task";
  }
  return "?";
}

/// Process-wide fault schedule. Deterministic: whether check number k at
/// point p fires depends only on (seed, p, k), not on wall clock or thread
/// interleaving of *other* points.
class Injector {
 public:
  static Injector& instance() {
    static Injector inj;
    return inj;
  }

  /// Arms the given points (bitmask of 1u << Point) with a fresh schedule.
  /// Resets all per-point counters, so a test that reconfigures replays
  /// from ordinal 0.
  void configure(std::uint64_t seed, double rate, unsigned point_mask) {
    seed_.store(seed, std::memory_order_relaxed);
    rate_bits_.store(rate_to_bits(rate), std::memory_order_relaxed);
    for (unsigned p = 0; p < kNumPoints; ++p) {
      checks_[p].store(0, std::memory_order_relaxed);
      fires_[p].store(0, std::memory_order_relaxed);
    }
    mask_.store(point_mask, std::memory_order_release);
  }

  /// Disarms every point (the default state).
  void disarm() { configure(1, 1.0, 0); }

  /// The injection-point predicate: true iff this check should fail.
  bool should_fire(Point p) {
    const unsigned mask = mask_.load(std::memory_order_acquire);
    if ((mask & (1u << static_cast<unsigned>(p))) == 0) return false;
    const std::uint64_t ordinal =
        checks_[static_cast<unsigned>(p)].fetch_add(
            1, std::memory_order_relaxed);
    const std::uint64_t h =
        mix(seed_.load(std::memory_order_relaxed) ^
            (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(p) + 1)) ^
            ordinal);
    // Top 53 bits → uniform double in [0,1).
    const double u =
        static_cast<double>(h >> 11) * 0x1.0p-53;
    const bool fire = u < bits_to_rate(rate_bits_.load(
                              std::memory_order_relaxed));
    if (fire) {
      fires_[static_cast<unsigned>(p)].fetch_add(1,
                                                 std::memory_order_relaxed);
    }
    return fire;
  }

  std::uint64_t checks(Point p) const {
    return checks_[static_cast<unsigned>(p)].load(std::memory_order_relaxed);
  }
  std::uint64_t fires(Point p) const {
    return fires_[static_cast<unsigned>(p)].load(std::memory_order_relaxed);
  }

 private:
  Injector() { configure_from_env(); }

  static std::uint64_t mix(std::uint64_t x) {  // splitmix64 finalizer
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }
  static std::uint64_t rate_to_bits(double r) {
    if (r < 0.0) r = 0.0;
    if (r > 1.0) r = 1.0;
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(r));
    __builtin_memcpy(&bits, &r, sizeof(bits));
    return bits;
  }
  static double bits_to_rate(std::uint64_t bits) {
    double r = 0.0;
    __builtin_memcpy(&r, &bits, sizeof(r));
    return r;
  }

  void configure_from_env() {
    disarm();
    const char* points = std::getenv("FTBFS_FAULT_POINTS");
    if (points == nullptr || *points == '\0') return;
    unsigned mask = 0;
    std::string tok;
    for (const char* c = points;; ++c) {
      if (*c == ',' || *c == '\0') {
        for (unsigned p = 0; p < kNumPoints; ++p) {
          if (tok == point_name(static_cast<Point>(p))) mask |= 1u << p;
        }
        tok.clear();
        if (*c == '\0') break;
      } else if (*c != ' ') {
        tok += *c;
      }
    }
    const char* seed_s = std::getenv("FTBFS_FAULT_SEED");
    const char* rate_s = std::getenv("FTBFS_FAULT_RATE");
    const std::uint64_t seed =
        seed_s != nullptr ? std::strtoull(seed_s, nullptr, 10) : 1;
    const double rate = rate_s != nullptr ? std::strtod(rate_s, nullptr) : 1.0;
    configure(seed, rate, mask);
  }

  std::atomic<std::uint64_t> seed_{1};
  std::atomic<std::uint64_t> rate_bits_{0};
  std::atomic<unsigned> mask_{0};
  std::atomic<std::uint64_t> checks_[kNumPoints] = {};
  std::atomic<std::uint64_t> fires_[kNumPoints] = {};
};

/// Throws std::bad_alloc if the alloc point fires — call before an
/// untrusted-size reserve so tests can prove the failure propagates as a
/// normal allocation failure.
inline void maybe_fail_alloc() {
#if FTB_FAULT_INJECTION_ENABLED
  if (Injector::instance().should_fire(Point::kAlloc)) throw std::bad_alloc();
#endif
}

/// Throws from inside a ThreadPool task if the pool_task point fires — the
/// pool's exception capture must surface it on the calling thread.
inline void maybe_fail_task() {
#if FTB_FAULT_INJECTION_ENABLED
  if (Injector::instance().should_fire(Point::kPoolTask)) {
    throw std::runtime_error("injected fault: pool_task");
  }
#endif
}

}  // namespace ftb::fault

#if FTB_FAULT_INJECTION_ENABLED
/// Runs `action` when the point's schedule fires. Compiles away in Release
/// builds (unless FTB_ENABLE_FAULT_INJECTION is defined).
#define FTB_INJECT_FAULT(point, action)                               \
  do {                                                                \
    if (::ftb::fault::Injector::instance().should_fire(point)) {      \
      action;                                                         \
    }                                                                 \
  } while (0)
#else
#define FTB_INJECT_FAULT(point, action) \
  do {                                  \
  } while (0)
#endif
