#include "src/util/thread_pool.hpp"

#include <algorithm>

#include "src/util/check.hpp"

namespace ftb {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain(Job& job) {
  for (;;) {
    // Fail-fast: once any participant has captured a failure, stop
    // claiming blocks. The refs-based completion accounting is untouched —
    // in-flight blocks on other participants run to the end of their range
    // (their side effects are disjoint and their pooled scratch is
    // released by RAII leases), the cursor is simply never advanced past
    // the abandoned tail by anyone who has seen the flag.
    if (job.failed.load(std::memory_order_acquire)) return;
    const std::size_t b = job.next_block.fetch_add(1, std::memory_order_relaxed);
    if (b >= job.num_blocks) return;
    const std::size_t lo = b * job.block;
    const std::size_t hi = std::min(job.count, lo + job.block);
    try {
      for (std::size_t i = lo; i < hi; ++i) job.fn(job.ctx, i);
    } catch (...) {
      {
        std::lock_guard<std::mutex> err_lock(job.err_mu);
        if (!job.error) job.error = std::current_exception();
      }
      // Publish after the capture: a drain that observes the flag and
      // returns is guaranteed a non-null job.error behind it.
      job.failed.store(true, std::memory_order_release);
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stop_ || (current_job_ != nullptr && job_seq_ != seen);
      });
      if (stop_) return;
      seen = job_seq_;
      job = current_job_;
      // The ref is taken under mu_, so the caller (whose release predicate
      // also runs under mu_) can never miss a late joiner.
      ++job->refs;
    }
    drain(*job);
    {
      // Leaving under mu_ both publishes this worker's fn side effects to
      // the caller (which re-acquires mu_ in its wait) and guarantees the
      // job outlives this access: the caller cannot observe refs == 0 and
      // reclaim the stack frame before this critical section ends.
      std::lock_guard<std::mutex> lock(mu_);
      --job->refs;
    }
    // done_cv_ is shared by all potential callers, so wake every one of
    // them; each re-checks its own job's predicate. (notify_one could hand
    // the single wakeup to the wrong caller and strand the right one.)
    done_cv_.notify_all();
  }
}

void ThreadPool::run_job(std::size_t count, std::size_t shards_per_thread,
                         BlockFn fn, const void* ctx) {
  if (count == 0) return;
  const std::size_t nthreads = thread_count();
  // Small batches aren't worth the synchronization overhead.
  if (nthreads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(ctx, i);
    return;
  }

  Job job;
  job.fn = fn;
  job.ctx = ctx;
  job.count = count;
  const std::size_t shards = std::min(
      count, std::max<std::size_t>(1, nthreads * shards_per_thread));
  job.block = (count + shards - 1) / shards;
  job.num_blocks = (count + job.block - 1) / job.block;

  {
    std::lock_guard<std::mutex> lock(mu_);
    FTB_CHECK_MSG(!stop_, "parallel_for on a stopped pool");
    current_job_ = &job;
    ++job_seq_;
  }
  cv_.notify_all();

  // The caller is a participant too — it never blocks while work remains.
  // Its drain() returns only once the claim cursor is exhausted, so every
  // block is either done or owned by a worker still counted in refs.
  drain(job);

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return job.refs == 0; });
    // Unpublish in the same critical section that observed refs == 0: a
    // late worker can only join under mu_, so after this point none ever
    // sees the dying job (its seq predicate already excludes re-joins).
    if (current_job_ == &job) current_job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ftb
