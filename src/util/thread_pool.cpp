#include "src/util/thread_pool.hpp"

#include <atomic>

#include "src/util/check.hpp"

namespace ftb {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t shards_per_thread) {
  if (count == 0) return;
  const std::size_t nthreads = thread_count();
  // Small batches aren't worth the synchronization overhead.
  if (nthreads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  const std::size_t shards =
      std::min(count, std::max<std::size_t>(1, nthreads * shards_per_thread));
  const std::size_t block = (count + shards - 1) / shards;

  std::atomic<std::size_t> remaining{shards};
  std::exception_ptr first_error;
  std::mutex err_mu;
  std::mutex done_mu;
  std::condition_variable done_cv;

  {
    std::lock_guard<std::mutex> lock(mu_);
    FTB_CHECK_MSG(!stop_, "parallel_for on a stopped pool");
    for (std::size_t sh = 0; sh < shards; ++sh) {
      const std::size_t lo = sh * block;
      const std::size_t hi = std::min(count, lo + block);
      tasks_.push([&, lo, hi] {
        try {
          for (std::size_t i = lo; i < hi; ++i) fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> err_lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> done_lock(done_mu);
          done_cv.notify_one();
        }
      });
    }
  }
  cv_.notify_all();

  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return remaining.load() == 0; });
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ftb
