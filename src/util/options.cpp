#include "src/util/options.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "src/util/check.hpp"

namespace ftb {

namespace {

// Strict scalar parses: std::stoll("5x") happily returns 5, so a typo'd
// "--sources=0,5x,10" would silently build from the wrong source set.
// Reject any value the conversion does not consume whole — the CLI's
// error-path contract (non-zero exit, diagnostic on stderr) needs the
// throw, not a best-effort prefix.
long long parse_int_strict(const std::string& key, const std::string& v) {
  std::size_t pos = 0;
  long long out = 0;
  try {
    out = std::stoll(v, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  FTB_CHECK_MSG(pos == v.size(),
                "malformed integer '" << v << "' for --" << key);
  return out;
}

double parse_double_strict(const std::string& key, const std::string& v) {
  std::size_t pos = 0;
  double out = 0;
  try {
    out = std::stod(v, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  FTB_CHECK_MSG(pos == v.size(),
                "malformed number '" << v << "' for --" << key);
  return out;
}

}  // namespace

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      kv_.emplace_back(arg, "1");
    } else {
      kv_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    }
  }
}

std::string Options::lookup(const std::string& key) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) return v;
  }
  std::string env = "FTBFS_";
  for (char c : key) env += static_cast<char>(std::toupper(c));
  if (const char* e = std::getenv(env.c_str())) return e;
  return "";
}

bool Options::has(const std::string& key) const { return !lookup(key).empty(); }

long long Options::get_int(const std::string& key, long long def) const {
  const std::string v = lookup(key);
  return v.empty() ? def : parse_int_strict(key, v);
}

double Options::get_double(const std::string& key, double def) const {
  const std::string v = lookup(key);
  return v.empty() ? def : parse_double_strict(key, v);
}

std::string Options::get_string(const std::string& key,
                                const std::string& def) const {
  const std::string v = lookup(key);
  return v.empty() ? def : v;
}

std::vector<double> Options::get_double_list(const std::string& key,
                                             std::vector<double> def) const {
  const std::string v = lookup(key);
  if (v.empty()) return def;
  std::vector<double> out;
  std::stringstream ss(v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(parse_double_strict(key, item));
  }
  return out.empty() ? def : out;
}

std::vector<long long> Options::get_int_list(const std::string& key,
                                             std::vector<long long> def) const {
  const std::string v = lookup(key);
  if (v.empty()) return def;
  std::vector<long long> out;
  std::stringstream ss(v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(parse_int_strict(key, item));
  }
  return out.empty() ? def : out;
}

}  // namespace ftb
