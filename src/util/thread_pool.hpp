// thread_pool.hpp — a small fixed-size worker pool with a deterministic
// parallel-for primitive.
//
// The replacement-path engine runs two O(n·m) BFS sweeps (one BFS per fault
// site, one off-path BFS per vertex). Both are embarrassingly parallel:
// every iteration writes a disjoint output slot, so the result is identical
// regardless of scheduling. parallel_for publishes ONE job descriptor (a
// type-erased pointer to the caller's callable) and the workers — plus the
// calling thread itself — claim contiguous index blocks off a shared atomic
// cursor. A steady-state call therefore allocates nothing: no per-shard
// task closures, no std::function conversions, no queue nodes. Exceptions
// raised by any iteration are captured and rethrown on the caller's thread;
// the first capture also fails the job fast — no participant claims further
// blocks — matching the serial shortcut, which stops at the throwing
// iteration. Blocks already in flight on other participants finish
// normally, so iteration bodies holding pooled scratch must release it by
// RAII (PoolLease) for the error path to be leak-free.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/fault_inject.hpp"

namespace ftb {

/// Fixed-size worker pool. Threads are created once and reused; the pool
/// joins them on destruction. Concurrent parallel_for calls (e.g. two
/// engines built simultaneously on the global pool) are safe: each call
/// completes through its own caller thread even when the workers' single
/// attention slot is claimed by another job.
class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Runs fn(i) for every i in [0, count). Blocks until all iterations are
  /// done. The first exception thrown by any iteration is rethrown here.
  /// Iterations are split into up to `shards_per_thread * thread_count()`
  /// contiguous blocks claimed dynamically off a shared cursor — load
  /// balancing on skewed work without any per-block allocation. The
  /// calling thread participates in the work. Iterations with disjoint
  /// side effects make the result deterministic regardless of scheduling
  /// (asserted by util_test).
  template <class Fn>
  void parallel_for(std::size_t count, const Fn& fn,
                    std::size_t shards_per_thread = 8) {
    run_job(count, shards_per_thread, &invoke_thunk<Fn>,
            static_cast<const void*>(&fn));
  }

  /// The process-wide default pool (sized to hardware concurrency).
  static ThreadPool& global();

 private:
  using BlockFn = void (*)(const void* ctx, std::size_t i);

  template <class Fn>
  static void invoke_thunk(const void* ctx, std::size_t i) {
    // Debug-build injection point: a task that throws here must surface
    // through the Job's exception capture on the caller's thread, leaving
    // the pool reusable (pinned by tests/fault_inject_test.cpp).
    fault::maybe_fail_task();
    (*static_cast<const Fn*>(ctx))(i);
  }

  /// One in-flight parallel_for, living on the caller's stack. Completion
  /// is tracked purely by participants: a claimed block belongs to a
  /// participant inside drain(), so "cursor exhausted (the caller's own
  /// drain returned) ∧ refs == 0" ⇔ every block has been executed. refs is
  /// guarded by the pool mutex — join/leave and the caller's wait all
  /// serialize on it, so no completion signal can be missed and no
  /// participant can touch the job after the caller reclaims it.
  struct Job {
    BlockFn fn = nullptr;
    const void* ctx = nullptr;
    std::size_t count = 0;       // total iterations
    std::size_t block = 0;       // iterations per claimed block
    std::size_t num_blocks = 0;  // ceil(count / block)
    std::atomic<std::size_t> next_block{0};  // shared claim cursor
    std::size_t refs = 0;        // workers inside drain(); guarded by mu_
    std::exception_ptr error;    // first failure (under err_mu)
    std::mutex err_mu;
    /// Set (after `error`) by the first capturing participant: every drain
    /// checks it before claiming another block, so a failed job abandons
    /// its unclaimed tail instead of burning through it — and a nested
    /// inner job that fails cannot stall behind sibling outer blocks that
    /// would only feed a doomed result.
    std::atomic<bool> failed{false};
  };

  void run_job(std::size_t count, std::size_t shards_per_thread, BlockFn fn,
               const void* ctx);
  /// Claims and executes blocks until the cursor runs dry.
  void drain(Job& job);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;       // workers: new job or stop
  std::condition_variable done_cv_;  // callers: some job finished & released
                                     // (notify_all — several callers may
                                     // wait here concurrently, each on its
                                     // own job)
  Job* current_job_ = nullptr;       // guarded by mu_
  std::uint64_t job_seq_ = 0;        // guarded by mu_
  bool stop_ = false;                // guarded by mu_
};

}  // namespace ftb
