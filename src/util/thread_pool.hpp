// thread_pool.hpp — a small fixed-size worker pool with a deterministic
// parallel-for primitive.
//
// The replacement-path engine runs two O(n·m) BFS sweeps (one BFS per tree
// edge, one off-path BFS per vertex). Both are embarrassingly parallel:
// every iteration writes a disjoint output slot, so the result is identical
// regardless of scheduling. parallel_for shards [0, count) into contiguous
// blocks and hands them to the pool; exceptions raised by any task are
// rethrown on the caller's thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ftb {

/// Fixed-size worker pool. Threads are created once and reused; the pool
/// joins them on destruction. Safe to use from one submitting thread.
class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Runs fn(i) for every i in [0, count). Blocks until all iterations are
  /// done. The first exception thrown by any iteration is rethrown here.
  /// Iterations are sharded into `shards_per_thread * thread_count()`
  /// contiguous blocks for load balancing on skewed work.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t shards_per_thread = 8);

  /// The process-wide default pool (sized to hardware concurrency).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace ftb
