// check.hpp — lightweight precondition / invariant checking.
//
// FTB_CHECK is always on (it guards API misuse and algorithmic invariants
// whose violation would make results meaningless); FTB_DCHECK compiles away
// in release builds and is used on hot paths.
//
// Failures throw ftb::CheckError rather than aborting so that tests can
// assert on them and long benchmark sweeps can report and continue.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ftb {

/// Error thrown by FTB_CHECK / FTB_DCHECK on violated invariants.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& msg) : std::logic_error(msg) {}
};

namespace detail {
[[noreturn]] inline void check_fail(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "FTB_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace ftb

#define FTB_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) ::ftb::detail::check_fail(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define FTB_CHECK_MSG(cond, msg)                                    \
  do {                                                              \
    if (!(cond)) {                                                  \
      std::ostringstream _ftb_os;                                   \
      _ftb_os << msg;                                               \
      ::ftb::detail::check_fail(#cond, __FILE__, __LINE__,          \
                                _ftb_os.str());                     \
    }                                                               \
  } while (0)

#ifdef NDEBUG
#define FTB_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define FTB_DCHECK(cond) FTB_CHECK(cond)
#endif

// FTB_DEPRECATED marks the legacy per-model build_* entry points, which are
// thin wrappers over ftb::api::build / ftb::api::Session. The attribute is
// opt-in (define FTB_ENABLE_DEPRECATION_WARNINGS, or configure with
// -DFTB_DEPRECATION_WARNINGS=ON) so that existing callers keep compiling
// clean under -Werror while migrations are in flight.
#ifdef FTB_ENABLE_DEPRECATION_WARNINGS
#define FTB_DEPRECATED(msg) [[deprecated(msg)]]
#else
#define FTB_DEPRECATED(msg)
#endif
