#include "src/util/table.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>

#include "src/util/check.hpp"

namespace ftb {

void Table::columns(std::vector<std::string> names) {
  FTB_CHECK_MSG(rows_.empty(), "columns() after rows were added");
  header_ = std::move(names);
}

void Table::add_row(std::vector<Cell> cells) {
  FTB_CHECK_MSG(header_.empty() || cells.size() == header_.size(),
                "row arity " << cells.size() << " != header arity "
                             << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(const Cell& c) {
  if (std::holds_alternative<long long>(c)) {
    return std::to_string(std::get<long long>(c));
  }
  if (std::holds_alternative<double>(c)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4g", std::get<double>(c));
    return buf;
  }
  return std::get<std::string>(c);
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();

  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      r.push_back(format_cell(row[i]));
      if (widths.size() <= i) widths.resize(i + 1, 0);
      widths[i] = std::max(widths[i], r.back().size());
    }
    rendered.push_back(std::move(r));
  }

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto pad = [&](const std::string& s, std::size_t w) {
    os << s;
    for (std::size_t k = s.size(); k < w + 2; ++k) os << ' ';
  };
  if (!header_.empty()) {
    for (std::size_t i = 0; i < header_.size(); ++i) pad(header_[i], widths[i]);
    os << '\n';
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    for (std::size_t k = 0; k < total; ++k) os << '-';
    os << '\n';
  }
  for (const auto& r : rendered) {
    for (std::size_t i = 0; i < r.size(); ++i)
      pad(r[i], i < widths.size() ? widths[i] : r[i].size());
    os << '\n';
  }
  os.flush();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  FTB_CHECK_MSG(f.good(), "cannot open " << path << " for writing");
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) f << ',';
    f << header_[i];
  }
  if (!header_.empty()) f << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) f << ',';
      f << format_cell(row[i]);
    }
    f << '\n';
  }
}

}  // namespace ftb
