// free_list_pool.hpp — lock-free free list of pooled scratch objects.
//
// A bounded array of atomic slots, each holding either null or a
// uniquely-owned pointer. acquire() claims a slot's pointer with one
// exchange, release() parks it back with one CAS — no mutex on the serving
// path, and no ABA window because a slot never holds the same pointer twice
// while anyone still references it (ownership transfers whole with the
// exchange). An empty pool allocates; a full pool deletes — both only off
// the warm path, so steady-state serving is allocation-free.
//
// Shared by the api::Session what-if arenas and the multi-source BFS
// kernel's lane scratch (any default-constructible epoch-stamped arena
// qualifies).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <memory>

namespace ftb {

template <class T>
class FreeListPool {
 public:
  FreeListPool() = default;
  FreeListPool(const FreeListPool&) = delete;
  FreeListPool& operator=(const FreeListPool&) = delete;
  ~FreeListPool() {
    for (auto& slot : slots_) {
      delete slot.load(std::memory_order_relaxed);
    }
  }

  std::unique_ptr<T> acquire() const {
    for (auto& slot : slots_) {
      if (slot.load(std::memory_order_relaxed) == nullptr) continue;
      if (T* p = slot.exchange(nullptr, std::memory_order_acq_rel)) {
        return std::unique_ptr<T>(p);
      }
    }
    return std::make_unique<T>();
  }

  void release(std::unique_ptr<T> obj) const {
    T* p = obj.release();
    for (auto& slot : slots_) {
      if (slot.load(std::memory_order_relaxed) != nullptr) continue;
      T* expected = nullptr;
      if (slot.compare_exchange_strong(expected, p,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        return;
      }
    }
    delete p;  // pool full — more objects than slots only under churn
  }

 private:
  // 64 slots comfortably exceed any plausible worker count; front-first
  // scans keep the hottest object (and its cached state) circulating.
  static constexpr std::size_t kSlots = 64;
  mutable std::array<std::atomic<T*>, kSlots> slots_{};
};

/// RAII lease so an exception inside a worker cannot leak the object.
template <class T>
class PoolLease {
 public:
  explicit PoolLease(const FreeListPool<T>& pool)
      : pool_(&pool), obj_(pool.acquire()) {}
  ~PoolLease() { pool_->release(std::move(obj_)); }
  PoolLease(const PoolLease&) = delete;
  PoolLease& operator=(const PoolLease&) = delete;
  T& operator*() const { return *obj_; }
  T* operator->() const { return obj_.get(); }

 private:
  const FreeListPool<T>* pool_;
  std::unique_ptr<T> obj_;
};

}  // namespace ftb
