// table.hpp — aligned console tables + CSV emission for the bench harness.
//
// Every bench binary prints paper-style rows through this class so that the
// output format is uniform and machine-greppable:
//
//   Table t("E1: reinforcement-backup tradeoff");
//   t.columns({"eps", "n", "b(n)", "r(n)", "b/n^{1+eps}"});
//   t.row(0.25, 2048, 41231, 512, 1.23);
//   t.print(std::cout);        // aligned text
//   t.write_csv("e1.csv");     // optional CSV artifact
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace ftb {

/// A cell is an integer, a double, or a string.
using Cell = std::variant<long long, double, std::string>;

/// Column-aligned table with an optional title, printable as text or CSV.
class Table {
 public:
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  /// Defines the header. Must be called before the first row().
  void columns(std::vector<std::string> names);

  /// Appends one row. Accepts any mix of integral / floating / string args;
  /// the arity must match the header.
  template <typename... Args>
  void row(Args&&... args) {
    std::vector<Cell> cells;
    cells.reserve(sizeof...(Args));
    (cells.push_back(to_cell(std::forward<Args>(args))), ...);
    add_row(std::move(cells));
  }

  void add_row(std::vector<Cell> cells);

  std::size_t row_count() const { return rows_.size(); }

  /// Aligned, human-readable rendering.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (no quoting of commas needed for our content).
  void write_csv(const std::string& path) const;

  /// Renders a single cell the way print()/CSV do (doubles with %.4g).
  static std::string format_cell(const Cell& c);

 private:
  template <typename T>
  static Cell to_cell(T&& v) {
    using U = std::decay_t<T>;
    if constexpr (std::is_same_v<U, bool>) {
      return Cell(static_cast<long long>(v));
    } else if constexpr (std::is_integral_v<U>) {
      return Cell(static_cast<long long>(v));
    } else if constexpr (std::is_floating_point_v<U>) {
      return Cell(static_cast<double>(v));
    } else {
      return Cell(std::string(std::forward<T>(v)));
    }
  }

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace ftb
