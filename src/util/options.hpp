// options.hpp — tiny "--key=value" command-line / environment option reader
// for the benchmark binaries.
//
// Every bench runs with sensible defaults (so `for b in build/bench/*; do
// $b; done` completes in minutes) but can be scaled up:
//
//   ./bench_tradeoff --n=4096 --seed=7
//   FTBFS_N=4096 ./bench_tradeoff            # env var fallback
//
// Precedence: command line > environment (FTBFS_<KEY> upper-cased) > default.
#pragma once

#include <string>
#include <vector>

namespace ftb {

/// Parses `--key=value` arguments with environment-variable fallback.
class Options {
 public:
  Options(int argc, char** argv);

  /// True if `--key` or `--key=...` was passed.
  bool has(const std::string& key) const;

  long long get_int(const std::string& key, long long def) const;
  double get_double(const std::string& key, double def) const;
  std::string get_string(const std::string& key, const std::string& def) const;

  /// Comma-separated list of doubles, e.g. --eps=0.1,0.25,0.5
  std::vector<double> get_double_list(const std::string& key,
                                      std::vector<double> def) const;
  /// Comma-separated list of ints, e.g. --n=256,512,1024
  std::vector<long long> get_int_list(const std::string& key,
                                      std::vector<long long> def) const;

 private:
  // Returns empty if the key is absent from both argv and environment.
  std::string lookup(const std::string& key) const;

  std::vector<std::pair<std::string, std::string>> kv_;
};

}  // namespace ftb
