// crc32c.hpp — CRC-32C (Castagnoli) over byte ranges.
//
// The integrity primitive behind structure_io v5: every framed section of
// an artifact carries the CRC-32C of its payload so a flipped bit in
// storage surfaces as a CheckError at load time instead of a silently
// wrong distance at query time. Software table implementation (reflected
// polynomial 0x82F63B78), deterministic across platforms — the checksum is
// part of the on-disk format, so it must never depend on endianness or
// hardware CRC availability.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ftb {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32c_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// CRC-32C of `data`, with the conventional init/final inversion (the
/// checksum of "123456789" is 0xE3069283). `seed` chains incremental
/// updates: crc32c(a + b) == crc32c(b, crc32c(a)).
inline std::uint32_t crc32c(std::string_view data, std::uint32_t seed = 0) {
  const auto& table = detail::crc32c_table();
  std::uint32_t crc = ~seed;
  for (const char c : data) {
    crc = (crc >> 8) ^
          table[(crc ^ static_cast<std::uint8_t>(c)) & 0xFFu];
  }
  return ~crc;
}

}  // namespace ftb
