// timer.hpp — wall-clock stopwatch for benchmark tables.
#pragma once

#include <chrono>

namespace ftb {

/// Simple monotonic stopwatch. Started on construction; `restart()` resets.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last restart.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ftb
