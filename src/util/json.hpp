// json.hpp — minimal ordered JSON builders shared by the benches, the CLI
// and anything else that emits machine-readable reports.
//
// Values are insertion-ordered; nested objects/arrays go in via set_raw.
// The schema every producer shares is "one JsonObject per report, one
// JsonArray per row list" — BENCH_construction.json and `ftbfs_cli --json`
// are both written through these builders, so downstream scripting sees a
// single shape.
#pragma once

#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace ftb {

/// Minimal ordered JSON object builder (see file comment).
class JsonObject {
 public:
  JsonObject& set(const std::string& key, double v) {
    if (!std::isfinite(v)) return set_raw(key, "null");  // keep valid JSON
    std::ostringstream os;
    os << v;
    return set_raw(key, os.str());
  }
  JsonObject& set(const std::string& key, std::int64_t v) {
    return set_raw(key, std::to_string(v));
  }
  JsonObject& set(const std::string& key, bool v) {
    return set_raw(key, v ? "true" : "false");
  }
  JsonObject& set(const std::string& key, const std::string& v) {
    return set_raw(key, quote(v));
  }
  JsonObject& set_raw(const std::string& key, const std::string& json) {
    kv_.emplace_back(key, json);
    return *this;
  }

  std::string str(int indent = 0) const {
    const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
    std::ostringstream os;
    os << "{\n";
    for (std::size_t i = 0; i < kv_.size(); ++i) {
      os << pad << "\"" << kv_[i].first << "\": " << kv_[i].second;
      if (i + 1 < kv_.size()) os << ",";
      os << "\n";
    }
    os << std::string(static_cast<std::size_t>(indent), ' ') << "}";
    return os.str();
  }

  /// Escapes and quotes a string value (quotes, backslashes, control
  /// characters) — values like CLI-supplied file paths must not be able to
  /// break the emitted document.
  static std::string quote(const std::string& v) {
    std::ostringstream os;
    os << '"';
    for (const char c : v) {
      switch (c) {
        case '"':
          os << "\\\"";
          break;
        case '\\':
          os << "\\\\";
          break;
        case '\n':
          os << "\\n";
          break;
        case '\r':
          os << "\\r";
          break;
        case '\t':
          os << "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
               << "0123456789abcdef"[c & 0xf];
          } else {
            os << c;
          }
      }
    }
    os << '"';
    return os.str();
  }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

/// Companion array builder (e.g. per-seed or per-source rows); nests via
/// JsonObject::set_raw(key, arr.str(indent)).
class JsonArray {
 public:
  JsonArray& push(const JsonObject& obj) {
    items_.push_back(obj.str(4));
    return *this;
  }
  JsonArray& push_raw(const std::string& json) {
    items_.push_back(json);
    return *this;
  }

  std::string str(int indent = 0) const {
    if (items_.empty()) return "[]";
    const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
    std::ostringstream os;
    os << "[\n";
    for (std::size_t i = 0; i < items_.size(); ++i) {
      os << pad << items_[i];
      if (i + 1 < items_.size()) os << ",";
      os << "\n";
    }
    os << std::string(static_cast<std::size_t>(indent), ' ') << "]";
    return os.str();
  }

 private:
  std::vector<std::string> items_;
};

inline void write_json_file(const std::string& path, const JsonObject& obj) {
  std::ofstream out(path);
  out << obj.str() << "\n";
}

}  // namespace ftb
