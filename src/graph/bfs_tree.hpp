// bfs_tree.hpp — the BFS tree T0 = ⋃_v π(s,v) rooted at the source, with
// the ancestry machinery the paper's constructions lean on.
//
// T0 is the canonical shortest-path tree under the weight assignment W
// (see canonical_bfs.hpp): π(s,v) = SP(s,v,G,W) is exactly the tree path
// to v. On top of the tree we precompute:
//   * preorder intervals (tin/tout) — O(1) ancestor tests, O(1) "is e on
//     π(s,v)" tests, O(1) e ∼ e' tests (Sec. 3.1's relation);
//   * children lists and subtree sizes — heavy-path decomposition input;
//   * contiguous preorder ranges — "all vertices below edge e" iteration
//     used when storing per-failure distance rows.
#pragma once

#include <span>
#include <vector>

#include "src/graph/canonical_bfs.hpp"
#include "src/graph/graph.hpp"

namespace ftb {

/// Canonical BFS tree rooted at a source vertex. Immutable.
class BfsTree {
 public:
  /// Builds T0 for (g, weights, source). Unreachable vertices get
  /// depth == kInfHops and take part in no tree structure.
  BfsTree(const Graph& g, const EdgeWeights& weights, Vertex source);

  /// Builds the canonical tree of the PUNCTURED graph G minus `bans` —
  /// the replacement tree T_{f} the dual-failure recursion roots its
  /// per-first-failure engines at. Every accessor then answers for the
  /// punctured graph (banned vertices are simply unreachable); `bans` is
  /// only read during construction.
  BfsTree(const Graph& g, const EdgeWeights& weights, Vertex source,
          const BfsBans& bans);

  /// Adopts an already-computed canonical label set and builds the derived
  /// tree machinery (children CSR, preorder intervals, tree-edge table) on
  /// top of it. `sp` must be exactly canonical_sp(g, weights, source, ·) of
  /// the graph the caller answers for — this is the seam the incremental
  /// punctured-tree rebase (rebase_punctured_tree in dist_sweep.hpp) plugs
  /// into instead of paying a full O(m) canonical BFS per first failure.
  BfsTree(const Graph& g, const EdgeWeights& weights, Vertex source,
          CanonicalSp sp);

  const Graph& graph() const { return *g_; }
  const EdgeWeights& weights() const { return *weights_; }
  Vertex source() const { return source_; }
  const CanonicalSp& sp() const { return sp_; }

  // ---- per-vertex -------------------------------------------------------
  std::int32_t depth(Vertex v) const { return sp_.hops[idx(v)]; }
  bool reachable(Vertex v) const { return sp_.reachable(v); }
  Vertex parent(Vertex v) const { return sp_.parent[idx(v)]; }
  EdgeId parent_edge(Vertex v) const { return sp_.parent_edge[idx(v)]; }
  std::span<const Vertex> children(Vertex v) const;
  std::int32_t subtree_size(Vertex v) const { return subtree_size_[idx(v)]; }
  /// Number of reachable vertices (== size of the tree incl. source).
  std::int32_t num_reachable() const { return num_reachable_; }

  // ---- tree edges -------------------------------------------------------
  bool is_tree_edge(EdgeId e) const { return lower_[eidx(e)] != kInvalidVertex; }
  /// All tree edges, ordered by the preorder index of their lower endpoint.
  const std::vector<EdgeId>& tree_edges() const { return tree_edges_; }
  /// Deeper (child-side) endpoint of a tree edge.
  Vertex lower_endpoint(EdgeId e) const {
    FTB_DCHECK(is_tree_edge(e));
    return lower_[eidx(e)];
  }
  Vertex upper_endpoint(EdgeId e) const {
    return parent(lower_endpoint(e));
  }
  /// The paper's dist(s,e): depth of the lower endpoint; the edge
  /// (u_{i}, u_{i+1}) of π(s,v) has edge_depth i+1.
  std::int32_t edge_depth(EdgeId e) const { return depth(lower_endpoint(e)); }

  // ---- ancestry ---------------------------------------------------------
  /// True iff `a` is an ancestor of `d` or a == d (both reachable).
  bool is_ancestor_or_equal(Vertex a, Vertex d) const {
    return tin_[idx(a)] <= tin_[idx(d)] && tout_[idx(d)] <= tout_[idx(a)];
  }
  /// True iff tree edge `e` lies on π(s,v)  (⇔ lower endpoint ≼ v).
  bool on_source_path(EdgeId e, Vertex v) const {
    return is_tree_edge(e) && is_ancestor_or_equal(lower_endpoint(e), v);
  }
  /// The paper's e ∼ e' relation: both edges lie on a common π(s,·), i.e.
  /// one lower endpoint is an ancestor-or-equal of the other.
  bool edges_related(EdgeId e1, EdgeId e2) const {
    const Vertex b = lower_endpoint(e1), d = lower_endpoint(e2);
    return is_ancestor_or_equal(b, d) || is_ancestor_or_equal(d, b);
  }

  std::int32_t tin(Vertex v) const { return tin_[idx(v)]; }
  std::int32_t tout(Vertex v) const { return tout_[idx(v)]; }

  /// Vertices of the subtree rooted at v — a contiguous preorder slice.
  std::span<const Vertex> subtree(Vertex v) const;

  /// The tree path [s, ..., v]. Precondition: reachable(v).
  std::vector<Vertex> path_from_source(Vertex v) const {
    return sp_.path_from_source(v);
  }

  /// Preorder sequence of reachable vertices (source first).
  std::span<const Vertex> preorder() const { return {preorder_}; }

  // ---- workspace seam ---------------------------------------------------
  // The DFS-order dual rebase (PuncturedWorkspace in dist_sweep.hpp) reuses
  // ONE tree object across many punctures: it patches the label set in
  // place, then rebuild_derived() restores every derived invariant with all
  // vector capacities retained — zero steady-state allocation. Between the
  // two calls the tree is NOT immutable; the workspace owns it exclusively
  // and nothing else may observe it in that window.

  /// Mutable access to the label set for in-place patching. Every accessor
  /// is stale until the next rebuild_derived().
  CanonicalSp& mutable_sp() { return sp_; }
  /// Recomputes everything derived from sp() (children CSR, preorder,
  /// tin/tout, subtree sizes, tree-edge table), reusing capacity.
  void rebuild_derived() { build_derived(); }

 private:
  static std::size_t idx(Vertex v) { return static_cast<std::size_t>(v); }
  static std::size_t eidx(EdgeId e) { return static_cast<std::size_t>(e); }

  /// Builds everything derived from sp_ (children CSR, preorder, tin/tout,
  /// subtree sizes, tree-edge table). Shared by all constructors.
  void build_derived();

  const Graph* g_;
  const EdgeWeights* weights_;
  Vertex source_;
  CanonicalSp sp_;

  // children in CSR form, sorted by id per parent
  std::vector<std::int64_t> child_offsets_;
  std::vector<Vertex> child_list_;

  std::vector<Vertex> preorder_;        // reachable vertices, preorder
  std::vector<std::int32_t> tin_, tout_;
  std::vector<std::int32_t> subtree_size_;
  std::vector<Vertex> lower_;           // per EdgeId: lower endpoint or invalid
  std::vector<EdgeId> tree_edges_;
  std::int32_t num_reachable_ = 0;

  // build_derived scratch, members so rebuild_derived() allocates nothing
  // in steady state.
  std::vector<std::int64_t> csr_cursor_;
  std::vector<std::pair<Vertex, std::size_t>> dfs_stack_;
};

}  // namespace ftb
