#include "src/graph/generators.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "src/util/rng.hpp"

namespace ftb::gen {

Graph path_graph(Vertex n) {
  FTB_CHECK(n >= 1);
  GraphBuilder b(n);
  for (Vertex i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return b.build();
}

Graph cycle_graph(Vertex n) {
  FTB_CHECK_MSG(n >= 3, "cycle needs >= 3 vertices");
  GraphBuilder b(n);
  for (Vertex i = 0; i < n; ++i) b.add_edge(i, (i + 1) % n);
  return b.build();
}

Graph star_graph(Vertex n) {
  FTB_CHECK(n >= 1);
  GraphBuilder b(n);
  for (Vertex i = 1; i < n; ++i) b.add_edge(0, i);
  return b.build();
}

Graph complete_graph(Vertex n) {
  FTB_CHECK(n >= 1);
  GraphBuilder b(n);
  for (Vertex i = 0; i < n; ++i)
    for (Vertex j = i + 1; j < n; ++j) b.add_edge(i, j);
  return b.build();
}

Graph complete_bipartite(Vertex a, Vertex b_count) {
  FTB_CHECK(a >= 1 && b_count >= 1);
  GraphBuilder b(a + b_count);
  for (Vertex i = 0; i < a; ++i)
    for (Vertex j = 0; j < b_count; ++j) b.add_edge(i, a + j);
  return b.build();
}

Graph grid_graph(Vertex rows, Vertex cols) {
  FTB_CHECK(rows >= 1 && cols >= 1);
  GraphBuilder b(rows * cols);
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

Graph binary_tree(Vertex n) {
  FTB_CHECK(n >= 1);
  GraphBuilder b(n);
  for (Vertex i = 1; i < n; ++i) b.add_edge((i - 1) / 2, i);
  return b.build();
}

Graph caterpillar(Vertex spine, Vertex legs) {
  FTB_CHECK(spine >= 1 && legs >= 0);
  const Vertex n = spine * (1 + legs);
  GraphBuilder b(n);
  for (Vertex i = 0; i + 1 < spine; ++i) b.add_edge(i, i + 1);
  Vertex next = spine;
  for (Vertex i = 0; i < spine; ++i)
    for (Vertex l = 0; l < legs; ++l) b.add_edge(i, next++);
  return b.build();
}

Graph erdos_renyi(Vertex n, double p, std::uint64_t seed) {
  FTB_CHECK(n >= 1 && p >= 0.0 && p <= 1.0);
  Rng rng(seed);
  GraphBuilder b(n);
  for (Vertex i = 0; i < n; ++i)
    for (Vertex j = i + 1; j < n; ++j)
      if (rng.next_bool(p)) b.add_edge(i, j);
  return b.build();
}

Graph gnm(Vertex n, std::int64_t m, std::uint64_t seed) {
  FTB_CHECK(n >= 1 && m >= 0);
  const std::int64_t max_m =
      static_cast<std::int64_t>(n) * (n - 1) / 2;
  m = std::min(m, max_m);
  Rng rng(seed);
  std::set<std::pair<Vertex, Vertex>> chosen;
  while (static_cast<std::int64_t>(chosen.size()) < m) {
    Vertex u = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
    Vertex v = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    chosen.emplace(u, v);
  }
  GraphBuilder b(n);
  for (const auto& [u, v] : chosen) b.add_edge(u, v);
  return b.build();
}

Graph random_connected(Vertex n, std::int64_t extra, std::uint64_t seed) {
  FTB_CHECK(n >= 1 && extra >= 0);
  Rng rng(seed);
  GraphBuilder b(n);
  // Random spanning tree: attach each vertex (in a random order) to a
  // uniformly random, already-attached vertex.
  std::vector<Vertex> order(static_cast<std::size_t>(n));
  for (Vertex i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  rng.shuffle(order);
  for (std::size_t i = 1; i < order.size(); ++i) {
    const Vertex u = order[i];
    const Vertex v = order[rng.next_below(i)];
    b.add_edge(u, v);
  }
  for (std::int64_t e = 0; e < extra; ++e) {
    Vertex u = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
    Vertex v = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u != v) b.add_edge(u, v);  // duplicates deduplicated at build()
  }
  return b.build();
}

namespace {

/// Core R-MAT sampler: drops `edges` recursive-matrix samples into `b`.
/// One quadrant descent per edge, noise on the partition at every level
/// (the standard smoothing that keeps the degree sequence from collapsing
/// onto powers of two). Self loops are resampled, duplicates coalesce at
/// build().
void rmat_edges_into(GraphBuilder& b, Vertex scale, std::int64_t edges,
                     Rng& rng) {
  constexpr double kA = 0.57, kB = 0.19, kC = 0.19;  // d = 0.05
  for (std::int64_t e = 0; e < edges; ++e) {
    Vertex u = 0, v = 0;
    for (Vertex level = 0; level < scale; ++level) {
      const double noise = 0.9 + 0.2 * rng.next_double();
      const double a = kA * noise, ab = a + kB * noise,
                   abc = ab + kC * noise;
      const double r = rng.next_double() * (abc + (1.0 - kA - kB - kC));
      u <<= 1;
      v <<= 1;
      if (r >= a) {
        if (r < ab) {
          v |= 1;
        } else if (r < abc) {
          u |= 1;
        } else {
          u |= 1;
          v |= 1;
        }
      }
    }
    if (u == v) {
      --e;  // resample self loops; the descent above is seed-deterministic
      continue;
    }
    b.add_edge(u, v);
  }
}

}  // namespace

Graph rmat(Vertex scale, std::int64_t edges, std::uint64_t seed) {
  FTB_CHECK_MSG(scale >= 1 && scale <= 30, "rmat scale out of range");
  FTB_CHECK(edges >= 0);
  Rng rng(seed);
  GraphBuilder b(static_cast<Vertex>(1) << scale);
  rmat_edges_into(b, scale, edges, rng);
  return b.build();
}

Graph rmat_connected(Vertex scale, std::int64_t edges, std::uint64_t seed) {
  FTB_CHECK_MSG(scale >= 1 && scale <= 30, "rmat scale out of range");
  FTB_CHECK(edges >= 0);
  Rng rng(seed);
  const Vertex n = static_cast<Vertex>(1) << scale;
  GraphBuilder b(n);
  // Random spanning tree first (same attach-order construction as
  // random_connected), then the R-MAT samples on top.
  std::vector<Vertex> order(static_cast<std::size_t>(n));
  for (Vertex i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  rng.shuffle(order);
  for (std::size_t i = 1; i < order.size(); ++i) {
    b.add_edge(order[i], order[rng.next_below(i)]);
  }
  rmat_edges_into(b, scale, edges, rng);
  return b.build();
}

Graph preferential_attachment(Vertex n, Vertex k, std::uint64_t seed) {
  FTB_CHECK(n >= 2 && k >= 1);
  Rng rng(seed);
  GraphBuilder b(n);
  // Repeated-endpoint list: sampling uniformly from it is degree-biased.
  std::vector<Vertex> pool;
  pool.push_back(0);
  for (Vertex v = 1; v < n; ++v) {
    const Vertex targets = std::min<Vertex>(k, v);
    std::set<Vertex> picked;
    while (static_cast<Vertex>(picked.size()) < targets) {
      const Vertex t = pool[rng.next_below(pool.size())];
      picked.insert(t);
    }
    for (const Vertex t : picked) {
      b.add_edge(v, t);
      pool.push_back(t);
      pool.push_back(v);
    }
  }
  return b.build();
}

Graph intro_example(Vertex n) {
  FTB_CHECK_MSG(n >= 3, "intro example needs >= 3 vertices");
  GraphBuilder b(n);
  b.add_edge(0, 1);  // the bridge s—clique
  for (Vertex i = 1; i < n; ++i)
    for (Vertex j = i + 1; j < n; ++j) b.add_edge(i, j);
  return b.build();
}


Graph hypercube(Vertex dimensions) {
  FTB_CHECK(dimensions >= 1 && dimensions <= 20);
  const Vertex n = static_cast<Vertex>(1) << dimensions;
  GraphBuilder b(n);
  for (Vertex v = 0; v < n; ++v) {
    for (Vertex bit = 0; bit < dimensions; ++bit) {
      const Vertex u = v ^ (static_cast<Vertex>(1) << bit);
      if (u > v) b.add_edge(v, u);
    }
  }
  return b.build();
}

Graph dumbbell(Vertex k, Vertex bridge) {
  FTB_CHECK(k >= 2 && bridge >= 1);
  const Vertex n = 2 * k + (bridge - 1);
  GraphBuilder b(n);
  // Left clique on [0, k), right clique on [k, 2k).
  for (Vertex i = 0; i < k; ++i)
    for (Vertex j = i + 1; j < k; ++j) {
      b.add_edge(i, j);
      b.add_edge(k + i, k + j);
    }
  // Bridge path from vertex 0 to vertex k through fresh interior vertices.
  Vertex prev = 0;
  for (Vertex step = 0; step + 1 < bridge; ++step) {
    const Vertex mid = 2 * k + step;
    b.add_edge(prev, mid);
    prev = mid;
  }
  b.add_edge(prev, k);
  return b.build();
}

Graph theta_graph(Vertex paths, Vertex len) {
  FTB_CHECK(paths >= 2 && len >= 2);
  const Vertex n = 2 + paths * (len - 1);
  GraphBuilder b(n);
  Vertex next = 2;  // 0 and 1 are the hubs
  for (Vertex p = 0; p < paths; ++p) {
    Vertex prev = 0;
    for (Vertex step = 0; step + 1 < len; ++step) {
      b.add_edge(prev, next);
      prev = next++;
    }
    b.add_edge(prev, 1);
  }
  return b.build();
}

Graph lollipop(Vertex k, Vertex tail) {
  FTB_CHECK(k >= 2 && tail >= 1);
  const Vertex n = k + tail;
  GraphBuilder b(n);
  for (Vertex i = 0; i < k; ++i)
    for (Vertex j = i + 1; j < k; ++j) b.add_edge(i, j);
  Vertex prev = k - 1;
  for (Vertex step = 0; step < tail; ++step) {
    b.add_edge(prev, k + step);
    prev = k + step;
  }
  return b.build();
}

}  // namespace ftb::gen
