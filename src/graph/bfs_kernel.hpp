// bfs_kernel.hpp — the direction-optimizing BFS kernel and its
// zero-allocation scratch arenas.
//
// The replacement-path preprocessing performs Θ(n) full traversals per
// construction (one BFS of G\{e} per tree edge, one off-path canonical BFS
// per vertex). Two properties of that workload shape this kernel:
//
//  1. *Traversal cost.* A queue-based ("top-down") BFS touches every arc of
//     every frontier vertex. On low-diameter graphs most of those arcs lead
//     to already-visited vertices. The kernel therefore switches per level
//     between the classic top-down sliding queue and a "bottom-up" pass
//     (Beamer et al., SC'12): scan the *unvisited* vertices and let each one
//     claim the first frontier neighbor in its sorted adjacency, stopping at
//     the first hit. The switch uses the standard alpha/beta scout-count
//     heuristic on the frontier's out-degree sum.
//
//  2. *Per-call overhead.* The naive implementation pays four O(n)
//     `assign(n, …)` clears plus their allocations on every call — more than
//     the traversal itself once the sweep is hot. BfsScratch keeps dist /
//     parent / parent_edge / order / frontier-bitmap buffers alive across
//     calls and marks visited vertices with an epoch stamp, so a steady-state
//     call allocates nothing and clears nothing.
//
// Determinism contract (what every caller, test and structure proof relies
// on; both directions and the reference implementation produce bit-identical
// results):
//   * dist[v]   — hop distance, mode-independent by construction;
//   * order     — the source, then each level's vertices ascending by id;
//   * parent[v] — the minimum-id admissible neighbor of v in the previous
//                 level, parent_edge[v] the connecting edge. (Top-down
//                 realizes this by expanding the level-sorted frontier in
//                 order — the first discoverer is the minimum; bottom-up by
//                 taking the first admissible hit in the sorted adjacency.)
//
// canonical_sp_run is the fused single-pass variant of canonical_sp: the
// (hops, Σw)-relaxation happens inside the level expansion instead of a
// second O(m) sweep, with the same (wsum, parent id, edge id) tie-breaking
// as the two-pass reference. It is top-down only — the canonical rule needs
// *all* admissible predecessors of a vertex, so the bottom-up early exit
// does not apply.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/canonical_bfs.hpp"
#include "src/graph/graph.hpp"

namespace ftb {

/// Per-run counters (cheap; maintained unconditionally).
struct BfsKernelStats {
  std::int32_t levels = 0;
  std::int32_t top_down_levels = 0;
  std::int32_t bottom_up_levels = 0;
};

/// Direction-switch policy. The defaults follow Beamer et al.: go bottom-up
/// when the frontier's out-degree sum exceeds 1/alpha of the unexplored
/// arcs; return top-down when the frontier shrinks below n/beta vertices.
struct BfsKernelConfig {
  double alpha = 15.0;
  double beta = 18.0;
  enum class Mode { kAuto, kTopDown, kBottomUp };
  Mode mode = Mode::kAuto;  // force a direction (tests / ablation)
};

class CanonicalSpScratch;

/// Reusable per-thread arena for bfs_run. Results are readable until the
/// next run on the same scratch; a steady-state run allocates nothing.
class BfsScratch {
 public:
  bool visited(Vertex v) const {
    return stamp_[static_cast<std::size_t>(v)] == epoch_;
  }
  std::int32_t dist(Vertex v) const {
    return visited(v) ? dist_[static_cast<std::size_t>(v)] : kInfHops;
  }
  Vertex parent(Vertex v) const {
    return visited(v) ? parent_[static_cast<std::size_t>(v)] : kInvalidVertex;
  }
  EdgeId parent_edge(Vertex v) const {
    return visited(v) ? parent_edge_[static_cast<std::size_t>(v)]
                      : kInvalidEdge;
  }
  /// Visited vertices: source first, then level by level ascending by id.
  std::span<const Vertex> order() const { return order_; }

  const BfsKernelStats& stats() const { return stats_; }

  /// Test hook: fast-forward the epoch counter to just before wraparound so
  /// the wrap path (full stamp reset) can be exercised.
  void debug_set_epoch_near_wrap();

 private:
  friend void bfs_run(const Graph&, Vertex, const BfsBans&, BfsScratch&,
                      const BfsKernelConfig&);
  friend void canonical_sp_run(const Graph&, const EdgeWeights&, Vertex,
                               const BfsBans&, CanonicalSpScratch&,
                               std::int32_t);
  friend class CanonicalSpScratch;

  /// Bumps the epoch and (re)sizes the arrays; O(1) steady-state.
  void prepare(std::size_t n);
  /// Rewrites the freshly discovered segment [next_begin, order_.size())
  /// into ascending id order and clears its front_bits_ marks. Uses a
  /// bitmap scan for large segments, std::sort for small ones.
  void finalize_level_segment(std::size_t next_begin, std::size_t n);
  void mark(Vertex v, std::int32_t d, Vertex p, EdgeId pe) {
    const std::size_t i = static_cast<std::size_t>(v);
    stamp_[i] = epoch_;
    dist_[i] = d;
    parent_[i] = p;
    parent_edge_[i] = pe;
  }

  std::vector<std::uint32_t> stamp_;  // visited iff stamp_[v] == epoch_
  std::uint32_t epoch_ = 0;
  std::vector<std::int32_t> dist_;
  std::vector<Vertex> parent_;
  std::vector<EdgeId> parent_edge_;
  std::vector<Vertex> order_;
  std::vector<std::uint64_t> front_bits_;  // frontier bitmap (bottom-up)
  BfsKernelStats stats_;
};

/// Direction-optimizing BFS from `src` in G minus `bans`, writing into
/// `scratch`. See the determinism contract in the file comment.
void bfs_run(const Graph& g, Vertex src, const BfsBans& bans,
             BfsScratch& scratch, const BfsKernelConfig& cfg = {});

/// Reusable arena for canonical_sp_run. Accessors mirror CanonicalSp but
/// read straight from the arena (wsum/first_hop are valid only where
/// reachable, exactly like the materialized struct).
class CanonicalSpScratch {
 public:
  bool reachable(Vertex v) const { return bfs_.visited(v); }
  std::int32_t hops(Vertex v) const { return bfs_.dist(v); }
  std::uint64_t wsum(Vertex v) const {
    return wsum_[static_cast<std::size_t>(v)];
  }
  Vertex parent(Vertex v) const { return bfs_.parent(v); }
  EdgeId parent_edge(Vertex v) const { return bfs_.parent_edge(v); }
  Vertex first_hop(Vertex v) const {
    return first_hop_[static_cast<std::size_t>(v)];
  }
  /// Reachable vertices: source first, then level by level ascending by id.
  std::span<const Vertex> order() const { return bfs_.order(); }

 private:
  friend void canonical_sp_run(const Graph&, const EdgeWeights&, Vertex,
                               const BfsBans&, CanonicalSpScratch&,
                               std::int32_t);

  BfsScratch bfs_;
  std::vector<std::uint64_t> wsum_;
  std::vector<Vertex> first_hop_;
};

/// Method-style views over the two canonical-SP realizations, so consumers
/// (the replacement engines) can share one generic body for the reference
/// and the scratch-kernel paths.
struct CanonicalSpRefView {
  const CanonicalSp* sp;
  bool reachable(Vertex v) const { return sp->reachable(v); }
  std::int32_t hops(Vertex v) const {
    return sp->hops[static_cast<std::size_t>(v)];
  }
  std::uint64_t wsum(Vertex v) const {
    return sp->wsum[static_cast<std::size_t>(v)];
  }
  Vertex parent(Vertex v) const {
    return sp->parent[static_cast<std::size_t>(v)];
  }
  EdgeId parent_edge(Vertex v) const {
    return sp->parent_edge[static_cast<std::size_t>(v)];
  }
  Vertex first_hop(Vertex v) const {
    return sp->first_hop[static_cast<std::size_t>(v)];
  }
};

struct CanonicalSpScratchView {
  const CanonicalSpScratch* sp;
  bool reachable(Vertex v) const { return sp->reachable(v); }
  std::int32_t hops(Vertex v) const { return sp->hops(v); }
  std::uint64_t wsum(Vertex v) const { return sp->wsum(v); }
  Vertex parent(Vertex v) const { return sp->parent(v); }
  EdgeId parent_edge(Vertex v) const { return sp->parent_edge(v); }
  Vertex first_hop(Vertex v) const { return sp->first_hop(v); }
};

/// Fused single-pass canonical ((hops, Σw)-lexicographic) shortest paths,
/// bit-identical to canonical_sp() but with zero steady-state allocations
/// and one arc sweep instead of two.
///
/// `depth_limit` truncates the traversal: labels (hops, wsum, parent,
/// parent_edge, first_hop) are complete and reference-identical for every
/// vertex with hops ≤ depth_limit; deeper vertices stay unreached. The
/// replacement engines cap at max_rep_dist − 1 — a detour label beyond that
/// can never be consumed (any candidate using one would need
/// j + hops > max_rep_dist, which no failing edge matches).
void canonical_sp_run(const Graph& g, const EdgeWeights& weights, Vertex src,
                      const BfsBans& bans, CanonicalSpScratch& scratch,
                      std::int32_t depth_limit = kInfHops);

}  // namespace ftb
