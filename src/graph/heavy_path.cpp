#include "src/graph/heavy_path.hpp"

#include <algorithm>

namespace ftb {

HeavyPathDecomposition::HeavyPathDecomposition(const BfsTree& tree)
    : tree_(&tree) {
  const std::size_t n = static_cast<std::size_t>(tree.graph().num_vertices());
  const std::size_t m = static_cast<std::size_t>(tree.graph().num_edges());
  path_of_.assign(n, -1);
  pos_in_path_.assign(n, -1);
  is_path_edge_.assign(m, 0);

  if (tree.num_reachable() == 0) return;

  // Iterative recursion: stack of (subtree root, level).
  std::vector<std::pair<Vertex, std::int32_t>> stack;
  stack.emplace_back(tree.source(), 0);
  while (!stack.empty()) {
    const auto [root, level] = stack.back();
    stack.pop_back();
    levels_ = std::max(levels_, level + 1);

    HeavyPath hp;
    hp.id = static_cast<std::int32_t>(paths_.size());
    hp.level = level;

    // Walk the heavy path: always descend into the child with the largest
    // subtree (ties: smaller vertex id, which is the first one met since
    // children are id-sorted). All skipped children become hanging
    // subtrees, pushed for the next level.
    Vertex u = root;
    for (;;) {
      hp.vertices.push_back(u);
      path_of_[static_cast<std::size_t>(u)] = hp.id;
      pos_in_path_[static_cast<std::size_t>(u)] =
          static_cast<std::int32_t>(hp.vertices.size()) - 1;

      const auto kids = tree.children(u);
      if (kids.empty()) break;
      Vertex heavy = kids[0];
      for (const Vertex c : kids) {
        if (tree.subtree_size(c) > tree.subtree_size(heavy)) heavy = c;
      }
      for (const Vertex c : kids) {
        if (c != heavy) stack.emplace_back(c, level + 1);
      }
      const EdgeId pe = tree.parent_edge(heavy);
      hp.edges.push_back(pe);
      is_path_edge_[static_cast<std::size_t>(pe)] = 1;
      u = heavy;
    }
    paths_.push_back(std::move(hp));
  }

  glue_edges_.clear();
  for (const EdgeId e : tree.tree_edges()) {
    if (!is_path_edge_[static_cast<std::size_t>(e)]) glue_edges_.push_back(e);
  }
}

std::vector<HeavyPathDecomposition::Crossing>
HeavyPathDecomposition::crossings(Vertex v) const {
  FTB_CHECK_MSG(tree_->reachable(v), "crossings() on unreachable vertex");
  std::vector<Crossing> out;
  Vertex u = v;
  for (;;) {
    const std::int32_t p = path_of(u);
    out.push_back(Crossing{p, pos_in_path(u)});
    const Vertex head = paths_[static_cast<std::size_t>(p)].vertices.front();
    const Vertex above = tree_->parent(head);
    if (above == kInvalidVertex) break;
    u = above;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace ftb
