#include "src/graph/bfs_kernel.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>

namespace ftb {

namespace {

inline bool test_bit(const std::vector<std::uint64_t>& bits, Vertex v) {
  return (bits[static_cast<std::size_t>(v) >> 6] >>
          (static_cast<std::size_t>(v) & 63)) &
         1u;
}

inline void set_bit(std::vector<std::uint64_t>& bits, Vertex v) {
  bits[static_cast<std::size_t>(v) >> 6] |=
      std::uint64_t{1} << (static_cast<std::size_t>(v) & 63);
}

inline void clear_bit(std::vector<std::uint64_t>& bits, Vertex v) {
  bits[static_cast<std::size_t>(v) >> 6] &=
      ~(std::uint64_t{1} << (static_cast<std::size_t>(v) & 63));
}

}  // namespace

void BfsScratch::finalize_level_segment(std::size_t next_begin,
                                        std::size_t n) {
  const std::size_t f = order_.size() - next_begin;
  if (f == 0) return;
  // Bitmap extraction costs O(n/64 + f); sorting costs O(f log f). Large
  // fractions of n go through the bitmap, sparse deep levels through sort
  // (so path-like graphs never pay the full-bitmap scan per level).
  if (f >= 8 && f * 256 >= n) {
    std::size_t pos = next_begin;
    for (std::size_t w = 0; w < front_bits_.size(); ++w) {
      std::uint64_t bits = front_bits_[w];
      if (bits == 0) continue;
      front_bits_[w] = 0;
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        order_[pos++] = static_cast<Vertex>(w * 64 + static_cast<std::size_t>(b));
      }
      if (pos == order_.size()) break;
    }
    FTB_DCHECK(pos == order_.size());
  } else {
    std::sort(order_.begin() + static_cast<std::ptrdiff_t>(next_begin),
              order_.end());
    for (std::size_t i = next_begin; i < order_.size(); ++i) {
      clear_bit(front_bits_, order_[i]);
    }
  }
}

void BfsScratch::prepare(std::size_t n) {
  if (stamp_.size() < n) {
    stamp_.assign(n, 0);
    dist_.resize(n);
    parent_.resize(n);
    parent_edge_.resize(n);
    front_bits_.resize((n + 63) / 64);
    epoch_ = 0;
  }
  if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 0;
  }
  ++epoch_;
  order_.clear();
  stats_ = BfsKernelStats{};
}

void BfsScratch::debug_set_epoch_near_wrap() {
  epoch_ = std::numeric_limits<std::uint32_t>::max() - 1;
  // Invalidate stale stamps that could collide with the fast-forwarded
  // epoch; real code never jumps, so this is test-only.
  std::fill(stamp_.begin(), stamp_.end(), 0);
}

void bfs_run(const Graph& g, Vertex src, const BfsBans& bans,
             BfsScratch& s, const BfsKernelConfig& cfg) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  FTB_CHECK(g.valid_vertex(src));
  FTB_CHECK_MSG(!bans.vertex_banned(src), "source is banned");
  s.prepare(n);

  s.mark(src, 0, kInvalidVertex, kInvalidEdge);
  s.order_.push_back(src);

  // Scouting state for the alpha/beta switch: arcs out of the current
  // frontier vs arcs out of still-unvisited vertices (both counts treat
  // bans as ordinary arcs — the heuristic only picks a direction, never
  // changes the result).
  std::int64_t unexplored_arcs =
      2 * static_cast<std::int64_t>(g.num_edges()) - g.degree(src);
  std::int64_t frontier_arcs = g.degree(src);

  std::size_t level_begin = 0;
  std::size_t level_end = 1;
  std::int32_t level = 0;

  while (level_begin < level_end) {
    bool bottom_up;
    switch (cfg.mode) {
      case BfsKernelConfig::Mode::kTopDown:
        bottom_up = false;
        break;
      case BfsKernelConfig::Mode::kBottomUp:
        bottom_up = true;
        break;
      default:
        bottom_up =
            static_cast<double>(frontier_arcs) * cfg.alpha >
                static_cast<double>(unexplored_arcs) &&
            static_cast<double>(level_end - level_begin) * cfg.beta >
                static_cast<double>(n);
        break;
    }

    const std::size_t next_begin = level_end;
    std::int64_t next_arcs = 0;

    if (bottom_up) {
      ++s.stats_.bottom_up_levels;
      std::memset(s.front_bits_.data(), 0,
                  s.front_bits_.size() * sizeof(std::uint64_t));
      for (std::size_t i = level_begin; i < level_end; ++i) {
        set_bit(s.front_bits_, s.order_[i]);
      }
      for (Vertex v = 0; v < static_cast<Vertex>(n); ++v) {
        if (s.visited(v)) continue;
        if (bans.vertex_banned(v)) continue;
        for (const Arc& a : g.neighbors(v)) {
          if (!test_bit(s.front_bits_, a.to)) continue;
          if (bans.edge_banned(a.edge)) continue;
          // First admissible frontier neighbor in sorted adjacency ==
          // minimum-id parent: the determinism contract.
          s.mark(v, level + 1, a.to, a.edge);
          s.order_.push_back(v);
          next_arcs += g.degree(v);
          break;
        }
      }
      // Ascending by construction — no reordering needed. Restore the
      // all-zero bitmap invariant the top-down path relies on.
      std::memset(s.front_bits_.data(), 0,
                  s.front_bits_.size() * sizeof(std::uint64_t));
    } else {
      ++s.stats_.top_down_levels;
      for (std::size_t i = level_begin; i < level_end; ++i) {
        const Vertex u = s.order_[i];
        for (const Arc& a : g.neighbors(u)) {
          if (s.visited(a.to)) continue;
          if (bans.edge_banned(a.edge)) continue;
          if (bans.vertex_banned(a.to)) continue;
          s.mark(a.to, level + 1, u, a.edge);
          s.order_.push_back(a.to);
          set_bit(s.front_bits_, a.to);
          next_arcs += g.degree(a.to);
        }
      }
      // The level-sorted order (and with it the minimum-id parent rule on
      // the *next* expansion) requires reordering each discovered segment.
      s.finalize_level_segment(next_begin, n);
    }

    unexplored_arcs -= next_arcs;
    frontier_arcs = next_arcs;
    level_begin = next_begin;
    level_end = s.order_.size();
    ++level;
    ++s.stats_.levels;
  }
  // The final (empty-producing) iteration also counted: levels == number of
  // expansion passes, i.e. eccentricity + 1 of the reached region.
}

void canonical_sp_run(const Graph& g, const EdgeWeights& weights, Vertex src,
                      const BfsBans& bans, CanonicalSpScratch& sp,
                      std::int32_t depth_limit) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  FTB_CHECK(g.valid_vertex(src));
  FTB_CHECK_MSG(!bans.vertex_banned(src), "source is banned");
  FTB_CHECK_MSG(weights.w.size() == static_cast<std::size_t>(g.num_edges()),
                "weight table size mismatch");
  BfsScratch& s = sp.bfs_;
  s.prepare(n);
  if (sp.wsum_.size() < n) {
    sp.wsum_.resize(n);
    sp.first_hop_.resize(n);
  }

  s.mark(src, 0, kInvalidVertex, kInvalidEdge);
  sp.wsum_[static_cast<std::size_t>(src)] = 0;
  sp.first_hop_[static_cast<std::size_t>(src)] = kInvalidVertex;
  s.order_.push_back(src);

  std::size_t level_begin = 0;
  std::size_t level_end = 1;
  std::int32_t level = 0;

  while (level_begin < level_end && level < depth_limit) {
    ++s.stats_.levels;
    ++s.stats_.top_down_levels;
    const std::size_t next_begin = level_end;
    // Expanding the level-sorted frontier in ascending order makes the
    // canonical candidates of each next-level vertex arrive with strictly
    // increasing predecessor id, so keeping the first strict wsum minimum
    // reproduces the reference (wsum, parent id, edge id) tie-break.
    for (std::size_t i = level_begin; i < level_end; ++i) {
      const Vertex u = s.order_[i];
      const std::uint64_t wu = sp.wsum_[static_cast<std::size_t>(u)];
      for (const Arc& a : g.neighbors(u)) {
        if (bans.edge_banned(a.edge)) continue;
        const Vertex v = a.to;
        const std::size_t vi = static_cast<std::size_t>(v);
        if (s.visited(v)) {
          if (s.dist_[vi] == level + 1) {
            const std::uint64_t cand = wu + weights[a.edge];
            if (cand < sp.wsum_[vi]) {
              sp.wsum_[vi] = cand;
              s.parent_[vi] = u;
              s.parent_edge_[vi] = a.edge;
            }
          }
          continue;
        }
        if (bans.vertex_banned(v)) continue;
        s.mark(v, level + 1, u, a.edge);
        sp.wsum_[vi] = wu + weights[a.edge];
        s.order_.push_back(v);
        set_bit(s.front_bits_, v);
      }
    }
    s.finalize_level_segment(next_begin, n);
    // Finalize first_hop once the level's parents can no longer change.
    for (std::size_t i = next_begin; i < s.order_.size(); ++i) {
      const std::size_t vi = static_cast<std::size_t>(s.order_[i]);
      const Vertex p = s.parent_[vi];
      sp.first_hop_[vi] = (p == src)
                              ? s.order_[i]
                              : sp.first_hop_[static_cast<std::size_t>(p)];
    }
    level_begin = next_begin;
    level_end = s.order_.size();
    ++level;
  }
}

}  // namespace ftb
