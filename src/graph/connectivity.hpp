// connectivity.hpp — bridges, articulation points, components (Tarjan).
//
// The failure model makes these first-class objects: a *bridge* is exactly
// an edge whose failure disconnects part of the graph (the engine's
// "infinite pairs"), and an *articulation point* is a vertex whose failure
// does. The tests cross-validate both engines against this module, and the
// failure simulator uses it to predict expected disconnections.
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.hpp"

namespace ftb {

struct ConnectivityReport {
  /// Edges whose removal increases the number of components, ascending ids.
  std::vector<EdgeId> bridges;
  /// Vertices whose removal increases the number of components, ascending.
  std::vector<Vertex> cut_vertices;
  /// Number of connected components of G.
  std::int32_t num_components = 0;
  /// Per-vertex component label in [0, num_components).
  std::vector<std::int32_t> component;

  bool is_bridge(EdgeId e) const {
    return bridge_mask_[static_cast<std::size_t>(e)] != 0;
  }
  bool is_cut_vertex(Vertex v) const {
    return cut_mask_[static_cast<std::size_t>(v)] != 0;
  }

  // filled by analyze_connectivity
  std::vector<std::uint8_t> bridge_mask_;
  std::vector<std::uint8_t> cut_mask_;
};

/// O(n + m) DFS lowlink computation (iterative; deep graphs safe).
ConnectivityReport analyze_connectivity(const Graph& g);

/// Per-vertex component labels in [0, #components), via the BFS kernel
/// (one scratch-arena traversal per component; labels match
/// analyze_connectivity().component). O(n + m).
std::vector<std::int32_t> component_labels(const Graph& g);

/// True iff G is connected (n ≤ 1 counts as connected). O(n + m).
bool is_connected(const Graph& g);

}  // namespace ftb
