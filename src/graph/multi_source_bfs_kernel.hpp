// multi_source_bfs_kernel.hpp — the bit-parallel multi-source BFS kernel
// and its epoch-stamped lane scratch.
//
// The FT-MBFS union, the multi-source facade pipelines, and the dual-failure
// punctured rebuilds all run σ independent BFS traversals whose frontiers
// overlap heavily. This kernel fuses them (MS-BFS, Then et al., VLDB'14 /
// the masked-SpMV idiom): each vertex carries a σ-wide frontier bitset —
// one uint64_t lane word for σ ≤ 64, ⌈σ/64⌉ striped words beyond — and one
// level-synchronous sweep over the CSR advances every lane at once, so up
// to 64 sources pay a single pass over the adjacency arrays.
//
// Determinism contract: per lane, the extracted (dist, parent, parent_edge,
// order) labels are bit-identical to a scalar bfs_run of that lane's
// (source, bans). The scalar rule — order lists the source then each
// level's vertices ascending by id; parent[v] is the minimum-id admissible
// neighbor of v in the previous level — is preserved because every lane's
// source sits at level 0 (so all lanes share the global level counter), the
// fused frontier is expanded in ascending vertex order, and a lane claims a
// vertex on the first admissible arc that reaches it: the minimum-id
// previous-level neighbor of that lane.
//
// Bans are honored per lane (bans differ per punctured run): the scalar
// bans of each lane (banned_edge / banned_edge2 / banned_vertex_one) are
// compiled into σ-wide mask words keyed by edge/vertex, and the rare
// pointer-mask bans fall back to a per-lane check on the claiming arc.
//
// Like BfsScratch, the kernel is an epoch-stamped arena: per-vertex lane
// words are validated by stamp_[v] == epoch_ and lazily zeroed on first
// touch, so a steady-state run allocates nothing. It is default-
// constructible and reusable, i.e. FreeListPool-compatible — a process-wide
// pool (multi_source_kernel_pool) keeps warm kernels circulating.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/graph/bfs_kernel.hpp"
#include "src/graph/canonical_bfs.hpp"
#include "src/graph/graph.hpp"
#include "src/util/free_list_pool.hpp"

namespace ftb {

/// One lane of a fused run: the (source, bans) pair the equivalent scalar
/// bfs_run would have been called with. Lanes may share a source (the dual
/// pipeline batches same-source punctured runs with different bans).
struct BfsLane {
  Vertex source = kInvalidVertex;
  BfsBans bans;
};

class MultiSourceBfsKernel {
 public:
  /// Fused level-synchronous sweep over all lanes. Results are readable
  /// until the next run on the same kernel; a steady-state run allocates
  /// nothing. Checks per lane that the source is valid and not banned in
  /// its own lane (same contract as bfs_run).
  void run(const Graph& g, std::span<const BfsLane> lanes);

  std::size_t num_lanes() const { return num_lanes_; }

  /// Per-lane accessors, mirroring BfsScratch.
  bool visited(std::size_t lane, Vertex v) const {
    const std::size_t vi = static_cast<std::size_t>(v);
    return stamp_[vi] == epoch_ &&
           ((visited_[vi * words_ + (lane >> 6)] >> (lane & 63)) & 1u) != 0;
  }
  std::int32_t dist(std::size_t lane, Vertex v) const {
    return visited(lane, v) ? dist_[static_cast<std::size_t>(v) * num_lanes_ + lane]
                            : kInfHops;
  }
  Vertex parent(std::size_t lane, Vertex v) const {
    return visited(lane, v) ? parent_[static_cast<std::size_t>(v) * num_lanes_ + lane]
                            : kInvalidVertex;
  }
  EdgeId parent_edge(std::size_t lane, Vertex v) const {
    return visited(lane, v)
               ? parent_edge_[static_cast<std::size_t>(v) * num_lanes_ + lane]
               : kInvalidEdge;
  }
  /// Lane's visited vertices: source first, then level by level ascending
  /// by id — bit-identical to the scalar kernel's order.
  std::span<const Vertex> order(std::size_t lane) const {
    return order_[lane];
  }

  const BfsKernelStats& stats() const { return stats_; }

  /// Test hook: fast-forward the epoch counter to just before wraparound so
  /// the wrap path (full stamp reset) can be exercised.
  void debug_set_epoch_near_wrap();

 private:
  /// Bumps the epoch and (re)sizes the per-vertex/per-lane arrays;
  /// O(σ) steady-state.
  void prepare(std::size_t n, std::size_t sigma);
  /// Lazily zeroes v's visited words on first touch this epoch. front_ and
  /// next_ need no stamp: they hold an all-zero-between-runs invariant (the
  /// consume/commit phases zero exactly what a run sets), so the hot loops
  /// read them unguarded.
  void touch(std::size_t vi) {
    if (stamp_[vi] == epoch_) return;
    stamp_[vi] = epoch_;
    const std::size_t base = vi * words_;
    for (std::size_t w = 0; w < words_; ++w) visited_[base + w] = 0;
  }
  /// Compiles the lanes' bans into σ-wide mask words.
  void build_ban_tables(std::span<const BfsLane> lanes);
  /// σ-wide ban mask for edge e / vertex v, or nullptr when no lane bans it.
  const std::uint64_t* edge_ban_words(EdgeId e) const {
    const auto it = edge_ban_.find(e);
    return it == edge_ban_.end() ? nullptr : ban_words_.data() + it->second;
  }
  const std::uint64_t* vertex_ban_words(Vertex v) const {
    const auto it = vertex_ban_.find(v);
    return it == vertex_ban_.end() ? nullptr : ban_words_.data() + it->second;
  }

  std::size_t n_ = 0;          // vertices of the last run
  std::size_t num_lanes_ = 0;  // σ of the last run
  std::size_t words_ = 0;      // ⌈σ/64⌉ lane words per vertex

  std::vector<std::uint32_t> stamp_;  // lane words valid iff == epoch_
  std::uint32_t epoch_ = 0;
  std::vector<std::uint64_t> visited_;  // [v * words_ + w]
  std::vector<std::uint64_t> front_;    // current level's frontier bits
  std::vector<std::uint64_t> next_;     // next level's claims
  std::vector<Vertex> cur_list_;        // vertices with any front_ bit
  std::vector<Vertex> next_list_;       // vertices with any next_ bit
  std::vector<std::uint64_t> need_;     // bottom-up: lanes still wanting v

  // Vertex-major labels (all lanes of a vertex share cache lines — claims
  // cluster by vertex), valid only where the visited bit is set.
  std::vector<std::int32_t> dist_;    // [v * num_lanes_ + lane]
  std::vector<Vertex> parent_;        // [v * num_lanes_ + lane]
  std::vector<EdgeId> parent_edge_;   // [v * num_lanes_ + lane]
  std::vector<std::vector<Vertex>> order_;

  // Compiled per-lane bans: scalar bans become σ-wide mask words keyed by
  // edge/vertex; pointer-mask bans (rare) are checked per claiming arc.
  struct PtrBanLane {
    std::size_t word;
    std::uint64_t bit;
    const std::vector<std::uint8_t>* edge_mask;    // may be null
    const std::vector<std::uint8_t>* vertex_mask;  // may be null
  };
  std::unordered_map<EdgeId, std::size_t> edge_ban_;     // -> ban_words_ off
  std::unordered_map<Vertex, std::size_t> vertex_ban_;   // -> ban_words_ off
  std::vector<std::uint64_t> ban_words_;
  std::vector<PtrBanLane> ptr_bans_;
  bool has_edge_bans_ = false;
  bool has_vertex_bans_ = false;

  BfsKernelStats stats_;
};

/// Fused multi-source canonical shortest paths: one bit-parallel hop sweep
/// over all lanes, then the shared canonical parent rule
/// (pick_canonical_parent) replayed per lane in layer order. Element i is
/// bit-identical to canonical_sp(g, weights, lanes[i].source,
/// lanes[i].bans) — the fusion seam the multi-source pipelines build their
/// trees from.
std::vector<CanonicalSp> ms_canonical_sp(const Graph& g,
                                         const EdgeWeights& weights,
                                         std::span<const BfsLane> lanes,
                                         MultiSourceBfsKernel& kernel);

/// Same, leasing a kernel from the process-wide pool.
std::vector<CanonicalSp> ms_canonical_sp(const Graph& g,
                                         const EdgeWeights& weights,
                                         std::span<const BfsLane> lanes);

/// Process-wide pool of warm kernels (lock-free; see free_list_pool.hpp).
const FreeListPool<MultiSourceBfsKernel>& multi_source_kernel_pool();

using MsKernelLease = PoolLease<MultiSourceBfsKernel>;

}  // namespace ftb
