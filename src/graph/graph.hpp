// graph.hpp — the undirected simple-graph substrate everything runs on.
//
// Design notes
// ------------
// * Vertices are dense ids `0..n-1`; edges are dense ids `0..m-1` with a
//   canonical (min,max) endpoint pair. The CSR arcs store (neighbor, edge id)
//   so algorithms can ban edges by id in O(1) while scanning adjacencies.
// * The graph is immutable after construction (see GraphBuilder). Algorithms
//   that need "G minus something" take banned-vertex / banned-edge masks
//   instead of materializing subgraphs — this is what makes the O(n·m)
//   replacement-path sweeps cheap.
// * Arcs are sorted by neighbor id per vertex, giving deterministic
//   iteration order and O(log deg) edge lookup.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/util/check.hpp"

namespace ftb {

using Vertex = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr Vertex kInvalidVertex = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// Hop-distance "infinity": large enough to never be reached, small enough
/// that `kInfHops + n` does not overflow int32.
inline constexpr std::int32_t kInfHops = (1 << 29);

/// One directed arc of the CSR: `to` is the neighbor, `edge` the undirected
/// edge id shared by the twin arc.
struct Arc {
  Vertex to;
  EdgeId edge;
};

/// Immutable undirected simple graph in CSR form. Build with GraphBuilder.
class Graph {
 public:
  Graph() = default;

  Vertex num_vertices() const { return static_cast<Vertex>(offsets_.size()) - 1; }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

  /// All arcs out of `v`, sorted by neighbor id.
  std::span<const Arc> neighbors(Vertex v) const {
    FTB_DCHECK(valid_vertex(v));
    return {arcs_.data() + offsets_[v],
            arcs_.data() + offsets_[static_cast<std::size_t>(v) + 1]};
  }

  std::int32_t degree(Vertex v) const {
    FTB_DCHECK(valid_vertex(v));
    return static_cast<std::int32_t>(offsets_[static_cast<std::size_t>(v) + 1] -
                                     offsets_[v]);
  }

  /// Canonical endpoints (u < v) of edge `e`.
  std::pair<Vertex, Vertex> edge(EdgeId e) const {
    FTB_DCHECK(valid_edge(e));
    return edges_[e];
  }

  /// The endpoint of `e` that is not `v`. Precondition: `v` is an endpoint.
  Vertex other_endpoint(EdgeId e, Vertex v) const {
    const auto [a, b] = edge(e);
    FTB_DCHECK(v == a || v == b);
    return v == a ? b : a;
  }

  bool is_endpoint(EdgeId e, Vertex v) const {
    const auto [a, b] = edge(e);
    return v == a || v == b;
  }

  /// Edge id joining u and v, or kInvalidEdge. O(log deg(u)).
  EdgeId find_edge(Vertex u, Vertex v) const;

  bool has_edge(Vertex u, Vertex v) const {
    return find_edge(u, v) != kInvalidEdge;
  }

  bool valid_vertex(Vertex v) const { return v >= 0 && v < num_vertices(); }
  bool valid_edge(EdgeId e) const { return e >= 0 && e < num_edges(); }

  /// Total memory footprint estimate in bytes (for bench reporting).
  std::size_t memory_bytes() const;

  /// Human-readable one-liner, e.g. "Graph(n=1024, m=8192)".
  std::string summary() const;

 private:
  friend class GraphBuilder;

  std::vector<std::int64_t> offsets_;               // n+1
  std::vector<Arc> arcs_;                           // 2m, sorted per vertex
  std::vector<std::pair<Vertex, Vertex>> edges_;    // m, canonical (u<v)
};

/// Accumulates edges, deduplicates, rejects self-loops, builds the CSR.
class GraphBuilder {
 public:
  explicit GraphBuilder(Vertex num_vertices);

  Vertex num_vertices() const { return n_; }

  /// Adds undirected edge {u,v}. Duplicate edges are coalesced at build().
  /// Self loops are rejected (FT-BFS structures are simple-graph objects).
  void add_edge(Vertex u, Vertex v);

  /// Streaming twin of add_edge for pre-canonicalized input (the binary
  /// edge-list reader): every edge must arrive canonical (u < v) and
  /// strictly lexicographically after the previous one — already sorted
  /// and deduplicated — so build() skips its sort+dedup pass and ingestion
  /// is one O(m) streaming pass into the CSR. Cannot be mixed with
  /// add_edge in the same build.
  void add_canonical_edge(Vertex u, Vertex v);

  /// Number of edges added so far (before dedup).
  std::size_t pending_edges() const { return pending_.size(); }

  /// Finalizes into an immutable Graph. The builder is left empty.
  Graph build();

 private:
  Vertex n_;
  bool canonical_ = true;  // no out-of-order add_edge calls seen yet
  std::vector<std::pair<Vertex, Vertex>> pending_;
};

}  // namespace ftb
