#include "src/graph/connectivity.hpp"

#include <algorithm>

#include "src/graph/bfs_kernel.hpp"

namespace ftb {

std::vector<std::int32_t> component_labels(const Graph& g) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  std::vector<std::int32_t> label(n, -1);
  BfsScratch scratch;  // one arena reused across components
  std::int32_t next = 0;
  for (Vertex root = 0; root < g.num_vertices(); ++root) {
    if (label[static_cast<std::size_t>(root)] != -1) continue;
    bfs_run(g, root, BfsBans{}, scratch);
    for (const Vertex v : scratch.order()) {
      label[static_cast<std::size_t>(v)] = next;
    }
    ++next;
  }
  return label;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() <= 1) return true;
  BfsScratch scratch;
  bfs_run(g, 0, BfsBans{}, scratch);
  return scratch.order().size() ==
         static_cast<std::size_t>(g.num_vertices());
}

ConnectivityReport analyze_connectivity(const Graph& g) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  const std::size_t m = static_cast<std::size_t>(g.num_edges());

  ConnectivityReport rep;
  rep.component.assign(n, -1);
  rep.bridge_mask_.assign(m, 0);
  rep.cut_mask_.assign(n, 0);

  std::vector<std::int32_t> disc(n, -1);   // DFS discovery time
  std::vector<std::int32_t> low(n, 0);     // lowlink
  std::vector<Vertex> parent(n, kInvalidVertex);
  std::vector<EdgeId> parent_edge(n, kInvalidEdge);
  std::vector<std::int32_t> root_children(n, 0);

  // Iterative DFS: frame = (vertex, index into its arc span).
  struct Frame {
    Vertex v;
    std::size_t arc = 0;
  };
  std::vector<Frame> stack;
  std::int32_t clock = 0;

  for (Vertex root = 0; root < g.num_vertices(); ++root) {
    if (disc[static_cast<std::size_t>(root)] != -1) continue;
    const std::int32_t comp = rep.num_components++;
    disc[static_cast<std::size_t>(root)] = clock++;
    low[static_cast<std::size_t>(root)] = disc[static_cast<std::size_t>(root)];
    rep.component[static_cast<std::size_t>(root)] = comp;
    stack.push_back(Frame{root});

    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto arcs = g.neighbors(f.v);
      if (f.arc < arcs.size()) {
        const Arc a = arcs[f.arc++];
        if (a.edge == parent_edge[static_cast<std::size_t>(f.v)]) {
          continue;  // don't walk the tree edge back up
        }
        const std::size_t w = static_cast<std::size_t>(a.to);
        if (disc[w] == -1) {
          // Tree edge: descend.
          disc[w] = clock++;
          low[w] = disc[w];
          parent[w] = f.v;
          parent_edge[w] = a.edge;
          rep.component[w] = comp;
          if (f.v == root) {
            ++root_children[static_cast<std::size_t>(root)];
          }
          stack.push_back(Frame{a.to});
        } else {
          // Back edge.
          low[static_cast<std::size_t>(f.v)] =
              std::min(low[static_cast<std::size_t>(f.v)], disc[w]);
        }
      } else {
        // Post-order: propagate lowlink, classify bridge / articulation.
        const Vertex v = f.v;
        stack.pop_back();
        const Vertex p = parent[static_cast<std::size_t>(v)];
        if (p != kInvalidVertex) {
          low[static_cast<std::size_t>(p)] =
              std::min(low[static_cast<std::size_t>(p)],
                       low[static_cast<std::size_t>(v)]);
          if (low[static_cast<std::size_t>(v)] >
              disc[static_cast<std::size_t>(p)]) {
            rep.bridge_mask_[static_cast<std::size_t>(
                parent_edge[static_cast<std::size_t>(v)])] = 1;
          }
          if (p != root && low[static_cast<std::size_t>(v)] >=
                               disc[static_cast<std::size_t>(p)]) {
            rep.cut_mask_[static_cast<std::size_t>(p)] = 1;
          }
        }
      }
    }
    if (root_children[static_cast<std::size_t>(root)] >= 2) {
      rep.cut_mask_[static_cast<std::size_t>(root)] = 1;
    }
  }

  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (rep.bridge_mask_[static_cast<std::size_t>(e)]) rep.bridges.push_back(e);
  }
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (rep.cut_mask_[static_cast<std::size_t>(v)]) rep.cut_vertices.push_back(v);
  }
  return rep;
}

}  // namespace ftb
