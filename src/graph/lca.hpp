// lca.hpp — least common ancestors on the BFS tree T0.
//
// The interference machinery evaluates LCA(v,t) for detour/π-intersection
// tests (Sec. 3.1). Binary lifting gives O(n log n) preprocessing and
// O(log n) queries, which is plenty at our scales; ancestor *tests* stay
// O(1) through BfsTree's preorder intervals.
#pragma once

#include <vector>

#include "src/graph/bfs_tree.hpp"

namespace ftb {

/// Binary-lifting LCA index over a BfsTree.
class LcaIndex {
 public:
  explicit LcaIndex(const BfsTree& tree);

  /// LCA of u and v in T0. Both must be reachable from the source.
  Vertex lca(Vertex u, Vertex v) const;

  /// Depth of LCA(u,v) — the quantity the π-intersection test needs.
  std::int32_t lca_depth(Vertex u, Vertex v) const {
    return tree_->depth(lca(u, v));
  }

  /// The ancestor of v at depth `d` (d ≤ depth(v)).
  Vertex ancestor_at_depth(Vertex v, std::int32_t d) const;

 private:
  const BfsTree* tree_;
  std::int32_t log_ = 1;
  // up_[k][v] = 2^k-th ancestor of v (source's ancestor = source).
  std::vector<std::vector<Vertex>> up_;
};

}  // namespace ftb
