// heavy_path.hpp — the tree decomposition TD of Phase S2.0.
//
// Fact 3.3 (Baswana–Khanna's adaptation of Sleator–Tarjan heavy paths):
// there is a path ψ from the root of T' whose removal splits T' into
// subtrees of ≤ |T'|/2 vertices, each glued to ψ by one tree edge. We
// realize ψ as the classic *heavy path*: from the root always descend into
// the child with the largest subtree, down to a leaf. Every subtree hanging
// off ψ then has size < |T'|/2 (a non-heavy child never holds more than
// half of its parent's subtree), so recursing on the hanging subtrees
// terminates in ≤ ⌈log2 n⌉ levels.
//
// Outputs consumed by Phase S2:
//  * the path collection TD = {ψ1, ..., ψt} with recursion levels;
//  * E−(TD), the glue edges (tree edges not on any ψ) — Fact 4.1(a): every
//    π(s,v) contains O(log n) of them;
//  * crossings(v): the ≤ O(log n) decomposition paths meeting π(s,v), each
//    intersection being a prefix ψ[0..j] of the path (Fact 4.1(b)).
#pragma once

#include <vector>

#include "src/graph/bfs_tree.hpp"

namespace ftb {

/// One path of the decomposition, top (closest to s) to bottom.
struct HeavyPath {
  std::int32_t id = 0;
  std::int32_t level = 0;              // recursion depth; root path = 0
  std::vector<Vertex> vertices;        // ≥ 1 vertices, top to bottom
  std::vector<EdgeId> edges;           // |vertices| - 1 path edges
};

/// Heavy-path decomposition of a BfsTree.
class HeavyPathDecomposition {
 public:
  explicit HeavyPathDecomposition(const BfsTree& tree);

  const std::vector<HeavyPath>& paths() const { return paths_; }
  const HeavyPath& path(std::int32_t id) const {
    return paths_[static_cast<std::size_t>(id)];
  }

  /// Id of the decomposition path containing v (-1 if v unreachable).
  std::int32_t path_of(Vertex v) const {
    return path_of_[static_cast<std::size_t>(v)];
  }
  /// Index of v inside its path's `vertices` array.
  std::int32_t pos_in_path(Vertex v) const {
    return pos_in_path_[static_cast<std::size_t>(v)];
  }

  /// True iff tree edge e lies on some decomposition path (e ∈ E+(TD)).
  bool is_path_edge(EdgeId e) const {
    return is_path_edge_[static_cast<std::size_t>(e)] != 0;
  }
  /// The glue edges E−(TD) = T0 \ E+(TD).
  const std::vector<EdgeId>& glue_edges() const { return glue_edges_; }

  /// Number of recursion levels (≤ ⌈log2 n⌉ + 1 by Fact 3.3).
  std::int32_t levels() const { return levels_; }

  /// One crossing of π(s,v) with a decomposition path ψ: the intersection
  /// is exactly ψ.vertices[0 .. deepest_pos] (so ψ's first `deepest_pos`
  /// edges lie on π(s,v)).
  struct Crossing {
    std::int32_t path_id;
    std::int32_t deepest_pos;
  };

  /// All crossings of π(s,v), ordered from the source side down to v's own
  /// path. O(log n) entries (Fact 4.1(b)).
  std::vector<Crossing> crossings(Vertex v) const;

 private:
  const BfsTree* tree_;
  std::vector<HeavyPath> paths_;
  std::vector<std::int32_t> path_of_;
  std::vector<std::int32_t> pos_in_path_;
  std::vector<std::uint8_t> is_path_edge_;
  std::vector<EdgeId> glue_edges_;
  std::int32_t levels_ = 0;
};

}  // namespace ftb
