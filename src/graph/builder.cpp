#include <algorithm>

#include "src/graph/graph.hpp"

namespace ftb {

GraphBuilder::GraphBuilder(Vertex num_vertices) : n_(num_vertices) {
  FTB_CHECK_MSG(num_vertices >= 0, "negative vertex count");
}

void GraphBuilder::add_edge(Vertex u, Vertex v) {
  FTB_CHECK_MSG(u >= 0 && u < n_ && v >= 0 && v < n_,
                "edge (" << u << "," << v << ") out of range n=" << n_);
  FTB_CHECK_MSG(u != v, "self loop at vertex " << u);
  if (u > v) std::swap(u, v);
  canonical_ = false;
  pending_.emplace_back(u, v);
}

void GraphBuilder::add_canonical_edge(Vertex u, Vertex v) {
  FTB_CHECK_MSG(canonical_,
                "add_canonical_edge cannot be mixed with add_edge");
  FTB_CHECK_MSG(u >= 0 && u < n_ && v >= 0 && v < n_,
                "edge (" << u << "," << v << ") out of range n=" << n_);
  FTB_CHECK_MSG(u < v, "edge (" << u << "," << v
                                << ") is not canonical (u < v)");
  FTB_CHECK_MSG(pending_.empty() || pending_.back() < std::make_pair(u, v),
                "edge (" << u << "," << v
                         << ") out of strictly ascending canonical order");
  pending_.emplace_back(u, v);
}

Graph GraphBuilder::build() {
  if (!canonical_) {
    std::sort(pending_.begin(), pending_.end());
    pending_.erase(std::unique(pending_.begin(), pending_.end()),
                   pending_.end());
    canonical_ = true;  // the builder is left empty, ready for either mode
  }

  Graph g;
  g.edges_ = std::move(pending_);
  pending_.clear();

  const std::size_t n = static_cast<std::size_t>(n_);
  g.offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : g.edges_) {
    ++g.offsets_[static_cast<std::size_t>(u) + 1];
    ++g.offsets_[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 0; i < n; ++i) g.offsets_[i + 1] += g.offsets_[i];

  g.arcs_.resize(g.edges_.size() * 2);
  std::vector<std::int64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId e = 0; e < static_cast<EdgeId>(g.edges_.size()); ++e) {
    const auto [u, v] = g.edges_[e];
    g.arcs_[static_cast<std::size_t>(cursor[u]++)] = Arc{v, e};
    g.arcs_[static_cast<std::size_t>(cursor[v]++)] = Arc{u, e};
  }
  // Edge list is sorted by (u,v); re-sort each vertex's arc range by
  // neighbor id so adjacency scans are deterministic and binary-searchable.
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(
        g.arcs_.begin() + g.offsets_[v], g.arcs_.begin() + g.offsets_[v + 1],
        [](const Arc& a, const Arc& b) { return a.to < b.to; });
  }
  return g;
}

}  // namespace ftb
