#include "src/graph/graph.hpp"

#include <algorithm>
#include <sstream>

namespace ftb {

EdgeId Graph::find_edge(Vertex u, Vertex v) const {
  if (!valid_vertex(u) || !valid_vertex(v)) return kInvalidEdge;
  // Search the smaller adjacency list.
  if (degree(v) < degree(u)) std::swap(u, v);
  const auto nbrs = neighbors(u);
  auto it = std::lower_bound(
      nbrs.begin(), nbrs.end(), v,
      [](const Arc& a, Vertex target) { return a.to < target; });
  if (it != nbrs.end() && it->to == v) return it->edge;
  return kInvalidEdge;
}

std::size_t Graph::memory_bytes() const {
  return offsets_.size() * sizeof(std::int64_t) + arcs_.size() * sizeof(Arc) +
         edges_.size() * sizeof(std::pair<Vertex, Vertex>);
}

std::string Graph::summary() const {
  std::ostringstream os;
  os << "Graph(n=" << num_vertices() << ", m=" << num_edges() << ")";
  return os.str();
}

}  // namespace ftb
