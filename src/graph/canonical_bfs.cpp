#include "src/graph/canonical_bfs.hpp"

#include <algorithm>

#include "src/graph/bfs_kernel.hpp"

namespace ftb {

EdgeWeights EdgeWeights::uniform_random(const Graph& g, std::uint64_t seed) {
  EdgeWeights ew;
  Rng rng(seed);
  ew.w.resize(static_cast<std::size_t>(g.num_edges()));
  for (auto& x : ew.w) {
    x = 1 + rng.next_below((1ULL << 40) - 1);
  }
  return ew;
}

BfsResult plain_bfs(const Graph& g, Vertex src, const BfsBans& bans) {
  thread_local BfsScratch scratch;
  bfs_run(g, src, bans, scratch);

  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  BfsResult r;
  r.dist.assign(n, kInfHops);
  r.parent.assign(n, kInvalidVertex);
  r.parent_edge.assign(n, kInvalidEdge);
  const auto order = scratch.order();
  r.order.assign(order.begin(), order.end());
  for (const Vertex v : order) {
    const std::size_t vi = static_cast<std::size_t>(v);
    r.dist[vi] = scratch.dist(v);
    r.parent[vi] = scratch.parent(v);
    r.parent_edge[vi] = scratch.parent_edge(v);
  }
  return r;
}

BfsResult plain_bfs_reference(const Graph& g, Vertex src,
                              const BfsBans& bans) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  FTB_CHECK(g.valid_vertex(src));
  FTB_CHECK_MSG(!bans.vertex_banned(src), "source is banned");

  BfsResult r;
  r.dist.assign(n, kInfHops);
  r.parent.assign(n, kInvalidVertex);
  r.parent_edge.assign(n, kInvalidEdge);
  r.order.clear();
  r.order.push_back(src);
  r.dist[static_cast<std::size_t>(src)] = 0;

  // r.order doubles as the BFS queue; each discovered level is sorted
  // before expansion so the first discoverer of a vertex is its minimum-id
  // previous-level neighbor (the contract shared with the kernel).
  std::size_t level_begin = 0;
  std::size_t level_end = 1;
  while (level_begin < level_end) {
    std::sort(r.order.begin() + static_cast<std::ptrdiff_t>(level_begin),
              r.order.begin() + static_cast<std::ptrdiff_t>(level_end));
    for (std::size_t i = level_begin; i < level_end; ++i) {
      const Vertex u = r.order[i];
      const std::int32_t du = r.dist[static_cast<std::size_t>(u)];
      for (const Arc& a : g.neighbors(u)) {
        if (bans.edge_banned(a.edge)) continue;
        if (bans.vertex_banned(a.to)) continue;
        auto& dv = r.dist[static_cast<std::size_t>(a.to)];
        if (dv != kInfHops) continue;
        dv = du + 1;
        r.parent[static_cast<std::size_t>(a.to)] = u;
        r.parent_edge[static_cast<std::size_t>(a.to)] = a.edge;
        r.order.push_back(a.to);
      }
    }
    level_begin = level_end;
    level_end = r.order.size();
  }
  return r;
}

CanonicalSp canonical_sp(const Graph& g, const EdgeWeights& weights,
                         Vertex src, const BfsBans& bans) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  FTB_CHECK_MSG(weights.w.size() == static_cast<std::size_t>(g.num_edges()),
                "weight table size mismatch");

  // Pass 1: hop distances and a layer-ordered vertex sequence. Uses the
  // naive BFS so this function stays an implementation-independent
  // reference for the fused kernel.
  BfsResult layers = plain_bfs_reference(g, src, bans);

  CanonicalSp sp;
  sp.hops = std::move(layers.dist);
  sp.wsum.assign(n, 0);
  sp.parent.assign(n, kInvalidVertex);
  sp.parent_edge.assign(n, kInvalidEdge);
  sp.first_hop.assign(n, kInvalidVertex);
  sp.order = std::move(layers.order);

  // Pass 2: the canonical parent rule (pick_canonical_parent — shared with
  // the incremental rebase). Processing in layer order guarantees
  // predecessors are final.
  for (const Vertex v : sp.order) {
    if (v == src) continue;
    const std::int32_t hv = sp.hops[static_cast<std::size_t>(v)];
    const CanonicalParentChoice best = pick_canonical_parent(
        g, weights, v, hv,
        [&](const Arc& a) {
          return !bans.edge_banned(a.edge) && !bans.vertex_banned(a.to);
        },
        [&](Vertex u) { return sp.hops[static_cast<std::size_t>(u)]; },
        [&](Vertex u) { return sp.wsum[static_cast<std::size_t>(u)]; });
    FTB_DCHECK(best.parent != kInvalidVertex);
    sp.wsum[static_cast<std::size_t>(v)] = best.wsum;
    sp.parent[static_cast<std::size_t>(v)] = best.parent;
    sp.parent_edge[static_cast<std::size_t>(v)] = best.edge;
    sp.first_hop[static_cast<std::size_t>(v)] =
        (best.parent == src)
            ? v
            : sp.first_hop[static_cast<std::size_t>(best.parent)];
  }
  return sp;
}

std::vector<Vertex> CanonicalSp::path_from_source(Vertex v) const {
  FTB_CHECK_MSG(reachable(v), "path_from_source on unreachable vertex " << v);
  std::vector<Vertex> path;
  path.reserve(static_cast<std::size_t>(hops[static_cast<std::size_t>(v)]) + 1);
  for (Vertex u = v; u != kInvalidVertex;
       u = parent[static_cast<std::size_t>(u)]) {
    path.push_back(u);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace ftb
