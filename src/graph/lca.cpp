#include "src/graph/lca.hpp"

namespace ftb {

LcaIndex::LcaIndex(const BfsTree& tree) : tree_(&tree) {
  const std::size_t n = static_cast<std::size_t>(tree.graph().num_vertices());
  std::int32_t max_depth = 0;
  for (const Vertex v : tree.preorder()) {
    max_depth = std::max(max_depth, tree.depth(v));
  }
  log_ = 1;
  while ((1 << log_) <= std::max(1, max_depth)) ++log_;

  up_.assign(static_cast<std::size_t>(log_), std::vector<Vertex>(n, kInvalidVertex));
  for (const Vertex v : tree.preorder()) {
    const Vertex p = tree.parent(v);
    up_[0][static_cast<std::size_t>(v)] = (p == kInvalidVertex) ? v : p;
  }
  for (std::int32_t k = 1; k < log_; ++k) {
    for (const Vertex v : tree.preorder()) {
      const Vertex mid = up_[static_cast<std::size_t>(k - 1)][static_cast<std::size_t>(v)];
      up_[static_cast<std::size_t>(k)][static_cast<std::size_t>(v)] =
          up_[static_cast<std::size_t>(k - 1)][static_cast<std::size_t>(mid)];
    }
  }
}

Vertex LcaIndex::ancestor_at_depth(Vertex v, std::int32_t d) const {
  FTB_DCHECK(tree_->reachable(v));
  std::int32_t delta = tree_->depth(v) - d;
  FTB_CHECK_MSG(delta >= 0, "ancestor_at_depth: target deeper than vertex");
  for (std::int32_t k = 0; delta > 0; ++k, delta >>= 1) {
    if (delta & 1) v = up_[static_cast<std::size_t>(k)][static_cast<std::size_t>(v)];
  }
  return v;
}

Vertex LcaIndex::lca(Vertex u, Vertex v) const {
  FTB_DCHECK(tree_->reachable(u) && tree_->reachable(v));
  if (tree_->is_ancestor_or_equal(u, v)) return u;
  if (tree_->is_ancestor_or_equal(v, u)) return v;
  // Lift u just below the common ancestor, exploiting O(1) ancestor tests.
  for (std::int32_t k = log_ - 1; k >= 0; --k) {
    const Vertex cand = up_[static_cast<std::size_t>(k)][static_cast<std::size_t>(u)];
    if (!tree_->is_ancestor_or_equal(cand, v)) u = cand;
  }
  return up_[0][static_cast<std::size_t>(u)];
}

}  // namespace ftb
