#include "src/graph/multi_source_bfs_kernel.hpp"

#include <algorithm>
#include <bit>
#include <limits>

namespace ftb {

void MultiSourceBfsKernel::prepare(std::size_t n, std::size_t sigma) {
  const std::size_t words = (sigma + 63) / 64;
  if (stamp_.size() < n) {
    stamp_.assign(n, 0);
    epoch_ = 0;
  }
  if (visited_.size() < n * words) {
    visited_.resize(n * words);
    front_.resize(n * words);
    next_.resize(n * words);
  }
  if (dist_.size() < sigma * n) {
    dist_.resize(sigma * n);
    parent_.resize(sigma * n);
    parent_edge_.resize(sigma * n);
  }
  if (order_.size() < sigma) order_.resize(sigma);
  for (std::size_t l = 0; l < sigma; ++l) order_[l].clear();
  n_ = n;
  num_lanes_ = sigma;
  words_ = words;
  if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 0;
  }
  ++epoch_;
  cur_list_.clear();
  next_list_.clear();
  stats_ = BfsKernelStats{};
}

void MultiSourceBfsKernel::debug_set_epoch_near_wrap() {
  epoch_ = std::numeric_limits<std::uint32_t>::max() - 1;
  // Invalidate stale stamps that could collide with the fast-forwarded
  // epoch; real code never jumps, so this is test-only.
  std::fill(stamp_.begin(), stamp_.end(), 0);
}

void MultiSourceBfsKernel::build_ban_tables(std::span<const BfsLane> lanes) {
  edge_ban_.clear();
  vertex_ban_.clear();
  ban_words_.clear();
  ptr_bans_.clear();
  has_edge_bans_ = false;
  has_vertex_bans_ = false;

  const auto add_edge_ban = [&](EdgeId e, std::size_t lane) {
    const auto [it, inserted] = edge_ban_.try_emplace(e, ban_words_.size());
    if (inserted) ban_words_.resize(ban_words_.size() + words_, 0);
    ban_words_[it->second + (lane >> 6)] |= std::uint64_t{1} << (lane & 63);
    has_edge_bans_ = true;
  };
  const auto add_vertex_ban = [&](Vertex v, std::size_t lane) {
    const auto [it, inserted] = vertex_ban_.try_emplace(v, ban_words_.size());
    if (inserted) ban_words_.resize(ban_words_.size() + words_, 0);
    ban_words_[it->second + (lane >> 6)] |= std::uint64_t{1} << (lane & 63);
    has_vertex_bans_ = true;
  };

  for (std::size_t l = 0; l < lanes.size(); ++l) {
    const BfsBans& bans = lanes[l].bans;
    if (bans.banned_edge != kInvalidEdge) add_edge_ban(bans.banned_edge, l);
    if (bans.banned_edge2 != kInvalidEdge) add_edge_ban(bans.banned_edge2, l);
    if (bans.banned_vertex_one != kInvalidVertex) {
      add_vertex_ban(bans.banned_vertex_one, l);
    }
    if (bans.banned_edge_mask != nullptr || bans.banned_vertex != nullptr) {
      ptr_bans_.push_back(PtrBanLane{l >> 6, std::uint64_t{1} << (l & 63),
                                     bans.banned_edge_mask,
                                     bans.banned_vertex});
    }
  }
}

void MultiSourceBfsKernel::run(const Graph& g,
                               std::span<const BfsLane> lanes) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  const std::size_t sigma = lanes.size();
  FTB_CHECK_MSG(sigma > 0, "multi-source kernel needs at least one lane");
  prepare(n, sigma);
  build_ban_tables(lanes);
  const std::size_t W = words_;

  // Validate every lane before the first write: a throw must not leave
  // half-seeded frontier bits behind (the front_/next_ arrays keep an
  // all-zero-between-runs invariant instead of an epoch stamp).
  for (const BfsLane& lane : lanes) {
    FTB_CHECK(g.valid_vertex(lane.source));
    FTB_CHECK_MSG(!lane.bans.vertex_banned(lane.source), "source is banned");
  }

  // Seed every lane's source at level 0. Lanes may share a source, so the
  // shared frontier list is deduplicated after seeding.
  for (std::size_t l = 0; l < sigma; ++l) {
    const Vertex src = lanes[l].source;
    const std::size_t vi = static_cast<std::size_t>(src);
    touch(vi);
    const std::uint64_t bit = std::uint64_t{1} << (l & 63);
    visited_[vi * W + (l >> 6)] |= bit;
    front_[vi * W + (l >> 6)] |= bit;
    dist_[vi * num_lanes_ + l] = 0;
    parent_[vi * num_lanes_ + l] = kInvalidVertex;
    parent_edge_[vi * num_lanes_ + l] = kInvalidEdge;
    order_[l].push_back(src);
    cur_list_.push_back(src);
  }
  std::sort(cur_list_.begin(), cur_list_.end());
  cur_list_.erase(std::unique(cur_list_.begin(), cur_list_.end()),
                  cur_list_.end());

  // Aggregate scouting state for the alpha/beta direction switch — the same
  // heuristic as the scalar kernel, summed over lanes. The direction only
  // picks how claims are discovered, never what is claimed: top-down's
  // ascending-frontier first claim and bottom-up's first-admissible-arc scan
  // both select each lane's (min parent id, min edge id) previous-level
  // neighbor.
  const BfsKernelConfig cfg;
  std::int64_t frontier_arcs = 0;
  for (const BfsLane& lane : lanes) frontier_arcs += g.degree(lane.source);
  std::int64_t unexplored_arcs =
      static_cast<std::int64_t>(sigma) * 2 *
          static_cast<std::int64_t>(g.num_edges()) -
      frontier_arcs;
  std::int64_t frontier_pairs = static_cast<std::int64_t>(sigma);
  if (need_.size() < W) need_.resize(W);
  const std::uint64_t tail_mask =
      (sigma & 63) != 0
          ? (std::uint64_t{1} << (sigma & 63)) - 1
          : ~std::uint64_t{0};

  std::int32_t level = 0;
  while (!cur_list_.empty()) {
    ++stats_.levels;
    next_list_.clear();
    std::int64_t next_arcs = 0;
    std::int64_t next_pairs = 0;
    const bool bottom_up =
        static_cast<double>(frontier_arcs) * cfg.alpha >
            static_cast<double>(unexplored_arcs) &&
        static_cast<double>(frontier_pairs) * cfg.beta >
            static_cast<double>(sigma) * static_cast<double>(n);

    if (bottom_up) {
      ++stats_.bottom_up_levels;
      // Pull phase: each still-unclaimed (vertex, lane) pair scans the
      // vertex's sorted adjacency and takes its first admissible
      // previous-level neighbor — per lane exactly the scalar bottom-up
      // claim, so the minimum-id parent rule is preserved.
      for (Vertex v = 0; v < static_cast<Vertex>(n); ++v) {
        const std::size_t vi = static_cast<std::size_t>(v);
        touch(vi);
        const std::size_t base = vi * W;
        std::uint64_t remaining = 0;
        for (std::size_t w = 0; w < W; ++w) {
          std::uint64_t nd = ~visited_[base + w];
          if (w == W - 1) nd &= tail_mask;
          need_[w] = nd;
          remaining |= nd;
        }
        if (remaining == 0) continue;
        if (has_vertex_bans_) {
          if (const std::uint64_t* vban = vertex_ban_words(v)) {
            remaining = 0;
            for (std::size_t w = 0; w < W; ++w) {
              need_[w] &= ~vban[w];
              remaining |= need_[w];
            }
          }
        }
        if (!ptr_bans_.empty()) {
          for (const PtrBanLane& pb : ptr_bans_) {
            if (pb.vertex_mask != nullptr && (*pb.vertex_mask)[vi] != 0) {
              need_[pb.word] &= ~pb.bit;
            }
          }
          remaining = 0;
          for (std::size_t w = 0; w < W; ++w) remaining |= need_[w];
        }
        if (remaining == 0) continue;
        bool claimed_any = false;
        for (const Arc& a : g.neighbors(v)) {
          const std::uint64_t* fu =
              front_.data() + static_cast<std::size_t>(a.to) * W;
          const std::uint64_t* eban =
              has_edge_bans_ ? edge_ban_words(a.edge) : nullptr;
          for (std::size_t w = 0; w < W; ++w) {
            std::uint64_t m = need_[w] & fu[w];
            if (m == 0) continue;
            if (eban != nullptr) m &= ~eban[w];
            if (m != 0 && !ptr_bans_.empty()) {
              for (const PtrBanLane& pb : ptr_bans_) {
                if (pb.word != w || (m & pb.bit) == 0) continue;
                if (pb.edge_mask != nullptr &&
                    (*pb.edge_mask)[static_cast<std::size_t>(a.edge)] != 0) {
                  m &= ~pb.bit;
                }
              }
            }
            if (m == 0) continue;
            need_[w] &= ~m;
            next_[base + w] |= m;
            next_pairs += std::popcount(m);
            next_arcs +=
                static_cast<std::int64_t>(g.degree(v)) * std::popcount(m);
            std::uint64_t bits = m;
            while (bits != 0) {
              const std::size_t l =
                  w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
              bits &= bits - 1;
              dist_[vi * num_lanes_ + l] = level + 1;
              parent_[vi * num_lanes_ + l] = a.to;
              parent_edge_[vi * num_lanes_ + l] = a.edge;
            }
            claimed_any = true;
          }
          if (claimed_any) {
            remaining = 0;
            for (std::size_t w = 0; w < W; ++w) remaining |= need_[w];
            if (remaining == 0) break;
          }
        }
        if (claimed_any) next_list_.push_back(v);
      }
    } else {
      ++stats_.top_down_levels;
      // Ascending expansion of the fused frontier: per lane, the first
      // admissible arc to claim a vertex comes from that lane's minimum-id
      // previous-level neighbor — the scalar determinism contract.
      for (const Vertex u : cur_list_) {
        const std::uint64_t* fu =
            front_.data() + static_cast<std::size_t>(u) * W;
        for (const Arc& a : g.neighbors(u)) {
          const Vertex v = a.to;
          const std::size_t vi = static_cast<std::size_t>(v);
          touch(vi);
          const std::size_t base = vi * W;
          const std::uint64_t* eban =
              has_edge_bans_ ? edge_ban_words(a.edge) : nullptr;
          const std::uint64_t* vban =
              has_vertex_bans_ ? vertex_ban_words(v) : nullptr;
          bool claimed_any = false;
          std::uint64_t had_next = 0;
          for (std::size_t w = 0; w < W; ++w) {
            const std::uint64_t nx = next_[base + w];
            had_next |= nx;
            std::uint64_t m = fu[w] & ~visited_[base + w] & ~nx;
            if (m == 0) continue;
            if (eban != nullptr) m &= ~eban[w];
            if (vban != nullptr) m &= ~vban[w];
            if (m != 0 && !ptr_bans_.empty()) {
              for (const PtrBanLane& pb : ptr_bans_) {
                if (pb.word != w || (m & pb.bit) == 0) continue;
                if ((pb.edge_mask != nullptr &&
                     (*pb.edge_mask)[static_cast<std::size_t>(a.edge)] != 0) ||
                    (pb.vertex_mask != nullptr &&
                     (*pb.vertex_mask)[vi] != 0)) {
                  m &= ~pb.bit;
                }
              }
            }
            if (m == 0) continue;
            next_[base + w] |= m;
            next_pairs += std::popcount(m);
            next_arcs +=
                static_cast<std::int64_t>(g.degree(v)) * std::popcount(m);
            std::uint64_t bits = m;
            while (bits != 0) {
              const std::size_t l =
                  w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
              bits &= bits - 1;
              dist_[vi * num_lanes_ + l] = level + 1;
              parent_[vi * num_lanes_ + l] = u;
              parent_edge_[vi * num_lanes_ + l] = a.edge;
            }
            claimed_any = true;
          }
          // Push on the all-zero → nonzero transition only: next_list_
          // stays duplicate-free, so the per-level sort is over distinct
          // vertices, not claiming arcs.
          if (claimed_any && had_next == 0) next_list_.push_back(v);
        }
      }
    }

    // Consume the current frontier before installing the next one (a vertex
    // can sit in both when lanes reach it at different depths).
    for (const Vertex u : cur_list_) {
      const std::size_t base = static_cast<std::size_t>(u) * W;
      for (std::size_t w = 0; w < W; ++w) front_[base + w] = 0;
    }

    if (!bottom_up) {  // bottom-up discovers ascending and unique already
      std::sort(next_list_.begin(), next_list_.end());
      next_list_.erase(std::unique(next_list_.begin(), next_list_.end()),
                       next_list_.end());
    }
    unexplored_arcs -= next_arcs;
    frontier_arcs = next_arcs;
    frontier_pairs = next_pairs;

    // Commit claims: visited |= claims, claims become the next frontier,
    // and each lane's order extends ascending — the per-level sorted
    // segment of the scalar contract.
    for (const Vertex v : next_list_) {
      const std::size_t base = static_cast<std::size_t>(v) * W;
      for (std::size_t w = 0; w < W; ++w) {
        std::uint64_t word = next_[base + w];
        visited_[base + w] |= word;
        front_[base + w] = word;
        next_[base + w] = 0;
        while (word != 0) {
          const std::size_t l =
              w * 64 + static_cast<std::size_t>(std::countr_zero(word));
          word &= word - 1;
          order_[l].push_back(v);
        }
      }
    }
    std::swap(cur_list_, next_list_);
    ++level;
  }
}

std::vector<CanonicalSp> ms_canonical_sp(const Graph& g,
                                         const EdgeWeights& weights,
                                         std::span<const BfsLane> lanes,
                                         MultiSourceBfsKernel& kernel) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  FTB_CHECK_MSG(weights.w.size() == static_cast<std::size_t>(g.num_edges()),
                "weight table size mismatch");
  // Pass 1, fused: one bit-parallel sweep labels every lane's hop
  // distances and layer order.
  kernel.run(g, lanes);

  std::vector<CanonicalSp> out(lanes.size());
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    const Vertex src = lanes[l].source;
    const BfsBans& bans = lanes[l].bans;
    CanonicalSp& sp = out[l];
    sp.hops.assign(n, kInfHops);
    sp.wsum.assign(n, 0);
    sp.parent.assign(n, kInvalidVertex);
    sp.parent_edge.assign(n, kInvalidEdge);
    sp.first_hop.assign(n, kInvalidVertex);
    const auto order = kernel.order(l);
    sp.order.assign(order.begin(), order.end());
    for (const Vertex v : sp.order) {
      sp.hops[static_cast<std::size_t>(v)] = kernel.dist(l, v);
    }

    // Pass 2, per lane: the canonical parent rule in layer order — the
    // same loop as canonical_sp, so the result is bit-identical to the
    // scalar two-pass reference.
    for (const Vertex v : sp.order) {
      if (v == src) continue;
      const std::int32_t hv = sp.hops[static_cast<std::size_t>(v)];
      const CanonicalParentChoice best = pick_canonical_parent(
          g, weights, v, hv,
          [&](const Arc& a) {
            return !bans.edge_banned(a.edge) && !bans.vertex_banned(a.to);
          },
          [&](Vertex u) { return sp.hops[static_cast<std::size_t>(u)]; },
          [&](Vertex u) { return sp.wsum[static_cast<std::size_t>(u)]; });
      FTB_DCHECK(best.parent != kInvalidVertex);
      sp.wsum[static_cast<std::size_t>(v)] = best.wsum;
      sp.parent[static_cast<std::size_t>(v)] = best.parent;
      sp.parent_edge[static_cast<std::size_t>(v)] = best.edge;
      sp.first_hop[static_cast<std::size_t>(v)] =
          (best.parent == src)
              ? v
              : sp.first_hop[static_cast<std::size_t>(best.parent)];
    }
  }
  return out;
}

const FreeListPool<MultiSourceBfsKernel>& multi_source_kernel_pool() {
  static const FreeListPool<MultiSourceBfsKernel> pool;
  return pool;
}

std::vector<CanonicalSp> ms_canonical_sp(const Graph& g,
                                         const EdgeWeights& weights,
                                         std::span<const BfsLane> lanes) {
  MsKernelLease lease(multi_source_kernel_pool());
  return ms_canonical_sp(g, weights, lanes, *lease);
}

}  // namespace ftb
