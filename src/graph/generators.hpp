// generators.hpp — workload graph families for tests, examples and benches.
//
// Everything is deterministic given (parameters, seed). Families:
//  * structured: path, cycle, star, complete, complete bipartite, 2-D grid,
//    full binary tree, caterpillar;
//  * random: Erdős–Rényi G(n,p), G(n,m), random-connected (random spanning
//    tree + extra edges), preferential attachment;
//  * the paper's intro example (source + single edge into an (n-1)-clique),
//    the picture motivating the whole reinforcement idea.
//
// The adversarial lower-bound families of Sec. 5 live in lower_bound.hpp.
#pragma once

#include <cstdint>

#include "src/graph/graph.hpp"

namespace ftb::gen {

/// Path 0-1-...-(n-1).
Graph path_graph(Vertex n);

/// Cycle on n ≥ 3 vertices.
Graph cycle_graph(Vertex n);

/// Star: center 0, leaves 1..n-1.
Graph star_graph(Vertex n);

/// Complete graph K_n.
Graph complete_graph(Vertex n);

/// Complete bipartite K_{a,b}: sides {0..a-1} and {a..a+b-1}.
Graph complete_bipartite(Vertex a, Vertex b);

/// rows×cols grid; vertex (r,c) has id r*cols + c.
Graph grid_graph(Vertex rows, Vertex cols);

/// Full binary tree on n vertices (vertex i's children are 2i+1, 2i+2).
Graph binary_tree(Vertex n);

/// Caterpillar: a spine path with `legs` pendant leaves per spine vertex.
Graph caterpillar(Vertex spine, Vertex legs);

/// Erdős–Rényi G(n,p). Not necessarily connected.
Graph erdos_renyi(Vertex n, double p, std::uint64_t seed);

/// Uniform random graph with exactly min(m, n(n-1)/2) edges.
Graph gnm(Vertex n, std::int64_t m, std::uint64_t seed);

/// Connected random graph: random spanning tree + `extra` random non-tree
/// edges (deduplicated, so the realized edge count can be slightly lower).
Graph random_connected(Vertex n, std::int64_t extra, std::uint64_t seed);

/// Preferential attachment: each new vertex attaches to `k` distinct
/// existing vertices chosen proportional to degree. Connected by design.
Graph preferential_attachment(Vertex n, Vertex k, std::uint64_t seed);

/// R-MAT (Chakrabarti–Zhan–Faloutsos) recursive-matrix graph on n = 2^scale
/// vertices with the Graph500 partition (a,b,c,d) = (0.57, 0.19, 0.19,
/// 0.05): skewed degrees, community structure — the standard stand-in for
/// real-world graphs, feeding the artifact_plane workload tier. Self loops
/// are resampled; duplicate samples coalesce, so the realized edge count
/// can be slightly below `edges`. Not necessarily connected (union with a
/// spanning tree via random_connected-style extras when connectivity is
/// required).
Graph rmat(Vertex scale, std::int64_t edges, std::uint64_t seed);

/// rmat() unioned with a uniformly random spanning tree over the same
/// vertex set: the connected real-graph workload the artifact_plane bench
/// builds dual structures on. Deterministic given (scale, edges, seed).
Graph rmat_connected(Vertex scale, std::int64_t edges, std::uint64_t seed);

/// The paper's introduction example: source 0 joined by a single edge to a
/// clique on vertices 1..n-1. Edge (0,1) is the bridge whose reinforcement
/// collapses the backup requirement.
Graph intro_example(Vertex n);


/// d-dimensional hypercube on 2^d vertices (ids are bitmasks).
Graph hypercube(Vertex dimensions);

/// Dumbbell: two cliques of size `k` joined by a path of `bridge` edges.
Graph dumbbell(Vertex k, Vertex bridge);

/// Theta graph: two hub vertices joined by `paths` disjoint paths of
/// length `len` each (a canonical multi-detour workload).
Graph theta_graph(Vertex paths, Vertex len);

/// Lollipop: a clique of size `k` with a pendant path of `tail` edges.
Graph lollipop(Vertex k, Vertex tail);

}  // namespace ftb::gen
