#include "src/graph/lower_bound.hpp"

#include <algorithm>
#include <cmath>

namespace ftb::lb {

namespace {

/// Fixed per-copy vertex cost: path (d+1) + side paths (Σ t_j = d²+5d with
/// t_j = 6 + 2(d−j)).
std::int64_t copy_fixed(std::int64_t d) { return d * d + 6 * d + 1; }

}  // namespace

SingleSourceLb build_single_source(Vertex n, double eps) {
  FTB_CHECK_MSG(eps > 0.0 && eps <= 0.5, "eps must be in (0, 1/2]");
  FTB_CHECK_MSG(n >= 32, "lower-bound graph needs n >= 32");

  SingleSourceLb out;
  out.eps = eps;
  const double nd = static_cast<double>(n);
  std::int64_t d = std::max<std::int64_t>(
      2, static_cast<std::int64_t>(std::floor(std::pow(nd, eps) / 4.0)));
  std::int64_t k = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::floor(std::pow(nd, 1.0 - 2.0 * eps))));

  // Shrink k, then d, until each copy can host at least one X vertex.
  const auto fits = [&](std::int64_t dd, std::int64_t kk) {
    return (static_cast<std::int64_t>(n) - 1) / kk >= copy_fixed(dd) + 1;
  };
  const std::int64_t d0 = d, k0 = k;
  while (k > 1 && !fits(d, k)) --k;
  while (d > 2 && !fits(d, k)) --d;
  FTB_CHECK_MSG(fits(d, k), "n=" << n << " too small for eps=" << eps);
  out.adjusted = (d != d0 || k != k0);
  out.d = static_cast<std::int32_t>(d);
  out.k = static_cast<std::int32_t>(k);

  GraphBuilder b(n);
  Vertex next = 1;  // vertex 0 is the source s
  out.source = 0;
  const std::int64_t per_copy = (static_cast<std::int64_t>(n) - 1) / k;
  std::int64_t remainder = (static_cast<std::int64_t>(n) - 1) % k;

  out.copies.resize(static_cast<std::size_t>(k));
  for (std::int64_t ci = 0; ci < k; ++ci) {
    LbCopy& copy = out.copies[static_cast<std::size_t>(ci)];
    std::int64_t budget = per_copy + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;

    // Path π_i: v_1..v_{d+1}.
    copy.pi.resize(static_cast<std::size_t>(d) + 1);
    for (auto& v : copy.pi) v = next++;
    budget -= d + 1;
    b.add_edge(out.source, copy.pi.front());  // s — s_i
    for (std::size_t j = 0; j + 1 < copy.pi.size(); ++j) {
      b.add_edge(copy.pi[j], copy.pi[j + 1]);  // the costly edges e^i_j
    }

    // Side paths P^i_j from v_j to z^i_j, t_j = 6 + 2(d-j) edges.
    copy.z.resize(static_cast<std::size_t>(d));
    for (std::int64_t j = 1; j <= d; ++j) {
      const std::int64_t t_j = 6 + 2 * (d - j);
      Vertex prev = copy.pi[static_cast<std::size_t>(j - 1)];  // v_j
      for (std::int64_t step = 0; step < t_j; ++step) {
        const Vertex nx = next++;
        b.add_edge(prev, nx);
        prev = nx;
      }
      copy.z[static_cast<std::size_t>(j - 1)] = prev;  // z^i_j
      budget -= t_j;
    }

    // X_i absorbs the remaining per-copy budget.
    FTB_CHECK(budget >= 1);
    copy.x.resize(static_cast<std::size_t>(budget));
    for (auto& v : copy.x) v = next++;

    const Vertex v_star = copy.pi.back();
    for (const Vertex xv : copy.x) b.add_edge(v_star, xv);
    for (const Vertex xv : copy.x)
      for (const Vertex zv : copy.z) b.add_edge(xv, zv);
  }
  FTB_CHECK(next == n);

  out.graph = b.build();

  // Resolve the costly edges Π now that edge ids exist.
  for (auto& copy : out.copies) {
    copy.pi_edges.clear();
    // s—s_i is *not* part of Π; only the path edges are.
    for (std::size_t j = 0; j + 1 < copy.pi.size(); ++j) {
      const EdgeId e = out.graph.find_edge(copy.pi[j], copy.pi[j + 1]);
      FTB_CHECK(e != kInvalidEdge);
      copy.pi_edges.push_back(e);
      out.pi_edges.push_back(e);
    }
  }
  return out;
}

std::vector<EdgeId> SingleSourceLb::forced_edges(std::int32_t copy,
                                                 std::int32_t j) const {
  FTB_CHECK(copy >= 0 && copy < k && j >= 1 && j <= d);
  const LbCopy& c = copies[static_cast<std::size_t>(copy)];
  const Vertex zj = c.z[static_cast<std::size_t>(j - 1)];
  std::vector<EdgeId> out;
  out.reserve(c.x.size());
  for (const Vertex xv : c.x) {
    const EdgeId e = graph.find_edge(xv, zj);
    FTB_CHECK(e != kInvalidEdge);
    out.push_back(e);
  }
  return out;
}

std::int64_t SingleSourceLb::min_x_size() const {
  std::int64_t mn = copies.empty() ? 0 : static_cast<std::int64_t>(copies[0].x.size());
  for (const auto& c : copies)
    mn = std::min(mn, static_cast<std::int64_t>(c.x.size()));
  return mn;
}

std::int64_t SingleSourceLb::certified_min_backup(std::int64_t r_budget) const {
  const std::int64_t forced_fails =
      std::max<std::int64_t>(0, static_cast<std::int64_t>(pi_edges.size()) - r_budget);
  return forced_fails * min_x_size();
}

std::int64_t SingleSourceLb::theorem_budget() const {
  return static_cast<std::int64_t>(
      std::floor(std::pow(static_cast<double>(graph.num_vertices()), 1.0 - eps) / 6.0));
}

// ---------------------------------------------------------------------------
// Multi-source construction (Theorem 5.4)
// ---------------------------------------------------------------------------

MultiSourceLb build_multi_source(Vertex n, std::int32_t K, double eps) {
  FTB_CHECK_MSG(eps > 0.0 && eps <= 0.5, "eps must be in (0, 1/2]");
  FTB_CHECK_MSG(K >= 1, "need at least one source");
  FTB_CHECK_MSG(n >= 32 * K, "n too small for K sources");

  MultiSourceLb out;
  out.eps = eps;
  out.K = K;
  const double nd = static_cast<double>(n);
  std::int64_t d = std::max<std::int64_t>(
      2, static_cast<std::int64_t>(
             std::floor(std::pow(nd / (4.0 * K), eps))));
  std::int64_t k = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::floor(std::pow(nd / K, 1.0 - 2.0 * eps))));

  // Vertex budget: K sources + k hubs + K·k fixed copies + X blocks (≥ 1
  // vertex per column).
  const auto fixed_total = [&](std::int64_t dd, std::int64_t kk) {
    return static_cast<std::int64_t>(K) + kk +
           static_cast<std::int64_t>(K) * kk * copy_fixed(dd);
  };
  const auto fits = [&](std::int64_t dd, std::int64_t kk) {
    return static_cast<std::int64_t>(n) >= fixed_total(dd, kk) + kk;
  };
  const std::int64_t d0 = d, k0 = k;
  while (k > 1 && !fits(d, k)) --k;
  while (d > 2 && !fits(d, k)) --d;
  FTB_CHECK_MSG(fits(d, k), "n=" << n << " too small for K=" << K
                                 << " eps=" << eps);
  out.adjusted = (d != d0 || k != k0);
  out.d = static_cast<std::int32_t>(d);
  out.k = static_cast<std::int32_t>(k);

  GraphBuilder b(n);
  Vertex next = 0;

  out.sources.resize(static_cast<std::size_t>(K));
  for (auto& s : out.sources) s = next++;
  out.hubs.resize(static_cast<std::size_t>(k));
  for (auto& h : out.hubs) h = next++;

  out.copies.assign(static_cast<std::size_t>(K),
                    std::vector<MsCopy>(static_cast<std::size_t>(k)));
  for (std::int32_t i = 0; i < K; ++i) {
    for (std::int32_t j = 0; j < k; ++j) {
      MsCopy& c = out.copies[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      c.pi.resize(static_cast<std::size_t>(d) + 1);
      for (auto& v : c.pi) v = next++;
      b.add_edge(out.sources[static_cast<std::size_t>(i)], c.pi.front());
      for (std::size_t l = 0; l + 1 < c.pi.size(); ++l) {
        b.add_edge(c.pi[l], c.pi[l + 1]);  // the costly edges e^{i,j}_l
      }
      c.z.resize(static_cast<std::size_t>(d));
      for (std::int64_t l = 1; l <= d; ++l) {
        const std::int64_t t_l = 6 + 2 * (d - l);
        Vertex prev = c.pi[static_cast<std::size_t>(l - 1)];
        for (std::int64_t step = 0; step < t_l; ++step) {
          const Vertex nx = next++;
          b.add_edge(prev, nx);
          prev = nx;
        }
        c.z[static_cast<std::size_t>(l - 1)] = prev;
      }
      // v*_{i,j} — hub edge.
      b.add_edge(c.pi.back(), out.hubs[static_cast<std::size_t>(j)]);
    }
  }

  // X blocks: distribute every remaining vertex across the k columns.
  std::int64_t x_budget = static_cast<std::int64_t>(n) - next;
  FTB_CHECK(x_budget >= k);
  out.x.assign(static_cast<std::size_t>(k), {});
  for (std::int32_t j = 0; j < k; ++j) {
    std::int64_t share = x_budget / k + (j < x_budget % k ? 1 : 0);
    auto& xs = out.x[static_cast<std::size_t>(j)];
    xs.resize(static_cast<std::size_t>(share));
    for (auto& v : xs) v = next++;
    for (const Vertex xv : xs) b.add_edge(out.hubs[static_cast<std::size_t>(j)], xv);
    // Complete bipartite X_j × Z_j (Z_j spans all sources of column j).
    for (std::int32_t i = 0; i < K; ++i) {
      const MsCopy& c = out.copies[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      for (const Vertex xv : xs)
        for (const Vertex zv : c.z) b.add_edge(xv, zv);
    }
  }
  FTB_CHECK(next == n);

  out.graph = b.build();
  for (auto& row : out.copies) {
    for (auto& c : row) {
      c.pi_edges.clear();
      for (std::size_t l = 0; l + 1 < c.pi.size(); ++l) {
        const EdgeId e = out.graph.find_edge(c.pi[l], c.pi[l + 1]);
        FTB_CHECK(e != kInvalidEdge);
        c.pi_edges.push_back(e);
        out.pi_edges.push_back(e);
      }
    }
  }
  return out;
}

std::vector<EdgeId> MultiSourceLb::forced_edges(std::int32_t i, std::int32_t j,
                                                std::int32_t l) const {
  FTB_CHECK(i >= 0 && i < K && j >= 0 && j < k && l >= 1 && l <= d);
  const MsCopy& c = copies[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
  const Vertex zl = c.z[static_cast<std::size_t>(l - 1)];
  std::vector<EdgeId> out;
  const auto& xs = x[static_cast<std::size_t>(j)];
  out.reserve(xs.size());
  for (const Vertex xv : xs) {
    const EdgeId e = graph.find_edge(xv, zl);
    FTB_CHECK(e != kInvalidEdge);
    out.push_back(e);
  }
  return out;
}

std::int64_t MultiSourceLb::min_x_size() const {
  std::int64_t mn = x.empty() ? 0 : static_cast<std::int64_t>(x[0].size());
  for (const auto& xs : x) mn = std::min(mn, static_cast<std::int64_t>(xs.size()));
  return mn;
}

std::int64_t MultiSourceLb::certified_min_backup(std::int64_t r_budget) const {
  const std::int64_t forced_fails =
      std::max<std::int64_t>(0, static_cast<std::int64_t>(pi_edges.size()) - r_budget);
  return forced_fails * min_x_size();
}

std::int64_t MultiSourceLb::theorem_budget() const {
  return static_cast<std::int64_t>(std::floor(
      K * std::pow(static_cast<double>(graph.num_vertices()), 1.0 - eps) / 6.0));
}

}  // namespace ftb::lb
