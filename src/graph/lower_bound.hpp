// lower_bound.hpp — the adversarial graph families of Section 5.
//
// Theorem 5.1 (single source): for ε ∈ (0, 1/2), the graph G_ε consists of
// k = ⌊n^{1-2ε}⌋ identical copies hanging off the source s. Copy i has
//   * a path π_i = [s_i = v_1, ..., v_{d+1} = v*_i] of length d = ⌊n^ε/4⌋
//     (these k·d "costly" edges form the set Π);
//   * side paths P^i_j from v_j to z^i_j of length t_j = 6 + 2(d-j)
//     (strictly decreasing with j, which makes the replacement path after
//     failing e^i_j = (v_j, v_{j+1}) unique);
//   * a vertex block X_i of Θ(n^{2ε}) vertices starred to v*_i;
//   * the complete bipartite graph X_i × Z_i.
// Failing e^i_j forces every edge of E^i_j = {(x, z^i_j) : x ∈ X_i} into any
// FT-BFS structure unless e^i_j is reinforced (Claim 5.3): the unique
// shortest s−x path in G \ {e^i_j} is π[s,v_j] ∘ P^i_j ∘ (z^i_j, x).
// With a budget of r reinforced edges, at least (|Π| − r)·|X_i| backup
// edges are certified — Ω(n^{1+ε}) at the theorem's budget ⌊n^{1-ε}/6⌋.
//
// Theorem 5.4 (multi source) replicates the pattern per source while
// *sharing* the X blocks between sources of the same column through hub
// vertices ṽ_j, yielding Ω(K^{1-ε} n^{1+ε}) forced edges under budget
// ⌊K·n^{1-ε}/6⌋.
//
// Both builders take a target vertex count n and distribute every leftover
// vertex into the X blocks (making the certified bound only stronger), so
// |V| == n exactly. If n is too small for the requested shape the builders
// shrink k (then d) and record `adjusted = true`.
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.hpp"

namespace ftb::lb {

/// One copy G_{ε,i} of the single-source construction.
struct LbCopy {
  std::vector<Vertex> pi;        // v_1..v_{d+1}; pi[0] = s_i, pi[d] = v*_i
  std::vector<EdgeId> pi_edges;  // e^i_1..e^i_d, e_j = (v_j, v_{j+1})
  std::vector<Vertex> z;         // z_1..z_d
  std::vector<Vertex> x;         // the X_i block
};

/// The Theorem 5.1 graph plus all metadata needed for certified counting.
struct SingleSourceLb {
  Graph graph;
  Vertex source = 0;
  double eps = 0;
  std::int32_t d = 0;               // costly-path length per copy
  std::int32_t k = 0;               // number of copies
  bool adjusted = false;            // true if (d,k) had to shrink to fit n
  std::vector<LbCopy> copies;
  std::vector<EdgeId> pi_edges;     // Π — all k·d costly edges

  /// E^i_j: the bipartite edges forced by the failure of e^i_j (Claim 5.3).
  std::vector<EdgeId> forced_edges(std::int32_t copy, std::int32_t j) const;

  /// min_i |X_i|.
  std::int64_t min_x_size() const;

  /// Certified combinatorial bound: any FT-BFS structure reinforcing at
  /// most `r_budget` edges contains ≥ (|Π| − r_budget)·min|X_i| bipartite
  /// backup edges (0 if the budget covers Π).
  std::int64_t certified_min_backup(std::int64_t r_budget) const;

  /// The theorem's budget ⌊n^{1-ε}/6⌋.
  std::int64_t theorem_budget() const;
};

/// Builds the Theorem 5.1 graph with exactly n vertices.
/// Requires ε ∈ (0, 1/2] and n large enough for at least d = 2 (throws
/// CheckError otherwise, after trying to shrink k and d).
SingleSourceLb build_single_source(Vertex n, double eps);

/// One (source i, column j) subgraph of the multi-source construction.
struct MsCopy {
  std::vector<Vertex> pi;        // v^{i,j}_1..v^{i,j}_{d+1}
  std::vector<EdgeId> pi_edges;  // d costly edges
  std::vector<Vertex> z;         // z^{i,j}_1..z^{i,j}_d
};

/// The Theorem 5.4 graph.
struct MultiSourceLb {
  Graph graph;
  std::vector<Vertex> sources;      // |sources| = K
  double eps = 0;
  std::int32_t d = 0;
  std::int32_t k = 0;               // columns per source
  std::int32_t K = 0;
  bool adjusted = false;
  // copies[i][j] for source i, column j.
  std::vector<std::vector<MsCopy>> copies;
  std::vector<Vertex> hubs;               // ṽ_j per column
  std::vector<std::vector<Vertex>> x;     // X_j per column (shared)
  std::vector<EdgeId> pi_edges;           // Π — all K·k·d costly edges

  /// Forced edges for failure of e^{i,j}_l (Claim 5.6): X_j × {z^{i,j}_l}.
  std::vector<EdgeId> forced_edges(std::int32_t i, std::int32_t j,
                                   std::int32_t l) const;

  std::int64_t min_x_size() const;
  std::int64_t certified_min_backup(std::int64_t r_budget) const;

  /// The theorem's budget ⌊K·n^{1-ε}/6⌋.
  std::int64_t theorem_budget() const;
};

/// Builds the Theorem 5.4 graph with exactly n vertices and K sources.
MultiSourceLb build_multi_source(Vertex n, std::int32_t K, double eps);

}  // namespace ftb::lb
