// canonical_bfs.hpp — unique ("canonical") shortest paths via the paper's
// weight assignment W, plus plain hop BFS.
//
// Section 2 of the paper fixes a positive weight assignment W : E → R>0 used
// only to break shortest-path ties *consistently in every subgraph* G' ⊆ G:
// SP(s,v,G',W) denotes the unique s−v shortest path under (hops, W)-
// lexicographic order. We realize W with independent uniform 64-bit integer
// perturbations: with ~2^40-range weights and graphs of < 2^22 edges the
// minimal path is unique with overwhelming probability, and a deterministic
// (parent id, edge id) fallback makes the construction fully deterministic
// even on collisions.
//
// Why this implements the paper's W faithfully:
//  * uniqueness        — isolation-lemma style argument, w.h.p.;
//  * subgraph-consistency — the same W is used in every G' ⊆ G;
//  * subpath closure   — lexicographic (hops, Σw) is an additive total
//                        order, so prefixes of canonical paths are
//                        canonical. All three are exactly what Claims 4.4–4.6
//                        consume.
//
// Complexity: canonical_sp runs in O(n + m) — a layered BFS followed by a
// single relaxation sweep. (A vertex at hop k always has its canonical
// predecessor at hop k-1, so within-layer order is irrelevant and no
// priority queue is needed.)
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/util/rng.hpp"

namespace ftb {

/// The paper's tie-breaking weight assignment W : E → [1, 2^40).
struct EdgeWeights {
  std::vector<std::uint64_t> w;  // indexed by EdgeId

  std::uint64_t operator[](EdgeId e) const {
    FTB_DCHECK(e >= 0 && static_cast<std::size_t>(e) < w.size());
    return w[static_cast<std::size_t>(e)];
  }

  /// Independent uniform weights in [1, 2^40), seeded deterministically.
  static EdgeWeights uniform_random(const Graph& g, std::uint64_t seed);
};

/// Restrictions applied to a traversal: a set of banned vertices, a set of
/// banned edges (masks may be null = none), up to two extra banned edges
/// and up to one extra banned vertex. This is how "G \ {e}", "G \ V(π)",
/// "H \ {e}", and the dual-failure "G \ {f1, f2}" are expressed without
/// copying the graph.
struct BfsBans {
  const std::vector<std::uint8_t>* banned_vertex = nullptr;  // size n, 1=ban
  const std::vector<std::uint8_t>* banned_edge_mask = nullptr;  // size m, 1=ban
  EdgeId banned_edge = kInvalidEdge;
  /// Second scalar edge ban: lets a caller express a two-edge failure (or
  /// an ambient first failure under a second banned edge) with no mask.
  EdgeId banned_edge2 = kInvalidEdge;
  /// Scalar vertex ban, composable with the mask — one destroyed router on
  /// top of whatever set the mask already expresses.
  Vertex banned_vertex_one = kInvalidVertex;

  bool vertex_banned(Vertex v) const {
    return v == banned_vertex_one ||
           (banned_vertex != nullptr &&
            (*banned_vertex)[static_cast<std::size_t>(v)] != 0);
  }
  bool edge_banned(EdgeId e) const {
    return e == banned_edge || e == banned_edge2 ||
           (banned_edge_mask != nullptr &&
            (*banned_edge_mask)[static_cast<std::size_t>(e)] != 0);
  }
};

/// Result of a plain hop-count BFS. Deterministic contract (shared with the
/// direction-optimizing kernel in bfs_kernel.hpp): `order` lists the source,
/// then each level's vertices ascending by id; `parent[v]` is the
/// minimum-id admissible neighbor of v in the previous level.
struct BfsResult {
  std::vector<std::int32_t> dist;     // kInfHops if unreachable
  std::vector<Vertex> parent;         // kInvalidVertex at source/unreached
  std::vector<EdgeId> parent_edge;    // kInvalidEdge at source/unreached
  /// Vertices level by level (source first); unreachable ones excluded.
  std::vector<Vertex> order;

  bool reachable(Vertex v) const {
    return dist[static_cast<std::size_t>(v)] < kInfHops;
  }
};

/// Plain BFS from `src` honoring `bans`. O(n + m). Compatibility wrapper
/// over the direction-optimizing kernel (bfs_kernel.hpp): runs on a
/// per-thread scratch arena and materializes a BfsResult. Hot loops should
/// use bfs_run + BfsScratch directly and skip the materialization.
BfsResult plain_bfs(const Graph& g, Vertex src, const BfsBans& bans = {});

/// The naive queue-based implementation of the same contract. Kept as the
/// independent differential-testing baseline for the kernel and as the
/// "naive kernel" leg of the perf benches.
BfsResult plain_bfs_reference(const Graph& g, Vertex src,
                              const BfsBans& bans = {});

/// Canonical ((hops, Σw)-lexicographic) single-source shortest paths.
struct CanonicalSp {
  std::vector<std::int32_t> hops;     // kInfHops if unreachable
  std::vector<std::uint64_t> wsum;    // valid only where reachable
  std::vector<Vertex> parent;
  std::vector<EdgeId> parent_edge;
  /// first_hop[v]: the first vertex after the source on the canonical
  /// src→v path (== v when parent[v] == src). The detour engine reads the
  /// last edge of a reversed path from this in O(1).
  std::vector<Vertex> first_hop;
  /// Vertices in finalization order (by layer), source first.
  std::vector<Vertex> order;

  bool reachable(Vertex v) const {
    return hops[static_cast<std::size_t>(v)] < kInfHops;
  }

  /// The canonical path [src, ..., v]. Precondition: reachable(v).
  std::vector<Vertex> path_from_source(Vertex v) const;
};

/// Computes the canonical shortest-path tree from `src` in G minus bans.
/// This is the two-pass reference implementation (layered BFS + relaxation
/// sweep), kept independent of the fused kernel (canonical_sp_run in
/// bfs_kernel.hpp) for differential testing; cold callers that want a
/// materialized CanonicalSp use it directly.
CanonicalSp canonical_sp(const Graph& g, const EdgeWeights& weights,
                         Vertex src, const BfsBans& bans = {});

/// THE canonical parent rule, in one place: among v's admissible neighbors
/// exactly one hop level up, the (wsum(u) + w(e))-minimal one, ties broken
/// by (parent id, edge id). `canonical_sp` pass 2 and the incremental
/// punctured-tree rebase (rebase_punctured_tree) both call this — the
/// bit-identity contract between them hangs on there being ONE copy of
/// the rule. `admissible(arc)` filters banned arcs; `hops(u)` must return
/// the FINAL hop distance of u in the graph being answered for.
struct CanonicalParentChoice {
  std::uint64_t wsum = 0;
  Vertex parent = kInvalidVertex;
  EdgeId edge = kInvalidEdge;
};
template <class Admissible, class HopsAt, class WsumAt>
CanonicalParentChoice pick_canonical_parent(const Graph& g,
                                            const EdgeWeights& weights,
                                            Vertex v, std::int32_t hv,
                                            Admissible&& admissible,
                                            HopsAt&& hops, WsumAt&& wsum) {
  CanonicalParentChoice best;
  for (const Arc& a : g.neighbors(v)) {
    if (!admissible(a)) continue;
    const Vertex u = a.to;
    if (hops(u) != hv - 1) continue;
    const std::uint64_t cand = wsum(u) + weights[a.edge];
    if (best.parent == kInvalidVertex || cand < best.wsum ||
        (cand == best.wsum &&
         (u < best.parent || (u == best.parent && a.edge < best.edge)))) {
      best.wsum = cand;
      best.parent = u;
      best.edge = a.edge;
    }
  }
  return best;
}

}  // namespace ftb
