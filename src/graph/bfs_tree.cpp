#include "src/graph/bfs_tree.hpp"

#include <algorithm>

namespace ftb {

BfsTree::BfsTree(const Graph& g, const EdgeWeights& weights, Vertex source)
    : BfsTree(g, weights, source, BfsBans{}) {}

BfsTree::BfsTree(const Graph& g, const EdgeWeights& weights, Vertex source,
                 const BfsBans& bans)
    : BfsTree(g, weights, source, canonical_sp(g, weights, source, bans)) {}

BfsTree::BfsTree(const Graph& g, const EdgeWeights& weights, Vertex source,
                 CanonicalSp sp)
    : g_(&g), weights_(&weights), source_(source), sp_(std::move(sp)) {
  build_derived();
}

void BfsTree::build_derived() {
  const Graph& g = *g_;
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  const std::size_t m = static_cast<std::size_t>(g.num_edges());

  // Children CSR. Parents point up; invert. Children come out sorted by id
  // because we scan vertices in id order.
  child_offsets_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const Vertex p = sp_.parent[v];
    if (p != kInvalidVertex) ++child_offsets_[static_cast<std::size_t>(p) + 1];
  }
  for (std::size_t i = 0; i < n; ++i) child_offsets_[i + 1] += child_offsets_[i];
  child_list_.resize(static_cast<std::size_t>(child_offsets_[n]));
  {
    csr_cursor_.assign(child_offsets_.begin(), child_offsets_.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      const Vertex p = sp_.parent[v];
      if (p != kInvalidVertex) {
        child_list_[static_cast<std::size_t>(
            csr_cursor_[static_cast<std::size_t>(p)]++)] =
            static_cast<Vertex>(v);
      }
    }
  }

  // Iterative preorder DFS with tin/tout and subtree sizes.
  tin_.assign(n, -1);
  tout_.assign(n, -1);
  subtree_size_.assign(n, 0);
  preorder_.clear();
  if (sp_.reachable(source_)) {
    auto& stack = dfs_stack_;  // (vertex, child idx)
    stack.clear();
    stack.emplace_back(source_, 0);
    std::int32_t clock = 0;
    tin_[idx(source_)] = clock++;
    preorder_.push_back(source_);
    while (!stack.empty()) {
      auto& [u, ci] = stack.back();
      const auto kids = children(u);
      if (ci < kids.size()) {
        const Vertex c = kids[ci++];
        tin_[idx(c)] = clock++;
        preorder_.push_back(c);
        stack.emplace_back(c, 0);
      } else {
        tout_[idx(u)] = clock;
        stack.pop_back();
      }
    }
  }
  num_reachable_ = static_cast<std::int32_t>(preorder_.size());
  // Subtree sizes in reverse preorder (children before parents).
  for (auto it = preorder_.rbegin(); it != preorder_.rend(); ++it) {
    std::int32_t sz = 1;
    for (const Vertex c : children(*it)) sz += subtree_size_[idx(c)];
    subtree_size_[idx(*it)] = sz;
  }

  // Tree edge table, ordered by preorder of the lower endpoint so that
  // "edges by increasing subtree position" enumerations are deterministic.
  lower_.assign(m, kInvalidVertex);
  tree_edges_.clear();
  tree_edges_.reserve(preorder_.size());
  for (const Vertex v : preorder_) {
    const EdgeId pe = sp_.parent_edge[idx(v)];
    if (pe != kInvalidEdge) {
      lower_[eidx(pe)] = v;
      tree_edges_.push_back(pe);
    }
  }
}

std::span<const Vertex> BfsTree::children(Vertex v) const {
  FTB_DCHECK(g_->valid_vertex(v));
  return {child_list_.data() + child_offsets_[idx(v)],
          child_list_.data() + child_offsets_[idx(v) + 1]};
}

std::span<const Vertex> BfsTree::subtree(Vertex v) const {
  FTB_DCHECK(reachable(v));
  const std::int32_t from = tin_[idx(v)];
  const std::int32_t to = tout_[idx(v)];
  return {preorder_.data() + from, preorder_.data() + to};
}

}  // namespace ftb
