// ftbfs_api.cpp — BuildSpec dispatch and the Session query plane.
#include "src/api/ftbfs_api.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <limits>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "src/core/dual_fault.hpp"
#include "src/core/fault_model.hpp"
#include "src/core/multi_source.hpp"
#include "src/core/replacement.hpp"
#include "src/core/validate.hpp"
#include "src/core/vertex_ftbfs.hpp"
#include "src/graph/bfs_kernel.hpp"
#include "src/graph/bfs_tree.hpp"
#include "src/graph/multi_source_bfs_kernel.hpp"
#include "src/io/binary_io.hpp"
#include "src/io/structure_io.hpp"
#include "src/util/free_list_pool.hpp"
#include "src/util/timer.hpp"

namespace ftb::api {

// ---------------------------------------------------------------------------
// BuildSpec

void BuildSpec::validate(const Graph& g) const {
  FTB_CHECK_MSG(fault_model == FaultClass::kEdge ||
                    fault_model == FaultClass::kVertex ||
                    fault_model == FaultClass::kEither ||
                    fault_model == FaultClass::kDual,
                "invalid BuildSpec: unknown fault model (got "
                    << static_cast<int>(fault_model) << ")");
  detail::check_sources(g, sources);
  if (fault_model == FaultClass::kEdge) {
    detail::check_epsilon(eps);
  }
}

EpsilonOptions BuildSpec::epsilon_options() const {
  EpsilonOptions opts;
  opts.eps = eps;
  opts.weight_seed = weight_seed;
  opts.pool = pool;
  opts.baseline_for_large_eps = baseline_for_large_eps;
  opts.k_rounds_override = k_rounds_override;
  opts.threshold_scale = threshold_scale;
  opts.disable_s2_light_flush = disable_s2_light_flush;
  opts.disable_s2_crossings = disable_s2_crossings;
  opts.reference_kernel = reference_kernel;
  opts.bit_parallel = bit_parallel;
  return opts;
}

VertexFtBfsOptions BuildSpec::vertex_options() const {
  VertexFtBfsOptions opts;
  opts.weight_seed = weight_seed;
  opts.pool = pool;
  opts.reference_kernel = reference_kernel;
  opts.bit_parallel = bit_parallel;
  return opts;
}

DualFtBfsOptions BuildSpec::dual_options() const {
  DualFtBfsOptions opts;
  opts.weight_seed = weight_seed;
  opts.pool = pool;
  opts.reference_kernel = reference_kernel;
  opts.bit_parallel = bit_parallel;
  opts.unpruned_dual = unpruned_dual;
  opts.site_dist_oracle = site_dist_oracle;
  opts.dfs_schedule = dual_dfs_schedule;
  return opts;
}

BuildResult build(const Graph& g, const BuildSpec& spec) {
  spec.validate(g);
  Timer total;
  std::optional<FtBfsStructure> structure;
  std::vector<EpsilonStats> per_source;
  std::vector<DualSiteTable> dual_tables;
  std::vector<DualSiteDistTable> dual_site_dist;

  const bool multi = spec.sources.size() > 1;
  switch (spec.fault_model) {
    case FaultClass::kEdge: {
      if (!multi) {
        EpsilonResult res = detail::build_epsilon_ftbfs_impl(
            g, spec.sources.front(), spec.epsilon_options());
        per_source.push_back(res.stats);
        structure.emplace(std::move(res.structure));
        break;
      }
      MultiSourceResult ms = detail::build_epsilon_ftmbfs_impl(
          g, spec.sources, spec.epsilon_options());
      per_source = std::move(ms.per_source);
      structure.emplace(std::move(ms.structure));
      break;
    }
    case FaultClass::kVertex: {
      if (!multi) {
        structure.emplace(detail::build_vertex_ftbfs_impl(
            g, spec.sources.front(), spec.vertex_options()));
        break;
      }
      MultiSourceResult ms = detail::build_vertex_ftmbfs_impl(
          g, spec.sources, spec.vertex_options());
      structure.emplace(std::move(ms.structure));
      break;
    }
    case FaultClass::kEither: {
      if (!multi) {
        structure.emplace(detail::build_either_ftbfs_impl(
            g, spec.sources.front(), spec.vertex_options()));
        break;
      }
      MultiSourceResult ms = detail::build_either_ftmbfs_impl(
          g, spec.sources, spec.vertex_options());
      structure.emplace(std::move(ms.structure));
      break;
    }
    case FaultClass::kDual: {
      if (!multi) {
        DualBuildResult r = detail::build_dual_failure_ftbfs_impl(
            g, spec.sources.front(), spec.dual_options());
        structure.emplace(std::move(r.structure));
        dual_tables.push_back(std::move(r.tables));
        if (spec.site_dist_oracle) {
          dual_site_dist.push_back(std::move(r.site_dist));
        }
        break;
      }
      DualMultiSourceResult r = detail::build_dual_failure_ftmbfs_impl(
          g, spec.sources, spec.dual_options());
      structure.emplace(std::move(r.structure));
      dual_tables = std::move(r.per_source);
      dual_site_dist = std::move(r.per_source_site_dist);
      break;
    }
  }
  return BuildResult{spec, spec.sources, std::move(*structure),
                     std::move(per_source), std::move(dual_tables),
                     std::move(dual_site_dist), total.seconds()};
}

// ---------------------------------------------------------------------------
// Session internals

namespace {

/// One worker's what-if workspace: a BFS arena plus the vertex-ban mask,
/// with the key of the traversal the arena currently holds so a repeat of
/// the same failure (across groups or batches) skips the BFS entirely.
/// Dual-failure serving keeps its own site-restricted arena alongside
/// (grown lazily, so non-dual sessions never pay for it).
struct WhatIfArena {
  BfsScratch bfs;
  std::vector<std::uint8_t> vertex_mask;  // all-zero whenever idle
  DualQueryArena dual;
  // Cached traversal key: (source, normalized fault pair); source ==
  // kInvalidVertex means "holds nothing". fault2 == -1 ⇔ single failure.
  Vertex cached_source = kInvalidVertex;
  FaultClass cached_kind = FaultClass::kEdge;
  std::int32_t cached_fault = -1;
  FaultClass cached_kind2 = FaultClass::kEdge;
  std::int32_t cached_fault2 = -1;
};

// The pooled-scratch machinery (FreeListPool + PoolLease) moved to
// src/util/free_list_pool.hpp so the multi-source kernel's lane scratch can
// ride the same lock-free free list as the what-if arenas.
using ArenaLease = PoolLease<WhatIfArena>;

/// One traversal group of a batch: every query naming the same normalized
/// (source, fault[, fault2]) key, so each distinct failure (pair) costs at
/// most one traversal.
struct QueryGroup {
  bool in_model_pair = false;
  std::vector<std::uint32_t> members;
};

struct GroupKey {
  std::int32_t source;
  std::uint8_t kind;
  std::int32_t fault;
  std::uint8_t kind2;
  std::int32_t fault2;
  bool operator==(const GroupKey&) const = default;
};

struct GroupKeyHash {
  std::size_t operator()(const GroupKey& k) const {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const std::uint64_t w :
         {static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.source)),
          (static_cast<std::uint64_t>(k.kind) << 32) |
              static_cast<std::uint32_t>(k.fault),
          (static_cast<std::uint64_t>(k.kind2) << 32) |
              static_cast<std::uint32_t>(k.fault2)}) {
      h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

/// A batch's classification workspace, pooled so the steady state serves
/// with ZERO per-batch heap allocation: vectors keep their high-water
/// capacity, group storage is reused up to n_groups, and the hash map is
/// cleared (buckets kept), not destroyed.
struct BatchScratch {
  std::vector<std::uint32_t> in_model;
  std::vector<QueryGroup> groups;  // high-water storage; n_groups live
  std::size_t n_groups = 0;
  std::unordered_map<GroupKey, std::size_t, GroupKeyHash> group_of;

  void reset() {
    in_model.clear();
    for (std::size_t i = 0; i < n_groups; ++i) groups[i].members.clear();
    n_groups = 0;
    group_of.clear();
  }
  QueryGroup& push_group(bool in_model_pair) {
    if (n_groups == groups.size()) groups.emplace_back();
    QueryGroup& grp = groups[n_groups++];
    grp.in_model_pair = in_model_pair;
    return grp;
  }
};

/// Per-plane counter accumulator, folded into the QueryResponse once per
/// worker instead of one atomic bump per query.
struct PlaneCounters {
  std::int64_t what_if_traversals = 0;
  std::int64_t pair_traversals = 0;
  std::int64_t site_oracle_hits = 0;
  std::int64_t pair_cache_hits = 0;
  std::int64_t pair_cache_misses = 0;
};

/// The normalized (unordered) failure pair of a query: elements sorted by
/// DualSite order, an absent second fault collapsed to {kEdge, -1}. Group
/// keys and arena cache keys both use exactly this, so a cached traversal
/// can never answer for a differently-ordered spelling of the same pair.
std::pair<DualSite, DualSite> normalized_pair(const Query& q) {
  DualSite a{q.kind, q.fault};
  DualSite b{q.kind2, q.fault2};
  if (q.fault2 >= 0 && b < a) std::swap(a, b);
  if (q.fault2 < 0) b = DualSite{FaultClass::kEdge, -1};
  return {a, b};
}

}  // namespace

struct Session::Impl {
  const Graph* g;
  FaultClass model;
  std::vector<Vertex> sources;
  FtBfsStructure structure;
  EdgeWeights weights;
  std::vector<BfsTree> trees;  // one per source, over `weights`
  // Engines per source; filled per the fault class (edge: every model but
  // kVertex; vertex: every model but kEdge). All immutable after
  // construction.
  std::vector<ReplacementPathEngine> edge_engines;
  std::vector<VertexReplacementEngine> vertex_engines;
  // Dual-failure serving state, one entry per source (kDual only): the
  // first-failure pair tables and the oracle classifying/answering pairs.
  std::vector<DualSiteTable> dual_tables;
  std::vector<DualFaultOracle> dual_oracles;
  // Site-local distance oracle tables (kDual only, optional): when sized
  // to the source set they are attached to the oracles and every in-model
  // pair answers O(1), zero traversals.
  std::vector<DualSiteDistTable> dual_site_dist;
  ThreadPool* pool;  // nullptr = global
  FreeListPool<WhatIfArena> arenas;
  FreeListPool<BatchScratch> batch_scratch;
  // Auto-tuned inline/sharded cutover (BatchOptions::inline_threshold < 0):
  // -1 = not measured yet. Benign racy init — concurrent first batches may
  // both measure and store near-identical values; the threshold is pure
  // strategy and never changes an answer.
  mutable std::atomic<std::int32_t> auto_inline_threshold{-1};
  // Degradation state: true when this session serves recomputed pair
  // tables because the artifact's were corrupt or absent (see
  // SessionConfig::tolerate_corruption). Immutable after construction —
  // a degraded session stays degraded for its whole lifetime.
  bool serving_degraded = false;
  std::vector<std::string> degradation;  // human-readable reasons
  // Accelerator-only notes (site-dist drops / rebuilds): losing the
  // accelerator loses speed, never answers, so these do NOT degrade the
  // session — fsck surfaces them as notes.
  std::vector<std::string> accel_notes;

  Impl(const Graph& graph, FtBfsStructure&& h, std::vector<Vertex> srcs,
       std::uint64_t weight_seed, ThreadPool* pool_in,
       std::vector<DualSiteTable> tables = {},
       std::vector<std::string> load_drops = {},
       std::vector<DualSiteDistTable> site_dist = {},
       bool want_site_dist = false,
       std::vector<std::string> accel_drops = {},
       bool bit_parallel = true, bool dual_dfs_schedule = true)
      : g(&graph),
        model(h.fault_class()),
        sources(std::move(srcs)),
        structure(std::move(h)),
        weights(EdgeWeights::uniform_random(graph, weight_seed)),
        dual_tables(std::move(tables)),
        dual_site_dist(std::move(site_dist)),
        pool(pool_in),
        serving_degraded(!load_drops.empty()),
        degradation(std::move(load_drops)),
        accel_notes(std::move(accel_drops)) {
    trees.reserve(sources.size());
    if (bit_parallel && sources.size() >= 2) {
      // One fused kernel sweep rebuilds every per-source canonical label
      // set; the adoption ctor below is bit-identical to the scalar
      // per-source rebuild, so the tree-union check still guards the
      // weight_seed contract.
      std::vector<BfsLane> lanes(sources.size());
      for (std::size_t i = 0; i < sources.size(); ++i) {
        lanes[i].source = sources[i];
      }
      std::vector<CanonicalSp> sps = ms_canonical_sp(graph, weights, lanes);
      for (std::size_t i = 0; i < sources.size(); ++i) {
        trees.emplace_back(graph, weights, sources[i], std::move(sps[i]));
      }
    } else {
      for (const Vertex s : sources) trees.emplace_back(graph, weights, s);
    }

    // The rebuilt canonical trees must be exactly the trees the structure
    // was built around — otherwise the engines' tables answer for a
    // different T0 and every "in-model" reply would be silently wrong
    // (classic cause: serving with a different weight_seed than the
    // build used).
    std::vector<EdgeId> tree_union;
    for (const BfsTree& t : trees) {
      tree_union.insert(tree_union.end(), t.tree_edges().begin(),
                        t.tree_edges().end());
    }
    std::sort(tree_union.begin(), tree_union.end());
    tree_union.erase(std::unique(tree_union.begin(), tree_union.end()),
                     tree_union.end());
    FTB_CHECK_MSG(tree_union == structure.tree_edges(),
                  "session trees do not match the deployed structure "
                  "(was the structure built with this weight_seed?)");

    const bool covers_edge = model != FaultClass::kVertex;
    const bool covers_vertex = model != FaultClass::kEdge;
    if (covers_edge) {
      ReplacementPathEngine::Config cfg;
      cfg.collect_detours = false;  // the plane serves distances only
      cfg.pool = pool;
      edge_engines.reserve(trees.size());
      for (const BfsTree& t : trees) edge_engines.emplace_back(t, cfg);
    }
    if (covers_vertex) {
      VertexReplacementEngine::Config cfg;
      cfg.collect_detours = false;
      cfg.pool = pool;
      vertex_engines.reserve(trees.size());
      for (const BfsTree& t : trees) vertex_engines.emplace_back(t, cfg);
    }
    if (model == FaultClass::kDual) {
      // Pair tables: artifact-provided (v4), or rebuilt deterministically
      // from the trees when the artifact carried none. The oracle then
      // re-checks each table against its tree (wrong weight_seed and
      // stale-table mistakes both surface as CheckError here).
      const bool need_tables = dual_tables.size() != sources.size();
      if (need_tables) {
        FTB_CHECK_MSG(dual_tables.empty(),
                      "dual pair tables do not match the source set");
      }
      // Site-dist accelerator: attach whatever arrived sized to the
      // source set; rebuild only when explicitly requested. A partial or
      // mismatched set is never attached.
      const bool need_sd =
          want_site_dist && dual_site_dist.size() != sources.size();
      if (dual_site_dist.size() != sources.size()) dual_site_dist.clear();
      if (need_tables || need_sd) {
        std::vector<DualSiteTable> fresh;
        fresh.reserve(trees.size());
        for (const BfsTree& t : trees) {
          DualSiteDistTable sd;
          fresh.push_back(detail::build_dual_site_table(
              t, pool, /*reference_kernel=*/false, nullptr,
              /*unpruned=*/false, need_sd ? &sd : nullptr, bit_parallel,
              dual_dfs_schedule));
          if (need_sd) dual_site_dist.push_back(std::move(sd));
        }
        if (need_tables) {
          dual_tables = std::move(fresh);
          // Serving recomputed tables, not the shipped ones: the answers
          // are bit-identical (the rebuild is deterministic from the
          // trees), but the session is flagged degraded so operators
          // notice the artifact did not carry what it was supposed to.
          serving_degraded = true;
          degradation.emplace_back(
              "pair tables recomputed from the graph (artifact carried "
              "none, or its pair-table section was dropped)");
        }
        if (need_sd) {
          accel_notes.emplace_back(
              "site-dist tables recomputed from the graph (artifact "
              "carried none, or its site-dist section was dropped)");
        }
      }
      dual_oracles.reserve(trees.size());
      for (std::size_t i = 0; i < trees.size(); ++i) {
        dual_oracles.emplace_back(trees[i], edge_engines[i],
                                  vertex_engines[i], dual_tables[i]);
      }
      if (dual_site_dist.size() == sources.size()) {
        // dual_site_dist never changes after this point, so the attached
        // pointers stay valid for the Impl's whole lifetime. attach
        // validates each table's shape against its tree and pair table.
        for (std::size_t i = 0; i < dual_oracles.size(); ++i) {
          dual_oracles[i].attach_site_dist(&dual_site_dist[i]);
        }
      }
    } else {
      FTB_CHECK_MSG(dual_tables.empty(),
                    "pair tables belong to dual-failure sessions only");
      dual_site_dist.clear();
    }
  }

  ThreadPool& worker_pool() const {
    return pool != nullptr ? *pool : ThreadPool::global();
  }

  bool covers_edge() const { return model != FaultClass::kVertex; }
  bool covers_vertex() const { return model != FaultClass::kEdge; }
  bool covers_pairs() const { return model == FaultClass::kDual; }
  /// All-or-nothing: attach happens only when every source has a table.
  bool has_site_dist() const {
    return !dual_oracles.empty() && dual_oracles.front().has_site_dist();
  }

  /// Traversal-free in-model pair attempt: the reducible ladder, plus the
  /// full site-local oracle when attached (then it ALWAYS answers).
  bool pair_fast(const Query& q, std::int32_t* out, bool* used_oracle) const {
    const auto si = static_cast<std::size_t>(q.source_index);
    return dual_oracles[si].dist_fast(q.v, DualSite{q.kind, q.fault},
                                      DualSite{q.kind2, q.fault2}, out,
                                      used_oracle);
  }

  /// In-model dual-failure answer. Precondition: classified kInModel with
  /// fault2 >= 0.
  std::int32_t dual_dist(const Query& q, WhatIfArena& arena,
                         std::int64_t* traversals,
                         std::int64_t* oracle_hits) const {
    std::int32_t fast = 0;
    bool used_oracle = false;
    if (pair_fast(q, &fast, &used_oracle)) {
      if (used_oracle && oracle_hits != nullptr) ++*oracle_hits;
      return fast;
    }
    const auto si = static_cast<std::size_t>(q.source_index);
    return dual_oracles[si].dist(q.v, DualSite{q.kind, q.fault},
                                 DualSite{q.kind2, q.fault2}, arena.dual,
                                 traversals);
  }

  /// The measured inline/sharded break-even: batches at most this large
  /// are served on the caller thread. One empty pool dispatch is timed
  /// (amortized over a few reps) and weighed against ~50ns per in-model
  /// lookup and the fraction of work parallelism can actually take off
  /// the caller — capped by the HARDWARE concurrency, since an 8-thread
  /// pool on a 1-core box removes nothing from the caller's critical
  /// path and sharding there is pure overhead at any batch size. The
  /// result is clamped to sane bounds and cached for the session's
  /// lifetime.
  std::int32_t inline_cutover() const {
    std::int32_t cached = auto_inline_threshold.load(std::memory_order_relaxed);
    if (cached >= 0) return cached;
    ThreadPool& wp = worker_pool();
    const std::size_t hw =
        std::max<unsigned>(1, std::thread::hardware_concurrency());
    const std::size_t workers = std::min(wp.thread_count(), hw);
    std::int32_t n_star = std::numeric_limits<std::int32_t>::max();
    if (workers > 1) {
      constexpr int kReps = 16;
      Timer t;
      for (int r = 0; r < kReps; ++r) {
        wp.parallel_for(workers, [](std::size_t) {});
      }
      const double dispatch_ns = t.seconds() * 1e9 / kReps;
      constexpr double kLookupNs = 50.0;
      const double gain = 1.0 - 1.0 / static_cast<double>(workers);
      n_star = static_cast<std::int32_t>(dispatch_ns / (kLookupNs * gain));
      n_star = std::clamp(n_star, 256, 1 << 20);
    }
    auto_inline_threshold.store(n_star, std::memory_order_relaxed);
    return n_star;
  }

  /// In-model O(1) answer. Precondition: classified kInModel.
  std::int32_t in_model_dist(const Query& q) const {
    const auto si = static_cast<std::size_t>(q.source_index);
    if (q.kind == FaultClass::kEdge) {
      return edge_engines[si].replacement_dist(q.v, q.fault);
    }
    return vertex_engines[si].replacement_dist(q.v, q.fault);
  }

  /// Literal BFS on H minus the query's failure (or failure pair) from
  /// the query's source into `arena`, unless the arena already holds
  /// exactly that traversal. Returns true when a traversal actually ran.
  bool what_if_traverse(const Query& q, WhatIfArena& arena) const {
    const Vertex src = sources[static_cast<std::size_t>(q.source_index)];
    // Normalized pair → {a, b} and {b, a} share one cache entry, exactly
    // like the batch grouping key.
    const auto [a, b] = normalized_pair(q);
    if (arena.cached_source == src && arena.cached_kind == a.kind &&
        arena.cached_fault == a.id && arena.cached_kind2 == b.kind &&
        arena.cached_fault2 == b.id) {
      return false;
    }
    BfsBans bans;
    bans.banned_edge_mask = &structure.complement_mask();
    {
      const PairBans pair(a, b, arena.vertex_mask,
                          static_cast<std::size_t>(g->num_vertices()), bans);
      bfs_run(*g, src, bans, arena.bfs);
    }
    arena.cached_source = src;
    arena.cached_kind = a.kind;
    arena.cached_fault = a.id;
    arena.cached_kind2 = b.kind;
    arena.cached_fault2 = b.id;
    return true;
  }

  std::int32_t what_if_dist(const Query& q, const WhatIfArena& arena) const {
    if (q.kind == FaultClass::kVertex && q.v == q.fault) return kInfHops;
    if (q.fault2 >= 0 && q.kind2 == FaultClass::kVertex && q.v == q.fault2) {
      return kInfHops;
    }
    return arena.bfs.dist(q.v);
  }

  /// Model-level classification (malformed queries are rejected before
  /// this runs). A query's own source never fails — refused even as a
  /// what-if, and a pair containing it is refused whole. Another source of
  /// a multi-source session CAN fail: the FT-MBFS vertex contract is per
  /// source (x ∉ {s} for each s ∈ S), and the engine serving source_index
  /// answers any other vertex in O(1).
  QueryOutcome classify(const Query& q) const {
    const Vertex src = sources[static_cast<std::size_t>(q.source_index)];
    if (q.fault2 >= 0) {  // dual-failure pair
      if ((q.kind == FaultClass::kVertex &&
           static_cast<Vertex>(q.fault) == src) ||
          (q.kind2 == FaultClass::kVertex &&
           static_cast<Vertex>(q.fault2) == src)) {
        return QueryOutcome::kRefused;
      }
      if (covers_pairs()) {
        // A degraded session answers off recomputed tables — same
        // distance, honest tag.
        return serving_degraded ? QueryOutcome::kDegraded
                                : QueryOutcome::kInModel;
      }
      return q.allow_what_if ? QueryOutcome::kWhatIf
                             : QueryOutcome::kRefused;
    }
    if (q.kind == FaultClass::kEdge) {
      if (covers_edge() && !structure.is_reinforced(q.fault)) {
        return QueryOutcome::kInModel;
      }
    } else {
      if (static_cast<Vertex>(q.fault) == src) {
        return QueryOutcome::kRefused;
      }
      if (covers_vertex()) return QueryOutcome::kInModel;
    }
    return q.allow_what_if ? QueryOutcome::kWhatIf : QueryOutcome::kRefused;
  }

  /// Batch-level input validation: API misuse throws, serially, before any
  /// parallel work starts.
  void validate_query(const Query& q) const {
    FTB_CHECK_MSG(q.kind == FaultClass::kEdge || q.kind == FaultClass::kVertex,
                  "invalid Query: kind must be kEdge or kVertex");
    FTB_CHECK_MSG(q.v >= 0 && q.v < g->num_vertices(),
                  "invalid Query: vertex " << q.v << " out of range [0, "
                                           << g->num_vertices() << ")");
    FTB_CHECK_MSG(q.source_index >= 0 &&
                      static_cast<std::size_t>(q.source_index) <
                          sources.size(),
                  "invalid Query: source_index " << q.source_index
                                                 << " out of range [0, "
                                                 << sources.size() << ")");
    const std::int32_t limit = q.kind == FaultClass::kEdge
                                   ? static_cast<std::int32_t>(g->num_edges())
                                   : g->num_vertices();
    FTB_CHECK_MSG(q.fault >= 0 && q.fault < limit,
                  "invalid Query: fault " << q.fault << " out of range [0, "
                                          << limit << ")");
    if (q.fault2 >= 0) {
      FTB_CHECK_MSG(
          q.kind2 == FaultClass::kEdge || q.kind2 == FaultClass::kVertex,
          "invalid Query: kind2 must be kEdge or kVertex");
      const std::int32_t limit2 =
          q.kind2 == FaultClass::kEdge
              ? static_cast<std::int32_t>(g->num_edges())
              : g->num_vertices();
      FTB_CHECK_MSG(q.fault2 < limit2,
                    "invalid Query: fault2 " << q.fault2
                                             << " out of range [0, "
                                             << limit2 << ")");
    }
  }
};

// ---------------------------------------------------------------------------
// Session surface

Session::Session(std::shared_ptr<const Impl> impl) : impl_(std::move(impl)) {}

Session Session::open(const Graph& g, const BuildSpec& spec) {
  return deploy(g, build(g, spec));
}

Session Session::deploy(const Graph& g, BuildResult result) {
  FTB_CHECK_MSG(&result.structure.graph() == &g,
                "BuildResult was built against a different graph");
  return Session(std::make_shared<const Impl>(
      g, std::move(result.structure), std::move(result.sources),
      result.spec.weight_seed, result.spec.pool,
      std::move(result.dual_tables), std::vector<std::string>{},
      std::move(result.dual_site_dist), result.spec.site_dist_oracle,
      std::vector<std::string>{}, result.spec.bit_parallel,
      result.spec.dual_dfs_schedule));
}

Session Session::load(const Graph& g, const std::string& path,
                      const Config& cfg) {
  std::vector<Vertex> sources;
  std::vector<DualSiteTable> tables;
  std::vector<DualSiteDistTable> site_dist;
  io::ReadOptions opts;
  opts.tolerate_pair_tables = cfg.tolerate_corruption;
  opts.tolerate_site_dist = cfg.tolerate_corruption;
  io::LoadReport report;
  FtBfsStructure h = io::load_structure(g, path, &sources, &tables, opts,
                                        &report, &site_dist);
  // Partition the drops: losing the pair tables degrades serving (answers
  // come off recomputed tables), losing the site-dist section only loses
  // the accelerator — the pair tables still answer every query.
  std::vector<std::string> degrade_drops, accel_drops;
  for (std::string& d : report.dropped) {
    (d.rfind("site-dist", 0) == 0 ? accel_drops : degrade_drops)
        .push_back(std::move(d));
  }
  return Session(std::make_shared<const Impl>(
      g, std::move(h), std::move(sources), cfg.weight_seed, cfg.pool,
      std::move(tables), std::move(degrade_drops), std::move(site_dist),
      cfg.site_dist_oracle, std::move(accel_drops), cfg.bit_parallel,
      cfg.dual_dfs_schedule));
}

void Session::save(const std::string& path) const {
  io::save_structure(impl_->structure, impl_->sources, impl_->dual_tables,
                     path);
}

void Session::save_v5(const std::string& path) const {
  io::save_structure_v5(impl_->structure, impl_->sources, impl_->dual_tables,
                        impl_->dual_site_dist, path);
}

void Session::save_v6(const std::string& path) const {
  io::save_structure_v6(impl_->structure, impl_->sources, impl_->dual_tables,
                        impl_->dual_site_dist, path);
}

const Graph& Session::graph() const { return *impl_->g; }
const FtBfsStructure& Session::structure() const { return impl_->structure; }
FaultClass Session::fault_model() const { return impl_->model; }
std::span<const Vertex> Session::sources() const { return impl_->sources; }

std::int32_t Session::distance(std::int32_t source_index, Vertex v) const {
  FTB_CHECK_MSG(source_index >= 0 && static_cast<std::size_t>(source_index) <
                                         impl_->sources.size(),
                "invalid source_index " << source_index);
  FTB_CHECK_MSG(v >= 0 && v < impl_->g->num_vertices(),
                "invalid vertex " << v);
  return impl_->trees[static_cast<std::size_t>(source_index)].depth(v);
}

QueryResult Session::query_one(const Query& q) const {
  const Impl& im = *impl_;
  im.validate_query(q);
  QueryResult r;
  r.outcome = im.classify(q);
  switch (r.outcome) {
    case QueryOutcome::kInModel:
    case QueryOutcome::kDegraded:  // same tables, honest tag
      if (q.fault2 >= 0) {
        // Traversal-free pairs skip the arena lease entirely.
        if (!im.pair_fast(q, &r.dist, nullptr)) {
          ArenaLease arena(im.arenas);
          r.dist = im.dual_dist(q, *arena, nullptr, nullptr);
        }
      } else {
        r.dist = im.in_model_dist(q);
      }
      break;
    case QueryOutcome::kWhatIf: {
      ArenaLease arena(im.arenas);
      im.what_if_traverse(q, *arena);
      r.dist = im.what_if_dist(q, *arena);
      break;
    }
    case QueryOutcome::kRefused:
    case QueryOutcome::kBudgetExhausted:  // classify never emits this
      break;
  }
  return r;
}

QueryResponse Session::query(QueryBatch batch) const {
  return query(batch, BatchOptions{});
}

QueryResponse Session::query(QueryBatch batch,
                             const BatchOptions& opts) const {
  // The deadline anchors at batch arrival; without one the clock is never
  // read (it costs more than a whole small in-model batch).
  const bool has_deadline = opts.deadline_seconds > 0;
  const auto batch_start = has_deadline
                               ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{};
  const Impl& im = *impl_;
  QueryResponse resp;
  resp.results.assign(batch.size(), QueryResult{});
  if (batch.empty()) return resp;

  // Adaptive cutover: below the (measured or overridden) break-even the
  // whole batch is served inline on the caller thread — no pool dispatch,
  // and O(1) answers are written during the classification pass itself.
  const std::int32_t threshold = opts.inline_threshold >= 0
                                     ? opts.inline_threshold
                                     : im.inline_cutover();
  const bool inline_serve =
      batch.size() <= static_cast<std::size_t>(threshold);
  // With the site-local oracle attached every in-model pair is O(1) and
  // joins the in-model plane; without it pairs group for (at most) one
  // site-restricted traversal per distinct pair.
  const bool oracle_pairs = im.has_site_dist();

  // Serial pass over a pooled scratch (zero per-batch allocation once the
  // high-water marks are warm): validate (throws before any parallel
  // work), classify, and group every traversal-shaped query — what-ifs
  // and non-oracle in-model pairs — by (source, normalized fault[,
  // fault2]) so each distinct failure (pair) is traversed at most once.
  // The scratch is leased LAZILY: an inline batch whose every answer is
  // O(1) — the high-QPS steady state — pays for the response vector and
  // nothing else, so small batches stay ahead of a bare query_one loop.
  std::optional<PoolLease<BatchScratch>> scratch;
  BatchScratch* scp = nullptr;
  const auto sc_get = [&]() -> BatchScratch& {
    if (scp == nullptr) {
      scratch.emplace(im.batch_scratch);
      scp = &**scratch;
      scp->reset();
    }
    return *scp;
  };
  if (!inline_serve) sc_get();  // the sharded path always shards a list
  const auto key_of = [](const Query& q) {
    const auto [a, b] = normalized_pair(q);
    return GroupKey{q.source_index, static_cast<std::uint8_t>(a.kind), a.id,
                    static_cast<std::uint8_t>(b.kind), b.id};
  };
  const auto group_push = [&](std::size_t i, const Query& q,
                              bool in_model_pair) {
    BatchScratch& sc = sc_get();
    const auto [it, inserted] =
        sc.group_of.try_emplace(key_of(q), sc.n_groups);
    if (inserted) sc.push_group(in_model_pair);
    sc.groups[it->second].members.push_back(static_cast<std::uint32_t>(i));
  };
  PlaneCounters inline_pc;
  std::int64_t n_in_model = 0, n_what_if = 0, n_refused = 0, n_degraded = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Query& q = batch[i];
    im.validate_query(q);
    const QueryOutcome outcome = im.classify(q);
    resp.results[i].outcome = outcome;
    switch (outcome) {
      case QueryOutcome::kInModel:
      case QueryOutcome::kDegraded:  // recomputed tables, same serving path
        outcome == QueryOutcome::kInModel ? ++n_in_model : ++n_degraded;
        if (q.fault2 >= 0 && !oracle_pairs) {
          group_push(i, q, /*in_model_pair=*/true);
        } else if (inline_serve) {
          if (q.fault2 >= 0) {
            bool used_oracle = false;
            im.pair_fast(q, &resp.results[i].dist, &used_oracle);
            if (used_oracle) ++inline_pc.site_oracle_hits;
          } else {
            resp.results[i].dist = im.in_model_dist(q);
          }
        } else {
          scp->in_model.push_back(static_cast<std::uint32_t>(i));
        }
        break;
      case QueryOutcome::kWhatIf:
        ++n_what_if;
        group_push(i, q, /*in_model_pair=*/false);
        break;
      case QueryOutcome::kRefused:
        ++n_refused;
        break;
      case QueryOutcome::kBudgetExhausted:  // classify never emits this
        break;
    }
  }

  // Traversal-plane service limits: the batch budget charges one unit per
  // group up front and refunds it when no traversal actually ran (arena
  // cache hit, or a pair group the reducible ladder absorbed) — the
  // budget bounds work actually paid for, not queries served. A deadline
  // is checked once per group before it starts; a group already
  // traversing is finished, not aborted.
  const bool has_budget = opts.max_traversals >= 0;
  const auto deadline =
      batch_start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            has_deadline ? opts.deadline_seconds : 0));
  std::atomic<std::int64_t> budget{has_budget ? opts.max_traversals : 0};

  // One group's service: at most one traversal (literal for what-ifs,
  // site-restricted for non-oracle pairs), answers fanned out to every
  // member, counters accumulated locally and folded in once per worker.
  const auto serve_group = [&](const QueryGroup& grp, WhatIfArena& arena,
                               PlaneCounters& pc) {
    const auto exhaust = [&] {
      for (const std::uint32_t idx : grp.members) {
        resp.results[idx].outcome = QueryOutcome::kBudgetExhausted;
        resp.results[idx].dist = kInfHops;
      }
    };
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      exhaust();
      return;
    }
    if (has_budget &&
        budget.fetch_sub(1, std::memory_order_relaxed) <= 0) {
      budget.fetch_add(1, std::memory_order_relaxed);
      exhaust();
      return;
    }
    if (grp.in_model_pair) {
      const std::int64_t h0 = arena.dual.cache_hits();
      const std::int64_t m0 = arena.dual.cache_misses();
      std::int64_t ran = 0;
      for (const std::uint32_t idx : grp.members) {
        resp.results[idx].dist =
            im.dual_dist(batch[idx], arena, &ran, &pc.site_oracle_hits);
      }
      pc.pair_cache_hits += arena.dual.cache_hits() - h0;
      pc.pair_cache_misses += arena.dual.cache_misses() - m0;
      if (ran != 0) {
        pc.pair_traversals += ran;
      } else if (has_budget) {
        budget.fetch_add(1, std::memory_order_relaxed);  // reducible/cached
      }
      return;
    }
    if (im.what_if_traverse(batch[grp.members.front()], arena)) {
      ++pc.what_if_traversals;
    } else if (has_budget) {
      budget.fetch_add(1, std::memory_order_relaxed);  // arena cache hit
    }
    for (const std::uint32_t idx : grp.members) {
      resp.results[idx].dist = im.what_if_dist(batch[idx], arena);
    }
  };
  const auto fold = [&resp](const PlaneCounters& pc) {
    resp.what_if_traversals += pc.what_if_traversals;
    resp.pair_traversals += pc.pair_traversals;
    resp.site_oracle_hits += pc.site_oracle_hits;
    resp.pair_cache_hits += pc.pair_cache_hits;
    resp.pair_cache_misses += pc.pair_cache_misses;
  };

  if (inline_serve) {
    // O(1) answers were written during the serial pass; drain the groups
    // on the caller thread with ONE arena whose traversal cache persists
    // across the whole batch. A group-free batch never leased a scratch.
    if (scp != nullptr && scp->n_groups > 0) {
      ArenaLease arena(im.arenas);
      for (std::size_t gi = 0; gi < scp->n_groups; ++gi) {
        serve_group(scp->groups[gi], *arena, inline_pc);
      }
    }
    fold(inline_pc);
  } else {
    BatchScratch& sc = *scp;
    ThreadPool& pool = im.worker_pool();
    // In-model plane: pure O(1) table/oracle reads against immutable
    // state — embarrassingly parallel, no scratch beyond the index list.
    std::atomic<std::int64_t> oracle_hits{0};
    pool.parallel_for(sc.in_model.size(), [&](std::size_t k) {
      const std::uint32_t idx = sc.in_model[k];
      const Query& q = batch[idx];
      if (q.fault2 >= 0) {
        bool used_oracle = false;
        im.pair_fast(q, &resp.results[idx].dist, &used_oracle);
        if (used_oracle) {
          oracle_hits.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        resp.results[idx].dist = im.in_model_dist(q);
      }
    });
    resp.site_oracle_hits += oracle_hits.load();

    // Traversal plane: one leased arena per group.
    std::atomic<std::int64_t> wt{0}, pt{0}, oh{0}, ch{0}, cm{0};
    pool.parallel_for(sc.n_groups, [&](std::size_t gi) {
      ArenaLease arena(im.arenas);
      PlaneCounters pc;
      serve_group(sc.groups[gi], *arena, pc);
      wt.fetch_add(pc.what_if_traversals, std::memory_order_relaxed);
      pt.fetch_add(pc.pair_traversals, std::memory_order_relaxed);
      oh.fetch_add(pc.site_oracle_hits, std::memory_order_relaxed);
      ch.fetch_add(pc.pair_cache_hits, std::memory_order_relaxed);
      cm.fetch_add(pc.pair_cache_misses, std::memory_order_relaxed);
    });
    resp.what_if_traversals += wt.load();
    resp.pair_traversals += pt.load();
    resp.site_oracle_hits += oh.load();
    resp.pair_cache_hits += ch.load();
    resp.pair_cache_misses += cm.load();
  }

  // Counter tally: a batch that served no groups kept every classified
  // outcome, so the serial-pass counts stand as-is. A group that lost the
  // budget race (or the deadline) flipped its members' outcomes, so only
  // group-bearing batches pay the re-count over the results.
  if (scp != nullptr && scp->n_groups > 0) {
    for (const QueryResult& r : resp.results) {
      switch (r.outcome) {
        case QueryOutcome::kInModel:
          ++resp.in_model;
          break;
        case QueryOutcome::kWhatIf:
          ++resp.what_if;
          break;
        case QueryOutcome::kRefused:
          ++resp.refused;
          break;
        case QueryOutcome::kDegraded:
          ++resp.degraded;
          break;
        case QueryOutcome::kBudgetExhausted:
          ++resp.budget_exhausted;
          break;
      }
    }
  } else {
    resp.in_model = n_in_model;
    resp.what_if = n_what_if;
    resp.refused = n_refused;
    resp.degraded = n_degraded;
  }

  return resp;
}

// ---------------------------------------------------------------------------
// fsck: the serving-plane audit.

std::string FsckReport::to_string() const {
  std::ostringstream os;
  if (!ok) {
    os << "fsck: FAILED, " << errors.size() << " of " << checks
       << " checks violated";
  } else if (degraded) {
    os << "fsck: DEGRADED, " << checks << " checks ok";
  } else {
    os << "fsck: ok, " << checks << " checks";
  }
  for (const std::string& e : errors) os << "\n  error: " << e;
  for (const std::string& n : notes) os << "\n  note: " << n;
  return os.str();
}

bool Session::degraded() const { return impl_->serving_degraded; }

FsckReport Session::fsck() const {
  const Impl& im = *impl_;
  const Graph& g = *im.g;
  const FtBfsStructure& h = im.structure;
  FsckReport rep;
  rep.degraded = im.serving_degraded;
  rep.notes = im.degradation;
  rep.notes.insert(rep.notes.end(), im.accel_notes.begin(),
                   im.accel_notes.end());
  const auto audit = [&rep](bool held, std::string what) {
    ++rep.checks;
    if (!held) rep.errors.push_back(std::move(what));
  };

  // Edge-partition invariants: E(H) sorted/unique/in-range, T0 ⊆ E(H),
  // E' ⊆ E(H).
  {
    bool in_range = true, sorted = true;
    EdgeId prev = -1;
    for (const EdgeId e : h.edges()) {
      if (e < 0 || e >= g.num_edges()) in_range = false;
      if (e <= prev) sorted = false;
      prev = e;
    }
    audit(in_range, "structure edge out of graph range");
    audit(sorted, "structure edge list not sorted/unique");
    bool tree_in_h = true;
    for (const EdgeId e : h.tree_edges()) {
      if (e < 0 || e >= g.num_edges() || !h.contains(e)) tree_in_h = false;
    }
    audit(tree_in_h, "tree edge outside E(H)");
    bool reinf_in_h = true;
    for (const EdgeId e : h.reinforced()) {
      if (e < 0 || e >= g.num_edges() || !h.contains(e)) reinf_in_h = false;
    }
    audit(reinf_in_h, "reinforced edge outside E(H)");
  }

  // Source set and per-source canonical trees: root at depth 0, every
  // reachable vertex one hop below its parent via a structure tree edge.
  audit(!im.sources.empty() && im.sources.front() == h.source(),
        "sources[0] != structure source");
  audit(im.trees.size() == im.sources.size(),
        "tree count != source count");
  std::vector<EdgeId> tree_union;
  for (std::size_t i = 0;
       i < im.trees.size() && i < im.sources.size(); ++i) {
    const BfsTree& t = im.trees[i];
    const std::string tag = " (source " + std::to_string(im.sources[i]) + ")";
    audit(t.source() == im.sources[i] && t.depth(t.source()) == 0,
          "tree root invariant violated" + tag);
    bool parent_ok = true, depth_ok = true, edge_ok = true;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (v == t.source() || !t.reachable(v)) continue;
      const Vertex p = t.parent(v);
      if (p < 0 || p >= g.num_vertices() || !t.reachable(p)) {
        parent_ok = false;
        continue;
      }
      if (t.depth(v) != t.depth(p) + 1) depth_ok = false;
      const EdgeId pe = t.parent_edge(v);
      if (pe < 0 || pe >= g.num_edges() || !h.contains(pe) ||
          !t.is_tree_edge(pe)) {
        edge_ok = false;
      }
    }
    audit(parent_ok, "tree parent out of range or unreachable" + tag);
    audit(depth_ok, "tree depth != parent depth + 1" + tag);
    audit(edge_ok, "tree parent edge not a structure edge" + tag);
    tree_union.insert(tree_union.end(), t.tree_edges().begin(),
                      t.tree_edges().end());
  }
  std::sort(tree_union.begin(), tree_union.end());
  tree_union.erase(std::unique(tree_union.begin(), tree_union.end()),
                   tree_union.end());
  audit(tree_union == h.tree_edges(),
        "canonical tree union != deployed tree edges");

  // Dual pair tables: one per source; offsets a monotone cover of the
  // edge pool; every pooled edge a structure edge, sorted per site.
  if (im.model == FaultClass::kDual) {
    audit(im.dual_tables.size() == im.sources.size(),
          "pair-table count != source count");
    for (std::size_t i = 0; i < im.dual_tables.size(); ++i) {
      const DualSiteTable& tbl = im.dual_tables[i];
      const std::string tag =
          " (pair table " + std::to_string(i) + ")";
      const bool shape_ok =
          tbl.offsets.size() == tbl.sites.size() + 1 &&
          (tbl.offsets.empty() || tbl.offsets.front() == 0) &&
          (tbl.offsets.empty() ||
           tbl.offsets.back() ==
               static_cast<std::int64_t>(tbl.edge_pool.size()));
      audit(shape_ok, "pair-table offsets do not cover the edge pool" + tag);
      bool monotone = true;
      for (std::size_t k = 0; k + 1 < tbl.offsets.size(); ++k) {
        if (tbl.offsets[k] > tbl.offsets[k + 1]) monotone = false;
      }
      audit(monotone, "pair-table offsets not monotone" + tag);
      bool pool_ok = true;
      if (shape_ok && monotone) {
        for (std::size_t s = 0; s < tbl.num_sites(); ++s) {
          EdgeId prev = -1;
          for (const EdgeId e : tbl.subset(s)) {
            if (e < 0 || e >= g.num_edges() || !h.contains(e) || e <= prev) {
              pool_ok = false;
            }
            prev = e;
          }
        }
      }
      audit(pool_ok,
            "pair-table subset edge not a sorted structure edge" + tag);
    }
    // Site-dist accelerator (optional): attached all-or-nothing, offsets
    // a monotone cover of the per-slot arrays, rows covered end to end.
    if (!im.dual_site_dist.empty()) {
      audit(im.dual_site_dist.size() == im.sources.size(),
            "site-dist table count != source count");
      for (std::size_t i = 0; i < im.dual_site_dist.size() &&
                              i < im.dual_tables.size();
           ++i) {
        const DualSiteDistTable& sd = im.dual_site_dist[i];
        const std::string tag =
            " (site-dist table " + std::to_string(i) + ")";
        const bool shape_ok =
            sd.site_offsets.size() == im.dual_tables[i].num_sites() + 1 &&
            !sd.site_offsets.empty() && sd.site_offsets.front() == 0 &&
            sd.site_offsets.back() ==
                static_cast<std::int64_t>(sd.num_slots()) &&
            sd.tf_depth.size() == sd.num_slots() &&
            sd.row_offsets.size() == sd.num_slots() + 1;
        audit(shape_ok,
              "site-dist offsets do not cover the slot arrays" + tag);
        bool monotone = true;
        for (std::size_t k = 0; k + 1 < sd.site_offsets.size(); ++k) {
          if (sd.site_offsets[k] > sd.site_offsets[k + 1]) monotone = false;
        }
        for (std::size_t k = 0; k + 1 < sd.row_offsets.size(); ++k) {
          if (sd.row_offsets[k] > sd.row_offsets[k + 1]) monotone = false;
        }
        audit(monotone && (sd.row_offsets.empty() ||
                           (sd.row_offsets.front() == 0 &&
                            sd.row_offsets.back() ==
                                static_cast<std::int64_t>(sd.rows.size()))),
              "site-dist row offsets not a monotone cover" + tag);
      }
    }
  } else {
    audit(im.dual_tables.empty(),
          "pair tables present on a non-dual session");
    audit(im.dual_site_dist.empty(),
          "site-dist tables present on a non-dual session");
  }

  rep.ok = rep.errors.empty();
  return rep;
}

}  // namespace ftb::api
