// ftbfs_api.hpp — the one public facade of the library: ftb::api.
//
// The paper gives ONE family of structures parameterized by (fault model,
// ε, source set); historically the repo exposed it as six unrelated entry
// points with three option structs, and the serving side was a per-model
// template documented as "NOT thread-safe". This header replaces all of
// that with two nouns:
//
//   * BuildSpec — the full parameterization (fault model × ε × sources ×
//     tuning knobs), validated up front with one CheckError message shape
//     ("invalid BuildSpec: …") shared by the API, the legacy wrappers and
//     the CLI. `build(graph, spec)` dispatches to the right pipeline:
//
//         fault_model   sources   pipeline
//         kEdge         1         ε FT-BFS   (S0→S1/S2→F; ε = 0 reinforced
//                                 tree, ε ≥ 1/2 the ESA'13 baseline)
//         kEdge         k > 1     ε FT-MBFS union (§5)
//         kVertex       1         vertex-fault ESA'13 baseline
//         kVertex       k > 1     vertex FT-MBFS union
//         kEither       1         edge ∪ vertex union (one failure of
//                                 either kind; pre-dual "dual")
//         kEither       k > 1     per-source either unions, merged
//         kDual         1         dual-failure recursion (two simultaneous
//                                 failures; dual_fault.hpp) + pair tables
//         kDual         k > 1     per-source dual structures, merged
//                                 (Gupta–Khan multi-source setting)
//
//   * Session — a type-erased deployment of the result (structure + tree +
//     replacement engines per source, no templates in sight) serving a
//     batched, THREAD-SAFE query plane. `query(QueryBatch)` classifies
//     every query as an in-model O(1) contract hit, an out-of-model
//     what-if (answered by a literal BFS on H \ {fault}), or refused; it
//     shards in-model lookups across the thread pool and groups what-if
//     queries by fault so each distinct failure costs ONE traversal per
//     batch — the mutable-under-const single-scratch oracle is replaced by
//     a pool of per-worker scratch arenas, so any number of threads can
//     call query() on one Session concurrently (enforced by the TSan CI
//     job over the concurrency-tagged tests).
//
// The legacy entry points (build_ftbfs, build_epsilon_ftbfs,
// build_vertex_ftbfs, build_dual_ftbfs, build_epsilon_ftmbfs,
// build_vertex_ftmbfs) remain as deprecated thin wrappers; a differential
// test pins `build()` byte-identical to each of them.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/dual_fault.hpp"
#include "src/core/epsilon_ftbfs.hpp"
#include "src/core/structure.hpp"
#include "src/core/vertex_ftbfs.hpp"
#include "src/util/thread_pool.hpp"

namespace ftb::api {

/// The full parameterization of one build: which failures the structure
/// must survive, for which sources, at which point of the reinforcement-
/// backup tradeoff, plus tuning knobs. Defaults build a single-source
/// edge-fault ε = 0.25 structure.
struct BuildSpec {
  /// Failure model the structure insures against.
  FaultClass fault_model = FaultClass::kEdge;
  /// BFS sources; one structure serves all of them (FT-MBFS union for
  /// k > 1). Must be non-empty, in range and duplicate-free.
  std::vector<Vertex> sources = {0};
  /// The tradeoff exponent ε ∈ [0, 1]. Edge model only: the vertex /
  /// either / dual pipelines have no reinforcement tradeoff and ignore it.
  double eps = 0.25;
  /// Seed of the tie-breaking weight assignment W (also what a Session
  /// needs to rebuild the same canonical trees when loading from disk).
  std::uint64_t weight_seed = 0x5EED0001ULL;
  ThreadPool* pool = nullptr;  // nullptr = global pool

  // ---- ε pipeline tuning knobs (see EpsilonOptions for semantics) -------
  bool baseline_for_large_eps = true;
  std::int32_t k_rounds_override = 0;
  double threshold_scale = 1.0;
  bool disable_s2_light_flush = false;
  bool disable_s2_crossings = false;
  /// Run the naive reference kernels (differential testing / bench
  /// baseline; output is bit-identical either way).
  bool reference_kernel = false;
  /// Fuse multi-source canonical-tree builds (and the unpruned dual's
  /// per-site punctured rebuilds) into bit-parallel kernel sweeps. Output
  /// is bit-identical either way; off is the scalar escape hatch for
  /// differential testing. Single-source non-dual builds ignore it.
  bool bit_parallel = true;
  /// Dual model only: build the unpruned PR 4 recursion (full punctured
  /// structure per first-failure site) instead of the segment-pruned,
  /// prefix-reusing default. The unpruned build is the differential
  /// referee: strictly larger structure, same served answers.
  bool unpruned_dual = false;
  /// Dual model only: also harvest the site-local distance oracle
  /// (per-site replacement-distance rows over C_f) while the punctured
  /// engines are alive, so a deployed Session answers EVERY in-model pair
  /// O(1) — zero traversals, even for non-reducible pairs. Costs memory
  /// proportional to the tree volume; persisted by save_v5 as the
  /// optional site-dist section.
  bool site_dist_oracle = false;
  /// Dual model only: schedule the pruned build's first-failure sites in
  /// T0 DFS order on per-thread punctured-tree workspaces, so each site's
  /// rebase patches its processed ancestor's state instead of paying an
  /// independent full label copy. Off is the independent-rebase referee;
  /// structures, pair tables and site-dist rows are bit-identical either
  /// way (pinned by tests and the dual_dfs_schedule bench gate).
  /// FTBFS_DUAL_DFS_SCHEDULE=0 flips the process default.
  bool dual_dfs_schedule = dual_dfs_schedule_default();

  /// Throws CheckError ("invalid BuildSpec: …") on NaN / out-of-range ε
  /// or an empty / out-of-range / duplicated source set. build() and
  /// Session::open() call this first.
  void validate(const Graph& g) const;

  /// The EpsilonOptions this spec maps to (edge-model dispatch).
  EpsilonOptions epsilon_options() const;
  /// The VertexFtBfsOptions this spec maps to (vertex/either dispatch).
  VertexFtBfsOptions vertex_options() const;
  /// The DualFtBfsOptions this spec maps to (dual-failure dispatch).
  DualFtBfsOptions dual_options() const;
};

/// What one build() returns: the structure plus construction telemetry.
struct BuildResult {
  /// The validated spec the build ran under (Session::deploy reads the
  /// weight seed and pool from here).
  BuildSpec spec;
  /// The sources actually served, aligned with per_source.
  std::vector<Vertex> sources;
  /// The (b, r) FT-BFS / FT-MBFS structure, fault-class tagged.
  FtBfsStructure structure;
  /// Per-source ε pipeline stats (empty for the vertex/either/dual
  /// pipelines, which have no ε telemetry).
  std::vector<EpsilonStats> per_source;
  /// Dual-failure pair tables, one per source (empty for every other
  /// model). Session::deploy serves pairs from these; structure_io v4
  /// persists them alongside the structure.
  std::vector<DualSiteTable> dual_tables;
  /// Site-local distance oracle, one table per source (empty unless
  /// BuildSpec::site_dist_oracle on a dual build). Session::deploy
  /// attaches these so pair queries never traverse; save_v5 persists them
  /// as the optional site-dist section.
  std::vector<DualSiteDistTable> dual_site_dist;
  double seconds_total = 0;
};

/// THE build entry point: validates `spec` and dispatches to the pipeline
/// the (fault model, source count) cell selects — see the table in the
/// file comment. Byte-identical to the legacy entry point it replaces.
BuildResult build(const Graph& g, const BuildSpec& spec);

// ---------------------------------------------------------------------------
// The batched query plane.

/// How a query was answered.
enum class QueryOutcome : std::uint8_t {
  /// In-model O(1) contract hit: dist(s, v, H \ {fault}) read straight
  /// from the replacement engine's tables.
  kInModel = 0,
  /// Out-of-model what-if (reinforced edge, or a fault kind the session's
  /// model does not cover): answered by a literal BFS on H \ {fault},
  /// shared by every query of the batch that names the same fault.
  kWhatIf = 1,
  /// Outside the model and allow_what_if was not set — or the fault is
  /// the query's own source vertex, which never fails under any model.
  /// (Other sources of a multi-source session may fail in-model.)
  kRefused = 2,
  /// Answered correctly, but by a DEGRADED session: the artifact's pair
  /// tables were corrupt or missing, so the answer came from tables
  /// recomputed from the graph instead of the shipped ones. The distance
  /// is bit-identical to a clean rebuild (pinned by the degraded-session
  /// property test); the outcome tag exists so operators can see they are
  /// serving off a damaged artifact. Only in-model dual-pair answers carry
  /// it — single-fault engines are always rebuilt from the graph and never
  /// depend on artifact tables.
  kDegraded = 3,
  /// Not answered: the batch's traversal budget (BatchOptions::
  /// max_traversals) or deadline ran out before this query's traversal
  /// group got its turn. dist is kInfHops; re-issue the query in a new
  /// batch to get an answer. O(1) in-model lookups never exhaust.
  kBudgetExhausted = 4,
};

/// One post-failure distance question: "how far is v from source
/// sources()[source_index] once `fault` (and optionally `fault2`)
/// fails?".
struct Query {
  Vertex v = kInvalidVertex;
  /// What fails: kEdge → `fault` is an EdgeId, kVertex → a Vertex.
  /// (kDual/kEither are not fault kinds — they are SESSION models; a dual
  /// session answers pairs, an either session both single kinds.)
  FaultClass kind = FaultClass::kEdge;
  std::int32_t fault = -1;
  /// Optional SECOND simultaneous failure: `fault2 >= 0` makes this a
  /// dual-failure query for dist(s, v | {fault, fault2}), unordered. A
  /// dual-model session answers pairs in-model (one traversal per distinct
  /// pair per batch, site-restricted); other sessions treat a pair as a
  /// what-if (literal BFS on H minus both) or refuse it.
  FaultClass kind2 = FaultClass::kEdge;
  std::int32_t fault2 = -1;
  /// Which source asks (index into Session::sources()).
  std::int32_t source_index = 0;
  /// Permit an out-of-model answer via literal BFS on H \ {fault(s)}.
  bool allow_what_if = false;
};

struct QueryResult {
  /// Hop distance, kInfHops when disconnected / destroyed / refused.
  std::int32_t dist = kInfHops;
  QueryOutcome outcome = QueryOutcome::kRefused;
};

using QueryBatch = std::span<const Query>;

struct QueryResponse {
  /// One result per query, same order as the batch.
  std::vector<QueryResult> results;
  // Batch accounting.
  std::int64_t in_model = 0;
  std::int64_t what_if = 0;
  std::int64_t refused = 0;
  /// Literal traversals actually run (≤ distinct what-if faults in the
  /// batch; arena caching can drop repeats across batches).
  std::int64_t what_if_traversals = 0;
  /// Site-restricted traversals paid for in-model dual-failure queries
  /// (≤ distinct non-reducible pairs in the batch — reducible pairs are
  /// O(1) off the single-fault tables and cost none).
  std::int64_t pair_traversals = 0;
  /// Queries answered correctly but off recomputed (not artifact) tables.
  std::int64_t degraded = 0;
  /// Queries dropped because the batch budget/deadline ran out.
  std::int64_t budget_exhausted = 0;
  /// Dual-pair arena cache hits this batch: traversal groups whose answer
  /// was still warm in a leased arena from an earlier group or batch.
  std::int64_t pair_cache_hits = 0;
  /// Dual-pair arena cache misses this batch (each paid one
  /// site-restricted traversal).
  std::int64_t pair_cache_misses = 0;
  /// In-model pair queries answered straight from the site-local distance
  /// oracle (zero traversals; see BuildSpec::site_dist_oracle). A session
  /// with the oracle attached serves every in-model pair this way or via
  /// the O(1) reducible ladder — pair_traversals stays 0.
  std::int64_t site_oracle_hits = 0;
};

/// Per-batch service limits, so a what-if storm degrades to partial
/// results instead of holding the caller hostage. Both limits bound the
/// TRAVERSAL plane only (literal what-if BFS runs and site-restricted
/// pair traversals); O(1) in-model lookups are always served.
struct BatchOptions {
  /// Max traversal groups this batch may pay for; < 0 = unlimited. With
  /// max_traversals == 0 the outcome is deterministic: every group that
  /// would need a traversal returns kBudgetExhausted. Positive budgets are
  /// best-effort — which groups win the budget depends on scheduling.
  std::int64_t max_traversals = -1;
  /// Wall-clock deadline in seconds from the start of query(); <= 0 = no
  /// deadline. Groups starting after the deadline return kBudgetExhausted
  /// (a group already traversing is finished, not aborted).
  double deadline_seconds = 0;
  /// Adaptive cutover override: batches of at most this many queries are
  /// served inline on the caller thread (no pool dispatch); larger ones
  /// shard across the ThreadPool. < 0 (the default) auto-tunes the
  /// break-even from a measured dispatch cost, once per session; 0 forces
  /// sharding for every non-empty batch. Strategy only — answers are
  /// bit-identical either way.
  std::int32_t inline_threshold = -1;
};

/// Knobs for serving a structure built elsewhere (Session::load).
struct SessionConfig {
  /// Must match the weight seed the structure was built with, or the
  /// rebuilt canonical trees will not match the deployed tree edges
  /// (checked; CheckError on mismatch).
  std::uint64_t weight_seed = 0x5EED0001ULL;
  ThreadPool* pool = nullptr;  // nullptr = global pool
  /// Degrade instead of refuse: when the artifact's pair-table section is
  /// corrupt or truncated, drop it, rebuild the tables from the graph, and
  /// serve (answers bit-identical, outcomes tagged kDegraded). Set false
  /// to make any corruption a hard CheckError at load time. Corruption in
  /// the structure sections themselves (meta/edges) always throws — there
  /// is nothing safe to rebuild from. A corrupt site-dist section is also
  /// dropped under this knob, but only costs the accelerator (an fsck
  /// note), never degraded status — the pair tables still answer.
  bool tolerate_corruption = true;
  /// Serve pairs from the site-local distance oracle: attach the
  /// artifact's site-dist section when present, REBUILD the tables from
  /// the graph when absent or dropped. Off by default — loading then
  /// attaches a shipped section for free but never pays a rebuild.
  bool site_dist_oracle = false;
  /// Fuse the per-source canonical-tree rebuilds (and any dual pair-table
  /// rebuild this session has to pay) into bit-parallel kernel sweeps.
  /// Served answers are bit-identical either way; off is the scalar
  /// escape hatch for differential testing.
  bool bit_parallel = true;
  /// Run any dual pair-table rebuild this session has to pay on the
  /// DFS-order workspace schedule (BuildSpec::dual_dfs_schedule semantics;
  /// rebuilt tables are bit-identical either way).
  /// FTBFS_DUAL_DFS_SCHEDULE=0 flips the process default.
  bool dual_dfs_schedule = dual_dfs_schedule_default();
};

/// What Session::fsck() found. `ok` means every audited invariant held;
/// `degraded` reports whether the session is serving recomputed (not
/// artifact) pair tables. docs/robustness.md documents the audit matrix.
struct FsckReport {
  bool ok = true;
  bool degraded = false;
  /// Invariants audited (monotonically grows with session complexity).
  std::int64_t checks = 0;
  /// One human-readable line per violated invariant (empty when ok).
  std::vector<std::string> errors;
  /// Why the session is degraded (load-time drops, table rebuilds);
  /// empty for a clean session.
  std::vector<std::string> notes;
  /// "fsck: ok, 123 checks" / "fsck: DEGRADED …" / "fsck: FAILED …".
  std::string to_string() const;
};

/// A deployed structure plus everything needed to serve it: the canonical
/// trees and replacement engines per source (edge and/or vertex flavor,
/// per the fault class) behind a non-template face.
///
/// Thread safety: all members are immutable after construction and query()
/// works exclusively on pooled scratch arenas, so concurrent query() /
/// query_one() calls from any number of threads are safe — this replaces
/// the "NOT thread-safe" single-scratch FaultStructureOracle as the
/// serving path. Copying a Session is a cheap shared handle.
class Session {
 public:
  using Config = SessionConfig;

  /// build(g, spec) + deploy, in one call.
  static Session open(const Graph& g, const BuildSpec& spec);
  /// Wraps an already-built result (takes ownership of the structure).
  static Session deploy(const Graph& g, BuildResult result);
  /// Reloads a saved artifact (structure_io format, any version — the
  /// generation is auto-detected by magic, so text v1–v5 and binary v6
  /// load through the same call; v3 keeps the multi-source set, v4+ the
  /// dual pair tables — an artifact saved without tables gets them rebuilt
  /// here) and rebuilds the serving engines. A v6 artifact's persisted
  /// tables attach off a read-only mmap (zero-copy validation against the
  /// page cache); the graph-recompute path remains the fallback when they
  /// are absent or dropped. With cfg.tolerate_corruption (the default) a
  /// corrupt pair-table section downgrades the session to degraded service
  /// instead of refusing the load; see fsck().
  static Session load(const Graph& g, const std::string& path,
                      const Config& cfg = {});
  /// Saves the structure (+ source set when multi-source) via structure_io.
  void save(const std::string& path) const;
  /// Saves the checksummed structure_io v5 framing of the same artifact
  /// (per-section lengths + CRC-32C, so storage corruption is caught at
  /// load time). load() reads either form.
  void save_v5(const std::string& path) const;
  /// Saves the binary, mmap-able structure_io v6 container of the same
  /// artifact (binary_io.hpp: sectioned directory + per-section CRC-32C,
  /// 64-byte-aligned fixed-width payloads) — the build-once, serve-
  /// everywhere form whose load is a directory walk + checksum sweep over
  /// an mmap. load() auto-detects it by magic.
  void save_v6(const std::string& path) const;

  /// Answers a batch: in-model single-fault lookups shard across the
  /// thread pool; what-if queries and in-model dual-failure pairs are
  /// grouped by (source, fault[, fault2]) — unordered in the pair — so
  /// each distinct failure (or failure pair) costs at most one traversal.
  /// Throws CheckError on malformed queries (out-of-range vertex / fault /
  /// fault2 / source_index); model-level refusals are reported per query
  /// as kRefused, never thrown.
  QueryResponse query(QueryBatch batch) const;
  /// Budgeted variant: `opts` caps the traversal plane (see BatchOptions);
  /// queries that lose the budget race come back kBudgetExhausted instead
  /// of blocking the batch. query(batch) == query(batch, {}).
  QueryResponse query(QueryBatch batch, const BatchOptions& opts) const;

  /// Single-query convenience (serial; same classification rules).
  QueryResult query_one(const Query& q) const;

  /// Audits the loaded structure and serving state: structure edge-set
  /// relations, per-source tree parent/depth invariants, dual pair-table
  /// shape and coverage. Read-only and cheap (no traversals, no table
  /// rebuilds); safe to call concurrently with query(). A session that
  /// loaded clean and passes fsck serves kInModel; a degraded one serves
  /// correct answers tagged kDegraded.
  FsckReport fsck() const;
  /// True when this session serves recomputed pair tables because the
  /// artifact's were corrupt or absent (see SessionConfig::
  /// tolerate_corruption).
  bool degraded() const;

  const Graph& graph() const;
  const FtBfsStructure& structure() const;
  FaultClass fault_model() const;
  std::span<const Vertex> sources() const;
  /// Failure-free dist(sources()[source_index], v) — tree depth. O(1).
  std::int32_t distance(std::int32_t source_index, Vertex v) const;

 private:
  struct Impl;
  explicit Session(std::shared_ptr<const Impl> impl);
  std::shared_ptr<const Impl> impl_;
};

}  // namespace ftb::api
