// ftbfs.hpp — the ESA'13 baseline: a full FT-BFS structure with no
// reinforcement (ref. [14] of the paper; the ε = 1 end of the tradeoff).
//
// Construction: H = T0 ∪ { LastE(P_{v,e}) : ⟨v,e⟩ uncovered }. Every
// vertex-edge pair then has a replacement path whose last edge is in H, so
// by Observation 2.2 every edge is protected — r(n) = 0. The paper's
// analysis of the canonical replacement paths (vertex-disjoint detours per
// terminal, Claim 4.6) bounds |E(H)| = O(n^{3/2}), tight by the ESA'13
// lower bound (reproduced here as lb::build_single_source with ε = 1/2).
#pragma once

#include "src/core/replacement.hpp"
#include "src/core/structure.hpp"
#include "src/util/check.hpp"

namespace ftb {

struct CanonicalSp;  // canonical_bfs.hpp

struct FtBfsOptions {
  /// Seed of the tie-breaking weight assignment W.
  std::uint64_t weight_seed = 0x5EED0001ULL;
  ThreadPool* pool = nullptr;  // nullptr = global pool
  /// Run the engine on the naive reference kernels (bench baseline /
  /// differential testing; output is bit-identical either way).
  bool reference_kernel = false;
  /// Internal fusion seam: adopt these already-computed canonical labels
  /// (see EpsilonOptions::prebuilt_sp). Must outlive the call.
  const CanonicalSp* prebuilt_sp = nullptr;
};

namespace detail {
/// Pipeline implementations the ftb::api facade dispatches to. The ESA'13
/// baseline is the ε ≥ 1/2 branch of the tradeoff, so the facade reaches it
/// through the ε pipeline; these impls also back the legacy wrappers below.
FtBfsStructure build_ftbfs_impl(const Graph& g, Vertex source,
                                const FtBfsOptions& opts);
FtBfsStructure build_reinforced_tree_impl(const Graph& g, Vertex source,
                                          const FtBfsOptions& opts);
}  // namespace detail

/// Builds the O(n^{3/2})-edge FT-BFS structure for (g, source).
/// Deprecated: use ftb::api::build(graph, BuildSpec) with fault_model =
/// kEdge and eps = 1 (Theorem 3.1's baseline branch is byte-identical).
FTB_DEPRECATED("use ftb::api::build(graph, BuildSpec) with eps = 1")
FtBfsStructure build_ftbfs(const Graph& g, Vertex source,
                           const FtBfsOptions& opts = {});

/// Same, reusing an already-built replacement-path engine. Not deprecated:
/// this is the S0-reuse composition point internal pipelines build on.
FtBfsStructure build_ftbfs(const ReplacementPathEngine& engine);

/// The trivial ε = 0 end of the tradeoff: H = T0 with every tree edge
/// reinforced (b = 0, r = n−1). Useful as a comparison point in benches.
/// Deprecated: use ftb::api::build(graph, BuildSpec) with eps = 0.
FTB_DEPRECATED("use ftb::api::build(graph, BuildSpec) with eps = 0")
FtBfsStructure build_reinforced_tree(const Graph& g, Vertex source,
                                     const FtBfsOptions& opts = {});

}  // namespace ftb
