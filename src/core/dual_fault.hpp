// dual_fault.hpp — FT-BFS structures against TWO simultaneous failures.
//
// The dual-failure setting (Parter, "Dual Failure Resilient BFS Structure",
// arXiv:1505.00692; multi-source bounds in Gupta–Khan, arXiv:1704.06907)
// extends the single-fault contract to unordered pairs: a subgraph H ⊆ G
// such that for every pair of failures {f1, f2} — each an edge, or a vertex
// other than the source —
//
//   dist(s, v, H \ {f1, f2}) = dist(s, v, G \ {f1, f2})    for every v ∈ V.
//
// Construction — the reinforcement-backup recursion. Let T0 be the
// canonical tree of G and call an element a *first-failure site* when it is
// a tree edge of T0 or an internal tree vertex. For every site f, build the
// single-fault "either" structure of the punctured graph G \ {f}:
//
//   H_f = T_f ∪ { last edges of the uncovered pairs of the edge- and
//                 vertex-fault S0 engines run over G \ {f} },
//
// where T_f is the canonical tree of G \ {f} under the SAME weight
// assignment W (subgraph-consistency of W is exactly why the punctured
// engines stay canonical). Then H = T0 ∪ ⋃_f H_f is dual-failure
// resilient:
//   * a pair with a sited element f: H ⊇ H_f, H_f ⊆ G\{f}, and H_f is a
//     single-fault structure of G\{f} for both fault kinds, so
//     dist(s,v,H_f\{f'}) = dist(s,v,G\{f,f'}); the sandwich
//     dist(s,v,G\{f,f'}) ≤ dist(s,v,H\{f,f'}) ≤ dist(s,v,H_f\{f'})
//     pins every term equal.
//   * a pair with no sited element never touches a T0 path (a non-tree
//     edge lies on no π(s,·); a leaf vertex only on its own), so π(s,v)
//     survives in H and in G and dist = depth(v) on both sides.
// The engines are the PR 1/PR 2 machinery verbatim, run with an *ambient*
// ban (FaultReplacementEngine::Config::ambient_banned_{edge,vertex}), so
// the scratch-arena sweeps and the canonical detour analysis are reused
// per first failure instead of re-derived. This is the unpruned form of
// the paper's recursion: correctness is exact (the differential suite pins
// every served answer to brute-force two-failure BFS); the Õ(n^{5/3}) size
// bound needs Parter's pruning and is left as an open item (docs/perf.md
// tracks the measured |H| against it).
//
// Serving — DualFaultOracle. dist(s, v | {f1, f2}) classifies the pair:
//   * f1 == f2, or no sited element            → O(1) off the single-fault
//     tables / tree depths (this is the "reuse of the single-fault tables"
//     plane — no traversal at all);
//   * sited primary f, other an edge ∉ H_f     → O(1): H_f \ {f'} = H_f,
//     so the single-fault answer dist(s,v,G\{f}) is already exact;
//   * otherwise                                → one BFS over H_f minus the
//     other element, cached per pair in a DualQueryArena (the api::Session
//     batched plane groups queries by distinct pair, so a storm pays one
//     traversal per pair).
// The per-site edge subsets H_f are the *pair tables* serialized by
// structure_io v4, so a reloaded Session serves pairs without re-running
// the recursion.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/fault_model.hpp"
#include "src/core/structure.hpp"
#include "src/graph/bfs_kernel.hpp"
#include "src/util/thread_pool.hpp"

namespace ftb {

/// One element of a failure pair: a failing edge or a failing vertex.
struct DualSite {
  FaultClass kind = FaultClass::kEdge;  // kEdge or kVertex only
  std::int32_t id = -1;                 // EdgeId or Vertex

  friend bool operator==(const DualSite& a, const DualSite& b) {
    return a.kind == b.kind && a.id == b.id;
  }
  /// Normalization order for unordered pairs: edges before vertices, then
  /// by id. (Deterministic grouping and cache keys depend on this.)
  friend bool operator<(const DualSite& a, const DualSite& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.id < b.id;
  }
};

/// The first-failure tables of ONE source: the sites of its tree T0 in
/// deterministic order (every tree edge by tree_edges() order, then every
/// internal vertex by preorder) and, per site f, the sorted edge set of the
/// punctured single-fault structure H_f. This is what structure_io v4
/// serializes as the artifact's pair tables.
struct DualSiteTable {
  std::vector<DualSite> sites;
  std::vector<std::int64_t> offsets;  // sites.size() + 1, into edge_pool
  std::vector<EdgeId> edge_pool;      // per-site edge ids, sorted ascending

  std::size_t num_sites() const { return sites.size(); }
  /// Edge set of H_{sites[i]}, sorted ascending.
  std::span<const EdgeId> subset(std::size_t i) const {
    return {edge_pool.data() + offsets[i], edge_pool.data() + offsets[i + 1]};
  }
  /// O(log) membership test of e in subset(i).
  bool subset_contains(std::size_t i, EdgeId e) const;
};

struct DualFtBfsOptions {
  std::uint64_t weight_seed = 0x5EED0001ULL;
  ThreadPool* pool = nullptr;  // nullptr = global pool
  /// Run the punctured engines on the naive reference kernels (differential
  /// testing; the produced structure and tables are bit-identical).
  bool reference_kernel = false;
};

/// What the dual-failure pipeline emits: the structure (tagged kDual) plus
/// the pair tables the serving stack and structure_io v4 consume.
struct DualBuildResult {
  FtBfsStructure structure;
  DualSiteTable tables;
};

/// Multi-source variant (the Gupta–Khan setting): per-source dual
/// structures unioned into one subgraph, per-source pair tables kept.
struct DualMultiSourceResult {
  std::vector<Vertex> sources;
  FtBfsStructure structure;             // anchored at sources.front()
  std::vector<DualSiteTable> per_source;  // aligned with sources
};

namespace detail {
/// The dual-failure pipelines ftb::api::build dispatches to for
/// fault_model = kDual. Validate through validate.hpp.
DualBuildResult build_dual_failure_ftbfs_impl(const Graph& g, Vertex source,
                                              const DualFtBfsOptions& opts);
DualMultiSourceResult build_dual_failure_ftmbfs_impl(
    const Graph& g, const std::vector<Vertex>& sources,
    const DualFtBfsOptions& opts);

/// Rebuilds one source's pair tables for an already-built canonical tree
/// (what Session::load falls back to when an artifact carries no tables).
/// Also returns, through `edges_out`, the union ⋃_f H_f ∪ T0 it implies.
DualSiteTable build_dual_site_table(const BfsTree& tree, ThreadPool* pool,
                                    bool reference_kernel,
                                    std::vector<EdgeId>* edges_out);
}  // namespace detail

/// Reusable scratch for DualFaultOracle::dist: the BFS arena plus the
/// lazily maintained site-complement edge mask, with the key of the
/// traversal currently held so repeats of one pair cost nothing. Exclusive
/// ownership while in use (the api::Session leases one per worker).
class DualQueryArena {
 public:
  DualQueryArena() = default;

 private:
  friend class DualFaultOracle;

  BfsScratch bfs_;
  std::vector<std::uint8_t> site_ban_;  // size m; 1 = not in cached subset
  const DualSiteTable* mask_table_ = nullptr;  // whose site the mask encodes
  std::int32_t mask_site_ = -1;
  bool traversal_valid_ = false;  // bfs_ holds (mask site, other_) exactly
  DualSite other_;
};

/// Serves dist(s, v | {f1, f2}) for one source of a dual-failure
/// deployment. Immutable after construction; all mutable state lives in
/// the caller-provided DualQueryArena, so any number of threads may query
/// one oracle concurrently on distinct arenas.
class DualFaultOracle {
 public:
  /// `tree`, the engines and `tables` must all come from the same source
  /// and weight seed; the site list is checked against the tree (CheckError
  /// on mismatch — the classic cause is loading an artifact with the wrong
  /// weight_seed).
  DualFaultOracle(const BfsTree& tree,
                  const FaultReplacementEngine<EdgeFault>& edge_engine,
                  const FaultReplacementEngine<VertexFault>& vertex_engine,
                  const DualSiteTable& tables);

  /// dist(s, v, G \ {f1, f2}), order-free in (f1, f2). Preconditions:
  /// valid ids and neither element is the source vertex (the caller — the
  /// Session classification — refuses those). O(1) for reducible pairs;
  /// otherwise one BFS over the primary site's subset, cached in `arena`
  /// (`traversals`, when given, is incremented iff a BFS actually ran).
  std::int32_t dist(Vertex v, DualSite f1, DualSite f2, DualQueryArena& arena,
                    std::int64_t* traversals = nullptr) const;

  /// True iff the pair is answered O(1) — equal elements, no sited
  /// element, or an off-structure second edge (the single-fault-table
  /// reuse plane). Exposed for tests and batch accounting.
  bool reducible(DualSite f1, DualSite f2) const;

  const DualSiteTable& tables() const { return *tables_; }

 private:
  std::int32_t site_of(DualSite f) const;
  std::int32_t single_dist(Vertex v, DualSite f) const;

  const BfsTree* tree_;
  const FaultReplacementEngine<EdgeFault>* edge_engine_;
  const FaultReplacementEngine<VertexFault>* vertex_engine_;
  const DualSiteTable* tables_;
  std::vector<std::int32_t> edge_site_;    // EdgeId → site index or -1
  std::vector<std::int32_t> vertex_site_;  // Vertex → site index or -1
};

/// RAII application of a failure pair to a BfsBans: edges go into the two
/// scalar slots, vertices set bits in `mask` (sized on demand) that the
/// destructor clears again. The ONE ban-assembly every two-failure
/// traversal — brute-force referee, structure sweep, session what-if —
/// shares, so the protocol cannot silently diverge between them.
class PairBans {
 public:
  PairBans(DualSite f1, DualSite f2, std::vector<std::uint8_t>& mask,
           std::size_t n, BfsBans& bans);
  ~PairBans();
  PairBans(const PairBans&) = delete;
  PairBans& operator=(const PairBans&) = delete;

 private:
  std::vector<std::uint8_t>* mask_;
  Vertex masked_[2] = {kInvalidVertex, kInvalidVertex};
  int num_masked_ = 0;
};

/// Literal two-failure BFS — the referee every dual answer is measured
/// against: runs BFS from `s` in G \ {f1, f2} into `scratch` (a destroyed
/// vertex reads back kInfHops like any unreachable one).
void dual_bruteforce_bfs(const Graph& g, Vertex s, DualSite f1, DualSite f2,
                         BfsScratch& scratch);

/// Same two-failure BFS restricted to the surviving STRUCTURE
/// (H \ {f1, f2} from h.source()): the H side of every dual comparison —
/// verifier, drills, differential tests all share this one ban assembly.
void dual_structure_bfs(const FtBfsStructure& h, DualSite f1, DualSite f2,
                        BfsScratch& scratch);

/// Dual-failure verification: BFS of G \ {f1,f2} vs H \ {f1,f2} over
/// failure pairs drawn from the full universe (every edge, every non-source
/// vertex). `max_pairs < 0` checks every unordered pair exhaustively —
/// O(n²·m), fine for test sizes; otherwise `max_pairs` pairs are sampled
/// deterministically from `seed`. Returns the number of (pair, v) distance
/// violations (0 = the structure honors the dual contract on everything
/// checked).
std::int64_t verify_dual_structure(const FtBfsStructure& h,
                                   std::int64_t max_pairs = -1,
                                   std::uint64_t seed = 1,
                                   ThreadPool* pool = nullptr);

}  // namespace ftb
