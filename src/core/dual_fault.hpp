// dual_fault.hpp — FT-BFS structures against TWO simultaneous failures.
//
// The dual-failure setting (Parter, "Dual Failure Resilient BFS Structure",
// arXiv:1505.00692; multi-source bounds in Gupta–Khan, arXiv:1704.06907)
// extends the single-fault contract to unordered pairs: a subgraph H ⊆ G
// such that for every pair of failures {f1, f2} — each an edge, or a vertex
// other than the source —
//
//   dist(s, v, H \ {f1, f2}) = dist(s, v, G \ {f1, f2})    for every v ∈ V.
//
// Construction — the PRUNED reinforcement-backup recursion. Let T0 be the
// canonical tree of G and call an element a *first-failure site* when it is
// a tree edge of T0 or an internal tree vertex. For a site f let
// A_f := the T0-subtree hanging below f (the vertices whose π(s,·) uses f).
// Per site we keep only the SEGMENT of the punctured single-fault structure
// that terminals in A_f can actually consume (Parter's segment pruning,
// arXiv:1505.00692 §4 — replacement paths of unaffected terminals ride
// their T0 prefix, so only the last, subtree-local segment needs backup):
//
//   C_f = { T_f parent edges of the vertices of A_f }
//       ∪ { last edges of the uncovered pairs ⟨v, f'⟩ of the edge- and
//           vertex-fault S0 engines run over G \ {f}, v ∈ A_f },
//
// where T_f is the canonical tree of G \ {f} under the SAME weight
// assignment W (subgraph-consistency of W is exactly why the punctured
// engines stay canonical), built incrementally from T0 by
// rebase_punctured_tree — outside A_f the two trees coincide edge for
// edge, so only A_f is relabeled (the sibling-prefix reuse of Gupta–Khan,
// arXiv:1704.06907), and the engines run with
// Config::{ambient_banned_*, restrict_terminals = A_f}, costing the
// subtree's volume instead of the whole graph. Then
//
//   H = T0 ∪ ⋃_f C_f
//
// is dual-failure resilient. Fix a pair {f, f'} and induct on
// d_v = dist(s, v, G \ {f, f'}) over ALL terminals v simultaneously:
//   * v below no sited element of the pair: π(s,v) ⊆ T0 avoids both (a
//     non-tree edge lies on no π(s,·); a non-site vertex is a leaf, on no
//     path but its own), so d_v = depth(v) realized inside T0.
//   * v ∈ A_f (symmetrically A_{f'}): work in G' = G \ {f} with tree T_f.
//     If f' ∉ π_{T_f}(s,v), that tree path survives and lies in
//     T0 ∪ C_f — its A_f suffix is C_f parent edges, its prefix is T0.
//     Otherwise ⟨v, f'⟩ is a pair of the punctured engines: if covered,
//     some surviving T_f-neighbor u has d_u = d_v − 1 and the connecting
//     tree edge is in T0 ∪ C_f (T_f-children of A_f vertices stay in A_f);
//     if uncovered, its last edge (u, v) ∈ C_f by construction and
//     d_u = d_v − 1. Either way the induction recurses on u — WHEREVER u
//     lives, its own bullet applies (u may leave A_f; then T0 or C_{f'}
//     takes over). Every edge consumed is in T0 ∪ C_f ∪ C_{f'}, which is
//     also why the oracle can serve the pair from that union alone.
// Taking f' = f degenerates the argument to single failures, so
// T0 ∪ C_f already realizes dist(s, ·, G\{f}) — the fast-path sandwich
// below. The PR 4 construction (C_f replaced by the FULL punctured
// structure T_f ∪ all last edges) is preserved behind
// DualFtBfsOptions::unpruned_dual as the differential referee; the pruned
// H is a strict subset of it and the served answers are pinned
// bit-identical to both the referee and brute-force two-failure BFS.
//
// Serving — DualFaultOracle. dist(s, v | {f1, f2}) classifies the pair:
//   * f1 == f2, or no sited element            → O(1) off the single-fault
//     tables / tree depths (this is the "reuse of the single-fault tables"
//     plane — no traversal at all);
//   * sited f, other a non-tree edge ∉ C_f     → O(1): (T0 ∪ C_f) \ {other}
//     = T0 ∪ C_f realizes the single-fault distances of G\{f} without
//     `other`, so dist(s,v,G\{f}) is already the two-failure answer;
//   * otherwise                                → one BFS over
//     (T0 ∪ C_{f1} ∪ C_{f2}) \ {f1, f2}, cached per pair in a
//     DualQueryArena (the api::Session batched plane groups queries by
//     distinct pair, so a storm pays one traversal per pair).
// The per-site edge subsets C_f are the *pair tables* serialized by
// structure_io v4, so a reloaded Session serves pairs without re-running
// the recursion. (v4 artifacts written by the unpruned referee carry the
// full H_f subsets — supersets of C_f — and serve identically.)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/dist_sweep.hpp"
#include "src/core/fault_model.hpp"
#include "src/core/structure.hpp"
#include "src/graph/bfs_kernel.hpp"
#include "src/util/thread_pool.hpp"

namespace ftb {

/// One element of a failure pair: a failing edge or a failing vertex.
struct DualSite {
  FaultClass kind = FaultClass::kEdge;  // kEdge or kVertex only
  std::int32_t id = -1;                 // EdgeId or Vertex

  friend bool operator==(const DualSite& a, const DualSite& b) {
    return a.kind == b.kind && a.id == b.id;
  }
  /// Normalization order for unordered pairs: edges before vertices, then
  /// by id. (Deterministic grouping and cache keys depend on this.)
  friend bool operator<(const DualSite& a, const DualSite& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.id < b.id;
  }
};

/// The first-failure tables of ONE source: the sites of its tree T0 in
/// deterministic order (every tree edge by tree_edges() order, then every
/// internal vertex by preorder) and, per site f, the sorted edge set of the
/// punctured single-fault structure H_f. This is what structure_io v4
/// serializes as the artifact's pair tables.
struct DualSiteTable {
  std::vector<DualSite> sites;
  std::vector<std::int64_t> offsets;  // sites.size() + 1, into edge_pool
  std::vector<EdgeId> edge_pool;      // per-site edge ids, sorted ascending

  std::size_t num_sites() const { return sites.size(); }
  /// Edge set of H_{sites[i]}, sorted ascending.
  std::span<const EdgeId> subset(std::size_t i) const {
    return {edge_pool.data() + offsets[i], edge_pool.data() + offsets[i + 1]};
  }
  /// O(log) membership test of e in subset(i).
  bool subset_contains(std::size_t i, EdgeId e) const;
};

/// The site-local distance oracle over C_f — the dual analog of the
/// single-fault replacement tables, so non-reducible pairs answer without
/// any traversal. Per first-failure site f (same order as
/// DualSiteTable::sites) and per terminal v of A_f (slots are the subtree's
/// contiguous preorder slice: slot(v) = tin(v) − tin(top_f)) it stores the
/// punctured canonical tree T_f's parent edge and depth of v, plus one row
/// per element of the tree path π_{T_f}(s, v): the TRUE two-failure
/// distance dist(s, v, G \ {f, x}) for x = each path edge (bottom-up,
/// `depth` rows) then each strict intermediate path vertex (bottom-up,
/// `depth − 1` rows). Serving walks π_{T_f}(s, v) once — stored parent
/// edges inside A_f, T0 parent edges outside (the trees coincide there) —
/// and reads the row of the second failure, or returns `depth` when the
/// second failure is off the path. Memory is Σ_f Σ_{v ∈ A_f} 2·depth_f(v)
/// rows — the same volume the restricted punctured engines already
/// materialize transiently during the build.
struct DualSiteDistTable {
  /// num_sites + 1 offsets into the per-slot arrays below.
  std::vector<std::int64_t> site_offsets;
  /// Per slot: T_f parent edge of the terminal (kInvalidEdge when the
  /// terminal is unreachable in G \ {f}).
  std::vector<EdgeId> parent_edge;
  /// Per slot: depth_{T_f}(v) (kInfHops when unreachable).
  std::vector<std::int32_t> tf_depth;
  /// num_slots + 1 offsets into `rows` (an unreachable slot has 0 rows, a
  /// reachable one 2·depth − 1).
  std::vector<std::int64_t> row_offsets;
  /// Per slot: depth edge rows, then depth − 1 vertex rows (kInfHops =
  /// disconnected under that second failure).
  std::vector<std::int32_t> rows;

  bool empty() const { return site_offsets.empty(); }
  std::size_t num_slots() const { return parent_edge.size(); }
};

/// The process-wide default for the DFS-order site schedule:
/// FTBFS_DUAL_DFS_SCHEDULE=0 forces it off, =1 (or unset) on — read once.
/// CI's sanitizer jobs run the dual suites under both settings; explicit
/// assignments to the dfs_schedule knobs always win over the env default.
bool dual_dfs_schedule_default();

struct DualFtBfsOptions {
  std::uint64_t weight_seed = 0x5EED0001ULL;
  ThreadPool* pool = nullptr;  // nullptr = global pool
  /// Run the punctured engines on the naive reference kernels (differential
  /// testing; the produced structure and tables are bit-identical).
  bool reference_kernel = false;
  /// Escape hatch: build the PR 4 construction — full punctured trees, no
  /// segment pruning, no prefix reuse, per-site subsets T_f ∪ all last
  /// edges. Kept as the differential referee: the pruned structure must be
  /// a strict subset of this one and serve bit-identical answers.
  bool unpruned_dual = false;
  /// Also harvest the site-local distance tables (DualSiteDistTable) while
  /// the punctured engines are alive, so the oracle serves EVERY pair
  /// traversal-free. Off by default: it costs extra memory proportional to
  /// the tree volume.
  bool site_dist_oracle = false;
  /// Fuse multi-source (σ ≥ 2) T0 hop phases — and, under unpruned_dual,
  /// the per-site punctured canonical rebuilds (same source, per-lane bans)
  /// — into bit-parallel sweeps (multi_source_bfs_kernel.hpp). Off = scalar
  /// passes; structures and tables are bit-identical either way.
  bool bit_parallel = true;
  /// Pruned build only: walk the first-failure sites in T0 DFS order on
  /// per-thread PuncturedWorkspace arenas (dist_sweep.hpp) so each site's
  /// rebase is a subtree-volume patch against its processed ancestor's
  /// state instead of an independent full O(n) label copy. Work is chunked
  /// per top-level subtree across the pool. Off = the independent-rebase
  /// schedule, kept as the differential referee: structures, pair tables
  /// and site-dist rows are bit-identical under both schedules. The
  /// unpruned referee ignores the knob (nothing to rebase there).
  /// Defaults on; FTBFS_DUAL_DFS_SCHEDULE=0 flips the process default.
  bool dfs_schedule = dual_dfs_schedule_default();
  /// Internal fusion seam: adopt these already-computed canonical labels
  /// for T0 (see EpsilonOptions::prebuilt_sp). Must outlive the call.
  const CanonicalSp* prebuilt_sp = nullptr;
};

/// What the dual-failure pipeline emits: the structure (tagged kDual) plus
/// the pair tables the serving stack and structure_io v4 consume.
struct DualBuildResult {
  FtBfsStructure structure;
  DualSiteTable tables;
  /// Site-local distance tables (empty unless
  /// DualFtBfsOptions::site_dist_oracle).
  DualSiteDistTable site_dist;
  /// Rebase-seam work the pruned build performed (label writes + sweep
  /// visits, summed over all sites; zero for the unpruned referee). The
  /// dual_dfs_schedule bench gate pins the DFS schedule's total strictly
  /// below the independent schedule's.
  SweepWorkStats sweep_work;
};

/// Multi-source variant (the Gupta–Khan setting): per-source dual
/// structures unioned into one subgraph, per-source pair tables kept.
struct DualMultiSourceResult {
  std::vector<Vertex> sources;
  FtBfsStructure structure;             // anchored at sources.front()
  std::vector<DualSiteTable> per_source;  // aligned with sources
  /// Aligned with sources; empty unless site_dist_oracle was requested.
  std::vector<DualSiteDistTable> per_source_site_dist;
};

namespace detail {
/// The dual-failure pipelines ftb::api::build dispatches to for
/// fault_model = kDual. Validate through validate.hpp.
DualBuildResult build_dual_failure_ftbfs_impl(const Graph& g, Vertex source,
                                              const DualFtBfsOptions& opts);
DualMultiSourceResult build_dual_failure_ftmbfs_impl(
    const Graph& g, const std::vector<Vertex>& sources,
    const DualFtBfsOptions& opts);

/// Rebuilds one source's pair tables for an already-built canonical tree
/// (what Session::load falls back to when an artifact carries no tables).
/// Also returns, through `edges_out`, the union T0 ∪ ⋃_f C_f it implies
/// (with `unpruned`, the PR 4 referee sets T0 ∪ ⋃_f H_f). When
/// `site_dist_out` is non-null the site-local distance tables are harvested
/// from the punctured engines in the same pass (valid for the pruned and
/// the unpruned construction alike — the harvested rows are identical).
/// `bit_parallel` batches the unpruned referee's per-site punctured
/// canonical rebuilds (same source, one {edge, vertex} ban pair per lane)
/// through the bit-parallel kernel in ≤64-lane groups; the pruned branch
/// rebases incrementally and ignores the knob. `dfs_schedule` selects the
/// pruned branch's DFS-order workspace schedule (see
/// DualFtBfsOptions::dfs_schedule); `sweep_work`, when given, receives the
/// summed rebase-seam work. Output is bit-identical under every knob
/// combination.
DualSiteTable build_dual_site_table(const BfsTree& tree, ThreadPool* pool,
                                    bool reference_kernel,
                                    std::vector<EdgeId>* edges_out,
                                    bool unpruned = false,
                                    DualSiteDistTable* site_dist_out = nullptr,
                                    bool bit_parallel = true,
                                    bool dfs_schedule = true,
                                    SweepWorkStats* sweep_work = nullptr);
}  // namespace detail

/// Reusable scratch for DualFaultOracle::dist: the BFS arena plus the
/// lazily maintained serving-set edge mask (T0 ∪ the admitted site
/// subsets), with the key of the traversal currently held so repeats of
/// one pair cost nothing — a one-slot cache, evicted whenever a different
/// non-reducible pair arrives. Exclusive ownership while in use (the
/// api::Session leases one per worker).
class DualQueryArena {
 public:
  DualQueryArena() = default;

  /// Traversal-cache accounting across every dist() call this arena
  /// served: a non-reducible pair answered from the held traversal is a
  /// hit; one that had to (re)run the site-restricted BFS is a miss.
  /// Reducible pairs are O(1) table reads and touch neither counter —
  /// tests assert exactly that.
  std::int64_t cache_hits() const { return hits_; }
  std::int64_t cache_misses() const { return misses_; }

 private:
  friend class DualFaultOracle;

  BfsScratch bfs_;
  std::vector<std::uint8_t> site_ban_;  // size m; 1 = not in serving set
  std::vector<std::uint8_t> vertex_ban_;  // pair's vertex elements (RAII'd)
  const DualSiteTable* mask_table_ = nullptr;  // whose sites the mask admits
  std::int32_t mask_site_a_ = -1;  // admitted site subsets (-1 = none)
  std::int32_t mask_site_b_ = -1;
  bool traversal_valid_ = false;  // bfs_ holds exactly (held_f1_, held_f2_)
  DualSite held_f1_, held_f2_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

/// Serves dist(s, v | {f1, f2}) for one source of a dual-failure
/// deployment. Immutable after construction; all mutable state lives in
/// the caller-provided DualQueryArena, so any number of threads may query
/// one oracle concurrently on distinct arenas.
class DualFaultOracle {
 public:
  /// `tree`, the engines and `tables` must all come from the same source
  /// and weight seed; the site list is checked against the tree (CheckError
  /// on mismatch — the classic cause is loading an artifact with the wrong
  /// weight_seed).
  DualFaultOracle(const BfsTree& tree,
                  const FaultReplacementEngine<EdgeFault>& edge_engine,
                  const FaultReplacementEngine<VertexFault>& vertex_engine,
                  const DualSiteTable& tables);

  /// dist(s, v, G \ {f1, f2}), order-free in (f1, f2). Preconditions:
  /// valid ids and neither element is the source vertex (the caller — the
  /// Session classification — refuses those). O(1) for reducible pairs;
  /// otherwise one BFS over the primary site's subset, cached in `arena`
  /// (`traversals`, when given, is incremented iff a BFS actually ran).
  std::int32_t dist(Vertex v, DualSite f1, DualSite f2, DualQueryArena& arena,
                    std::int64_t* traversals = nullptr) const;

  /// True iff the pair is answered O(1) — equal elements, no sited
  /// element, or exactly one sited element with the other a non-tree edge
  /// outside that site's subset (the single-fault-table reuse plane).
  /// Exposed for tests and batch accounting.
  bool reducible(DualSite f1, DualSite f2) const;

  /// Attaches (nullptr detaches) a site-local distance table, making EVERY
  /// pair answerable traversal-free through dist_fast / dist. The table's
  /// shape is validated against the tree and the pair tables (CheckError
  /// "malformed dual site-dist table" on any mismatch). The table must
  /// outlive the oracle (or the next attach).
  void attach_site_dist(const DualSiteDistTable* site_dist);
  bool has_site_dist() const { return site_dist_ != nullptr; }

  /// Traversal-free serving: returns true and writes `*out` when the pair
  /// is answerable without a BFS — reducible pairs off the single-fault
  /// tables, and with a site-dist table attached ANY pair, by one
  /// O(depth) walk of the primary site's punctured tree path. Returns
  /// false (leaving `*out` untouched) when only a traversal can answer.
  /// `used_site_dist`, when given, is set iff the site-dist rows supplied
  /// the answer (reducible pairs do not count).
  bool dist_fast(Vertex v, DualSite f1, DualSite f2, std::int32_t* out,
                 bool* used_site_dist = nullptr) const;

  const DualSiteTable& tables() const { return *tables_; }

 private:
  std::int32_t site_of(DualSite f) const;
  std::int32_t single_dist(Vertex v, DualSite f) const;
  /// The T0 root of site i's affected subtree A_{sites[i]}.
  Vertex site_top(std::size_t site) const;

  const BfsTree* tree_;
  const FaultReplacementEngine<EdgeFault>* edge_engine_;
  const FaultReplacementEngine<VertexFault>* vertex_engine_;
  const DualSiteTable* tables_;
  const DualSiteDistTable* site_dist_ = nullptr;  // optional accelerator
  std::vector<std::int32_t> edge_site_;    // EdgeId → site index or -1
  std::vector<std::int32_t> vertex_site_;  // Vertex → site index or -1
};

/// RAII application of a failure pair to a BfsBans: edges go into the two
/// scalar slots, vertices set bits in `mask` (sized on demand) that the
/// destructor clears again. The ONE ban-assembly every two-failure
/// traversal — brute-force referee, structure sweep, session what-if —
/// shares, so the protocol cannot silently diverge between them.
class PairBans {
 public:
  PairBans(DualSite f1, DualSite f2, std::vector<std::uint8_t>& mask,
           std::size_t n, BfsBans& bans);
  ~PairBans();
  PairBans(const PairBans&) = delete;
  PairBans& operator=(const PairBans&) = delete;

 private:
  std::vector<std::uint8_t>* mask_;
  Vertex masked_[2] = {kInvalidVertex, kInvalidVertex};
  int num_masked_ = 0;
};

/// Literal two-failure BFS — the referee every dual answer is measured
/// against: runs BFS from `s` in G \ {f1, f2} into `scratch` (a destroyed
/// vertex reads back kInfHops like any unreachable one).
void dual_bruteforce_bfs(const Graph& g, Vertex s, DualSite f1, DualSite f2,
                         BfsScratch& scratch);

/// Same two-failure BFS restricted to the surviving STRUCTURE
/// (H \ {f1, f2} from h.source()): the H side of every dual comparison —
/// verifier, drills, differential tests all share this one ban assembly.
void dual_structure_bfs(const FtBfsStructure& h, DualSite f1, DualSite f2,
                        BfsScratch& scratch);

/// Dual-failure verification: BFS of G \ {f1,f2} vs H \ {f1,f2} over
/// failure pairs drawn from the full universe (every edge, every non-source
/// vertex). `max_pairs < 0` checks every unordered pair exhaustively —
/// O(n²·m), fine for test sizes; otherwise `max_pairs` pairs are sampled
/// deterministically from `seed`. `edges_budget >= 0` additionally refuses
/// an over-sized structure: |E(H)| > edges_budget counts as one violation
/// (the size-regression referee — bench_construction_time passes the
/// unpruned per-seed size so a pruning regression trips CI). Returns the
/// number of violations (0 = the structure honors the dual contract and
/// the budget on everything checked).
std::int64_t verify_dual_structure(const FtBfsStructure& h,
                                   std::int64_t max_pairs = -1,
                                   std::uint64_t seed = 1,
                                   ThreadPool* pool = nullptr,
                                   std::int64_t edges_budget = -1);

}  // namespace ftb
