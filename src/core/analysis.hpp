// analysis.hpp — per-edge economics of a (graph, source) instance.
//
// The paper's Discussion frames the tradeoff through two per-edge
// quantities:
//   users(e) — the number of vertices whose π(s,v) traverses e ("a vertex
//              uses an edge if it lies on its shortest path");
//   Cost(e)  — the number of backup edges that must enter the structure to
//              protect against e's failure (here: |needed(e)|, the
//              distinct last edges of e's uncovered pairs).
// "Since reinforcement is expensive, it is beneficial to reinforce an edge
// that has many users": backup cost scales with users, reinforcement cost
// is flat — the economy-of-scale argument. analyze_economics() measures
// exactly these quantities so the claim can be checked on real instances
// (bench E12).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/replacement.hpp"

namespace ftb {

/// Economics of one tree edge.
struct EdgeEconomics {
  EdgeId e = kInvalidEdge;
  std::int32_t depth = 0;       // dist(s, e)
  std::int32_t users = 0;       // |subtree(lower endpoint)|
  std::int32_t cost = 0;        // |needed(e)| — forced backup edges
  std::int32_t covered = 0;     // non-new-ending pairs of e (answered
                                // inside T0, or disconnecting failures)
};

struct EconomicsReport {
  std::vector<EdgeEconomics> edges;       // one row per tree edge
  double users_cost_correlation = 0.0;    // Pearson over tree edges
  std::int64_t total_cost = 0;            // Σ Cost(e)
  std::int64_t max_cost = 0;

  /// Rows sorted by descending Cost(e) (the reinforcement shortlist).
  std::vector<EdgeEconomics> by_cost_desc() const;
};

/// Computes the per-edge economics from an engine (O(pairs + n)).
EconomicsReport analyze_economics(const ReplacementPathEngine& engine);

}  // namespace ftb
