#include "src/core/verifier.hpp"

#include <mutex>
#include <sstream>

#include "src/graph/bfs_kernel.hpp"
#include "src/graph/canonical_bfs.hpp"

namespace ftb {

std::string VerifyReport::to_string() const {
  std::ostringstream os;
  os << (ok ? "OK" : "VIOLATED") << " (failures_checked=" << failures_checked
     << ", violations=" << violations << ")";
  for (const auto& v : examples) {
    os << "\n  failed_edge=" << v.failed_edge << " vertex=" << v.vertex
       << " dist_H=" << v.dist_structure << " dist_G=" << v.dist_graph;
  }
  return os.str();
}

VerifyReport verify_structure(const FtBfsStructure& h,
                              const VerifyOptions& opts) {
  const Graph& g = h.graph();
  const Vertex s = h.source();
  ThreadPool& pool = opts.pool != nullptr ? *opts.pool : ThreadPool::global();

  VerifyReport report;
  std::mutex mu;
  auto record = [&](EdgeId failed, Vertex v, std::int32_t dh, std::int32_t dg) {
    std::lock_guard<std::mutex> lock(mu);
    report.ok = false;
    ++report.violations;
    if (report.examples.size() < 16) {
      report.examples.push_back(VerifyViolation{failed, v, dh, dg});
    }
  };

  // Failure-free check: H must span a BFS tree of G.
  {
    const std::vector<std::int32_t> dist_g = plain_bfs(g, s).dist;
    const std::vector<std::int32_t> dist_h =
        h.distances_avoiding(kInvalidEdge);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (dist_h[static_cast<std::size_t>(v)] !=
          dist_g[static_cast<std::size_t>(v)]) {
        record(kInvalidEdge, v, dist_h[static_cast<std::size_t>(v)],
               dist_g[static_cast<std::size_t>(v)]);
      }
    }
    ++report.failures_checked;
  }

  // Candidate failures: all tree edges, optionally every other edge of G;
  // reinforced edges are exempt by definition.
  std::vector<EdgeId> candidates;
  std::vector<std::uint8_t> is_tree(static_cast<std::size_t>(g.num_edges()), 0);
  for (const EdgeId e : h.tree_edges()) {
    is_tree[static_cast<std::size_t>(e)] = 1;
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (h.is_reinforced(e)) continue;
    if (is_tree[static_cast<std::size_t>(e)] || opts.check_nontree_failures) {
      candidates.push_back(e);
    }
  }
  if (opts.max_failures >= 0 &&
      static_cast<std::int64_t>(candidates.size()) > opts.max_failures) {
    candidates.resize(static_cast<std::size_t>(opts.max_failures));
  }

  pool.parallel_for(candidates.size(), [&](std::size_t i) {
    const EdgeId e = candidates[i];
    thread_local BfsScratch in_g, in_h;
    BfsBans g_bans;
    g_bans.banned_edge = e;
    bfs_run(g, s, g_bans, in_g);
    h.distances_avoiding(e, in_h);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (in_h.dist(v) != in_g.dist(v)) {
        record(e, v, in_h.dist(v), in_g.dist(v));
      }
    }
  });
  report.failures_checked += static_cast<std::int64_t>(candidates.size());
  return report;
}

}  // namespace ftb
