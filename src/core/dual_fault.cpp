// dual_fault.cpp — the dual-failure recursion (one punctured single-fault
// engine pair per first-failure site), the pair-table builder, the serving
// oracle and the brute-force verifier. See dual_fault.hpp for the
// correctness argument.
#include "src/core/dual_fault.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <string_view>

#include "src/core/dist_sweep.hpp"
#include "src/core/validate.hpp"
#include "src/graph/multi_source_bfs_kernel.hpp"
#include "src/util/free_list_pool.hpp"
#include "src/util/rng.hpp"

namespace ftb {

bool dual_dfs_schedule_default() {
  // Read once per process: the knob exists so CI can run the whole dual
  // suite under either schedule without plumbing a flag through every
  // default-constructed BuildSpec/SessionConfig/DualFtBfsOptions. Explicit
  // assignments to those fields always win over this default.
  static const bool on = [] {
    const char* env = std::getenv("FTBFS_DUAL_DFS_SCHEDULE");
    return env == nullptr || std::string_view(env) != "0";
  }();
  return on;
}

bool DualSiteTable::subset_contains(std::size_t i, EdgeId e) const {
  const auto sub = subset(i);
  return std::binary_search(sub.begin(), sub.end(), e);
}

namespace {

/// The first-failure sites of a tree, in the canonical order every table,
/// artifact and oracle agrees on: tree edges by tree_edges() order (preorder
/// of the lower endpoint), then internal tree vertices by preorder.
std::vector<DualSite> enumerate_sites(const BfsTree& tree) {
  std::vector<DualSite> sites;
  sites.reserve(2 * tree.tree_edges().size());
  for (const EdgeId e : tree.tree_edges()) {
    sites.push_back(DualSite{FaultClass::kEdge, e});
  }
  for (const Vertex u : tree.preorder()) {
    if (u != tree.source() && tree.subtree_size(u) > 1) {
      sites.push_back(DualSite{FaultClass::kVertex, u});
    }
  }
  return sites;
}

void sort_unique(std::vector<EdgeId>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

/// One site's unflattened slice of the DualSiteDistTable, harvested while
/// that site's punctured engines are alive.
struct SiteDistRows {
  std::vector<EdgeId> parent_edge;
  std::vector<std::int32_t> tf_depth;
  std::vector<std::int32_t> rows;
};

/// Walks π_{T_f}(s, v) for every terminal v of A_f and records, per path
/// element x, the engines' replacement_dist(v, x) — by the punctured-engine
/// contract that IS dist(s, v, G \ {f, x}), the true two-failure answer.
/// Valid for restricted engines too: every queried v is a restricted
/// terminal, every queried x an ancestor element of it.
template <class EdgeEngine, class VertexEngine>
void harvest_site_dist(const BfsTree& tree, Vertex top, const BfsTree& tf,
                       const EdgeEngine& ee, const VertexEngine& ve,
                       SiteDistRows& sr) {
  const std::span<const Vertex> terms = tree.subtree(top);
  sr.parent_edge.reserve(terms.size());
  sr.tf_depth.reserve(terms.size());
  for (const Vertex v : terms) {
    if (!tf.reachable(v)) {
      sr.parent_edge.push_back(kInvalidEdge);
      sr.tf_depth.push_back(kInfHops);
      continue;
    }
    const std::int32_t d = tf.depth(v);  // ≥ 1: v ∈ A_f excludes the source
    sr.parent_edge.push_back(tf.parent_edge(v));
    sr.tf_depth.push_back(d);
    Vertex u = v;
    for (std::int32_t j = 0; j < d; ++j) {  // d edge rows, bottom-up
      sr.rows.push_back(ee.replacement_dist(v, tf.parent_edge(u)));
      u = tf.parent(u);
    }
    u = v;
    for (std::int32_t j = 1; j < d; ++j) {  // d-1 vertex rows, bottom-up
      u = tf.parent(u);
      sr.rows.push_back(ve.replacement_dist(v, u));
    }
  }
}

}  // namespace

DualSiteTable detail::build_dual_site_table(const BfsTree& tree,
                                            ThreadPool* pool_ptr,
                                            bool reference_kernel,
                                            std::vector<EdgeId>* edges_out,
                                            bool unpruned,
                                            DualSiteDistTable* site_dist_out,
                                            bool bit_parallel,
                                            bool dfs_schedule,
                                            SweepWorkStats* sweep_work) {
  const Graph& g = tree.graph();
  const EdgeWeights& W = tree.weights();
  ThreadPool& pool = pool_ptr != nullptr ? *pool_ptr : ThreadPool::global();

  DualSiteTable table;
  table.sites = enumerate_sites(tree);

  // One punctured single-fault build per site. Iterations write disjoint
  // slots; the engines inside parallelize on the same pool (nested
  // parallel_for is supported — an inner job drains through its caller).
  //
  // Pruned (default): the punctured tree is REBASED from T0 (only the
  // affected subtree is relabeled) and the engines are restricted to the
  // affected terminals, so a site costs its subtree's volume; the subset
  // keeps only the segment those terminals consume — their T_f parent
  // edges plus their uncovered-pair last edges (see the file comment's
  // induction for why that is sufficient).
  // Unpruned (the PR 4 referee): full punctured tree build, full engines,
  // subset = T_f ∪ all last edges.
  std::vector<std::vector<EdgeId>> subsets(table.sites.size());
  std::vector<SiteDistRows> site_dist_rows(
      site_dist_out != nullptr ? table.sites.size() : 0);

  const auto site_fault = [&](std::size_t i, EdgeId* fe, Vertex* fv,
                              Vertex* top) {
    const DualSite f = table.sites[i];
    *fe = f.kind == FaultClass::kEdge ? f.id : kInvalidEdge;
    *fv = f.kind == FaultClass::kVertex ? f.id : kInvalidVertex;
    *top = f.kind == FaultClass::kEdge ? tree.lower_endpoint(*fe) : *fv;
  };

  if (unpruned) {
    // Unpruned (the PR 4 referee): full punctured tree build, full
    // engines, subset = T_f ∪ all last edges. Shared per-site body; the
    // caller hands in the punctured tree T_f.
    const auto run_site = [&](std::size_t i, const BfsTree& tf) {
      EdgeId fe;
      Vertex fv, top;
      site_fault(i, &fe, &fv, &top);
      FaultReplacementEngine<EdgeFault>::Config ec;
      FaultReplacementEngine<VertexFault>::Config vc;
      ec.collect_detours = vc.collect_detours = false;  // only last edges
      ec.pool = vc.pool = pool_ptr;
      ec.reference_kernel = vc.reference_kernel = reference_kernel;
      ec.ambient_banned_edge = vc.ambient_banned_edge = fe;
      ec.ambient_banned_vertex = vc.ambient_banned_vertex = fv;
      const FaultReplacementEngine<EdgeFault> ee(tf, ec);
      const FaultReplacementEngine<VertexFault> ve(tf, vc);
      std::vector<EdgeId>& sub = subsets[i];
      sub = tf.tree_edges();
      for (const UncoveredPair& p : ee.uncovered_pairs()) {
        sub.push_back(p.last_edge);
      }
      for (const VertexFaultPair& p : ve.uncovered_pairs()) {
        sub.push_back(p.last_edge);
      }
      sort_unique(sub);
      if (site_dist_out != nullptr) {
        harvest_site_dist(tree, top, tf, ee, ve, site_dist_rows[i]);
      }
    };

    if (bit_parallel && table.sites.size() >= 2) {
      // Bit-parallel: the per-site punctured canonical rebuilds all share
      // the source and differ only in their one-failure bans — exactly one
      // kernel lane each. Batch sites in ≤64-lane groups (one lane word),
      // fuse each group's hop phase into one sweep, then run the engines
      // per site on the pool. Labels adopted via the rebase seam are
      // bit-identical to the scalar punctured build.
      for (std::size_t g0 = 0; g0 < table.sites.size(); g0 += 64) {
        const std::size_t cnt =
            std::min<std::size_t>(64, table.sites.size() - g0);
        std::vector<BfsLane> lanes(cnt);
        for (std::size_t i = 0; i < cnt; ++i) {
          EdgeId fe;
          Vertex fv, top;
          site_fault(g0 + i, &fe, &fv, &top);
          lanes[i].source = tree.source();
          lanes[i].bans.banned_edge = fe;
          lanes[i].bans.banned_vertex_one = fv;
        }
        std::vector<CanonicalSp> sps = ms_canonical_sp(g, W, lanes);
        pool.parallel_for(cnt, [&](std::size_t i) {
          const BfsTree tf(g, W, tree.source(), std::move(sps[i]));
          run_site(g0 + i, tf);
        });
      }
    } else {
      pool.parallel_for(table.sites.size(), [&](std::size_t i) {
        EdgeId fe;
        Vertex fv, top;
        site_fault(i, &fe, &fv, &top);
        BfsBans bans;
        bans.banned_edge = fe;
        bans.banned_vertex_one = fv;
        const BfsTree tf(g, W, tree.source(), bans);
        run_site(i, tf);
      });
    }
  } else {
    // Pruned (default): the punctured tree is REBASED from T0 (only the
    // affected subtree is relabeled) and the engines are restricted to the
    // affected terminals, so a site costs its subtree's volume; the subset
    // keeps only the segment those terminals consume — their T_f parent
    // edges plus their uncovered-pair last edges (see the file comment's
    // induction for why that is sufficient). Already incremental, so the
    // bit-parallel knob has nothing to fuse here.
    std::atomic<std::int64_t> label_writes{0};
    std::atomic<std::int64_t> sweep_visits{0};

    // The per-site body both schedules share — everything except how the
    // punctured tree `tf` was produced, so bit-identity between the
    // schedules reduces to bit-identity of `tf` (pinned at the rebase
    // seam: one shared relabel-and-merge implementation).
    const auto run_pruned_site = [&](std::size_t i, EdgeId fe, Vertex fv,
                                     Vertex top, const BfsTree& tf) {
      FaultReplacementEngine<EdgeFault>::Config ec;
      FaultReplacementEngine<VertexFault>::Config vc;
      ec.collect_detours = vc.collect_detours = false;  // only last edges
      ec.pool = vc.pool = pool_ptr;
      ec.reference_kernel = vc.reference_kernel = reference_kernel;
      ec.ambient_banned_edge = vc.ambient_banned_edge = fe;
      ec.ambient_banned_vertex = vc.ambient_banned_vertex = fv;

      std::vector<EdgeId>& sub = subsets[i];
      const std::span<const Vertex> affected = tree.subtree(top);
      ec.restrict_terminals = vc.restrict_terminals = affected;
      const FaultReplacementEngine<EdgeFault> ee(tf, ec);
      const FaultReplacementEngine<VertexFault> ve(tf, vc);

      for (const Vertex v : affected) {
        if (tf.reachable(v)) sub.push_back(tf.parent_edge(v));
      }
      for (const UncoveredPair& p : ee.uncovered_pairs()) {
        sub.push_back(p.last_edge);
      }
      for (const VertexFaultPair& p : ve.uncovered_pairs()) {
        sub.push_back(p.last_edge);
      }
      sort_unique(sub);
      if (site_dist_out != nullptr) {
        harvest_site_dist(tree, top, tf, ee, ve, site_dist_rows[i]);
      }
    };

    if (dfs_schedule) {
      // DFS schedule: visit sites by ascending T0 preorder position of
      // their subtree root, chunked per top-level subtree, one
      // PuncturedWorkspace leased per chunk. Each site's rebase then
      // patches against its processed ancestor's state — the workspace
      // only restores the ancestor→site difference instead of paying an
      // independent full label copy (see PuncturedWorkspace). Iterations
      // still write disjoint slots, so the flatten below is untouched.
      const std::size_t num_sites = table.sites.size();
      std::vector<Vertex> tops(num_sites);
      for (std::size_t i = 0; i < num_sites; ++i) {
        EdgeId fe;
        Vertex fv;
        site_fault(i, &fe, &fv, &tops[i]);
      }
      std::vector<std::uint32_t> dfs_order(num_sites);
      std::iota(dfs_order.begin(), dfs_order.end(), 0);
      // stable: at equal tin (edge into t, then vertex t — identical
      // affected windows) the edge site keeps its lower index, so the
      // vertex site's undo is empty.
      std::stable_sort(dfs_order.begin(), dfs_order.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return tree.tin(tops[a]) < tree.tin(tops[b]);
                       });

      // Chunk boundaries prefer top-level subtree changes (first_hop of
      // the site's top names its child-of-source root); a run of sites
      // inside one huge subtree is force-split so it cannot serialize the
      // pool.
      std::vector<std::pair<std::size_t, std::size_t>> chunks;
      const std::size_t target = std::max<std::size_t>(
          1, num_sites / std::max<std::size_t>(1, 8 * pool.thread_count()));
      const auto top_root = [&](std::uint32_t site) {
        return tree.sp().first_hop[static_cast<std::size_t>(tops[site])];
      };
      std::size_t lo = 0;
      for (std::size_t k = 1; k < num_sites; ++k) {
        const bool subtree_break =
            top_root(dfs_order[k]) != top_root(dfs_order[k - 1]);
        if ((k - lo >= target && subtree_break) || k - lo >= 4 * target) {
          chunks.emplace_back(lo, k);
          lo = k;
        }
      }
      if (lo < num_sites) chunks.emplace_back(lo, num_sites);

      FreeListPool<PuncturedWorkspace> ws_pool;
      pool.parallel_for(chunks.size(), [&](std::size_t c) {
        const PoolLease<PuncturedWorkspace> ws(ws_pool);
        ws->bind(tree);
        const SweepWorkStats before = ws->stats();
        for (std::size_t k = chunks[c].first; k < chunks[c].second; ++k) {
          const std::size_t i = dfs_order[k];
          EdgeId fe;
          Vertex fv, top;
          site_fault(i, &fe, &fv, &top);
          run_pruned_site(i, fe, fv, top, ws->puncture(fe, fv));
        }
        const SweepWorkStats after = ws->stats();
        label_writes.fetch_add(after.label_writes - before.label_writes,
                               std::memory_order_relaxed);
        sweep_visits.fetch_add(after.sweep_visits - before.sweep_visits,
                               std::memory_order_relaxed);
      });
    } else {
      // Independent schedule (the differential referee): every site pays
      // its own full rebase from T0.
      pool.parallel_for(table.sites.size(), [&](std::size_t i) {
        EdgeId fe;
        Vertex fv, top;
        site_fault(i, &fe, &fv, &top);
        SweepWorkStats w;
        const BfsTree tf = rebase_punctured_tree(tree, fe, fv, &w);
        run_pruned_site(i, fe, fv, top, tf);
        label_writes.fetch_add(w.label_writes, std::memory_order_relaxed);
        sweep_visits.fetch_add(w.sweep_visits, std::memory_order_relaxed);
      });
    }
    if (sweep_work != nullptr) {
      sweep_work->label_writes += label_writes.load();
      sweep_work->sweep_visits += sweep_visits.load();
    }
  }

  // Deterministic flatten (site order is already canonical).
  table.offsets.assign(table.sites.size() + 1, 0);
  std::int64_t total = 0;
  for (std::size_t i = 0; i < subsets.size(); ++i) {
    total += static_cast<std::int64_t>(subsets[i].size());
    table.offsets[i + 1] = total;
  }
  table.edge_pool.reserve(static_cast<std::size_t>(total));
  for (const std::vector<EdgeId>& sub : subsets) {
    table.edge_pool.insert(table.edge_pool.end(), sub.begin(), sub.end());
  }

  if (edges_out != nullptr) {
    std::vector<EdgeId>& edges = *edges_out;
    edges = tree.tree_edges();
    edges.insert(edges.end(), table.edge_pool.begin(), table.edge_pool.end());
    sort_unique(edges);
  }

  if (site_dist_out != nullptr) {
    // Deterministic flatten, mirroring the pair-table layout: site order is
    // canonical, slot order is each subtree's preorder slice.
    DualSiteDistTable& sd = *site_dist_out;
    sd = DualSiteDistTable{};
    sd.site_offsets.assign(table.sites.size() + 1, 0);
    std::int64_t slots = 0, row_total = 0;
    for (std::size_t i = 0; i < site_dist_rows.size(); ++i) {
      slots += static_cast<std::int64_t>(site_dist_rows[i].parent_edge.size());
      row_total += static_cast<std::int64_t>(site_dist_rows[i].rows.size());
      sd.site_offsets[i + 1] = slots;
    }
    sd.parent_edge.reserve(static_cast<std::size_t>(slots));
    sd.tf_depth.reserve(static_cast<std::size_t>(slots));
    sd.row_offsets.reserve(static_cast<std::size_t>(slots) + 1);
    sd.rows.reserve(static_cast<std::size_t>(row_total));
    sd.row_offsets.push_back(0);
    for (const SiteDistRows& sr : site_dist_rows) {
      sd.parent_edge.insert(sd.parent_edge.end(), sr.parent_edge.begin(),
                            sr.parent_edge.end());
      sd.tf_depth.insert(sd.tf_depth.end(), sr.tf_depth.begin(),
                         sr.tf_depth.end());
      std::int64_t roff = sd.row_offsets.back();
      for (const std::int32_t d : sr.tf_depth) {
        roff += d >= kInfHops ? 0 : 2 * static_cast<std::int64_t>(d) - 1;
        sd.row_offsets.push_back(roff);
      }
      sd.rows.insert(sd.rows.end(), sr.rows.begin(), sr.rows.end());
    }
  }
  return table;
}

DualBuildResult detail::build_dual_failure_ftbfs_impl(
    const Graph& g, Vertex source, const DualFtBfsOptions& opts) {
  detail::check_source(g, source);
  const EdgeWeights weights =
      EdgeWeights::uniform_random(g, opts.weight_seed);
  const BfsTree tree = opts.prebuilt_sp != nullptr
                           ? BfsTree(g, weights, source,
                                     CanonicalSp(*opts.prebuilt_sp))
                           : BfsTree(g, weights, source);
  std::vector<EdgeId> edges;
  DualSiteDistTable site_dist;
  SweepWorkStats sweep_work;
  DualSiteTable table = detail::build_dual_site_table(
      tree, opts.pool, opts.reference_kernel, &edges, opts.unpruned_dual,
      opts.site_dist_oracle ? &site_dist : nullptr, opts.bit_parallel,
      opts.dfs_schedule, &sweep_work);
  FtBfsStructure h(g, source, std::move(edges), /*reinforced=*/{},
                   tree.tree_edges(), FaultClass::kDual);
  return DualBuildResult{std::move(h), std::move(table),
                         std::move(site_dist), sweep_work};
}

DualMultiSourceResult detail::build_dual_failure_ftmbfs_impl(
    const Graph& g, const std::vector<Vertex>& sources,
    const DualFtBfsOptions& opts) {
  detail::check_sources(g, sources);
  std::vector<EdgeId> edges;
  std::vector<EdgeId> tree_edges;
  std::vector<DualSiteTable> per_source;
  std::vector<DualSiteDistTable> per_source_site_dist;
  per_source.reserve(sources.size());
  if (opts.site_dist_oracle) per_source_site_dist.reserve(sources.size());
  // Bit-parallel: fuse the per-source T0 builds into one kernel sweep and
  // hand each per-source build its prebuilt canonical labels. CanonicalSp is
  // self-contained, so the locally scoped weights table is safe — each
  // per-source impl rebuilds the identical table from the same seed.
  std::vector<CanonicalSp> sps;
  const bool fuse = opts.bit_parallel && sources.size() >= 2 &&
                    opts.prebuilt_sp == nullptr;
  if (fuse) {
    const EdgeWeights weights =
        EdgeWeights::uniform_random(g, opts.weight_seed);
    std::vector<BfsLane> lanes(sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
      lanes[i].source = sources[i];
    }
    sps = ms_canonical_sp(g, weights, lanes);
  }
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const Vertex s = sources[i];
    DualFtBfsOptions per = opts;
    if (fuse) per.prebuilt_sp = &sps[i];
    DualBuildResult r = detail::build_dual_failure_ftbfs_impl(g, s, per);
    edges.insert(edges.end(), r.structure.edges().begin(),
                 r.structure.edges().end());
    tree_edges.insert(tree_edges.end(), r.structure.tree_edges().begin(),
                      r.structure.tree_edges().end());
    per_source.push_back(std::move(r.tables));
    if (opts.site_dist_oracle) {
      per_source_site_dist.push_back(std::move(r.site_dist));
    }
  }
  FtBfsStructure merged(g, sources.front(), std::move(edges),
                        /*reinforced=*/{}, std::move(tree_edges),
                        FaultClass::kDual);
  return DualMultiSourceResult{sources, std::move(merged),
                               std::move(per_source),
                               std::move(per_source_site_dist)};
}

// ---------------------------------------------------------------------------
// DualFaultOracle

DualFaultOracle::DualFaultOracle(
    const BfsTree& tree, const FaultReplacementEngine<EdgeFault>& edge_engine,
    const FaultReplacementEngine<VertexFault>& vertex_engine,
    const DualSiteTable& tables)
    : tree_(&tree),
      edge_engine_(&edge_engine),
      vertex_engine_(&vertex_engine),
      tables_(&tables) {
  FTB_CHECK_MSG(tables.offsets.size() == tables.sites.size() + 1 &&
                    !tables.offsets.empty() &&
                    tables.offsets.back() ==
                        static_cast<std::int64_t>(tables.edge_pool.size()),
                "malformed dual pair tables");
  // The tables must describe exactly this tree's first-failure sites —
  // anything else means the artifact was built around a different T0
  // (classic cause: serving with a different weight_seed than the build).
  FTB_CHECK_MSG(enumerate_sites(tree) == tables.sites,
                "dual pair tables do not match the session tree "
                "(was the structure built with this weight_seed?)");

  const Graph& g = tree.graph();
  edge_site_.assign(static_cast<std::size_t>(g.num_edges()), -1);
  vertex_site_.assign(static_cast<std::size_t>(g.num_vertices()), -1);
  for (std::size_t i = 0; i < tables.sites.size(); ++i) {
    const DualSite f = tables.sites[i];
    auto& slot = f.kind == FaultClass::kEdge
                     ? edge_site_[static_cast<std::size_t>(f.id)]
                     : vertex_site_[static_cast<std::size_t>(f.id)];
    slot = static_cast<std::int32_t>(i);
  }
}

std::int32_t DualFaultOracle::site_of(DualSite f) const {
  return f.kind == FaultClass::kEdge
             ? edge_site_[static_cast<std::size_t>(f.id)]
             : vertex_site_[static_cast<std::size_t>(f.id)];
}

std::int32_t DualFaultOracle::single_dist(Vertex v, DualSite f) const {
  if (f.kind == FaultClass::kEdge) {
    return edge_engine_->replacement_dist(v, f.id);
  }
  if (v == f.id) return kInfHops;
  return vertex_engine_->replacement_dist(v, f.id);
}

bool DualFaultOracle::reducible(DualSite f1, DualSite f2) const {
  if (f2 < f1) std::swap(f1, f2);
  if (f1 == f2) return true;
  const std::int32_t s1 = site_of(f1);
  const std::int32_t s2 = site_of(f2);
  if (s1 < 0 && s2 < 0) return true;
  if (s1 >= 0 && s2 >= 0) return false;  // two sited elements always traverse
  const std::int32_t ps = s1 >= 0 ? s1 : s2;
  const DualSite other = s1 >= 0 ? f2 : f1;
  // A non-sited edge is a non-tree edge; outside C_ps it is absent from
  // the whole serving set T0 ∪ C_ps, so deleting it changes nothing there.
  return other.kind == FaultClass::kEdge &&
         !tables_->subset_contains(static_cast<std::size_t>(ps), other.id);
}

Vertex DualFaultOracle::site_top(std::size_t site) const {
  const DualSite f = tables_->sites[site];
  return f.kind == FaultClass::kEdge ? tree_->lower_endpoint(f.id) : f.id;
}

void DualFaultOracle::attach_site_dist(const DualSiteDistTable* site_dist) {
  if (site_dist == nullptr) {
    site_dist_ = nullptr;
    return;
  }
  const DualSiteDistTable& sd = *site_dist;
  const Graph& g = tree_->graph();
  FTB_CHECK_MSG(
      sd.site_offsets.size() == tables_->num_sites() + 1 &&
          sd.site_offsets.front() == 0 &&
          sd.site_offsets.back() ==
              static_cast<std::int64_t>(sd.num_slots()) &&
          sd.tf_depth.size() == sd.num_slots() &&
          sd.row_offsets.size() == sd.num_slots() + 1 &&
          sd.row_offsets.front() == 0 &&
          sd.row_offsets.back() == static_cast<std::int64_t>(sd.rows.size()),
      "malformed dual site-dist table (offsets do not cover the slots)");
  for (std::size_t i = 0; i < tables_->num_sites(); ++i) {
    const Vertex top = site_top(i);
    const std::span<const Vertex> terms = tree_->subtree(top);
    FTB_CHECK_MSG(sd.site_offsets[i + 1] - sd.site_offsets[i] ==
                      static_cast<std::int64_t>(terms.size()),
                  "malformed dual site-dist table (site "
                      << i << " has " << sd.site_offsets[i + 1] -
                                             sd.site_offsets[i]
                      << " slots for " << terms.size() << " terminals)");
    for (std::size_t k = 0; k < terms.size(); ++k) {
      const auto slot = static_cast<std::size_t>(sd.site_offsets[i]) + k;
      const std::int32_t d = sd.tf_depth[slot];
      const std::int64_t row_len =
          sd.row_offsets[slot + 1] - sd.row_offsets[slot];
      if (d >= kInfHops) {
        FTB_CHECK_MSG(sd.parent_edge[slot] == kInvalidEdge && row_len == 0,
                      "malformed dual site-dist table (unreachable slot "
                      "with a parent edge or rows)");
        continue;
      }
      const EdgeId pe = sd.parent_edge[slot];
      const bool incident =
          g.valid_edge(pe) && (g.edge(pe).first == terms[k] ||
                               g.edge(pe).second == terms[k]);
      FTB_CHECK_MSG(d >= 1 && d < g.num_vertices() && incident &&
                        row_len == 2 * static_cast<std::int64_t>(d) - 1,
                    "malformed dual site-dist table (bad slot for terminal "
                        << terms[k] << " of site " << i << ")");
    }
  }
  site_dist_ = site_dist;
}

bool DualFaultOracle::dist_fast(Vertex v, DualSite f1, DualSite f2,
                                std::int32_t* out,
                                bool* used_site_dist) const {
  if (used_site_dist != nullptr) *used_site_dist = false;
  if (f2 < f1) std::swap(f1, f2);
  // A destroyed terminal is gone under any classification.
  if ((f1.kind == FaultClass::kVertex && f1.id == v) ||
      (f2.kind == FaultClass::kVertex && f2.id == v)) {
    *out = kInfHops;
    return true;
  }
  // A doubled element is a single failure — pure table read.
  if (f1 == f2) {
    *out = single_dist(v, f1);
    return true;
  }

  const std::int32_t s1 = site_of(f1);
  const std::int32_t s2 = site_of(f2);
  if (s1 < 0 && s2 < 0) {
    // Neither element lies on any π(s,·): a non-tree edge is on no tree
    // path and a leaf vertex only on its own, so π(s,v) survives in G and
    // in H and the failure-free depth is exact.
    *out = tree_->depth(v);
    return true;
  }
  if ((s1 >= 0) != (s2 >= 0)) {
    const std::int32_t ps = s1 >= 0 ? s1 : s2;
    const DualSite primary = s1 >= 0 ? f1 : f2;
    const DualSite other = s1 >= 0 ? f2 : f1;
    if (other.kind == FaultClass::kEdge &&
        !tables_->subset_contains(static_cast<std::size_t>(ps), other.id)) {
      // `other` is a non-tree edge outside C_primary, so the serving set
      // T0 ∪ C_primary holds no copy of it: deleting it changes nothing
      // there and the stored single-fault answer is already the
      // two-failure answer (the {f, f} degenerate of the file comment's
      // induction realizes single-fault distances inside T0 ∪ C_f).
      *out = single_dist(v, primary);
      return true;
    }
  }
  if (site_dist_ == nullptr) return false;  // only a traversal can answer

  if (!tree_->reachable(v)) {  // unreachable failure-free stays unreachable
    *out = kInfHops;
    if (used_site_dist != nullptr) *used_site_dist = true;
    return true;
  }
  // Pick a sited element whose subtree holds v as the primary (the deeper
  // top when both do — a shorter walk; ANY containing site is correct). If
  // neither subtree holds v, the T0 path avoids both failures and the
  // failure-free depth is exact.
  std::int32_t ps = -1;
  Vertex top = kInvalidVertex;
  for (const std::int32_t s : {s1, s2}) {
    if (s < 0) continue;
    const Vertex t = site_top(static_cast<std::size_t>(s));
    if (!tree_->is_ancestor_or_equal(t, v)) continue;
    if (ps < 0 || tree_->depth(t) > tree_->depth(top)) {
      ps = s;
      top = t;
    }
  }
  if (ps < 0) {
    *out = tree_->depth(v);
    if (used_site_dist != nullptr) *used_site_dist = true;
    return true;
  }
  const DualSite other = ps == s1 ? f2 : f1;
  const DualSiteDistTable& sd = *site_dist_;
  // A_ps is a contiguous preorder slice, so tin(u) − tin(top) indexes it.
  const std::int64_t base =
      sd.site_offsets[static_cast<std::size_t>(ps)] - tree_->tin(top);
  const auto slot_of = [&](Vertex u) {
    return static_cast<std::size_t>(base + tree_->tin(u));
  };
  const std::size_t slot = slot_of(v);
  const std::int32_t d = sd.tf_depth[slot];
  if (used_site_dist != nullptr) *used_site_dist = true;
  if (d >= kInfHops) {  // gone already under the primary failure alone
    *out = kInfHops;
    return true;
  }
  // Walk π_{T_ps}(s, v) bottom-up: stored T_ps parent edges inside A_ps,
  // T0 parent edges outside (the trees coincide there, and the walk never
  // re-enters A_ps once it leaves — subtrees are parent-closed from below).
  // Match `other` by position: path edge j → edge row j, intermediate
  // vertex after j+1 steps → vertex row d + j. Off the path, the T_ps tree
  // path survives both failures and its length d is the answer.
  const Graph& g = tree_->graph();
  const std::int64_t roff = sd.row_offsets[slot];
  std::int32_t result = d;
  Vertex u = v;
  for (std::int32_t j = 0; j < d; ++j) {
    const EdgeId e = tree_->is_ancestor_or_equal(top, u)
                         ? sd.parent_edge[slot_of(u)]
                         : tree_->parent_edge(u);
    if (other.kind == FaultClass::kEdge && other.id == e) {
      result = sd.rows[static_cast<std::size_t>(roff + j)];
      break;
    }
    const auto [x, y] = g.edge(e);
    u = x == u ? y : x;
    if (j + 1 < d && other.kind == FaultClass::kVertex && other.id == u) {
      result = sd.rows[static_cast<std::size_t>(roff + d + j)];
      break;
    }
  }
  *out = result;
  return true;
}

std::int32_t DualFaultOracle::dist(Vertex v, DualSite f1, DualSite f2,
                                   DualQueryArena& arena,
                                   std::int64_t* traversals) const {
  std::int32_t fast = 0;
  if (dist_fast(v, f1, f2, &fast)) return fast;
  if (f2 < f1) std::swap(f1, f2);
  const std::int32_t s1 = site_of(f1);
  const std::int32_t s2 = site_of(f2);

  // One BFS over (T0 ∪ C_{f1} ∪ C_{f2}) \ {f1, f2}, memoized in the arena
  // (a one-slot cache: any other pair evicts the held traversal).
  const Graph& g = tree_->graph();
  const std::size_t m = static_cast<std::size_t>(g.num_edges());
  if (arena.mask_table_ != tables_ || arena.mask_site_a_ != s1 ||
      arena.mask_site_b_ != s2) {
    if (arena.site_ban_.size() < m || arena.mask_table_ != tables_) {
      // Fresh serving-set mask: admit T0's tree edges once; site subsets
      // toggle below.
      arena.site_ban_.assign(m, 1);
      for (const EdgeId e : tree_->tree_edges()) {
        arena.site_ban_[static_cast<std::size_t>(e)] = 0;
      }
    } else {
      // Re-ban the previously admitted subsets instead of an O(m) reset —
      // minus their T0-shared edges, which every serving set admits.
      for (const std::int32_t old :
           {arena.mask_site_a_, arena.mask_site_b_}) {
        if (old < 0) continue;
        for (const EdgeId e :
             arena.mask_table_->subset(static_cast<std::size_t>(old))) {
          if (!tree_->is_tree_edge(e)) {
            arena.site_ban_[static_cast<std::size_t>(e)] = 1;
          }
        }
      }
    }
    for (const std::int32_t site : {s1, s2}) {
      if (site < 0) continue;
      for (const EdgeId e :
           tables_->subset(static_cast<std::size_t>(site))) {
        arena.site_ban_[static_cast<std::size_t>(e)] = 0;
      }
    }
    arena.mask_table_ = tables_;
    arena.mask_site_a_ = s1;
    arena.mask_site_b_ = s2;
    arena.traversal_valid_ = false;
  }
  if (!arena.traversal_valid_ ||
      !(arena.held_f1_ == f1 && arena.held_f2_ == f2)) {
    BfsBans bans;
    bans.banned_edge_mask = &arena.site_ban_;
    const PairBans pair(f1, f2, arena.vertex_ban_,
                        static_cast<std::size_t>(g.num_vertices()), bans);
    bfs_run(g, tree_->source(), bans, arena.bfs_);
    arena.traversal_valid_ = true;
    arena.held_f1_ = f1;
    arena.held_f2_ = f2;
    ++arena.misses_;
    if (traversals != nullptr) ++*traversals;
  } else {
    ++arena.hits_;
  }
  return arena.bfs_.dist(v);
}

// ---------------------------------------------------------------------------
// Brute force and verification

PairBans::PairBans(DualSite f1, DualSite f2, std::vector<std::uint8_t>& mask,
                   std::size_t n, BfsBans& bans)
    : mask_(&mask) {
  for (const DualSite f : {f1, f2}) {
    if (f.id < 0) continue;  // absent second element
    if (f.kind == FaultClass::kEdge) {
      (bans.banned_edge == kInvalidEdge ? bans.banned_edge
                                        : bans.banned_edge2) = f.id;
    } else {
      if (mask.size() < n) mask.assign(n, 0);
      mask[static_cast<std::size_t>(f.id)] = 1;
      bans.banned_vertex = &mask;
      masked_[num_masked_++] = f.id;
    }
  }
}

PairBans::~PairBans() {
  for (int i = 0; i < num_masked_; ++i) {
    (*mask_)[static_cast<std::size_t>(masked_[i])] = 0;
  }
}

void dual_bruteforce_bfs(const Graph& g, Vertex s, DualSite f1, DualSite f2,
                         BfsScratch& scratch) {
  thread_local std::vector<std::uint8_t> mask;
  BfsBans bans;
  const PairBans pair(f1, f2, mask,
                      static_cast<std::size_t>(g.num_vertices()), bans);
  bfs_run(g, s, bans, scratch);
}

void dual_structure_bfs(const FtBfsStructure& h, DualSite f1, DualSite f2,
                        BfsScratch& scratch) {
  const Graph& g = h.graph();
  thread_local std::vector<std::uint8_t> mask;
  BfsBans bans;
  bans.banned_edge_mask = &h.complement_mask();
  const PairBans pair(f1, f2, mask,
                      static_cast<std::size_t>(g.num_vertices()), bans);
  bfs_run(g, h.source(), bans, scratch);
}

std::int64_t verify_dual_structure(const FtBfsStructure& h,
                                   std::int64_t max_pairs, std::uint64_t seed,
                                   ThreadPool* pool_ptr,
                                   std::int64_t edges_budget) {
  const Graph& g = h.graph();
  const Vertex s = h.source();
  ThreadPool& pool = pool_ptr != nullptr ? *pool_ptr : ThreadPool::global();

  // Size-regression referee: a structure over its recorded budget fails
  // verification outright, independent of the distance checks below.
  std::int64_t size_violations = 0;
  if (edges_budget >= 0 && h.num_edges() > edges_budget) {
    size_violations = 1;
  }

  // The failure universe: every edge of G (in H or not), every non-source
  // vertex.
  std::vector<DualSite> universe;
  universe.reserve(static_cast<std::size_t>(g.num_edges()) +
                   static_cast<std::size_t>(g.num_vertices()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    universe.push_back(DualSite{FaultClass::kEdge, e});
  }
  for (Vertex x = 0; x < g.num_vertices(); ++x) {
    if (x != s) universe.push_back(DualSite{FaultClass::kVertex, x});
  }
  const std::size_t u = universe.size();

  // The pair list: every unordered pair (i ≤ j; i == j exercises the
  // single-failure degenerate) or a seeded sample of max_pairs of them.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  if (max_pairs < 0) {
    pairs.reserve(u * (u + 1) / 2);
    for (std::uint32_t i = 0; i < u; ++i) {
      for (std::uint32_t j = i; j < u; ++j) pairs.emplace_back(i, j);
    }
  } else {
    Rng rng(seed);
    pairs.reserve(static_cast<std::size_t>(max_pairs));
    for (std::int64_t k = 0; k < max_pairs; ++k) {
      pairs.emplace_back(static_cast<std::uint32_t>(rng.next_below(u)),
                         static_cast<std::uint32_t>(rng.next_below(u)));
    }
  }

  std::atomic<std::int64_t> violations{0};
  pool.parallel_for(pairs.size(), [&](std::size_t k) {
    const DualSite f1 = universe[pairs[k].first];
    const DualSite f2 = universe[pairs[k].second];
    thread_local BfsScratch in_g, in_h;
    dual_bruteforce_bfs(g, s, f1, f2, in_g);
    dual_structure_bfs(h, f1, f2, in_h);
    std::int64_t local = 0;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (in_h.dist(v) != in_g.dist(v)) ++local;
    }
    if (local != 0) violations.fetch_add(local, std::memory_order_relaxed);
  });
  return violations.load() + size_violations;
}

}  // namespace ftb
