// vertex_ftbfs.cpp — thin builders over the shared S0 engine
// (fault_model.cpp) under the VertexFault policy, plus the exhaustive
// literal-BFS verifier.
#include "src/core/vertex_ftbfs.hpp"

#include <atomic>

#include "src/core/ftbfs.hpp"
#include "src/core/validate.hpp"
#include "src/graph/bfs_kernel.hpp"

namespace ftb {

FtBfsStructure build_vertex_ftbfs(const VertexReplacementEngine& engine) {
  const BfsTree& tree = engine.tree();
  std::vector<EdgeId> edges = tree.tree_edges();
  for (const VertexFaultPair& p : engine.uncovered_pairs()) {
    edges.push_back(p.last_edge);
  }
  return FtBfsStructure(tree.graph(), tree.source(), std::move(edges), {},
                        tree.tree_edges(), FaultClass::kVertex);
}

FtBfsStructure detail::build_vertex_ftbfs_impl(const Graph& g, Vertex source,
                                               const VertexFtBfsOptions& opts) {
  detail::check_source(g, source);
  const EdgeWeights weights = EdgeWeights::uniform_random(g, opts.weight_seed);
  const BfsTree tree = opts.prebuilt_sp != nullptr
                           ? BfsTree(g, weights, source,
                                     CanonicalSp(*opts.prebuilt_sp))
                           : BfsTree(g, weights, source);
  VertexReplacementEngine::Config cfg;
  cfg.pool = opts.pool;
  cfg.reference_kernel = opts.reference_kernel;
  cfg.collect_detours = false;  // the baseline only needs last edges
  const VertexReplacementEngine engine(tree, cfg);
  return build_vertex_ftbfs(engine);
}

FtBfsStructure detail::build_either_ftbfs_impl(const Graph& g, Vertex source,
                                               const VertexFtBfsOptions& opts) {
  FtBfsOptions eopts;
  eopts.weight_seed = opts.weight_seed;
  eopts.pool = opts.pool;
  eopts.reference_kernel = opts.reference_kernel;
  // Both halves of the union share one canonical tree, so one prebuilt
  // label set serves the edge and the vertex build alike.
  eopts.prebuilt_sp = opts.prebuilt_sp;
  const FtBfsStructure edge_h = detail::build_ftbfs_impl(g, source, eopts);
  const FtBfsStructure vertex_h =
      detail::build_vertex_ftbfs_impl(g, source, opts);
  std::vector<EdgeId> edges = edge_h.edges();
  edges.insert(edges.end(), vertex_h.edges().begin(), vertex_h.edges().end());
  return FtBfsStructure(g, source, std::move(edges), {}, edge_h.tree_edges(),
                        FaultClass::kEither);
}

FtBfsStructure build_vertex_ftbfs(const Graph& g, Vertex source,
                                  const VertexFtBfsOptions& opts) {
  return detail::build_vertex_ftbfs_impl(g, source, opts);
}

FtBfsStructure build_dual_ftbfs(const Graph& g, Vertex source,
                                const VertexFtBfsOptions& opts) {
  return detail::build_either_ftbfs_impl(g, source, opts);
}

std::int64_t verify_vertex_structure(const FtBfsStructure& h,
                                     std::int64_t max_failures,
                                     ThreadPool* pool_ptr) {
  const Graph& g = h.graph();
  const Vertex s = h.source();
  ThreadPool& pool = pool_ptr != nullptr ? *pool_ptr : ThreadPool::global();

  std::vector<Vertex> candidates;
  for (Vertex x = 0; x < g.num_vertices(); ++x) {
    if (x != s) candidates.push_back(x);
  }
  if (max_failures >= 0 &&
      static_cast<std::int64_t>(candidates.size()) > max_failures) {
    candidates.resize(static_cast<std::size_t>(max_failures));
  }

  std::atomic<std::int64_t> violations{0};
  pool.parallel_for(candidates.size(), [&](std::size_t i) {
    const Vertex x = candidates[i];
    const std::size_t n = static_cast<std::size_t>(g.num_vertices());
    thread_local std::vector<std::uint8_t> banned;
    if (banned.size() < n) banned.assign(n, 0);
    banned[static_cast<std::size_t>(x)] = 1;
    thread_local BfsScratch in_g, in_h;
    BfsBans g_bans;
    g_bans.banned_vertex = &banned;
    bfs_run(g, s, g_bans, in_g);
    BfsBans h_bans;
    h_bans.banned_vertex = &banned;
    h_bans.banned_edge_mask = &h.complement_mask();
    bfs_run(g, s, h_bans, in_h);
    std::int64_t local = 0;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (v == x) continue;
      if (in_h.dist(v) != in_g.dist(v)) ++local;
    }
    banned[static_cast<std::size_t>(x)] = 0;
    violations.fetch_add(local, std::memory_order_relaxed);
  });
  return violations.load();
}

}  // namespace ftb
