#include "src/core/vertex_ftbfs.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "src/core/dist_sweep.hpp"
#include "src/core/ftbfs.hpp"
#include "src/graph/bfs_kernel.hpp"

namespace ftb {

namespace {

/// Best off-path detour from a divergence candidate (same object as the
/// edge engine's, re-derived here with vertex-fault semantics).
struct DetourCandidate {
  std::int32_t hops = kInfHops;
  std::uint64_t wsum = 0;
  Vertex entry = kInvalidVertex;
  EdgeId last_edge = kInvalidEdge;

  bool valid() const { return hops < kInfHops; }
  bool better_than(const DetourCandidate& o) const {
    if (hops != o.hops) return hops < o.hops;
    if (wsum != o.wsum) return wsum < o.wsum;
    if (entry != o.entry) return entry < o.entry;
    return last_edge < o.last_edge;
  }
};

}  // namespace

VertexReplacementEngine::VertexReplacementEngine(const BfsTree& tree,
                                                 Config cfg)
    : tree_(&tree), cfg_(cfg) {
  ThreadPool& pool = cfg_.pool != nullptr ? *cfg_.pool : ThreadPool::global();
  build_dist_tables(pool);
  build_pairs(pool);
}

void VertexReplacementEngine::build_dist_tables(ThreadPool& pool) {
  const Graph& g = tree_->graph();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());

  // Row v holds the failures of the depth(v)−1 internal vertices of π(s,v).
  row_offset_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const std::int32_t d = tree_->depth(static_cast<Vertex>(v));
    row_offset_[v + 1] =
        row_offset_[v] + ((d >= kInfHops || d < 1) ? 0 : d - 1);
  }
  rows_.assign(static_cast<std::size_t>(row_offset_[n]), kInfHops);
  stats_.pairs_total = static_cast<std::int64_t>(rows_.size());

  // One replacement-distance computation per internal tree vertex x; fill
  // the slot of every strict descendant of x. Disjoint slots → safely
  // parallel; per-thread scratch arenas keep the steady state allocation-
  // free.
  const auto pre = tree_->preorder();
  pool.parallel_for(pre.size(), [&](std::size_t idx) {
    const Vertex x = pre[idx];
    if (x == tree_->source()) return;
    if (tree_->subtree_size(x) <= 1) return;  // no strict descendants
    const std::int32_t pos = tree_->depth(x);
    const auto affected = tree_->subtree(x);
    auto row_slot = [&](Vertex v) -> std::int32_t& {
      return rows_[static_cast<std::size_t>(
          row_offset_[static_cast<std::size_t>(v)] + (pos - 1))];
    };
    if (!cfg_.reference_kernel && cfg_.incremental_dist) {
      thread_local ReplacementSweepScratch sweep;
      replacement_dist_sweep(*tree_, kInvalidEdge, x, affected, sweep);
      for (const Vertex v : affected) {
        if (v == x) continue;
        row_slot(v) = sweep.dist(v);
      }
      return;
    }
    thread_local std::vector<std::uint8_t> banned;
    if (banned.size() < n) banned.assign(n, 0);
    banned[static_cast<std::size_t>(x)] = 1;
    BfsBans bans;
    bans.banned_vertex = &banned;
    if (cfg_.reference_kernel) {
      const BfsResult res = plain_bfs_reference(g, tree_->source(), bans);
      for (const Vertex v : affected) {
        if (v == x) continue;
        row_slot(v) = res.dist[static_cast<std::size_t>(v)];
      }
    } else {
      thread_local BfsScratch scratch;
      bfs_run(g, tree_->source(), bans, scratch);
      for (const Vertex v : affected) {
        if (v == x) continue;
        row_slot(v) = scratch.dist(v);
      }
    }
    banned[static_cast<std::size_t>(x)] = 0;
  });
}

std::int32_t VertexReplacementEngine::replacement_dist(Vertex v,
                                                       Vertex x) const {
  FTB_CHECK_MSG(x != tree_->source(), "the source never fails");
  if (!tree_->reachable(v)) return kInfHops;
  if (v == x) return kInfHops;  // the terminal itself failed
  if (!tree_->reachable(x) || !tree_->is_ancestor_or_equal(x, v)) {
    return tree_->depth(v);  // π(s,v) avoids x
  }
  return table_dist(v, tree_->depth(x));
}

void VertexReplacementEngine::build_pairs(ThreadPool& pool) {
  const Graph& g = tree_->graph();
  const EdgeWeights& W = tree_->weights();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());

  struct PerVertex {
    std::vector<VertexFaultPair> pairs;
    std::int64_t covered = 0;
    std::int64_t infinite = 0;
  };
  std::vector<PerVertex> per_vertex(n);

  // Pre-classification against the phase-1 tables only; lets a vertex with
  // no uncovered pair skip the off-path BFS entirely.
  auto classify = [&](Vertex v, std::int32_t k, PerVertex& out,
                      const std::vector<Vertex>& path,
                      std::vector<std::int32_t>& uncovered_pos) {
    uncovered_pos.clear();
    for (std::int32_t i = 1; i <= k - 1; ++i) {  // failing vertex u_i
      const Vertex x = path[static_cast<std::size_t>(i)];
      const std::int32_t rd = table_dist(v, i);
      if (rd >= kInfHops) {
        ++out.infinite;
        continue;
      }
      // Covered test: a T0-neighbor u ≠ x of v with dist_x(u) + 1 == rd.
      bool is_covered = false;
      const Vertex parent = tree_->parent(v);
      if (parent != kInvalidVertex && parent != x) {
        // x is a strict ancestor of parent here (i ≤ k−2), so the row
        // exists.
        if (table_dist(parent, i) + 1 == rd) is_covered = true;
      }
      if (!is_covered) {
        for (const Vertex c : tree_->children(v)) {
          if (table_dist(c, i) + 1 == rd) {
            is_covered = true;
            break;
          }
        }
      }
      if (is_covered) {
        ++out.covered;
      } else {
        uncovered_pos.push_back(i);
      }
    }
  };

  // Per-vertex detour body, generic over the canonical-SP view.
  auto process = [&](Vertex v, PerVertex& out,
                     const std::vector<Vertex>& path,
                     const std::vector<std::uint8_t>& banned,
                     const std::vector<std::int32_t>& uncovered_pos,
                     const auto& dv) {
    // detlen(j), identical to the edge engine (the failing object is a
    // path vertex, never an off-path edge, so no extra exclusions beyond
    // the tree parent edge, which is unreachable anyway since j ≤ i−1 ≤
    // k−2). Divergence sits strictly above the deepest uncovered failing
    // vertex.
    const std::int32_t jmax = uncovered_pos.back() - 1;
    const EdgeId parent_e = tree_->parent_edge(v);
    thread_local std::vector<DetourCandidate> det;
    det.assign(static_cast<std::size_t>(jmax) + 1, DetourCandidate{});
    for (std::int32_t j = 0; j <= jmax; ++j) {
      DetourCandidate& best = det[static_cast<std::size_t>(j)];
      const Vertex uj = path[static_cast<std::size_t>(j)];
      for (const Arc& a : g.neighbors(uj)) {
        DetourCandidate cand;
        if (a.to == v) {
          if (a.edge == parent_e) continue;
          cand.hops = 1;
          cand.wsum = W[a.edge];
          cand.entry = uj;
          cand.last_edge = a.edge;
        } else {
          if (banned[static_cast<std::size_t>(a.to)]) continue;
          if (!dv.reachable(a.to)) continue;
          cand.hops = 1 + dv.hops(a.to);
          cand.wsum = W[a.edge] + dv.wsum(a.to);
          cand.entry = dv.first_hop(a.to);
          cand.last_edge = dv.parent_edge(cand.entry);
        }
        if (!best.valid() || cand.better_than(best)) best = cand;
      }
    }

    for (const std::int32_t i : uncovered_pos) {  // failing vertex u_i
      const Vertex x = path[static_cast<std::size_t>(i)];
      const std::int32_t rd = table_dist(v, i);

      std::int32_t jstar = -1;
      for (std::int32_t j = 0; j <= i - 1; ++j) {
        const DetourCandidate& c = det[static_cast<std::size_t>(j)];
        if (c.valid() && j + c.hops == rd) {
          jstar = j;
          break;
        }
      }
      FTB_CHECK_MSG(jstar >= 0,
                    "vertex-fault engine invariant violated (v="
                        << v << ", x=" << x << ", rd=" << rd << ")");
      const DetourCandidate& c = det[static_cast<std::size_t>(jstar)];
      VertexFaultPair p;
      p.v = v;
      p.x = x;
      p.x_pos = i;
      p.rep_dist = rd;
      p.diverge = path[static_cast<std::size_t>(jstar)];
      p.diverge_depth = jstar;
      p.last_edge = c.last_edge;
      out.pairs.push_back(p);
    }
  };

  pool.parallel_for(n, [&](std::size_t vi) {
    const Vertex v = static_cast<Vertex>(vi);
    const std::int32_t k = tree_->depth(v);
    if (k <= 1 || k >= kInfHops) return;  // no internal path vertices
    PerVertex& out = per_vertex[vi];

    thread_local std::vector<Vertex> path;
    path.clear();
    for (Vertex u = v; u != kInvalidVertex; u = tree_->parent(u)) {
      path.push_back(u);
    }
    std::reverse(path.begin(), path.end());

    thread_local std::vector<std::int32_t> uncovered_pos;
    if (!cfg_.reference_kernel) {
      classify(v, k, out, path, uncovered_pos);
      if (uncovered_pos.empty()) return;  // no off-path BFS needed
    }

    thread_local std::vector<std::uint8_t> banned;
    if (banned.size() < n) banned.assign(n, 0);
    for (std::int32_t j = 0; j < k; ++j) {
      banned[static_cast<std::size_t>(path[static_cast<std::size_t>(j)])] = 1;
    }
    BfsBans bans;
    bans.banned_vertex = &banned;

    if (cfg_.reference_kernel) {
      // Seed pipeline order: one unconditional off-path BFS per vertex.
      const CanonicalSp dv = canonical_sp(g, W, v, bans);
      classify(v, k, out, path, uncovered_pos);
      if (!uncovered_pos.empty()) {
        process(v, out, path, banned, uncovered_pos, CanonicalSpRefView{&dv});
      }
    } else {
      std::int32_t max_rd = 0;
      for (const std::int32_t i : uncovered_pos) {
        max_rd = std::max(max_rd, table_dist(v, i));
      }
      thread_local CanonicalSpScratch sps;
      canonical_sp_run(g, W, v, bans, sps, max_rd - 1);
      process(v, out, path, banned, uncovered_pos, CanonicalSpScratchView{&sps});
    }

    for (std::int32_t j = 0; j < k; ++j) {
      banned[static_cast<std::size_t>(path[static_cast<std::size_t>(j)])] = 0;
    }
  });

  pairs_.clear();
  for (std::size_t vi = 0; vi < n; ++vi) {
    stats_.pairs_covered += per_vertex[vi].covered;
    stats_.pairs_infinite += per_vertex[vi].infinite;
    pairs_.insert(pairs_.end(), per_vertex[vi].pairs.begin(),
                  per_vertex[vi].pairs.end());
  }
  stats_.pairs_uncovered = static_cast<std::int64_t>(pairs_.size());
}

FtBfsStructure build_vertex_ftbfs(const Graph& g, Vertex source,
                                  const VertexFtBfsOptions& opts) {
  const EdgeWeights weights = EdgeWeights::uniform_random(g, opts.weight_seed);
  const BfsTree tree(g, weights, source);
  VertexReplacementEngine::Config cfg;
  cfg.pool = opts.pool;
  const VertexReplacementEngine engine(tree, cfg);
  std::vector<EdgeId> edges = tree.tree_edges();
  for (const VertexFaultPair& p : engine.uncovered_pairs()) {
    edges.push_back(p.last_edge);
  }
  return FtBfsStructure(g, source, std::move(edges), {}, tree.tree_edges());
}

FtBfsStructure build_dual_ftbfs(const Graph& g, Vertex source,
                                const VertexFtBfsOptions& opts) {
  FtBfsOptions eopts;
  eopts.weight_seed = opts.weight_seed;
  eopts.pool = opts.pool;
  const FtBfsStructure edge_h = build_ftbfs(g, source, eopts);
  const FtBfsStructure vertex_h = build_vertex_ftbfs(g, source, opts);
  std::vector<EdgeId> edges = edge_h.edges();
  edges.insert(edges.end(), vertex_h.edges().begin(), vertex_h.edges().end());
  return FtBfsStructure(g, source, std::move(edges), {}, edge_h.tree_edges());
}

std::int64_t verify_vertex_structure(const FtBfsStructure& h,
                                     std::int64_t max_failures,
                                     ThreadPool* pool_ptr) {
  const Graph& g = h.graph();
  const Vertex s = h.source();
  ThreadPool& pool = pool_ptr != nullptr ? *pool_ptr : ThreadPool::global();

  std::vector<Vertex> candidates;
  for (Vertex x = 0; x < g.num_vertices(); ++x) {
    if (x != s) candidates.push_back(x);
  }
  if (max_failures >= 0 &&
      static_cast<std::int64_t>(candidates.size()) > max_failures) {
    candidates.resize(static_cast<std::size_t>(max_failures));
  }

  std::atomic<std::int64_t> violations{0};
  pool.parallel_for(candidates.size(), [&](std::size_t i) {
    const Vertex x = candidates[i];
    const std::size_t n = static_cast<std::size_t>(g.num_vertices());
    thread_local std::vector<std::uint8_t> banned;
    if (banned.size() < n) banned.assign(n, 0);
    banned[static_cast<std::size_t>(x)] = 1;
    thread_local BfsScratch in_g, in_h;
    BfsBans g_bans;
    g_bans.banned_vertex = &banned;
    bfs_run(g, s, g_bans, in_g);
    BfsBans h_bans;
    h_bans.banned_vertex = &banned;
    h_bans.banned_edge_mask = &h.complement_mask();
    bfs_run(g, s, h_bans, in_h);
    std::int64_t local = 0;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (v == x) continue;
      if (in_h.dist(v) != in_g.dist(v)) ++local;
    }
    banned[static_cast<std::size_t>(x)] = 0;
    violations.fetch_add(local, std::memory_order_relaxed);
  });
  return violations.load();
}

}  // namespace ftb
