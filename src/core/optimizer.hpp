// optimizer.hpp — instance-level budgeted design (the paper's Discussion).
//
// The universal ε construction is worst-case optimal but "might be far
// from optimal in some instances" (paper §Discussion, which poses two
// optimization problems: minimize b(n) under a reinforcement budget, and
// minimize r(n) under a backup budget). This module answers both with a
// greedy frontier built from the engine's exact per-edge requirements:
//
//   needed(e) = { LastE(P_{v,e}) : ⟨v,e⟩ uncovered }      for e ∈ T0.
//
// Reinforcing a set S ⊆ T0 permits the structure
//   H(S) = T0 ∪ ⋃_{e ∉ S} needed(e),
// which is correct by Observation 2.2, with
//   r = |S|,   b = (|T0| − |S|) + |⋃_{e∉S} needed(e)|.
//
// The greedy repeatedly reinforces the tree edge with the largest marginal
// saving (1 backup slot for the edge itself + every needed last edge whose
// *only* remaining user it is), producing a monotone frontier of designs
// from (r=0, b=baseline) to (r=n−1, b=0). This is the classic lazy-greedy
// for coverage-style objectives — a heuristic, not an optimum, but it
// exposes exactly the instance-vs-universal gap the paper points at
// (bench E11).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/replacement.hpp"
#include "src/core/structure.hpp"

namespace ftb {

/// One design on the greedy frontier.
struct FrontierPoint {
  std::int64_t reinforced = 0;  // r — prefix length of the greedy order
  std::int64_t backup = 0;      // b of the induced structure H(S_r)
};

/// The greedy reinforcement frontier of one (graph, source) instance.
class GreedyFrontier {
 public:
  struct Config {
    std::uint64_t weight_seed = 0x5EED0001ULL;
    ThreadPool* pool = nullptr;
  };

  GreedyFrontier(const Graph& g, Vertex source)
      : GreedyFrontier(g, source, Config()) {}
  GreedyFrontier(const Graph& g, Vertex source, Config cfg);

  /// The frontier: points[r] is the design that reinforces the first r
  /// greedy picks; b is non-increasing in r. points.size() == |T0| + 1.
  const std::vector<FrontierPoint>& points() const { return points_; }

  /// The greedy reinforcement order (tree edges, strongest saving first).
  const std::vector<EdgeId>& order() const { return order_; }

  /// Problem A (paper Discussion): minimize b subject to r ≤ max_reinforced.
  /// Materializes the structure at the frontier prefix min(max_reinforced,
  /// first r where further reinforcement stops helping).
  FtBfsStructure design_max_reinforced(std::int64_t max_reinforced) const;

  /// Problem B: minimize r subject to b ≤ max_backup. Throws CheckError if
  /// even full reinforcement (b = 0) cannot meet a negative budget.
  FtBfsStructure design_max_backup(std::int64_t max_backup) const;

  /// b at a given r (frontier lookup).
  std::int64_t backup_at(std::int64_t r) const {
    FTB_CHECK(r >= 0 && r < static_cast<std::int64_t>(points_.size()));
    return points_[static_cast<std::size_t>(r)].backup;
  }

 private:
  FtBfsStructure materialize(std::int64_t r) const;

  const Graph* g_;
  Vertex source_;
  std::vector<EdgeId> tree_edges_;
  std::vector<EdgeId> order_;              // greedy reinforcement order
  std::vector<FrontierPoint> points_;      // |T0|+1 designs
  // Pair bookkeeping for materialization: per tree edge, its needed last
  // edges (deduplicated).
  std::vector<std::vector<EdgeId>> needed_;   // aligned with tree_edges_
  std::vector<std::int32_t> tree_index_;      // EdgeId -> index or -1
};

}  // namespace ftb
