// vertex_ftbfs.hpp — FT-BFS structures against single VERTEX failures.
//
// The companion setting of ref. [14] (Parter–Peleg ESA'13 treats both edge
// and vertex faults; this paper's model extends the same way): a subgraph
// H ⊆ G such that for every failing vertex x ≠ s,
//
//   dist(s, v, H \ {x}) = dist(s, v, G \ {x})       for every v ∈ V.
//
// The whole edge-fault engine carries over with two policy changes (proofs
// mirror the edge case; see DESIGN.md and fault_model.hpp):
//   * distance tables come from one BFS of G \ {x} per internal tree
//     vertex x, stored for the vertices of subtree(x);
//   * for a pair ⟨v, x⟩ with x = u_i on π(s,v), divergence candidates are
//     u_j with j ≤ i−1 (strictly above the failed vertex), and the same
//     off-path detour table detlen(j) applies verbatim — an uncovered
//     pair's shortest replacement path never re-touches π(s,v) below x
//     (same exchange argument as for edges).
// Those two decisions ARE the VertexFault policy of fault_model.hpp; the
// engine body is shared with the edge model. The structure
// H = T0 ∪ {last edges} is then correct by the vertex analog of
// Observation 2.2, which verify_vertex_structure() re-checks exhaustively
// against literal BFS.
#pragma once

#include "src/core/fault_model.hpp"
#include "src/core/structure.hpp"
#include "src/util/check.hpp"

namespace ftb {

struct CanonicalSp;  // canonical_bfs.hpp

/// Phase-S0 engine for vertex faults (the shared engine under the
/// VertexFault policy).
using VertexReplacementEngine = FaultReplacementEngine<VertexFault>;

struct VertexFtBfsOptions {
  std::uint64_t weight_seed = 0x5EED0001ULL;
  ThreadPool* pool = nullptr;
  /// Run the engine on the naive reference kernels (bench baseline /
  /// differential testing; output is bit-identical either way).
  bool reference_kernel = false;
  /// Fuse multi-source (σ ≥ 2) hop phases into one bit-parallel sweep
  /// (multi_source_bfs_kernel.hpp); off = σ scalar passes, bit-identical.
  bool bit_parallel = true;
  /// Internal fusion seam: adopt these already-computed canonical labels
  /// (see EpsilonOptions::prebuilt_sp). Must outlive the call.
  const CanonicalSp* prebuilt_sp = nullptr;
};

namespace detail {
/// Pipeline implementations the ftb::api facade dispatches to; they also
/// back the legacy wrappers below. Validate through validate.hpp.
FtBfsStructure build_vertex_ftbfs_impl(const Graph& g, Vertex source,
                                       const VertexFtBfsOptions& opts);
/// The "either" union: one structure surviving ONE failure of either kind
/// (edge FT-BFS ∪ vertex FT-BFS), tagged FaultClass::kEither. This is what
/// pre-dual releases called the dual model; the two-simultaneous-failure
/// pipeline lives in dual_fault.hpp.
FtBfsStructure build_either_ftbfs_impl(const Graph& g, Vertex source,
                                       const VertexFtBfsOptions& opts);
}  // namespace detail

/// The O(n^{3/2}) vertex-fault FT-BFS baseline:
/// H = T0 ∪ {LastE(P_{v,x}) : ⟨v,x⟩ uncovered}.
/// Deprecated: use ftb::api::build(graph, BuildSpec) with fault_model =
/// kVertex.
FTB_DEPRECATED("use ftb::api::build(graph, BuildSpec) with kVertex")
FtBfsStructure build_vertex_ftbfs(const Graph& g, Vertex source,
                                  const VertexFtBfsOptions& opts = {});

/// Same, reusing an already-built vertex-fault engine. Not deprecated: this
/// is the S0-reuse composition point internal pipelines build on.
FtBfsStructure build_vertex_ftbfs(const VertexReplacementEngine& engine);

/// Joint structure tolerating one edge OR one vertex failure: the union of
/// build_ftbfs and build_vertex_ftbfs (edge failures reduce to this paper;
/// vertex failures to the module above). Despite the historical name this
/// is the single-failure "either" model (tagged FaultClass::kEither) — the
/// TWO-simultaneous-failure structure is BuildSpec{fault_model = kDual}.
/// Deprecated: use ftb::api::build(graph, BuildSpec) with fault_model =
/// kEither (or kDual for genuine dual failures).
FTB_DEPRECATED("use ftb::api::build(graph, BuildSpec) with kEither")
FtBfsStructure build_dual_ftbfs(const Graph& g, Vertex source,
                                const VertexFtBfsOptions& opts = {});

/// Exhaustive vertex-failure verification: BFS of G\{x} vs H\{x} for every
/// non-source x. Returns the number of (x, v) distance violations.
std::int64_t verify_vertex_structure(const FtBfsStructure& h,
                                     std::int64_t max_failures = -1,
                                     ThreadPool* pool = nullptr);

}  // namespace ftb
