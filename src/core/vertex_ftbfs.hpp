// vertex_ftbfs.hpp — FT-BFS structures against single VERTEX failures.
//
// The companion setting of ref. [14] (Parter–Peleg ESA'13 treats both edge
// and vertex faults; this paper's model extends the same way): a subgraph
// H ⊆ G such that for every failing vertex x ≠ s,
//
//   dist(s, v, H \ {x}) = dist(s, v, G \ {x})       for every v ∈ V.
//
// The whole edge-fault engine carries over with two changes (proofs mirror
// the edge case; see DESIGN.md):
//   * distance tables come from one BFS of G \ {x} per internal tree
//     vertex x, stored for the vertices of subtree(x);
//   * for a pair ⟨v, x⟩ with x = u_i on π(s,v), divergence candidates are
//     u_j with j ≤ i−1 (strictly above the failed vertex), and the same
//     off-path detour table detlen(j) applies verbatim — an uncovered
//     pair's shortest replacement path never re-touches π(s,v) below x
//     (same exchange argument as for edges).
// The structure H = T0 ∪ {last edges} is then correct by the vertex
// analog of Observation 2.2, which verify_vertex_structure() re-checks
// exhaustively against literal BFS.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/structure.hpp"
#include "src/graph/bfs_tree.hpp"
#include "src/util/thread_pool.hpp"

namespace ftb {

/// An uncovered vertex-fault pair ⟨v, x⟩: terminal v, failing vertex
/// x = u_i internal to π(s,v), whose canonical replacement path ends with
/// a new (non-tree) edge.
struct VertexFaultPair {
  Vertex v = kInvalidVertex;        // terminal
  Vertex x = kInvalidVertex;        // failing vertex, internal to π(s,v)
  std::int32_t x_pos = 0;           // x = u_i with i = x_pos (1 ≤ i ≤ k−1)
  std::int32_t rep_dist = 0;        // dist(s, v, G \ {x})
  Vertex diverge = kInvalidVertex;  // u_{j*}, j* ≤ i−1
  std::int32_t diverge_depth = 0;
  EdgeId last_edge = kInvalidEdge;  // new-ending last edge into v
};

/// Phase-S0 analog for vertex faults.
class VertexReplacementEngine {
 public:
  struct Config {
    ThreadPool* pool = nullptr;  // nullptr = global pool
    /// Naive reference kernels instead of the scratch-arena kernels
    /// (bit-identical output; differential testing / bench baseline).
    bool reference_kernel = false;
    /// Distance tables via the subtree-seeded replacement sweep
    /// (dist_sweep.hpp) instead of one full BFS per failing vertex.
    /// Ignored under reference_kernel.
    bool incremental_dist = true;
  };

  explicit VertexReplacementEngine(const BfsTree& tree)
      : VertexReplacementEngine(tree, Config()) {}
  VertexReplacementEngine(const BfsTree& tree, Config cfg);

  const BfsTree& tree() const { return *tree_; }

  /// dist(s, v, G \ {x}) for any vertices v, x (x ≠ s). O(1).
  std::int32_t replacement_dist(Vertex v, Vertex x) const;

  const std::vector<VertexFaultPair>& uncovered_pairs() const {
    return pairs_;
  }

  struct Stats {
    std::int64_t pairs_total = 0;
    std::int64_t pairs_infinite = 0;   // cut vertices disconnect v
    std::int64_t pairs_covered = 0;
    std::int64_t pairs_uncovered = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void build_dist_tables(ThreadPool& pool);
  void build_pairs(ThreadPool& pool);

  /// dist(s,v,G\{x}) for x at position t ∈ [1, depth(v)−1] of π(s,v) lives
  /// at rows_[row_offset_[v] + (t−1)].
  std::int32_t table_dist(Vertex v, std::int32_t x_pos) const {
    return rows_[static_cast<std::size_t>(
        row_offset_[static_cast<std::size_t>(v)] + (x_pos - 1))];
  }

  const BfsTree* tree_;
  Config cfg_;
  std::vector<std::int64_t> row_offset_;
  std::vector<std::int32_t> rows_;
  std::vector<VertexFaultPair> pairs_;
  Stats stats_;
};

struct VertexFtBfsOptions {
  std::uint64_t weight_seed = 0x5EED0001ULL;
  ThreadPool* pool = nullptr;
};

/// The O(n^{3/2}) vertex-fault FT-BFS baseline:
/// H = T0 ∪ {LastE(P_{v,x}) : ⟨v,x⟩ uncovered}.
FtBfsStructure build_vertex_ftbfs(const Graph& g, Vertex source,
                                  const VertexFtBfsOptions& opts = {});

/// Joint structure tolerating one edge OR one vertex failure: the union of
/// build_ftbfs and build_vertex_ftbfs (edge failures reduce to this paper;
/// vertex failures to the module above).
FtBfsStructure build_dual_ftbfs(const Graph& g, Vertex source,
                                const VertexFtBfsOptions& opts = {});

/// Exhaustive vertex-failure verification: BFS of G\{x} vs H\{x} for every
/// non-source x. Returns the number of (x, v) distance violations.
std::int64_t verify_vertex_structure(const FtBfsStructure& h,
                                     std::int64_t max_failures = -1,
                                     ThreadPool* pool = nullptr);

}  // namespace ftb
