// multi_source.hpp — (b, r) FT-MBFS structures: one ε FT-BFS per source
// s ∈ S inside a single subgraph (paper §5, multiple-sources part).
//
// Upper bound: the union of the per-source structures — the construction
// the paper measures its Theorem 5.4 lower bound against. An edge is
// reinforced in the union if *any* source requires it reinforced (a
// reinforced edge never fails, so this only helps the other sources); the
// contract is
//
//   dist(s, v, H \ {e}) = dist(s, v, G \ {e})
//                       ∀ s ∈ S, ∀ v ∈ V, ∀ e ∈ E(G) \ E'.
#pragma once

#include <vector>

#include "src/core/epsilon_ftbfs.hpp"
#include "src/core/structure.hpp"

namespace ftb {

/// A multi-source FT-BFS structure: shared edge set + per-source views.
struct MultiSourceResult {
  std::vector<Vertex> sources;
  /// Union structure; `structure.source()` is sources.front() (the
  /// distance contract is enforced per source by verify_multi_source).
  FtBfsStructure structure;
  /// Per-source construction stats, aligned with `sources`.
  std::vector<EpsilonStats> per_source;
};

/// Builds the union ε FT-MBFS over `sources` (all with the same ε/options).
MultiSourceResult build_epsilon_ftmbfs(const Graph& g,
                                       const std::vector<Vertex>& sources,
                                       const EpsilonOptions& opts = {});

/// Verifies the multi-source contract (per-source verify_structure on the
/// union edge set). Returns the number of violations (0 = correct).
std::int64_t verify_multi_source(const Graph& g, const MultiSourceResult& ms,
                                 std::int64_t max_failures_per_source = -1);

}  // namespace ftb
