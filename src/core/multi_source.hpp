// multi_source.hpp — (b, r) FT-MBFS structures: one ε FT-BFS per source
// s ∈ S inside a single subgraph (paper §5, multiple-sources part).
//
// Upper bound: the union of the per-source structures — the construction
// the paper measures its Theorem 5.4 lower bound against. An edge is
// reinforced in the union if *any* source requires it reinforced (a
// reinforced edge never fails, so this only helps the other sources); the
// contract is
//
//   dist(s, v, H \ {e}) = dist(s, v, G \ {e})
//                       ∀ s ∈ S, ∀ v ∈ V, ∀ e ∈ E(G) \ E'.
#pragma once

#include <vector>

#include "src/core/epsilon_ftbfs.hpp"
#include "src/core/structure.hpp"
#include "src/core/vertex_ftbfs.hpp"

namespace ftb {

/// A multi-source FT-BFS structure: shared edge set + per-source views.
struct MultiSourceResult {
  std::vector<Vertex> sources;
  /// Union structure; `structure.source()` is sources.front() (the
  /// distance contract is enforced per source by verify_multi_source /
  /// verify_vertex_multi_source, per the structure's fault_class()).
  FtBfsStructure structure;
  /// Per-source construction stats, aligned with `sources` (empty for the
  /// vertex-fault union, whose baseline has no ε pipeline).
  std::vector<EpsilonStats> per_source;
};

namespace detail {
/// Union pipeline implementations the ftb::api facade dispatches to; they
/// also back the legacy wrappers below. Validate through validate.hpp.
MultiSourceResult build_epsilon_ftmbfs_impl(const Graph& g,
                                            const std::vector<Vertex>& sources,
                                            const EpsilonOptions& opts);
MultiSourceResult build_vertex_ftmbfs_impl(const Graph& g,
                                           const std::vector<Vertex>& sources,
                                           const VertexFtBfsOptions& opts);
/// The multi-source "either" union: per-source edge ∪ vertex single-fault
/// structures, all merged (§5's union pattern applied to both kinds at
/// once), tagged FaultClass::kEither.
MultiSourceResult build_either_ftmbfs_impl(const Graph& g,
                                           const std::vector<Vertex>& sources,
                                           const VertexFtBfsOptions& opts);
}  // namespace detail

/// Builds the union ε FT-MBFS over `sources` (all with the same ε/options).
/// Deprecated: use ftb::api::build(graph, BuildSpec) with several sources.
FTB_DEPRECATED("use ftb::api::build(graph, BuildSpec) with several sources")
MultiSourceResult build_epsilon_ftmbfs(const Graph& g,
                                       const std::vector<Vertex>& sources,
                                       const EpsilonOptions& opts = {});

/// Builds the union vertex-fault FT-MBFS over `sources` (§5's union
/// pattern applied to the ESA'13 vertex baseline): for every s ∈ S and
/// every failing vertex x ∉ {s}, dist(s,v,H\{x}) = dist(s,v,G\{x}).
/// Deprecated: use ftb::api::build(graph, BuildSpec) with several sources
/// and fault_model = kVertex.
FTB_DEPRECATED("use ftb::api::build(graph, BuildSpec) with several sources")
MultiSourceResult build_vertex_ftmbfs(const Graph& g,
                                      const std::vector<Vertex>& sources,
                                      const VertexFtBfsOptions& opts = {});

/// Verifies the multi-source edge contract (per-source verify_structure on
/// the union edge set). Returns the number of violations (0 = correct).
std::int64_t verify_multi_source(const Graph& g, const MultiSourceResult& ms,
                                 std::int64_t max_failures_per_source = -1);

/// Vertex-fault analog: per-source verify_vertex_structure on the union
/// edge set. Returns the number of violations (0 = correct).
std::int64_t verify_vertex_multi_source(
    const Graph& g, const MultiSourceResult& ms,
    std::int64_t max_failures_per_source = -1);

}  // namespace ftb
