// fault_model.cpp — the single S0 engine body, instantiated once per fault
// model. This is the file the two historical engines (replacement.cpp and
// the engine half of vertex_ftbfs.cpp) collapsed into; the policy hooks in
// fault_model.hpp are the only thing that differs between the models.
#include "src/core/fault_model.hpp"

#include <algorithm>
#include <numeric>
#include <span>

#include "src/core/dist_sweep.hpp"
#include "src/graph/bfs_kernel.hpp"
#include "src/util/timer.hpp"

namespace ftb {

namespace {

/// Per-divergence-candidate detour summary (see build_pairs).
struct DetourCandidate {
  std::int32_t hops = kInfHops;      // detour length from u_j to v
  std::uint64_t wsum = 0;            // tie-break weight of the detour
  Vertex entry = kInvalidVertex;     // last vertex before v
  EdgeId last_edge = kInvalidEdge;   // edge (entry, v)
  Vertex via = kInvalidVertex;       // first off-path vertex (v for direct)
  EdgeId first_edge = kInvalidEdge;  // edge (u_j, via)

  bool valid() const { return hops < kInfHops; }

  /// Lexicographic (hops, wsum, entry, last_edge) order; fully
  /// deterministic even under weight collisions.
  bool better_than(const DetourCandidate& o) const {
    if (hops != o.hops) return hops < o.hops;
    if (wsum != o.wsum) return wsum < o.wsum;
    if (entry != o.entry) return entry < o.entry;
    return last_edge < o.last_edge;
  }
};

}  // namespace

template <class Model>
FaultReplacementEngine<Model>::FaultReplacementEngine(const BfsTree& tree,
                                                      Config cfg)
    : tree_(&tree), cfg_(cfg) {
  // Ambient-failure preconditions: at most one punctured element, and the
  // tree must actually be the canonical tree of that punctured graph —
  // otherwise every table row would answer for a different G'.
  FTB_CHECK_MSG(cfg_.ambient_banned_edge == kInvalidEdge ||
                    cfg_.ambient_banned_vertex == kInvalidVertex,
                "at most one ambient failure per engine");
  FTB_CHECK_MSG(cfg_.ambient_banned_vertex == kInvalidVertex ||
                    !tree.reachable(cfg_.ambient_banned_vertex),
                "ambient vertex is reachable — the tree is not the "
                "punctured graph's canonical tree");
  FTB_CHECK_MSG(cfg_.ambient_banned_edge == kInvalidEdge ||
                    !tree.is_tree_edge(cfg_.ambient_banned_edge),
                "ambient edge is a tree edge — the tree is not the "
                "punctured graph's canonical tree");
  ThreadPool& pool = cfg_.pool != nullptr ? *cfg_.pool : ThreadPool::global();
  Timer t;
  build_dist_tables(pool);
  stats_.seconds_dist_tables = t.seconds();
  t.restart();
  build_pairs(pool);
  stats_.seconds_detours = t.seconds();
}

template <class Model>
void FaultReplacementEngine<Model>::build_dist_tables(ThreadPool& pool) {
  const Graph& g = graph();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());

  // Terminal restriction:
  //  * row_needed — vertices whose table rows the restricted classification
  //    reads: the terminals themselves plus their tree parents (children of
  //    a restricted terminal are restricted too — the span is a subtree
  //    slice). Everyone else gets a ZERO-row allocation, so the table costs
  //    the restriction's volume, not Σ_v depth(v).
  //  * sweep_sites — fault sites with a restricted terminal in their
  //    subtree (the terminals' ancestors-or-selves): the only sweeps whose
  //    rows anyone reads, collected by path walks below.
  std::vector<std::uint8_t> row_needed;
  std::vector<std::uint8_t> site_seen;
  std::vector<Vertex> row_vertices;  // restricted: exactly {v : row_needed}
  std::vector<Vertex> sweep_sites;   // restricted: exactly the needed sites
  if (!cfg_.restrict_terminals.empty()) {
    row_needed.assign(n, 0);
    site_seen.assign(n, 0);
    const auto need_row = [&](Vertex v) {
      if (row_needed[static_cast<std::size_t>(v)]) return;
      row_needed[static_cast<std::size_t>(v)] = 1;
      row_vertices.push_back(v);
    };
    for (const Vertex v : cfg_.restrict_terminals) {
      if (!tree_->reachable(v)) continue;
      need_row(v);
      const Vertex p = tree_->parent(v);
      if (p != kInvalidVertex) need_row(p);
      // Collect the terminal's tree path to the source, stopping at the
      // first vertex a previous walk already claimed: the union of the
      // walks is exactly the ancestor-or-equal closure of the terminals —
      // the only sweep sites whose rows anyone reads — and its total cost
      // is the closure's size, not an O(n) reverse-preorder sweep. That
      // keeps a restricted engine's site scan at the restriction's volume
      // (the pruned dual build constructs two engines per first-failure
      // site, so an O(n) scan here turns the whole build quadratic).
      for (Vertex u = v;
           u != kInvalidVertex && !site_seen[static_cast<std::size_t>(u)];
           u = tree_->parent(u)) {
        site_seen[static_cast<std::size_t>(u)] = 1;
        sweep_sites.push_back(u);
      }
    }
  }

  // Row v holds the failures of the positions [kFirstPos, depth(v)) of
  // π(s,v) — depth(v) rows for edge faults, depth(v)−1 for vertex faults
  // (the source and the terminal itself never seed a row).
  const auto row_count = [&](Vertex v) {
    const std::int32_t d = tree_->depth(v);
    return d >= kInfHops ? 0
                         : std::max<std::int32_t>(0, d - Model::kFirstPos);
  };
  row_offset_.assign(n + 1, 0);
  if (row_needed.empty()) {
    for (std::size_t v = 0; v < n; ++v) {
      row_offset_[v + 1] = row_count(static_cast<Vertex>(v));
    }
  } else {
    // Only the restriction's rows are allocated; everyone else keeps a
    // zero-row slot through the shared prefix-sum below.
    for (const Vertex v : row_vertices) {
      row_offset_[static_cast<std::size_t>(v) + 1] = row_count(v);
    }
  }
  for (std::size_t v = 0; v < n; ++v) row_offset_[v + 1] += row_offset_[v];
  rows_.assign(static_cast<std::size_t>(row_offset_[n]), kInfHops);
  stats_.pairs_total = static_cast<std::int64_t>(rows_.size());

  // One replacement-distance computation per fault site; fill the row slot
  // of every vertex below the fault. Sites are the non-source preorder
  // vertices u: the edge model fails u's parent edge, the vertex model
  // fails u itself (skipping leaves, which have no strict descendants).
  // Rows of different faults write disjoint slots, so the loop is safely
  // parallel. The per-thread scratch arenas make a steady-state iteration
  // allocation-free.
  const std::span<const Vertex> sites = cfg_.restrict_terminals.empty()
                                            ? tree_->preorder()
                                            : std::span<const Vertex>(sweep_sites);
  pool.parallel_for(sites.size(), [&](std::size_t idx) {
    const Vertex u = sites[idx];
    if (u == tree_->source()) return;
    if (!Model::site_active(*tree_, u)) return;
    const FaultId fault = Model::site_fault(*tree_, u);
    const std::int32_t row = tree_->depth(u) - 1;  // == pos − kFirstPos
    const auto affected = tree_->subtree(u);
    auto row_slot = [&](Vertex v) -> std::int32_t& {
      return rows_[static_cast<std::size_t>(
          row_offset_[static_cast<std::size_t>(v)] + row)];
    };
    // Vertices without an allocated row (restriction) must not be written.
    const auto has_row = [&](Vertex v) {
      return row_needed.empty() ||
             row_needed[static_cast<std::size_t>(v)] != 0;
    };
    if (cfg_.reference_kernel) {
      thread_local std::vector<std::uint8_t> mask;
      BfsBans bans;
      Model::ban(fault, bans, mask, n);
      bans.banned_edge2 = cfg_.ambient_banned_edge;
      bans.banned_vertex_one = cfg_.ambient_banned_vertex;
      const BfsResult res = plain_bfs_reference(g, tree_->source(), bans);
      for (const Vertex v : affected) {
        if (Model::kSkipFailedSite && v == u) continue;
        if (!has_row(v)) continue;
        row_slot(v) = res.dist[static_cast<std::size_t>(v)];
      }
      Model::unban(fault, mask);
    } else if (cfg_.incremental_dist) {
      thread_local ReplacementSweepScratch sweep;
      replacement_dist_sweep(*tree_, Model::sweep_banned_edge(fault),
                             Model::sweep_banned_vertex(fault), affected,
                             sweep, cfg_.ambient_banned_edge,
                             cfg_.ambient_banned_vertex);
      for (const Vertex v : affected) {
        if (Model::kSkipFailedSite && v == u) continue;
        if (!has_row(v)) continue;
        row_slot(v) = sweep.dist(v);
      }
    } else {
      thread_local std::vector<std::uint8_t> mask;
      thread_local BfsScratch scratch;
      BfsBans bans;
      Model::ban(fault, bans, mask, n);
      bans.banned_edge2 = cfg_.ambient_banned_edge;
      bans.banned_vertex_one = cfg_.ambient_banned_vertex;
      bfs_run(g, tree_->source(), bans, scratch);
      for (const Vertex v : affected) {
        if (Model::kSkipFailedSite && v == u) continue;
        if (!has_row(v)) continue;
        row_slot(v) = scratch.dist(v);
      }
      Model::unban(fault, mask);
    }
  });
}

template <class Model>
std::int32_t FaultReplacementEngine<Model>::replacement_dist(
    Vertex v, FaultId fault) const {
  Model::validate_query(*tree_, fault);
  if (!tree_->reachable(v)) return kInfHops;
  if (Model::hits_terminal(v, fault)) return kInfHops;
  if (!Model::on_path(*tree_, fault, v)) {
    return tree_->depth(v);  // π(s,v) survives the failure
  }
  return table_dist(v, Model::fault_pos(*tree_, fault));
}

namespace {

/// Shared per-vertex computation result before flattening.
template <class Pair>
struct VertexPairs {
  std::vector<Pair> pairs;             // ordered by fault position
  std::vector<Vertex> detour_storage;  // concatenated detours
  std::int64_t covered = 0;
  std::int64_t infinite = 0;
};

}  // namespace

template <class Model>
void FaultReplacementEngine<Model>::build_pairs(ThreadPool& pool) {
  const Graph& g = graph();
  const EdgeWeights& W = tree_->weights();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());

  // Restricted engines size every per-terminal structure by the
  // restriction, not by n — the pruned dual build constructs two engines
  // per first-failure site, so any O(n) term here multiplies into an
  // O(n²) floor for the whole build.
  const std::span<const Vertex> restricted = cfg_.restrict_terminals;
  const bool restrict_mode = !restricted.empty();
  const std::size_t terminal_count = restrict_mode ? restricted.size() : n;

  std::vector<VertexPairs<Pair>> per_vertex(terminal_count);

  // Pre-classification: covered / infinite tests touch only the phase-1
  // distance tables, so they run before (and usually instead of) the
  // per-vertex off-path BFS — a vertex whose pairs are all covered or
  // disconnecting skips the O(n + m) canonical traversal entirely.
  auto classify = [&](Vertex v, std::int32_t k, VertexPairs<Pair>& out,
                      std::vector<std::int32_t>& uncovered_pos) {
    uncovered_pos.clear();
    for (std::int32_t i = Model::kFirstPos; i < k; ++i) {
      const std::int32_t rd = table_dist(v, i);
      if (rd >= kInfHops) {
        ++out.infinite;
        continue;
      }
      // Covered test: some surviving T0-neighbor u of v with
      // dist_f(u) + 1 == dist_f(v). The parent row exists (and the parent
      // survives) exactly when the fault sits strictly above position k−1
      // — for edges that means the fault is not v's parent edge, for
      // vertices that it is not the parent itself.
      bool is_covered = false;
      const Vertex parent = tree_->parent(v);
      if (parent != kInvalidVertex && i + 1 < k) {
        if (table_dist(parent, i) + 1 == rd) is_covered = true;
      }
      if (!is_covered) {
        for (const Vertex c : tree_->children(v)) {
          if (table_dist(c, i) + 1 == rd) {
            is_covered = true;
            break;
          }
        }
      }
      if (is_covered) {
        ++out.covered;
      } else {
        uncovered_pos.push_back(i);
      }
    }
  };

  // The per-vertex detour body, generic over the canonical-SP view
  // (reference or scratch kernel) so both code paths share one
  // implementation.
  auto process = [&](Vertex v, VertexPairs<Pair>& out,
                     const std::vector<Vertex>& path,
                     const std::vector<std::uint8_t>& banned,
                     const std::vector<std::int32_t>& uncovered_pos,
                     const auto& dv) {
    // detlen(j): cheapest detour from u_j to v through off-path space,
    // excluding the tree edge (u_{k-1}, v) (which can only be proposed when
    // it is itself the failing edge; see DESIGN.md — and which is
    // unreachable anyway for vertex faults, where j ≤ i−1 ≤ k−2).
    // Candidates are only ever consumed at divergence depths ≤
    // max_diverge(deepest uncovered position).
    const std::int32_t jmax = uncovered_pos.back() - Model::kDivergeGap;
    const EdgeId parent_e = tree_->parent_edge(v);
    thread_local std::vector<DetourCandidate> det;
    det.assign(static_cast<std::size_t>(jmax) + 1, DetourCandidate{});
    for (std::int32_t j = 0; j <= jmax; ++j) {
      DetourCandidate& best = det[static_cast<std::size_t>(j)];
      const Vertex uj = path[static_cast<std::size_t>(j)];
      for (const Arc& a : g.neighbors(uj)) {
        // Punctured-graph mode: the ambient element exists in G's CSR but
        // not in G', so its arcs are never detour candidates.
        if (a.edge == cfg_.ambient_banned_edge) continue;
        if (a.to == cfg_.ambient_banned_vertex) continue;
        DetourCandidate cand;
        if (a.to == v) {
          if (a.edge == parent_e) continue;  // never a detour edge
          cand.hops = 1;
          cand.wsum = W[a.edge];
          cand.entry = uj;
          cand.last_edge = a.edge;
          cand.via = v;
          cand.first_edge = a.edge;
        } else {
          if (banned[static_cast<std::size_t>(a.to)]) continue;  // on path
          if (!dv.reachable(a.to)) continue;
          cand.hops = 1 + dv.hops(a.to);
          cand.wsum = W[a.edge] + dv.wsum(a.to);
          // dv is rooted at v, so first_hop(a.to) is the vertex adjacent to
          // v on the canonical v→a.to path — i.e. the entry point of the
          // reversed detour, and its parent edge is the edge into v.
          cand.entry = dv.first_hop(a.to);
          cand.last_edge = dv.parent_edge(cand.entry);
          cand.via = a.to;
          cand.first_edge = a.edge;
        }
        if (!best.valid() || cand.better_than(best)) best = cand;
      }
    }

    // Positions ascending for the deterministic pair order (classification
    // already filtered the covered / disconnecting ones).
    for (const std::int32_t i : uncovered_pos) {
      const std::int32_t rd = table_dist(v, i);

      // New-ending pair: divergence point as close to s as possible.
      std::int32_t jstar = -1;
      for (std::int32_t j = 0; j <= i - Model::kDivergeGap; ++j) {
        const DetourCandidate& c = det[static_cast<std::size_t>(j)];
        if (c.valid() && j + c.hops == rd) {
          jstar = j;
          break;
        }
      }
      FTB_CHECK_MSG(jstar >= 0,
                    "engine invariant violated: no divergence point matches "
                    "replacement distance (v="
                        << v << ", pos=" << i << ", rd=" << rd << ")");
      const DetourCandidate& c = det[static_cast<std::size_t>(jstar)];

      Pair p;
      p.v = v;
      Model::set_fault(p, Model::fault_at(*tree_, path, i), i);
      p.rep_dist = rd;
      p.diverge = path[static_cast<std::size_t>(jstar)];
      p.diverge_depth = jstar;
      p.last_edge = c.last_edge;
      p.detour_len = c.hops;
      FTB_DCHECK(p.last_edge != kInvalidEdge);

      if (cfg_.collect_detours) {
        p.detour_begin = static_cast<std::int64_t>(out.detour_storage.size());
        out.detour_storage.push_back(p.diverge);
        if (c.via == v) {
          out.detour_storage.push_back(v);
        } else {
          for (Vertex w = c.via; w != v; w = dv.parent(w)) {
            out.detour_storage.push_back(w);
          }
          out.detour_storage.push_back(v);
        }
        p.detour_end = static_cast<std::int64_t>(out.detour_storage.size());
        FTB_DCHECK(p.detour_end - p.detour_begin ==
                   static_cast<std::int64_t>(p.detour_len) + 1);
      }
      out.pairs.push_back(p);
    }
  };

  // Terminal restriction: only the listed terminals get classified and
  // (when uncovered) pay an off-path traversal; per_vertex is indexed by
  // position in the restriction (or by vertex id when unrestricted) and
  // the flatten below re-establishes ascending vertex id.
  pool.parallel_for(terminal_count, [&](std::size_t ti) {
    const Vertex v = restrict_mode ? restricted[ti] : static_cast<Vertex>(ti);
    const std::int32_t k = tree_->depth(v);
    // No failing positions: source/too-shallow or unreachable terminals.
    if (k <= Model::kFirstPos || k >= kInfHops) return;
    VertexPairs<Pair>& out = per_vertex[ti];

    // π(s,v) = u_0..u_k into a reusable buffer.
    thread_local std::vector<Vertex> path;
    path.clear();
    for (Vertex u = v; u != kInvalidVertex; u = tree_->parent(u)) {
      path.push_back(u);
    }
    std::reverse(path.begin(), path.end());

    thread_local std::vector<std::int32_t> uncovered_pos;
    if (!cfg_.reference_kernel) {
      classify(v, k, out, uncovered_pos);
      if (uncovered_pos.empty()) return;  // no off-path BFS needed
    }

    // Off-path graph H_v = G \ (V(π(s,v)) \ {v}). The mask is reused
    // across calls; only the O(k) touched entries are reset below.
    thread_local std::vector<std::uint8_t> banned;
    if (banned.size() < n) banned.assign(n, 0);
    for (std::int32_t j = 0; j < k; ++j) {
      banned[static_cast<std::size_t>(path[static_cast<std::size_t>(j)])] = 1;
    }
    BfsBans bans;
    bans.banned_vertex = &banned;
    bans.banned_edge2 = cfg_.ambient_banned_edge;
    bans.banned_vertex_one = cfg_.ambient_banned_vertex;

    if (cfg_.reference_kernel) {
      // Seed pipeline order: one unconditional off-path BFS per vertex.
      const CanonicalSp dv = canonical_sp(g, W, v, bans);
      classify(v, k, out, uncovered_pos);
      if (!uncovered_pos.empty()) {
        process(v, out, path, banned, uncovered_pos, CanonicalSpRefView{&dv});
      }
    } else {
      // Detour labels beyond max_rd − 1 hops can never match a failing
      // fault's replacement distance, so the off-path traversal is capped
      // there (see canonical_sp_run).
      std::int32_t max_rd = 0;
      for (const std::int32_t i : uncovered_pos) {
        max_rd = std::max(max_rd, table_dist(v, i));
      }
      thread_local CanonicalSpScratch sps;
      canonical_sp_run(g, W, v, bans, sps, max_rd - 1);
      process(v, out, path, banned, uncovered_pos,
              CanonicalSpScratchView{&sps});
    }

    // Reset the thread-local mask for the next vertex on this thread.
    for (std::int32_t j = 0; j < k; ++j) {
      banned[static_cast<std::size_t>(path[static_cast<std::size_t>(j)])] = 0;
    }
  });

  // Deterministic flatten: vertices in ascending id order, pairs already
  // position-ordered within each vertex. A restricted engine visits only
  // its terminals (sorted into id order here — the restriction span is a
  // preorder slice, not id-sorted); the per-vertex CSR then costs one
  // prefix-sum over plain ints instead of an O(n) vector-of-vectors walk.
  std::vector<std::uint32_t> flatten_order;
  if (restrict_mode) {
    flatten_order.resize(terminal_count);
    std::iota(flatten_order.begin(), flatten_order.end(), 0u);
    std::sort(flatten_order.begin(), flatten_order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return restricted[a] < restricted[b];
              });
  }
  pairs_.clear();
  pair_ids_.clear();
  detour_arena_.clear();
  pairs_offset_.assign(n + 1, 0);
  for (std::size_t t = 0; t < terminal_count; ++t) {
    const std::size_t slot = restrict_mode ? flatten_order[t] : t;
    const std::size_t vi = static_cast<std::size_t>(
        restrict_mode ? restricted[slot] : static_cast<Vertex>(t));
    const VertexPairs<Pair>& src = per_vertex[slot];
    stats_.pairs_covered += src.covered;
    stats_.pairs_infinite += src.infinite;
    const std::int64_t arena_base =
        static_cast<std::int64_t>(detour_arena_.size());
    for (Pair p : src.pairs) {
      p.detour_begin += arena_base;
      p.detour_end += arena_base;
      pair_ids_.push_back(static_cast<std::int32_t>(pairs_.size()));
      pairs_.push_back(p);
    }
    detour_arena_.insert(detour_arena_.end(), src.detour_storage.begin(),
                         src.detour_storage.end());
    pairs_offset_[vi + 1] = static_cast<std::int64_t>(src.pairs.size());
  }
  for (std::size_t vi = 0; vi < n; ++vi) {
    pairs_offset_[vi + 1] += pairs_offset_[vi];
  }
  stats_.pairs_uncovered = static_cast<std::int64_t>(pairs_.size());
  stats_.detour_vertices = static_cast<std::int64_t>(detour_arena_.size());
}

template <class Model>
std::span<const std::int32_t> FaultReplacementEngine<Model>::uncovered_of(
    Vertex v) const {
  const std::size_t vi = static_cast<std::size_t>(v);
  return {pair_ids_.data() + pairs_offset_[vi],
          pair_ids_.data() + pairs_offset_[vi + 1]};
}

template <class Model>
std::span<const Vertex> FaultReplacementEngine<Model>::detour(
    const Pair& p) const {
  FTB_CHECK_MSG(cfg_.collect_detours, "detours were not collected");
  return {detour_arena_.data() + p.detour_begin,
          detour_arena_.data() + p.detour_end};
}

template <class Model>
bool FaultReplacementEngine<Model>::covered(Vertex v, FaultId fault) const {
  FTB_CHECK(tree_->reachable(v) && !Model::hits_terminal(v, fault) &&
            Model::on_path(*tree_, fault, v));
  const std::int32_t pos = Model::fault_pos(*tree_, fault);
  const std::int32_t rd = table_dist(v, pos);
  FTB_CHECK_MSG(rd < kInfHops, "covered() on a disconnecting failure");
  const std::int32_t k = tree_->depth(v);
  const Vertex parent = tree_->parent(v);
  if (parent != kInvalidVertex && pos + 1 < k) {
    if (table_dist(parent, pos) + 1 == rd) return true;
  }
  for (const Vertex c : tree_->children(v)) {
    if (table_dist(c, pos) + 1 == rd) return true;
  }
  return false;
}

template <class Model>
std::vector<Vertex> FaultReplacementEngine<Model>::replacement_path(
    Vertex v, FaultId fault) const {
  Model::validate_query(*tree_, fault);
  FTB_CHECK(tree_->reachable(v) && !Model::hits_terminal(v, fault));
  if (!Model::on_path(*tree_, fault, v)) {
    return tree_->path_from_source(v);  // π(s,v) is itself a replacement path
  }
  const std::int32_t rd = replacement_dist(v, fault);
  FTB_CHECK_MSG(rd < kInfHops, "no replacement path: failure disconnects v");

  // Uncovered pair? Use the stored canonical metadata.
  for (const std::int32_t id : uncovered_of(v)) {
    const Pair& p = pairs_[static_cast<std::size_t>(id)];
    if (Model::fault_of(p) != fault) continue;
    std::vector<Vertex> out = tree_->path_from_source(p.diverge);
    const auto det = detour(p);
    out.insert(out.end(), det.begin() + 1, det.end());
    return out;
  }

  // Covered pair: canonical shortest path in G'(v) minus the fault, where
  // G'(v) keeps only v's tree edges among v's incident edges.
  const Graph& g = graph();
  std::vector<std::uint8_t> edge_mask(static_cast<std::size_t>(g.num_edges()),
                                      0);
  for (const Arc& a : g.neighbors(v)) {
    const bool tree_incident =
        a.edge == tree_->parent_edge(v) ||
        (tree_->is_tree_edge(a.edge) && tree_->lower_endpoint(a.edge) == a.to);
    if (!tree_incident) edge_mask[static_cast<std::size_t>(a.edge)] = 1;
  }
  BfsBans bans;
  bans.banned_edge_mask = &edge_mask;
  std::vector<std::uint8_t> vertex_mask;
  Model::ban(fault, bans, vertex_mask,
             static_cast<std::size_t>(g.num_vertices()));
  bans.banned_edge2 = cfg_.ambient_banned_edge;
  bans.banned_vertex_one = cfg_.ambient_banned_vertex;
  const CanonicalSp sp =
      canonical_sp(g, tree_->weights(), tree_->source(), bans);
  FTB_CHECK_MSG(sp.reachable(v) && sp.hops[static_cast<std::size_t>(v)] == rd,
                "covered pair reconstruction does not match the G'(v) test");
  return sp.path_from_source(v);
}

template class FaultReplacementEngine<EdgeFault>;
template class FaultReplacementEngine<VertexFault>;

}  // namespace ftb
