#include "src/core/epsilon_ftbfs.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/core/ftbfs.hpp"
#include "src/core/interference.hpp"
#include "src/core/replacement.hpp"
#include "src/core/validate.hpp"
#include "src/graph/heavy_path.hpp"
#include "src/graph/lca.hpp"
#include "src/util/timer.hpp"

namespace ftb {

namespace {

constexpr std::int32_t kMaxRounds = 64;

/// Tracks H's edge set during construction (tree edges preloaded).
class EdgeAccumulator {
 public:
  EdgeAccumulator(const Graph& g, const std::vector<EdgeId>& tree_edges)
      : in_h_(static_cast<std::size_t>(g.num_edges()), 0) {
    for (const EdgeId e : tree_edges) {
      in_h_[static_cast<std::size_t>(e)] = 1;
      edges_.push_back(e);
    }
  }

  /// Returns true if the edge was new.
  bool add(EdgeId e) {
    auto& flag = in_h_[static_cast<std::size_t>(e)];
    if (flag) return false;
    flag = 1;
    edges_.push_back(e);
    return true;
  }

  bool contains(EdgeId e) const {
    return in_h_[static_cast<std::size_t>(e)] != 0;
  }

  std::vector<EdgeId> take_edges() { return std::move(edges_); }

 private:
  std::vector<std::uint8_t> in_h_;
  std::vector<EdgeId> edges_;
};

/// A (∼)-set: pair ids, ascending (so grouped by terminal, positions
/// ascending within each terminal — the engine's canonical order).
using PairSet = std::vector<std::int32_t>;

/// Iterates over the maximal runs of equal-terminal pairs inside a sorted
/// pair-id set; calls fn(v, span_of_ids).
template <typename Fn>
void for_each_terminal_run(const PairSet& set,
                           const std::vector<UncoveredPair>& pairs, Fn&& fn) {
  std::size_t i = 0;
  while (i < set.size()) {
    std::size_t j = i;
    const Vertex v = pairs[static_cast<std::size_t>(set[i])].v;
    while (j < set.size() && pairs[static_cast<std::size_t>(set[j])].v == v) {
      ++j;
    }
    fn(v, std::span<const std::int32_t>(set.data() + i, j - i));
    i = j;
  }
}

/// Exponential-halving decomposition of a length-L source path into edge-
/// position boundaries (Sub-Phase S2.2): segment j covers positions
/// [b[j-1], b[j]), with |π_j| ≈ L/2^j and the O(1) tail merged into the
/// last segment. Returns the boundary vector b (b.front()=0, b.back()=L).
std::vector<std::int32_t> halving_boundaries(std::int32_t L) {
  std::vector<std::int32_t> b{0};
  if (L <= 0) return b;
  const std::int32_t k = std::max<std::int32_t>(
      1, static_cast<std::int32_t>(std::floor(std::log2(static_cast<double>(L)))));
  double acc = 0;
  for (std::int32_t j = 1; j <= k; ++j) {
    acc += static_cast<double>(L) / std::pow(2.0, j);
    const std::int32_t pos =
        std::min<std::int32_t>(L, static_cast<std::int32_t>(std::ceil(acc)));
    if (pos > b.back()) b.push_back(pos);
  }
  if (b.back() != L) b.back() = L;  // merge the tail into the last segment
  return b;
}

}  // namespace

double theorem_backup_bound(std::int64_t n, double eps) {
  const double nd = static_cast<double>(n);
  const double pow_branch =
      (eps > 0) ? (1.0 / eps) * std::pow(nd, 1.0 + eps) * std::log2(nd)
                : nd;  // ε = 0: the tree alone
  const double sqrt_branch = std::pow(nd, 1.5);
  return std::min(pow_branch, sqrt_branch);
}

double theorem_reinforce_bound(std::int64_t n, double eps) {
  const double nd = static_cast<double>(n);
  if (eps <= 0) return nd;
  if (eps >= 0.5) return 0;  // baseline branch needs no reinforcement
  return (1.0 / eps) * std::pow(nd, 1.0 - eps) * std::log2(nd);
}

EpsilonResult detail::build_epsilon_ftbfs_impl(const Graph& g, Vertex source,
                                               const EpsilonOptions& opts) {
  detail::check_epsilon(opts.eps);
  detail::check_source(g, source);
  Timer total_timer;
  EpsilonStats st;
  st.n = g.num_vertices();
  st.m = g.num_edges();
  st.eps = opts.eps;

  const EdgeWeights weights = EdgeWeights::uniform_random(g, opts.weight_seed);
  // A multi-source caller may have fused this source's canonical hop phase
  // into a bit-parallel sweep already; adopting those labels is
  // bit-identical to the scalar canonical BFS.
  const BfsTree tree = opts.prebuilt_sp != nullptr
                           ? BfsTree(g, weights, source,
                                     CanonicalSp(*opts.prebuilt_sp))
                           : BfsTree(g, weights, source);

  // ε = 0: reinforce the whole tree, no backup at all.
  if (opts.eps == 0.0) {
    FtBfsStructure h(g, source, tree.tree_edges(), tree.tree_edges(),
                     tree.tree_edges());
    st.structure_edges = h.num_edges();
    st.backup = h.num_backup();
    st.reinforced = h.num_reinforced();
    st.seconds_total = total_timer.seconds();
    return EpsilonResult{std::move(h), st};
  }

  // ε ≥ 1/2: Theorem 3.1 takes the ESA'13 n^{3/2} branch.
  if (opts.eps >= 0.5 && opts.baseline_for_large_eps) {
    ReplacementPathEngine::Config cfg;
    cfg.collect_detours = false;
    cfg.pool = opts.pool;
    cfg.reference_kernel = opts.reference_kernel;
    Timer t;
    const ReplacementPathEngine engine(tree, cfg);
    st.seconds_engine = t.seconds();
    st.pairs_total = engine.stats().pairs_total;
    st.pairs_covered = engine.stats().pairs_covered;
    st.pairs_uncovered = engine.stats().pairs_uncovered;
    st.used_baseline = true;
    FtBfsStructure h = build_ftbfs(engine);
    st.structure_edges = h.num_edges();
    st.backup = h.num_backup();
    st.reinforced = h.num_reinforced();
    st.seconds_total = total_timer.seconds();
    return EpsilonResult{std::move(h), st};
  }

  // ---------------------------------------------------------------- S0 --
  Timer phase_timer;
  ReplacementPathEngine::Config cfg;
  cfg.collect_detours = true;
  cfg.pool = opts.pool;
  cfg.reference_kernel = opts.reference_kernel;
  const ReplacementPathEngine engine(tree, cfg);
  st.seconds_engine = phase_timer.seconds();
  st.pairs_total = engine.stats().pairs_total;
  st.pairs_covered = engine.stats().pairs_covered;
  st.pairs_uncovered = engine.stats().pairs_uncovered;

  phase_timer.restart();
  const LcaIndex lca(tree);
  const InterferenceIndex interference(engine, lca);
  st.seconds_interference = phase_timer.seconds();

  const auto& pairs = engine.uncovered_pairs();
  const std::size_t np = pairs.size();

  const std::int64_t threshold = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(std::pow(static_cast<double>(st.n), opts.eps) *
                       opts.threshold_scale)));
  st.threshold = threshold;
  const std::int32_t K =
      opts.k_rounds_override > 0
          ? opts.k_rounds_override
          : std::min<std::int32_t>(
                kMaxRounds,
                static_cast<std::int32_t>(std::ceil(1.0 / opts.eps)) + 2);
  st.k_rounds = K;

  EdgeAccumulator H(g, tree.tree_edges());

  // ---------------------------------------------------------------- S1 --
  phase_timer.restart();
  PairSet P = interference.i1();
  std::vector<PairSet> csets;
  csets.push_back(interference.i2());
  st.i1_size = static_cast<std::int64_t>(P.size());
  st.i2_size = static_cast<std::int64_t>(csets[0].size());

  std::vector<std::uint8_t> in_p(np, 0);
  for (const std::int32_t p : P) in_p[static_cast<std::size_t>(p)] = 1;

  for (std::int32_t round = 1; round <= K && !P.empty(); ++round) {
    // Type A: π-intersects some (≁)-interfering pair inside P (Eq. (2)).
    std::vector<std::uint8_t> is_a(np, 0);
    for (const std::int32_t p : P) {
      const auto nbrs = interference.neighbors(p);
      const auto flags = interference.pi_intersects_flags(p);
      for (std::size_t q = 0; q < nbrs.size(); ++q) {
        if (in_p[static_cast<std::size_t>(nbrs[q])] && flags[q]) {
          is_a[static_cast<std::size_t>(p)] = 1;
          break;
        }
      }
    }
    // Type B: not A, but (≁)-interferes with a non-A pair inside P (Eq. (3)).
    std::vector<std::uint8_t> is_b(np, 0);
    for (const std::int32_t p : P) {
      if (is_a[static_cast<std::size_t>(p)]) continue;
      for (const std::int32_t q : interference.neighbors(p)) {
        if (in_p[static_cast<std::size_t>(q)] &&
            !is_a[static_cast<std::size_t>(q)]) {
          is_b[static_cast<std::size_t>(p)] = 1;
          break;
        }
      }
    }
    // Type C → deferred to Phase S2 as a (∼)-set (Observation 4.11).
    PairSet c_set;
    for (const std::int32_t p : P) {
      if (!is_a[static_cast<std::size_t>(p)] &&
          !is_b[static_cast<std::size_t>(p)]) {
        c_set.push_back(p);
      }
    }
    if (!c_set.empty()) csets.push_back(std::move(c_set));

    // Per vertex and type J ∈ {A,B}: walk v's type-J pairs by increasing
    // distance of the failing edge from v (deepest edges first) and add
    // last edges until ⌈n^ε⌉ distinct ones were seen.
    for (const auto* type_mask : {&is_a, &is_b}) {
      PairSet typed;
      for (const std::int32_t p : P) {
        if ((*type_mask)[static_cast<std::size_t>(p)]) typed.push_back(p);
      }
      for_each_terminal_run(
          typed, pairs, [&](Vertex, std::span<const std::int32_t> run) {
            std::unordered_set<EdgeId> distinct;
            // run is position-ascending; walk it deepest-first.
            for (auto it = run.rbegin(); it != run.rend(); ++it) {
              const EdgeId le =
                  pairs[static_cast<std::size_t>(*it)].last_edge;
              if (distinct.insert(le).second) {
                if (H.add(le)) ++st.s1_added_edges;
                if (static_cast<std::int64_t>(distinct.size()) >= threshold) {
                  break;
                }
              }
            }
          });
    }

    // P_{i+1} = type-A/B pairs whose last edge is still missing from H.
    PairSet next;
    for (const std::int32_t p : P) {
      const bool ab = is_a[static_cast<std::size_t>(p)] ||
                      is_b[static_cast<std::size_t>(p)];
      if (ab && !H.contains(pairs[static_cast<std::size_t>(p)].last_edge)) {
        next.push_back(p);
      }
      in_p[static_cast<std::size_t>(p)] = 0;
    }
    for (const std::int32_t p : next) in_p[static_cast<std::size_t>(p)] = 1;
    P = std::move(next);
  }
  // Lemma 4.10 predicts emptiness; leftovers (if any) merely stay
  // uncovered and surface as extra reinforcement below.
  st.s1_leftover_pairs = static_cast<std::int64_t>(P.size());
  st.num_csets = static_cast<std::int64_t>(csets.size());
  st.seconds_s1 = phase_timer.seconds();

  // ---------------------------------------------------------------- S2 --
  phase_timer.restart();
  const HeavyPathDecomposition hld(tree);

  // S2.1: last edges protecting the glue edges E−(TD), for every terminal.
  for (const UncoveredPair& p : pairs) {
    if (!hld.is_path_edge(p.e)) {
      if (H.add(p.last_edge)) ++st.s2_glue_added;
    }
  }

  // S2.2 + S2.3, per (∼)-set and terminal.
  for (const PairSet& cset : csets) {
    for_each_terminal_run(
        cset, pairs, [&](Vertex v, std::span<const std::int32_t> run) {
          const std::int32_t L = tree.depth(v);
          const std::vector<std::int32_t> bounds = halving_boundaries(L);
          const std::size_t num_segs = bounds.size() - 1;

          // Positions of the run's pairs are ascending; map to segments.
          auto seg_of = [&](std::int32_t pos) -> std::size_t {
            const auto it =
                std::upper_bound(bounds.begin(), bounds.end(), pos);
            return static_cast<std::size_t>(it - bounds.begin()) - 1;
          };

          // --- S2.2: light-segment flush + per-segment first pairs. -----
          std::size_t run_at = 0;
          for (std::size_t seg = 0; seg < num_segs; ++seg) {
            [[maybe_unused]] const std::int32_t lo = bounds[seg];
            const std::int32_t hi = bounds[seg + 1];
            const std::size_t seg_begin = run_at;
            std::unordered_set<EdgeId> distinct;
            while (run_at < run.size()) {
              const UncoveredPair& p =
                  pairs[static_cast<std::size_t>(run[run_at])];
              if (p.edge_pos >= hi) break;
              FTB_DCHECK(p.edge_pos >= lo);
              distinct.insert(p.last_edge);
              ++run_at;
            }
            if (seg_begin == run_at) continue;  // no pairs in this segment
            // e*_j: the pair protecting the upmost edge of the segment.
            if (H.add(pairs[static_cast<std::size_t>(run[seg_begin])]
                          .last_edge)) {
              ++st.s2_added_edges;
            }
            const bool light =
                static_cast<std::int64_t>(distinct.size()) < threshold;
            if (light && !opts.disable_s2_light_flush) {
              for (std::size_t i = seg_begin; i < run_at; ++i) {
                if (H.add(pairs[static_cast<std::size_t>(run[i])].last_edge)) {
                  ++st.s2_added_edges;
                }
              }
            }
          }

          // --- S2.3: tree-decomposition crossings. ----------------------
          if (opts.disable_s2_crossings) return;
          for (const auto& cr : hld.crossings(v)) {
            const HeavyPath& psi = hld.path(cr.path_id);
            const std::int32_t a = tree.depth(psi.vertices.front());
            const std::int32_t b = a + cr.deepest_pos;  // positions [a, b)
            if (a >= b) continue;  // intersection has no edges

            // Pairs of v (in this cset) with edge position in [a, b).
            const auto first = std::lower_bound(
                run.begin(), run.end(), a,
                [&](std::int32_t id, std::int32_t val) {
                  return pairs[static_cast<std::size_t>(id)].edge_pos < val;
                });
            const auto last = std::lower_bound(
                run.begin(), run.end(), b,
                [&](std::int32_t id, std::int32_t val) {
                  return pairs[static_cast<std::size_t>(id)].edge_pos < val;
                });
            if (first == last) continue;

            // e*: upmost protected edge of ψ ∩ π(s,v).
            if (H.add(pairs[static_cast<std::size_t>(*first)].last_edge)) {
              ++st.s2_added_edges;
            }

            // π_U / π_L: the first / last halving segment that meets the
            // crossing without being contained in it.
            const std::size_t seg_a = seg_of(a);
            const std::size_t seg_b = seg_of(b - 1);
            for (const std::size_t seg : {seg_a, seg_b}) {
              const std::int32_t lo = bounds[seg], hi = bounds[seg + 1];
              if (lo >= a && hi <= b) continue;  // π_j ⊆ ψ — skip
              const std::int32_t olo = std::max(lo, a);
              const std::int32_t ohi = std::min(hi, b);
              if (olo >= ohi) continue;
              const auto ofirst = std::lower_bound(
                  run.begin(), run.end(), olo,
                  [&](std::int32_t id, std::int32_t val) {
                    return pairs[static_cast<std::size_t>(id)].edge_pos < val;
                  });
              const auto olast = std::lower_bound(
                  run.begin(), run.end(), ohi,
                  [&](std::int32_t id, std::int32_t val) {
                    return pairs[static_cast<std::size_t>(id)].edge_pos < val;
                  });
              if (ofirst == olast) continue;
              // e*_U / e*_L.
              if (H.add(pairs[static_cast<std::size_t>(*ofirst)].last_edge)) {
                ++st.s2_added_edges;
              }
              std::unordered_set<EdgeId> distinct;
              for (auto it = ofirst; it != olast; ++it) {
                distinct.insert(pairs[static_cast<std::size_t>(*it)].last_edge);
              }
              if (static_cast<std::int64_t>(distinct.size()) <= threshold) {
                for (auto it = ofirst; it != olast; ++it) {
                  if (H.add(
                          pairs[static_cast<std::size_t>(*it)].last_edge)) {
                    ++st.s2_added_edges;
                  }
                }
              }
            }
          }
        });
  }
  st.seconds_s2 = phase_timer.seconds();

  // ----------------------------------------------------------- finalize --
  // Reinforce every tree edge that some terminal still cannot re-reach
  // through a stored last edge. Observation 2.2 makes everything else
  // provably protected.
  std::vector<std::uint8_t> unprotected(static_cast<std::size_t>(g.num_edges()),
                                        0);
  for (const UncoveredPair& p : pairs) {
    if (!H.contains(p.last_edge)) {
      unprotected[static_cast<std::size_t>(p.e)] = 1;
    }
  }
  std::vector<EdgeId> reinforced;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (unprotected[static_cast<std::size_t>(e)]) reinforced.push_back(e);
  }

  FtBfsStructure h(g, source, H.take_edges(), std::move(reinforced),
                   tree.tree_edges());
  st.structure_edges = h.num_edges();
  st.backup = h.num_backup();
  st.reinforced = h.num_reinforced();
  st.seconds_total = total_timer.seconds();
  return EpsilonResult{std::move(h), st};
}

EpsilonResult build_epsilon_ftbfs(const Graph& g, Vertex source,
                                  const EpsilonOptions& opts) {
  return detail::build_epsilon_ftbfs_impl(g, source, opts);
}

}  // namespace ftb
