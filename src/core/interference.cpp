#include "src/core/interference.hpp"

#include <algorithm>
#include <unordered_map>

#include "src/util/timer.hpp"

namespace ftb {

InterferenceIndex::InterferenceIndex(const ReplacementPathEngine& engine,
                                     const LcaIndex& lca, Config cfg)
    : engine_(&engine), lca_(&lca) {
  Timer timer;
  const auto& pairs = engine.uncovered_pairs();
  const std::size_t np = pairs.size();
  const BfsTree& tree = engine.tree();

  // Inverted index: internal detour vertex → pair ids. Internal = the
  // detour minus its two endpoints (diverge point and terminal), which is
  // exactly the exclusion set {d(P), d(P'), v, t} of Eq. (1).
  std::unordered_map<Vertex, std::vector<std::int32_t>> buckets;
  buckets.reserve(np * 2);
  for (std::size_t p = 0; p < np; ++p) {
    const auto det = engine.detour(pairs[p]);
    for (std::size_t z = 1; z + 1 < det.size(); ++z) {
      buckets[det[z]].push_back(static_cast<std::int32_t>(p));
    }
  }
  stats_.index_vertices = static_cast<std::int64_t>(buckets.size());

  // Co-occurrence pass. Different-terminal + (≁)-relation filters applied
  // inline; duplicates (pairs sharing several vertices) removed afterwards.
  std::vector<std::vector<std::int32_t>> adj(np);
  for (auto& [z, bucket] : buckets) {
    if (static_cast<std::int32_t>(bucket.size()) > cfg.max_bucket) {
      ++stats_.truncated_buckets;
      bucket.resize(static_cast<std::size_t>(cfg.max_bucket));
    }
    for (std::size_t a = 0; a < bucket.size(); ++a) {
      const std::int32_t pa = bucket[a];
      const UncoveredPair& A = pairs[static_cast<std::size_t>(pa)];
      for (std::size_t b = a + 1; b < bucket.size(); ++b) {
        const std::int32_t pb = bucket[b];
        const UncoveredPair& B = pairs[static_cast<std::size_t>(pb)];
        if (A.v == B.v) continue;                    // same terminal
        if (tree.edges_related(A.e, B.e)) continue;  // e ∼ e'
        adj[static_cast<std::size_t>(pa)].push_back(pb);
        adj[static_cast<std::size_t>(pb)].push_back(pa);
      }
    }
  }

  adj_offset_.assign(np + 1, 0);
  for (std::size_t p = 0; p < np; ++p) {
    auto& v = adj[p];
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    adj_offset_[p + 1] = adj_offset_[p] + static_cast<std::int64_t>(v.size());
  }
  adj_.resize(static_cast<std::size_t>(adj_offset_[np]));
  pi_flags_.resize(adj_.size());
  for (std::size_t p = 0; p < np; ++p) {
    std::int64_t at = adj_offset_[p];
    for (const std::int32_t q : adj[p]) {
      adj_[static_cast<std::size_t>(at)] = q;
      pi_flags_[static_cast<std::size_t>(at)] =
          pi_intersects(static_cast<std::int32_t>(p), q) ? 1 : 0;
      ++at;
    }
  }
  stats_.adjacency_entries = static_cast<std::int64_t>(adj_.size());
  stats_.seconds_build = timer.seconds();
}

std::span<const std::int32_t> InterferenceIndex::neighbors(
    std::int32_t pair_id) const {
  const std::size_t p = static_cast<std::size_t>(pair_id);
  return {adj_.data() + adj_offset_[p], adj_.data() + adj_offset_[p + 1]};
}

std::span<const std::uint8_t> InterferenceIndex::pi_intersects_flags(
    std::int32_t pair_id) const {
  const std::size_t p = static_cast<std::size_t>(pair_id);
  return {pi_flags_.data() + adj_offset_[p],
          pi_flags_.data() + adj_offset_[p + 1]};
}

bool InterferenceIndex::pi_intersects(std::int32_t p, std::int32_t q) const {
  const auto& pairs = engine_->uncovered_pairs();
  const UncoveredPair& P = pairs[static_cast<std::size_t>(p)];
  const UncoveredPair& Q = pairs[static_cast<std::size_t>(q)];
  const BfsTree& tree = engine_->tree();
  const std::int32_t lca_depth = lca_->lca_depth(P.v, Q.v);
  // Detour endpoints can never satisfy the test (d(P) is an ancestor of
  // both LCA candidates; v deeper only when LCA == v), so scanning the full
  // detour is equivalent and simpler.
  for (const Vertex z : engine_->detour(P)) {
    if (tree.depth(z) > lca_depth && tree.is_ancestor_or_equal(z, Q.v)) {
      return true;
    }
  }
  return false;
}

std::vector<std::int32_t> InterferenceIndex::i1() const {
  std::vector<std::int32_t> out;
  for (std::int64_t p = 0; p + 1 < static_cast<std::int64_t>(adj_offset_.size());
       ++p) {
    if (adj_offset_[static_cast<std::size_t>(p)] !=
        adj_offset_[static_cast<std::size_t>(p + 1)]) {
      out.push_back(static_cast<std::int32_t>(p));
    }
  }
  return out;
}

std::vector<std::int32_t> InterferenceIndex::i2() const {
  std::vector<std::int32_t> out;
  for (std::int64_t p = 0; p + 1 < static_cast<std::int64_t>(adj_offset_.size());
       ++p) {
    if (adj_offset_[static_cast<std::size_t>(p)] ==
        adj_offset_[static_cast<std::size_t>(p + 1)]) {
      out.push_back(static_cast<std::int32_t>(p));
    }
  }
  return out;
}

}  // namespace ftb
