// verifier.hpp — exhaustive ground-truth verification of FT-BFS structures.
//
// Checks Definition 2.1 directly:
//   dist(s, v, H \ {e}) = dist(s, v, G \ {e})  ∀ v, ∀ e ∈ E(G) \ E'.
//
// Verification plan (see DESIGN.md §5):
//   0. H ⊆ G and T0 ⊆ H by construction (FtBfsStructure enforces both).
//   1. failure-free check: dist(s,·,H) == dist(s,·,G) (H spans a BFS tree).
//   2. tree failures: for every tree edge e ∉ E', BFS G\{e} and H\{e},
//      compare all n distances. These are the only failures that can
//      change distances *provided* step 1 passed and T0 ⊆ H; the full mode
//      nevertheless re-checks every non-tree edge of G for belt and braces.
//
// Cost: O(F·(n+m)) with F = #checked failures, parallel over failures.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/structure.hpp"
#include "src/util/thread_pool.hpp"

namespace ftb {

struct VerifyOptions {
  /// Also check every non-tree edge of G (provably redundant once the
  /// failure-free check passes; kept for paranoid test modes).
  bool check_nontree_failures = false;
  /// Cap on the number of checked failures (-1 = no cap). Failures are
  /// checked in edge-id order, so a cap keeps runs deterministic.
  std::int64_t max_failures = -1;
  ThreadPool* pool = nullptr;  // nullptr = global pool
};

/// One observed contract violation.
struct VerifyViolation {
  EdgeId failed_edge = kInvalidEdge;  // kInvalidEdge = failure-free check
  Vertex vertex = kInvalidVertex;
  std::int32_t dist_structure = 0;
  std::int32_t dist_graph = 0;
};

struct VerifyReport {
  bool ok = true;
  std::int64_t failures_checked = 0;
  std::int64_t violations = 0;
  /// Up to 16 concrete counterexamples for diagnostics.
  std::vector<VerifyViolation> examples;

  std::string to_string() const;
};

/// Verifies the FT-BFS contract for `h`. Deterministic.
VerifyReport verify_structure(const FtBfsStructure& h,
                              const VerifyOptions& opts = {});

}  // namespace ftb
