#include "src/core/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace ftb {

std::vector<EdgeEconomics> EconomicsReport::by_cost_desc() const {
  std::vector<EdgeEconomics> sorted = edges;
  std::sort(sorted.begin(), sorted.end(),
            [](const EdgeEconomics& a, const EdgeEconomics& b) {
              if (a.cost != b.cost) return a.cost > b.cost;
              return a.e < b.e;
            });
  return sorted;
}

EconomicsReport analyze_economics(const ReplacementPathEngine& engine) {
  const BfsTree& tree = engine.tree();
  const Graph& g = tree.graph();

  EconomicsReport report;
  std::vector<std::int32_t> index(static_cast<std::size_t>(g.num_edges()), -1);
  for (const EdgeId e : tree.tree_edges()) {
    EdgeEconomics row;
    row.e = e;
    row.depth = tree.edge_depth(e);
    row.users = tree.subtree_size(tree.lower_endpoint(e));
    index[static_cast<std::size_t>(e)] =
        static_cast<std::int32_t>(report.edges.size());
    report.edges.push_back(row);
  }

  // Cost(e): distinct last edges over e's uncovered pairs.
  std::vector<std::set<EdgeId>> needed(report.edges.size());
  for (const UncoveredPair& p : engine.uncovered_pairs()) {
    needed[static_cast<std::size_t>(
               index[static_cast<std::size_t>(p.e)])]
        .insert(p.last_edge);
  }
  for (std::size_t i = 0; i < report.edges.size(); ++i) {
    report.edges[i].cost = static_cast<std::int32_t>(needed[i].size());
    report.total_cost += report.edges[i].cost;
    report.max_cost = std::max<std::int64_t>(report.max_cost,
                                             report.edges[i].cost);
  }

  // Covered pairs per edge: every vertex below e forms one pair with e, so
  // the pair count of e is exactly users(e); subtracting the uncovered
  // pairs leaves the covered + disconnecting ones.
  {
    std::vector<std::int32_t> uncov(report.edges.size(), 0);
    for (const UncoveredPair& p : engine.uncovered_pairs()) {
      ++uncov[static_cast<std::size_t>(index[static_cast<std::size_t>(p.e)])];
    }
    for (std::size_t i = 0; i < report.edges.size(); ++i) {
      report.edges[i].covered = report.edges[i].users - uncov[i];
    }
  }

  // Pearson correlation of users vs cost.
  const std::size_t n = report.edges.size();
  if (n >= 2) {
    double su = 0, sc = 0;
    for (const auto& r : report.edges) {
      su += r.users;
      sc += r.cost;
    }
    const double mu = su / static_cast<double>(n);
    const double mc = sc / static_cast<double>(n);
    double cov = 0, vu = 0, vc = 0;
    for (const auto& r : report.edges) {
      cov += (r.users - mu) * (r.cost - mc);
      vu += (r.users - mu) * (r.users - mu);
      vc += (r.cost - mc) * (r.cost - mc);
    }
    report.users_cost_correlation =
        (vu > 0 && vc > 0)
            ? std::clamp(cov / std::sqrt(vu * vc), -1.0, 1.0)
            : 0.0;
  }
  return report;
}

}  // namespace ftb
