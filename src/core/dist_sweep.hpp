// dist_sweep.hpp — the subtree-seeded replacement-distance sweep.
//
// Both replacement engines need dist(s, v, G \ {fault}) for every vertex v
// whose tree path π(s,v) uses the fault — i.e. the subtree hanging below a
// failing tree edge, or below a failing internal tree vertex. The naive
// realization is one full BFS of G per fault: Θ(n) traversals, the O(n·m)
// bottleneck of the whole construction.
//
// The sweep exploits the standard observation that every *other* vertex u
// keeps its tree distance: π(s,u) avoids the fault, and G\{fault} ⊆ G, so
// dist(s, u, G\{fault}) = depth(u). For the affected set A this turns the
// BFS into a bounded multi-source relaxation:
//
//   dist'(v) = min( c_out(v),  min_{(v,w) ∈ E(A)} dist'(w) + 1 )
//   c_out(v) = 1 + min{ depth(u) : (v,u) admissible, u ∉ A }
//
// (the final entry point of any replacement path into A is seeded by
// c_out; everything after it stays inside A). Processing keys ascending
// with a bucket queue gives exact distances in
// O( Σ_{v∈A} deg(v) + |A| ) per fault — summed over all faults that is
// O( Σ_v deg(v)·depth(v) ), typically orders of magnitude below O(n·m).
//
// Only distances are produced (no parents), which is exactly what the
// engines' tables store — so the output is trivially independent of
// processing order and bit-identical to the full-BFS rows.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/graph/bfs_tree.hpp"

namespace ftb {

/// Work accounting for the rebase seam: how many per-vertex label
/// assignments (full copies, undo restores, canonical relabels) and how
/// many Dial-sweep vertex visits a punctured-tree production performed.
/// The dual build's schedule referee compares these totals — the DFS
/// schedule's patch-and-undo must come in strictly below the independent
/// schedule's full per-site label copies.
struct SweepWorkStats {
  std::int64_t label_writes = 0;
  std::int64_t sweep_visits = 0;
  std::int64_t total() const { return label_writes + sweep_visits; }
};

/// Reusable per-thread arena for replacement_dist_sweep. Zero steady-state
/// allocations: affected marking is epoch-stamped, buckets retain capacity.
class ReplacementSweepScratch {
 public:
  /// dist(s, v, G \ {fault}) after a sweep; valid only for vertices of the
  /// `affected` span handed to that sweep (kInfHops when disconnected).
  std::int32_t dist(Vertex v) const {
    const std::size_t i = static_cast<std::size_t>(v);
    return stamp_[i] == epoch_ ? dist_[i] : kInfHops;
  }

 private:
  friend void replacement_dist_sweep(const BfsTree&, EdgeId, Vertex,
                                     std::span<const Vertex>,
                                     ReplacementSweepScratch&, EdgeId, Vertex,
                                     SweepWorkStats*);

  void prepare(std::size_t n);
  bool in_set(Vertex v) const {
    return stamp_[static_cast<std::size_t>(v)] == epoch_;
  }

  std::vector<std::uint32_t> stamp_;  // in affected set iff == epoch_
  std::uint32_t epoch_ = 0;
  std::vector<std::int32_t> dist_;                 // tentative keys
  std::vector<std::vector<Vertex>> buckets_;       // Dial queue, relative keys
};

/// Computes dist(s, v, G \ {fault}) for every v ∈ `affected`, where
/// `affected` is the preorder subtree slice below the fault
/// (tree.subtree(lower_endpoint(banned_edge)) or tree.subtree(banned_vertex))
/// and exactly one of banned_edge / banned_vertex identifies the fault (pass
/// kInvalidEdge / kInvalidVertex for the other). A banned vertex inside the
/// span is skipped. Results are read back through scratch.dist().
///
/// `ambient_edge` / `ambient_vertex` exclude one more graph element from
/// every step of the sweep: this is how the dual-failure pipeline reuses the
/// sweep over a punctured graph G \ {first failure} (the `tree` must then be
/// the canonical tree of that punctured graph, so depth() seeding stays
/// exact). Both default to "none", which is the single-fault sweep verbatim.
/// `work`, when given, accumulates the sweep's vertex visits (marking,
/// seeding and non-stale bucket pops).
void replacement_dist_sweep(const BfsTree& tree, EdgeId banned_edge,
                            Vertex banned_vertex,
                            std::span<const Vertex> affected,
                            ReplacementSweepScratch& scratch,
                            EdgeId ambient_edge = kInvalidEdge,
                            Vertex ambient_vertex = kInvalidVertex,
                            SweepWorkStats* work = nullptr);

/// Incremental punctured-tree rebase: the canonical tree of G \ {fault}
/// built from `base` (the canonical tree of G) by recomputing labels ONLY
/// for the subtree hanging below the fault. Exactly one of banned_edge
/// (a tree edge of `base`) / banned_vertex (a reachable non-source vertex)
/// identifies the fault.
///
/// Why this is exact: a vertex u outside the affected subtree keeps its
/// tree path π(s,u), which avoids the fault; the canonical path of G is
/// still present in G \ {fault} and stays (hops, Σw)-minimal among a
/// subset of its old competitors, so every label of u — hops, wsum,
/// parent, parent_edge, first_hop — is unchanged verbatim. Affected
/// vertices get their punctured hop distances from replacement_dist_sweep
/// (seeded by the unaffected boundary) and then the same canonical parent
/// rule as canonical_sp pass 2, processed in ascending level order. The
/// result is bit-identical to BfsTree(g, W, source, bans) at a cost
/// proportional to the affected subtree's volume plus O(n + m) for the
/// label copy and derived tree arrays (no graph traversal — the win over
/// a full rebuild is the BFS and the canonical relaxation, not the array
/// bookkeeping) — this is the sibling-prefix reuse the dual-failure
/// recursion leans on (one rebase per first-failure site instead of one
/// full canonical BFS of G each).
BfsTree rebase_punctured_tree(const BfsTree& base, EdgeId banned_edge,
                              Vertex banned_vertex,
                              SweepWorkStats* work = nullptr);

/// Per-thread punctured-tree workspace — the DFS-order ancestor-sweep
/// sharing seam of the dual build.
///
/// rebase_punctured_tree pays three O(n) terms per site that have nothing
/// to do with the fault's subtree: the full label copy `sp = base.sp()`,
/// the fresh order/derived-array allocations, and their deallocation. The
/// workspace amortizes all three across a DFS-ordered run of sites: it
/// binds to the base tree ONCE (one full label copy), then each puncture()
/// patches only the affected subtree's labels in place and rebuilds the
/// derived arrays into retained capacity.
///
/// The reuse invariant that makes the patch sound: outside the affected
/// subtree A_f every label of T_f equals T0 verbatim, so a workspace whose
/// labels are "T0 everywhere except the previously patched subtree" only
/// has to restore the STALE DIFFERENCE — the previous site's subtree minus
/// the new site's subtree (undo values come straight from the base tree;
/// no undo log is needed). Walking sites in T0 DFS order makes that
/// difference the ancestor→site path segment: a child site's subtree nests
/// inside its processed ancestor's, so the ancestor's patch is mostly
/// overwritten, not undone, and the per-site label traffic is O(vol(A_f))
/// instead of O(n). Produced trees are bit-identical to
/// rebase_punctured_tree (both run the one shared relabel-and-merge
/// implementation).
///
/// Exclusive ownership while in use: the dual build leases one per worker
/// from a FreeListPool. The tree returned by puncture() is valid until the
/// next puncture()/bind() on the same workspace.
class PuncturedWorkspace {
 public:
  /// Binds to `base` (one full O(n) label copy, counted in stats). A
  /// rebind to the SAME tree object is a no-op — that is what makes pooled
  /// reuse across work chunks of one build cheap.
  void bind(const BfsTree& base);

  /// The canonical tree of G \ {fault}, bit-identical to
  /// rebase_punctured_tree(base, banned_edge, banned_vertex). Same
  /// precondition: exactly one failed element, a tree edge or a reachable
  /// non-source vertex.
  const BfsTree& puncture(EdgeId banned_edge, Vertex banned_vertex);

  /// Cumulative rebase work this workspace performed (never reset).
  const SweepWorkStats& stats() const { return stats_; }

 private:
  const BfsTree* base_ = nullptr;
  std::optional<BfsTree> tree_;     // the reused punctured tree
  ReplacementSweepScratch sweep_;
  std::vector<Vertex> by_level_;    // phase 2 processing order
  std::vector<Vertex> order_;       // phase 3 merge buffer (swapped in)
  Vertex dirty_top_ = kInvalidVertex;  // root of the last patched subtree
  SweepWorkStats stats_;
};

}  // namespace ftb
