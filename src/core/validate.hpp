// validate.hpp — the one place build inputs are checked.
//
// Every build entry point — the ftb::api facade, the legacy per-model
// builders it wraps, and the CLI — funnels its (ε, source set) inputs
// through these helpers, so a bad input produces the SAME CheckError
// message shape everywhere:
//
//   invalid BuildSpec: <what is wrong> (got <value>)
//
// Historically each entry point failed differently (the ε builder had its
// own range text, the multi-source builders only checked emptiness, NaN
// slipped through the < comparisons with a misleading message downstream).
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/util/check.hpp"

namespace ftb::detail {

/// ε must be a finite value in [0, 1]. Rejects NaN explicitly (NaN fails
/// every comparison, which used to surface as a confusing range message).
inline void check_epsilon(double eps) {
  FTB_CHECK_MSG(std::isfinite(eps),
                "invalid BuildSpec: eps must be a finite value in [0, 1] "
                "(got a non-finite value)");
  FTB_CHECK_MSG(eps >= 0.0 && eps <= 1.0,
                "invalid BuildSpec: eps must be a finite value in [0, 1] "
                "(got " << eps << ")");
}

/// The source set must be non-empty, in range, and duplicate-free.
inline void check_sources(const Graph& g, std::span<const Vertex> sources) {
  FTB_CHECK_MSG(!sources.empty(),
                "invalid BuildSpec: source set must not be empty");
  for (const Vertex s : sources) {
    FTB_CHECK_MSG(s >= 0 && s < g.num_vertices(),
                  "invalid BuildSpec: source out of range [0, "
                      << g.num_vertices() << ") (got " << s << ")");
  }
  std::vector<Vertex> sorted(sources.begin(), sources.end());
  std::sort(sorted.begin(), sorted.end());
  const auto dup = std::adjacent_find(sorted.begin(), sorted.end());
  FTB_CHECK_MSG(dup == sorted.end(),
                "invalid BuildSpec: duplicate source (got "
                    << (dup == sorted.end() ? Vertex{0} : *dup) << ")");
}

/// Single-source convenience used by the legacy entry points.
inline void check_source(const Graph& g, Vertex source) {
  const Vertex one[] = {source};
  check_sources(g, one);
}

}  // namespace ftb::detail
