#include "src/core/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace ftb {

double predicted_optimal_eps(std::int64_t n, const CostParams& prices) {
  FTB_CHECK_MSG(prices.backup_price > 0 && prices.reinforce_price > 0,
                "prices must be positive");
  const double ratio = prices.ratio();
  if (ratio <= 1.0 || n < 2) return 0.0;
  const double eps = std::log(ratio) / (2.0 * std::log(static_cast<double>(n)));
  return std::clamp(eps, 0.0, 0.5);
}

double predicted_cost(std::int64_t n, double eps, const CostParams& prices) {
  return prices.backup_price * theorem_backup_bound(n, eps) +
         prices.reinforce_price * theorem_reinforce_bound(n, eps);
}

DesignSweep design_sweep(const Graph& g, Vertex source,
                         const CostParams& prices,
                         std::span<const double> eps_grid,
                         const EpsilonOptions& base) {
  FTB_CHECK_MSG(!eps_grid.empty(), "empty eps grid");
  DesignSweep sweep;
  sweep.points.reserve(eps_grid.size());
  for (const double eps : eps_grid) {
    EpsilonOptions opts = base;
    opts.eps = eps;
    const EpsilonResult res = detail::build_epsilon_ftbfs_impl(g, source, opts);
    DesignPoint pt;
    pt.eps = eps;
    pt.backup = res.structure.num_backup();
    pt.reinforced = res.structure.num_reinforced();
    pt.edges = res.structure.num_edges();
    pt.cost = res.structure.cost(prices.backup_price, prices.reinforce_price);
    sweep.points.push_back(pt);
  }
  sweep.best_index = 0;
  for (std::size_t i = 1; i < sweep.points.size(); ++i) {
    if (sweep.points[i].cost < sweep.points[sweep.best_index].cost) {
      sweep.best_index = i;
    }
  }
  return sweep;
}

EpsilonResult design_cheapest(const Graph& g, Vertex source,
                              const CostParams& prices,
                              std::span<const double> eps_grid,
                              const EpsilonOptions& base) {
  const DesignSweep sweep = design_sweep(g, source, prices, eps_grid, base);
  EpsilonOptions opts = base;
  opts.eps = sweep.best().eps;
  return detail::build_epsilon_ftbfs_impl(g, source, opts);
}

}  // namespace ftb
