// cost_model.hpp — the economic reading of the tradeoff (paper §1, §Discussion).
//
// With backup price B and reinforcement price R the total cost of a (b,r)
// FT-BFS structure is B·b(n) + R·r(n) = Õ(B·n^{1+ε} + R·n^{1-ε}), minimized
// at ε* ≈ log(R/B) / (2·log n) — the paper states ε = O(log(R/B)/log n);
// balancing the two terms exactly gives the factor-2 refinement we use as
// the analytic predictor, clamped into [0, 1/2].
//
// design_sweep() is the empirical counterpart: it builds the structure on a
// grid of ε values and returns the measured cost curve plus its argmin —
// the tool a network planner would actually run (examples/network_planning).
#pragma once

#include <span>
#include <vector>

#include "src/core/epsilon_ftbfs.hpp"

namespace ftb {

/// Unit prices: B for a fault-prone backup edge, R ≥ B for a reinforced one.
struct CostParams {
  double backup_price = 1.0;
  double reinforce_price = 100.0;

  double ratio() const { return reinforce_price / backup_price; }
};

/// Analytic predictor ε* = clamp(log(R/B) / (2 ln n), 0, 1/2).
double predicted_optimal_eps(std::int64_t n, const CostParams& prices);

/// Theorem 3.1 envelope cost at ε: B·b_bound(ε) + R·r_bound(ε).
double predicted_cost(std::int64_t n, double eps, const CostParams& prices);

/// One measured point of the ε grid.
struct DesignPoint {
  double eps = 0;
  std::int64_t backup = 0;
  std::int64_t reinforced = 0;
  std::int64_t edges = 0;
  double cost = 0;
};

/// A measured cost curve with its argmin.
struct DesignSweep {
  std::vector<DesignPoint> points;
  std::size_t best_index = 0;

  const DesignPoint& best() const { return points[best_index]; }
};

/// Builds the ε FT-BFS structure for every ε in `eps_grid`, prices each and
/// returns the curve. `base` supplies seed/pool/ablation options (its eps
/// field is overridden per grid point).
DesignSweep design_sweep(const Graph& g, Vertex source,
                         const CostParams& prices,
                         std::span<const double> eps_grid,
                         const EpsilonOptions& base = {});

/// Convenience: sweep + rebuild of the winning design.
EpsilonResult design_cheapest(const Graph& g, Vertex source,
                              const CostParams& prices,
                              std::span<const double> eps_grid,
                              const EpsilonOptions& base = {});

}  // namespace ftb
