#include "src/core/dist_sweep.hpp"

#include <algorithm>
#include <limits>

namespace ftb {

void ReplacementSweepScratch::prepare(std::size_t n) {
  if (stamp_.size() < n) {
    stamp_.assign(n, 0);
    dist_.resize(n);
    epoch_ = 0;
  }
  if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 0;
  }
  ++epoch_;
}

void replacement_dist_sweep(const BfsTree& tree, EdgeId banned_edge,
                            Vertex banned_vertex,
                            std::span<const Vertex> affected,
                            ReplacementSweepScratch& s, EdgeId ambient_edge,
                            Vertex ambient_vertex, SweepWorkStats* work) {
  const Graph& g = tree.graph();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  s.prepare(n);
  if (affected.empty()) return;

  // All replacement distances of A sit at or below no key smaller than the
  // depth of the subtree root (dist' ≥ depth ≥ depth(root of A)), so the
  // bucket queue can be based there.
  const std::int32_t base = tree.depth(affected.front());

  // Mark A first so the seeding pass can tell inside from outside.
  for (const Vertex v : affected) {
    if (v == banned_vertex || v == ambient_vertex) continue;
    const std::size_t vi = static_cast<std::size_t>(v);
    s.stamp_[vi] = s.epoch_;
    s.dist_[vi] = kInfHops;
  }

  // Seed c_out(v): the best admissible step from an unaffected vertex.
  std::int32_t max_seed_rel = -1;
  std::int64_t visits = 0;
  thread_local std::vector<std::pair<std::int32_t, Vertex>> seeds;
  seeds.clear();
  for (const Vertex v : affected) {
    if (v == banned_vertex || v == ambient_vertex) continue;
    ++visits;
    std::int32_t best = kInfHops;
    for (const Arc& a : g.neighbors(v)) {
      if (a.edge == banned_edge || a.edge == ambient_edge) continue;
      const Vertex u = a.to;
      if (u == banned_vertex || u == ambient_vertex) continue;
      if (s.in_set(u)) continue;
      const std::int32_t du = tree.depth(u);
      if (du >= kInfHops) continue;  // unreachable even in G
      best = std::min(best, du + 1);
    }
    if (best >= kInfHops) continue;
    FTB_DCHECK(best >= base);
    const std::int32_t rel = best - base;
    seeds.emplace_back(rel, v);
    max_seed_rel = std::max(max_seed_rel, rel);
  }
  if (max_seed_rel < 0) {  // fault disconnects the whole subtree
    if (work != nullptr) work->sweep_visits += visits;
    return;
  }

  // Every relaxation step adds one hop per processed level, so no key can
  // exceed max_seed_rel + |A|. Sizing the bucket array up front keeps the
  // relaxation loop free of reallocation (bucket capacity is retained
  // across sweeps, so this is a steady-state no-op).
  const std::size_t num_buckets =
      static_cast<std::size_t>(max_seed_rel) + affected.size() + 2;
  if (s.buckets_.size() < num_buckets) s.buckets_.resize(num_buckets);
  for (const auto& [rel, v] : seeds) {
    s.dist_[static_cast<std::size_t>(v)] = base + rel;
    s.buckets_[static_cast<std::size_t>(rel)].push_back(v);
  }

  // Dial relaxation: all arcs have weight 1, keys only grow, so the first
  // non-stale pop of a vertex is final.
  std::int32_t max_rel = max_seed_rel;
  for (std::int32_t k = 0; k <= max_rel; ++k) {
    auto& bucket = s.buckets_[static_cast<std::size_t>(k)];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const Vertex v = bucket[i];
      if (s.dist_[static_cast<std::size_t>(v)] != base + k) continue;  // stale
      ++visits;
      for (const Arc& a : g.neighbors(v)) {
        if (a.edge == banned_edge || a.edge == ambient_edge) continue;
        const Vertex u = a.to;
        if (u == banned_vertex || u == ambient_vertex || !s.in_set(u)) {
          continue;
        }
        auto& du = s.dist_[static_cast<std::size_t>(u)];
        if (du > base + k + 1) {
          du = base + k + 1;
          FTB_DCHECK(static_cast<std::size_t>(k) + 1 < s.buckets_.size());
          s.buckets_[static_cast<std::size_t>(k) + 1].push_back(u);
          max_rel = std::max(max_rel, k + 1);
        }
      }
    }
    bucket.clear();  // capacity retained for the next sweep
  }
  if (work != nullptr) work->sweep_visits += visits;
}

namespace {

void check_puncture_args(const BfsTree& base, EdgeId banned_edge,
                         Vertex banned_vertex) {
  FTB_CHECK_MSG((banned_edge == kInvalidEdge) !=
                    (banned_vertex == kInvalidVertex),
                "rebase_punctured_tree: exactly one failed element");
  if (banned_edge != kInvalidEdge) {
    FTB_CHECK_MSG(base.is_tree_edge(banned_edge),
                  "rebase_punctured_tree: banned edge is not a tree edge — "
                  "the base tree already IS the punctured canonical tree");
  } else {
    FTB_CHECK_MSG(banned_vertex != base.source() &&
                      base.reachable(banned_vertex),
                  "rebase_punctured_tree: banned vertex must be a reachable "
                  "non-source vertex");
  }
}

/// Phases 2+3 of the punctured rebase — THE one implementation both
/// rebase_punctured_tree and PuncturedWorkspace::puncture run, so the
/// bit-identity contract between the independent and the DFS schedule
/// hangs on a single piece of code. Preconditions: `sweep` holds the
/// phase-1 punctured hop distances of `affected` (the base-tree preorder
/// slice below the fault), and `sp` holds base labels everywhere OUTSIDE
/// `affected` (inside may be arbitrary — every affected vertex is
/// rewritten). On return `sp`'s labels are the punctured canonical labels
/// and `order_out` (cleared first) is the merged finalization order.
void relabel_and_merge(const BfsTree& base, EdgeId banned_edge,
                       Vertex banned_vertex,
                       std::span<const Vertex> affected,
                       const ReplacementSweepScratch& sweep,
                       std::vector<Vertex>& by_level, CanonicalSp& sp,
                       std::vector<Vertex>& order_out, SweepWorkStats* work) {
  const Graph& g = base.graph();
  const EdgeWeights& W = base.weights();
  const Vertex src = base.source();
  const Vertex top = affected.front();

  // The affected subtree is a contiguous preorder (tin) interval of the
  // base tree, so membership is two comparisons.
  const auto in_affected = [&](Vertex u) {
    return base.reachable(u) && base.is_ancestor_or_equal(top, u);
  };
  // Authoritative punctured hops: sweep output inside the affected set
  // (NOT sp.hops, which is stale until a vertex is processed), unchanged
  // labels outside.
  const auto hops_of = [&](Vertex u) {
    return in_affected(u) ? sweep.dist(u)
                          : sp.hops[static_cast<std::size_t>(u)];
  };

  // Phase 2: canonical labels in ascending (new hops, id) order — the ONE
  // parent rule (pick_canonical_parent, shared with canonical_sp pass 2).
  // Predecessor labels are final when consumed: unaffected ones never
  // change, affected ones sit one level up and were processed earlier.
  by_level.assign(affected.begin(), affected.end());
  std::sort(by_level.begin(), by_level.end(), [&](Vertex a, Vertex b) {
    const std::int32_t ha = sweep.dist(a), hb = sweep.dist(b);
    return ha != hb ? ha < hb : a < b;
  });
  for (const Vertex v : by_level) {
    const std::size_t vi = static_cast<std::size_t>(v);
    const std::int32_t hv = sweep.dist(v);
    if (hv >= kInfHops) {  // destroyed or disconnected by the fault
      sp.hops[vi] = kInfHops;
      sp.wsum[vi] = 0;
      sp.parent[vi] = kInvalidVertex;
      sp.parent_edge[vi] = kInvalidEdge;
      sp.first_hop[vi] = kInvalidVertex;
      continue;
    }
    const CanonicalParentChoice best = pick_canonical_parent(
        g, W, v, hv,
        [&](const Arc& a) {
          return a.edge != banned_edge && a.to != banned_vertex;
        },
        hops_of,
        [&](Vertex u) { return sp.wsum[static_cast<std::size_t>(u)]; });
    FTB_DCHECK(best.parent != kInvalidVertex);
    sp.hops[vi] = hv;
    sp.wsum[vi] = best.wsum;
    sp.parent[vi] = best.parent;
    sp.parent_edge[vi] = best.edge;
    sp.first_hop[vi] = best.parent == src
                           ? v
                           : sp.first_hop[static_cast<std::size_t>(best.parent)];
  }
  if (work != nullptr) {
    work->label_writes += static_cast<std::int64_t>(by_level.size());
  }

  // Phase 3: finalization order = reachable vertices by (hops, id). The
  // base order already is that sequence for the unaffected vertices; merge
  // the relabeled subtree back in.
  const std::vector<Vertex>& base_order = base.sp().order;
  order_out.clear();
  order_out.reserve(base_order.size());
  // by_level is (hops, id)-sorted with kInfHops largest, so the vertices
  // the fault disconnects form its tail; they leave the order entirely.
  const std::size_t a_end = [&] {
    std::size_t e = by_level.size();
    while (e > 0 && sweep.dist(by_level[e - 1]) >= kInfHops) --e;
    return e;
  }();
  std::size_t ai = 0;
  for (const Vertex u : base_order) {
    if (in_affected(u)) continue;  // re-merged from by_level below
    const std::int32_t hu = sp.hops[static_cast<std::size_t>(u)];
    while (ai < a_end) {
      const Vertex a = by_level[ai];
      const std::int32_t ha = sp.hops[static_cast<std::size_t>(a)];
      if (ha < hu || (ha == hu && a < u)) {
        order_out.push_back(a);
        ++ai;
      } else {
        break;
      }
    }
    order_out.push_back(u);
  }
  while (ai < a_end) order_out.push_back(by_level[ai++]);
}

}  // namespace

BfsTree rebase_punctured_tree(const BfsTree& base, EdgeId banned_edge,
                              Vertex banned_vertex, SweepWorkStats* work) {
  check_puncture_args(base, banned_edge, banned_vertex);
  const Graph& g = base.graph();
  const Vertex top = banned_edge != kInvalidEdge
                         ? base.lower_endpoint(banned_edge)
                         : banned_vertex;
  const std::span<const Vertex> affected = base.subtree(top);

  // Phase 1: punctured hop distances for the affected subtree, seeded from
  // the unaffected boundary (whose depths are final — their tree paths
  // avoid the fault).
  thread_local ReplacementSweepScratch sweep;
  replacement_dist_sweep(base, banned_edge, banned_vertex, affected, sweep,
                         kInvalidEdge, kInvalidVertex, work);

  // Everything outside the affected subtree keeps its labels verbatim —
  // at the price the DFS schedule exists to avoid: a full O(n) copy.
  CanonicalSp sp = base.sp();
  if (work != nullptr) {
    work->label_writes += static_cast<std::int64_t>(g.num_vertices());
  }

  thread_local std::vector<Vertex> by_level;
  std::vector<Vertex> order;
  relabel_and_merge(base, banned_edge, banned_vertex, affected, sweep,
                    by_level, sp, order, work);
  sp.order = std::move(order);

  return BfsTree(g, base.weights(), base.source(), std::move(sp));
}

// ---------------------------------------------------------------------------
// PuncturedWorkspace

void PuncturedWorkspace::bind(const BfsTree& base) {
  if (base_ == &base) return;  // pooled reuse within one build: free rebind
  base_ = &base;
  dirty_top_ = kInvalidVertex;
  // The one full label copy this workspace ever pays for `base`; every
  // puncture() after is a subtree-volume patch.
  tree_.emplace(base.graph(), base.weights(), base.source(),
                CanonicalSp(base.sp()));
  stats_.label_writes +=
      static_cast<std::int64_t>(base.graph().num_vertices());
}

const BfsTree& PuncturedWorkspace::puncture(EdgeId banned_edge,
                                            Vertex banned_vertex) {
  FTB_CHECK_MSG(base_ != nullptr,
                "PuncturedWorkspace::puncture before bind()");
  const BfsTree& base = *base_;
  check_puncture_args(base, banned_edge, banned_vertex);
  const Vertex top = banned_edge != kInvalidEdge
                         ? base.lower_endpoint(banned_edge)
                         : banned_vertex;
  CanonicalSp& sp = tree_->mutable_sp();

  // Undo the previous patch back to base labels — except the slice the new
  // patch rewrites anyway. In DFS order the new top usually sits inside the
  // previous subtree (or the previous one inside the new window), so the
  // restored difference is the ancestor→site path segment, not the whole
  // previous subtree. When the new window covers the dirty subtree there is
  // nothing to undo at all. Undo values come straight from the base labels;
  // no log is kept.
  if (dirty_top_ != kInvalidVertex &&
      !base.is_ancestor_or_equal(top, dirty_top_)) {
    const std::int32_t lo = base.tin(top);
    const std::int32_t hi = base.tout(top);
    const CanonicalSp& bsp = base.sp();
    std::int64_t restored = 0;
    for (const Vertex v : base.subtree(dirty_top_)) {
      const std::int32_t t = base.tin(v);
      if (t >= lo && t < hi) continue;  // inside the new affected window
      const std::size_t vi = static_cast<std::size_t>(v);
      sp.hops[vi] = bsp.hops[vi];
      sp.wsum[vi] = bsp.wsum[vi];
      sp.parent[vi] = bsp.parent[vi];
      sp.parent_edge[vi] = bsp.parent_edge[vi];
      sp.first_hop[vi] = bsp.first_hop[vi];
      ++restored;
    }
    stats_.label_writes += restored;
  }

  const std::span<const Vertex> affected = base.subtree(top);
  replacement_dist_sweep(base, banned_edge, banned_vertex, affected, sweep_,
                         kInvalidEdge, kInvalidVertex, &stats_);
  relabel_and_merge(base, banned_edge, banned_vertex, affected, sweep_,
                    by_level_, sp, order_, &stats_);
  sp.order.swap(order_);  // both buffers retain capacity across punctures
  tree_->rebuild_derived();
  dirty_top_ = top;
  return *tree_;
}

}  // namespace ftb
