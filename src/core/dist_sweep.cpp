#include "src/core/dist_sweep.hpp"

#include <algorithm>
#include <limits>

namespace ftb {

void ReplacementSweepScratch::prepare(std::size_t n) {
  if (stamp_.size() < n) {
    stamp_.assign(n, 0);
    dist_.resize(n);
    epoch_ = 0;
  }
  if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 0;
  }
  ++epoch_;
}

void replacement_dist_sweep(const BfsTree& tree, EdgeId banned_edge,
                            Vertex banned_vertex,
                            std::span<const Vertex> affected,
                            ReplacementSweepScratch& s, EdgeId ambient_edge,
                            Vertex ambient_vertex) {
  const Graph& g = tree.graph();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  s.prepare(n);
  if (affected.empty()) return;

  // All replacement distances of A sit at or below no key smaller than the
  // depth of the subtree root (dist' ≥ depth ≥ depth(root of A)), so the
  // bucket queue can be based there.
  const std::int32_t base = tree.depth(affected.front());

  // Mark A first so the seeding pass can tell inside from outside.
  for (const Vertex v : affected) {
    if (v == banned_vertex || v == ambient_vertex) continue;
    const std::size_t vi = static_cast<std::size_t>(v);
    s.stamp_[vi] = s.epoch_;
    s.dist_[vi] = kInfHops;
  }

  // Seed c_out(v): the best admissible step from an unaffected vertex.
  std::int32_t max_seed_rel = -1;
  thread_local std::vector<std::pair<std::int32_t, Vertex>> seeds;
  seeds.clear();
  for (const Vertex v : affected) {
    if (v == banned_vertex || v == ambient_vertex) continue;
    std::int32_t best = kInfHops;
    for (const Arc& a : g.neighbors(v)) {
      if (a.edge == banned_edge || a.edge == ambient_edge) continue;
      const Vertex u = a.to;
      if (u == banned_vertex || u == ambient_vertex) continue;
      if (s.in_set(u)) continue;
      const std::int32_t du = tree.depth(u);
      if (du >= kInfHops) continue;  // unreachable even in G
      best = std::min(best, du + 1);
    }
    if (best >= kInfHops) continue;
    FTB_DCHECK(best >= base);
    const std::int32_t rel = best - base;
    seeds.emplace_back(rel, v);
    max_seed_rel = std::max(max_seed_rel, rel);
  }
  if (max_seed_rel < 0) return;  // fault disconnects the whole subtree

  // Every relaxation step adds one hop per processed level, so no key can
  // exceed max_seed_rel + |A|. Sizing the bucket array up front keeps the
  // relaxation loop free of reallocation (bucket capacity is retained
  // across sweeps, so this is a steady-state no-op).
  const std::size_t num_buckets =
      static_cast<std::size_t>(max_seed_rel) + affected.size() + 2;
  if (s.buckets_.size() < num_buckets) s.buckets_.resize(num_buckets);
  for (const auto& [rel, v] : seeds) {
    s.dist_[static_cast<std::size_t>(v)] = base + rel;
    s.buckets_[static_cast<std::size_t>(rel)].push_back(v);
  }

  // Dial relaxation: all arcs have weight 1, keys only grow, so the first
  // non-stale pop of a vertex is final.
  std::int32_t max_rel = max_seed_rel;
  for (std::int32_t k = 0; k <= max_rel; ++k) {
    auto& bucket = s.buckets_[static_cast<std::size_t>(k)];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const Vertex v = bucket[i];
      if (s.dist_[static_cast<std::size_t>(v)] != base + k) continue;  // stale
      for (const Arc& a : g.neighbors(v)) {
        if (a.edge == banned_edge || a.edge == ambient_edge) continue;
        const Vertex u = a.to;
        if (u == banned_vertex || u == ambient_vertex || !s.in_set(u)) {
          continue;
        }
        auto& du = s.dist_[static_cast<std::size_t>(u)];
        if (du > base + k + 1) {
          du = base + k + 1;
          FTB_DCHECK(static_cast<std::size_t>(k) + 1 < s.buckets_.size());
          s.buckets_[static_cast<std::size_t>(k) + 1].push_back(u);
          max_rel = std::max(max_rel, k + 1);
        }
      }
    }
    bucket.clear();  // capacity retained for the next sweep
  }
}

}  // namespace ftb
