// structure_oracle.hpp — O(1) post-failure distance queries against a
// *deployed* structure, for either fault model.
//
// For any fault inside the model, the FT-BFS contract pins
// dist(s,v,H\{fault}) = dist(s,v,G\{fault}), and the right-hand side is an
// O(1) lookup in the replacement-path engine. So queries against the
// deployed structure cost O(1) — no BFS at query time — as long as the
// failure is inside the model:
//   * edge model: any non-reinforced edge may fail; reinforced-edge
//     "failures" are outside the contract, query() refuses them (they are
//     assumed impossible) while query_unchecked() falls back to a literal
//     BFS for what-if analysis;
//   * vertex model: any non-source vertex may fail (vertex structures have
//     no reinforcement), so query() always answers in O(1).
// The what-if BFS runs on a member scratch arena and caches the last failed
// fault, so sweeping all vertices under one failure costs one traversal —
// not one per query. That makes the oracle mutable-under-const: one oracle
// instance is NOT thread-safe. It remains the minimal single-threaded
// serving path; concurrent and batched serving goes through
// ftb::api::Session (src/api/ftbfs_api.hpp), whose query plane replaces
// the member scratch with pooled per-worker arenas.
#pragma once

#include "src/core/oracle.hpp"
#include "src/core/structure.hpp"
#include "src/graph/bfs_kernel.hpp"

namespace ftb {

/// Bound to one structure + the engine of the same (graph, source, W).
template <class Model>
class FaultStructureOracle {
 public:
  using FaultId = typename Model::FaultId;

  /// Both objects must come from the same tree (checked).
  FaultStructureOracle(const FtBfsStructure& h,
                       const FaultReplacementEngine<Model>& engine);

  /// dist(s, v, H \ {failed}) for an in-model fault. O(1).
  /// Edge model precondition: !h.is_reinforced(failed) (CheckError
  /// otherwise — reinforced edges never fail in the model).
  std::int32_t query(Vertex v, FaultId failed) const;

  /// Like query(), but tolerates out-of-model failures (reinforced edges)
  /// by running a literal BFS on H \ {failed} into the member scratch.
  /// O(n + m) per *distinct* failure, O(1) for repeated queries against the
  /// same failure; for what-if analysis only.
  std::int32_t query_unchecked(Vertex v, FaultId failed) const;

  const FtBfsStructure& structure() const { return *h_; }

 private:
  const FtBfsStructure* h_;
  FaultOracle<Model> oracle_;
  // What-if arena: one literal BFS per distinct out-of-model failure.
  mutable BfsScratch scratch_;
  mutable FaultId scratch_fault_ = Model::kNoFault;
};

/// The historical edge-fault name.
using StructureOracle = FaultStructureOracle<EdgeFault>;
/// Its vertex-fault sibling.
using VertexStructureOracle = FaultStructureOracle<VertexFault>;

extern template class FaultStructureOracle<EdgeFault>;
extern template class FaultStructureOracle<VertexFault>;

}  // namespace ftb
