// structure_oracle.hpp — O(1) post-failure distance queries against a
// *deployed* structure.
//
// For any fault-prone edge e, the FT-BFS contract pins
// dist(s,v,H\{e}) = dist(s,v,G\{e}), and the right-hand side is an O(1)
// lookup in the replacement-path engine. So queries against the deployed
// structure cost O(1) — no BFS at query time — as long as the failure is
// inside the model. Reinforced-edge "failures" are outside the contract;
// query() refuses them (they are assumed impossible), while
// query_unchecked() falls back to a literal BFS for what-if analysis.
#pragma once

#include "src/core/oracle.hpp"
#include "src/core/structure.hpp"

namespace ftb {

/// Bound to one structure + the engine of the same (graph, source, W).
class StructureOracle {
 public:
  /// Both objects must come from the same tree (checked).
  StructureOracle(const FtBfsStructure& h, const ReplacementPathEngine& engine);

  /// dist(s, v, H \ {failed}) for a fault-prone edge. O(1).
  /// Precondition: !h.is_reinforced(failed) (CheckError otherwise —
  /// reinforced edges never fail in the model).
  std::int32_t query(Vertex v, EdgeId failed) const;

  /// Like query(), but tolerates reinforced-edge failures by running a
  /// literal BFS on H \ {failed}. O(n + m); for what-if analysis only.
  std::int32_t query_unchecked(Vertex v, EdgeId failed) const;

  const FtBfsStructure& structure() const { return *h_; }

 private:
  const FtBfsStructure* h_;
  ReplacementOracle oracle_;
};

}  // namespace ftb
