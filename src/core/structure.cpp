#include "src/core/structure.hpp"

#include <algorithm>
#include <sstream>

#include "src/graph/bfs_kernel.hpp"
#include "src/graph/canonical_bfs.hpp"

namespace ftb {

namespace {
void sort_unique(std::vector<EdgeId>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}
}  // namespace

const char* to_string(FaultClass fc) {
  switch (fc) {
    case FaultClass::kEdge:
      return "edge";
    case FaultClass::kVertex:
      return "vertex";
    case FaultClass::kDual:
      return "dual";
    case FaultClass::kEither:
      return "either";
  }
  return "edge";
}

FaultClass parse_fault_class(const std::string& tag) {
  if (tag == "edge") return FaultClass::kEdge;
  if (tag == "vertex") return FaultClass::kVertex;
  if (tag == "dual") return FaultClass::kDual;
  if (tag == "either") return FaultClass::kEither;
  FTB_CHECK_MSG(false, "unknown fault model '"
                           << tag << "' (edge|vertex|either|dual)");
  return FaultClass::kEdge;
}

FtBfsStructure::FtBfsStructure(const Graph& g, Vertex source,
                               std::vector<EdgeId> edges,
                               std::vector<EdgeId> reinforced,
                               std::vector<EdgeId> tree_edges,
                               FaultClass fault_class)
    : g_(&g),
      source_(source),
      fault_class_(fault_class),
      edges_(std::move(edges)),
      reinforced_(std::move(reinforced)),
      tree_edges_(std::move(tree_edges)) {
  FTB_CHECK(g.valid_vertex(source));
  sort_unique(edges_);
  sort_unique(reinforced_);
  sort_unique(tree_edges_);

  const std::size_t m = static_cast<std::size_t>(g.num_edges());
  in_h_.assign(m, 0);
  is_reinf_.assign(m, 0);
  out_of_h_.assign(m, 1);
  for (const EdgeId e : edges_) {
    FTB_CHECK_MSG(g.valid_edge(e), "edge id " << e << " out of range");
    in_h_[static_cast<std::size_t>(e)] = 1;
    out_of_h_[static_cast<std::size_t>(e)] = 0;
  }
  for (const EdgeId e : reinforced_) {
    FTB_CHECK_MSG(contains(e), "reinforced edge " << e << " not in H");
    is_reinf_[static_cast<std::size_t>(e)] = 1;
  }
  for (const EdgeId e : tree_edges_) {
    FTB_CHECK_MSG(contains(e), "tree edge " << e << " not in H");
  }
}

std::vector<std::int32_t> FtBfsStructure::distances_avoiding(
    EdgeId failed) const {
  BfsBans bans;
  bans.banned_edge_mask = &out_of_h_;
  bans.banned_edge = failed;
  return plain_bfs(*g_, source_, bans).dist;
}

void FtBfsStructure::distances_avoiding(EdgeId failed,
                                        BfsScratch& scratch) const {
  BfsBans bans;
  bans.banned_edge_mask = &out_of_h_;
  bans.banned_edge = failed;
  bfs_run(*g_, source_, bans, scratch);
}

std::string FtBfsStructure::summary() const {
  std::ostringstream os;
  os << "FtBfs(n=" << g_->num_vertices() << ", |H|=" << num_edges()
     << ", b=" << num_backup() << ", r=" << num_reinforced();
  if (fault_class_ != FaultClass::kEdge) {
    os << ", model=" << to_string(fault_class_);
  }
  os << ")";
  return os.str();
}

}  // namespace ftb
