// replacement.hpp — the EDGE-fault replacement-path engine: Algorithm Pcons
// (Phase S0), as an instantiation of the fault-model policy layer.
//
// For every vertex v and every failing edge e ∈ π(s,v) the paper fixes one
// canonical replacement path P_{v,e} = RP(⟨v,e⟩):
//   1. if some replacement path ends with a T0 edge (the G'(v) test), the
//      pair is *covered* and contributes nothing new;
//   2. otherwise the pair is *uncovered* (its path is new-ending) and
//      P_{v,e} is the replacement path whose unique divergence point from
//      π(s,v) is as close to s as possible (the G_j(v) machinery,
//      Claims 4.4–4.6).
//
// The engine realization lives once, generically, in fault_model.{hpp,cpp}
// (see the equivalence proofs in DESIGN.md); this header pins the edge
// instantiation under its historical name. UncoveredPair — the S0 artifact
// every downstream phase consumes — is defined in fault_model.hpp.
#pragma once

#include "src/core/fault_model.hpp"

namespace ftb {

/// The edge-fault S0 engine. Construct once per (graph, source, weights);
/// everything else reads from it.
using ReplacementPathEngine = FaultReplacementEngine<EdgeFault>;

}  // namespace ftb
