// replacement.hpp — the replacement-path engine: Algorithm Pcons (Phase S0).
//
// For every vertex v and every failing edge e ∈ π(s,v) the paper fixes one
// canonical replacement path P_{v,e} = RP(⟨v,e⟩):
//   1. if some replacement path ends with a T0 edge (the G'(v) test), the
//      pair is *covered* and contributes nothing new;
//   2. otherwise the pair is *uncovered* (its path is new-ending) and
//      P_{v,e} is the replacement path whose unique divergence point from
//      π(s,v) is as close to s as possible (the G_j(v) machinery,
//      Claims 4.4–4.6).
//
// Engine realization (see DESIGN.md for the equivalence proofs):
//   * one plain BFS of G\{e} per tree edge e gives dist(s,·,G\{e}); rows
//     are stored only for vertices below e (pairs with e ∈ π(s,v));
//   * the covered test for ⟨v,e⟩ reduces to: some T0-neighbor u of v with
//     (u,v) ≠ e has dist_e(u) + 1 = dist_e(v);
//   * one canonical BFS from v in the off-path graph
//     H_v = G \ (V(π(s,v)) \ {v}) yields, for every divergence candidate
//     u_j, the best detour length detlen(j) and its canonical last edge;
//     the divergence point of P_{v,e_i} is u_{j*} with
//     j* = min{ j ≤ i : j + detlen(j) = dist_e(v) }.
//   * detours of the same terminal share the canonical BFS tree of H_v, so
//     distinct-last-edge detours are vertex-disjoint except at v — exactly
//     Claim 4.6(2).
//
// Both sweeps are O(n·m) total and run on the thread pool.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/bfs_tree.hpp"
#include "src/util/thread_pool.hpp"

namespace ftb {

/// An uncovered (new-ending) vertex-edge pair ⟨v,e⟩ ∈ UP with the canonical
/// replacement-path metadata the constructions consume.
struct UncoveredPair {
  Vertex v = kInvalidVertex;   // terminal
  EdgeId e = kInvalidEdge;     // failing edge, e ∈ π(s,v)
  std::int32_t edge_pos = 0;   // e = (u_i, u_{i+1}) with i = edge_pos
  std::int32_t rep_dist = 0;   // dist(s, v, G \ {e})
  Vertex diverge = kInvalidVertex;  // d(P) = u_{j*}
  std::int32_t diverge_depth = 0;   // j*
  EdgeId last_edge = kInvalidEdge;  // LastE(P_{v,e}) ∉ T0, an edge into v
  std::int32_t detour_len = 0;      // |D(P)| in edges
  // Detour vertex list [diverge, ..., v]: slice of the engine's arena.
  std::int64_t detour_begin = 0;
  std::int64_t detour_end = 0;
};

/// The engine. Construct once per (graph, source, weights); everything else
/// reads from it.
class ReplacementPathEngine {
 public:
  struct Config {
    /// Record detour vertex lists (needed by the interference machinery of
    /// the ε algorithm; the ESA'13 baseline can skip them).
    bool collect_detours = true;
    /// Worker pool; nullptr = ThreadPool::global().
    ThreadPool* pool = nullptr;
    /// Run the naive reference kernels (one full queue BFS per failing
    /// edge, materializing two-pass canonical SP per vertex) instead of the
    /// scratch-arena kernels. Differential-testing / bench baseline; the
    /// produced tables and pairs are bit-identical either way.
    bool reference_kernel = false;
    /// Distance tables via the subtree-seeded replacement sweep
    /// (dist_sweep.hpp) instead of one full kernel BFS per tree edge.
    /// Ignored under reference_kernel.
    bool incremental_dist = true;
  };

  explicit ReplacementPathEngine(const BfsTree& tree)
      : ReplacementPathEngine(tree, Config()) {}
  ReplacementPathEngine(const BfsTree& tree, Config cfg);

  const BfsTree& tree() const { return *tree_; }
  const Graph& graph() const { return tree_->graph(); }

  /// dist(s, v, G \ {e}) for any vertex v and any edge e. O(1):
  ///  * e not a tree edge or not on π(s,v)  → dist(s,v,G);
  ///  * e ∈ π(s,v)                          → stored table row;
  ///  * disconnected                        → kInfHops.
  std::int32_t replacement_dist(Vertex v, EdgeId e) const;

  /// All uncovered pairs, grouped by terminal v and ordered by increasing
  /// edge position within each terminal.
  const std::vector<UncoveredPair>& uncovered_pairs() const { return pairs_; }

  /// Indices (into uncovered_pairs()) of v's pairs.
  std::span<const std::int32_t> uncovered_of(Vertex v) const;

  /// The detour D(P) = [diverge, ..., v] of an uncovered pair.
  /// Requires Config::collect_detours.
  std::span<const Vertex> detour(const UncoveredPair& p) const;

  /// True iff pair ⟨v,e⟩ has a replacement path whose last edge is in T0
  /// (the paper's G'(v) test). Preconditions: e ∈ π(s,v), finite rep dist.
  bool covered(Vertex v, EdgeId e) const;

  /// Reconstructs a full canonical replacement path [s, ..., v] for any
  /// pair with finite replacement distance. For uncovered pairs this is
  /// π(s, u_{j*}) ∘ D(P) from stored metadata; for covered pairs it runs a
  /// fresh canonical BFS in G'(v)\{e} (O(m); intended for tests/queries).
  std::vector<Vertex> replacement_path(Vertex v, EdgeId e) const;

  struct Stats {
    std::int64_t pairs_total = 0;      // all ⟨v,e⟩ with e ∈ π(s,v)
    std::int64_t pairs_infinite = 0;   // bridge failures (no path exists)
    std::int64_t pairs_covered = 0;
    std::int64_t pairs_uncovered = 0;
    std::int64_t detour_vertices = 0;  // arena size
    double seconds_dist_tables = 0;
    double seconds_detours = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void build_dist_tables(ThreadPool& pool);
  void build_pairs(ThreadPool& pool);

  /// Stored row index: dist(s,v,G\{e}) for the edge at position i of
  /// π(s,v) lives at dist_rows_[row_offset_[v] + i], i ∈ [0, depth(v)).
  std::int32_t table_dist(Vertex v, std::int32_t pos) const {
    return dist_rows_[static_cast<std::size_t>(
        row_offset_[static_cast<std::size_t>(v)] + pos)];
  }

  const BfsTree* tree_;
  Config cfg_;

  std::vector<std::int64_t> row_offset_;   // per vertex
  std::vector<std::int32_t> dist_rows_;    // Σ_v depth(v) entries

  std::vector<UncoveredPair> pairs_;
  std::vector<std::int64_t> pairs_offset_;   // per vertex, into pair_ids_
  std::vector<std::int32_t> pair_ids_;       // pair indices grouped by v
  std::vector<Vertex> detour_arena_;

  Stats stats_;
};

}  // namespace ftb
