// structure.hpp — the (b, r) FT-BFS structure H, the object every
// construction in this library emits.
//
// H is a subgraph of G given by an edge subset, partitioned into
//   * reinforced edges E' (assumed to never fail; the r(n) of the paper),
//   * backup edges E(H) \ E' (fault-prone; the b(n) of the paper),
// together with the BFS tree T0 ⊆ H it was built around. The contract
// (Definition 2.1) is:
//
//   dist(s, v, H \ {e}) = dist(s, v, G \ {e})   ∀ v ∈ V, ∀ e ∈ E(G) \ E'.
//
// Use core/verifier.hpp to check the contract exhaustively.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/graph.hpp"

namespace ftb {

class BfsScratch;  // bfs_kernel.hpp

/// The failure model a structure was built to survive.
///   * kEdge   — Definition 2.1 verbatim: one edge failure.
///   * kVertex — the companion ESA'13 analog: one vertex failure
///               (dist(s,v,H\{x}) = dist(s,v,G\{x}) for every x ≠ s).
///   * kEither — ONE failure of either kind (the edge ∪ vertex union;
///               this is what the pre-dual releases called "dual").
///   * kDual   — TWO simultaneous failures, each an edge or a vertex
///               (Parter, arXiv:1505.00692; Gupta–Khan, arXiv:1704.06907):
///               dist(s,v,H\{f1,f2}) = dist(s,v,G\{f1,f2}) for every pair
///               {f1,f2} with no failing source vertex.
/// The tag travels with the serialized artifact so the serving stack
/// (oracle, simulator, CLI) picks the right verifier/drill.
enum class FaultClass : std::uint8_t {
  kEdge = 0,
  kVertex = 1,
  kDual = 2,
  kEither = 3,
};

/// "edge" / "vertex" / "dual" / "either".
const char* to_string(FaultClass fc);
/// Inverse of to_string. Throws CheckError on anything else. (structure_io
/// additionally maps the tag "dual" in pre-v4 artifacts to kEither, which
/// is what those files meant.)
FaultClass parse_fault_class(const std::string& tag);

/// An FT-BFS structure (see file comment). Immutable after construction.
class FtBfsStructure {
 public:
  /// `edges` is E(H) (must include all of `tree_edges`); `reinforced` is
  /// E' ⊆ E(H). All vectors are deduplicated and sorted internally.
  FtBfsStructure(const Graph& g, Vertex source, std::vector<EdgeId> edges,
                 std::vector<EdgeId> reinforced,
                 std::vector<EdgeId> tree_edges,
                 FaultClass fault_class = FaultClass::kEdge);

  const Graph& graph() const { return *g_; }
  Vertex source() const { return source_; }
  /// The failure model this structure protects against.
  FaultClass fault_class() const { return fault_class_; }

  /// E(H), sorted ascending.
  const std::vector<EdgeId>& edges() const { return edges_; }
  /// E' ⊆ E(H), sorted ascending.
  const std::vector<EdgeId>& reinforced() const { return reinforced_; }
  /// The BFS tree T0 the structure was built around (⊆ E(H)).
  const std::vector<EdgeId>& tree_edges() const { return tree_edges_; }

  bool contains(EdgeId e) const {
    return in_h_[static_cast<std::size_t>(e)] != 0;
  }
  bool is_reinforced(EdgeId e) const {
    return is_reinf_[static_cast<std::size_t>(e)] != 0;
  }

  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(edges_.size());
  }
  /// r(n).
  std::int64_t num_reinforced() const {
    return static_cast<std::int64_t>(reinforced_.size());
  }
  /// b(n) = |E(H)| − r(n).
  std::int64_t num_backup() const { return num_edges() - num_reinforced(); }

  /// Total monetary cost under prices (B, R) — the paper's B·b + R·r.
  double cost(double backup_price, double reinforce_price) const {
    return backup_price * static_cast<double>(num_backup()) +
           reinforce_price * static_cast<double>(num_reinforced());
  }

  /// Hop distances from the source inside H \ {failed} (pass kInvalidEdge
  /// for the failure-free structure). O(n + m).
  std::vector<std::int32_t> distances_avoiding(EdgeId failed) const;

  /// Allocation-free variant for hot verification loops: runs the kernel
  /// into `scratch`; read distances back via scratch.dist(v).
  void distances_avoiding(EdgeId failed, BfsScratch& scratch) const;

  /// Edge-membership mask over E(G): 1 where the edge is *outside* H.
  /// (Shape required by BfsBans::banned_edge_mask.)
  const std::vector<std::uint8_t>& complement_mask() const {
    return out_of_h_;
  }

  /// "FtBfs(n=…, |H|=…, b=…, r=…)".
  std::string summary() const;

 private:
  const Graph* g_;
  Vertex source_;
  FaultClass fault_class_;
  std::vector<EdgeId> edges_;
  std::vector<EdgeId> reinforced_;
  std::vector<EdgeId> tree_edges_;
  std::vector<std::uint8_t> in_h_;      // per EdgeId
  std::vector<std::uint8_t> is_reinf_;  // per EdgeId
  std::vector<std::uint8_t> out_of_h_;  // per EdgeId (== !in_h_)
};

}  // namespace ftb
