// oracle.hpp — a single-source replacement-path distance oracle.
//
// The related-work line of the paper ([9], Grandoni–V.Williams) studies
// data structures answering dist(s, v, G \ {e}) queries. The engine's
// tables already hold everything needed: this thin wrapper exposes O(1)
// distance queries and O(len) path queries, and is what the failure
// simulator uses as ground truth.
#pragma once

#include "src/core/replacement.hpp"

namespace ftb {

/// O(1) dist(s,v,G\{e}) queries on top of a ReplacementPathEngine.
class ReplacementOracle {
 public:
  explicit ReplacementOracle(const ReplacementPathEngine& engine)
      : engine_(&engine) {}

  /// dist(s, v, G \ {e}); kInfHops if the failure disconnects v.
  std::int32_t distance(Vertex v, EdgeId failed) const {
    return engine_->replacement_dist(v, failed);
  }

  /// dist(s, v, G) (no failure).
  std::int32_t distance(Vertex v) const { return engine_->tree().depth(v); }

  /// A shortest s→v path avoiding `failed` (empty if disconnected).
  std::vector<Vertex> path(Vertex v, EdgeId failed) const {
    if (distance(v, failed) >= kInfHops) return {};
    return engine_->replacement_path(v, failed);
  }

  const ReplacementPathEngine& engine() const { return *engine_; }

 private:
  const ReplacementPathEngine* engine_;
};

}  // namespace ftb
