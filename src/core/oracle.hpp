// oracle.hpp — single-source replacement-path distance oracles.
//
// The related-work line of the paper ([9], Grandoni–V.Williams) studies
// data structures answering dist(s, v, G \ {e}) queries. The engine's
// tables already hold everything needed — for either fault model: this
// thin wrapper exposes O(1) distance queries and O(len) path queries, and
// is what the failure simulator uses as ground truth.
#pragma once

#include "src/core/fault_model.hpp"
#include "src/core/replacement.hpp"
#include "src/core/vertex_ftbfs.hpp"

namespace ftb {

/// O(1) dist(s,v,G\{fault}) queries on top of a FaultReplacementEngine.
template <class Model>
class FaultOracle {
 public:
  using FaultId = typename Model::FaultId;

  explicit FaultOracle(const FaultReplacementEngine<Model>& engine)
      : engine_(&engine) {}

  /// dist(s, v, G \ {fault}); kInfHops if the failure disconnects v.
  std::int32_t distance(Vertex v, FaultId failed) const {
    return engine_->replacement_dist(v, failed);
  }

  /// dist(s, v, G) (no failure).
  std::int32_t distance(Vertex v) const { return engine_->tree().depth(v); }

  /// A shortest s→v path avoiding the failure (empty if disconnected).
  /// Uncovered pairs need Config::collect_detours on the engine.
  std::vector<Vertex> path(Vertex v, FaultId failed) const {
    if (distance(v, failed) >= kInfHops) return {};
    return engine_->replacement_path(v, failed);
  }

  const FaultReplacementEngine<Model>& engine() const { return *engine_; }

 private:
  const FaultReplacementEngine<Model>* engine_;
};

/// The historical edge-fault name.
using ReplacementOracle = FaultOracle<EdgeFault>;
/// Its vertex-fault sibling: O(1) dist(s, v, G \ {x}) queries.
using VertexReplacementOracle = FaultOracle<VertexFault>;

}  // namespace ftb
