// epsilon_ftbfs.hpp — the paper's primary contribution: the ε FT-BFS
// construction of Section 3 (Theorem 3.1).
//
// Given ε ∈ [0,1], builds a (b,r) FT-BFS structure with
//   b(n) = O(min{ 1/ε · n^{1+ε} · log n , n^{3/2} })   backup edges and
//   r(n) = O(1/ε · n^{1-ε} · log n)                    reinforced edges.
//
// Pipeline (mirrors the paper's phases; see DESIGN.md for the mapping):
//   S0  replacement-path engine: covered/uncovered pairs, canonical
//       detours, last edges (core/replacement.hpp);
//   S1  (≁)-interference rounds: K = ⌈1/ε⌉+2 iterations of type-A/B/C
//       classification; per vertex and type the last edges of the pairs
//       protecting the deepest failing edges are added until ⌈n^ε⌉
//       distinct last edges; type-C pairs accumulate into (∼)-sets;
//   S2  (∼)-sets: heavy-path decomposition TD (S2.0); glue-edge last
//       edges (S2.1); per (∼)-set and terminal, the exponential-halving
//       segment decomposition of π(s,v) with light-segment flushes and
//       per-segment first-edge pairs (S2.2); per decomposition path ψ
//       crossing π(s,v), upmost-edge and boundary-segment additions under
//       the ⌈n^ε⌉ threshold (S2.3);
//   F   reinforcement: every tree edge that is still last-unprotected
//       becomes reinforced. Observation 2.2 then *guarantees* that every
//       non-reinforced edge is protected — the structure is correct by
//       construction; the paper's analysis is what bounds its size.
//
// Dispatch at the ends of the tradeoff: ε = 0 reinforces T0 outright;
// ε ≥ 1/2 falls back to the ESA'13 baseline (r = 0, b = O(n^{3/2})), as
// in the proof of Theorem 3.1.
#pragma once

#include <cstdint>

#include "src/core/structure.hpp"
#include "src/util/check.hpp"
#include "src/util/thread_pool.hpp"

namespace ftb {

struct CanonicalSp;  // canonical_bfs.hpp

struct EpsilonOptions {
  /// The tradeoff exponent ε ∈ [0, 1].
  double eps = 0.25;
  /// Seed of the tie-breaking weight assignment W.
  std::uint64_t weight_seed = 0x5EED0001ULL;
  ThreadPool* pool = nullptr;  // nullptr = global pool

  /// Theorem 3.1 dispatch: with ε ≥ 1/2 run the ESA'13 baseline instead of
  /// S1/S2 (the n^{3/2} branch of the min). Disable to force S1/S2 at any ε
  /// (ablation E9).
  bool baseline_for_large_eps = true;

  /// 0 → the paper's K = ⌈1/ε⌉ + 2 (capped at 64). Ablation knob.
  std::int32_t k_rounds_override = 0;
  /// Scales the ⌈n^ε⌉ threshold. Ablation knob.
  double threshold_scale = 1.0;
  /// Skip the light-segment flush of Sub-Phase S2.2. Ablation knob.
  bool disable_s2_light_flush = false;
  /// Skip the tree-decomposition crossings of Sub-Phase S2.3. Ablation knob.
  bool disable_s2_crossings = false;

  /// Run Phase S0 on the naive reference kernels instead of the
  /// direction-optimizing scratch-arena kernels. The produced structure is
  /// bit-identical; this is the bench baseline / differential-testing knob.
  bool reference_kernel = false;

  /// Multi-source builds (σ ≥ 2) fuse the per-source canonical hop phases
  /// into one bit-parallel sweep (multi_source_bfs_kernel.hpp). Off = run σ
  /// scalar passes — the reference_kernel-style escape hatch; the produced
  /// structures are bit-identical either way. Single-source builds ignore
  /// the knob.
  bool bit_parallel = true;

  /// Internal fusion seam: adopt these already-computed canonical labels
  /// (exactly canonical_sp(g, weights, source) for this impl's weight seed)
  /// instead of paying the O(m) canonical BFS. Set by the multi-source
  /// pipelines after the fused sweep; must outlive the call.
  const CanonicalSp* prebuilt_sp = nullptr;
};

/// Construction telemetry — one row of every benchmark table.
struct EpsilonStats {
  std::int64_t n = 0, m = 0;
  double eps = 0;
  std::int32_t k_rounds = 0;
  std::int64_t threshold = 0;          // ⌈n^ε⌉ after scaling
  bool used_baseline = false;          // ε ≥ 1/2 dispatch taken

  std::int64_t pairs_total = 0;        // all ⟨v,e⟩ with e ∈ π(s,v)
  std::int64_t pairs_covered = 0;
  std::int64_t pairs_uncovered = 0;
  std::int64_t i1_size = 0, i2_size = 0;

  std::int64_t s1_added_edges = 0;     // distinct last edges added in S1
  std::int64_t s1_leftover_pairs = 0;  // pairs surviving K rounds (Lemma
                                       // 4.10 predicts 0)
  std::int64_t num_csets = 0;          // (∼)-sets handed to S2
  std::int64_t s2_glue_added = 0;      // S2.1 additions
  std::int64_t s2_added_edges = 0;     // S2.2+S2.3 additions

  std::int64_t structure_edges = 0;    // |E(H)|
  std::int64_t backup = 0;             // b(n)
  std::int64_t reinforced = 0;         // r(n)

  double seconds_engine = 0;
  double seconds_interference = 0;
  double seconds_s1 = 0;
  double seconds_s2 = 0;
  double seconds_total = 0;
};

struct EpsilonResult {
  FtBfsStructure structure;
  EpsilonStats stats;
};

namespace detail {
/// The ε pipeline itself — what ftb::api::build dispatches to for the edge
/// model. Validates (ε, source) through validate.hpp, so every entry point
/// rejects bad inputs with the same CheckError shape.
EpsilonResult build_epsilon_ftbfs_impl(const Graph& g, Vertex source,
                                       const EpsilonOptions& opts);
}  // namespace detail

/// Builds the ε FT-BFS structure for (g, source).
/// Deprecated: use ftb::api::build(graph, BuildSpec) — the facade reaches
/// this pipeline with fault_model = kEdge and a single source.
FTB_DEPRECATED("use ftb::api::build(graph, BuildSpec)")
EpsilonResult build_epsilon_ftbfs(const Graph& g, Vertex source,
                                  const EpsilonOptions& opts = {});

/// Theorem 3.1's backup bound min{1/ε·n^{1+ε}·log n, n^{3/2}} (the Õ
/// envelope benches normalize against).
double theorem_backup_bound(std::int64_t n, double eps);

/// Theorem 3.1's reinforcement bound 1/ε·n^{1-ε}·log n (0 at ε ≥ 1/2 where
/// the baseline takes over, n at ε = 0).
double theorem_reinforce_bound(std::int64_t n, double eps);

}  // namespace ftb
