#include "src/core/ftbfs.hpp"

#include "src/core/validate.hpp"

namespace ftb {

FtBfsStructure build_ftbfs(const ReplacementPathEngine& engine) {
  const BfsTree& tree = engine.tree();
  std::vector<EdgeId> edges = tree.tree_edges();
  for (const UncoveredPair& p : engine.uncovered_pairs()) {
    edges.push_back(p.last_edge);
  }
  return FtBfsStructure(tree.graph(), tree.source(), std::move(edges),
                        /*reinforced=*/{}, tree.tree_edges());
}

FtBfsStructure detail::build_ftbfs_impl(const Graph& g, Vertex source,
                                        const FtBfsOptions& opts) {
  detail::check_source(g, source);
  const EdgeWeights weights = EdgeWeights::uniform_random(g, opts.weight_seed);
  const BfsTree tree = opts.prebuilt_sp != nullptr
                           ? BfsTree(g, weights, source,
                                     CanonicalSp(*opts.prebuilt_sp))
                           : BfsTree(g, weights, source);
  ReplacementPathEngine::Config cfg;
  cfg.collect_detours = false;  // the baseline only needs last edges
  cfg.pool = opts.pool;
  cfg.reference_kernel = opts.reference_kernel;
  const ReplacementPathEngine engine(tree, cfg);
  return build_ftbfs(engine);
}

FtBfsStructure detail::build_reinforced_tree_impl(const Graph& g,
                                                  Vertex source,
                                                  const FtBfsOptions& opts) {
  detail::check_source(g, source);
  const EdgeWeights weights = EdgeWeights::uniform_random(g, opts.weight_seed);
  const BfsTree tree(g, weights, source);
  std::vector<EdgeId> edges = tree.tree_edges();
  std::vector<EdgeId> reinforced = tree.tree_edges();
  return FtBfsStructure(g, source, std::move(edges), std::move(reinforced),
                        tree.tree_edges());
}

FtBfsStructure build_ftbfs(const Graph& g, Vertex source,
                           const FtBfsOptions& opts) {
  return detail::build_ftbfs_impl(g, source, opts);
}

FtBfsStructure build_reinforced_tree(const Graph& g, Vertex source,
                                     const FtBfsOptions& opts) {
  return detail::build_reinforced_tree_impl(g, source, opts);
}

}  // namespace ftb
