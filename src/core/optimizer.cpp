#include "src/core/optimizer.hpp"

#include <algorithm>
#include <queue>

#include "src/graph/bfs_tree.hpp"

namespace ftb {

GreedyFrontier::GreedyFrontier(const Graph& g, Vertex source, Config cfg)
    : g_(&g), source_(source) {
  const EdgeWeights weights = EdgeWeights::uniform_random(g, cfg.weight_seed);
  const BfsTree tree(g, weights, source);
  ReplacementPathEngine::Config ecfg;
  ecfg.collect_detours = false;
  ecfg.pool = cfg.pool;
  const ReplacementPathEngine engine(tree, ecfg);

  tree_edges_ = tree.tree_edges();
  const std::size_t nt = tree_edges_.size();
  tree_index_.assign(static_cast<std::size_t>(g.num_edges()), -1);
  for (std::size_t i = 0; i < nt; ++i) {
    tree_index_[static_cast<std::size_t>(tree_edges_[i])] =
        static_cast<std::int32_t>(i);
  }

  // needed(e): deduplicated last edges per tree edge.
  needed_.assign(nt, {});
  for (const UncoveredPair& p : engine.uncovered_pairs()) {
    const std::int32_t ti = tree_index_[static_cast<std::size_t>(p.e)];
    FTB_DCHECK(ti >= 0);
    needed_[static_cast<std::size_t>(ti)].push_back(p.last_edge);
  }
  for (auto& v : needed_) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  // users(le): how many distinct tree edges still require last edge le.
  std::vector<std::int32_t> users(static_cast<std::size_t>(g.num_edges()), 0);
  std::int64_t live_last_edges = 0;  // |⋃ needed(e)| over unreinforced e
  for (const auto& v : needed_) {
    for (const EdgeId le : v) {
      if (users[static_cast<std::size_t>(le)]++ == 0) ++live_last_edges;
    }
  }

  // Lazy greedy: priority = 1 + #{le ∈ needed(e) : users(le) == 1}.
  auto saving_of = [&](std::size_t ti) {
    std::int64_t s = 1;  // the edge's own backup slot
    for (const EdgeId le : needed_[ti]) {
      if (users[static_cast<std::size_t>(le)] == 1) ++s;
    }
    return s;
  };
  using Entry = std::pair<std::int64_t, std::int32_t>;  // (saving, ti)
  std::priority_queue<Entry> heap;
  for (std::size_t ti = 0; ti < nt; ++ti) {
    heap.emplace(saving_of(ti), static_cast<std::int32_t>(ti));
  }

  std::vector<std::uint8_t> reinforced(nt, 0);
  points_.clear();
  points_.reserve(nt + 1);
  std::int64_t b = static_cast<std::int64_t>(nt) + live_last_edges;
  points_.push_back(FrontierPoint{0, b});
  order_.clear();
  order_.reserve(nt);

  while (!heap.empty()) {
    const auto [claimed, ti] = heap.top();
    heap.pop();
    if (reinforced[static_cast<std::size_t>(ti)]) continue;
    const std::int64_t actual = saving_of(static_cast<std::size_t>(ti));
    if (actual != claimed) {
      heap.emplace(actual, ti);  // stale entry — re-insert and retry
      continue;
    }
    reinforced[static_cast<std::size_t>(ti)] = 1;
    order_.push_back(tree_edges_[static_cast<std::size_t>(ti)]);
    b -= actual;
    for (const EdgeId le : needed_[static_cast<std::size_t>(ti)]) {
      --users[static_cast<std::size_t>(le)];
    }
    points_.push_back(
        FrontierPoint{static_cast<std::int64_t>(order_.size()), b});
  }
  FTB_CHECK(b == 0);  // everything reinforced → the bare reinforced tree
}

FtBfsStructure GreedyFrontier::materialize(std::int64_t r) const {
  FTB_CHECK(r >= 0 && r <= static_cast<std::int64_t>(order_.size()));
  std::vector<std::uint8_t> is_reinforced(
      static_cast<std::size_t>(g_->num_edges()), 0);
  std::vector<EdgeId> reinforced(order_.begin(), order_.begin() + r);
  for (const EdgeId e : reinforced) {
    is_reinforced[static_cast<std::size_t>(e)] = 1;
  }
  std::vector<EdgeId> edges = tree_edges_;
  for (std::size_t ti = 0; ti < tree_edges_.size(); ++ti) {
    if (is_reinforced[static_cast<std::size_t>(tree_edges_[ti])]) continue;
    for (const EdgeId le : needed_[ti]) edges.push_back(le);
  }
  return FtBfsStructure(*g_, source_, std::move(edges), std::move(reinforced),
                        tree_edges_);
}

FtBfsStructure GreedyFrontier::design_max_reinforced(
    std::int64_t max_reinforced) const {
  FTB_CHECK_MSG(max_reinforced >= 0, "negative reinforcement budget");
  const std::int64_t r =
      std::min<std::int64_t>(max_reinforced,
                             static_cast<std::int64_t>(order_.size()));
  return materialize(r);
}

FtBfsStructure GreedyFrontier::design_max_backup(
    std::int64_t max_backup) const {
  FTB_CHECK_MSG(max_backup >= 0, "negative backup budget");
  for (std::int64_t r = 0; r < static_cast<std::int64_t>(points_.size());
       ++r) {
    if (points_[static_cast<std::size_t>(r)].backup <= max_backup) {
      return materialize(r);
    }
  }
  // Unreachable: the frontier always ends at b == 0.
  return materialize(static_cast<std::int64_t>(order_.size()));
}

}  // namespace ftb
