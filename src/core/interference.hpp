// interference.hpp — the detour-interference machinery of Section 3.1.
//
// Two uncovered pairs ⟨v,e⟩, ⟨t,e'⟩ with v ≠ t *interfere* (Eq. (1)) when
// their detours share a vertex internal to both. Interference splits by the
// tree relation of the protected edges:
//   * e ≁ e' (failing edges on no common root path) — the (≁)-interference
//     handled by Phase S1;
//   * e ∼ e'  — the (∼)-interference handled by Phase S2.
//
// Only the (≁) side needs an explicit adjacency structure: Phase S1's
// type-A/B/C classification walks I≁(⟨v,e⟩) ∩ P_i, and I1 is exactly the
// set of pairs with I≁ ≠ ∅ (everything else forms the first (∼)-set I2).
//
// π-intersection (Fig. 2): P_{v,e} π-intersects P_{t,e'} when D(P_{v,e})
// touches π(LCA(v,t), t) \ {LCA(v,t)} — i.e. some detour vertex z is an
// ancestor-or-equal of t strictly deeper than LCA(v,t). Note the relation
// is *not* symmetric. We precompute it per adjacency entry.
//
// Index construction: an inverted index from internal detour vertices to
// pair ids; two pairs interfere iff they co-occur in some bucket (internal
// vertices exclude the detour endpoints, which is exactly the exclusion
// set of Eq. (1)).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/replacement.hpp"
#include "src/graph/lca.hpp"

namespace ftb {

/// Immutable (≁)-interference adjacency over the engine's uncovered pairs.
class InterferenceIndex {
 public:
  struct Config {
    /// Safety valve against quadratic bucket blowup: buckets larger than
    /// this are truncated (counted in stats.truncated_buckets). Truncation
    /// can only move pairs between phases — the final structure stays
    /// correct because reinforcement is recomputed from scratch at the end.
    std::int32_t max_bucket = 1 << 14;
  };

  InterferenceIndex(const ReplacementPathEngine& engine, const LcaIndex& lca)
      : InterferenceIndex(engine, lca, Config()) {}
  InterferenceIndex(const ReplacementPathEngine& engine, const LcaIndex& lca,
                    Config cfg);

  /// Pair ids q ∈ I≁(p): different terminal, interfering detours, e ≁ e'.
  std::span<const std::int32_t> neighbors(std::int32_t pair_id) const;

  /// Whether P_p π-intersects P_q; only defined for q ∈ neighbors(p).
  /// (Parallel array to neighbors(p).)
  std::span<const std::uint8_t> pi_intersects_flags(std::int32_t pair_id) const;

  /// Recomputes π-intersection from scratch (used by tests to cross-check
  /// the precomputed flags). O(|D(P_p)|).
  bool pi_intersects(std::int32_t p, std::int32_t q) const;

  /// I1 = pairs with I≁ ≠ ∅ (Phase S1 input), ascending pair ids.
  std::vector<std::int32_t> i1() const;
  /// I2 = UP \ I1 — the first (∼)-set, ascending pair ids.
  std::vector<std::int32_t> i2() const;

  std::int64_t num_pairs() const {
    return static_cast<std::int64_t>(adj_offset_.size()) - 1;
  }

  struct Stats {
    std::int64_t adjacency_entries = 0;  // Σ |I≁(p)|
    std::int64_t index_vertices = 0;     // distinct internal detour vertices
    std::int64_t truncated_buckets = 0;
    double seconds_build = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  const ReplacementPathEngine* engine_;
  const LcaIndex* lca_;

  // CSR adjacency: neighbors of pair p are adj_[adj_offset_[p] ..).
  std::vector<std::int64_t> adj_offset_;
  std::vector<std::int32_t> adj_;
  std::vector<std::uint8_t> pi_flags_;  // parallel to adj_

  Stats stats_;
};

}  // namespace ftb
