#include "src/core/structure_oracle.hpp"

#include <algorithm>

namespace ftb {

template <class Model>
FaultStructureOracle<Model>::FaultStructureOracle(
    const FtBfsStructure& h, const FaultReplacementEngine<Model>& engine)
    : h_(&h), oracle_(engine) {
  FTB_CHECK_MSG(&h.graph() == &engine.graph(),
                "structure and engine bound to different graphs");
  FTB_CHECK_MSG(h.source() == engine.tree().source(),
                "structure and engine have different sources");
  // Same tree ⇒ same edge set (both are sorted-comparable).
  std::vector<EdgeId> a = h.tree_edges();
  std::vector<EdgeId> b = engine.tree().tree_edges();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  FTB_CHECK_MSG(a == b, "structure and engine built around different trees");
}

template <class Model>
std::int32_t FaultStructureOracle<Model>::query(Vertex v,
                                                FaultId failed) const {
  if constexpr (Model::kClass == FaultClass::kEdge) {
    FTB_CHECK_MSG(!h_->is_reinforced(failed),
                  "edge " << failed
                          << " is reinforced — it cannot fail in the model "
                             "(use query_unchecked for what-if analysis)");
  }
  // The FT-BFS contract: dist(s,v,H\{fault}) == dist(s,v,G\{fault}) — an
  // O(1) table lookup in the engine.
  return oracle_.distance(v, failed);
}

template <class Model>
std::int32_t FaultStructureOracle<Model>::query_unchecked(
    Vertex v, FaultId failed) const {
  if constexpr (Model::kClass == FaultClass::kEdge) {
    if (!h_->is_reinforced(failed)) return query(v, failed);
    // Out-of-model what-if: literal BFS on H \ {failed}, cached per failure
    // so a sweep over all vertices pays one traversal.
    if (scratch_fault_ != failed) {
      h_->distances_avoiding(failed, scratch_);
      scratch_fault_ = failed;
    }
    return scratch_.dist(v);
  } else {
    // Every non-source vertex is in-model: nothing to fall back to.
    return query(v, failed);
  }
}

template class FaultStructureOracle<EdgeFault>;
template class FaultStructureOracle<VertexFault>;

}  // namespace ftb
