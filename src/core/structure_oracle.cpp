#include "src/core/structure_oracle.hpp"

#include <algorithm>

namespace ftb {

StructureOracle::StructureOracle(const FtBfsStructure& h,
                                 const ReplacementPathEngine& engine)
    : h_(&h), oracle_(engine) {
  FTB_CHECK_MSG(&h.graph() == &engine.graph(),
                "structure and engine bound to different graphs");
  FTB_CHECK_MSG(h.source() == engine.tree().source(),
                "structure and engine have different sources");
  // Same tree ⇒ same edge set (both are sorted-comparable).
  std::vector<EdgeId> a = h.tree_edges();
  std::vector<EdgeId> b = engine.tree().tree_edges();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  FTB_CHECK_MSG(a == b, "structure and engine built around different trees");
}

std::int32_t StructureOracle::query(Vertex v, EdgeId failed) const {
  FTB_CHECK_MSG(!h_->is_reinforced(failed),
                "edge " << failed
                        << " is reinforced — it cannot fail in the model "
                           "(use query_unchecked for what-if analysis)");
  // The FT-BFS contract: dist(s,v,H\{e}) == dist(s,v,G\{e}) — an O(1)
  // table lookup in the engine.
  return oracle_.distance(v, failed);
}

std::int32_t StructureOracle::query_unchecked(Vertex v, EdgeId failed) const {
  if (!h_->is_reinforced(failed)) return query(v, failed);
  return h_->distances_avoiding(failed)[static_cast<std::size_t>(v)];
}

}  // namespace ftb
