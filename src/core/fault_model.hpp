// fault_model.hpp — the fault-model policy layer behind Phase S0.
//
// The paper's companion setting (Parter–Peleg ESA'13) treats edge and
// vertex faults with the same machinery, and every construction in this
// library consumes the same S0 artifacts either way: per-failure distance
// tables, the covered/uncovered classification, and the canonical
// divergence/detour metadata of the uncovered pairs. The two historical
// engines (ReplacementPathEngine for edge faults, VertexReplacementEngine
// for vertex faults) were hand-copied forks of one pipeline differing only
// in a handful of policy decisions. This header makes those decisions an
// explicit, compile-time policy:
//
//   * FaultId            — what fails (EdgeId vs Vertex);
//   * fault enumeration  — which tree sites seed a distance table (every
//                          tree edge, keyed by its lower endpoint, vs every
//                          internal tree vertex);
//   * table seeding      — how dist_sweep / the BFS kernel exclude the
//                          fault (banned edge vs banned-vertex mask);
//   * position range     — which path positions i of π(s,v) = u_0..u_k can
//                          fail (edges: i ∈ [0,k) for (u_i,u_{i+1});
//                          vertices: i ∈ [1,k) for u_i, excluding s and v);
//   * divergence range   — how close to the fault a canonical replacement
//                          path may diverge (edges: j ≤ i; vertices:
//                          j ≤ i−1, strictly above the failed vertex).
//
// FaultReplacementEngine<Model> (declared below, defined once in
// fault_model.cpp) is the single S0 engine; replacement.hpp and
// vertex_ftbfs.hpp alias it for the two models. A future fault model —
// e.g. the dual-failure setting of the PAPERS.md follow-ups — is a new
// policy struct, not a fork. docs/architecture.md walks through the
// layering.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/structure.hpp"
#include "src/graph/bfs_tree.hpp"
#include "src/util/thread_pool.hpp"

namespace ftb {

/// An uncovered (new-ending) vertex-edge pair ⟨v,e⟩ ∈ UP with the canonical
/// replacement-path metadata the constructions consume.
struct UncoveredPair {
  Vertex v = kInvalidVertex;   // terminal
  EdgeId e = kInvalidEdge;     // failing edge, e ∈ π(s,v)
  std::int32_t edge_pos = 0;   // e = (u_i, u_{i+1}) with i = edge_pos
  std::int32_t rep_dist = 0;   // dist(s, v, G \ {e})
  Vertex diverge = kInvalidVertex;  // d(P) = u_{j*}
  std::int32_t diverge_depth = 0;   // j*
  EdgeId last_edge = kInvalidEdge;  // LastE(P_{v,e}) ∉ T0, an edge into v
  std::int32_t detour_len = 0;      // |D(P)| in edges
  // Detour vertex list [diverge, ..., v]: slice of the engine's arena.
  std::int64_t detour_begin = 0;
  std::int64_t detour_end = 0;
};

/// An uncovered vertex-fault pair ⟨v, x⟩: terminal v, failing vertex
/// x = u_i internal to π(s,v), whose canonical replacement path ends with
/// a new (non-tree) edge.
struct VertexFaultPair {
  Vertex v = kInvalidVertex;        // terminal
  Vertex x = kInvalidVertex;        // failing vertex, internal to π(s,v)
  std::int32_t x_pos = 0;           // x = u_i with i = x_pos (1 ≤ i ≤ k−1)
  std::int32_t rep_dist = 0;        // dist(s, v, G \ {x})
  Vertex diverge = kInvalidVertex;  // u_{j*}, j* ≤ i−1
  std::int32_t diverge_depth = 0;
  EdgeId last_edge = kInvalidEdge;  // new-ending last edge into v
  std::int32_t detour_len = 0;      // |D(P)| in edges
  // Detour vertex list [diverge, ..., v] (when collected).
  std::int64_t detour_begin = 0;
  std::int64_t detour_end = 0;
};

/// Policy for single EDGE failures (the paper's primary model).
struct EdgeFault {
  using FaultId = EdgeId;
  using Pair = UncoveredPair;
  static constexpr FaultClass kClass = FaultClass::kEdge;
  static constexpr FaultId kNoFault = kInvalidEdge;
  /// First path position that can fail: edge (u_0, u_1) has position 0.
  static constexpr std::int32_t kFirstPos = 0;
  /// A replacement path for the failure at position i diverges at
  /// j ≤ i − kDivergeGap.
  static constexpr std::int32_t kDivergeGap = 0;
  /// Whether the failed site vertex itself must be skipped when filling
  /// distance-table rows over the affected subtree.
  static constexpr bool kSkipFailedSite = false;

  // ---- fault enumeration over the tree ---------------------------------
  // Sites are keyed by non-source preorder vertices u; the edge model's
  // fault at site u is u's parent edge (a bijection onto the tree edges).
  static bool site_active(const BfsTree& t, Vertex u) {
    (void)t;
    (void)u;
    return true;
  }
  static FaultId site_fault(const BfsTree& t, Vertex u) {
    return t.parent_edge(u);
  }

  // ---- pair plumbing ----------------------------------------------------
  static FaultId fault_at(const BfsTree& t, std::span<const Vertex> path,
                          std::int32_t i) {
    return t.parent_edge(path[static_cast<std::size_t>(i) + 1]);
  }
  static FaultId fault_of(const Pair& p) { return p.e; }
  static std::int32_t pos_of(const Pair& p) { return p.edge_pos; }
  static void set_fault(Pair& p, FaultId f, std::int32_t pos) {
    p.e = f;
    p.edge_pos = pos;
  }

  // ---- query-side geometry ----------------------------------------------
  static void validate_query(const BfsTree& t, FaultId f) {
    (void)t;
    (void)f;
  }
  /// The fault destroys the terminal itself (only possible for vertices).
  static bool hits_terminal(Vertex v, FaultId f) {
    (void)v;
    (void)f;
    return false;
  }
  /// True iff the fault lies on π(s,v) — i.e. v has a stored table row.
  static bool on_path(const BfsTree& t, FaultId f, Vertex v) {
    return t.is_tree_edge(f) && t.on_source_path(f, v);
  }
  /// Path position of the fault (valid when on_path).
  static std::int32_t fault_pos(const BfsTree& t, FaultId f) {
    return t.edge_depth(f) - 1;
  }

  // ---- traversal bans ----------------------------------------------------
  static void ban(FaultId f, BfsBans& bans, std::vector<std::uint8_t>& mask,
                  std::size_t n) {
    (void)mask;
    (void)n;
    bans.banned_edge = f;
  }
  static void unban(FaultId f, std::vector<std::uint8_t>& mask) {
    (void)f;
    (void)mask;
  }
  static EdgeId sweep_banned_edge(FaultId f) { return f; }
  static Vertex sweep_banned_vertex(FaultId f) {
    (void)f;
    return kInvalidVertex;
  }
};

/// Policy for single VERTEX failures (the companion ESA'13 setting).
struct VertexFault {
  using FaultId = Vertex;
  using Pair = VertexFaultPair;
  static constexpr FaultClass kClass = FaultClass::kVertex;
  static constexpr FaultId kNoFault = kInvalidVertex;
  /// Failing vertices are internal to π(s,v): positions i ∈ [1, k).
  static constexpr std::int32_t kFirstPos = 1;
  /// Divergence sits strictly above the failed vertex: j ≤ i − 1.
  static constexpr std::int32_t kDivergeGap = 1;
  /// subtree(x) contains x itself, whose own row does not exist.
  static constexpr bool kSkipFailedSite = true;

  // ---- fault enumeration over the tree ---------------------------------
  // Site u fails as itself; only internal vertices (with strict
  // descendants) seed a table.
  static bool site_active(const BfsTree& t, Vertex u) {
    return t.subtree_size(u) > 1;
  }
  static FaultId site_fault(const BfsTree& t, Vertex u) {
    (void)t;
    return u;
  }

  // ---- pair plumbing ----------------------------------------------------
  static FaultId fault_at(const BfsTree& t, std::span<const Vertex> path,
                          std::int32_t i) {
    (void)t;
    return path[static_cast<std::size_t>(i)];
  }
  static FaultId fault_of(const Pair& p) { return p.x; }
  static std::int32_t pos_of(const Pair& p) { return p.x_pos; }
  static void set_fault(Pair& p, FaultId f, std::int32_t pos) {
    p.x = f;
    p.x_pos = pos;
  }

  // ---- query-side geometry ----------------------------------------------
  static void validate_query(const BfsTree& t, FaultId f) {
    FTB_CHECK_MSG(f != t.source(), "the source never fails");
  }
  static bool hits_terminal(Vertex v, FaultId f) { return v == f; }
  static bool on_path(const BfsTree& t, FaultId f, Vertex v) {
    return t.reachable(f) && t.is_ancestor_or_equal(f, v);
  }
  static std::int32_t fault_pos(const BfsTree& t, FaultId f) {
    return t.depth(f);
  }

  // ---- traversal bans ----------------------------------------------------
  static void ban(FaultId f, BfsBans& bans, std::vector<std::uint8_t>& mask,
                  std::size_t n) {
    if (mask.size() < n) mask.assign(n, 0);
    mask[static_cast<std::size_t>(f)] = 1;
    bans.banned_vertex = &mask;
  }
  static void unban(FaultId f, std::vector<std::uint8_t>& mask) {
    mask[static_cast<std::size_t>(f)] = 0;
  }
  static EdgeId sweep_banned_edge(FaultId f) {
    (void)f;
    return kInvalidEdge;
  }
  static Vertex sweep_banned_vertex(FaultId f) { return f; }
};

/// The single S0 engine, generic over the fault model. Construct once per
/// (graph, source, weights); everything else reads from it.
///
/// Engine realization (see replacement.hpp's file comment and DESIGN.md for
/// the equivalence proofs; everything below holds verbatim for both models
/// with the policy hooks substituted):
///   * one replacement-distance computation per fault site gives
///     dist(s,·,G\{fault}); rows are stored only for vertices below the
///     fault (pairs with the fault on π(s,v));
///   * the covered test for ⟨v,fault⟩ reduces to: some T0-neighbor u of v,
///     not destroyed by the fault, with dist_f(u) + 1 = dist_f(v);
///   * one canonical BFS from v in the off-path graph
///     H_v = G \ (V(π(s,v)) \ {v}) yields, for every divergence candidate
///     u_j, the best detour length detlen(j) and its canonical last edge;
///     the divergence point of the pair at position i is u_{j*} with
///     j* = min{ j ≤ i − kDivergeGap : j + detlen(j) = dist_f(v) }.
/// Both sweeps are O(n·m) total and run on the thread pool.
template <class Model>
class FaultReplacementEngine {
 public:
  using FaultId = typename Model::FaultId;
  using Pair = typename Model::Pair;

  struct Config {
    /// Record detour vertex lists (needed by the interference machinery of
    /// the ε algorithm and by replacement_path(); the ESA'13 baselines can
    /// skip them).
    bool collect_detours = true;
    /// Worker pool; nullptr = ThreadPool::global().
    ThreadPool* pool = nullptr;
    /// Run the naive reference kernels (one full queue BFS per fault,
    /// materializing two-pass canonical SP per vertex) instead of the
    /// scratch-arena kernels. Differential-testing / bench baseline; the
    /// produced tables and pairs are bit-identical either way.
    bool reference_kernel = false;
    /// Distance tables via the subtree-seeded replacement sweep
    /// (dist_sweep.hpp) instead of one full kernel BFS per fault site.
    /// Ignored under reference_kernel.
    bool incremental_dist = true;
    /// Ambient first failure: the engine then computes over the PUNCTURED
    /// graph G \ {ambient} — every table row, covered test and canonical
    /// detour excludes the ambient element on top of the model's own fault.
    /// At most one of the two may be set, and the `tree` handed to the
    /// constructor must be the canonical tree of the same punctured graph
    /// (BfsTree's bans overload). This is how the dual-failure pipeline
    /// (dual_fault.hpp) reuses the single-fault engine once per first
    /// failure. Defaults reproduce the single-fault engine bit-identically.
    EdgeId ambient_banned_edge = kInvalidEdge;
    Vertex ambient_banned_vertex = kInvalidVertex;
    /// Restrict the pair plane to these terminals (empty = every vertex,
    /// the full engine). The set must be closed under `tree`'s children
    /// relation — a subtree slice qualifies, and so does a T0-subtree
    /// handed to the rebased punctured tree (re-parented vertices stay
    /// below the fault) — since the covered test reads the tree-neighbor
    /// rows of every terminal. With a
    /// restriction the engine allocates table rows only for the terminals
    /// and their parents, runs sweeps only for fault sites with a
    /// restricted terminal in their subtree (their ancestors-or-selves)
    /// and enumerates/classifies pairs only for the listed terminals, so a
    /// build costs the restricted set's tree volume (ancestor sweeps
    /// included) instead of the whole graph. uncovered_pairs() then holds
    /// exactly the full engine's pairs whose terminal is listed, and
    /// replacement_dist() is valid only for listed terminals. This is the
    /// incremental-rebase entry point of the dual-failure pipeline: per
    /// first-failure site it hands the engine the rebased punctured tree
    /// (rebase_punctured_tree) plus the affected subtree as the terminal
    /// set. The span is read during construction only.
    std::span<const Vertex> restrict_terminals = {};
  };

  explicit FaultReplacementEngine(const BfsTree& tree)
      : FaultReplacementEngine(tree, Config()) {}
  FaultReplacementEngine(const BfsTree& tree, Config cfg);

  const BfsTree& tree() const { return *tree_; }
  const Graph& graph() const { return tree_->graph(); }

  /// dist(s, v, G \ {fault}) for any vertex v and any fault. O(1):
  ///  * fault not on π(s,v)  → dist(s,v,G) (π survives);
  ///  * fault ∈ π(s,v)       → stored table row;
  ///  * disconnected / fault destroys v itself → kInfHops.
  /// Vertex model only: the source never fails (CheckError).
  std::int32_t replacement_dist(Vertex v, FaultId fault) const;

  /// All uncovered pairs, grouped by terminal v and ordered by increasing
  /// fault position within each terminal.
  const std::vector<Pair>& uncovered_pairs() const { return pairs_; }

  /// Indices (into uncovered_pairs()) of v's pairs.
  std::span<const std::int32_t> uncovered_of(Vertex v) const;

  /// The detour D(P) = [diverge, ..., v] of an uncovered pair.
  /// Requires Config::collect_detours.
  std::span<const Vertex> detour(const Pair& p) const;

  /// True iff pair ⟨v,fault⟩ has a replacement path whose last edge is in
  /// T0 (the paper's G'(v) test). Preconditions: fault ∈ π(s,v), finite
  /// replacement distance.
  bool covered(Vertex v, FaultId fault) const;

  /// Reconstructs a full canonical replacement path [s, ..., v] for any
  /// pair with finite replacement distance. For uncovered pairs this is
  /// π(s, u_{j*}) ∘ D(P) from stored metadata (requires collect_detours);
  /// for covered pairs it runs a fresh canonical BFS in G'(v) minus the
  /// fault (O(m); intended for tests/queries).
  std::vector<Vertex> replacement_path(Vertex v, FaultId fault) const;

  struct Stats {
    std::int64_t pairs_total = 0;      // all ⟨v,fault⟩ with fault ∈ π(s,v)
    std::int64_t pairs_infinite = 0;   // disconnecting failures
    std::int64_t pairs_covered = 0;
    std::int64_t pairs_uncovered = 0;
    std::int64_t detour_vertices = 0;  // arena size
    double seconds_dist_tables = 0;
    double seconds_detours = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void build_dist_tables(ThreadPool& pool);
  void build_pairs(ThreadPool& pool);

  /// Stored row index: the fault at path position i of π(s,v) lives at
  /// rows_[row_offset_[v] + i − Model::kFirstPos].
  std::int32_t table_dist(Vertex v, std::int32_t pos) const {
    return rows_[static_cast<std::size_t>(
        row_offset_[static_cast<std::size_t>(v)] + (pos - Model::kFirstPos))];
  }

  const BfsTree* tree_;
  Config cfg_;

  std::vector<std::int64_t> row_offset_;  // per vertex
  std::vector<std::int32_t> rows_;        // Σ_v (depth(v) − kFirstPos) rows

  std::vector<Pair> pairs_;
  std::vector<std::int64_t> pairs_offset_;  // per vertex, into pair_ids_
  std::vector<std::int32_t> pair_ids_;      // pair indices grouped by v
  std::vector<Vertex> detour_arena_;

  Stats stats_;
};

// The two instantiations live in fault_model.cpp.
extern template class FaultReplacementEngine<EdgeFault>;
extern template class FaultReplacementEngine<VertexFault>;

}  // namespace ftb
