#include "src/core/multi_source.hpp"

#include "src/core/validate.hpp"
#include "src/core/verifier.hpp"
#include "src/graph/multi_source_bfs_kernel.hpp"

namespace ftb {

namespace {

/// Fused canonical labels for every source, or empty when the fusion gate
/// is off (knob disabled, a single source, or a caller-supplied prebuilt
/// label set already in play). CanonicalSp is self-contained, so the local
/// weights table can die here — each per-source impl rebuilds the identical
/// table from the same seed.
std::vector<CanonicalSp> fused_source_sps(const Graph& g,
                                          const std::vector<Vertex>& sources,
                                          std::uint64_t weight_seed,
                                          bool bit_parallel,
                                          const CanonicalSp* prebuilt_sp) {
  if (!bit_parallel || sources.size() < 2 || prebuilt_sp != nullptr) {
    return {};
  }
  const EdgeWeights weights = EdgeWeights::uniform_random(g, weight_seed);
  std::vector<BfsLane> lanes(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    lanes[i].source = sources[i];
  }
  return ms_canonical_sp(g, weights, lanes);
}

}  // namespace

MultiSourceResult detail::build_epsilon_ftmbfs_impl(
    const Graph& g, const std::vector<Vertex>& sources,
    const EpsilonOptions& opts) {
  detail::check_epsilon(opts.eps);
  detail::check_sources(g, sources);

  std::vector<EdgeId> edges;
  std::vector<EdgeId> reinforced;
  std::vector<EdgeId> tree_edges;  // union of the per-source trees
  std::vector<EpsilonStats> stats;
  stats.reserve(sources.size());
  // Each per-source tree holds up to n−1 edges; reserving up front keeps
  // the tree-edge union from reallocating once per source. (The backup
  // edge union is Õ(n^{1+ε})-sized and grows amortized instead.)
  tree_edges.reserve(sources.size() *
                     static_cast<std::size_t>(g.num_vertices()));

  const std::vector<CanonicalSp> sps = fused_source_sps(
      g, sources, opts.weight_seed, opts.bit_parallel, opts.prebuilt_sp);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const Vertex s = sources[i];
    EpsilonOptions per = opts;
    if (!sps.empty()) per.prebuilt_sp = &sps[i];
    EpsilonResult res = detail::build_epsilon_ftbfs_impl(g, s, per);
    const FtBfsStructure& h = res.structure;
    edges.insert(edges.end(), h.edges().begin(), h.edges().end());
    reinforced.insert(reinforced.end(), h.reinforced().begin(),
                      h.reinforced().end());
    tree_edges.insert(tree_edges.end(), h.tree_edges().begin(),
                      h.tree_edges().end());
    stats.push_back(res.stats);
  }

  FtBfsStructure merged(g, sources.front(), std::move(edges),
                        std::move(reinforced), std::move(tree_edges));
  return MultiSourceResult{sources, std::move(merged), std::move(stats)};
}

MultiSourceResult detail::build_vertex_ftmbfs_impl(
    const Graph& g, const std::vector<Vertex>& sources,
    const VertexFtBfsOptions& opts) {
  detail::check_sources(g, sources);

  std::vector<EdgeId> edges;
  std::vector<EdgeId> tree_edges;  // union of the per-source trees
  tree_edges.reserve(sources.size() *
                     static_cast<std::size_t>(g.num_vertices()));

  const std::vector<CanonicalSp> sps = fused_source_sps(
      g, sources, opts.weight_seed, opts.bit_parallel, opts.prebuilt_sp);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const Vertex s = sources[i];
    VertexFtBfsOptions per = opts;
    if (!sps.empty()) per.prebuilt_sp = &sps[i];
    const FtBfsStructure h = detail::build_vertex_ftbfs_impl(g, s, per);
    edges.insert(edges.end(), h.edges().begin(), h.edges().end());
    tree_edges.insert(tree_edges.end(), h.tree_edges().begin(),
                      h.tree_edges().end());
  }

  FtBfsStructure merged(g, sources.front(), std::move(edges),
                        /*reinforced=*/{}, std::move(tree_edges),
                        FaultClass::kVertex);
  return MultiSourceResult{sources, std::move(merged), {}};
}

MultiSourceResult detail::build_either_ftmbfs_impl(
    const Graph& g, const std::vector<Vertex>& sources,
    const VertexFtBfsOptions& opts) {
  detail::check_sources(g, sources);

  std::vector<EdgeId> edges;
  std::vector<EdgeId> tree_edges;  // union of the per-source edge-model trees
  tree_edges.reserve(sources.size() *
                     static_cast<std::size_t>(g.num_vertices()));

  const std::vector<CanonicalSp> sps = fused_source_sps(
      g, sources, opts.weight_seed, opts.bit_parallel, opts.prebuilt_sp);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const Vertex s = sources[i];
    VertexFtBfsOptions per = opts;
    if (!sps.empty()) per.prebuilt_sp = &sps[i];
    const FtBfsStructure h = detail::build_either_ftbfs_impl(g, s, per);
    edges.insert(edges.end(), h.edges().begin(), h.edges().end());
    tree_edges.insert(tree_edges.end(), h.tree_edges().begin(),
                      h.tree_edges().end());
  }

  FtBfsStructure merged(g, sources.front(), std::move(edges),
                        /*reinforced=*/{}, std::move(tree_edges),
                        FaultClass::kEither);
  return MultiSourceResult{sources, std::move(merged), {}};
}

MultiSourceResult build_epsilon_ftmbfs(const Graph& g,
                                       const std::vector<Vertex>& sources,
                                       const EpsilonOptions& opts) {
  return detail::build_epsilon_ftmbfs_impl(g, sources, opts);
}

MultiSourceResult build_vertex_ftmbfs(const Graph& g,
                                      const std::vector<Vertex>& sources,
                                      const VertexFtBfsOptions& opts) {
  return detail::build_vertex_ftmbfs_impl(g, sources, opts);
}

std::int64_t verify_multi_source(const Graph& g, const MultiSourceResult& ms,
                                 std::int64_t max_failures_per_source) {
  std::int64_t violations = 0;
  for (const Vertex s : ms.sources) {
    // Re-anchor the union structure at source s: same edge partition, but
    // the per-source tree must be recomputed, so verify against the union
    // edge set directly through a fresh per-source view.
    // (The union contains each per-source T0, so the tree_edges of the
    // merged structure are a superset of any single tree; we hand the
    // verifier the union's tree list — every tree edge of every source is
    // in it, so all relevant failures are covered.)
    FtBfsStructure view(g, s, ms.structure.edges(), ms.structure.reinforced(),
                        ms.structure.tree_edges());
    VerifyOptions vo;
    vo.max_failures = max_failures_per_source;
    const VerifyReport rep = verify_structure(view, vo);
    violations += rep.violations;
  }
  return violations;
}

std::int64_t verify_vertex_multi_source(const Graph& g,
                                        const MultiSourceResult& ms,
                                        std::int64_t max_failures_per_source) {
  std::int64_t violations = 0;
  for (const Vertex s : ms.sources) {
    // Same re-anchoring as the edge verifier: the union edge set viewed
    // from source s; verify_vertex_structure sweeps every failing vertex
    // x ≠ s against literal BFS.
    FtBfsStructure view(g, s, ms.structure.edges(), ms.structure.reinforced(),
                        ms.structure.tree_edges(), FaultClass::kVertex);
    violations += verify_vertex_structure(view, max_failures_per_source);
  }
  return violations;
}

}  // namespace ftb
