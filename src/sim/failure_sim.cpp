#include "src/sim/failure_sim.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "src/graph/bfs_kernel.hpp"
#include "src/graph/canonical_bfs.hpp"

namespace ftb {

std::string DrillReport::to_string() const {
  std::ostringstream os;
  os << "DrillReport(drills=" << drills << ", queries=" << reachable_queries
     << ", violations=" << violations << ", disconnections=" << disconnections
     << ", max_stretch=" << max_stretch << ", avg_distance=" << avg_distance
     << ")";
  return os.str();
}

namespace {

/// Shared per-failure scoring: compares the surviving structure against the
/// surviving full network (both already swept into scratches).
void score_drill(const Graph& g, const BfsScratch& in_g,
                 const BfsScratch& in_h, Vertex skip, DrillReport& report,
                 double& dist_sum, std::int64_t& dist_count) {
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (v == skip) continue;
    const std::int32_t dg = in_g.dist(v);
    const std::int32_t dh = in_h.dist(v);
    if (dg >= kInfHops) {
      ++report.disconnections;
      continue;
    }
    ++report.reachable_queries;
    dist_sum += dh >= kInfHops ? 0 : dh;
    ++dist_count;
    if (dh != dg) {
      ++report.violations;
      const double stretch =
          dh >= kInfHops
              ? std::numeric_limits<double>::infinity()
              : (dg == 0 ? 1.0
                         : static_cast<double>(dh) / static_cast<double>(dg));
      report.max_stretch = std::max(report.max_stretch, stretch);
    }
  }
}

}  // namespace

DrillReport run_failure_drill(const FtBfsStructure& h,
                              std::int64_t num_failures, std::uint64_t seed) {
  const Graph& g = h.graph();
  const Vertex s = h.source();

  // Fault-prone edges: everything in G except the reinforced set.
  std::vector<EdgeId> prone;
  prone.reserve(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!h.is_reinforced(e)) prone.push_back(e);
  }

  Rng rng(seed);
  rng.shuffle(prone);
  if (static_cast<std::int64_t>(prone.size()) > num_failures) {
    prone.resize(static_cast<std::size_t>(num_failures));
  }

  DrillReport report;
  double dist_sum = 0;
  std::int64_t dist_count = 0;
  BfsScratch in_g, in_h;  // reused across drills — zero per-drill allocation
  for (const EdgeId failed : prone) {
    ++report.drills;
    BfsBans bans;
    bans.banned_edge = failed;
    bfs_run(g, s, bans, in_g);
    h.distances_avoiding(failed, in_h);
    score_drill(g, in_g, in_h, kInvalidVertex, report, dist_sum, dist_count);
  }
  report.avg_distance =
      dist_count > 0 ? dist_sum / static_cast<double>(dist_count) : 0.0;
  return report;
}

DrillReport run_vertex_failure_drill(const FtBfsStructure& h,
                                     std::int64_t num_failures,
                                     std::uint64_t seed) {
  const Graph& g = h.graph();
  const Vertex s = h.source();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());

  // Every non-source router is fault-prone in the vertex model.
  std::vector<Vertex> prone;
  prone.reserve(n);
  for (Vertex x = 0; x < g.num_vertices(); ++x) {
    if (x != s) prone.push_back(x);
  }

  Rng rng(seed);
  rng.shuffle(prone);
  if (static_cast<std::int64_t>(prone.size()) > num_failures) {
    prone.resize(static_cast<std::size_t>(num_failures));
  }

  DrillReport report;
  double dist_sum = 0;
  std::int64_t dist_count = 0;
  BfsScratch in_g, in_h;
  std::vector<std::uint8_t> banned(n, 0);
  for (const Vertex failed : prone) {
    ++report.drills;
    banned[static_cast<std::size_t>(failed)] = 1;
    BfsBans g_bans;
    g_bans.banned_vertex = &banned;
    bfs_run(g, s, g_bans, in_g);
    BfsBans h_bans;
    h_bans.banned_vertex = &banned;
    h_bans.banned_edge_mask = &h.complement_mask();
    bfs_run(g, s, h_bans, in_h);
    banned[static_cast<std::size_t>(failed)] = 0;
    score_drill(g, in_g, in_h, failed, report, dist_sum, dist_count);
  }
  report.avg_distance =
      dist_count > 0 ? dist_sum / static_cast<double>(dist_count) : 0.0;
  return report;
}

DrillReport run_failure_drill(const FtBfsStructure& h, FaultClass model,
                              std::int64_t num_failures, std::uint64_t seed) {
  switch (model) {
    case FaultClass::kEdge:
      return run_failure_drill(h, num_failures, seed);
    case FaultClass::kVertex:
      return run_vertex_failure_drill(h, num_failures, seed);
    case FaultClass::kDual: {
      DrillReport rep = run_failure_drill(h, num_failures, seed);
      const DrillReport vrep = run_vertex_failure_drill(h, num_failures, seed);
      // Merge the two storms into one report.
      const std::int64_t q = rep.reachable_queries + vrep.reachable_queries;
      rep.avg_distance =
          q > 0 ? (rep.avg_distance * static_cast<double>(rep.reachable_queries) +
                   vrep.avg_distance *
                       static_cast<double>(vrep.reachable_queries)) /
                      static_cast<double>(q)
                : 0.0;
      rep.drills += vrep.drills;
      rep.reachable_queries = q;
      rep.violations += vrep.violations;
      rep.disconnections += vrep.disconnections;
      rep.max_stretch = std::max(rep.max_stretch, vrep.max_stretch);
      return rep;
    }
  }
  return {};
}

}  // namespace ftb
