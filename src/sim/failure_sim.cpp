#include "src/sim/failure_sim.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <span>
#include <sstream>

#include "src/api/ftbfs_api.hpp"
#include "src/core/dual_fault.hpp"
#include "src/graph/bfs_kernel.hpp"
#include "src/graph/canonical_bfs.hpp"
#include "src/io/structure_io.hpp"

namespace ftb {

std::string DrillReport::to_string() const {
  std::ostringstream os;
  os << "DrillReport(drills=" << drills << ", queries=" << reachable_queries
     << ", violations=" << violations << ", disconnections=" << disconnections
     << ", max_stretch=" << max_stretch << ", avg_distance=" << avg_distance;
  if (pair_traversals + site_oracle_hits + pair_cache_hits +
          pair_cache_misses >
      0) {
    os << ", pair_traversals=" << pair_traversals
       << ", site_oracle_hits=" << site_oracle_hits
       << ", pair_cache_hits=" << pair_cache_hits
       << ", pair_cache_misses=" << pair_cache_misses;
  }
  os << ")";
  return os.str();
}

namespace {

/// One (surviving-graph, surviving-structure) distance comparison folded
/// into the report — the single scoring rule every drill flavor shares.
void score_pair(std::int32_t dg, std::int32_t dh, DrillReport& report,
                double& dist_sum, std::int64_t& dist_count) {
  if (dg >= kInfHops) {
    ++report.disconnections;
    return;
  }
  ++report.reachable_queries;
  dist_sum += dh >= kInfHops ? 0 : dh;
  ++dist_count;
  if (dh != dg) {
    ++report.violations;
    const double stretch =
        dh >= kInfHops
            ? std::numeric_limits<double>::infinity()
            : (dg == 0 ? 1.0
                       : static_cast<double>(dh) / static_cast<double>(dg));
    report.max_stretch = std::max(report.max_stretch, stretch);
  }
}

/// Shared per-failure scoring: compares the surviving structure against the
/// surviving full network (both already swept into scratches).
void score_drill(const Graph& g, const BfsScratch& in_g,
                 const BfsScratch& in_h, Vertex skip, DrillReport& report,
                 double& dist_sum, std::int64_t& dist_count) {
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (v == skip) continue;
    score_pair(in_g.dist(v), in_h.dist(v), report, dist_sum, dist_count);
  }
}

/// The edge storm: `num_failures` fault-prone edges (everything except E'),
/// sampled without replacement when possible. One sampler for both the
/// structure-served and session-served drills, so identical seeds always
/// mean identical storms.
std::vector<EdgeId> sample_edge_storm(const FtBfsStructure& h,
                                      std::int64_t num_failures,
                                      std::uint64_t seed) {
  const Graph& g = h.graph();
  std::vector<EdgeId> prone;
  prone.reserve(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!h.is_reinforced(e)) prone.push_back(e);
  }
  Rng rng(seed);
  rng.shuffle(prone);
  if (static_cast<std::int64_t>(prone.size()) > num_failures) {
    prone.resize(static_cast<std::size_t>(num_failures));
  }
  return prone;
}

/// The vertex storm: `num_failures` non-source routers, sampled without
/// replacement when possible.
std::vector<Vertex> sample_vertex_storm(const FtBfsStructure& h,
                                        std::int64_t num_failures,
                                        std::uint64_t seed) {
  const Graph& g = h.graph();
  std::vector<Vertex> prone;
  prone.reserve(static_cast<std::size_t>(g.num_vertices()));
  for (Vertex x = 0; x < g.num_vertices(); ++x) {
    if (x != h.source()) prone.push_back(x);
  }
  Rng rng(seed);
  rng.shuffle(prone);
  if (static_cast<std::int64_t>(prone.size()) > num_failures) {
    prone.resize(static_cast<std::size_t>(num_failures));
  }
  return prone;
}

}  // namespace

namespace {

/// The dual storm: `num_failures` unordered failure PAIRS drawn from the
/// full universe (every edge, every non-source router), deterministically
/// from `seed`. Shared by the structure- and session-served dual drills.
std::vector<std::pair<DualSite, DualSite>> sample_pair_storm(
    const FtBfsStructure& h, std::int64_t num_failures, std::uint64_t seed) {
  const Graph& g = h.graph();
  std::vector<DualSite> universe;
  universe.reserve(static_cast<std::size_t>(g.num_edges()) +
                   static_cast<std::size_t>(g.num_vertices()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    universe.push_back(DualSite{FaultClass::kEdge, e});
  }
  for (Vertex x = 0; x < g.num_vertices(); ++x) {
    if (x != h.source()) universe.push_back(DualSite{FaultClass::kVertex, x});
  }
  Rng rng(seed);
  std::vector<std::pair<DualSite, DualSite>> storm;
  storm.reserve(static_cast<std::size_t>(num_failures));
  for (std::int64_t i = 0; i < num_failures; ++i) {
    DualSite a = universe[rng.next_below(universe.size())];
    DualSite b = universe[rng.next_below(universe.size())];
    if (b < a) std::swap(a, b);
    storm.emplace_back(a, b);
  }
  return storm;
}

}  // namespace

/// Dual-failure drill against the structure alone: every sampled pair is
/// played build-then-verify style — brute-force two-failure BFS of the
/// surviving network vs BFS of the surviving structure.
DrillReport run_dual_failure_drill(const FtBfsStructure& h,
                                   std::int64_t num_failures,
                                   std::uint64_t seed) {
  const Graph& g = h.graph();
  const Vertex s = h.source();
  const auto storm = sample_pair_storm(h, num_failures, seed);

  DrillReport report;
  double dist_sum = 0;
  std::int64_t dist_count = 0;
  BfsScratch in_g, in_h;
  for (const auto& [f1, f2] : storm) {
    ++report.drills;
    dual_bruteforce_bfs(g, s, f1, f2, in_g);
    dual_structure_bfs(h, f1, f2, in_h);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if ((f1.kind == FaultClass::kVertex && v == f1.id) ||
          (f2.kind == FaultClass::kVertex && v == f2.id)) {
        continue;  // destroyed router
      }
      score_pair(in_g.dist(v), in_h.dist(v), report, dist_sum, dist_count);
    }
  }
  report.avg_distance =
      dist_count > 0 ? dist_sum / static_cast<double>(dist_count) : 0.0;
  return report;
}

DrillReport run_failure_drill(const FtBfsStructure& h,
                              std::int64_t num_failures, std::uint64_t seed) {
  const Graph& g = h.graph();
  const Vertex s = h.source();
  const std::vector<EdgeId> prone = sample_edge_storm(h, num_failures, seed);

  DrillReport report;
  double dist_sum = 0;
  std::int64_t dist_count = 0;
  BfsScratch in_g, in_h;  // reused across drills — zero per-drill allocation
  for (const EdgeId failed : prone) {
    ++report.drills;
    BfsBans bans;
    bans.banned_edge = failed;
    bfs_run(g, s, bans, in_g);
    h.distances_avoiding(failed, in_h);
    score_drill(g, in_g, in_h, kInvalidVertex, report, dist_sum, dist_count);
  }
  report.avg_distance =
      dist_count > 0 ? dist_sum / static_cast<double>(dist_count) : 0.0;
  return report;
}

DrillReport run_vertex_failure_drill(const FtBfsStructure& h,
                                     std::int64_t num_failures,
                                     std::uint64_t seed) {
  const Graph& g = h.graph();
  const Vertex s = h.source();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  const std::vector<Vertex> prone =
      sample_vertex_storm(h, num_failures, seed);

  DrillReport report;
  double dist_sum = 0;
  std::int64_t dist_count = 0;
  BfsScratch in_g, in_h;
  std::vector<std::uint8_t> banned(n, 0);
  for (const Vertex failed : prone) {
    ++report.drills;
    banned[static_cast<std::size_t>(failed)] = 1;
    BfsBans g_bans;
    g_bans.banned_vertex = &banned;
    bfs_run(g, s, g_bans, in_g);
    BfsBans h_bans;
    h_bans.banned_vertex = &banned;
    h_bans.banned_edge_mask = &h.complement_mask();
    bfs_run(g, s, h_bans, in_h);
    banned[static_cast<std::size_t>(failed)] = 0;
    score_drill(g, in_g, in_h, failed, report, dist_sum, dist_count);
  }
  report.avg_distance =
      dist_count > 0 ? dist_sum / static_cast<double>(dist_count) : 0.0;
  return report;
}

namespace {

/// Merges two storms into one report (query-weighted average distance).
DrillReport merge_reports(DrillReport rep, const DrillReport& vrep) {
  const std::int64_t q = rep.reachable_queries + vrep.reachable_queries;
  rep.avg_distance =
      q > 0 ? (rep.avg_distance * static_cast<double>(rep.reachable_queries) +
               vrep.avg_distance *
                   static_cast<double>(vrep.reachable_queries)) /
                  static_cast<double>(q)
            : 0.0;
  rep.drills += vrep.drills;
  rep.reachable_queries = q;
  rep.violations += vrep.violations;
  rep.disconnections += vrep.disconnections;
  rep.max_stretch = std::max(rep.max_stretch, vrep.max_stretch);
  rep.pair_traversals += vrep.pair_traversals;
  rep.site_oracle_hits += vrep.site_oracle_hits;
  rep.pair_cache_hits += vrep.pair_cache_hits;
  rep.pair_cache_misses += vrep.pair_cache_misses;
  return rep;
}

/// Folds one batched response's serving-plane counters into the report.
void absorb_plane_counters(DrillReport& report,
                           const api::QueryResponse& resp) {
  report.pair_traversals += resp.pair_traversals;
  report.site_oracle_hits += resp.site_oracle_hits;
  report.pair_cache_hits += resp.pair_cache_hits;
  report.pair_cache_misses += resp.pair_cache_misses;
}

}  // namespace

DrillReport run_failure_drill(const FtBfsStructure& h, FaultClass model,
                              std::int64_t num_failures, std::uint64_t seed) {
  switch (model) {
    case FaultClass::kEdge:
      return run_failure_drill(h, num_failures, seed);
    case FaultClass::kVertex:
      return run_vertex_failure_drill(h, num_failures, seed);
    case FaultClass::kEither:
      return merge_reports(run_failure_drill(h, num_failures, seed),
                           run_vertex_failure_drill(h, num_failures, seed));
    case FaultClass::kDual:
      return run_dual_failure_drill(h, num_failures, seed);
  }
  return {};
}

// ---------------------------------------------------------------------------
// Session-served drills: the surviving-graph side of every comparison is a
// batched in-model query (the FT contract pins it to dist(s,·,G\{fault}),
// an O(1) engine lookup), so each drill costs one literal traversal (the
// surviving structure) instead of two.

namespace {

/// Storms are chunked so the in-flight batch (queries + results) stays
/// bounded regardless of drill count or graph size — big enough that the
/// plane's grouping and sharding still have plenty to chew on per call.
constexpr std::size_t kMaxBatchQueries = std::size_t{1} << 20;

/// The shared session-drill loop: per chunk, one batched in-model query()
/// call answers the surviving-graph side of every (failure, vertex)
/// comparison; `sweep_h(fault, in_h)` sweeps the surviving STRUCTURE for
/// one drill. EdgeId and Vertex share one integer type, so one body serves
/// both storms; the vertex storm skips the destroyed router itself.
template <class SweepH>
DrillReport run_session_storm(const api::Session& session, FaultClass kind,
                              std::span<const std::int32_t> prone,
                              SweepH&& sweep_h) {
  const Graph& g = session.graph();
  const Vertex n = g.num_vertices();
  const std::size_t chunk = std::max<std::size_t>(
      1, kMaxBatchQueries / std::max<std::size_t>(
                                1, static_cast<std::size_t>(n)));
  const bool skip_failed = kind == FaultClass::kVertex;

  DrillReport report;
  double dist_sum = 0;
  std::int64_t dist_count = 0;
  BfsScratch in_h;
  std::vector<api::Query> batch;
  for (std::size_t begin = 0; begin < prone.size(); begin += chunk) {
    const std::size_t end = std::min(prone.size(), begin + chunk);
    batch.clear();
    for (std::size_t i = begin; i < end; ++i) {
      for (Vertex v = 0; v < n; ++v) {
        api::Query q;
        q.v = v;
        q.kind = kind;
        q.fault = prone[i];
        batch.push_back(q);
      }
    }
    const api::QueryResponse resp = session.query(batch);
    FTB_CHECK_MSG(resp.refused == 0,
                  "session refused in-model drill queries — storm does not "
                  "match the session's fault model");
    absorb_plane_counters(report, resp);
    std::size_t qi = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const std::int32_t failed = prone[i];
      ++report.drills;
      sweep_h(failed, in_h);
      for (Vertex v = 0; v < n; ++v, ++qi) {
        if (skip_failed && v == failed) continue;  // destroyed router
        score_pair(resp.results[qi].dist, in_h.dist(v), report, dist_sum,
                   dist_count);
      }
    }
  }
  report.avg_distance =
      dist_count > 0 ? dist_sum / static_cast<double>(dist_count) : 0.0;
  return report;
}

DrillReport run_session_edge_drill(const api::Session& session,
                                   std::int64_t num_failures,
                                   std::uint64_t seed) {
  const FtBfsStructure& h = session.structure();
  return run_session_storm(
      session, FaultClass::kEdge, sample_edge_storm(h, num_failures, seed),
      [&](EdgeId failed, BfsScratch& in_h) {
        h.distances_avoiding(failed, in_h);
      });
}

DrillReport run_session_vertex_drill(const api::Session& session,
                                     std::int64_t num_failures,
                                     std::uint64_t seed) {
  const FtBfsStructure& h = session.structure();
  const Graph& g = h.graph();
  std::vector<std::uint8_t> banned(
      static_cast<std::size_t>(g.num_vertices()), 0);
  return run_session_storm(
      session, FaultClass::kVertex,
      sample_vertex_storm(h, num_failures, seed),
      [&](Vertex failed, BfsScratch& in_h) {
        banned[static_cast<std::size_t>(failed)] = 1;
        BfsBans h_bans;
        h_bans.banned_vertex = &banned;
        h_bans.banned_edge_mask = &h.complement_mask();
        bfs_run(g, h.source(), h_bans, in_h);
        banned[static_cast<std::size_t>(failed)] = 0;
      });
}

/// Dual-failure drill through the session plane: the surviving-network
/// side of every comparison is one batched IN-MODEL pair query (grouped by
/// distinct pair — the production serving path), the surviving-structure
/// side a literal two-failure BFS of H. Build-then-verify: any
/// disagreement is a violation in the report.
DrillReport run_session_dual_drill(const api::Session& session,
                                   std::int64_t num_failures,
                                   std::uint64_t seed) {
  const FtBfsStructure& h = session.structure();
  const Graph& g = session.graph();
  const Vertex n = g.num_vertices();
  const auto storm = sample_pair_storm(h, num_failures, seed);
  const std::size_t chunk = std::max<std::size_t>(
      1, kMaxBatchQueries / std::max<std::size_t>(
                                1, static_cast<std::size_t>(n)));

  DrillReport report;
  double dist_sum = 0;
  std::int64_t dist_count = 0;
  BfsScratch in_h;
  std::vector<api::Query> batch;
  for (std::size_t begin = 0; begin < storm.size(); begin += chunk) {
    const std::size_t end = std::min(storm.size(), begin + chunk);
    batch.clear();
    for (std::size_t i = begin; i < end; ++i) {
      const auto& [f1, f2] = storm[i];
      for (Vertex v = 0; v < n; ++v) {
        api::Query q;
        q.v = v;
        q.kind = f1.kind;
        q.fault = f1.id;
        q.kind2 = f2.kind;
        q.fault2 = f2.id;
        batch.push_back(q);
      }
    }
    const api::QueryResponse resp = session.query(batch);
    FTB_CHECK_MSG(resp.refused == 0,
                  "session refused in-model dual drill queries — storm does "
                  "not match the session's fault model");
    absorb_plane_counters(report, resp);
    std::size_t qi = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const auto& [f1, f2] = storm[i];
      ++report.drills;
      dual_structure_bfs(h, f1, f2, in_h);
      for (Vertex v = 0; v < n; ++v, ++qi) {
        if ((f1.kind == FaultClass::kVertex && v == f1.id) ||
            (f2.kind == FaultClass::kVertex && v == f2.id)) {
          continue;  // destroyed router
        }
        score_pair(resp.results[qi].dist, in_h.dist(v), report, dist_sum,
                   dist_count);
      }
    }
  }
  report.avg_distance =
      dist_count > 0 ? dist_sum / static_cast<double>(dist_count) : 0.0;
  return report;
}

}  // namespace

DrillReport run_failure_drill(const api::Session& session, FaultClass storm,
                              std::int64_t num_failures, std::uint64_t seed) {
  const FaultClass model = session.fault_model();
  const bool covers_edge = model != FaultClass::kVertex;
  const bool covers_vertex = model != FaultClass::kEdge;
  switch (storm) {
    case FaultClass::kEdge:
      FTB_CHECK_MSG(covers_edge,
                    "edge storm on a vertex-model session — drill the "
                    "structure overload instead");
      return run_session_edge_drill(session, num_failures, seed);
    case FaultClass::kVertex:
      FTB_CHECK_MSG(covers_vertex,
                    "vertex storm on an edge-model session — drill the "
                    "structure overload instead");
      return run_session_vertex_drill(session, num_failures, seed);
    case FaultClass::kEither:
      FTB_CHECK_MSG(covers_edge && covers_vertex,
                    "either storm needs a session covering both kinds");
      return merge_reports(
          run_session_edge_drill(session, num_failures, seed),
          run_session_vertex_drill(session, num_failures, seed));
    case FaultClass::kDual:
      FTB_CHECK_MSG(model == FaultClass::kDual,
                    "dual-failure storm needs a dual-model session");
      return run_session_dual_drill(session, num_failures, seed);
  }
  return {};
}

// ---------------------------------------------------------------------------
// The chaos drill: corrupt, reload, degrade, serve, verify.

std::string ChaosDrillReport::to_string() const {
  std::ostringstream os;
  os << "ChaosDrillReport(" << (healthy() ? "healthy" : "UNHEALTHY")
     << ", corrupted=" << artifact_corrupted
     << ", degraded=" << reload_degraded << ", dropped=" << dropped_sections
     << ", fsck=" << (fsck_ok ? "ok" : "FAILED") << "/" << fsck_checks
     << ", compared=" << compared_queries << ", mismatches=" << mismatches
     << ", " << drill.to_string() << ")";
  return os.str();
}

ChaosDrillReport run_chaos_drill(const Graph& g, const api::BuildSpec& spec,
                                 const std::string& scratch_path,
                                 std::int64_t num_failures,
                                 std::uint64_t seed) {
  FTB_CHECK_MSG(spec.fault_model == FaultClass::kDual,
                "chaos drill corrupts the pair-table section — it needs a "
                "dual-model spec");
  ChaosDrillReport rep;
  const api::Session fresh = api::Session::open(g, spec);
  fresh.save_v5(scratch_path);

  // Flip one seeded bit inside the pair-table payload ON DISK. The v5
  // frame declares the payload's CRC-32C, which catches every single-bit
  // error, so the tolerant reload is guaranteed to see the damage.
  std::string bytes;
  {
    std::ifstream f(scratch_path, std::ios::binary);
    FTB_CHECK_MSG(f.good(),
                  "chaos drill cannot reopen artifact " << scratch_path);
    std::ostringstream ss;
    ss << f.rdbuf();
    bytes = ss.str();
  }
  const std::size_t hdr = bytes.find("section pair-tables ");
  FTB_CHECK_MSG(hdr != std::string::npos,
                "v5 artifact carries no pair-table section to corrupt");
  const std::size_t payload = bytes.find('\n', hdr);
  FTB_CHECK_MSG(payload != std::string::npos && payload + 1 < bytes.size(),
                "v5 pair-table section carries no payload to corrupt");
  Rng rng(seed);
  const std::size_t pos =
      payload + 1 + rng.next_below(bytes.size() - (payload + 1));
  bytes[static_cast<std::size_t>(pos)] ^=
      static_cast<char>(1u << rng.next_below(8));
  rep.artifact_corrupted = true;
  {
    std::ofstream f(scratch_path, std::ios::binary | std::ios::trunc);
    f << bytes;
    FTB_CHECK_MSG(f.good(),
                  "chaos drill cannot rewrite artifact " << scratch_path);
  }

  // Tolerant reload: the damaged section must be dropped (recorded in the
  // LoadReport), never crash the load, and the session must come up in
  // degraded mode with recomputed tables.
  {
    io::ReadOptions opts;
    opts.tolerate_pair_tables = true;
    io::LoadReport lr;
    std::vector<Vertex> srcs;
    std::vector<DualSiteTable> tbls;
    (void)io::load_structure(g, scratch_path, &srcs, &tbls, opts, &lr);
    rep.dropped_sections = static_cast<std::int64_t>(lr.dropped.size());
  }
  api::SessionConfig cfg;
  cfg.weight_seed = spec.weight_seed;
  cfg.pool = spec.pool;
  const api::Session degraded = api::Session::load(g, scratch_path, cfg);
  rep.reload_degraded = degraded.degraded();
  const api::FsckReport fsck = degraded.fsck();
  rep.fsck_ok = fsck.ok;
  rep.fsck_checks = fsck.checks;

  // Serve the pair storm through BOTH sessions: every degraded answer must
  // be bit-identical to the fresh session's, and correct against
  // brute-force two-failure BFS of the surviving network.
  const FtBfsStructure& h = fresh.structure();
  const Vertex n = g.num_vertices();
  const auto storm = sample_pair_storm(h, num_failures, seed);
  const std::size_t chunk = std::max<std::size_t>(
      1, kMaxBatchQueries / std::max<std::size_t>(
                                1, static_cast<std::size_t>(n)));
  double dist_sum = 0;
  std::int64_t dist_count = 0;
  BfsScratch in_g;
  std::vector<api::Query> batch;
  for (std::size_t begin = 0; begin < storm.size(); begin += chunk) {
    const std::size_t end = std::min(storm.size(), begin + chunk);
    batch.clear();
    for (std::size_t i = begin; i < end; ++i) {
      const auto& [f1, f2] = storm[i];
      for (Vertex v = 0; v < n; ++v) {
        api::Query q;
        q.v = v;
        q.kind = f1.kind;
        q.fault = f1.id;
        q.kind2 = f2.kind;
        q.fault2 = f2.id;
        batch.push_back(q);
      }
    }
    const api::QueryResponse a = fresh.query(batch);
    const api::QueryResponse b = degraded.query(batch);
    for (std::size_t qi = 0; qi < batch.size(); ++qi) {
      ++rep.compared_queries;
      const api::QueryResult& ra = a.results[qi];
      const api::QueryResult& rb = b.results[qi];
      // A degraded session re-tags in-model pair answers kDegraded; the
      // distances themselves must not move.
      const bool outcome_ok =
          ra.outcome == rb.outcome ||
          (ra.outcome == api::QueryOutcome::kInModel &&
           rb.outcome == api::QueryOutcome::kDegraded);
      if (ra.dist != rb.dist || !outcome_ok) ++rep.mismatches;
    }
    std::size_t qi = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const auto& [f1, f2] = storm[i];
      ++rep.drill.drills;
      dual_bruteforce_bfs(g, h.source(), f1, f2, in_g);
      for (Vertex v = 0; v < n; ++v, ++qi) {
        if ((f1.kind == FaultClass::kVertex && v == f1.id) ||
            (f2.kind == FaultClass::kVertex && v == f2.id)) {
          continue;  // destroyed router
        }
        if (b.results[qi].outcome == api::QueryOutcome::kRefused) {
          continue;  // pair names the source router — refused, not served
        }
        score_pair(in_g.dist(v), b.results[qi].dist, rep.drill, dist_sum,
                   dist_count);
      }
    }
  }
  rep.drill.avg_distance =
      dist_count > 0 ? dist_sum / static_cast<double>(dist_count) : 0.0;
  return rep;
}

}  // namespace ftb
