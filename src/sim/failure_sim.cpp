#include "src/sim/failure_sim.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "src/graph/bfs_kernel.hpp"
#include "src/graph/canonical_bfs.hpp"

namespace ftb {

std::string DrillReport::to_string() const {
  std::ostringstream os;
  os << "DrillReport(drills=" << drills << ", queries=" << reachable_queries
     << ", violations=" << violations << ", disconnections=" << disconnections
     << ", max_stretch=" << max_stretch << ", avg_distance=" << avg_distance
     << ")";
  return os.str();
}

DrillReport run_failure_drill(const FtBfsStructure& h,
                              std::int64_t num_failures, std::uint64_t seed) {
  const Graph& g = h.graph();
  const Vertex s = h.source();

  // Fault-prone edges: everything in G except the reinforced set.
  std::vector<EdgeId> prone;
  prone.reserve(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!h.is_reinforced(e)) prone.push_back(e);
  }

  Rng rng(seed);
  rng.shuffle(prone);
  if (static_cast<std::int64_t>(prone.size()) > num_failures) {
    prone.resize(static_cast<std::size_t>(num_failures));
  }

  DrillReport report;
  double dist_sum = 0;
  std::int64_t dist_count = 0;
  BfsScratch in_g, in_h;  // reused across drills — zero per-drill allocation
  for (const EdgeId failed : prone) {
    ++report.drills;
    BfsBans bans;
    bans.banned_edge = failed;
    bfs_run(g, s, bans, in_g);
    h.distances_avoiding(failed, in_h);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      const std::int32_t dg = in_g.dist(v);
      const std::int32_t dh = in_h.dist(v);
      if (dg >= kInfHops) {
        ++report.disconnections;
        continue;
      }
      ++report.reachable_queries;
      dist_sum += dh >= kInfHops ? 0 : dh;
      ++dist_count;
      if (dh != dg) {
        ++report.violations;
        const double stretch =
            dh >= kInfHops
                ? std::numeric_limits<double>::infinity()
                : (dg == 0 ? 1.0
                           : static_cast<double>(dh) / static_cast<double>(dg));
        report.max_stretch = std::max(report.max_stretch, stretch);
      }
    }
  }
  report.avg_distance = dist_count > 0 ? dist_sum / static_cast<double>(dist_count)
                                       : 0.0;
  return report;
}

}  // namespace ftb
