// failure_sim.hpp — operational failure drills against a deployed
// (b,r) FT-BFS structure, for either fault model.
//
// The simulator plays the role of the network operator from the paper's
// introduction: links or routers fail one at a time (reinforced edges never
// fail, by assumption of the edge model; the source router never fails);
// after each failure it measures the service level of the surviving
// structure — distance stretch vs. the surviving *full* network — and
// aggregates a report. A correct structure always reports stretch 1 and
// zero SLA violations; the integration tests assert exactly that, and the
// failure_drill example prints the report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/structure.hpp"
#include "src/util/rng.hpp"

namespace ftb::api {
class Session;
struct BuildSpec;
}  // namespace ftb::api

namespace ftb {

struct DrillReport {
  std::int64_t drills = 0;              // failures injected
  std::int64_t reachable_queries = 0;   // (failure, vertex) pairs compared
  std::int64_t violations = 0;          // dist_H > dist_G events
  std::int64_t disconnections = 0;      // vertices cut off by the failure
                                        // (in G as well — not a violation)
  double max_stretch = 1.0;             // max dist_H / dist_G observed
  double avg_distance = 0.0;            // mean surviving distance in H

  // Serving-plane counters, summed over the drill's batched query() calls.
  // Populated by the session-served overload only (a structure-served
  // drill never touches the query plane — all four stay zero).
  std::int64_t pair_traversals = 0;     // site-restricted dual traversals
  std::int64_t site_oracle_hits = 0;    // pairs answered O(1) by site-dist
  std::int64_t pair_cache_hits = 0;     // leased-arena traversal reuse
  std::int64_t pair_cache_misses = 0;

  std::string to_string() const;
};

/// Simulates `num_failures` independent single-EDGE failures drawn
/// uniformly from the *fault-prone* edges of G (everything except E'),
/// sampling without replacement when possible. Deterministic given `seed`.
DrillReport run_failure_drill(const FtBfsStructure& h,
                              std::int64_t num_failures, std::uint64_t seed);

/// Simulates `num_failures` independent single-VERTEX failures drawn
/// uniformly from the non-source vertices, sampling without replacement
/// when possible. Deterministic given `seed`.
DrillReport run_vertex_failure_drill(const FtBfsStructure& h,
                                     std::int64_t num_failures,
                                     std::uint64_t seed);

/// Simulates `num_failures` DUAL failures — unordered pairs drawn from the
/// full universe (every edge, every non-source router) — build-then-verify
/// style: each pair is scored as brute-force two-failure BFS of the
/// surviving network vs BFS of the surviving structure. Deterministic
/// given `seed`. A correct dual structure reports zero violations.
DrillReport run_dual_failure_drill(const FtBfsStructure& h,
                                   std::int64_t num_failures,
                                   std::uint64_t seed);

/// Fault-model dispatch: edge → run_failure_drill, vertex →
/// run_vertex_failure_drill, either → both single-fault storms (reports
/// merged; `num_failures` applies to each storm separately), dual →
/// run_dual_failure_drill (pair storm).
DrillReport run_failure_drill(const FtBfsStructure& h, FaultClass model,
                              std::int64_t num_failures, std::uint64_t seed);

/// Session-served drill: same storm, same report shape and the same
/// violation semantics as the structure overloads, but the surviving-graph
/// side of every comparison comes from ONE batched in-model query() call
/// (O(1) per query off the engine tables) instead of a literal BFS of
/// G \ {fault} per drill — halving the traversals per drill and exercising
/// the production query plane. `storm` must be covered by the session's
/// fault model (CheckError otherwise); kEither runs both single-fault
/// storms and merges; kDual plays a PAIR storm whose surviving-network
/// side is answered by batched in-model dual queries (one site-restricted
/// traversal per distinct pair).
DrillReport run_failure_drill(const api::Session& session, FaultClass storm,
                              std::int64_t num_failures, std::uint64_t seed);

/// What one chaos drill observed end to end (docs/robustness.md walks the
/// scenario). `drill` is the storm as served by the DEGRADED session; a
/// healthy stack reports artifact_corrupted && reload_degraded && fsck_ok
/// && mismatches == 0 && drill.violations == 0.
struct ChaosDrillReport {
  /// The injected corruption landed in the artifact's pair-table bytes.
  bool artifact_corrupted = false;
  /// The tolerant reload dropped the damaged section and downgraded
  /// instead of refusing (Session::degraded()).
  bool reload_degraded = false;
  /// Sections the reload had to drop (from the io::LoadReport).
  std::int64_t dropped_sections = 0;
  /// Session::fsck() verdict on the degraded session.
  bool fsck_ok = false;
  std::int64_t fsck_checks = 0;
  /// Per-query comparison degraded session vs freshly built session over
  /// the whole storm batch: answers must be bit-identical.
  std::int64_t compared_queries = 0;
  std::int64_t mismatches = 0;
  /// The storm replayed through the degraded session, scored against
  /// brute-force two-failure BFS of the surviving network.
  DrillReport drill;

  bool healthy() const {
    return artifact_corrupted && reload_degraded && fsck_ok &&
           mismatches == 0 && drill.violations == 0;
  }
  std::string to_string() const;
};

/// The chaos scenario, end to end: build a session from `spec` (dual model
/// required — the degradation path under test is the pair-table section),
/// save the checksummed v5 artifact to `scratch_path`, flip one seeded bit
/// inside the pair-table payload ON DISK, reload tolerantly, fsck, then
/// replay a `num_failures`-pair storm through the degraded session —
/// verifying every answer against the fresh session (bit-identity) and
/// against brute-force BFS of the surviving network. Deterministic given
/// `seed`. The scratch file is left on disk (corrupted) for post-mortem;
/// callers own its cleanup. Throws CheckError on a non-dual spec or an
/// unwritable path.
ChaosDrillReport run_chaos_drill(const Graph& g, const api::BuildSpec& spec,
                                 const std::string& scratch_path,
                                 std::int64_t num_failures,
                                 std::uint64_t seed);

}  // namespace ftb
