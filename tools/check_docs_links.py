#!/usr/bin/env python3
"""Markdown link checker for the docs CI job.

Scans the given markdown files / directories for inline links and images
(``[text](target)``) and reference definitions (``[label]: target``) and
verifies that every RELATIVE target resolves to an existing file or
directory (anchors are stripped; ``http(s)://`` and ``mailto:`` targets are
skipped — CI must not depend on external availability). Also verifies that
every path-looking inline code reference of the form ``docs/...``,
``src/...`` or ``tools/...`` (backtick-quoted) exists, which is how stale
references to renamed headers/entry points in prose get caught.

Exit code 0 when everything resolves; 1 with a per-link report otherwise.
Usage: check_docs_links.py README.md docs [more files or dirs...]
"""
import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF_RE = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
CODEPATH_RE = re.compile(r"`((?:docs|src|tools|bench|tests|examples)/[A-Za-z0-9_./-]+)`")
EXTERNAL = ("http://", "https://", "mailto:")


def collect_markdown(paths):
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, files in os.walk(p):
                for f in sorted(files):
                    if f.endswith(".md"):
                        yield os.path.join(root, f)
        else:
            yield p


def check_file(path, repo_root):
    errors = []
    text = open(path, encoding="utf-8").read()
    base = os.path.dirname(path)
    targets = []
    for m in LINK_RE.finditer(text):
        targets.append((m.group(1), "link"))
    for m in REFDEF_RE.finditer(text):
        targets.append((m.group(1), "refdef"))
    for target, kind in targets:
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = os.path.normpath(os.path.join(base, rel))
        if not os.path.exists(resolved):
            errors.append(f"{path}: broken {kind} -> {target}")
    # Backtick-quoted repo paths in prose: `src/...`, `docs/...`, ...
    for m in CODEPATH_RE.finditer(text):
        ref = m.group(1).rstrip(".")
        # Globby or placeholder mentions (src/core/dual_fault.{hpp,cpp},
        # bench_*) are prose shorthand, not single paths.
        if any(c in ref for c in "{}*"):
            for part in expand_braces(ref):
                if not os.path.exists(os.path.join(repo_root, part)):
                    errors.append(f"{path}: stale path reference -> {ref}")
                    break
            continue
        if not os.path.exists(os.path.join(repo_root, ref)):
            errors.append(f"{path}: stale path reference -> {ref}")
    return errors


def expand_braces(ref):
    m = re.match(r"^(.*)\{([^}]*)\}(.*)$", ref)
    if not m:
        return [ref] if "*" not in ref else []
    out = []
    for alt in m.group(2).split(","):
        out.extend(expand_braces(m.group(1) + alt + m.group(3)))
    return out


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    repo_root = os.getcwd()
    errors = []
    checked = 0
    for md in collect_markdown(argv[1:]):
        checked += 1
        errors.extend(check_file(md, repo_root))
    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} broken reference(s) across {checked} file(s)")
        return 1
    print(f"checked {checked} markdown file(s): all links and path "
          "references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
