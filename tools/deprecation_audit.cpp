// deprecation_audit.cpp — the FTB_DEPRECATION_WARNINGS enforcement TU.
//
// Calls every legacy build_* wrapper once. Compiled by the CI docs job with
// FTB_ENABLE_DEPRECATION_WARNINGS defined; the job asserts that the
// compiler flags ALL SEVEN wrappers as deprecated (see the count in
// .github/workflows/ci.yml). If someone adds a legacy wrapper without
// FTB_DEPRECATED, or an attribute is dropped in a refactor, the count
// changes and the job fails — the opt-in warning can no longer rot
// silently. (The engine-reuse overloads build_ftbfs(engine) /
// build_vertex_ftbfs(engine) are deliberately NOT deprecated: they are the
// S0-reuse composition points internal pipelines build on.)
//
// This file is only ever compiled with -fsyntax-only; it is not linked
// into any target.
#include "src/core/epsilon_ftbfs.hpp"
#include "src/core/ftbfs.hpp"
#include "src/core/multi_source.hpp"
#include "src/core/vertex_ftbfs.hpp"

namespace ftb {

void deprecation_audit(const Graph& g) {
  (void)build_ftbfs(g, 0);             // 1
  (void)build_reinforced_tree(g, 0);   // 2
  (void)build_epsilon_ftbfs(g, 0);     // 3
  (void)build_vertex_ftbfs(g, 0);      // 4
  (void)build_dual_ftbfs(g, 0);        // 5 (the kEither union)
  (void)build_epsilon_ftmbfs(g, {0, 1});  // 6
  (void)build_vertex_ftmbfs(g, {0, 1});   // 7
}

}  // namespace ftb
