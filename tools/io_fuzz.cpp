// io_fuzz — corpus fuzzer for structure_io's zero-trust contract.
//
// Starts from one VALID artifact per format version (v1…v5 text plus the
// v6 binary container, each dual flavor with and without the optional
// site-dist accelerator section), applies seeded random mutations (bit
// flips, truncations, byte inserts, slice deletes/duplications, line
// splices — and, on v6, targeted directory-entry corruption,
// section-offset lies and CRC flips) and feeds every mutant to the
// matching reader (io::read_structure / io::read_structure_v6). The only
// acceptable outcomes, asserted per mutant:
//
//   * clean load — and then the parsed structure must round-trip
//     bit-identically (write → parse → write gives the same bytes, in
//     the legacy, v5 and v6 framings);
//   * CheckError — whose message must carry the byte-offset context
//     ("at byte") the io layer promises.
//
// Anything else — another exception type, a crash, a hang (CI timeout),
// a silent wrong acceptance — is a fuzz failure: the tool prints the
// version, mutant ordinal and seed (rerun with --seed to reproduce) and
// exits non-zero. Every mutant is additionally parsed in tolerant mode
// (ReadOptions::tolerate_pair_tables + tolerate_site_dist), which must
// obey the same contract.
//
//   io_fuzz [--mutations=10000] [--seed=1]
//
// The CI sanitize job runs this under ASan+UBSan, so out-of-bounds reads
// from unchecked length fields fail loudly rather than probabilistically.
#include <algorithm>
#include <exception>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "src/api/ftbfs_api.hpp"
#include "src/graph/generators.hpp"
#include "src/io/binary_io.hpp"
#include "src/io/structure_io.hpp"
#include "src/util/options.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace ftb;

struct CorpusEntry {
  int version;
  Graph graph;
  std::string bytes;  // a valid artifact of exactly `version`
};

/// One valid artifact per documented version, over small graphs (the
/// mutation budget goes to coverage of the grammar, not BFS time).
std::vector<CorpusEntry> build_corpus() {
  std::vector<CorpusEntry> corpus;

  // v1: no fault-model line (edge model by definition). The writers never
  // emit v1 anymore, so the corpus hand-frames one from a built structure
  // using the documented grammar.
  {
    Graph g = gen::random_connected(24, 60, 7);
    api::BuildSpec spec;
    const api::BuildResult res = api::build(g, spec);
    const FtBfsStructure& h = res.structure;
    std::ostringstream os;
    os << "ftbfs-structure 1\n"
       << g.num_vertices() << ' ' << h.num_edges() << ' ' << h.source()
       << '\n';
    for (const EdgeId e : h.edges()) {
      const auto [u, v] = g.edge(e);
      int flags = 0;
      if (h.is_reinforced(e)) flags |= 1;
      if (std::binary_search(h.tree_edges().begin(), h.tree_edges().end(),
                             e)) {
        flags |= 2;
      }
      os << u << ' ' << v << ' ' << flags << '\n';
    }
    corpus.push_back({1, std::move(g), os.str()});
  }

  // v2: single-source edge model, written by the library.
  {
    Graph g = gen::random_connected(24, 60, 7);
    api::BuildSpec spec;
    spec.eps = 0.4;
    const api::BuildResult res = api::build(g, spec);
    std::ostringstream os;
    io::write_structure(res.structure, os);
    corpus.push_back({2, std::move(g), os.str()});
  }

  // v3: multi-source union with a sources line.
  {
    Graph g = gen::random_connected(30, 80, 11);
    api::BuildSpec spec;
    spec.sources = {0, 7, 19};
    const api::BuildResult res = api::build(g, spec);
    std::ostringstream os;
    io::write_structure(res.structure, res.sources, os);
    corpus.push_back({3, std::move(g), os.str()});
  }

  // v4: dual-failure structure with its pair tables.
  {
    Graph g = gen::grid_graph(5, 5);
    api::BuildSpec spec;
    spec.fault_model = FaultClass::kDual;
    const api::BuildResult res = api::build(g, spec);
    std::ostringstream os;
    io::write_structure(res.structure, res.sources, res.dual_tables, os);
    corpus.push_back({4, std::move(g), os.str()});
  }

  // v5: the same dual artifact in the checksummed framing.
  {
    Graph g = gen::grid_graph(5, 5);
    api::BuildSpec spec;
    spec.fault_model = FaultClass::kDual;
    const api::BuildResult res = api::build(g, spec);
    std::ostringstream os;
    io::write_structure_v5(res.structure, res.sources, res.dual_tables, os);
    corpus.push_back({5, std::move(g), os.str()});
  }

  // v5 with the optional site-dist accelerator section: the grammar's
  // largest surface (dterm rows indexed off the pair tables' site order).
  {
    Graph g = gen::grid_graph(5, 5);
    api::BuildSpec spec;
    spec.fault_model = FaultClass::kDual;
    spec.site_dist_oracle = true;
    const api::BuildResult res = api::build(g, spec);
    std::ostringstream os;
    io::write_structure_v5(res.structure, res.sources, res.dual_tables,
                           res.dual_site_dist, os);
    corpus.push_back({5, std::move(g), os.str()});
  }

  // v6: the dual artifact in the binary container, with and without the
  // site-dist section — the directory/alignment/CRC grammar plus both
  // fixed-width payload grammars.
  for (const bool with_site_dist : {false, true}) {
    Graph g = gen::grid_graph(5, 5);
    api::BuildSpec spec;
    spec.fault_model = FaultClass::kDual;
    spec.site_dist_oracle = with_site_dist;
    const api::BuildResult res = api::build(g, spec);
    std::string bytes = io::write_structure_v6_bytes(
        res.structure, res.sources, res.dual_tables, res.dual_site_dist);
    corpus.push_back({6, std::move(g), std::move(bytes)});
  }
  return corpus;
}

/// One seeded mutant: 1–3 structural edits of the valid artifact. For the
/// v6 binary container (version >= 6) three extra targeted ops join the
/// pool: directory-entry corruption, section-offset lies and CRC flips —
/// the mutations a generic bit flip rarely lands on because the directory
/// is a tiny fraction of the file.
std::string mutate(const std::string& base, int version, Rng& rng) {
  std::string m = base;
  const std::uint64_t ops = 1 + rng.next_below(3);
  const std::uint64_t op_kinds = version >= 6 ? 9 : 6;
  for (std::uint64_t o = 0; o < ops; ++o) {
    if (m.empty()) break;
    switch (rng.next_below(op_kinds)) {
      case 0: {  // bit flip
        const std::size_t p = rng.next_below(m.size());
        m[p] = static_cast<char>(
            static_cast<unsigned char>(m[p]) ^ (1u << rng.next_below(8)));
        break;
      }
      case 1:  // truncation (storage short write)
        m.resize(rng.next_below(m.size() + 1));
        break;
      case 2: {  // random byte insert
        const std::size_t p = rng.next_below(m.size() + 1);
        m.insert(m.begin() + static_cast<std::ptrdiff_t>(p),
                 static_cast<char>(rng.next_below(256)));
        break;
      }
      case 3: {  // slice delete
        const std::size_t p = rng.next_below(m.size());
        const std::size_t len =
            1 + rng.next_below(std::min<std::size_t>(16, m.size() - p));
        m.erase(p, len);
        break;
      }
      case 4: {  // slice duplication (length lies, duplicate sections)
        const std::size_t p = rng.next_below(m.size());
        const std::size_t len =
            1 + rng.next_below(std::min<std::size_t>(64, m.size() - p));
        m.insert(p, m.substr(p, len));
        break;
      }
      case 5: {  // splice one whole line to the end (trailing garbage /
                 // duplicated section headers)
        const std::size_t p = rng.next_below(m.size());
        std::size_t start = m.rfind('\n', p);
        start = start == std::string::npos ? 0 : start + 1;
        std::size_t end = m.find('\n', p);
        end = end == std::string::npos ? m.size() : end + 1;
        m += m.substr(start, end - start);
        break;
      }
      // v6-only targeted ops. The directory lives at [64, 64 + count*40):
      // per entry {name[16], u64 offset, u64 bytes, u32 crc32c, u32 rsvd}.
      case 6: {  // directory corruption: flip a byte inside the directory
        if (m.size() <= 64) break;
        const std::size_t count =
            static_cast<unsigned char>(m[12]);  // section_count low byte
        const std::size_t dir_end =
            std::min(m.size(), 64 + std::max<std::size_t>(count, 1) * 40);
        const std::size_t p = 64 + rng.next_below(dir_end - 64);
        m[p] = static_cast<char>(
            static_cast<unsigned char>(m[p]) ^ (1u << rng.next_below(8)));
        break;
      }
      case 7: {  // section-offset lie: rewrite one entry's u64 offset
        if (m.size() <= 64) break;
        const std::size_t count =
            std::max<std::size_t>(static_cast<unsigned char>(m[12]), 1);
        const std::size_t entry = rng.next_below(count);
        const std::size_t at = 64 + entry * 40 + 16;  // offset field
        if (at + 8 > m.size()) break;
        // Lies worth telling: swap to another section's offset, point past
        // EOF, or drop the 64-byte alignment.
        std::uint64_t lie = rng.next_below(3) == 0
                                ? m.size() + rng.next_below(4096)
                                : rng.next_below(m.size() + 64);
        for (int b = 0; b < 8; ++b) {
          m[at + static_cast<std::size_t>(b)] =
              static_cast<char>(lie >> (8 * b));
        }
        break;
      }
      case 8: {  // CRC flip: directory-entry crc32c or the directory CRC
        if (m.size() <= 64) break;
        const std::size_t count =
            std::max<std::size_t>(static_cast<unsigned char>(m[12]), 1);
        std::size_t at;
        if (rng.next_below(count + 1) == count) {
          at = 16;  // header's directory_crc
        } else {
          at = 64 + rng.next_below(count) * 40 + 32;  // entry crc32c
        }
        if (at + 4 > m.size()) break;
        const std::size_t p = at + rng.next_below(4);
        m[p] = static_cast<char>(
            static_cast<unsigned char>(m[p]) ^ (1u << rng.next_below(8)));
        break;
      }
    }
  }
  return m;
}

/// Parses `bytes` against `g` with the given options, dispatching to the
/// reader matching the corpus entry's format family (text up to v5, the
/// binary container from v6). Returns true when the load was clean;
/// rejections must be CheckError with offset context (anything else aborts
/// the fuzz run via the caller's catch).
bool parse(int version, const Graph& g, const std::string& bytes,
           const io::ReadOptions& opts, FtBfsStructure* out,
           std::vector<Vertex>* sources, std::vector<DualSiteTable>* tables,
           std::vector<DualSiteDistTable>* site_dist,
           std::string* reject_msg) {
  try {
    io::LoadReport report;
    FtBfsStructure h = [&] {
      if (version >= 6) {
        return io::read_structure_v6(
            g, std::as_bytes(std::span<const char>(bytes.data(),
                                                   bytes.size())),
            sources, tables, opts, &report, site_dist);
      }
      std::istringstream is(bytes);
      return io::read_structure(g, is, sources, tables, opts, &report,
                                site_dist);
    }();
    if (out != nullptr) *out = std::move(h);
    return true;
  } catch (const CheckError& e) {
    *reject_msg = e.what();
    return false;
  }
}

/// The accepted-mutant invariant: write → parse → write is a fixed point,
/// in the legacy framing, in v5 and in the v6 binary container.
bool roundtrips(const Graph& g, const FtBfsStructure& h,
                const std::vector<Vertex>& sources,
                const std::vector<DualSiteTable>& tables,
                const std::vector<DualSiteDistTable>& site_dist,
                std::string* why) {
  enum Mode { kLegacy = 0, kV5 = 1, kV6 = 2 };
  const auto canonical = [&](Mode mode, const FtBfsStructure& hh,
                             const std::vector<Vertex>& ss,
                             const std::vector<DualSiteTable>& tt,
                             const std::vector<DualSiteDistTable>& sd) {
    if (mode == kV6) return io::write_structure_v6_bytes(hh, ss, tt, sd);
    std::ostringstream os;
    if (mode == kV5) {
      io::write_structure_v5(hh, ss, tt, sd, os);
    } else {
      io::write_structure(hh, ss, tt, os);
    }
    return os.str();
  };
  for (const Mode mode : {kLegacy, kV5, kV6}) {
    const std::string w1 = canonical(mode, h, sources, tables, site_dist);
    std::vector<Vertex> s2;
    std::vector<DualSiteTable> t2;
    std::vector<DualSiteDistTable> sd2;
    try {
      const FtBfsStructure h2 = [&] {
        if (mode == kV6) {
          return io::read_structure_v6(
              g, std::as_bytes(std::span<const char>(w1.data(), w1.size())),
              &s2, &t2, {}, nullptr, &sd2);
        }
        std::istringstream is(w1);
        return io::read_structure(g, is, &s2, &t2, {}, nullptr, &sd2);
      }();
      const std::string w2 = canonical(mode, h2, s2, t2, sd2);
      if (w1 != w2) {
        *why = mode == kV6   ? "v6 re-write differs"
               : mode == kV5 ? "v5 re-write differs"
                             : "legacy re-write differs";
        return false;
      }
    } catch (const std::exception& e) {
      *why = std::string("canonical bytes rejected: ") + e.what();
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const std::int64_t mutations = opt.get_int("mutations", 10000);
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));

  const std::vector<CorpusEntry> corpus = build_corpus();
  std::int64_t accepted = 0, rejected = 0;

  for (const CorpusEntry& entry : corpus) {
    // The unmutated artifact must load cleanly and round-trip.
    {
      FtBfsStructure h(entry.graph, 0, {}, {}, {});
      std::vector<Vertex> sources;
      std::vector<DualSiteTable> tables;
      std::vector<DualSiteDistTable> site_dist;
      std::string msg;
      if (!parse(entry.version, entry.graph, entry.bytes, {}, &h, &sources,
                 &tables, &site_dist, &msg)) {
        std::cerr << "io_fuzz: v" << entry.version
                  << " corpus artifact rejected: " << msg << "\n";
        return 1;
      }
      std::string why;
      if (!roundtrips(entry.graph, h, sources, tables, site_dist, &why)) {
        std::cerr << "io_fuzz: v" << entry.version
                  << " corpus artifact does not round-trip: " << why << "\n";
        return 1;
      }
    }

    Rng rng(seed ^ (0x10f0f0f0ULL * static_cast<std::uint64_t>(
                                        entry.version)));
    for (std::int64_t i = 0; i < mutations; ++i) {
      const std::string mutant = mutate(entry.bytes, entry.version, rng);
      for (const bool tolerant : {false, true}) {
        io::ReadOptions opts;
        opts.tolerate_pair_tables = tolerant;
        opts.tolerate_site_dist = tolerant;
        FtBfsStructure h(entry.graph, 0, {}, {}, {});
        std::vector<Vertex> sources;
        std::vector<DualSiteTable> tables;
        std::vector<DualSiteDistTable> site_dist;
        std::string msg;
        try {
          if (parse(entry.version, entry.graph, mutant, opts, &h, &sources,
                    &tables, &site_dist, &msg)) {
            ++accepted;
            std::string why;
            if (!roundtrips(entry.graph, h, sources, tables, site_dist,
                            &why)) {
              std::cerr << "io_fuzz: v" << entry.version << " mutant #" << i
                        << " (seed " << seed << ", tolerant=" << tolerant
                        << ") accepted but does not round-trip: " << why
                        << "\n";
              return 1;
            }
          } else {
            ++rejected;
            if (msg.find("at byte") == std::string::npos) {
              std::cerr << "io_fuzz: v" << entry.version << " mutant #" << i
                        << " (seed " << seed << ", tolerant=" << tolerant
                        << ") rejected without byte-offset context: " << msg
                        << "\n";
              return 1;
            }
          }
        } catch (const std::exception& e) {
          std::cerr << "io_fuzz: v" << entry.version << " mutant #" << i
                    << " (seed " << seed << ", tolerant=" << tolerant
                    << ") escaped the CheckError contract: " << e.what()
                    << "\n";
          return 1;
        }
      }
    }
  }

  std::cout << "io_fuzz: " << corpus.size() << " artifacts x " << mutations
            << " mutations (seed " << seed << "): " << accepted
            << " accepted, " << rejected
            << " rejected, every rejection a CheckError with offset "
               "context\n";
  return 0;
}
