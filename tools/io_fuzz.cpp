// io_fuzz — corpus fuzzer for structure_io's zero-trust contract.
//
// Starts from one VALID artifact per format version (v1…v5, plus a v5
// variant carrying the optional site-dist accelerator section), applies
// seeded random mutations (bit flips, truncations, byte inserts, slice
// deletes/duplications, line splices) and feeds every mutant to
// io::read_structure. The only acceptable outcomes, asserted per mutant:
//
//   * clean load — and then the parsed structure must round-trip
//     bit-identically (write → parse → write gives the same bytes, in
//     both the legacy and the v5 framing);
//   * CheckError — whose message must carry the byte-offset context
//     ("at byte") the io layer promises.
//
// Anything else — another exception type, a crash, a hang (CI timeout),
// a silent wrong acceptance — is a fuzz failure: the tool prints the
// version, mutant ordinal and seed (rerun with --seed to reproduce) and
// exits non-zero. Every mutant is additionally parsed in tolerant mode
// (ReadOptions::tolerate_pair_tables + tolerate_site_dist), which must
// obey the same contract.
//
//   io_fuzz [--mutations=10000] [--seed=1]
//
// The CI sanitize job runs this under ASan+UBSan, so out-of-bounds reads
// from unchecked length fields fail loudly rather than probabilistically.
#include <algorithm>
#include <exception>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/api/ftbfs_api.hpp"
#include "src/graph/generators.hpp"
#include "src/io/structure_io.hpp"
#include "src/util/options.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace ftb;

struct CorpusEntry {
  int version;
  Graph graph;
  std::string bytes;  // a valid artifact of exactly `version`
};

/// One valid artifact per documented version, over small graphs (the
/// mutation budget goes to coverage of the grammar, not BFS time).
std::vector<CorpusEntry> build_corpus() {
  std::vector<CorpusEntry> corpus;

  // v1: no fault-model line (edge model by definition). The writers never
  // emit v1 anymore, so the corpus hand-frames one from a built structure
  // using the documented grammar.
  {
    Graph g = gen::random_connected(24, 60, 7);
    api::BuildSpec spec;
    const api::BuildResult res = api::build(g, spec);
    const FtBfsStructure& h = res.structure;
    std::ostringstream os;
    os << "ftbfs-structure 1\n"
       << g.num_vertices() << ' ' << h.num_edges() << ' ' << h.source()
       << '\n';
    for (const EdgeId e : h.edges()) {
      const auto [u, v] = g.edge(e);
      int flags = 0;
      if (h.is_reinforced(e)) flags |= 1;
      if (std::binary_search(h.tree_edges().begin(), h.tree_edges().end(),
                             e)) {
        flags |= 2;
      }
      os << u << ' ' << v << ' ' << flags << '\n';
    }
    corpus.push_back({1, std::move(g), os.str()});
  }

  // v2: single-source edge model, written by the library.
  {
    Graph g = gen::random_connected(24, 60, 7);
    api::BuildSpec spec;
    spec.eps = 0.4;
    const api::BuildResult res = api::build(g, spec);
    std::ostringstream os;
    io::write_structure(res.structure, os);
    corpus.push_back({2, std::move(g), os.str()});
  }

  // v3: multi-source union with a sources line.
  {
    Graph g = gen::random_connected(30, 80, 11);
    api::BuildSpec spec;
    spec.sources = {0, 7, 19};
    const api::BuildResult res = api::build(g, spec);
    std::ostringstream os;
    io::write_structure(res.structure, res.sources, os);
    corpus.push_back({3, std::move(g), os.str()});
  }

  // v4: dual-failure structure with its pair tables.
  {
    Graph g = gen::grid_graph(5, 5);
    api::BuildSpec spec;
    spec.fault_model = FaultClass::kDual;
    const api::BuildResult res = api::build(g, spec);
    std::ostringstream os;
    io::write_structure(res.structure, res.sources, res.dual_tables, os);
    corpus.push_back({4, std::move(g), os.str()});
  }

  // v5: the same dual artifact in the checksummed framing.
  {
    Graph g = gen::grid_graph(5, 5);
    api::BuildSpec spec;
    spec.fault_model = FaultClass::kDual;
    const api::BuildResult res = api::build(g, spec);
    std::ostringstream os;
    io::write_structure_v5(res.structure, res.sources, res.dual_tables, os);
    corpus.push_back({5, std::move(g), os.str()});
  }

  // v5 with the optional site-dist accelerator section: the grammar's
  // largest surface (dterm rows indexed off the pair tables' site order).
  {
    Graph g = gen::grid_graph(5, 5);
    api::BuildSpec spec;
    spec.fault_model = FaultClass::kDual;
    spec.site_dist_oracle = true;
    const api::BuildResult res = api::build(g, spec);
    std::ostringstream os;
    io::write_structure_v5(res.structure, res.sources, res.dual_tables,
                           res.dual_site_dist, os);
    corpus.push_back({5, std::move(g), os.str()});
  }
  return corpus;
}

/// One seeded mutant: 1–3 structural edits of the valid artifact.
std::string mutate(const std::string& base, Rng& rng) {
  std::string m = base;
  const std::uint64_t ops = 1 + rng.next_below(3);
  for (std::uint64_t o = 0; o < ops; ++o) {
    if (m.empty()) break;
    switch (rng.next_below(6)) {
      case 0: {  // bit flip
        const std::size_t p = rng.next_below(m.size());
        m[p] = static_cast<char>(
            static_cast<unsigned char>(m[p]) ^ (1u << rng.next_below(8)));
        break;
      }
      case 1:  // truncation (storage short write)
        m.resize(rng.next_below(m.size() + 1));
        break;
      case 2: {  // random byte insert
        const std::size_t p = rng.next_below(m.size() + 1);
        m.insert(m.begin() + static_cast<std::ptrdiff_t>(p),
                 static_cast<char>(rng.next_below(256)));
        break;
      }
      case 3: {  // slice delete
        const std::size_t p = rng.next_below(m.size());
        const std::size_t len =
            1 + rng.next_below(std::min<std::size_t>(16, m.size() - p));
        m.erase(p, len);
        break;
      }
      case 4: {  // slice duplication (length lies, duplicate sections)
        const std::size_t p = rng.next_below(m.size());
        const std::size_t len =
            1 + rng.next_below(std::min<std::size_t>(64, m.size() - p));
        m.insert(p, m.substr(p, len));
        break;
      }
      case 5: {  // splice one whole line to the end (trailing garbage /
                 // duplicated section headers)
        const std::size_t p = rng.next_below(m.size());
        std::size_t start = m.rfind('\n', p);
        start = start == std::string::npos ? 0 : start + 1;
        std::size_t end = m.find('\n', p);
        end = end == std::string::npos ? m.size() : end + 1;
        m += m.substr(start, end - start);
        break;
      }
    }
  }
  return m;
}

/// Parses `bytes` against `g` with the given options. Returns true when
/// the load was clean; rejections must be CheckError with offset context
/// (anything else aborts the fuzz run via the caller's catch).
bool parse(const Graph& g, const std::string& bytes,
           const io::ReadOptions& opts, FtBfsStructure* out,
           std::vector<Vertex>* sources, std::vector<DualSiteTable>* tables,
           std::vector<DualSiteDistTable>* site_dist,
           std::string* reject_msg) {
  std::istringstream is(bytes);
  try {
    io::LoadReport report;
    FtBfsStructure h = io::read_structure(g, is, sources, tables, opts,
                                          &report, site_dist);
    if (out != nullptr) *out = std::move(h);
    return true;
  } catch (const CheckError& e) {
    *reject_msg = e.what();
    return false;
  }
}

/// The accepted-mutant invariant: write → parse → write is a fixed point,
/// in the legacy framing and in v5.
bool roundtrips(const Graph& g, const FtBfsStructure& h,
                const std::vector<Vertex>& sources,
                const std::vector<DualSiteTable>& tables,
                const std::vector<DualSiteDistTable>& site_dist,
                std::string* why) {
  const auto canonical = [&](bool v5, const FtBfsStructure& hh,
                             const std::vector<Vertex>& ss,
                             const std::vector<DualSiteTable>& tt,
                             const std::vector<DualSiteDistTable>& sd) {
    std::ostringstream os;
    if (v5) {
      io::write_structure_v5(hh, ss, tt, sd, os);
    } else {
      io::write_structure(hh, ss, tt, os);
    }
    return os.str();
  };
  for (const bool v5 : {false, true}) {
    const std::string w1 = canonical(v5, h, sources, tables, site_dist);
    std::istringstream is(w1);
    std::vector<Vertex> s2;
    std::vector<DualSiteTable> t2;
    std::vector<DualSiteDistTable> sd2;
    try {
      const FtBfsStructure h2 =
          io::read_structure(g, is, &s2, &t2, {}, nullptr, &sd2);
      const std::string w2 = canonical(v5, h2, s2, t2, sd2);
      if (w1 != w2) {
        *why = v5 ? "v5 re-write differs" : "legacy re-write differs";
        return false;
      }
    } catch (const std::exception& e) {
      *why = std::string("canonical bytes rejected: ") + e.what();
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const std::int64_t mutations = opt.get_int("mutations", 10000);
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));

  const std::vector<CorpusEntry> corpus = build_corpus();
  std::int64_t accepted = 0, rejected = 0;

  for (const CorpusEntry& entry : corpus) {
    // The unmutated artifact must load cleanly and round-trip.
    {
      FtBfsStructure h(entry.graph, 0, {}, {}, {});
      std::vector<Vertex> sources;
      std::vector<DualSiteTable> tables;
      std::vector<DualSiteDistTable> site_dist;
      std::string msg;
      if (!parse(entry.graph, entry.bytes, {}, &h, &sources, &tables,
                 &site_dist, &msg)) {
        std::cerr << "io_fuzz: v" << entry.version
                  << " corpus artifact rejected: " << msg << "\n";
        return 1;
      }
      std::string why;
      if (!roundtrips(entry.graph, h, sources, tables, site_dist, &why)) {
        std::cerr << "io_fuzz: v" << entry.version
                  << " corpus artifact does not round-trip: " << why << "\n";
        return 1;
      }
    }

    Rng rng(seed ^ (0x10f0f0f0ULL * static_cast<std::uint64_t>(
                                        entry.version)));
    for (std::int64_t i = 0; i < mutations; ++i) {
      const std::string mutant = mutate(entry.bytes, rng);
      for (const bool tolerant : {false, true}) {
        io::ReadOptions opts;
        opts.tolerate_pair_tables = tolerant;
        opts.tolerate_site_dist = tolerant;
        FtBfsStructure h(entry.graph, 0, {}, {}, {});
        std::vector<Vertex> sources;
        std::vector<DualSiteTable> tables;
        std::vector<DualSiteDistTable> site_dist;
        std::string msg;
        try {
          if (parse(entry.graph, mutant, opts, &h, &sources, &tables,
                    &site_dist, &msg)) {
            ++accepted;
            std::string why;
            if (!roundtrips(entry.graph, h, sources, tables, site_dist,
                            &why)) {
              std::cerr << "io_fuzz: v" << entry.version << " mutant #" << i
                        << " (seed " << seed << ", tolerant=" << tolerant
                        << ") accepted but does not round-trip: " << why
                        << "\n";
              return 1;
            }
          } else {
            ++rejected;
            if (msg.find("at byte") == std::string::npos) {
              std::cerr << "io_fuzz: v" << entry.version << " mutant #" << i
                        << " (seed " << seed << ", tolerant=" << tolerant
                        << ") rejected without byte-offset context: " << msg
                        << "\n";
              return 1;
            }
          }
        } catch (const std::exception& e) {
          std::cerr << "io_fuzz: v" << entry.version << " mutant #" << i
                    << " (seed " << seed << ", tolerant=" << tolerant
                    << ") escaped the CheckError contract: " << e.what()
                    << "\n";
          return 1;
        }
      }
    }
  }

  std::cout << "io_fuzz: " << corpus.size() << " artifacts x " << mutations
            << " mutations (seed " << seed << "): " << accepted
            << " accepted, " << rejected
            << " rejected, every rejection a CheckError with offset "
               "context\n";
  return 0;
}
