// ftbfs_cli — the command-line face of the library, built on the
// ftb::api facade.
//
//   ftbfs_cli generate --family=gnm --n=500 --m=2000 --seed=1 --out=g.edges
//   ftbfs_cli info     --graph=g.edges
//   ftbfs_cli build    --graph=g.edges --source=0 --eps=0.25 --out=h.ftbfs
//   ftbfs_cli build    --graph=g.edges --sources=0,5,10 --out=h.ftbfs
//   ftbfs_cli build    --graph=g.edges --fault-model=vertex --out=h.ftbfs
//   ftbfs_cli build    --graph=g.edges --fault-model=dual --out=h.ftbfs
//   ftbfs_cli verify   --graph=g.edges --structure=h.ftbfs
//   ftbfs_cli drill    --graph=g.edges --structure=h.ftbfs --drills=200
//   ftbfs_cli fsck     --graph=g.edges --structure=h.ftbfs
//   ftbfs_cli frontier --graph=g.edges --source=0
//
// build/verify/drill speak every fault model: --fault-model={edge,vertex,
// either,dual} selects the construction at build time ("either" is the one-
// failure-of-either-kind union, "dual" the two-simultaneous-failure model
// of arXiv:1505.00692 — saved as a v4 artifact with its pair tables);
// verify and drill default to the model tag stored in the structure file
// and accept the flag as an override. build takes one --source or a comma-separated --sources list
// (FT-MBFS union, preserved in the artifact). drill serves the storm
// through an api::Session — the batched query plane answers the surviving-
// graph side — unless --fault-model overrides the artifact's tag, in which
// case the literal-BFS drill runs.
//
// fsck loads the artifact into a Session (tolerantly: a corrupt pair-table
// section downgrades to degraded service instead of refusing, unless
// --strict) and audits the serving invariants — exit 0 clean, 1 degraded,
// 2 broken. On a v6 binary artifact, fsck first mmaps the container and
// audits the section directory (alignment, padding, per-section CRC-32C)
// before the Session parse. build --v5 writes the checksummed structure_io
// v5 text framing, build --v6 the mmap-able binary container; every other
// command reads all of them (auto-detected by magic).
//
// Graph inputs are text or binary edge lists, auto-detected by magic;
// --graph-format=auto|text|binary pins the parser. convert rewrites
// between the two edge-list encodings (--to=binary|text) and upgrades any
// v1–v5 structure artifact to the v6 container (--structure=... --out=...).
//
// --json switches build/verify/drill/fsck to a machine-readable report on
// stdout (the same ordered-JSON shape BENCH_construction.json uses), so
// the CLI is scriptable:  ftbfs_cli build ... --json | jq .reinforced_edges
// build/fsck surface artifact_bytes and mmap (v6 zero-copy eligibility).
//
// Families for generate: path, cycle, star, complete, grid (rows/cols),
// gnm (n/m), er (n/p), connected (n/extra), pa (n/k), intro (n),
// hypercube (dims), theta (paths/len), lb (n/eps), dumbbell (k/bridge),
// rmat (scale/m), rmat-connected (scale/m). generate --binary emits the
// binary edge-list encoding.
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "src/api/ftbfs_api.hpp"
#include "src/core/cost_model.hpp"
#include "src/core/dual_fault.hpp"
#include "src/core/multi_source.hpp"
#include "src/core/optimizer.hpp"
#include "src/core/verifier.hpp"
#include "src/core/vertex_ftbfs.hpp"
#include "src/graph/connectivity.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/lower_bound.hpp"
#include "src/io/binary_edge_list.hpp"
#include "src/io/binary_io.hpp"
#include "src/io/edge_list.hpp"
#include "src/io/structure_io.hpp"
#include "src/sim/failure_sim.hpp"
#include "src/util/json.hpp"
#include "src/util/options.hpp"
#include "src/util/table.hpp"

namespace {

using namespace ftb;

int usage() {
  std::cerr
      << "usage: ftbfs_cli "
         "<generate|info|build|verify|drill|fsck|convert|frontier> "
         "[--key=value ...]\n"
         "  generate --family=F --out=PATH [family params] [--binary]\n"
         "  info     --graph=PATH\n"
         "  convert  --graph=PATH --out=PATH [--to=binary|text]\n"
         "           (edge-list re-encode; add --structure=IN to upgrade a\n"
         "            v1-v5 structure artifact to the v6 binary container)\n"
         "  build    --graph=PATH [--source=0 | --sources=0,5,10]\n"
         "           [--eps=0.25] [--out=PATH] [--v5|--v6] [--json]\n"
         "           [--fault-model=edge|vertex|either|dual]\n"
         "           [--site-dist]   (dual: harvest the site-local pair\n"
         "                            oracle; persisted only by --v5/--v6)\n"
         "           [--dual-dfs-schedule=on|off]   (dual: DFS-order\n"
         "                            ancestor-sweep sharing; default on)\n"
         "  verify   --graph=PATH --structure=PATH [--nontree] [--json]\n"
         "           [--fault-model=...]   (default: the structure's tag)\n"
         "           [--pairs=N]   (dual: failure pairs to check; -1 = all)\n"
         "  drill    --graph=PATH --structure=PATH [--drills=200] [--seed=1]\n"
         "           [--weight-seed=1] [--json]\n"
         "           [--fault-model=...]   (default: the structure's tag)\n"
         "  fsck     --graph=PATH --structure=PATH [--weight-seed=1]\n"
         "           [--strict] [--json]    exit: 0 clean, 1 degraded, 2 broken\n"
         "  frontier --graph=PATH [--source=0] [--points=12]\n"
         "  every --graph consumer also takes "
         "--graph-format=auto|text|binary\n";
  return 2;
}

/// Load the --graph edge list honoring --graph-format. `auto` (default)
/// dispatches on the file's magic bytes, so binary graphs work everywhere
/// a text graph does; `text`/`binary` pin the parser (a mismatched pin is
/// a zero-trust rejection, not a fallback).
Graph load_graph(const Options& opt) {
  const std::string path = opt.get_string("graph", "graph.edges");
  const std::string fmt = opt.get_string("graph-format", "auto");
  if (fmt == "auto") return io::load_edge_list_auto(path);
  if (fmt == "text") return io::load_edge_list(path);
  if (fmt == "binary") return io::load_binary_edge_list(path);
  FTB_CHECK_MSG(false, "unknown --graph-format '"
                           << fmt << "' (want auto, text or binary)");
  return gen::path_graph(2);
}

/// Size of a just-written artifact, for the --json reports.
std::int64_t file_bytes_of(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  FTB_CHECK_MSG(f.good(), "cannot stat " << path);
  return static_cast<std::int64_t>(f.tellg());
}

/// The fault model to operate a loaded structure under: the structure's
/// stored tag unless --fault-model overrides it.
FaultClass structure_fault_model(const Options& opt, const FtBfsStructure& h) {
  const std::string flag = opt.get_string("fault-model", "");
  return flag.empty() ? h.fault_class() : parse_fault_class(flag);
}

Graph generate_family(const Options& opt) {
  const std::string family = opt.get_string("family", "gnm");
  const Vertex n = static_cast<Vertex>(opt.get_int("n", 500));
  const std::uint64_t seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
  if (family == "path") return gen::path_graph(n);
  if (family == "cycle") return gen::cycle_graph(n);
  if (family == "star") return gen::star_graph(n);
  if (family == "complete") return gen::complete_graph(n);
  if (family == "grid") {
    return gen::grid_graph(static_cast<Vertex>(opt.get_int("rows", 20)),
                           static_cast<Vertex>(opt.get_int("cols", 20)));
  }
  if (family == "gnm") return gen::gnm(n, opt.get_int("m", 4 * n), seed);
  if (family == "er") return gen::erdos_renyi(n, opt.get_double("p", 0.05), seed);
  if (family == "connected") {
    return gen::random_connected(n, opt.get_int("extra", 3 * n), seed);
  }
  if (family == "pa") {
    return gen::preferential_attachment(
        n, static_cast<Vertex>(opt.get_int("k", 3)), seed);
  }
  if (family == "rmat" || family == "rmat-connected") {
    const auto scale = static_cast<Vertex>(opt.get_int("scale", 10));
    const std::int64_t m =
        opt.get_int("m", 8 * (static_cast<std::int64_t>(1) << scale));
    return family == "rmat" ? gen::rmat(scale, m, seed)
                            : gen::rmat_connected(scale, m, seed);
  }
  if (family == "intro") return gen::intro_example(n);
  if (family == "hypercube") {
    return gen::hypercube(static_cast<Vertex>(opt.get_int("dims", 8)));
  }
  if (family == "theta") {
    return gen::theta_graph(static_cast<Vertex>(opt.get_int("paths", 5)),
                            static_cast<Vertex>(opt.get_int("len", 10)));
  }
  if (family == "dumbbell") {
    return gen::dumbbell(static_cast<Vertex>(opt.get_int("k", 20)),
                         static_cast<Vertex>(opt.get_int("bridge", 5)));
  }
  if (family == "lb") {
    return lb::build_single_source(n, opt.get_double("eps", 0.5)).graph;
  }
  FTB_CHECK_MSG(false, "unknown family '" << family << "'");
  return gen::path_graph(2);
}

int cmd_generate(const Options& opt) {
  const Graph g = generate_family(opt);
  const std::string out = opt.get_string("out", "");
  const bool binary = opt.has("binary");
  if (out.empty()) {
    FTB_CHECK_MSG(!binary, "--binary needs --out (no binary to stdout)");
    io::write_edge_list(g, std::cout);
  } else {
    if (binary) {
      io::save_binary_edge_list(g, out);
    } else {
      io::save_edge_list(g, out);
    }
    std::cout << "wrote " << g.summary() << " to " << out
              << (binary ? " (binary)" : "") << "\n";
  }
  return 0;
}

int cmd_info(const Options& opt) {
  const Graph g = load_graph(opt);
  std::cout << g.summary() << "\n";
  const ConnectivityReport conn = analyze_connectivity(g);
  std::cout << "components:        " << conn.num_components << "\n";
  std::cout << "bridges:           " << conn.bridges.size() << "\n";
  std::cout << "cut vertices:      " << conn.cut_vertices.size() << "\n";
  std::int64_t deg_sum = 0;
  std::int32_t deg_max = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    deg_sum += g.degree(v);
    deg_max = std::max(deg_max, g.degree(v));
  }
  std::cout << "avg degree:        "
            << static_cast<double>(deg_sum) /
                   std::max<std::int64_t>(1, g.num_vertices())
            << "\n";
  std::cout << "max degree:        " << deg_max << "\n";
  return 0;
}

/// The build parameterization shared by the facade and this CLI.
api::BuildSpec spec_from_options(const Options& opt) {
  api::BuildSpec spec;
  spec.fault_model = parse_fault_class(opt.get_string("fault-model", "edge"));
  if (opt.has("sources")) {
    spec.sources.clear();
    for (const long long s : opt.get_int_list("sources", {})) {
      spec.sources.push_back(static_cast<Vertex>(s));
    }
  } else {
    spec.sources = {static_cast<Vertex>(opt.get_int("source", 0))};
  }
  if (spec.fault_model == FaultClass::kEdge) {
    spec.eps = opt.get_double("eps", 0.25);
  } else {
    // The vertex / either / dual pipelines have no reinforcement tradeoff
    // — ε does not apply (r = 0 constructions). Refuse a silently-ignored
    // flag rather than ship a plan the operator believes is ε-tuned.
    FTB_CHECK_MSG(!opt.has("eps"),
                  "--eps applies only to --fault-model=edge (the other "
                  "pipelines have no reinforcement tradeoff)");
  }
  spec.weight_seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
  if (opt.has("site-dist")) {
    FTB_CHECK_MSG(spec.fault_model == FaultClass::kDual,
                  "--site-dist applies only to --fault-model=dual (the "
                  "site-local oracle accelerates pair queries)");
    spec.site_dist_oracle = true;
  }
  if (opt.has("dual-dfs-schedule")) {
    FTB_CHECK_MSG(spec.fault_model == FaultClass::kDual,
                  "--dual-dfs-schedule applies only to --fault-model=dual "
                  "(it picks the pruned dual build's site schedule)");
    const std::string v = opt.get_string("dual-dfs-schedule", "on");
    if (v == "on" || v.empty()) {
      spec.dual_dfs_schedule = true;
    } else if (v == "off") {
      spec.dual_dfs_schedule = false;
    } else {
      FTB_CHECK_MSG(false, "unknown --dual-dfs-schedule '" << v
                               << "' (want on or off)");
    }
  }
  return spec;
}

JsonArray sources_json(std::span<const Vertex> sources) {
  JsonArray arr;
  for (const Vertex s : sources) arr.push_raw(std::to_string(s));
  return arr;
}

int cmd_build(const Options& opt) {
  const Graph g = load_graph(opt);
  const api::BuildSpec spec = spec_from_options(opt);
  const std::string out = opt.get_string("out", "");
  const bool json = opt.has("json");

  const api::BuildResult res = api::build(g, spec);
  const FtBfsStructure& h = res.structure;
  FTB_CHECK_MSG(!(opt.has("v5") && opt.has("v6")),
                "--v5 and --v6 are mutually exclusive");
  if (!out.empty()) {
    if (opt.has("v6")) {
      // The binary container: a section directory over the same logical
      // sections as v5, 64-byte-aligned payloads, mmap-able on load.
      io::save_structure_v6(h, res.sources, res.dual_tables,
                            res.dual_site_dist, out);
    } else if (opt.has("v5")) {
      // The checksummed framing: every section carries its length and
      // CRC-32C, so storage corruption is caught at load time. The
      // site-dist oracle (when harvested) rides along as its own section.
      io::save_structure_v5(h, res.sources, res.dual_tables,
                            res.dual_site_dist, out);
    } else {
      // Dual-failure artifacts ride structure_io v4 with their pair
      // tables; everything else keeps the v2/v3 forms byte-stably. Only
      // v5 and v6 can carry the site-dist section — refuse to drop it
      // silently.
      FTB_CHECK_MSG(res.dual_site_dist.empty(),
                    "--site-dist tables persist only in the v5/v6 framings "
                    "— add --v5 or --v6 (or drop --out)");
      io::save_structure(h, res.sources, res.dual_tables, out);
    }
  }

  if (json) {
    JsonObject report;
    report.set("command", std::string("build"))
        .set("fault_model", std::string(to_string(spec.fault_model)))
        .set("n", static_cast<std::int64_t>(g.num_vertices()))
        .set("m", static_cast<std::int64_t>(g.num_edges()))
        .set_raw("sources", sources_json(res.sources).str(2));
    if (spec.fault_model == FaultClass::kEdge) report.set("eps", spec.eps);
    if (spec.fault_model == FaultClass::kDual) {
      std::int64_t sites = 0;
      for (const DualSiteTable& t : res.dual_tables) {
        sites += static_cast<std::int64_t>(t.num_sites());
      }
      report.set("pair_sites", sites);
      if (spec.site_dist_oracle) {
        std::int64_t slots = 0;
        for (const DualSiteDistTable& t : res.dual_site_dist) {
          slots += static_cast<std::int64_t>(t.num_slots());
        }
        report.set("site_dist_slots", slots);
      }
    }
    report.set("edges_in_H", h.num_edges())
        .set("backup_edges", h.num_backup())
        .set("reinforced_edges", h.num_reinforced())
        .set("seconds", res.seconds_total);
    JsonArray per_source;
    for (const EpsilonStats& st : res.per_source) {
      JsonObject row;
      row.set("eps", st.eps)
          .set("k_rounds", static_cast<std::int64_t>(st.k_rounds))
          .set("used_baseline", st.used_baseline)
          .set("pairs_total", st.pairs_total)
          .set("pairs_uncovered", st.pairs_uncovered)
          .set("s1_added_edges", st.s1_added_edges)
          .set("s2_added_edges", st.s2_glue_added + st.s2_added_edges)
          .set("structure_edges", st.structure_edges)
          .set("backup_edges", st.backup)
          .set("reinforced_edges", st.reinforced)
          .set("seconds", st.seconds_total);
      per_source.push(row);
    }
    report.set_raw("per_source", per_source.str(2));
    if (!out.empty()) {
      report.set("out", out)
          .set("artifact_bytes", file_bytes_of(out))
          .set("mmap", opt.has("v6"));  // zero-copy-attachable container?
    }
    std::cout << report.str() << "\n";
    return 0;
  }

  std::cout << h.summary();
  if (spec.fault_model == FaultClass::kEdge) {
    std::cout << "  (eps=" << spec.eps << ", built in " << res.seconds_total
              << "s)";
  }
  std::cout << "\n";
  if (res.sources.size() > 1) {
    std::cout << "serving " << res.sources.size() << " sources (FT-MBFS "
              << "union)\n";
  }
  if (!out.empty()) std::cout << "wrote structure to " << out << "\n";
  return 0;
}

int cmd_verify(const Options& opt) {
  const Graph g = load_graph(opt);
  std::vector<Vertex> sources;
  const FtBfsStructure h = io::load_structure(
      g, opt.get_string("structure", "h.ftbfs"), &sources);
  const FaultClass model = structure_fault_model(opt, h);
  const bool json = opt.has("json");
  const bool multi = sources.size() > 1;
  // An FT-MBFS artifact must hold from EVERY source it claims to serve,
  // so v3 artifacts route through the union verifiers. Those have no
  // non-tree sweep — refuse the flag rather than silently ignore it.
  FTB_CHECK_MSG(!(multi && opt.has("nontree")),
                "--nontree applies only to single-source artifacts");
  const auto as_multi_source = [&] {
    return MultiSourceResult{sources, h, {}};
  };

  bool ok = true;
  JsonObject report;
  report.set("command", std::string("verify"))
      .set("fault_model", std::string(to_string(model)))
      .set_raw("sources", sources_json(sources).str(2));
  if (model == FaultClass::kDual) {
    // Dual-failure contract: brute-force two-failure BFS vs the surviving
    // structure over failure pairs, per source (the union structure is
    // re-anchored at each source like the other multi-source verifiers).
    // No non-tree sweep exists here — refuse the flag rather than
    // silently ignore it, same policy as the multi-source check above.
    FTB_CHECK_MSG(!opt.has("nontree"),
                  "--nontree applies only to single-source edge-model "
                  "artifacts");
    const std::int64_t pairs = opt.get_int("pairs", 500);
    const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
    std::int64_t violations = 0;
    for (const Vertex s : sources) {
      const FtBfsStructure view(g, s, h.edges(), h.reinforced(),
                                h.tree_edges(), FaultClass::kDual);
      violations += verify_dual_structure(view, pairs, seed);
    }
    if (json) {
      JsonObject dual;
      dual.set("ok", violations == 0)
          .set("pairs_per_source", pairs)
          .set("violations", violations);
      report.set_raw("dual", dual.str(2));
    } else {
      std::cout << "dual failures: "
                << (violations == 0 ? "OK" : "BROKEN") << " (pairs=";
      if (pairs < 0) {
        std::cout << "all";
      } else {
        std::cout << pairs;
      }
      std::cout << "/source, violations=" << violations << ")\n";
    }
    ok = violations == 0;
    if (json) {
      report.set("ok", ok);
      std::cout << report.str() << "\n";
    }
    return ok ? 0 : 1;
  }
  if (model == FaultClass::kEdge || model == FaultClass::kEither) {
    std::int64_t failures_checked = -1;
    std::int64_t violations = 0;
    if (multi) {
      violations = verify_multi_source(g, as_multi_source());
    } else {
      VerifyOptions vo;
      vo.check_nontree_failures = opt.has("nontree");
      const VerifyReport rep = verify_structure(h, vo);
      failures_checked = rep.failures_checked;
      violations = rep.violations;
      if (!json) std::cout << "edge faults:   " << rep.to_string() << "\n";
    }
    if (json) {
      JsonObject edge;
      edge.set("ok", violations == 0);
      if (failures_checked >= 0) {
        edge.set("failures_checked", failures_checked);
      }
      edge.set("violations", violations);
      report.set_raw("edge", edge.str(2));
    } else if (multi) {
      std::cout << "edge faults:   " << (violations == 0 ? "OK" : "BROKEN")
                << " (sources=" << sources.size() << ", violations="
                << violations << ")\n";
    }
    ok = ok && violations == 0;
  }
  if (model == FaultClass::kVertex || model == FaultClass::kEither) {
    const std::int64_t violations =
        multi ? verify_vertex_multi_source(g, as_multi_source())
              : verify_vertex_structure(h);
    if (json) {
      JsonObject vertex;
      vertex.set("ok", violations == 0).set("violations", violations);
      report.set_raw("vertex", vertex.str(2));
    } else {
      std::cout << "vertex faults: "
                << (violations == 0 ? "OK" : "BROKEN") << " (violations="
                << violations << ")\n";
    }
    ok = ok && violations == 0;
  }
  if (json) {
    report.set("ok", ok);
    std::cout << report.str() << "\n";
  }
  return ok ? 0 : 1;
}

int cmd_drill(const Options& opt) {
  const Graph g = load_graph(opt);
  const std::string path = opt.get_string("structure", "h.ftbfs");
  std::vector<Vertex> sources;
  std::vector<DualSiteTable> tables;
  std::vector<DualSiteDistTable> site_dist;
  const FtBfsStructure h = io::load_structure(g, path, &sources, &tables, {},
                                              nullptr, &site_dist);
  const FaultClass model = structure_fault_model(opt, h);
  const bool json = opt.has("json");
  const std::int64_t drills = opt.get_int("drills", 200);
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));

  // Serve the drill through the batched query plane whenever the storm
  // matches the artifact's own model. Two ways to land on the literal-BFS
  // drill instead: a --fault-model override asking for a storm the
  // session's engines cannot answer in-model, or an artifact built with a
  // weight seed other than --weight-seed (the rebuilt canonical trees then
  // don't match, and the session refuses to serve wrong answers).
  std::optional<api::Session> session;
  if (model == h.fault_class()) {
    api::BuildSpec spec;
    spec.fault_model = h.fault_class();
    spec.sources = sources;
    spec.weight_seed =
        static_cast<std::uint64_t>(opt.get_int("weight-seed", 1));
    try {
      // An artifact carrying the v5 site-dist section serves its pair
      // storm O(1) — deploy attaches the shipped oracle tables.
      session.emplace(api::Session::deploy(
          g, api::BuildResult{spec, sources, FtBfsStructure(h), {}, tables,
                              std::move(site_dist), 0.0}));
    } catch (const CheckError&) {
      if (!json) {
        std::cout << "note: artifact does not match --weight-seed="
                  << spec.weight_seed
                  << " — drilling with literal BFS instead of the session "
                     "plane\n";
      }
    }
  }
  const bool via_session = session.has_value();
  const DrillReport rep = via_session
                              ? run_failure_drill(*session, model, drills,
                                                  seed)
                              : run_failure_drill(h, model, drills, seed);

  if (json) {
    JsonObject report;
    report.set("command", std::string("drill"))
        .set("fault_model", std::string(to_string(model)))
        .set("served_by", std::string(via_session ? "session" : "structure"))
        .set("drills", rep.drills)
        .set("queries", rep.reachable_queries)
        .set("violations", rep.violations)
        .set("disconnections", rep.disconnections)
        .set("max_stretch", rep.max_stretch)
        .set("avg_distance", rep.avg_distance);
    if (via_session) {
      // The serving-plane counters of the batched drill: how the dual
      // pairs were answered (site-dist oracle vs cached traversals).
      report.set("pair_traversals", rep.pair_traversals)
          .set("site_oracle_hits", rep.site_oracle_hits)
          .set("pair_cache_hits", rep.pair_cache_hits)
          .set("pair_cache_misses", rep.pair_cache_misses);
    }
    report.set("ok", rep.violations == 0);
    std::cout << report.str() << "\n";
  } else {
    std::cout << "[" << to_string(model) << " faults] " << rep.to_string()
              << "\n";
  }
  return rep.violations == 0 ? 0 : 1;
}

/// convert: re-encode an edge list between the text and binary forms, or
/// (with --structure) upgrade any v1–v5 structure artifact to the v6
/// binary container. Either direction round-trips bit-identically through
/// the canonical Graph, so text→binary→text is a fixed point.
int cmd_convert(const Options& opt) {
  const std::string out = opt.get_string("out", "");
  FTB_CHECK_MSG(!out.empty(), "convert needs --out=PATH");
  const bool json = opt.has("json");
  const Graph g = load_graph(opt);

  if (opt.has("structure")) {
    // Structure upgrade: decode whatever version the artifact speaks
    // (v1–v6, anchored on --graph) and re-emit the v6 binary container
    // with every section the artifact carried.
    const std::string in = opt.get_string("structure", "h.ftbfs");
    std::vector<Vertex> sources;
    std::vector<DualSiteTable> tables;
    std::vector<DualSiteDistTable> site_dist;
    const FtBfsStructure h = io::load_structure(g, in, &sources, &tables, {},
                                                nullptr, &site_dist);
    io::save_structure_v6(h, sources, tables, site_dist, out);
    const std::int64_t bytes = file_bytes_of(out);
    if (json) {
      JsonObject report;
      report.set("command", std::string("convert"))
          .set("structure", in)
          .set("out", out)
          .set("format", std::string("v6"))
          .set("artifact_bytes", bytes)
          .set("mmap", true);
      std::cout << report.str() << "\n";
    } else {
      std::cout << "wrote v6 artifact (" << bytes << " bytes) to " << out
                << "\n";
    }
    return 0;
  }

  const std::string to = opt.get_string("to", "binary");
  if (to == "binary") {
    io::save_binary_edge_list(g, out);
  } else if (to == "text") {
    io::save_edge_list(g, out);
  } else {
    FTB_CHECK_MSG(false,
                  "unknown --to '" << to << "' (want binary or text)");
  }
  if (json) {
    JsonObject report;
    report.set("command", std::string("convert"))
        .set("out", out)
        .set("format", to)
        .set("n", static_cast<std::int64_t>(g.num_vertices()))
        .set("m", static_cast<std::int64_t>(g.num_edges()))
        .set("artifact_bytes", file_bytes_of(out));
    std::cout << report.str() << "\n";
  } else {
    std::cout << "wrote " << g.summary() << " to " << out << " (" << to
              << ")\n";
  }
  return 0;
}

/// fsck: load the artifact into a Session (tolerantly unless --strict) and
/// audit the serving invariants. Exit 0 clean, 1 degraded-but-correct,
/// 2 broken (an invariant failed or the load itself threw).
///
/// v6 artifacts get an extra file-level pass first: mmap the container and
/// audit the section directory — alignment, padding, declared sizes, every
/// CRC-32C — the way a deployment host would before serving it. A refusal
/// there is reported (and under --strict the Session load will refuse too);
/// under the tolerant default the Session still gets its chance to degrade
/// gracefully on droppable sections.
int cmd_fsck(const Options& opt) {
  const Graph g = load_graph(opt);
  const std::string path = opt.get_string("structure", "h.ftbfs");
  const bool json = opt.has("json");

  const bool is_v6 = io::is_v6_artifact(path);
  bool mmap_ok = false;
  std::int64_t artifact_bytes = -1;
  std::int64_t sections = 0;
  std::string container_error;
  if (is_v6) {
    try {
      const io::MappedArtifact art = io::MappedArtifact::map(path);
      mmap_ok = true;
      artifact_bytes = static_cast<std::int64_t>(art.file_bytes());
      sections = static_cast<std::int64_t>(art.directory().size());
    } catch (const CheckError& e) {
      container_error = e.what();
    }
  }

  api::SessionConfig cfg;
  cfg.weight_seed =
      static_cast<std::uint64_t>(opt.get_int("weight-seed", 1));
  cfg.tolerate_corruption = !opt.has("strict");
  api::FsckReport rep;
  std::string fault_model = "unknown";
  try {
    const api::Session session = api::Session::load(g, path, cfg);
    fault_model = to_string(session.fault_model());
    rep = session.fsck();
  } catch (const CheckError& e) {
    // A refused load IS the broken verdict (exit 2), not the generic
    // CLI error (exit 1, which fsck reserves for degraded-but-correct).
    rep.ok = false;
    rep.errors.push_back(e.what());
  }

  if (json) {
    JsonObject report;
    report.set("command", std::string("fsck"))
        .set("structure", path)
        .set("fault_model", fault_model)
        .set("mmap", mmap_ok);
    if (is_v6) {
      if (artifact_bytes >= 0) report.set("artifact_bytes", artifact_bytes);
      report.set("sections", sections);
      if (!container_error.empty()) {
        report.set("container_error", container_error);
      }
    }
    report.set("ok", rep.ok)
        .set("degraded", rep.degraded)
        .set("checks", rep.checks);
    JsonArray errors;
    for (const std::string& e : rep.errors) {
      errors.push_raw(JsonObject::quote(e));
    }
    report.set_raw("errors", errors.str(2));
    JsonArray notes;
    for (const std::string& n : rep.notes) {
      notes.push_raw(JsonObject::quote(n));
    }
    report.set_raw("notes", notes.str(2));
    std::cout << report.str() << "\n";
  } else {
    if (is_v6) {
      if (mmap_ok) {
        std::cout << "v6 container: ok (" << sections << " sections, "
                  << artifact_bytes << " bytes, directory + CRCs verified)\n";
      } else {
        std::cout << "v6 container: REFUSED — " << container_error << "\n";
      }
    }
    std::cout << rep.to_string() << "\n";
  }
  if (!rep.ok) return 2;
  return rep.degraded ? 1 : 0;
}

int cmd_frontier(const Options& opt) {
  const Graph g = load_graph(opt);
  const Vertex source = static_cast<Vertex>(opt.get_int("source", 0));
  const GreedyFrontier frontier(g, source);
  const auto& pts = frontier.points();
  const std::size_t points =
      std::max<std::size_t>(2, static_cast<std::size_t>(
                                   opt.get_int("points", 12)));
  Table t("greedy reinforcement-backup frontier");
  t.columns({"reinforced_r", "backup_b"});
  const std::size_t step = std::max<std::size_t>(1, pts.size() / points);
  for (std::size_t i = 0; i < pts.size(); i += step) {
    t.row(pts[i].reinforced, pts[i].backup);
  }
  t.row(pts.back().reinforced, pts.back().backup);
  t.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  ftb::Options opt(argc - 1, argv + 1);
  try {
    if (cmd == "generate") return cmd_generate(opt);
    if (cmd == "info") return cmd_info(opt);
    if (cmd == "build") return cmd_build(opt);
    if (cmd == "verify") return cmd_verify(opt);
    if (cmd == "drill") return cmd_drill(opt);
    if (cmd == "fsck") return cmd_fsck(opt);
    if (cmd == "convert") return cmd_convert(opt);
    if (cmd == "frontier") return cmd_frontier(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
