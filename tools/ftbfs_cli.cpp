// ftbfs_cli — the command-line face of the library.
//
//   ftbfs_cli generate --family=gnm --n=500 --m=2000 --seed=1 --out=g.edges
//   ftbfs_cli info     --graph=g.edges
//   ftbfs_cli build    --graph=g.edges --source=0 --eps=0.25 --out=h.ftbfs
//   ftbfs_cli build    --graph=g.edges --fault-model=vertex --out=h.ftbfs
//   ftbfs_cli verify   --graph=g.edges --structure=h.ftbfs
//   ftbfs_cli drill    --graph=g.edges --structure=h.ftbfs --drills=200
//   ftbfs_cli frontier --graph=g.edges --source=0
//
// build/verify/drill speak both fault models: --fault-model={edge,vertex,
// dual} selects the construction at build time; verify and drill default to
// the model tag stored in the structure file and accept the flag as an
// override.
//
// Families for generate: path, cycle, star, complete, grid (rows/cols),
// gnm (n/m), er (n/p), connected (n/extra), pa (n/k), intro (n),
// hypercube (dims), theta (paths/len), lb (n/eps), dumbbell (k/bridge).
#include <iostream>
#include <string>

#include "src/core/cost_model.hpp"
#include "src/core/epsilon_ftbfs.hpp"
#include "src/core/optimizer.hpp"
#include "src/core/verifier.hpp"
#include "src/core/vertex_ftbfs.hpp"
#include "src/graph/connectivity.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/lower_bound.hpp"
#include "src/io/edge_list.hpp"
#include "src/io/structure_io.hpp"
#include "src/sim/failure_sim.hpp"
#include "src/util/options.hpp"
#include "src/util/table.hpp"

namespace {

using namespace ftb;

int usage() {
  std::cerr
      << "usage: ftbfs_cli <generate|info|build|verify|drill|frontier> "
         "[--key=value ...]\n"
         "  generate --family=F --out=PATH [family params]\n"
         "  info     --graph=PATH\n"
         "  build    --graph=PATH [--source=0] [--eps=0.25] [--out=PATH]\n"
         "           [--fault-model=edge|vertex|dual]\n"
         "  verify   --graph=PATH --structure=PATH [--nontree]\n"
         "           [--fault-model=...]   (default: the structure's tag)\n"
         "  drill    --graph=PATH --structure=PATH [--drills=200] [--seed=1]\n"
         "           [--fault-model=...]   (default: the structure's tag)\n"
         "  frontier --graph=PATH [--source=0] [--points=12]\n";
  return 2;
}

/// The fault model to operate a loaded structure under: the structure's
/// stored tag unless --fault-model overrides it.
FaultClass structure_fault_model(const Options& opt, const FtBfsStructure& h) {
  const std::string flag = opt.get_string("fault-model", "");
  return flag.empty() ? h.fault_class() : parse_fault_class(flag);
}

Graph generate_family(const Options& opt) {
  const std::string family = opt.get_string("family", "gnm");
  const Vertex n = static_cast<Vertex>(opt.get_int("n", 500));
  const std::uint64_t seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
  if (family == "path") return gen::path_graph(n);
  if (family == "cycle") return gen::cycle_graph(n);
  if (family == "star") return gen::star_graph(n);
  if (family == "complete") return gen::complete_graph(n);
  if (family == "grid") {
    return gen::grid_graph(static_cast<Vertex>(opt.get_int("rows", 20)),
                           static_cast<Vertex>(opt.get_int("cols", 20)));
  }
  if (family == "gnm") return gen::gnm(n, opt.get_int("m", 4 * n), seed);
  if (family == "er") return gen::erdos_renyi(n, opt.get_double("p", 0.05), seed);
  if (family == "connected") {
    return gen::random_connected(n, opt.get_int("extra", 3 * n), seed);
  }
  if (family == "pa") {
    return gen::preferential_attachment(
        n, static_cast<Vertex>(opt.get_int("k", 3)), seed);
  }
  if (family == "intro") return gen::intro_example(n);
  if (family == "hypercube") {
    return gen::hypercube(static_cast<Vertex>(opt.get_int("dims", 8)));
  }
  if (family == "theta") {
    return gen::theta_graph(static_cast<Vertex>(opt.get_int("paths", 5)),
                            static_cast<Vertex>(opt.get_int("len", 10)));
  }
  if (family == "dumbbell") {
    return gen::dumbbell(static_cast<Vertex>(opt.get_int("k", 20)),
                         static_cast<Vertex>(opt.get_int("bridge", 5)));
  }
  if (family == "lb") {
    return lb::build_single_source(n, opt.get_double("eps", 0.5)).graph;
  }
  FTB_CHECK_MSG(false, "unknown family '" << family << "'");
  return gen::path_graph(2);
}

int cmd_generate(const Options& opt) {
  const Graph g = generate_family(opt);
  const std::string out = opt.get_string("out", "");
  if (out.empty()) {
    io::write_edge_list(g, std::cout);
  } else {
    io::save_edge_list(g, out);
    std::cout << "wrote " << g.summary() << " to " << out << "\n";
  }
  return 0;
}

int cmd_info(const Options& opt) {
  const Graph g = io::load_edge_list(opt.get_string("graph", "graph.edges"));
  std::cout << g.summary() << "\n";
  const ConnectivityReport conn = analyze_connectivity(g);
  std::cout << "components:        " << conn.num_components << "\n";
  std::cout << "bridges:           " << conn.bridges.size() << "\n";
  std::cout << "cut vertices:      " << conn.cut_vertices.size() << "\n";
  std::int64_t deg_sum = 0;
  std::int32_t deg_max = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    deg_sum += g.degree(v);
    deg_max = std::max(deg_max, g.degree(v));
  }
  std::cout << "avg degree:        "
            << static_cast<double>(deg_sum) /
                   std::max<std::int64_t>(1, g.num_vertices())
            << "\n";
  std::cout << "max degree:        " << deg_max << "\n";
  return 0;
}

int cmd_build(const Options& opt) {
  const Graph g = io::load_edge_list(opt.get_string("graph", "graph.edges"));
  const Vertex source = static_cast<Vertex>(opt.get_int("source", 0));
  const FaultClass model =
      parse_fault_class(opt.get_string("fault-model", "edge"));
  const std::string out = opt.get_string("out", "");

  FtBfsStructure h = [&] {
    if (model == FaultClass::kEdge) {
      EpsilonOptions eopts;
      eopts.eps = opt.get_double("eps", 0.25);
      eopts.weight_seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
      EpsilonResult res = build_epsilon_ftbfs(g, source, eopts);
      std::cout << res.structure.summary() << "  (eps=" << eopts.eps
                << ", built in " << res.stats.seconds_total << "s)\n";
      return std::move(res.structure);
    }
    // The vertex / dual baselines have no reinforcement tradeoff — ε does
    // not apply (ESA'13 r = 0 constructions). Refuse a silently-ignored
    // flag rather than ship a plan the operator believes is ε-tuned.
    FTB_CHECK_MSG(!opt.has("eps"),
                  "--eps applies only to --fault-model=edge (the vertex/dual "
                  "baselines have no reinforcement tradeoff)");
    VertexFtBfsOptions vopts;
    vopts.weight_seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
    FtBfsStructure built = model == FaultClass::kVertex
                               ? build_vertex_ftbfs(g, source, vopts)
                               : build_dual_ftbfs(g, source, vopts);
    std::cout << built.summary() << "\n";
    return built;
  }();

  if (!out.empty()) {
    io::save_structure(h, out);
    std::cout << "wrote structure to " << out << "\n";
  }
  return 0;
}

int cmd_verify(const Options& opt) {
  const Graph g = io::load_edge_list(opt.get_string("graph", "graph.edges"));
  const FtBfsStructure h =
      io::load_structure(g, opt.get_string("structure", "h.ftbfs"));
  const FaultClass model = structure_fault_model(opt, h);

  bool ok = true;
  if (model == FaultClass::kEdge || model == FaultClass::kDual) {
    VerifyOptions vo;
    vo.check_nontree_failures = opt.has("nontree");
    const VerifyReport rep = verify_structure(h, vo);
    std::cout << "edge faults:   " << rep.to_string() << "\n";
    ok = ok && rep.ok;
  }
  if (model == FaultClass::kVertex || model == FaultClass::kDual) {
    const std::int64_t violations = verify_vertex_structure(h);
    std::cout << "vertex faults: "
              << (violations == 0 ? "OK" : "BROKEN") << " (violations="
              << violations << ")\n";
    ok = ok && violations == 0;
  }
  return ok ? 0 : 1;
}

int cmd_drill(const Options& opt) {
  const Graph g = io::load_edge_list(opt.get_string("graph", "graph.edges"));
  const FtBfsStructure h =
      io::load_structure(g, opt.get_string("structure", "h.ftbfs"));
  const FaultClass model = structure_fault_model(opt, h);
  const DrillReport rep = run_failure_drill(
      h, model, opt.get_int("drills", 200),
      static_cast<std::uint64_t>(opt.get_int("seed", 1)));
  std::cout << "[" << to_string(model) << " faults] " << rep.to_string()
            << "\n";
  return rep.violations == 0 ? 0 : 1;
}

int cmd_frontier(const Options& opt) {
  const Graph g = io::load_edge_list(opt.get_string("graph", "graph.edges"));
  const Vertex source = static_cast<Vertex>(opt.get_int("source", 0));
  const GreedyFrontier frontier(g, source);
  const auto& pts = frontier.points();
  const std::size_t points =
      std::max<std::size_t>(2, static_cast<std::size_t>(
                                   opt.get_int("points", 12)));
  Table t("greedy reinforcement-backup frontier");
  t.columns({"reinforced_r", "backup_b"});
  const std::size_t step = std::max<std::size_t>(1, pts.size() / points);
  for (std::size_t i = 0; i < pts.size(); i += step) {
    t.row(pts[i].reinforced, pts[i].backup);
  }
  t.row(pts.back().reinforced, pts.back().backup);
  t.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  ftb::Options opt(argc - 1, argv + 1);
  try {
    if (cmd == "generate") return cmd_generate(opt);
    if (cmd == "info") return cmd_info(opt);
    if (cmd == "build") return cmd_build(opt);
    if (cmd == "verify") return cmd_verify(opt);
    if (cmd == "drill") return cmd_drill(opt);
    if (cmd == "frontier") return cmd_frontier(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
