// visualize — render a small (b, r) FT-BFS structure as Graphviz DOT.
//
// Edge legend in the output: solid = BFS tree, dashed blue = extra backup,
// bold red = reinforced, dotted gray = discarded (in G, not in H). The
// gold node is the source.
//
//   ./example_visualize [--n=24] [--eps=0.2] [--out=structure.dot]
//   dot -Tsvg structure.dot > structure.svg
#include <iostream>

#include "src/api/ftbfs_api.hpp"
#include "src/graph/lower_bound.hpp"
#include "src/io/dot.hpp"
#include "src/util/options.hpp"

int main(int argc, char** argv) {
  using namespace ftb;
  Options opt(argc, argv);
  const Vertex n = static_cast<Vertex>(opt.get_int("n", 64));
  const double eps = opt.get_double("eps", 0.2);
  const std::string out = opt.get_string("out", "structure.dot");

  // A small instance of the paper's own hard family renders the tradeoff
  // most legibly: the costly path, the side paths and the bipartite core
  // are all visually distinct.
  auto lbg = lb::build_single_source(std::max<Vertex>(n, 48), 0.5);
  api::BuildSpec spec;
  spec.sources = {lbg.source};
  spec.eps = eps;
  const api::BuildResult res = api::build(lbg.graph, spec);

  std::cout << "graph:     " << lbg.graph.summary() << "\n";
  std::cout << "structure: " << res.structure.summary() << "\n";
  io::save_dot(res.structure, out);
  std::cout << "wrote " << out << " — render with `dot -Tsvg " << out
            << " > structure.svg`\n";
  std::cout << "legend: solid = T0, dashed blue = backup, bold red = "
               "reinforced, dotted gray = discarded\n";
  return 0;
}
