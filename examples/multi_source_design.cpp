// multi_source_design — FT-MBFS: one survivable structure serving several
// sources at once (paper §5, multi-source setting).
//
// A regional network with several data centers: every center needs exact
// post-failure shortest paths to every node. The union FT-MBFS shares
// edges between the per-center structures; the example quantifies the
// sharing (union size vs. sum of parts) and verifies the contract.
//
//   ./example_multi_source_design [--n=400] [--centers=3] [--eps=0.3]
#include <iostream>

#include "src/core/multi_source.hpp"
#include "src/graph/generators.hpp"
#include "src/util/options.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace ftb;
  Options opt(argc, argv);
  const Vertex n = static_cast<Vertex>(opt.get_int("n", 400));
  const std::int64_t centers = opt.get_int("centers", 3);
  const double eps = opt.get_double("eps", 0.3);

  const Graph g = gen::random_connected(n, 4 * n, 31);
  std::vector<Vertex> sources;
  for (std::int64_t i = 0; i < centers; ++i) {
    sources.push_back(static_cast<Vertex>((i * n) / centers));
  }

  std::cout << "regional network: " << g.summary() << ", data centers at ";
  for (const Vertex s : sources) std::cout << s << " ";
  std::cout << "\n\n";

  EpsilonOptions opts;
  opts.eps = eps;
  const MultiSourceResult ms = build_epsilon_ftmbfs(g, sources, opts);

  Table t("per-center structures vs the shared union");
  t.columns({"center", "edges", "backup", "reinforced"});
  std::int64_t sum_edges = 0;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const auto& st = ms.per_source[i];
    t.row(static_cast<long long>(sources[i]), st.structure_edges, st.backup,
          st.reinforced);
    sum_edges += st.structure_edges;
  }
  t.row("union", ms.structure.num_edges(), ms.structure.num_backup(),
        ms.structure.num_reinforced());
  t.print(std::cout);

  std::cout << "\nsharing factor: union " << ms.structure.num_edges()
            << " edges vs " << sum_edges << " if deployed separately ("
            << static_cast<double>(sum_edges) /
                   static_cast<double>(ms.structure.num_edges())
            << "x saved by overlap)\n";

  std::cout << "verifying the contract for every center, every failure... ";
  const std::int64_t violations = verify_multi_source(g, ms);
  std::cout << (violations == 0 ? "OK\n" : "FAILED\n");
  return violations == 0 ? 0 : 1;
}
