// multi_source_design — FT-MBFS: one survivable structure serving several
// sources at once (paper §5, multi-source setting), through the facade.
//
// A regional network with several data centers: every center needs exact
// post-failure shortest paths to every node. A BuildSpec with several
// sources builds the union FT-MBFS, which shares edges between the
// per-center structures; the example quantifies the sharing (union size
// vs. sum of parts), serves all centers from one Session, and verifies
// the contract.
//
//   ./example_multi_source_design [--n=400] [--centers=3] [--eps=0.3]
#include <iostream>

#include "src/api/ftbfs_api.hpp"
#include "src/core/multi_source.hpp"
#include "src/graph/generators.hpp"
#include "src/util/options.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace ftb;
  Options opt(argc, argv);
  const Vertex n = static_cast<Vertex>(opt.get_int("n", 400));
  const std::int64_t centers = opt.get_int("centers", 3);
  const double eps = opt.get_double("eps", 0.3);

  const Graph g = gen::random_connected(n, 4 * n, 31);
  api::BuildSpec spec;
  spec.eps = eps;
  spec.sources.clear();
  for (std::int64_t i = 0; i < centers; ++i) {
    spec.sources.push_back(static_cast<Vertex>((i * n) / centers));
  }

  std::cout << "regional network: " << g.summary() << ", data centers at ";
  for (const Vertex s : spec.sources) std::cout << s << " ";
  std::cout << "\n\n";

  api::BuildResult res = api::build(g, spec);

  Table t("per-center structures vs the shared union");
  t.columns({"center", "edges", "backup", "reinforced"});
  std::int64_t sum_edges = 0;
  for (std::size_t i = 0; i < res.sources.size(); ++i) {
    const auto& st = res.per_source[i];
    t.row(static_cast<long long>(res.sources[i]), st.structure_edges,
          st.backup, st.reinforced);
    sum_edges += st.structure_edges;
  }
  t.row("union", res.structure.num_edges(), res.structure.num_backup(),
        res.structure.num_reinforced());
  t.print(std::cout);

  std::cout << "\nsharing factor: union " << res.structure.num_edges()
            << " edges vs " << sum_edges << " if deployed separately ("
            << static_cast<double>(sum_edges) /
                   static_cast<double>(res.structure.num_edges())
            << "x saved by overlap)\n";

  std::cout << "\nverifying the contract for every center, every failure... ";
  const std::int64_t violations = verify_multi_source(
      g, MultiSourceResult{res.sources, res.structure, {}});
  std::cout << (violations == 0 ? "OK\n" : "FAILED\n");

  // One session serves every center: Query::source_index picks whose
  // post-failure distances a batch entry asks for. deploy() takes the
  // BuildResult by value, so moving it in hands the structure over
  // without a copy.
  const std::vector<Vertex> centers_at = res.sources;
  const Vertex n_last = n - 1;
  const api::Session session = api::Session::deploy(g, std::move(res));
  const EdgeId probe_edge = session.structure().tree_edges().front();
  std::vector<api::Query> batch;
  for (std::int32_t c = 0; c < static_cast<std::int32_t>(centers); ++c) {
    api::Query q;
    q.v = n_last;
    q.kind = FaultClass::kEdge;
    q.fault = probe_edge;
    q.source_index = c;
    // At small ε the probed tree edge may be reinforced — outside the
    // model — so let the plane answer it as a what-if instead of
    // refusing.
    q.allow_what_if = true;
    batch.push_back(q);
  }
  const api::QueryResponse resp = session.query(batch);
  std::cout << "\nedge " << probe_edge << " fails; dist(center, node "
            << n_last << "):";
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::cout << "  [" << centers_at[i] << "] ";
    if (resp.results[i].dist >= kInfHops) {
      std::cout << "cut-off";
    } else {
      std::cout << resp.results[i].dist;
    }
  }
  std::cout << "\n";
  return violations == 0 ? 0 : 1;
}
