// tradeoff_explorer — chart the b/r frontier of your own graph.
//
// Reads an edge list (or generates a demo graph), sweeps ε, and prints the
// measured reinforcement-backup frontier plus a CSV you can plot.
//
//   ./example_tradeoff_explorer [--graph=my.edges] [--source=0]
//                               [--csv=frontier.csv]
#include <iostream>

#include "src/api/ftbfs_api.hpp"
#include "src/graph/lower_bound.hpp"
#include "src/io/edge_list.hpp"
#include "src/util/options.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace ftb;
  Options opt(argc, argv);

  Graph g;
  Vertex source = static_cast<Vertex>(opt.get_int("source", 0));
  const std::string path = opt.get_string("graph", "");
  if (!path.empty()) {
    g = io::load_edge_list(path);
    std::cout << "loaded " << path << ": " << g.summary() << "\n";
  } else {
    // Demo: the paper's own hard instance — the place where the frontier
    // is most interesting.
    auto lbg = lb::build_single_source(
        static_cast<Vertex>(opt.get_int("n", 1500)), 0.5);
    g = std::move(lbg.graph);
    source = lbg.source;
    std::cout << "demo graph (Theorem 5.1 family, eps_G=1/2): " << g.summary()
              << "\n";
  }

  const std::vector<double> grid = opt.get_double_list(
      "eps", {0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 1.0 / 3.0, 0.4, 0.5});

  Table t("reinforcement-backup frontier");
  t.columns({"eps", "backup_b", "reinforced_r", "|H|", "share_of_G",
             "build_sec"});
  for (const double eps : grid) {
    api::BuildSpec spec;
    spec.sources = {source};
    spec.eps = eps;
    const api::BuildResult res = api::build(g, spec);
    t.row(eps, res.structure.num_backup(), res.structure.num_reinforced(),
          res.structure.num_edges(),
          static_cast<double>(res.structure.num_edges()) /
              static_cast<double>(g.num_edges()),
          res.per_source.front().seconds_total);
  }
  t.print(std::cout);

  const std::string csv = opt.get_string("csv", "");
  if (!csv.empty()) {
    t.write_csv(csv);
    std::cout << "frontier written to " << csv << "\n";
  }
  std::cout << "\nreading the frontier: every row is a valid deployment — "
               "pick the column your budget\nprefers: left (small r, big b) "
               "when reinforcement is expensive, right when it is cheap.\n";
  return 0;
}
