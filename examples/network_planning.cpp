// network_planning — the paper's survivable-network-design story as a tool.
//
// You operate an existing network. Backup links cost B each, reinforced
// (failure-proof) links cost R each. What should you buy so that, after
// any single fault-prone link failure, every node still has an exact
// shortest path from the service source?
//
//   ./example_network_planning [--n=1500] [--backup=1] [--reinforce=60]
//                              [--topology=backbone|isp]
//
// Topologies: `backbone` (default) is a long-haul trunk with access fans —
// the regime where the reinforcement question genuinely bites (it is the
// paper's Theorem 5.1 shape); `isp` is a preferential-attachment mesh,
// where redundancy is so rich that pure backup usually wins — the sweep
// shows that too.
#include <iostream>

#include "src/core/cost_model.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/lower_bound.hpp"
#include "src/util/options.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace ftb;
  Options opt(argc, argv);
  const Vertex n = static_cast<Vertex>(opt.get_int("n", 1500));
  const CostParams prices{opt.get_double("backup", 1.0),
                          opt.get_double("reinforce", 60.0)};

  Graph g;
  Vertex source = 0;
  if (opt.get_string("topology", "backbone") == "isp") {
    g = gen::preferential_attachment(n, 3, 7);
  } else {
    auto lbg = lb::build_single_source(n, 0.5);
    g = std::move(lbg.graph);
    source = lbg.source;
  }
  std::cout << "network: " << g.summary() << ", prices: B=" << prices.backup_price
            << " R=" << prices.reinforce_price
            << " (ratio " << prices.ratio() << ")\n\n";

  const std::vector<double> grid{0.0, 0.1, 0.2, 0.25, 1.0 / 3.0, 0.5};
  const DesignSweep sweep = design_sweep(g, source, prices, grid);

  Table t("candidate designs");
  t.columns({"eps", "backup", "reinforced", "total_edges", "cost"});
  for (const auto& pt : sweep.points) {
    t.row(pt.eps, pt.backup, pt.reinforced, pt.edges, pt.cost);
  }
  t.print(std::cout);

  const DesignPoint& best = sweep.best();
  std::cout << "\nanalytic predictor suggests eps* ≈ "
            << predicted_optimal_eps(n, prices) << "\n";
  std::cout << "chosen design: eps=" << best.eps << ", " << best.backup
            << " backup + " << best.reinforced << " reinforced, total cost "
            << best.cost << " (B units)\n";

  const EpsilonResult final = design_cheapest(g, source, prices, grid);
  std::cout << "final structure: " << final.structure.summary() << "\n";
  std::cout << "reinforce these links (never allowed to fail):\n  ";
  std::size_t shown = 0;
  for (const EdgeId e : final.structure.reinforced()) {
    const auto [u, v] = g.edge(e);
    std::cout << "(" << u << "," << v << ") ";
    if (++shown >= 12) {
      std::cout << "... +" << final.structure.reinforced().size() - shown
                << " more";
      break;
    }
  }
  std::cout << "\n";
  return 0;
}
