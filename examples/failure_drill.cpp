// failure_drill — operational resilience rehearsal.
//
// Deploy an ε FT-BFS structure over a metro-grid network, then inject a
// storm of random single-link failures and measure the service level of
// the surviving structure: a correct deployment reports stretch 1.0 and
// zero SLA violations. For contrast, the same drill runs against a naive
// "just the BFS tree" deployment, which fails the drill visibly.
//
//   ./example_failure_drill [--rows=18] [--cols=18] [--eps=0.3]
//   [--drills=300]
#include <iostream>

#include "src/core/epsilon_ftbfs.hpp"
#include "src/core/structure_oracle.hpp"
#include "src/core/vertex_ftbfs.hpp"
#include "src/graph/bfs_tree.hpp"
#include "src/graph/generators.hpp"
#include "src/sim/failure_sim.hpp"
#include "src/util/options.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace ftb;
  Options opt(argc, argv);
  const Vertex rows = static_cast<Vertex>(opt.get_int("rows", 18));
  const Vertex cols = static_cast<Vertex>(opt.get_int("cols", 18));
  const double eps = opt.get_double("eps", 0.3);
  const std::int64_t drills = opt.get_int("drills", 300);

  // Metro grid + a handful of express diagonals.
  GraphBuilder b(rows * cols);
  {
    const Graph grid = gen::grid_graph(rows, cols);
    for (EdgeId e = 0; e < grid.num_edges(); ++e) {
      const auto [u, v] = grid.edge(e);
      b.add_edge(u, v);
    }
    Rng rng(99);
    for (int i = 0; i < rows * cols / 4; ++i) {
      const Vertex u = static_cast<Vertex>(
          rng.next_below(static_cast<std::uint64_t>(rows * cols)));
      const Vertex v = static_cast<Vertex>(
          rng.next_below(static_cast<std::uint64_t>(rows * cols)));
      if (u != v) b.add_edge(u, v);
    }
  }
  const Graph g = b.build();
  const Vertex source = 0;  // northwest depot
  std::cout << "metro network: " << g.summary() << "\n";

  EpsilonOptions opts;
  opts.eps = eps;
  const EpsilonResult res = build_epsilon_ftbfs(g, source, opts);
  std::cout << "deployed: " << res.structure.summary() << "\n\n";

  std::cout << "drilling " << drills << " random single-link failures...\n";
  const DrillReport rep = run_failure_drill(res.structure, drills, 2024);
  std::cout << "  " << rep.to_string() << "\n";
  std::cout << (rep.violations == 0 ? "  SLA HELD: every surviving node kept "
                                      "its exact shortest path.\n"
                                    : "  SLA BROKEN!\n");

  // What-if sweep: the model says reinforced links never fail — but the
  // operator still wants the nightmare numbers. query_unchecked answers
  // them with ONE literal BFS per distinct failure, cached on the oracle's
  // scratch arena, so this sweep does not thrash the allocator.
  {
    const EdgeWeights w = EdgeWeights::uniform_random(g, opts.weight_seed);
    const BfsTree tree(g, w, source);
    const ReplacementPathEngine engine(tree);
    const StructureOracle oracle(res.structure, engine);
    std::int64_t cutoff = 0, degraded = 0, queries = 0;
    Timer t;
    for (const EdgeId e : res.structure.reinforced()) {
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        const std::int32_t d = oracle.query_unchecked(v, e);
        ++queries;
        if (d >= kInfHops) {
          ++cutoff;
        } else if (d > tree.depth(v)) {
          ++degraded;
        }
      }
    }
    std::cout << "\nwhat-if: even the " << res.structure.num_reinforced()
              << " reinforced links can fail (" << queries << " queries in "
              << t.seconds() << "s): " << degraded << " degraded, " << cutoff
              << " cut off\n";
  }

  // A router (vertex) storm against a vertex-fault deployment of the same
  // metro network — the other half of the fault-model policy layer.
  const FtBfsStructure vh = build_vertex_ftbfs(g, source);
  std::cout << "\nvertex-fault deployment: " << vh.summary() << "\n";
  const DrillReport vrep =
      run_failure_drill(vh, FaultClass::kVertex, drills, 2024);
  std::cout << "  " << vrep.to_string() << "\n";
  std::cout << (vrep.violations == 0 ? "  SLA HELD under router failures.\n"
                                     : "  SLA BROKEN!\n");

  // The naive deployment for contrast: just the BFS tree, nothing else.
  const EdgeWeights w = EdgeWeights::uniform_random(g, 1);
  const BfsTree tree(g, w, source);
  const FtBfsStructure naive(g, source, tree.tree_edges(), {},
                             tree.tree_edges());
  const DrillReport naive_rep = run_failure_drill(naive, drills, 2024);
  std::cout << "\nnaive BFS-tree deployment under the same storm:\n  "
            << naive_rep.to_string() << "\n";
  std::cout << "  (stretch " << naive_rep.max_stretch
            << "x — this is what the paper's structures prevent)\n";
  return rep.violations == 0 && vrep.violations == 0 ? 0 : 1;
}
