// failure_drill — operational resilience rehearsal, served by the facade.
//
// Deploy an ε FT-BFS structure over a metro-grid network as an
// api::Session, then inject a storm of random single-link failures and
// measure the service level of the surviving structure: a correct
// deployment reports stretch 1.0 and zero SLA violations. The drill's
// surviving-graph side is answered by the session's batched query plane
// (one O(1) lookup per query instead of a BFS per drill). For contrast,
// the same storm runs against a naive "just the BFS tree" deployment,
// which fails the drill visibly.
//
//   ./example_failure_drill [--rows=18] [--cols=18] [--eps=0.3]
//   [--drills=300]
#include <iostream>

#include "src/api/ftbfs_api.hpp"
#include "src/graph/bfs_tree.hpp"
#include "src/graph/generators.hpp"
#include "src/sim/failure_sim.hpp"
#include "src/util/options.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace ftb;
  Options opt(argc, argv);
  const Vertex rows = static_cast<Vertex>(opt.get_int("rows", 18));
  const Vertex cols = static_cast<Vertex>(opt.get_int("cols", 18));
  const double eps = opt.get_double("eps", 0.3);
  const std::int64_t drills = opt.get_int("drills", 300);

  // Metro grid + a handful of express diagonals.
  GraphBuilder b(rows * cols);
  {
    const Graph grid = gen::grid_graph(rows, cols);
    for (EdgeId e = 0; e < grid.num_edges(); ++e) {
      const auto [u, v] = grid.edge(e);
      b.add_edge(u, v);
    }
    Rng rng(99);
    for (int i = 0; i < rows * cols / 4; ++i) {
      const Vertex u = static_cast<Vertex>(
          rng.next_below(static_cast<std::uint64_t>(rows * cols)));
      const Vertex v = static_cast<Vertex>(
          rng.next_below(static_cast<std::uint64_t>(rows * cols)));
      if (u != v) b.add_edge(u, v);
    }
  }
  const Graph g = b.build();
  const Vertex source = 0;  // northwest depot
  std::cout << "metro network: " << g.summary() << "\n";

  api::BuildSpec spec;
  spec.sources = {source};
  spec.eps = eps;
  const api::Session session = api::Session::open(g, spec);
  std::cout << "deployed: " << session.structure().summary() << "\n\n";

  std::cout << "drilling " << drills << " random single-link failures "
               "through the session...\n";
  const DrillReport rep =
      run_failure_drill(session, FaultClass::kEdge, drills, 2024);
  std::cout << "  " << rep.to_string() << "\n";
  std::cout << (rep.violations == 0 ? "  SLA HELD: every surviving node kept "
                                      "its exact shortest path.\n"
                                    : "  SLA BROKEN!\n");

  // What-if sweep: the model says reinforced links never fail, and routers
  // are outside the edge model entirely — but the operator still wants the
  // nightmare numbers. One batched query() answers both: the plane groups
  // the out-of-model failures and pays ONE literal traversal per distinct
  // fault, fanned out across the pool's workers.
  {
    std::vector<api::Query> storm;
    for (const EdgeId e : session.structure().reinforced()) {
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        api::Query q;
        q.v = v;
        q.kind = FaultClass::kEdge;
        q.fault = e;
        q.allow_what_if = true;
        storm.push_back(q);
      }
    }
    Rng rng(7);
    for (int i = 0; i < 12; ++i) {  // a dozen random router failures
      const Vertex x = static_cast<Vertex>(
          1 + rng.next_below(static_cast<std::uint64_t>(g.num_vertices() - 1)));
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        api::Query q;
        q.v = v;
        q.kind = FaultClass::kVertex;
        q.fault = x;
        q.allow_what_if = true;
        storm.push_back(q);
      }
    }
    Timer t;
    const api::QueryResponse what_if = session.query(storm);
    std::int64_t cutoff = 0, degraded = 0;
    for (std::size_t i = 0; i < storm.size(); ++i) {
      const std::int32_t d = what_if.results[i].dist;
      if (d >= kInfHops) {
        ++cutoff;
      } else if (d > session.distance(0, storm[i].v)) {
        ++degraded;
      }
    }
    std::cout << "\nwhat-if: " << storm.size() << " out-of-model queries ("
              << what_if.what_if_traversals << " literal traversals) in "
              << t.seconds() << "s: " << degraded << " degraded, " << cutoff
              << " cut off\n";
  }

  // A router (vertex) storm against a vertex-fault deployment of the same
  // metro network — same facade, one field changed.
  api::BuildSpec vspec;
  vspec.fault_model = FaultClass::kVertex;
  vspec.sources = {source};
  const api::Session vsession = api::Session::open(g, vspec);
  std::cout << "\nvertex-fault deployment: "
            << vsession.structure().summary() << "\n";
  const DrillReport vrep =
      run_failure_drill(vsession, FaultClass::kVertex, drills, 2024);
  std::cout << "  " << vrep.to_string() << "\n";
  std::cout << (vrep.violations == 0 ? "  SLA HELD under router failures.\n"
                                     : "  SLA BROKEN!\n");

  // The naive deployment for contrast: just the BFS tree, nothing else.
  const EdgeWeights w = EdgeWeights::uniform_random(g, 1);
  const BfsTree tree(g, w, source);
  const FtBfsStructure naive(g, source, tree.tree_edges(), {},
                             tree.tree_edges());
  const DrillReport naive_rep = run_failure_drill(naive, drills, 2024);
  std::cout << "\nnaive BFS-tree deployment under the same storm:\n  "
            << naive_rep.to_string() << "\n";
  std::cout << "  (stretch " << naive_rep.max_stretch
            << "x — this is what the paper's structures prevent)\n";
  return rep.violations == 0 && vrep.violations == 0 ? 0 : 1;
}
