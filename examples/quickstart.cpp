// quickstart — the 60-second tour of the library (mirrors README.md).
//
// Build a graph, construct an ε FT-BFS structure, fail an edge, and watch
// the surviving structure still answer exact BFS distances.
#include <iostream>

#include "src/core/epsilon_ftbfs.hpp"
#include "src/core/verifier.hpp"
#include "src/graph/generators.hpp"

int main() {
  using namespace ftb;

  // 1. A network: 400 nodes, random connected, ~3000 extra links.
  const Graph g = gen::random_connected(400, 3000, /*seed=*/42);
  const Vertex source = 0;
  std::cout << "network: " << g.summary() << "\n";

  // 2. Build the (b, r) FT-BFS structure at ε = 1/4: backup edges are
  //    cheap but fault-prone, reinforced edges never fail.
  EpsilonOptions opts;
  opts.eps = 0.25;
  const EpsilonResult res = build_epsilon_ftbfs(g, source, opts);
  const FtBfsStructure& h = res.structure;
  std::cout << "structure: " << h.summary() << "\n";
  std::cout << "  kept " << h.num_edges() << " of " << g.num_edges()
            << " edges (" << h.num_backup() << " backup + "
            << h.num_reinforced() << " reinforced)\n";

  // 3. Fail any fault-prone edge: distances from the source survive.
  EdgeId victim = kInvalidEdge;
  for (const EdgeId e : h.edges()) {
    if (!h.is_reinforced(e)) {
      victim = e;
      break;
    }
  }
  const auto [u, v] = g.edge(victim);
  std::cout << "failing edge (" << u << "," << v << ") ...\n";
  const auto dist_h = h.distances_avoiding(victim);
  std::cout << "  dist(source, " << v << ") in H\\{e} = "
            << dist_h[static_cast<std::size_t>(v)] << "\n";

  // 4. Don't take our word for it — the verifier replays *every* failure.
  const VerifyReport report = verify_structure(h);
  std::cout << "exhaustive verification: " << report.to_string() << "\n";
  return report.ok ? 0 : 1;
}
