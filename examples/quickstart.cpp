// quickstart — the 60-second tour of the library (mirrors README.md).
//
// One spec, one build call, one session: construct an ε FT-BFS structure
// through the ftb::api facade, fail an edge, and batch-query the surviving
// distances from the thread-safe query plane.
#include <iostream>

#include "src/api/ftbfs_api.hpp"
#include "src/core/verifier.hpp"
#include "src/graph/generators.hpp"

int main() {
  using namespace ftb;

  // 1. A network: 400 nodes, random connected, ~3000 extra links.
  const Graph g = gen::random_connected(400, 3000, /*seed=*/42);
  std::cout << "network: " << g.summary() << "\n";

  // 2. One spec describes the whole build: fault model x epsilon x sources.
  //    At eps = 1/4 backup edges are cheap but fault-prone, reinforced
  //    edges never fail.
  api::BuildSpec spec;
  spec.fault_model = FaultClass::kEdge;
  spec.sources = {0};
  spec.eps = 0.25;
  const api::Session session = api::Session::open(g, spec);
  const FtBfsStructure& h = session.structure();
  std::cout << "structure: " << h.summary() << "\n";
  std::cout << "  kept " << h.num_edges() << " of " << g.num_edges()
            << " edges (" << h.num_backup() << " backup + "
            << h.num_reinforced() << " reinforced)\n";

  // 3. Fail any fault-prone edge: distances from the source survive. The
  //    session answers a whole batch at once — every in-model hit is an
  //    O(1) table lookup, and any number of threads may call query().
  EdgeId victim = kInvalidEdge;
  for (const EdgeId e : h.edges()) {
    if (!h.is_reinforced(e)) {
      victim = e;
      break;
    }
  }
  const auto [u, v] = g.edge(victim);
  std::cout << "failing edge (" << u << "," << v << ") ...\n";
  std::vector<api::Query> batch;
  for (Vertex w = 0; w < g.num_vertices(); ++w) {
    api::Query q;
    q.v = w;
    q.kind = FaultClass::kEdge;
    q.fault = victim;
    batch.push_back(q);
  }
  const api::QueryResponse resp = session.query(batch);
  std::cout << "  " << resp.in_model << " O(1) in-model answers; "
            << "dist(source, " << v << ") in H\\{e} = "
            << resp.results[static_cast<std::size_t>(v)].dist << "\n";

  // 4. Don't take our word for it — the verifier replays *every* failure.
  const VerifyReport report = verify_structure(h);
  std::cout << "exhaustive verification: " << report.to_string() << "\n";
  return report.ok ? 0 : 1;
}
