// multi_source_test.cpp — the FT-MBFS union construction. The family
// sweep runs on the seeded property harness (tests/property_test_util.hpp)
// so a failing case prints its FTBFS_PROPERTY_SEED reproduction.
#include <gtest/gtest.h>

#include "src/core/multi_source.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/lower_bound.hpp"
#include "tests/property_test_util.hpp"

namespace ftb {
namespace {

TEST(MultiSource, ContractHoldsForEverySource) {
  const Graph g = gen::gnm(40, 150, 77);
  const std::vector<Vertex> sources{0, 7, 23};
  EpsilonOptions opts;
  opts.eps = 0.3;
  const MultiSourceResult ms = build_epsilon_ftmbfs(g, sources, opts);
  EXPECT_EQ(verify_multi_source(g, ms), 0);
}

TEST(MultiSource, PropertySweepContractHoldsOnEveryFamily) {
  // Three spread sources per seeded family case, both union flavors.
  for (const test::PropertyCase& pc : test::property_cases(30, 1)) {
    FTB_PROPERTY_TRACE(pc, "multi_source_test");
    const Vertex n = pc.graph.num_vertices();
    ASSERT_GE(n, 9);
    const std::vector<Vertex> sources{0, n / 3, (2 * n) / 3};
    EpsilonOptions opts;
    opts.eps = 0.3;
    const MultiSourceResult ms =
        build_epsilon_ftmbfs(pc.graph, sources, opts);
    EXPECT_EQ(verify_multi_source(pc.graph, ms), 0) << pc.name();
    const MultiSourceResult vms = build_vertex_ftmbfs(pc.graph, sources);
    EXPECT_EQ(verify_vertex_multi_source(pc.graph, vms), 0) << pc.name();
  }
}

TEST(MultiSource, ContractHoldsAtEndpointEps) {
  const Graph g = gen::random_connected(36, 60, 5);
  const std::vector<Vertex> sources{0, 18};
  for (const double eps : {0.0, 0.5, 1.0}) {
    EpsilonOptions opts;
    opts.eps = eps;
    const MultiSourceResult ms = build_epsilon_ftmbfs(g, sources, opts);
    EXPECT_EQ(verify_multi_source(g, ms), 0) << "eps=" << eps;
  }
}

TEST(MultiSource, UnionDominatesEverySingleSource) {
  const Graph g = gen::gnm(36, 140, 81);
  const std::vector<Vertex> sources{0, 5, 11};
  EpsilonOptions opts;
  opts.eps = 0.25;
  const MultiSourceResult ms = build_epsilon_ftmbfs(g, sources, opts);
  for (const Vertex s : sources) {
    const EpsilonResult single = build_epsilon_ftbfs(g, s, opts);
    EXPECT_GE(ms.structure.num_edges(), single.structure.num_edges());
    for (const EdgeId e : single.structure.edges()) {
      EXPECT_TRUE(ms.structure.contains(e));
    }
  }
}

TEST(MultiSource, PerSourceStatsAligned) {
  const Graph g = gen::gnm(30, 100, 83);
  const std::vector<Vertex> sources{2, 9};
  EpsilonOptions opts;
  opts.eps = 0.3;
  const MultiSourceResult ms = build_epsilon_ftmbfs(g, sources, opts);
  ASSERT_EQ(ms.per_source.size(), sources.size());
  for (const auto& st : ms.per_source) {
    EXPECT_EQ(st.n, g.num_vertices());
    EXPECT_GE(st.structure_edges, g.num_vertices() - 1);
  }
}

TEST(MultiSource, WorksOnTheTheorem54Graph) {
  const auto lb = lb::build_multi_source(400, 2, 0.3);
  EpsilonOptions opts;
  opts.eps = 0.3;
  const MultiSourceResult ms =
      build_epsilon_ftmbfs(lb.graph, lb.sources, opts);
  // Spot-verify (cap failures for runtime).
  EXPECT_EQ(verify_multi_source(lb.graph, ms, /*max_failures=*/150), 0);
  // Certified bound holds for the union as well.
  EXPECT_GE(ms.structure.num_backup(),
            lb.certified_min_backup(ms.structure.num_reinforced()));
}

TEST(MultiSource, SingleSourceDegeneratesToEpsilonFtBfs) {
  const Graph g = gen::gnm(30, 110, 85);
  EpsilonOptions opts;
  opts.eps = 0.3;
  const MultiSourceResult ms = build_epsilon_ftmbfs(g, {4}, opts);
  const EpsilonResult single = build_epsilon_ftbfs(g, 4, opts);
  EXPECT_EQ(ms.structure.edges(), single.structure.edges());
  EXPECT_EQ(ms.structure.reinforced(), single.structure.reinforced());
}

TEST(MultiSource, EmptySourcesRejected) {
  const Graph g = gen::path_graph(4);
  EXPECT_THROW(build_epsilon_ftmbfs(g, {}, {}), CheckError);
  EXPECT_THROW(build_vertex_ftmbfs(g, {}, {}), CheckError);
}

TEST(MultiSource, VertexUnionContractHoldsForEverySource) {
  const Graph g = gen::gnm(40, 150, 87);
  const std::vector<Vertex> sources{0, 7, 23};
  const MultiSourceResult ms = build_vertex_ftmbfs(g, sources);
  EXPECT_EQ(ms.structure.fault_class(), FaultClass::kVertex);
  EXPECT_EQ(verify_vertex_multi_source(g, ms), 0);
}

TEST(MultiSource, VertexUnionDominatesEverySingleSource) {
  const Graph g = gen::gnm(36, 140, 89);
  const std::vector<Vertex> sources{0, 5, 11};
  const MultiSourceResult ms = build_vertex_ftmbfs(g, sources);
  for (const Vertex s : sources) {
    const FtBfsStructure single = build_vertex_ftbfs(g, s);
    for (const EdgeId e : single.edges()) {
      EXPECT_TRUE(ms.structure.contains(e));
    }
  }
}

TEST(MultiSource, BitParallelKnobIsByteIdenticalAcrossUnions) {
  // The fused multi-source kernel vs σ scalar canonical builds: every union
  // flavor must emit the same structure byte for byte with the knob on or
  // off, across the property harness's adversarial families.
  for (const test::PropertyCase& pc : test::property_cases(30, 1)) {
    FTB_PROPERTY_TRACE(pc, "multi_source_test");
    const Vertex n = pc.graph.num_vertices();
    const std::vector<Vertex> sources{0, n / 3, (2 * n) / 3};

    EpsilonOptions eps_on;
    eps_on.eps = 0.3;
    EpsilonOptions eps_off = eps_on;
    eps_off.bit_parallel = false;
    const MultiSourceResult ea = build_epsilon_ftmbfs(pc.graph, sources, eps_on);
    const MultiSourceResult eb =
        build_epsilon_ftmbfs(pc.graph, sources, eps_off);
    EXPECT_EQ(ea.structure.edges(), eb.structure.edges()) << pc.name();
    EXPECT_EQ(ea.structure.reinforced(), eb.structure.reinforced())
        << pc.name();
    EXPECT_EQ(ea.structure.tree_edges(), eb.structure.tree_edges())
        << pc.name();
    ASSERT_EQ(ea.per_source.size(), eb.per_source.size()) << pc.name();
    for (std::size_t i = 0; i < ea.per_source.size(); ++i) {
      EXPECT_EQ(ea.per_source[i].structure_edges,
                eb.per_source[i].structure_edges)
          << pc.name() << " source " << i;
    }

    VertexFtBfsOptions v_on;
    VertexFtBfsOptions v_off;
    v_off.bit_parallel = false;
    const MultiSourceResult va = build_vertex_ftmbfs(pc.graph, sources, v_on);
    const MultiSourceResult vb = build_vertex_ftmbfs(pc.graph, sources, v_off);
    EXPECT_EQ(va.structure.edges(), vb.structure.edges()) << pc.name();
    EXPECT_EQ(va.structure.tree_edges(), vb.structure.tree_edges())
        << pc.name();

    const MultiSourceResult ma =
        detail::build_either_ftmbfs_impl(pc.graph, sources, v_on);
    const MultiSourceResult mb =
        detail::build_either_ftmbfs_impl(pc.graph, sources, v_off);
    EXPECT_EQ(ma.structure.edges(), mb.structure.edges()) << pc.name();
    EXPECT_EQ(ma.structure.tree_edges(), mb.structure.tree_edges())
        << pc.name();
  }
}

TEST(MultiSource, VertexSingleSourceDegeneratesToBaseline) {
  const Graph g = gen::gnm(30, 110, 91);
  const MultiSourceResult ms = build_vertex_ftmbfs(g, {4});
  const FtBfsStructure single = build_vertex_ftbfs(g, 4);
  EXPECT_EQ(ms.structure.edges(), single.edges());
  EXPECT_EQ(ms.structure.tree_edges(), single.tree_edges());
}

}  // namespace
}  // namespace ftb
