// binary_edge_list_test.cpp — the binary graph-ingestion plane: round-trip
// determinism, the text ↔ binary bit-identity contract (a deduped text
// load and a binary load of the same graph produce the same Graph and the
// same re-encoded bytes), the magic-sniffing auto loader, the streaming
// add_canonical_edge misuse checks, and the zero-trust rejection matrix —
// every malformed header field, count lie, checksum mismatch, truncation,
// trailing tail, and non-canonical edge a CheckError with byte-offset +
// section context.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "src/graph/generators.hpp"
#include "src/graph/graph.hpp"
#include "src/io/binary_edge_list.hpp"
#include "src/io/edge_list.hpp"
#include "src/util/crc32c.hpp"

namespace ftb {
namespace {

std::span<const std::byte> as_span(const std::string& bytes) {
  return std::as_bytes(std::span<const char>(bytes.data(), bytes.size()));
}

void expect_same_graph(const Graph& a, const Graph& b,
                       const std::string& what) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices()) << what;
  ASSERT_EQ(a.num_edges(), b.num_edges()) << what;
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e), b.edge(e)) << what << ": edge " << e;
  }
}

/// Asserts the reader refuses `bytes` with every needle (offset + section
/// context included) present in the message.
void expect_rejected(const std::string& bytes,
                     const std::vector<std::string>& needles,
                     const std::string& what) {
  try {
    io::read_binary_edge_list(as_span(bytes));
    FAIL() << what << ": accepted";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    for (const std::string& needle : needles) {
      EXPECT_NE(msg.find(needle), std::string::npos)
          << what << ": message '" << msg << "' lacks '" << needle << "'";
    }
  }
}

void put_u32_at(std::string* bytes, std::size_t at, std::uint32_t v) {
  for (int b = 0; b < 4; ++b) {
    (*bytes)[at + static_cast<std::size_t>(b)] =
        static_cast<char>(v >> (8 * b));
  }
}

void put_u64_at(std::string* bytes, std::size_t at, std::uint64_t v) {
  put_u32_at(bytes, at, static_cast<std::uint32_t>(v));
  put_u32_at(bytes, at + 4, static_cast<std::uint32_t>(v >> 32));
}

/// Refreshes the header CRC over the edge array so a header edit is the
/// ONLY lie the reader sees.
void fix_crc(std::string* bytes) {
  put_u32_at(bytes, 32,
             crc32c(std::string_view(bytes->data() + 64,
                                     bytes->size() - 64)));
}

TEST(BinaryEdgeList, RoundTripsDeterministically) {
  const Graph g = gen::random_connected(60, 140, 7);
  const std::string w1 = io::write_binary_edge_list_bytes(g);
  const Graph r = io::read_binary_edge_list(as_span(w1));
  expect_same_graph(g, r, "round trip");
  EXPECT_EQ(io::write_binary_edge_list_bytes(r), w1);
  EXPECT_TRUE(io::is_binary_edge_list_magic(w1));
}

TEST(BinaryEdgeList, EmptyAndEdgelessGraphsRoundTrip) {
  GraphBuilder b(3);  // 3 isolated vertices, zero edges
  const Graph g = b.build();
  const std::string bytes = io::write_binary_edge_list_bytes(g);
  EXPECT_EQ(bytes.size(), 64u);
  const Graph r = io::read_binary_edge_list(as_span(bytes));
  expect_same_graph(g, r, "edgeless");
}

TEST(BinaryEdgeList, MatchesTheTextPlaneBitForBit) {
  const Graph g = gen::grid_graph(6, 7);

  // Text edge list — with a swapped-endpoint duplicate thrown in: the
  // text reader's canonical dedup must land on exactly the edge order the
  // binary format stores.
  std::ostringstream noisy;
  noisy << g.num_vertices() << ' ' << g.num_edges() + 1 << '\n';
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    noisy << u << ' ' << v << '\n';
  }
  const auto [u0, v0] = g.edge(0);
  noisy << v0 << ' ' << u0 << '\n';  // duplicate of edge 0, endpoints swapped
  std::istringstream noisy_in(noisy.str());
  const Graph from_text = io::read_edge_list(noisy_in);

  const Graph from_binary = io::read_binary_edge_list(
      as_span(io::write_binary_edge_list_bytes(g)));
  expect_same_graph(from_text, from_binary, "text vs binary");
  EXPECT_EQ(io::write_binary_edge_list_bytes(from_text),
            io::write_binary_edge_list_bytes(from_binary));
}

TEST(BinaryEdgeList, AutoLoaderSniffsTheMagic) {
  const Graph g = gen::random_connected(30, 60, 11);
  const std::string bin_path = "binary_edge_list_test_scratch.bin";
  const std::string txt_path = "binary_edge_list_test_scratch.txt";
  io::save_binary_edge_list(g, bin_path);
  io::save_edge_list(g, txt_path);
  EXPECT_TRUE(io::is_binary_edge_list(bin_path));
  EXPECT_FALSE(io::is_binary_edge_list(txt_path));
  expect_same_graph(g, io::load_edge_list_auto(bin_path), "auto binary");
  expect_same_graph(g, io::load_edge_list_auto(txt_path), "auto text");
  expect_same_graph(g, io::load_binary_edge_list(bin_path), "binary load");
  std::remove(bin_path.c_str());
  std::remove(txt_path.c_str());
  EXPECT_FALSE(io::is_binary_edge_list(bin_path));
}

TEST(BinaryEdgeList, HeaderLiesAreRejectedWithContext) {
  const Graph g = gen::random_connected(20, 30, 13);
  const std::string good = io::write_binary_edge_list_bytes(g);

  expect_rejected("", {"shorter than the 64-byte header", "at byte 0"},
                  "empty file");
  expect_rejected(good.substr(0, 63),
                  {"shorter than the 64-byte header", "header"},
                  "63-byte file");

  std::string bad = good;
  bad[0] = 'x';
  expect_rejected(bad, {"bad binary edge-list magic", "at byte 0"},
                  "magic flip");

  bad = good;
  put_u32_at(&bad, 8, 9);
  expect_rejected(bad, {"unsupported binary edge-list version 9",
                        "at byte 8"},
                  "version lie");

  bad = good;
  put_u32_at(&bad, 12, 0x04030201u);
  expect_rejected(bad, {"big-endian producer", "at byte 12"},
                  "byte-swapped endian tag");

  bad = good;
  put_u32_at(&bad, 12, 7);
  expect_rejected(bad, {"bad endian tag 7", "at byte 12"}, "junk endian");

  bad = good;
  put_u64_at(&bad, 16, std::uint64_t{1} << 40);
  expect_rejected(bad, {"vertex count", "overflows", "at byte 16"},
                  "n overflow");

  bad = good;
  put_u64_at(&bad, 24, std::uint64_t{20} * 19 / 2 + 1);
  expect_rejected(bad,
                  {"edge count", "possible canonical edges", "at byte 24"},
                  "m exceeds nC2");

  bad = good;
  put_u32_at(&bad, 36, 1);
  expect_rejected(bad, {"nonzero reserved header field", "at byte 36"},
                  "reserved field");

  bad = good;
  bad[50] = 1;
  expect_rejected(bad, {"nonzero reserved header byte", "at byte 50"},
                  "reserved byte");
}

TEST(BinaryEdgeList, SizeAndChecksumLiesAreRejected) {
  const Graph g = gen::random_connected(20, 30, 13);
  const std::string good = io::write_binary_edge_list_bytes(g);

  expect_rejected(good.substr(0, good.size() - 4),
                  {"edge array truncated", "section 'edges'"},
                  "truncated edge array");
  expect_rejected(good + "zz",
                  {"trailing data after the edge list", "trailer"},
                  "trailing bytes");

  std::string bad = good;
  bad[70] = static_cast<char>(static_cast<unsigned char>(bad[70]) ^ 0x01u);
  expect_rejected(bad, {"edge array checksum mismatch", "at byte 64"},
                  "payload flip");
}

TEST(BinaryEdgeList, NonCanonicalEdgesAreRejectedWithPerEdgeOffsets) {
  const Graph g = gen::path_graph(5);  // edges (0,1) (1,2) (2,3) (3,4)
  const std::string good = io::write_binary_edge_list_bytes(g);

  // Second edge's endpoints land at bytes 72 (u) and 76 (v).
  std::string bad = good;
  put_u32_at(&bad, 76, 9);  // v out of range (n = 5)
  fix_crc(&bad);
  expect_rejected(bad, {"out of range n=5", "at byte 72"}, "range lie");

  bad = good;
  put_u32_at(&bad, 72, 2);
  put_u32_at(&bad, 76, 2);  // self loop ⇒ not canonical
  fix_crc(&bad);
  expect_rejected(bad, {"is not canonical (u < v)", "at byte 72"},
                  "self loop");

  bad = good;
  put_u32_at(&bad, 72, 3);
  put_u32_at(&bad, 76, 4);  // (3,4) in slot 1 puts slot 2's (2,3) behind it
  fix_crc(&bad);
  expect_rejected(bad, {"out of strictly ascending canonical order",
                        "at byte 80"},
                  "descending order");

  bad = good;
  // Duplicate of the first edge in slot two — equality is also an order
  // violation (strictly ascending).
  put_u32_at(&bad, 72, 0);
  put_u32_at(&bad, 76, 1);
  fix_crc(&bad);
  expect_rejected(bad, {"out of strictly ascending canonical order"},
                  "duplicate edge");
}

TEST(BinaryEdgeList, StreamingBuilderRefusesMisuse) {
  GraphBuilder mixed(4);
  mixed.add_edge(2, 1);  // non-canonical order taints the builder
  EXPECT_THROW(mixed.add_canonical_edge(2, 3), CheckError);

  GraphBuilder b(4);
  b.add_canonical_edge(0, 1);
  EXPECT_THROW(b.add_canonical_edge(1, 0), CheckError);  // u < v violated
  EXPECT_THROW(b.add_canonical_edge(0, 1), CheckError);  // duplicate
  EXPECT_THROW(b.add_canonical_edge(0, 9), CheckError);  // out of range
  b.add_canonical_edge(1, 3);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.edge(0), std::make_pair(Vertex{0}, Vertex{1}));
  EXPECT_EQ(g.edge(1), std::make_pair(Vertex{1}, Vertex{3}));
}

}  // namespace
}  // namespace ftb
