// generators_test.cpp — exact counts and structural invariants per family.
#include <gtest/gtest.h>

#include "src/graph/canonical_bfs.hpp"
#include "src/graph/generators.hpp"

namespace ftb {
namespace {

bool connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  const BfsResult r = plain_bfs(g, 0);
  return static_cast<Vertex>(r.order.size()) == g.num_vertices();
}

TEST(Generators, PathGraph) {
  const Graph g = gen::path_graph(10);
  EXPECT_EQ(g.num_edges(), 9);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(5), 2);
  EXPECT_TRUE(connected(g));
}

TEST(Generators, CycleGraph) {
  const Graph g = gen::cycle_graph(10);
  EXPECT_EQ(g.num_edges(), 10);
  for (Vertex v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_THROW(gen::cycle_graph(2), CheckError);
}

TEST(Generators, StarGraph) {
  const Graph g = gen::star_graph(12);
  EXPECT_EQ(g.num_edges(), 11);
  EXPECT_EQ(g.degree(0), 11);
  EXPECT_EQ(g.degree(3), 1);
}

TEST(Generators, CompleteGraph) {
  const Graph g = gen::complete_graph(9);
  EXPECT_EQ(g.num_edges(), 9 * 8 / 2);
  for (Vertex v = 0; v < 9; ++v) EXPECT_EQ(g.degree(v), 8);
}

TEST(Generators, CompleteBipartite) {
  const Graph g = gen::complete_bipartite(4, 7);
  EXPECT_EQ(g.num_vertices(), 11);
  EXPECT_EQ(g.num_edges(), 28);
  EXPECT_EQ(g.degree(0), 7);   // left side
  EXPECT_EQ(g.degree(10), 4);  // right side
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 4));
}

TEST(Generators, GridGraph) {
  const Graph g = gen::grid_graph(5, 8);
  EXPECT_EQ(g.num_vertices(), 40);
  EXPECT_EQ(g.num_edges(), 5 * 7 + 4 * 8);
  EXPECT_EQ(g.degree(0), 2);   // corner
  EXPECT_EQ(g.degree(1), 3);   // boundary (row 0, col 1)
  EXPECT_EQ(g.degree(9), 4);   // interior (row 1, col 1)
  EXPECT_TRUE(connected(g));
}

TEST(Generators, BinaryTree) {
  const Graph g = gen::binary_tree(15);
  EXPECT_EQ(g.num_edges(), 14);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(14), 1);  // leaf
  EXPECT_TRUE(connected(g));
}

TEST(Generators, Caterpillar) {
  const Graph g = gen::caterpillar(5, 3);
  EXPECT_EQ(g.num_vertices(), 20);
  EXPECT_EQ(g.num_edges(), 4 + 15);
  EXPECT_TRUE(connected(g));
}

TEST(Generators, ErdosRenyiDeterministicPerSeed) {
  const Graph a = gen::erdos_renyi(30, 0.2, 5);
  const Graph b = gen::erdos_renyi(30, 0.2, 5);
  const Graph c = gen::erdos_renyi(30, 0.2, 6);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_NE(a.num_edges(), 0);
  // Different seed should (overwhelmingly) differ.
  bool differs = a.num_edges() != c.num_edges();
  if (!differs) {
    for (EdgeId e = 0; e < a.num_edges(); ++e) {
      if (a.edge(e) != c.edge(e)) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Generators, ErdosRenyiExtremes) {
  EXPECT_EQ(gen::erdos_renyi(10, 0.0, 1).num_edges(), 0);
  EXPECT_EQ(gen::erdos_renyi(10, 1.0, 1).num_edges(), 45);
}

TEST(Generators, GnmExactCount) {
  const Graph g = gen::gnm(25, 100, 3);
  EXPECT_EQ(g.num_edges(), 100);
  // Request beyond the max clamps.
  const Graph full = gen::gnm(10, 1000, 3);
  EXPECT_EQ(full.num_edges(), 45);
}

TEST(Generators, RandomConnectedIsConnected) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = gen::random_connected(50, 30, seed);
    EXPECT_TRUE(connected(g)) << "seed " << seed;
    EXPECT_GE(g.num_edges(), 49);
  }
}

TEST(Generators, PreferentialAttachmentConnectedWithMinDegree) {
  const Graph g = gen::preferential_attachment(60, 3, 9);
  EXPECT_TRUE(connected(g));
  for (Vertex v = 3; v < 60; ++v) EXPECT_GE(g.degree(v), 3);
}

TEST(Generators, IntroExample) {
  const Graph g = gen::intro_example(10);
  EXPECT_EQ(g.degree(0), 1);                        // s — the bridge
  EXPECT_EQ(g.num_edges(), 1 + 9 * 8 / 2);          // bridge + K_9
  EXPECT_EQ(g.degree(1), 9);                        // clique + bridge
  EXPECT_EQ(g.degree(2), 8);                        // clique only
}


TEST(Generators, Hypercube) {
  const Graph g = gen::hypercube(4);
  EXPECT_EQ(g.num_vertices(), 16);
  EXPECT_EQ(g.num_edges(), 32);  // n·d/2
  for (Vertex v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4);
  EXPECT_TRUE(connected(g));
}

TEST(Generators, Dumbbell) {
  const Graph g = gen::dumbbell(5, 3);
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.num_edges(), 2 * 10 + 3);
  EXPECT_TRUE(connected(g));
}

TEST(Generators, ThetaGraph) {
  const Graph g = gen::theta_graph(3, 4);
  EXPECT_EQ(g.num_vertices(), 2 + 3 * 3);
  EXPECT_EQ(g.num_edges(), 3 * 4);
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(g.degree(1), 3);
  EXPECT_TRUE(connected(g));
}

TEST(Generators, Lollipop) {
  const Graph g = gen::lollipop(6, 4);
  EXPECT_EQ(g.num_vertices(), 10);
  EXPECT_EQ(g.num_edges(), 15 + 4);
  EXPECT_EQ(g.degree(9), 1);  // tail end
  EXPECT_TRUE(connected(g));
}

}  // namespace
}  // namespace ftb
