// util_test.cpp — RNG, thread pool, table, options, check machinery.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <numeric>
#include <sstream>
#include <thread>
#include <vector>

#include "src/util/check.hpp"
#include "src/util/free_list_pool.hpp"
#include "src/util/options.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/timer.hpp"

namespace ftb {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LE(same, 1);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) ASSERT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 2000; ++i) ++seen[rng.next_below(5)];
  for (int c : seen) EXPECT_GT(c, 200);  // roughly uniform
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    const auto x = rng.next_in(-3, 3);
    ASSERT_GE(x, -3);
    ASSERT_LE(x, 3);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) ASSERT_EQ(sorted[static_cast<std::size_t>(i)], i);
  // And it actually moved something.
  std::vector<int> id(100);
  std::iota(id.begin(), id.end(), 0);
  EXPECT_NE(v, id);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(997);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 42) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // Pool must still be usable afterwards.
  std::atomic<int> ok{0};
  pool.parallel_for(10, [&](std::size_t) { ok++; });
  EXPECT_EQ(ok.load(), 10);
}

// Every arena the error path ever constructed, parked or in flight.
std::atomic<int> g_counted_arenas_live{0};
struct CountedArena {
  CountedArena() { ++g_counted_arenas_live; }
  ~CountedArena() { --g_counted_arenas_live; }
  std::vector<int> scratch;
};

TEST(ThreadPool, ThrowingIterationReleasesPooledArenas) {
  // The error-path leak contract: an iteration body that leases scratch
  // from a FreeListPool and then throws must still return the arena —
  // PoolLease's unwind does it — so a failed parallel_for leaves every
  // arena either parked in the pool or deleted, never stranded. Destroying
  // the pool afterwards therefore reclaims all of them.
  ThreadPool pool(4);
  {
    FreeListPool<CountedArena> arenas;
    EXPECT_THROW(
        pool.parallel_for(512,
                          [&](std::size_t i) {
                            const PoolLease<CountedArena> lease(arenas);
                            lease->scratch.assign(64, static_cast<int>(i));
                            if (i % 5 == 2) {
                              throw std::runtime_error("mid-lease boom");
                            }
                          }),
        std::runtime_error);
  }
  EXPECT_EQ(g_counted_arenas_live.load(), 0);
}

TEST(ThreadPool, FailFastAbandonsTailAfterFailure) {
  // Block 0 is claimed first off the cursor and its first iteration throws
  // immediately, so the failed flag is up while the other participants are
  // still inside their first (deliberately slow) blocks. Everything they
  // would have claimed afterwards is abandoned — the run must end with
  // most of the index space unvisited, like the serial shortcut that
  // stops at the throwing iteration.
  ThreadPool pool(2);
  constexpr std::size_t kCount = 1 << 14;
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(pool.parallel_for(kCount,
                                 [&](std::size_t i) {
                                   if (i == 0) {
                                     throw std::runtime_error("early boom");
                                   }
                                   for (int k = 0; k < 10; ++k) {
                                     std::this_thread::yield();
                                   }
                                   ran++;
                                 }),
               std::runtime_error);
  EXPECT_LT(ran.load(), kCount - 1);
  // And the pool serves the next job in full.
  std::atomic<std::size_t> ok{0};
  pool.parallel_for(100, [&](std::size_t) { ok++; });
  EXPECT_EQ(ok.load(), 100u);
}

TEST(ThreadPool, NestedInnerThrowDrainsAndPropagates) {
  // Nested parallelism: an outer iteration runs an inner parallel_for on
  // the SAME pool (the inner job drains through its caller). An inner
  // failure must finish draining the inner job, surface exactly once in
  // the outer body, fail the outer job fast, and leave the pool reusable.
  ThreadPool pool(3);
  std::atomic<int> inner_throws{0};
  EXPECT_THROW(
      pool.parallel_for(8,
                        [&](std::size_t) {
                          try {
                            pool.parallel_for(64, [&](std::size_t j) {
                              if (j == 13) {
                                throw std::runtime_error("inner boom");
                              }
                            });
                          } catch (const std::runtime_error&) {
                            inner_throws++;
                            throw;
                          }
                        }),
      std::runtime_error);
  EXPECT_GE(inner_throws.load(), 1);
  std::atomic<int> ok{0};
  pool.parallel_for(37, [&](std::size_t) { ok++; });
  EXPECT_EQ(ok.load(), 37);
}

TEST(ThreadPool, GlobalPoolSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().thread_count(), 1u);
}

TEST(ThreadPool, ParallelForIsDeterministicOnDisjointWrites) {
  // The atomic-cursor scheduler may assign blocks to threads in any order;
  // iterations with disjoint side effects must nevertheless produce the
  // exact serial result, run after run.
  ThreadPool pool(5);
  const std::size_t n = 4099;
  std::vector<std::uint64_t> serial(n);
  for (std::size_t i = 0; i < n; ++i) serial[i] = i * i + 7 * i + 3;
  for (int run = 0; run < 20; ++run) {
    std::vector<std::uint64_t> out(n, 0);
    pool.parallel_for(n, [&](std::size_t i) { out[i] = i * i + 7 * i + 3; });
    ASSERT_EQ(out, serial) << "run " << run;
  }
}

TEST(ThreadPool, ParallelForHandlesSkewedWork) {
  // Heavily skewed iteration costs exercise dynamic block claiming; every
  // index must still be visited exactly once.
  ThreadPool pool(4);
  const std::size_t n = 501;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) {
    if (i % 97 == 0) {
      volatile std::uint64_t sink = 0;
      for (int k = 0; k < 200000; ++k) {
        sink = sink + static_cast<std::uint64_t>(k);
      }
    }
    hits[i]++;
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ConcurrentCallersEachComplete) {
  // Several threads submitting to ONE pool (the global-pool pattern when
  // two engines build simultaneously): every call must run all its
  // iterations and return — no lost completion wakeups.
  ThreadPool pool(3);
  constexpr int kCallers = 4;
  constexpr int kRounds = 50;
  constexpr std::size_t kCount = 257;
  std::atomic<std::int64_t> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        std::vector<int> out(kCount, 0);
        pool.parallel_for(kCount, [&](std::size_t i) { out[i] = 1; });
        std::int64_t sum = 0;
        for (const int v : out) sum += v;
        total.fetch_add(sum);
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(),
            static_cast<std::int64_t>(kCallers) * kRounds *
                static_cast<std::int64_t>(kCount));
}

TEST(ThreadPool, ParallelForAcceptsNonStdFunctionCallables) {
  // The template overload must not round-trip through std::function; a
  // move-only-capturing callable compiles and runs.
  ThreadPool pool(2);
  auto big = std::make_unique<int>(17);
  std::vector<int> out(64, 0);
  const auto fn = [&out, big = std::move(big)](std::size_t i) {
    out[i] = *big + static_cast<int>(i);
  };
  pool.parallel_for(out.size(), fn);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], 17 + static_cast<int>(i));
  }
}

TEST(Table, AlignedPrinting) {
  Table t("demo");
  t.columns({"name", "value"});
  t.row("alpha", 42);
  t.row("b", 3.14159);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("3.142"), std::string::npos);  // %.4g
}

TEST(Table, CsvRoundTrip) {
  Table t;
  t.columns({"a", "b", "c"});
  t.row(1, 2.5, "x");
  const std::string path = "/tmp/ftbfs_table_test.csv";
  t.write_csv(path);
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b,c");
  std::getline(f, line);
  EXPECT_EQ(line, "1,2.5,x");
  std::filesystem::remove(path);
}

TEST(Table, ArityMismatchThrows) {
  Table t;
  t.columns({"a", "b"});
  EXPECT_THROW(t.row(1), CheckError);
}

TEST(Options, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--n=128", "--eps=0.25", "--verbose"};
  Options o(4, const_cast<char**>(argv));
  EXPECT_EQ(o.get_int("n", 0), 128);
  EXPECT_DOUBLE_EQ(o.get_double("eps", 0), 0.25);
  EXPECT_TRUE(o.has("verbose"));
  EXPECT_FALSE(o.has("absent"));
  EXPECT_EQ(o.get_int("absent", 7), 7);
}

TEST(Options, ParsesLists) {
  const char* argv[] = {"prog", "--eps=0.1,0.2,0.5", "--n=8,16"};
  Options o(3, const_cast<char**>(argv));
  const auto eps = o.get_double_list("eps", {});
  ASSERT_EQ(eps.size(), 3u);
  EXPECT_DOUBLE_EQ(eps[1], 0.2);
  const auto ns = o.get_int_list("n", {});
  ASSERT_EQ(ns.size(), 2u);
  EXPECT_EQ(ns[1], 16);
  const auto def = o.get_int_list("missing", {42});
  ASSERT_EQ(def.size(), 1u);
  EXPECT_EQ(def[0], 42);
}

TEST(Options, RejectsMalformedScalarsAndListItems) {
  // std::stoll would parse "5x" as 5 — a typo'd --sources=0,5x,10 must be
  // a hard CheckError (the CLI turns it into a non-zero exit with the
  // diagnostic on stderr), never a silently-wrong source set.
  const char* argv[] = {"prog", "--n=12x", "--eps=0.2.5", "--sources=0,5x,10",
                        "--steps=0.1,nope"};
  Options o(5, const_cast<char**>(argv));
  EXPECT_THROW(o.get_int("n", 0), CheckError);
  EXPECT_THROW(o.get_double("eps", 0), CheckError);
  EXPECT_THROW(o.get_int_list("sources", {}), CheckError);
  EXPECT_THROW(o.get_double_list("steps", {}), CheckError);
}

TEST(Check, ThrowsWithMessage) {
  try {
    FTB_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("custom 42"), std::string::npos);
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
  }
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  const double a = t.seconds();
  EXPECT_GE(a, 0.0);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), a);
  t.restart();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
}  // namespace ftb
