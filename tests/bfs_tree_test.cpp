// bfs_tree_test.cpp — T0 structure: parents/children, preorder intervals,
// ancestor tests, tree-edge machinery, the e ∼ e' relation.
#include <gtest/gtest.h>

#include <set>

#include "src/graph/bfs_tree.hpp"
#include "src/graph/generators.hpp"
#include "tests/test_util.hpp"

namespace ftb {
namespace {

struct TreeFixture {
  Graph g;
  Vertex source;
  EdgeWeights w;
  BfsTree tree;

  explicit TreeFixture(test::FamilyCase fc)
      : g(std::move(fc.graph)),
        source(fc.source),
        w(EdgeWeights::uniform_random(g, 31)),
        tree(g, w, source) {}
};

bool naive_ancestor(const BfsTree& t, Vertex a, Vertex d) {
  for (Vertex u = d; u != kInvalidVertex; u = t.parent(u)) {
    if (u == a) return true;
  }
  return false;
}

TEST(BfsTree, FamilySweepInvariants) {
  for (auto& fc : test::small_families()) {
    const std::string name = fc.name;
    TreeFixture fx(std::move(fc));
    const BfsTree& t = fx.tree;

    // Depths match plain BFS; parent depths decrease by one.
    const BfsResult r = plain_bfs(fx.g, fx.source);
    std::int32_t reachable = 0;
    for (Vertex v = 0; v < fx.g.num_vertices(); ++v) {
      ASSERT_EQ(t.depth(v), r.dist[static_cast<std::size_t>(v)]) << name;
      if (!t.reachable(v)) continue;
      ++reachable;
      if (v != fx.source) {
        ASSERT_EQ(t.depth(t.parent(v)), t.depth(v) - 1) << name;
      }
    }
    ASSERT_EQ(t.num_reachable(), reachable) << name;
    ASSERT_EQ(static_cast<std::int32_t>(t.tree_edges().size()),
              reachable - 1)
        << name;

    // children ↔ parent inversion.
    for (Vertex v = 0; v < fx.g.num_vertices(); ++v) {
      for (const Vertex c : t.children(v)) {
        ASSERT_EQ(t.parent(c), v) << name;
      }
    }

    // Preorder intervals vs. naive ancestor walk, on a sample.
    const auto pre = t.preorder();
    for (std::size_t i = 0; i < pre.size(); i += 3) {
      for (std::size_t j = 0; j < pre.size(); j += 5) {
        ASSERT_EQ(t.is_ancestor_or_equal(pre[i], pre[j]),
                  naive_ancestor(t, pre[i], pre[j]))
            << name;
      }
    }

    // Subtree spans contain exactly the descendants.
    for (std::size_t i = 0; i < pre.size(); i += 7) {
      const Vertex v = pre[i];
      std::set<Vertex> span_set(t.subtree(v).begin(), t.subtree(v).end());
      ASSERT_EQ(static_cast<std::int32_t>(span_set.size()),
                t.subtree_size(v))
          << name;
      for (const Vertex u : pre) {
        ASSERT_EQ(span_set.count(u) == 1, naive_ancestor(t, v, u)) << name;
      }
    }
  }
}

TEST(BfsTree, TreeEdgeEndpointsAndDepth) {
  TreeFixture fx({"grid", gen::grid_graph(5, 5), 0});
  const BfsTree& t = fx.tree;
  for (const EdgeId e : t.tree_edges()) {
    ASSERT_TRUE(t.is_tree_edge(e));
    const Vertex low = t.lower_endpoint(e);
    const Vertex up = t.upper_endpoint(e);
    ASSERT_EQ(t.parent(low), up);
    ASSERT_EQ(t.edge_depth(e), t.depth(low));
    ASSERT_EQ(t.parent_edge(low), e);
  }
  // Non-tree edges report as such.
  std::int32_t non_tree = 0;
  for (EdgeId e = 0; e < fx.g.num_edges(); ++e) {
    if (!t.is_tree_edge(e)) ++non_tree;
  }
  ASSERT_EQ(non_tree, fx.g.num_edges() -
                          static_cast<EdgeId>(t.tree_edges().size()));
}

TEST(BfsTree, OnSourcePathMatchesNaive) {
  TreeFixture fx({"gnm", gen::gnm(36, 140, 21), 0});
  const BfsTree& t = fx.tree;
  for (Vertex v = 0; v < fx.g.num_vertices(); ++v) {
    if (!t.reachable(v)) continue;
    std::set<EdgeId> path_edges;
    const auto path = t.path_from_source(v);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      path_edges.insert(t.parent_edge(path[i + 1]));
    }
    for (const EdgeId e : t.tree_edges()) {
      ASSERT_EQ(t.on_source_path(e, v), path_edges.count(e) == 1)
          << "v=" << v << " e=" << e;
    }
  }
}

TEST(BfsTree, EdgesRelatedMatchesDefinition) {
  // e ∼ e' iff both on a common π(s,x): brute-force over all terminals.
  TreeFixture fx({"er", gen::erdos_renyi(28, 0.18, 33), 0});
  const BfsTree& t = fx.tree;
  const auto& edges = t.tree_edges();
  for (std::size_t a = 0; a < edges.size(); ++a) {
    for (std::size_t b = a; b < edges.size(); ++b) {
      bool common = false;
      for (Vertex v = 0; v < fx.g.num_vertices() && !common; ++v) {
        if (!t.reachable(v)) continue;
        common = t.on_source_path(edges[a], v) && t.on_source_path(edges[b], v);
      }
      ASSERT_EQ(t.edges_related(edges[a], edges[b]), common)
          << "e1=" << edges[a] << " e2=" << edges[b];
    }
  }
}

TEST(BfsTree, PathFromSourceIsCanonical) {
  TreeFixture fx({"pa", gen::preferential_attachment(40, 2, 17), 0});
  const BfsTree& t = fx.tree;
  for (Vertex v = 0; v < 40; ++v) {
    if (!t.reachable(v)) continue;
    const auto path = t.path_from_source(v);
    ASSERT_EQ(path.front(), t.source());
    ASSERT_EQ(path.back(), v);
    ASSERT_EQ(static_cast<std::int32_t>(path.size()) - 1, t.depth(v));
  }
}

TEST(BfsTree, DisconnectedGraphHandled) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);  // separate component
  const Graph g = b.build();
  const EdgeWeights w = EdgeWeights::uniform_random(g, 3);
  const BfsTree t(g, w, 0);
  EXPECT_EQ(t.num_reachable(), 3);
  EXPECT_FALSE(t.reachable(3));
  EXPECT_FALSE(t.reachable(5));
  EXPECT_EQ(t.tree_edges().size(), 2u);
}

TEST(BfsTree, SourceProperties) {
  TreeFixture fx({"grid", gen::grid_graph(3, 3), 4});
  const BfsTree& t = fx.tree;
  EXPECT_EQ(t.depth(4), 0);
  EXPECT_EQ(t.parent(4), kInvalidVertex);
  EXPECT_EQ(t.parent_edge(4), kInvalidEdge);
  EXPECT_EQ(t.subtree_size(4), 9);
  EXPECT_EQ(t.preorder().front(), 4);
}

}  // namespace
}  // namespace ftb
