// structure_io_test.cpp — structure round trips and validation.
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/dual_fault.hpp"
#include "src/core/epsilon_ftbfs.hpp"
#include "src/core/ftbfs.hpp"
#include "src/core/multi_source.hpp"
#include "src/core/verifier.hpp"
#include "src/core/vertex_ftbfs.hpp"
#include "src/graph/generators.hpp"
#include "src/io/structure_io.hpp"

namespace ftb {
namespace {

TEST(StructureIo, RoundTripPreservesThePartition) {
  const Graph g = gen::gnm(40, 170, 3);
  EpsilonOptions opts;
  opts.eps = 0.2;
  const EpsilonResult res = build_epsilon_ftbfs(g, 0, opts);
  std::stringstream ss;
  io::write_structure(res.structure, ss);
  const FtBfsStructure back = io::read_structure(g, ss);
  EXPECT_EQ(back.edges(), res.structure.edges());
  EXPECT_EQ(back.reinforced(), res.structure.reinforced());
  EXPECT_EQ(back.tree_edges(), res.structure.tree_edges());
  EXPECT_EQ(back.source(), res.structure.source());
}

TEST(StructureIo, ReloadedStructureStillVerifies) {
  const Graph g = gen::random_connected(50, 150, 5);
  const FtBfsStructure h = build_ftbfs(g, 0);
  std::stringstream ss;
  io::write_structure(h, ss);
  const FtBfsStructure back = io::read_structure(g, ss);
  EXPECT_TRUE(verify_structure(back).ok);
}

TEST(StructureIo, FileRoundTrip) {
  const Graph g = gen::grid_graph(6, 6);
  const FtBfsStructure h = build_ftbfs(g, 0);
  const std::string path = "/tmp/ftbfs_structure_test.ftbfs";
  io::save_structure(h, path);
  const FtBfsStructure back = io::load_structure(g, path);
  EXPECT_EQ(back.edges(), h.edges());
  std::remove(path.c_str());
}

TEST(StructureIo, RejectsWrongGraph) {
  const Graph g = gen::gnm(30, 120, 7);
  const FtBfsStructure h = build_ftbfs(g, 0);
  std::stringstream ss;
  io::write_structure(h, ss);
  const Graph other = gen::path_graph(30);  // same n, different edges
  EXPECT_THROW(io::read_structure(other, ss), CheckError);
}

TEST(StructureIo, RejectsWrongVertexCount) {
  const Graph g = gen::gnm(30, 120, 9);
  const FtBfsStructure h = build_ftbfs(g, 0);
  std::stringstream ss;
  io::write_structure(h, ss);
  const Graph other = gen::gnm(31, 120, 9);
  EXPECT_THROW(io::read_structure(other, ss), CheckError);
}

TEST(StructureIo, FaultModelTagRoundTrips) {
  const Graph g = gen::gnm(36, 150, 11);
  for (const FaultClass model :
       {FaultClass::kVertex, FaultClass::kEither, FaultClass::kEdge}) {
    const FtBfsStructure h = model == FaultClass::kVertex
                                 ? build_vertex_ftbfs(g, 0)
                                 : model == FaultClass::kEither
                                       ? build_dual_ftbfs(g, 0)
                                       : build_ftbfs(g, 0);
    ASSERT_EQ(h.fault_class(), model);
    std::stringstream ss;
    io::write_structure(h, ss);
    const FtBfsStructure back = io::read_structure(g, ss);
    EXPECT_EQ(back.fault_class(), model);
    EXPECT_EQ(back.edges(), h.edges());
    EXPECT_EQ(back.tree_edges(), h.tree_edges());
  }
}

TEST(StructureIo, EveryDocumentedVersionRoundTrips) {
  // docs/file_formats.md names versions 1–4; v1 is read-only (covered by
  // Version1FilesLoadAsEdgeModel below), v2–v4 must round-trip through
  // write_structure/read_structure exactly.
  const Graph g = gen::random_connected(30, 70, 21);
  {  // v2 — single-source artifact.
    const FtBfsStructure h = build_ftbfs(g, 0);
    std::stringstream ss;
    io::write_structure(h, ss);
    EXPECT_EQ(ss.str().rfind("ftbfs-structure 2\n", 0), 0u);
    const FtBfsStructure back = io::read_structure(g, ss);
    EXPECT_EQ(back.edges(), h.edges());
    EXPECT_EQ(back.tree_edges(), h.tree_edges());
  }
  {  // v3 — multi-source artifact keeps its source set.
    EpsilonOptions opts;
    opts.eps = 0.4;
    const MultiSourceResult ms = build_epsilon_ftmbfs(g, {0, 9}, opts);
    std::stringstream ss;
    io::write_structure(ms.structure, ms.sources, ss);
    EXPECT_EQ(ss.str().rfind("ftbfs-structure 3\n", 0), 0u);
    std::vector<Vertex> sources;
    const FtBfsStructure back = io::read_structure(g, ss, &sources);
    EXPECT_EQ(sources, ms.sources);
    EXPECT_EQ(back.edges(), ms.structure.edges());
    EXPECT_EQ(back.reinforced(), ms.structure.reinforced());
  }
  {  // v4 — dual-failure artifact keeps its pair tables verbatim.
    const DualBuildResult r =
        detail::build_dual_failure_ftbfs_impl(g, 0, {});
    std::stringstream ss;
    const Vertex anchor[] = {0};
    io::write_structure(r.structure, anchor, {&r.tables, 1}, ss);
    EXPECT_EQ(ss.str().rfind("ftbfs-structure 4\n", 0), 0u);
    std::vector<Vertex> sources;
    std::vector<DualSiteTable> tables;
    const FtBfsStructure back = io::read_structure(g, ss, &sources, &tables);
    EXPECT_EQ(back.fault_class(), FaultClass::kDual);
    EXPECT_EQ(back.edges(), r.structure.edges());
    ASSERT_EQ(tables.size(), 1u);
    EXPECT_EQ(tables[0].sites, r.tables.sites);
    EXPECT_EQ(tables[0].offsets, r.tables.offsets);
    EXPECT_EQ(tables[0].edge_pool, r.tables.edge_pool);
  }
}

TEST(StructureIo, Version1FilesLoadAsEdgeModel) {
  // A v1 artifact (no fault-model line) predates the tag and must keep
  // loading — defaulting to the edge model.
  const Graph g = gen::path_graph(4);
  std::stringstream ss(
      "ftbfs-structure 1\n"
      "# legacy artifact\n"
      "4 3 0\n"
      "0 1 2\n"
      "1 2 2\n"
      "2 3 3\n");
  const FtBfsStructure h = io::read_structure(g, ss);
  EXPECT_EQ(h.fault_class(), FaultClass::kEdge);
  EXPECT_EQ(h.num_edges(), 3);
  EXPECT_EQ(h.num_reinforced(), 1);
}

TEST(StructureIo, PreV4DualTagLoadsAsEither) {
  // v2/v3 artifacts used "dual" for the one-failure-of-either-kind union;
  // the tag keeps meaning that there. Only v4 artifacts mean two
  // simultaneous failures by it (docs/file_formats.md).
  const Graph g = gen::path_graph(4);
  std::stringstream ss(
      "ftbfs-structure 2\n"
      "fault-model dual\n"
      "4 3 0\n"
      "0 1 2\n"
      "1 2 2\n"
      "2 3 2\n");
  EXPECT_EQ(io::read_structure(g, ss).fault_class(), FaultClass::kEither);
}

TEST(StructureIo, RejectsBadFaultModelTag) {
  const Graph g = gen::path_graph(4);
  std::stringstream ss(
      "ftbfs-structure 2\n"
      "fault-model meteor\n"
      "4 0 0\n");
  EXPECT_THROW(io::read_structure(g, ss), CheckError);
}

TEST(StructureIo, RejectsMalformedInput) {
  const Graph g = gen::path_graph(4);
  {
    std::stringstream ss("not a structure\n");
    EXPECT_THROW(io::read_structure(g, ss), CheckError);
  }
  {
    std::stringstream ss("ftbfs-structure 9\n4 0 0\n");
    EXPECT_THROW(io::read_structure(g, ss), CheckError);
  }
  {
    std::stringstream ss("ftbfs-structure 1\n4 2 0\n0 1 2\n");  // truncated
    EXPECT_THROW(io::read_structure(g, ss), CheckError);
  }
}

}  // namespace
}  // namespace ftb
