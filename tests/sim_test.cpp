// sim_test.cpp — failure drills report clean SLAs on correct structures
// and catch broken ones.
#include <gtest/gtest.h>

#include "src/core/epsilon_ftbfs.hpp"
#include "src/core/ftbfs.hpp"
#include "src/core/vertex_ftbfs.hpp"
#include "src/graph/generators.hpp"
#include "src/sim/failure_sim.hpp"

namespace ftb {
namespace {

TEST(FailureSim, CorrectStructureHasNoViolations) {
  const Graph g = gen::gnm(40, 180, 61);
  const FtBfsStructure h = build_ftbfs(g, 0);
  const DrillReport rep = run_failure_drill(h, 100, 1);
  EXPECT_EQ(rep.violations, 0) << rep.to_string();
  EXPECT_DOUBLE_EQ(rep.max_stretch, 1.0);
  EXPECT_GT(rep.drills, 0);
  EXPECT_GT(rep.reachable_queries, 0);
}

TEST(FailureSim, EpsilonStructureSurvivesDrills) {
  const Graph g = gen::random_connected(60, 160, 63);
  EpsilonOptions opts;
  opts.eps = 0.3;
  const EpsilonResult res = build_epsilon_ftbfs(g, 0, opts);
  const DrillReport rep = run_failure_drill(res.structure, 200, 2);
  EXPECT_EQ(rep.violations, 0) << rep.to_string();
  EXPECT_DOUBLE_EQ(rep.max_stretch, 1.0);
}

TEST(FailureSim, ReinforcedEdgesAreNeverDrilled) {
  const Graph g = gen::gnm(30, 120, 65);
  EpsilonOptions opts;
  opts.eps = 0.2;
  const EpsilonResult res = build_epsilon_ftbfs(g, 0, opts);
  // Ask for more drills than there are fault-prone edges: the simulator
  // must cap at exactly m - r.
  const DrillReport rep =
      run_failure_drill(res.structure, g.num_edges() * 2, 3);
  EXPECT_EQ(rep.drills,
            g.num_edges() - res.structure.num_reinforced());
}

TEST(FailureSim, DetectsBrokenStructure) {
  // A bare tree over the intro example misses the clique reroutes.
  const Graph g = gen::intro_example(16);
  const EdgeWeights w = EdgeWeights::uniform_random(g, 4);
  const BfsTree tree(g, w, 0);
  const FtBfsStructure bare(g, 0, tree.tree_edges(), {}, tree.tree_edges());
  const DrillReport rep = run_failure_drill(bare, g.num_edges(), 5);
  EXPECT_GT(rep.violations, 0);
  EXPECT_GT(rep.max_stretch, 1.0);
}

TEST(FailureSim, DeterministicGivenSeed) {
  const Graph g = gen::gnm(30, 120, 67);
  const FtBfsStructure h = build_ftbfs(g, 0);
  const DrillReport a = run_failure_drill(h, 50, 11);
  const DrillReport b = run_failure_drill(h, 50, 11);
  EXPECT_EQ(a.to_string(), b.to_string());
}

TEST(FailureSim, VertexDrillCleanOnVertexStructure) {
  const Graph g = gen::gnm(40, 180, 69);
  const FtBfsStructure h = build_vertex_ftbfs(g, 0);
  const DrillReport rep = run_vertex_failure_drill(h, 100, 1);
  EXPECT_EQ(rep.violations, 0) << rep.to_string();
  EXPECT_DOUBLE_EQ(rep.max_stretch, 1.0);
  EXPECT_GT(rep.drills, 0);
  // All n−1 routers are fault-prone; asking for more caps there.
  const DrillReport all = run_vertex_failure_drill(h, g.num_vertices() * 2, 2);
  EXPECT_EQ(all.drills, g.num_vertices() - 1);
}

TEST(FailureSim, VertexDrillDetectsBareTree) {
  const Graph g = gen::erdos_renyi(36, 0.25, 71);
  const EdgeWeights w = EdgeWeights::uniform_random(g, 6);
  const BfsTree tree(g, w, 0);
  const FtBfsStructure bare(g, 0, tree.tree_edges(), {}, tree.tree_edges());
  const DrillReport rep =
      run_vertex_failure_drill(bare, g.num_vertices(), 7);
  EXPECT_GT(rep.violations, 0);
}

TEST(FailureSim, FaultClassDispatchMatchesDirectCalls) {
  const Graph g = gen::gnm(32, 140, 73);
  const FtBfsStructure eh = build_ftbfs(g, 0);
  EXPECT_EQ(run_failure_drill(eh, FaultClass::kEdge, 40, 9).to_string(),
            run_failure_drill(eh, 40, 9).to_string());
  const FtBfsStructure vh = build_vertex_ftbfs(g, 0);
  EXPECT_EQ(run_failure_drill(vh, FaultClass::kVertex, 40, 9).to_string(),
            run_vertex_failure_drill(vh, 40, 9).to_string());
}

TEST(FailureSim, EitherDrillRunsBothStorms) {
  const Graph g = gen::gnm(32, 140, 75);
  const FtBfsStructure dual = build_dual_ftbfs(g, 0);  // kEither union
  const DrillReport edge_rep = run_failure_drill(dual, 1000, 3);
  const DrillReport vrep = run_vertex_failure_drill(dual, 1000, 3);
  const DrillReport both =
      run_failure_drill(dual, FaultClass::kEither, 1000, 3);
  EXPECT_EQ(both.drills, edge_rep.drills + vrep.drills);
  EXPECT_EQ(both.violations, 0) << both.to_string();
  EXPECT_DOUBLE_EQ(both.max_stretch, 1.0);
}

TEST(FailureSim, BridgeFailuresCountAsDisconnections) {
  const Graph g = gen::path_graph(10);
  const FtBfsStructure h = build_ftbfs(g, 0);
  const DrillReport rep = run_failure_drill(h, 9, 13);
  EXPECT_GT(rep.disconnections, 0);
  EXPECT_EQ(rep.violations, 0);  // disconnections in G too — no violation
}

}  // namespace
}  // namespace ftb
