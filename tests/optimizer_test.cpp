// optimizer_test.cpp — the greedy budgeted designs (paper Discussion):
// frontier monotonicity, structure correctness at every budget, and the
// instance-vs-universal gap.
#include <gtest/gtest.h>

#include "src/core/epsilon_ftbfs.hpp"
#include "src/core/ftbfs.hpp"
#include "src/core/optimizer.hpp"
#include "src/core/verifier.hpp"
#include "src/graph/lower_bound.hpp"
#include "tests/test_util.hpp"

namespace ftb {
namespace {

TEST(GreedyFrontier, EndpointsMatchTheExtremes) {
  const Graph g = gen::gnm(40, 170, 7);
  const GreedyFrontier frontier(g, 0);
  const FtBfsStructure baseline = build_ftbfs(g, 0);
  // r=0 → exactly the ESA'13 baseline size (same engine, same last edges).
  EXPECT_EQ(frontier.points().front().backup, baseline.num_edges());
  // r=|T0| → the bare reinforced tree.
  EXPECT_EQ(frontier.points().back().backup, 0);
  EXPECT_EQ(frontier.points().size(), baseline.tree_edges().size() + 1);
}

TEST(GreedyFrontier, BackupIsNonIncreasingInR) {
  const Graph g = gen::random_connected(60, 200, 9);
  const GreedyFrontier frontier(g, 0);
  for (std::size_t i = 1; i < frontier.points().size(); ++i) {
    EXPECT_LE(frontier.points()[i].backup, frontier.points()[i - 1].backup);
    EXPECT_EQ(frontier.points()[i].reinforced,
              static_cast<std::int64_t>(i));
  }
}

TEST(GreedyFrontier, MaterializedPointsMatchFrontierCounts) {
  const Graph g = gen::gnm(36, 150, 11);
  const GreedyFrontier frontier(g, 0);
  for (const std::int64_t r : {std::int64_t{0}, std::int64_t{3},
                               std::int64_t{10},
                               static_cast<std::int64_t>(
                                   frontier.order().size())}) {
    const FtBfsStructure h = frontier.design_max_reinforced(r);
    EXPECT_EQ(h.num_reinforced(), std::min<std::int64_t>(
                                      r, static_cast<std::int64_t>(
                                             frontier.order().size())));
    EXPECT_EQ(h.num_backup(), frontier.backup_at(h.num_reinforced()));
  }
}

TEST(GreedyFrontier, EveryBudgetYieldsACorrectStructure) {
  for (auto& fc : test::tiny_families()) {
    const GreedyFrontier frontier(fc.graph, fc.source);
    const std::int64_t max_r =
        static_cast<std::int64_t>(frontier.order().size());
    for (std::int64_t r = 0; r <= max_r; r += std::max<std::int64_t>(
                                             1, max_r / 4)) {
      const FtBfsStructure h = frontier.design_max_reinforced(r);
      VerifyOptions vo;
      vo.check_nontree_failures = true;
      const VerifyReport rep = verify_structure(h, vo);
      EXPECT_TRUE(rep.ok)
          << fc.name << " r=" << r << ": " << rep.to_string();
    }
  }
}

TEST(GreedyFrontier, BackupBudgetDesignRespectsTheBudget) {
  const Graph g = gen::gnm(40, 170, 13);
  const GreedyFrontier frontier(g, 0);
  const std::int64_t full = frontier.points().front().backup;
  for (const std::int64_t budget :
       {std::int64_t{0}, full / 2, full, full * 2}) {
    const FtBfsStructure h = frontier.design_max_backup(budget);
    EXPECT_LE(h.num_backup(), budget);
    EXPECT_TRUE(verify_structure(h).ok);
  }
}

TEST(GreedyFrontier, BeatsTheUniversalConstructionOnItsOwnGraph) {
  // The Discussion's point: the universal ε construction can be wasteful
  // on specific instances. On the Theorem 5.1 graph, give the greedy the
  // same reinforcement budget the ε construction used and compare b.
  const auto lbg = lb::build_single_source(260, 0.5);
  EpsilonOptions opts;
  opts.eps = 0.15;
  const EpsilonResult universal =
      build_epsilon_ftbfs(lbg.graph, lbg.source, opts);
  const GreedyFrontier frontier(lbg.graph, lbg.source);
  const FtBfsStructure greedy =
      frontier.design_max_reinforced(universal.structure.num_reinforced());
  EXPECT_LE(greedy.num_backup(), universal.structure.num_backup());
  EXPECT_TRUE(verify_structure(greedy).ok);
}

TEST(GreedyFrontier, GreedyPrefersTheBridgeOnTheIntroExample) {
  // The intro figure: the single s—clique bridge saves nothing when
  // reinforced? No: the bridge is a cut edge, so it forces NO backup (its
  // failure disconnects). The clique tree edges are the ones with forced
  // detour edges. The very first greedy pick must save more than 1.
  const Graph g = gen::intro_example(20);
  const GreedyFrontier frontier(g, 0);
  EXPECT_GE(frontier.points()[0].backup - frontier.points()[1].backup, 1);
}

TEST(GreedyFrontier, RejectsNegativeBudgets) {
  const Graph g = gen::path_graph(6);
  const GreedyFrontier frontier(g, 0);
  EXPECT_THROW(frontier.design_max_reinforced(-1), CheckError);
  EXPECT_THROW(frontier.design_max_backup(-1), CheckError);
}

}  // namespace
}  // namespace ftb
