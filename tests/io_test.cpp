// io_test.cpp — edge-list round trips and DOT export.
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/ftbfs.hpp"
#include "src/graph/generators.hpp"
#include "src/io/dot.hpp"
#include "src/io/edge_list.hpp"

namespace ftb {
namespace {

bool graphs_equal(const Graph& a, const Graph& b) {
  if (a.num_vertices() != b.num_vertices()) return false;
  if (a.num_edges() != b.num_edges()) return false;
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    if (a.edge(e) != b.edge(e)) return false;
  }
  return true;
}

TEST(EdgeList, RoundTrip) {
  const Graph g = gen::gnm(30, 90, 4);
  std::stringstream ss;
  io::write_edge_list(g, ss);
  const Graph back = io::read_edge_list(ss);
  EXPECT_TRUE(graphs_equal(g, back));
}

TEST(EdgeList, RoundTripEmptyAndTree) {
  for (const Graph& g : {gen::path_graph(1), gen::binary_tree(15)}) {
    std::stringstream ss;
    io::write_edge_list(g, ss);
    const Graph back = io::read_edge_list(ss);
    EXPECT_TRUE(graphs_equal(g, back));
  }
}

TEST(EdgeList, ParsesCommentsAndBlankLines) {
  std::stringstream ss;
  ss << "# a comment\n\n  \n3 2\n# another\n0 1\n\n1 2\n";
  const Graph g = io::read_edge_list(ss);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(EdgeList, MalformedInputThrows) {
  {
    std::stringstream ss;  // no header
    ss << "# nothing\n";
    EXPECT_THROW(io::read_edge_list(ss), CheckError);
  }
  {
    std::stringstream ss;  // too few edges
    ss << "4 3\n0 1\n";
    EXPECT_THROW(io::read_edge_list(ss), CheckError);
  }
  {
    std::stringstream ss;  // out-of-range endpoint
    ss << "2 1\n0 5\n";
    EXPECT_THROW(io::read_edge_list(ss), CheckError);
  }
}

TEST(EdgeList, FileRoundTrip) {
  const Graph g = gen::grid_graph(4, 4);
  const std::string path = "/tmp/ftbfs_io_test.edges";
  io::save_edge_list(g, path);
  const Graph back = io::load_edge_list(path);
  EXPECT_TRUE(graphs_equal(g, back));
  std::remove(path.c_str());
}

TEST(Dot, PlainGraphOutput) {
  const Graph g = gen::path_graph(3);
  std::stringstream ss;
  io::write_dot(g, ss, "P3");
  const std::string s = ss.str();
  EXPECT_NE(s.find("graph P3 {"), std::string::npos);
  EXPECT_NE(s.find("0 -- 1"), std::string::npos);
  EXPECT_NE(s.find("1 -- 2"), std::string::npos);
}

TEST(Dot, StructureOutputMarksEdgeClasses) {
  const Graph g = gen::intro_example(8);
  // Build a structure with a reinforced bridge by hand: T0 + reinforced (0,1).
  const EdgeWeights w = EdgeWeights::uniform_random(g, 2);
  const BfsTree tree(g, w, 0);
  const EdgeId bridge = g.find_edge(0, 1);
  FtBfsStructure h(g, 0, tree.tree_edges(), {bridge}, tree.tree_edges());
  std::stringstream ss;
  io::write_dot(h, ss);
  const std::string s = ss.str();
  EXPECT_NE(s.find("color=red"), std::string::npos);    // reinforced
  EXPECT_NE(s.find("style=dotted"), std::string::npos); // outside H
  EXPECT_NE(s.find("fillcolor=gold"), std::string::npos);  // source
}

}  // namespace
}  // namespace ftb
