// structure_io_v5_test.cpp — the checksummed v5 framing: round-trips for
// every fault model, the CRC-32C primitive itself, and the zero-trust
// rejection matrix (checksum mismatch, length lies, duplicate / unknown /
// out-of-order sections, trailing bytes) — every rejection a CheckError
// carrying byte-offset + section context, and the tolerant-load path that
// drops a damaged pair-table section into the LoadReport instead.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/api/ftbfs_api.hpp"
#include "src/graph/generators.hpp"
#include "src/io/structure_io.hpp"
#include "src/util/crc32c.hpp"

namespace ftb {
namespace {

std::string hex8(std::uint32_t v) {
  static const char* const kDigits = "0123456789abcdef";
  std::string s(8, '0');
  for (int i = 7; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kDigits[v & 0xFu];
    v >>= 4;
  }
  return s;
}

/// A correctly framed v5 section: header line + payload.
std::string frame(const std::string& name, const std::string& payload) {
  return "section " + name + ' ' + std::to_string(payload.size()) + ' ' +
         hex8(crc32c(payload)) + '\n' + payload;
}

// The hand-built artifact the corruption tests carve up: the same
// path-graph structure structure_io_error_test pins for v4.
const char* kMetaPayload = "fault-model dual\nsources 1 0\n";
const char* kEdgesPayload = "4 3 0\n0 1 2\n1 2 2\n2 3 2\n";
const char* kPairPayload =
    "pair-tables 1\nsource-tables 0 1\nsite e 0 1 2 1 2\n";
// A site-dist accelerator for the same artifact: the pair table's one site
// with a two-slot subtree — one slot unreachable, one with a depth-1 walk.
const char* kSiteDistPayload =
    "site-dist 1\nsource-dist 0 1\ndsite 2\ndterm x\ndterm 1 2 1 2\n";

std::string valid_v5() {
  return "ftbfs-structure 5\n" + frame("meta", kMetaPayload) +
         frame("edges", kEdgesPayload) + frame("pair-tables", kPairPayload);
}

std::string valid_v5_with_site_dist() {
  return valid_v5() + frame("site-dist", kSiteDistPayload);
}

/// Asserts strict read rejects `text` with a CheckError whose message
/// carries every substring in `needles` — the offset/section context
/// contract of the io layer.
void expect_rejected(const Graph& g, const std::string& text,
                     const std::vector<std::string>& needles,
                     const std::string& what) {
  std::istringstream is(text);
  try {
    io::read_structure(g, is);
    FAIL() << what << ": accepted\n" << text;
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    for (const std::string& needle : needles) {
      EXPECT_NE(msg.find(needle), std::string::npos)
          << what << ": message '" << msg << "' lacks '" << needle << "'";
    }
  }
}

std::string rewrite_legacy(const FtBfsStructure& h,
                           const std::vector<Vertex>& sources,
                           const std::vector<DualSiteTable>& tables) {
  std::ostringstream os;
  io::write_structure(h, sources, tables, os);
  return os.str();
}

std::string rewrite_v5(const FtBfsStructure& h,
                       const std::vector<Vertex>& sources,
                       const std::vector<DualSiteTable>& tables) {
  std::ostringstream os;
  io::write_structure_v5(h, sources, tables, os);
  return os.str();
}

// ---------------------------------------------------------------------------
// The integrity primitive.

TEST(Crc32c, KnownVectors) {
  // The CRC-32C check value every implementation must reproduce.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(""), 0u);
  EXPECT_NE(crc32c("a"), crc32c("b"));
}

TEST(Crc32c, ChainsIncrementally) {
  const std::string a = "fault-model dual\n";
  const std::string b = "sources 1 0\n";
  EXPECT_EQ(crc32c(a + b), crc32c(b, crc32c(a)));
}

// ---------------------------------------------------------------------------
// Round trips.

TEST(StructureIoV5, DualArtifactRoundTrips) {
  const Graph g = gen::grid_graph(5, 5);
  api::BuildSpec spec;
  spec.fault_model = FaultClass::kDual;
  const api::BuildResult res = api::build(g, spec);

  const std::string w1 =
      rewrite_v5(res.structure, res.sources, res.dual_tables);
  EXPECT_EQ(w1.rfind("ftbfs-structure 5\n", 0), 0u);
  EXPECT_NE(w1.find("section meta "), std::string::npos);
  EXPECT_NE(w1.find("section edges "), std::string::npos);
  EXPECT_NE(w1.find("section pair-tables "), std::string::npos);

  std::istringstream is(w1);
  std::vector<Vertex> sources;
  std::vector<DualSiteTable> tables;
  const FtBfsStructure h = io::read_structure(g, is, &sources, &tables);
  EXPECT_EQ(h.fault_class(), FaultClass::kDual);
  EXPECT_EQ(sources, res.sources);
  ASSERT_EQ(tables.size(), res.dual_tables.size());

  // write → read → write is a fixed point, and the parsed structure is
  // the built one (legacy bytes are the canonical equality witness).
  EXPECT_EQ(rewrite_v5(h, sources, tables), w1);
  EXPECT_EQ(rewrite_legacy(h, sources, tables),
            rewrite_legacy(res.structure, res.sources, res.dual_tables));
}

TEST(StructureIoV5, MultiSourceEdgeArtifactRoundTrips) {
  const Graph g = gen::random_connected(30, 80, 11);
  api::BuildSpec spec;
  spec.sources = {0, 7, 19};
  const api::BuildResult res = api::build(g, spec);

  const std::string w1 = rewrite_v5(res.structure, res.sources, {});
  std::istringstream is(w1);
  std::vector<Vertex> sources;
  std::vector<DualSiteTable> tables;
  const FtBfsStructure h = io::read_structure(g, is, &sources, &tables);
  EXPECT_EQ(h.fault_class(), FaultClass::kEdge);
  EXPECT_EQ(sources, res.sources);
  EXPECT_TRUE(tables.empty());
  EXPECT_EQ(rewrite_v5(h, sources, tables), w1);
  EXPECT_EQ(rewrite_legacy(h, sources, tables),
            rewrite_legacy(res.structure, res.sources, {}));
}

TEST(StructureIoV5, SameStructureAsV4) {
  // One build, both framings: v4 and v5 must decode to the same structure,
  // sources and tables.
  const Graph g = gen::grid_graph(4, 6);
  api::BuildSpec spec;
  spec.fault_model = FaultClass::kDual;
  const api::BuildResult res = api::build(g, spec);

  std::istringstream legacy(
      rewrite_legacy(res.structure, res.sources, res.dual_tables));
  std::istringstream framed(
      rewrite_v5(res.structure, res.sources, res.dual_tables));
  std::vector<Vertex> s4, s5;
  std::vector<DualSiteTable> t4, t5;
  const FtBfsStructure h4 = io::read_structure(g, legacy, &s4, &t4);
  const FtBfsStructure h5 = io::read_structure(g, framed, &s5, &t5);
  EXPECT_EQ(s4, s5);
  EXPECT_EQ(rewrite_legacy(h4, s4, t4), rewrite_legacy(h5, s5, t5));
}

TEST(StructureIoV5, HandFramedBaselineParses) {
  const Graph g = gen::path_graph(4);
  std::istringstream is(valid_v5());
  std::vector<Vertex> sources;
  std::vector<DualSiteTable> tables;
  const FtBfsStructure h = io::read_structure(g, is, &sources, &tables);
  EXPECT_EQ(h.fault_class(), FaultClass::kDual);
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0].subset(0).size(), 2u);
}

// ---------------------------------------------------------------------------
// The rejection matrix. Every corruption is a CheckError with byte-offset
// + section context.

TEST(StructureIoV5, ChecksumMismatchIsRejectedWithContext) {
  const Graph g = gen::path_graph(4);
  // Flip one payload bit under an intact frame: only the CRC catches it.
  std::string bytes = valid_v5();
  const std::size_t p = bytes.find("1 2 2\n");
  ASSERT_NE(p, std::string::npos);
  bytes[p] ^= 0x04;
  expect_rejected(g, bytes, {"checksum mismatch", "(at byte", "edges"},
                  "flipped bit in the edges payload");
}

TEST(StructureIoV5, StructureSectionsAreNeverTolerated) {
  const Graph g = gen::path_graph(4);
  std::string bytes = valid_v5();
  const std::size_t p = bytes.find("1 2 2\n");
  ASSERT_NE(p, std::string::npos);
  bytes[p] ^= 0x04;
  std::istringstream is(bytes);
  io::ReadOptions opts;
  opts.tolerate_pair_tables = true;  // tolerance covers pair tables ONLY
  io::LoadReport report;
  EXPECT_THROW(io::read_structure(g, is, nullptr, nullptr, opts, &report),
               CheckError);
}

TEST(StructureIoV5, LengthLiesAreRejected) {
  const Graph g = gen::path_graph(4);
  const std::string meta = kMetaPayload;
  // Declared length longer than the payload: the read runs into the next
  // frame and comes up short.
  expect_rejected(g,
                  "ftbfs-structure 5\nsection meta " +
                      std::to_string(meta.size() + 999) + ' ' +
                      hex8(crc32c(meta)) + '\n' + meta,
                  {"truncated", "(at byte", "meta"},
                  "declared length overruns the artifact");
  // Implausible length: rejected before it can size an allocation.
  expect_rejected(
      g, "ftbfs-structure 5\nsection meta 99999999999 00000000\n",
      {"implausible length", "(at byte"}, "absurd declared length");
  // Negative length never parses as a frame.
  expect_rejected(g, "ftbfs-structure 5\nsection meta -4 00000000\n",
                  {"implausible length", "(at byte"}, "negative length");
}

TEST(StructureIoV5, ShortLengthDesyncsTheFrame) {
  const Graph g = gen::path_graph(4);
  // Declared length SHORTER than the real payload: the leftover payload
  // bytes are not a section header, so framing fails loudly.
  const std::string meta = kMetaPayload;
  expect_rejected(g,
                  "ftbfs-structure 5\nsection meta " +
                      std::to_string(meta.size() - 5) + ' ' +
                      hex8(crc32c(std::string_view(meta).substr(
                          0, meta.size() - 5))) +
                      '\n' + meta + frame("edges", kEdgesPayload),
                  {"(at byte", "frame"}, "declared length undershoots");
}

TEST(StructureIoV5, DuplicateAndUnknownSectionsAreRejected) {
  const Graph g = gen::path_graph(4);
  expect_rejected(g,
                  "ftbfs-structure 5\n" + frame("meta", kMetaPayload) +
                      frame("meta", kMetaPayload) +
                      frame("edges", kEdgesPayload),
                  {"duplicate section 'meta'", "(at byte"},
                  "duplicated meta section");
  expect_rejected(g,
                  valid_v5() + frame("shadow", "boo\n"),
                  {"unknown section 'shadow'", "(at byte"},
                  "unknown section name");
}

TEST(StructureIoV5, SectionOrderIsEnforced) {
  const Graph g = gen::path_graph(4);
  expect_rejected(g,
                  "ftbfs-structure 5\n" + frame("edges", kEdgesPayload) +
                      frame("meta", kMetaPayload),
                  {"out of order", "(at byte"}, "edges before meta");
}

TEST(StructureIoV5, MissingSectionsAreRejected) {
  const Graph g = gen::path_graph(4);
  expect_rejected(g, "ftbfs-structure 5\n" + frame("edges", kEdgesPayload),
                  {"missing section 'meta'", "(at byte"}, "no meta");
  expect_rejected(g, "ftbfs-structure 5\n" + frame("meta", kMetaPayload),
                  {"missing section 'edges'", "(at byte"}, "no edges");
  expect_rejected(g, "ftbfs-structure 5\n", {"missing section", "(at byte"},
                  "header only");
}

TEST(StructureIoV5, MalformedFrameHeadersAreRejected) {
  const Graph g = gen::path_graph(4);
  expect_rejected(g, "ftbfs-structure 5\nsection meta\n",
                  {"expected 'section", "(at byte"}, "header cut short");
  expect_rejected(g, "ftbfs-structure 5\nsection meta 29 xyzt\n",
                  {"malformed checksum", "(at byte"}, "non-hex checksum");
  expect_rejected(g,
                  "ftbfs-structure 5\nsection meta 29 0123456789\n",
                  {"malformed checksum", "(at byte"}, "overlong checksum");
}

TEST(StructureIoV5, TrailingBytesAreRejected) {
  const Graph g = gen::path_graph(4);
  // Trailing garbage after the last frame is not a section header.
  expect_rejected(g, valid_v5() + "junk after the artifact\n",
                  {"expected 'section", "(at byte"}, "trailing garbage");
  // Trailing data INSIDE a checksummed payload (frame still valid).
  const std::string fat = std::string(kMetaPayload) + "stowaway 1\n";
  expect_rejected(g,
                  "ftbfs-structure 5\n" + frame("meta", fat) +
                      frame("edges", kEdgesPayload),
                  {"trailing data in section", "(at byte", "meta"},
                  "extra line inside the meta payload");
}

TEST(StructureIoV5, TruncationMidPayloadIsRejected) {
  const Graph g = gen::path_graph(4);
  const std::string whole = valid_v5();
  // Cut inside the edges payload (past meta, before pair-tables).
  const std::size_t cut = whole.find("1 2 2\n");
  ASSERT_NE(cut, std::string::npos);
  expect_rejected(g, whole.substr(0, cut + 2),
                  {"truncated", "(at byte", "edges"},
                  "artifact cut mid-payload");
}

TEST(StructureIoV5, PairTablesRequireTheDualModel) {
  const Graph g = gen::path_graph(4);
  const std::string meta = "fault-model edge\nsources 1 0\n";
  expect_rejected(g,
                  "ftbfs-structure 5\n" + frame("meta", meta) +
                      frame("edges", kEdgesPayload) +
                      frame("pair-tables", kPairPayload),
                  {"non-dual artifact", "(at byte"},
                  "pair tables on an edge-model artifact");
}

// ---------------------------------------------------------------------------
// Tolerant loads: a damaged pair-table section is dropped into the
// LoadReport; the structure sections still load.

TEST(StructureIoV5, TolerantLoadDropsCorruptPairTables) {
  const Graph g = gen::path_graph(4);
  std::string bytes = valid_v5();
  const std::size_t p = bytes.find("site e 0 1");
  ASSERT_NE(p, std::string::npos);
  bytes[p] ^= 0x01;

  // Strict: hard CheckError naming the section.
  expect_rejected(g, bytes,
                  {"pair-tables", "checksum mismatch", "(at byte"},
                  "strict read of a corrupt pair-table section");

  // Tolerant: clean structure, dropped tables, honest report.
  std::istringstream is(bytes);
  io::ReadOptions opts;
  opts.tolerate_pair_tables = true;
  io::LoadReport report;
  std::vector<Vertex> sources;
  std::vector<DualSiteTable> tables;
  const FtBfsStructure h =
      io::read_structure(g, is, &sources, &tables, opts, &report);
  EXPECT_EQ(h.fault_class(), FaultClass::kDual);
  EXPECT_TRUE(tables.empty());
  EXPECT_FALSE(report.complete);
  ASSERT_EQ(report.dropped.size(), 1u);
  EXPECT_NE(report.dropped[0].find("checksum mismatch"), std::string::npos);
  EXPECT_NE(report.dropped[0].find("(at byte"), std::string::npos);
}

TEST(StructureIoV5, TolerantLoadDropsTruncatedPairTables) {
  const Graph g = gen::path_graph(4);
  const std::string whole = valid_v5();
  const std::size_t pt = whole.find("pair-tables 1\n");
  ASSERT_NE(pt, std::string::npos);
  const std::string bytes = whole.substr(0, pt + 4);  // cut mid-payload

  expect_rejected(g, bytes, {"truncated", "(at byte"},
                  "strict read of a truncated pair-table section");

  std::istringstream is(bytes);
  io::ReadOptions opts;
  opts.tolerate_pair_tables = true;
  io::LoadReport report;
  std::vector<DualSiteTable> tables;
  const FtBfsStructure h =
      io::read_structure(g, is, nullptr, &tables, opts, &report);
  EXPECT_EQ(h.fault_class(), FaultClass::kDual);
  EXPECT_TRUE(tables.empty());
  EXPECT_FALSE(report.complete);
  ASSERT_EQ(report.dropped.size(), 1u);
  EXPECT_NE(report.dropped[0].find("truncated"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The optional site-dist accelerator section: round-trips, ordering, the
// pair-table dependency, and tolerant drops that cost speed, never answers.

TEST(StructureIoV5, SiteDistSectionRoundTrips) {
  const Graph g = gen::grid_graph(5, 5);
  api::BuildSpec spec;
  spec.fault_model = FaultClass::kDual;
  spec.site_dist_oracle = true;
  const api::BuildResult res = api::build(g, spec);
  ASSERT_EQ(res.dual_site_dist.size(), res.sources.size());

  std::ostringstream os;
  io::write_structure_v5(res.structure, res.sources, res.dual_tables,
                         res.dual_site_dist, os);
  const std::string w1 = os.str();
  EXPECT_NE(w1.find("section site-dist "), std::string::npos);

  std::istringstream is(w1);
  std::vector<Vertex> sources;
  std::vector<DualSiteTable> tables;
  std::vector<DualSiteDistTable> site_dist;
  io::LoadReport report;
  const FtBfsStructure h = io::read_structure(g, is, &sources, &tables, {},
                                              &report, &site_dist);
  EXPECT_TRUE(report.complete);
  ASSERT_EQ(site_dist.size(), res.dual_site_dist.size());
  for (std::size_t i = 0; i < site_dist.size(); ++i) {
    EXPECT_EQ(site_dist[i].site_offsets, res.dual_site_dist[i].site_offsets);
    EXPECT_EQ(site_dist[i].parent_edge, res.dual_site_dist[i].parent_edge);
    EXPECT_EQ(site_dist[i].tf_depth, res.dual_site_dist[i].tf_depth);
    EXPECT_EQ(site_dist[i].row_offsets, res.dual_site_dist[i].row_offsets);
    EXPECT_EQ(site_dist[i].rows, res.dual_site_dist[i].rows);
  }

  // write → read → write is a fixed point with the accelerator on board.
  std::ostringstream os2;
  io::write_structure_v5(h, sources, tables, site_dist, os2);
  EXPECT_EQ(os2.str(), w1);
}

TEST(StructureIoV5, HandFramedSiteDistParses) {
  const Graph g = gen::path_graph(4);
  std::istringstream is(valid_v5_with_site_dist());
  std::vector<Vertex> sources;
  std::vector<DualSiteTable> tables;
  std::vector<DualSiteDistTable> site_dist;
  io::read_structure(g, is, &sources, &tables, {}, nullptr, &site_dist);
  ASSERT_EQ(site_dist.size(), 1u);
  EXPECT_EQ(site_dist[0].num_slots(), 2u);
  EXPECT_EQ(site_dist[0].parent_edge[0], kInvalidEdge);
  EXPECT_EQ(site_dist[0].tf_depth[1], 1);
  ASSERT_EQ(site_dist[0].rows.size(), 1u);
  EXPECT_EQ(site_dist[0].rows[0], 2);
}

TEST(StructureIoV5, SiteDistMustFollowPairTables) {
  const Graph g = gen::path_graph(4);
  // Accelerator before its pair tables: the slot layout indexes the pair
  // tables' site order, so the framing order is normative.
  expect_rejected(g,
                  "ftbfs-structure 5\n" + frame("meta", kMetaPayload) +
                      frame("edges", kEdgesPayload) +
                      frame("site-dist", kSiteDistPayload) +
                      frame("pair-tables", kPairPayload),
                  {"out of order", "(at byte"}, "site-dist before tables");
  // And without pair tables at all it is equally out of order.
  expect_rejected(g,
                  "ftbfs-structure 5\n" + frame("meta", kMetaPayload) +
                      frame("edges", kEdgesPayload) +
                      frame("site-dist", kSiteDistPayload),
                  {"out of order", "(at byte"}, "site-dist without tables");
}

TEST(StructureIoV5, CorruptSiteDistIsDroppedOnlyUnderItsOwnKnob) {
  const Graph g = gen::path_graph(4);
  std::string bytes = valid_v5_with_site_dist();
  const std::size_t p = bytes.find("dterm 1 2 1 2");
  ASSERT_NE(p, std::string::npos);
  bytes[p + 6] ^= 0x04;  // payload bit flip under an intact frame

  // Strict: hard CheckError naming the section.
  expect_rejected(g, bytes, {"site-dist", "checksum mismatch", "(at byte"},
                  "strict read of a corrupt site-dist section");
  // tolerate_pair_tables alone does NOT cover the accelerator.
  {
    std::istringstream is(bytes);
    io::ReadOptions opts;
    opts.tolerate_pair_tables = true;
    EXPECT_THROW(
        io::read_structure(g, is, nullptr, nullptr, opts, nullptr, nullptr),
        CheckError);
  }
  // tolerate_site_dist: the drop costs the accelerator, nothing else —
  // structure AND pair tables load clean, the report says what was lost.
  std::istringstream is(bytes);
  io::ReadOptions opts;
  opts.tolerate_site_dist = true;
  io::LoadReport report;
  std::vector<DualSiteTable> tables;
  std::vector<DualSiteDistTable> site_dist;
  const FtBfsStructure h =
      io::read_structure(g, is, nullptr, &tables, opts, &report, &site_dist);
  EXPECT_EQ(h.fault_class(), FaultClass::kDual);
  EXPECT_EQ(tables.size(), 1u);
  EXPECT_TRUE(site_dist.empty());
  EXPECT_FALSE(report.complete);
  ASSERT_EQ(report.dropped.size(), 1u);
  EXPECT_EQ(report.dropped[0].rfind("site-dist: ", 0), 0u);
  EXPECT_NE(report.dropped[0].find("checksum mismatch"), std::string::npos);
}

TEST(StructureIoV5, DroppedPairTablesCascadeToSiteDist) {
  // When the pair tables are tolerated away, the accelerator that indexes
  // their site order is unusable: it must drop too (under its knob), and
  // the report must carry BOTH losses.
  const Graph g = gen::path_graph(4);
  std::string bytes = valid_v5_with_site_dist();
  const std::size_t p = bytes.find("site e 0 1");
  ASSERT_NE(p, std::string::npos);
  bytes[p] ^= 0x01;

  std::istringstream is(bytes);
  io::ReadOptions opts;
  opts.tolerate_pair_tables = true;
  opts.tolerate_site_dist = true;
  io::LoadReport report;
  std::vector<DualSiteTable> tables;
  std::vector<DualSiteDistTable> site_dist;
  const FtBfsStructure h =
      io::read_structure(g, is, nullptr, &tables, opts, &report, &site_dist);
  EXPECT_EQ(h.fault_class(), FaultClass::kDual);
  EXPECT_TRUE(tables.empty());
  EXPECT_TRUE(site_dist.empty());
  ASSERT_EQ(report.dropped.size(), 2u);
  EXPECT_EQ(report.dropped[0].rfind("pair-tables: ", 0), 0u);
  EXPECT_EQ(report.dropped[1].rfind("site-dist: ", 0), 0u);
  EXPECT_NE(report.dropped[1].find("without usable pair tables"),
            std::string::npos);
}

TEST(StructureIoV5, SiteDistShapeLiesAreRejected) {
  const Graph g = gen::path_graph(4);
  // Site count disagreeing with the sibling pair tables.
  expect_rejected(
      g,
      valid_v5() + frame("site-dist",
                         "site-dist 1\nsource-dist 0 2\ndsite 1\ndterm x\n"),
      {"expected 'source-dist 0 1'", "(at byte"}, "site-count lie");
  // A parent edge the graph does not have.
  expect_rejected(
      g,
      valid_v5() + frame("site-dist",
                         "site-dist 1\nsource-dist 0 1\ndsite 1\n"
                         "dterm 0 3 1 2\n"),
      {"missing from the graph", "(at byte"}, "phantom parent edge");
  // A row value ≥ n can never be a hop count.
  expect_rejected(
      g,
      valid_v5() + frame("site-dist",
                         "site-dist 1\nsource-dist 0 1\ndsite 1\n"
                         "dterm 1 2 1 99\n"),
      {"bad dterm row", "(at byte"}, "row value out of range");
}

TEST(StructureIoV5, CleanLoadReportsComplete) {
  const Graph g = gen::path_graph(4);
  std::istringstream is(valid_v5());
  io::ReadOptions opts;
  opts.tolerate_pair_tables = true;
  io::LoadReport report;
  std::vector<DualSiteTable> tables;
  io::read_structure(g, is, nullptr, &tables, opts, &report);
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.dropped.empty());
  EXPECT_EQ(tables.size(), 1u);
}

}  // namespace
}  // namespace ftb
